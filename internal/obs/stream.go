package obs

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/stream"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// DefaultSampleInterval is the default time gate between per-worker
// stream samples (and between global residual samples). At this rate a
// millisecond-scale solve publishes a handful of events and a
// long-running solve a few hundred per second per worker — cheap for
// both the solver and any SSE client.
const DefaultSampleInterval = 5 * time.Millisecond

// streamState is the bus side of a SolverMetrics handle. It exists
// only after AttachBus; every mirror checks the pointer first, so
// handles without a bus pay one comparison per instrumented call.
type streamState struct {
	bus   *stream.Bus
	every time.Duration

	// lastResPub and lastEstPub gate the global residual streams
	// (exact and sum-of-shares) in unix nanoseconds; CAS claims the
	// publish so concurrent workers emit once per interval.
	lastResPub atomic.Int64
	lastEstPub atomic.Int64

	// resSum accumulates per-worker residual shares (float bits) into
	// a live estimate of the global relative residual; the distributed
	// substrate has no exact global residual until the run ends.
	resSum atomic.Uint64
}

// AttachBus mirrors this handle's instrumentation points onto b:
// per-worker samples, global residual samples, and fault / recovery /
// termination lifecycle events. sampleEvery gates the periodic
// samples; <= 0 publishes on every instrumented call (tests, replay).
// Attach before handing the handle to a solver — the worker and rank
// sub-handles capture the bus when they are resolved.
func (m *SolverMetrics) AttachBus(b *stream.Bus, sampleEvery time.Duration) {
	if m == nil || b == nil {
		return
	}
	m.strm = &streamState{bus: b, every: sampleEvery}
}

// Bus returns the attached bus (nil when detached or on a nil handle).
func (m *SolverMetrics) Bus() *stream.Bus {
	if m == nil || m.strm == nil {
		return nil
	}
	return m.strm.bus
}

// IncAlert counts one analytics alert by type (aj_alerts_total). The
// analytics engine reports alerts through a callback; the CLI wires
// that callback here so alert totals appear beside the solver metrics
// on /metrics.
func (m *SolverMetrics) IncAlert(kind string) {
	if m != nil {
		m.alerts.With(kind).Inc()
	}
}

// AlertCount reads the alert counter for one type (0 on nil).
func (m *SolverMetrics) AlertCount(kind string) uint64 {
	if m == nil {
		return 0
	}
	return m.alerts.With(kind).Value()
}

// emit publishes a lifecycle event (fault/recovery/termination/done).
// These are rare, so they bypass the sample gate.
func (m *SolverMetrics) emit(t stream.Type, kind string) {
	if m == nil || m.strm == nil {
		return
	}
	m.strm.bus.Publish(stream.Event{Type: t, Worker: -1, Kind: kind})
}

// claim implements the shared time gate: it returns true when the
// interval has elapsed since the last claimed publish, updating the
// stamp. A zero-or-negative interval always claims.
func claim(last *atomic.Int64, every time.Duration) bool {
	if every <= 0 {
		return true
	}
	now := time.Now().UnixNano()
	prev := last.Load()
	if now-prev < int64(every) {
		return false
	}
	return last.CompareAndSwap(prev, now)
}

// mirrorResidual publishes an exact global residual sample, gated.
func (m *SolverMetrics) mirrorResidual(v float64) {
	st := m.strm
	if st == nil || !st.bus.Active() || !claim(&st.lastResPub, st.every) {
		return
	}
	st.bus.Publish(stream.Event{Type: stream.TypeResidual, Worker: -1, Residual: v})
}

// addShare folds a per-worker residual-share delta into the global
// estimate and publishes it, gated. Estimated=true distinguishes the
// sum-of-shares stream from exactly computed residual samples.
func (st *streamState) addShare(delta float64) {
	if delta == 0 {
		return
	}
	for {
		old := st.resSum.Load()
		next := floatBits(floatFromBits(old) + delta)
		if st.resSum.CompareAndSwap(old, next) {
			break
		}
	}
	if !st.bus.Active() || !claim(&st.lastEstPub, st.every) {
		return
	}
	st.bus.Publish(stream.Event{
		Type: stream.TypeResidual, Worker: -1,
		Residual: floatFromBits(st.resSum.Load()), Estimated: true,
	})
}

// workerStream is the per-worker sampling state embedded in the
// Worker/Rank sub-handles. It is owned by that worker's goroutine
// (matching the sub-handle contract), so the accumulation fields need
// no synchronization.
type workerStream struct {
	st      *streamState
	id      int
	nextPub time.Time
	share   float64 // last local residual share (normalized)

	staleSum float64
	staleCnt int64
	staleMax int64
}

func newWorkerStream(st *streamState, id int) *workerStream {
	if st == nil {
		return nil
	}
	return &workerStream{st: st, id: id}
}

// observe accumulates one staleness observation for the next sample.
func (ws *workerStream) observe(missed int) {
	if ws == nil {
		return
	}
	ws.staleSum += float64(missed)
	ws.staleCnt++
	if int64(missed) > ws.staleMax {
		ws.staleMax = int64(missed)
	}
}

// setShare records this worker's residual contribution and folds the
// delta into the bus-wide estimate.
func (ws *workerStream) setShare(v float64) {
	if ws == nil {
		return
	}
	delta := v - ws.share
	ws.share = v
	ws.st.addShare(delta)
}

// due reports whether the next maybePublish call would pass the gate,
// without consuming it. Publishers use it to skip computing expensive
// sample payloads (a residual-share norm) that would be discarded.
func (ws *workerStream) due() bool {
	if ws == nil || !ws.st.bus.Active() {
		return false
	}
	return ws.st.every <= 0 || !time.Now().Before(ws.nextPub)
}

// maybePublish emits this worker's periodic sample if the gate allows.
// iters and relax are the counter values at the call site.
func (ws *workerStream) maybePublish(iters, relax uint64) {
	if ws == nil || !ws.st.bus.Active() {
		return
	}
	if ws.st.every > 0 {
		now := time.Now()
		if now.Before(ws.nextPub) {
			return
		}
		ws.nextPub = now.Add(ws.st.every)
	}
	ev := stream.Event{
		Type: stream.TypeSample, Worker: ws.id,
		Iter: int64(iters), Relax: int64(relax), Residual: ws.share,
	}
	if ws.staleCnt > 0 {
		ev.Staleness = ws.staleSum / float64(ws.staleCnt)
		ev.StaleN = ws.staleCnt
		ev.MaxStale = ws.staleMax
		ws.staleSum, ws.staleCnt, ws.staleMax = 0, 0, 0
	}
	ws.st.bus.Publish(ev)
}
