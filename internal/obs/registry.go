package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType tags a family for exposition.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is the shared bookkeeping of a labeled metric family: children
// are keyed by their joined label values and created on first use. The
// child map is read-mostly; a RWMutex guards creation while the hot
// path (With on an existing child) takes only the read lock. Solvers
// resolve their children once, outside the relaxation loop, so even
// that read lock is off the hot path.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	bounds []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]any // joined label values -> *Counter | *Gauge | *Histogram
}

func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = make()
	f.children[key] = c
	return c
}

// sortedKeys returns child keys in deterministic order for exposition.
func (f *family) sortedKeys() []string {
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// labelString renders {a="x",b="y"} for a child key, or "" when the
// family is unlabeled.
func (f *family) labelString(key string, extra ...string) string {
	var parts []string
	if len(f.labels) > 0 {
		values := strings.Split(key, "\x00")
		for i, name := range f.labels {
			parts = append(parts, fmt.Sprintf("%s=%q", name, values[i]))
		}
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// With returns (creating on first use) the counter for the given label
// values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of histograms sharing one bucket layout.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return NewHistogram(v.f.bounds) }).(*Histogram)
}

// Registry holds metric families in registration order.
type Registry struct {
	mu     sync.RWMutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(name, help string, typ MetricType, labels []string, bounds []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		if prev.typ != typ || len(prev.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		return prev
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: map[string]any{},
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// NewCounter registers (or retrieves) a counter family.
func (r *Registry) NewCounter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, TypeCounter, labels, nil)}
}

// NewGauge registers (or retrieves) a gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, TypeGauge, labels, nil)}
}

// NewHistogram registers (or retrieves) a histogram family with the
// given bucket upper bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, TypeHistogram, labels, bounds)}
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), with deterministic family and
// label ordering.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := append([]*family(nil), r.fams...)
	r.mu.RUnlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		f.mu.RLock()
		keys := f.sortedKeys()
		for _, key := range keys {
			switch m := f.children[key].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelString(key), m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, f.labelString(key), formatValue(m.Value()))
			case *Histogram:
				bounds, counts := m.Snapshot()
				var cum uint64
				for i, b := range bounds {
					cum += counts[i]
					fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, f.labelString(key, fmt.Sprintf("le=%q", formatValue(b))), cum)
				}
				cum += counts[len(bounds)]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, f.labelString(key, `le="+Inf"`), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, f.labelString(key), formatValue(m.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, f.labelString(key), m.Count())
			}
		}
		f.mu.RUnlock()
	}
	return nil
}

// histogramJSON is the JSON shape of one histogram child.
type histogramJSON struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"`
}

// WriteJSON renders the registry as one flat JSON object in the expvar
// style: fully qualified series name (including labels) to value.
// Counters and gauges map to numbers, histograms to
// {count, sum, buckets} objects keyed by upper bound.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	fams := append([]*family(nil), r.fams...)
	r.mu.RUnlock()
	out := map[string]any{}
	for _, f := range fams {
		f.mu.RLock()
		for _, key := range f.sortedKeys() {
			series := f.name + f.labelString(key)
			switch m := f.children[key].(type) {
			case *Counter:
				out[series] = m.Value()
			case *Gauge:
				out[series] = m.Value()
			case *Histogram:
				bounds, counts := m.Snapshot()
				hj := histogramJSON{Count: m.Count(), Sum: m.Sum(), Buckets: map[string]uint64{}}
				var cum uint64
				for i, b := range bounds {
					cum += counts[i]
					hj.Buckets[formatValue(b)] = cum
				}
				cum += counts[len(bounds)]
				hj.Buckets["+Inf"] = cum
				out[series] = hj
			}
		}
		f.mu.RUnlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
