package obs

import (
	"strconv"
	"time"

	"repro/internal/stream"
)

// SolverMetrics is the instrumentation handle the solvers thread
// through their hot paths. A nil *SolverMetrics is fully functional and
// free: every method (and every method of the Worker/Rank sub-handles)
// no-ops on a nil receiver, so the disabled path costs one pointer
// comparison. Construct one with NewSolverMetrics to enable.
//
// One handle serves all three execution substrates; each family maps to
// a quantity from the paper:
//
//	aj_relaxations_total{worker}   per-process relaxation counts (§V)
//	aj_staleness                   missed sender updates per read — the
//	                               live Fig 2 propagated-relaxation view
//	aj_residual                    residual trajectory (Fig 3–5)
//	aj_sweep_seconds{worker}       per-process iteration latency (the
//	                               slow-thread experiments)
//	aj_messages_*, aj_window_puts  §VI communication traffic
//	aj_termination_events_total    termination-protocol transitions
type SolverMetrics struct {
	reg *Registry

	relax  *CounterVec
	iters  *CounterVec
	yields *CounterVec
	sweep  *HistogramVec

	residual  *Gauge
	converged *Gauge
	workers   *Gauge
	delays    *Counter
	staleness *Histogram

	localResidual *GaugeVec
	msgsSent      *CounterVec
	msgsRecv      *CounterVec
	puts          *CounterVec

	termRaise, termLower, termLatch *Counter
	termTokenPass, termTokenBlacken *Counter
	termHalt, termDecided           *Counter
	termResume                      *Counter

	simRelax, simMsgs, simDropped *Counter
	simTime                       *Gauge

	traceEvents, traceDropped  *CounterVec
	traceBytes, traceCoalesced *CounterVec
	traceSampledOut            *CounterVec
	traceRate                  *GaugeVec

	faultDrop, faultDup, faultReorder *Counter
	faultDelay, faultStall            *Counter
	faultCrash, faultRestart          *Counter
	faultTermTimeout                  *Counter

	recCkptWrite, recCkptError, recCkptLoad *Counter
	recWorkerDead, recReassign              *Counter
	recDeadline, recCancel, recResume       *Counter
	recRetransmit, recExclude               *Counter
	ckptBytes, ckptAge                      *Gauge

	trRetry, trReconnect, trTimeout *Counter
	trEvict, trPeerDead, trRevive   *Counter
	trTxBytes, trRxBytes            *Counter
	trTxFrames, trRxFrames          *Counter

	wireRTT    *HistogramVec
	wireDelay  *HistogramVec
	wireOffset *GaugeVec
	wireOutbox *GaugeVec
	wireEvents *CounterVec

	alerts *CounterVec

	// strm mirrors instrumentation points onto a telemetry bus; nil
	// until AttachBus (see stream.go).
	strm *streamState
}

// NewSolverMetrics registers the solver metric families on reg and
// returns the live handle.
func NewSolverMetrics(reg *Registry) *SolverMetrics {
	m := &SolverMetrics{reg: reg}
	m.relax = reg.NewCounter("aj_relaxations_total",
		"Row relaxations performed, by worker (shm) or rank (dist).", "worker")
	m.iters = reg.NewCounter("aj_iterations_total",
		"Local iterations (sweeps) completed, by worker or rank.", "worker")
	m.yields = reg.NewCounter("aj_yields_total",
		"Scheduler yields performed by asynchronous workers.", "worker")
	m.sweep = reg.NewHistogram("aj_sweep_seconds",
		"Wall-clock latency of one local iteration, by worker.",
		LatencyBuckets(), "worker")
	m.residual = reg.NewGauge("aj_residual",
		"Relative residual 1-norm: sampled live during the run, exact after it.").With()
	m.converged = reg.NewGauge("aj_converged",
		"1 once the tolerance was met, else 0.").With()
	m.workers = reg.NewGauge("aj_workers",
		"Configured worker/rank count of the current solve.").With()
	m.delays = reg.NewCounter("aj_injected_delays_total",
		"Injected delay sleeps (slow-thread / slow-rank experiments).").With()
	m.staleness = reg.NewHistogram("aj_staleness",
		"Sender updates missed between consecutive neighbor reads "+
			"(0 = every published value was observed; the live counterpart "+
			"of the paper's Fig 2 propagated-relaxation fraction).",
		StalenessBuckets()).With()
	m.localResidual = reg.NewGauge("aj_local_residual",
		"Per-rank local residual 1-norm share (distributed solver).", "rank")
	m.msgsSent = reg.NewCounter("aj_messages_sent_total",
		"Point-to-point messages sent, by rank.", "rank")
	m.msgsRecv = reg.NewCounter("aj_messages_received_total",
		"Point-to-point messages received, by rank.", "rank")
	m.puts = reg.NewCounter("aj_window_puts_total",
		"RMA window puts posted, by rank.", "rank")
	term := reg.NewCounter("aj_termination_events_total",
		"Termination-protocol state transitions, by event.", "event")
	m.termRaise = term.With("flag_raise")
	m.termLower = term.With("flag_lower")
	m.termLatch = term.With("latch")
	m.termTokenPass = term.With("token_pass")
	m.termTokenBlacken = term.With("token_blacken")
	m.termHalt = term.With("halt")
	m.termDecided = term.With("decided")
	m.termResume = term.With("resume")
	m.simRelax = reg.NewCounter("aj_sim_relaxations_total",
		"Row relaxations performed by the cluster simulator.").With()
	m.simMsgs = reg.NewCounter("aj_sim_messages_total",
		"Boundary messages posted by the cluster simulator.").With()
	m.simDropped = reg.NewCounter("aj_sim_messages_dropped_total",
		"Simulated boundary messages lost to failure injection.").With()
	m.simTime = reg.NewGauge("aj_sim_virtual_seconds",
		"Virtual time of the cluster simulation.").With()
	m.traceEvents = reg.NewCounter("aj_trace_events_total",
		"Execution-trace events retained in the ring buffer, by worker.", "worker")
	m.traceDropped = reg.NewCounter("aj_trace_dropped_total",
		"Execution-trace events lost to ring-buffer wraparound, by worker. "+
			"Nonzero means the recorded schedule is a suffix of the real one.", "worker")
	m.traceBytes = reg.NewCounter("aj_trace_bytes_total",
		"Bytes of execution-trace events encoded, by worker (events x "+
			"the 32-byte wire size, counting wraparound casualties).", "worker")
	m.traceCoalesced = reg.NewCounter("aj_trace_coalesced_total",
		"Per-component reads folded into coalesced read-block events, by "+
			"worker. High values mean the always-on hot path is amortizing "+
			"well; the bridge re-expands them exactly.", "worker")
	m.traceSampledOut = reg.NewCounter("aj_trace_sampled_out_total",
		"Relaxations skipped by the -trace-sample policy, by worker. The "+
			"retained suffix is still verifiable; sampled-out versions round "+
			"down in the bridge (DESIGN.md on sampling bias).", "worker")
	m.traceRate = reg.NewGauge("aj_trace_events_per_second",
		"Retained trace events per second of recording wall time, by "+
			"worker — the live throughput of the trace hot path.", "worker")
	faults := reg.NewCounter("aj_fault_events_total",
		"Injected faults realized during the solve, by event "+
			"(internal/fault: message loss, duplication, reordering, "+
			"heavy-tailed delays, stalls, crashes, restarts, and "+
			"termination-deadline degradations).", "event")
	m.faultDrop = faults.With("drop")
	m.faultDup = faults.With("dup")
	m.faultReorder = faults.With("reorder")
	m.faultDelay = faults.With("delay")
	m.faultStall = faults.With("stall")
	m.faultCrash = faults.With("crash")
	m.faultRestart = faults.With("restart")
	m.faultTermTimeout = faults.With("term_timeout")
	rec := reg.NewCounter("aj_recovery_events_total",
		"Recovery-layer actions taken during the solve, by event "+
			"(internal/resilience: checkpoint writes/loads, supervisor "+
			"death declarations and row reassignments, deadline and "+
			"cancellation stops, resumes, bounded retransmissions, and "+
			"dead-rank send exclusions).", "event")
	m.recCkptWrite = rec.With("checkpoint_write")
	m.recCkptError = rec.With("checkpoint_error")
	m.recCkptLoad = rec.With("checkpoint_load")
	m.recWorkerDead = rec.With("worker_dead")
	m.recReassign = rec.With("reassign")
	m.recDeadline = rec.With("deadline")
	m.recCancel = rec.With("cancel")
	m.recResume = rec.With("resume")
	m.recRetransmit = rec.With("retransmit")
	m.recExclude = rec.With("exclude")
	m.ckptBytes = reg.NewGauge("aj_checkpoint_bytes",
		"Size of the most recently written checkpoint file.").With()
	m.ckptAge = reg.NewGauge("aj_checkpoint_age_seconds",
		"Wall-clock age of the last successful checkpoint write; how "+
			"much progress a kill right now would lose.").With()
	m.alerts = reg.NewCounter("aj_alerts_total",
		"Anomaly alerts raised by the live analytics engine, by type "+
			"(divergence, stall, dead_worker).", "type")
	tr := reg.NewCounter("aj_transport_events_total",
		"Wire-transport lifecycle events, by event (internal/dist "+
			"transports: bounded send/dial retries, peer reconnects, "+
			"operation deadline expiries, bounded-mailbox and "+
			"send-queue evictions, heartbeat-declared peer deaths, and "+
			"peer revivals after a reconnect).", "event")
	m.trRetry = tr.With("retry")
	m.trReconnect = tr.With("reconnect")
	m.trTimeout = tr.With("timeout")
	m.trEvict = tr.With("evict")
	m.trPeerDead = tr.With("peer_dead")
	m.trRevive = tr.With("revive")
	trBytes := reg.NewCounter("aj_transport_bytes_total",
		"Wire-transport payload bytes moved, by direction.", "dir")
	m.trTxBytes = trBytes.With("tx")
	m.trRxBytes = trBytes.With("rx")
	trFrames := reg.NewCounter("aj_transport_frames_total",
		"Wire-transport frames moved, by direction.", "dir")
	m.trTxFrames = trFrames.With("tx")
	m.trRxFrames = trFrames.With("rx")
	m.wireRTT = reg.NewHistogram("aj_wire_rtt_seconds",
		"Measured heartbeat round-trip time to each peer (ping/echo "+
			"timing probes on the control lane).", LatencyBuckets(), "peer")
	m.wireDelay = reg.NewHistogram("aj_wire_delay_seconds",
		"Measured one-way delay of inbound data/put frames from each "+
			"peer, skew-corrected via the heartbeat offset estimate — the "+
			"*observed* counterpart of the fault injector's configured "+
			"delay distribution (the paper's §IV delay model).",
		LatencyBuckets(), "peer")
	m.wireOffset = reg.NewGauge("aj_wire_clock_offset_seconds",
		"Estimated clock offset to each peer (peer minus local, NTP-style "+
			"midpoint, median over the lowest-RTT half of the sample window).",
		"peer")
	m.wireOutbox = reg.NewGauge("aj_wire_outbox_depth",
		"Queued frames per peer outbox lane (control / puts / data), "+
			"sampled each heartbeat tick — live wire backpressure.",
		"peer", "lane")
	m.wireEvents = reg.NewCounter("aj_wire_events_total",
		"Per-peer wire events: injected frame drops, evict-oldest sheds, "+
			"reconnects, and eager boundary retransmissions.",
		"peer", "event")
	return m
}

// StalenessQuantile reads an approximate quantile of the staleness
// histogram (0 on nil or when nothing was observed).
func (m *SolverMetrics) StalenessQuantile(q float64) float64 {
	if m == nil {
		return 0
	}
	return m.staleness.Quantile(q)
}

// Transport-layer counters (see internal/dist and its wire backends).
// All nil-safe.

// TransportRetry counts one bounded-backoff retry of a dial or send.
func (m *SolverMetrics) TransportRetry() {
	if m != nil {
		m.trRetry.Inc()
	}
}

// TransportReconnect counts one successful peer reconnection.
func (m *SolverMetrics) TransportReconnect() {
	if m != nil {
		m.trReconnect.Inc()
		m.emit(stream.TypeRecovery, "reconnect")
	}
}

// TransportTimeout counts one wire-operation deadline expiry (a
// blocking receive or collective that returned ErrTimeout).
func (m *SolverMetrics) TransportTimeout() {
	if m != nil {
		m.trTimeout.Inc()
	}
}

// TransportEvict counts one message dropped by the bounded-mailbox or
// send-queue evict-oldest policy (newest-wins is legal for ghost
// traffic: readers drain to the newest anyway).
func (m *SolverMetrics) TransportEvict() {
	if m != nil {
		m.trEvict.Inc()
	}
}

// TransportPeerDead counts one heartbeat- or connection-loss-declared
// peer death feeding the dead-rank board.
func (m *SolverMetrics) TransportPeerDead() {
	if m != nil {
		m.trPeerDead.Inc()
		m.emit(stream.TypeRecovery, "peer_dead")
	}
}

// TransportRevive counts one dead-marked peer coming back (a restart
// re-dialed, or a new hello arrived on the listener).
func (m *SolverMetrics) TransportRevive() {
	if m != nil {
		m.trRevive.Inc()
		m.emit(stream.TypeRecovery, "revive")
	}
}

// TransportTx counts one outbound wire frame of the given payload size.
func (m *SolverMetrics) TransportTx(bytes int) {
	if m != nil {
		m.trTxFrames.Inc()
		m.trTxBytes.Add(bytes)
	}
}

// TransportRx counts one inbound wire frame of the given payload size.
func (m *SolverMetrics) TransportRx(bytes int) {
	if m != nil {
		m.trRxFrames.Inc()
		m.trRxBytes.Add(bytes)
	}
}

// TransportRetryCount reads the transport retry counter (0 on nil).
func (m *SolverMetrics) TransportRetryCount() uint64 {
	if m == nil {
		return 0
	}
	return m.trRetry.Value()
}

// TransportReconnectCount reads the reconnect counter (0 on nil).
func (m *SolverMetrics) TransportReconnectCount() uint64 {
	if m == nil {
		return 0
	}
	return m.trReconnect.Value()
}

// TransportTimeoutCount reads the deadline-expiry counter (0 on nil).
func (m *SolverMetrics) TransportTimeoutCount() uint64 {
	if m == nil {
		return 0
	}
	return m.trTimeout.Value()
}

// TransportEvictCount reads the bounded-queue eviction counter (0 on
// nil).
func (m *SolverMetrics) TransportEvictCount() uint64 {
	if m == nil {
		return 0
	}
	return m.trEvict.Value()
}

// TransportTxFrameCount reads the outbound frame counter (0 on nil).
func (m *SolverMetrics) TransportTxFrameCount() uint64 {
	if m == nil {
		return 0
	}
	return m.trTxFrames.Value()
}

// TransportRxFrameCount reads the inbound frame counter (0 on nil).
func (m *SolverMetrics) TransportRxFrameCount() uint64 {
	if m == nil {
		return 0
	}
	return m.trRxFrames.Value()
}

// Recovery-layer counters (see internal/resilience). All nil-safe.

// RecoveryCheckpointWrite counts one published checkpoint and updates
// the size and age gauges.
func (m *SolverMetrics) RecoveryCheckpointWrite(nbytes int) {
	if m != nil {
		m.recCkptWrite.Inc()
		m.ckptBytes.Set(float64(nbytes))
		m.ckptAge.Set(0)
		m.emit(stream.TypeRecovery, "checkpoint_write")
	}
}

// RecoveryCheckpointError counts one failed checkpoint write.
func (m *SolverMetrics) RecoveryCheckpointError() {
	if m != nil {
		m.recCkptError.Inc()
		m.emit(stream.TypeRecovery, "checkpoint_error")
	}
}

// RecoveryCheckpointLoad counts one checkpoint restored into a solve.
func (m *SolverMetrics) RecoveryCheckpointLoad() {
	if m != nil {
		m.recCkptLoad.Inc()
		m.emit(stream.TypeRecovery, "checkpoint_load")
	}
}

// SetCheckpointAge republishes the checkpoint-age gauge.
func (m *SolverMetrics) SetCheckpointAge(seconds float64) {
	if m != nil {
		m.ckptAge.Set(seconds)
	}
}

// RecoveryWorkerDead counts the supervisor declaring one worker dead
// after a heartbeat stall.
func (m *SolverMetrics) RecoveryWorkerDead() {
	if m != nil {
		m.recWorkerDead.Inc()
		m.emit(stream.TypeRecovery, "worker_dead")
	}
}

// RecoveryReassign counts one row-block reassignment to a survivor.
func (m *SolverMetrics) RecoveryReassign() {
	if m != nil {
		m.recReassign.Inc()
		m.emit(stream.TypeRecovery, "reassign")
	}
}

// RecoveryDeadline counts a solve stopped by its wall-clock budget.
func (m *SolverMetrics) RecoveryDeadline() {
	if m != nil {
		m.recDeadline.Inc()
		m.emit(stream.TypeRecovery, "deadline")
	}
}

// RecoveryCancel counts a solve stopped by context cancellation.
func (m *SolverMetrics) RecoveryCancel() {
	if m != nil {
		m.recCancel.Inc()
		m.emit(stream.TypeRecovery, "cancel")
	}
}

// RecoveryResume counts a solve continued from a checkpoint.
func (m *SolverMetrics) RecoveryResume() {
	if m != nil {
		m.recResume.Inc()
		m.emit(stream.TypeRecovery, "resume")
	}
}

// RecoveryRetransmit counts one bounded-backoff retransmission of
// boundary values on an idle lossy link.
func (m *SolverMetrics) RecoveryRetransmit() {
	if m != nil {
		m.recRetransmit.Inc()
		m.emit(stream.TypeRecovery, "retransmit")
	}
}

// RecoveryExclude counts one send suppressed because the target rank
// was marked dead (rank exclusion).
func (m *SolverMetrics) RecoveryExclude() {
	if m != nil {
		m.recExclude.Inc()
		m.emit(stream.TypeRecovery, "exclude")
	}
}

// RecoveryWorkerDeadCount reads the worker-death counter (0 on nil).
func (m *SolverMetrics) RecoveryWorkerDeadCount() uint64 {
	if m == nil {
		return 0
	}
	return m.recWorkerDead.Value()
}

// RecoveryReassignCount reads the reassignment counter (0 on nil).
func (m *SolverMetrics) RecoveryReassignCount() uint64 {
	if m == nil {
		return 0
	}
	return m.recReassign.Value()
}

// RecoveryCheckpointWriteCount reads the checkpoint-write counter.
func (m *SolverMetrics) RecoveryCheckpointWriteCount() uint64 {
	if m == nil {
		return 0
	}
	return m.recCkptWrite.Value()
}

// RecoveryRetransmitCount reads the retransmission counter (0 on nil).
func (m *SolverMetrics) RecoveryRetransmitCount() uint64 {
	if m == nil {
		return 0
	}
	return m.recRetransmit.Value()
}

// RecoveryExcludeCount reads the dead-rank exclusion counter.
func (m *SolverMetrics) RecoveryExcludeCount() uint64 {
	if m == nil {
		return 0
	}
	return m.recExclude.Value()
}

// Fault-injection counters (see internal/fault). All nil-safe.

// FaultDrop counts one injected message loss.
func (m *SolverMetrics) FaultDrop() {
	if m != nil {
		m.faultDrop.Inc()
		m.emit(stream.TypeFault, "drop")
	}
}

// FaultDup counts one injected message duplication.
func (m *SolverMetrics) FaultDup() {
	if m != nil {
		m.faultDup.Inc()
		m.emit(stream.TypeFault, "dup")
	}
}

// FaultReorder counts one injected message reordering.
func (m *SolverMetrics) FaultReorder() {
	if m != nil {
		m.faultReorder.Inc()
		m.emit(stream.TypeFault, "reorder")
	}
}

// FaultDelay counts one heavy-tailed delay draw that slept.
func (m *SolverMetrics) FaultDelay() {
	if m != nil {
		m.faultDelay.Inc()
		m.emit(stream.TypeFault, "delay")
	}
}

// FaultStall counts one injected stall.
func (m *SolverMetrics) FaultStall() {
	if m != nil {
		m.faultStall.Inc()
		m.emit(stream.TypeFault, "stall")
	}
}

// FaultCrash counts one injected rank/worker crash.
func (m *SolverMetrics) FaultCrash() {
	if m != nil {
		m.faultCrash.Inc()
		m.emit(stream.TypeFault, "crash")
	}
}

// FaultRestart counts one crashed rank/worker rejoining.
func (m *SolverMetrics) FaultRestart() {
	if m != nil {
		m.faultRestart.Inc()
		m.emit(stream.TypeFault, "restart")
	}
}

// FaultTermTimeout counts one termination-deadline degradation (a
// surviving rank deciding without the crashed ranks).
func (m *SolverMetrics) FaultTermTimeout() {
	if m != nil {
		m.faultTermTimeout.Inc()
		m.emit(stream.TypeFault, "term_timeout")
	}
}

// FaultDropCount reads the injected-drop counter (0 on nil).
func (m *SolverMetrics) FaultDropCount() uint64 {
	if m == nil {
		return 0
	}
	return m.faultDrop.Value()
}

// FaultDupCount reads the injected-duplication counter (0 on nil).
func (m *SolverMetrics) FaultDupCount() uint64 {
	if m == nil {
		return 0
	}
	return m.faultDup.Value()
}

// FaultCrashCount reads the injected-crash counter (0 on nil).
func (m *SolverMetrics) FaultCrashCount() uint64 {
	if m == nil {
		return 0
	}
	return m.faultCrash.Value()
}

// TraceCapture is one worker's execution-trace capture totals after a
// solve, as reported by trace.Ring.Stats.
type TraceCapture struct {
	// Events is the count retained in the ring; Dropped is what
	// wraparound overwrote. Trace loss is an observability signal of
	// its own — a truncated ring silently turns "the realized
	// schedule" into "the last window of it".
	Events, Dropped int
	// Coalesced counts per-component reads folded into read-block
	// events; SampledOut counts relaxations the sampling policy
	// skipped; Bytes is the encoded wire size (Events+Dropped events).
	Coalesced, SampledOut, Bytes int
	// EventsPerSec is the retained-event throughput over the span
	// between the ring's first and last stamps (0 when unknown).
	EventsPerSec float64
}

// TraceCaptured reports one worker's execution-trace capture totals
// after a solve.
func (m *SolverMetrics) TraceCaptured(worker int, c TraceCapture) {
	if m == nil {
		return
	}
	w := strconv.Itoa(worker)
	m.traceEvents.With(w).Add(c.Events)
	m.traceDropped.With(w).Add(c.Dropped)
	m.traceBytes.With(w).Add(c.Bytes)
	m.traceCoalesced.With(w).Add(c.Coalesced)
	m.traceSampledOut.With(w).Add(c.SampledOut)
	m.traceRate.With(w).Set(c.EventsPerSec)
}

// Registry returns the backing registry (nil on a nil handle).
func (m *SolverMetrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// SetWorkers records the configured worker/rank count.
func (m *SolverMetrics) SetWorkers(n int) {
	if m == nil {
		return
	}
	m.workers.Set(float64(n))
}

// SetResidual publishes a residual sample.
func (m *SolverMetrics) SetResidual(v float64) {
	if m == nil {
		return
	}
	m.residual.Set(v)
	if m.strm != nil {
		m.mirrorResidual(v)
	}
}

// SetConverged latches the final convergence state. With a bus
// attached this is also the end-of-solve event: every solver calls it
// exactly once, after the final residual is known.
func (m *SolverMetrics) SetConverged(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.converged.Set(1)
	} else {
		m.converged.Set(0)
	}
	if m.strm != nil {
		m.strm.bus.Publish(stream.Event{
			Type: stream.TypeDone, Worker: -1,
			Residual: m.residual.Value(), Converged: ok,
		})
	}
}

// IncDelay counts one injected delay sleep.
func (m *SolverMetrics) IncDelay() {
	if m == nil {
		return
	}
	m.delays.Inc()
}

// ObserveStaleness records how many sender updates a reader skipped
// since it last looked at that sender.
func (m *SolverMetrics) ObserveStaleness(missed int) {
	if m == nil {
		return
	}
	if missed < 0 {
		missed = 0
	}
	m.staleness.Observe(float64(missed))
}

// Termination-protocol transition counters (see internal/dist).

func (m *SolverMetrics) TermFlagRaise() {
	if m != nil {
		m.termRaise.Inc()
		m.emit(stream.TypeTermination, "flag_raise")
	}
}

func (m *SolverMetrics) TermFlagLower() {
	if m != nil {
		m.termLower.Inc()
		m.emit(stream.TypeTermination, "flag_lower")
	}
}

func (m *SolverMetrics) TermLatch() {
	if m != nil {
		m.termLatch.Inc()
		m.emit(stream.TypeTermination, "latch")
	}
}

func (m *SolverMetrics) TermTokenPass() {
	if m != nil {
		m.termTokenPass.Inc()
		m.emit(stream.TypeTermination, "token_pass")
	}
}

func (m *SolverMetrics) TermTokenBlacken() {
	if m != nil {
		m.termTokenBlacken.Inc()
		m.emit(stream.TypeTermination, "token_blacken")
	}
}

func (m *SolverMetrics) TermHalt() {
	if m != nil {
		m.termHalt.Inc()
		m.emit(stream.TypeTermination, "halt")
	}
}

func (m *SolverMetrics) TermDecided() {
	if m != nil {
		m.termDecided.Inc()
		m.emit(stream.TypeTermination, "decided")
	}
}

// TermResume counts one recheck-and-resume pass: termination detection
// latched on stale ghost data while the exact residual was still above
// tolerance, and the solver resumed from the current iterate.
func (m *SolverMetrics) TermResume() {
	if m != nil {
		m.termResume.Inc()
		m.emit(stream.TypeTermination, "resume")
	}
}

// Cluster-simulator hooks.

func (m *SolverMetrics) SimRelaxations(n int) {
	if m != nil {
		m.simRelax.Add(n)
	}
}

func (m *SolverMetrics) SimMessage() {
	if m != nil {
		m.simMsgs.Inc()
	}
}

func (m *SolverMetrics) SimMessageDropped() {
	if m != nil {
		m.simDropped.Inc()
	}
}

func (m *SolverMetrics) SetSimTime(t float64) {
	if m != nil {
		m.simTime.Set(t)
	}
}

// WorkerMetrics is the per-worker hot-path handle: children are
// resolved once (one map lookup each) at worker start, so the
// relaxation loop sees only direct atomic operations.
type WorkerMetrics struct {
	relax, iters, yields *Counter
	sweep                *Histogram
	parent               *SolverMetrics
	ws                   *workerStream
}

// Worker resolves the handle for worker id; nil-safe.
func (m *SolverMetrics) Worker(id int) *WorkerMetrics {
	if m == nil {
		return nil
	}
	w := strconv.Itoa(id)
	return &WorkerMetrics{
		relax:  m.relax.With(w),
		iters:  m.iters.With(w),
		yields: m.yields.With(w),
		sweep:  m.sweep.With(w),
		parent: m,
		ws:     newWorkerStream(m.strm, id),
	}
}

// AddRelaxations counts n row relaxations.
func (w *WorkerMetrics) AddRelaxations(n int) {
	if w != nil {
		w.relax.Add(n)
	}
}

// IncIteration counts one completed local iteration and, with a bus
// attached, publishes this worker's periodic sample when the gate
// allows.
func (w *WorkerMetrics) IncIteration() {
	if w != nil {
		w.iters.Inc()
		if w.ws != nil {
			w.ws.maybePublish(w.iters.Value(), w.relax.Value())
		}
	}
}

// IncYield counts one scheduler yield.
func (w *WorkerMetrics) IncYield() {
	if w != nil {
		w.yields.Inc()
	}
}

// ObserveSweep records the latency of one local iteration.
func (w *WorkerMetrics) ObserveSweep(d time.Duration) {
	if w != nil {
		w.sweep.Observe(d.Seconds())
	}
}

// ObserveStaleness forwards to the shared staleness histogram and
// accumulates the observation for this worker's next stream sample.
func (w *WorkerMetrics) ObserveStaleness(missed int) {
	if w != nil {
		w.parent.ObserveStaleness(missed)
		w.ws.observe(missed)
	}
}

// SetResidual forwards a live residual sample.
func (w *WorkerMetrics) SetResidual(v float64) {
	if w != nil {
		w.parent.SetResidual(v)
	}
}

// SetLocalResidual publishes this worker's residual-share sample (the
// 1-norm of the residual over its row block, normalized like the
// global residual) to the bus-wide sum-of-shares estimate.
func (w *WorkerMetrics) SetLocalResidual(v float64) {
	if w != nil {
		w.ws.setShare(v)
	}
}

// StreamSampleDue reports whether this worker's next periodic stream
// sample would actually publish — callers use it to skip computing the
// residual share when the sample gate is closed (or no bus attached).
func (w *WorkerMetrics) StreamSampleDue() bool {
	return w != nil && w.ws.due()
}

// IncDelay forwards one injected delay sleep.
func (w *WorkerMetrics) IncDelay() {
	if w != nil {
		w.parent.IncDelay()
	}
}

// RankMetrics is the per-rank handle of the distributed substrate.
type RankMetrics struct {
	relax, iters             *Counter
	msgsSent, msgsRecv, puts *Counter
	localResidual            *Gauge
	parent                   *SolverMetrics
	ws                       *workerStream
}

// Rank resolves the handle for the given rank; nil-safe.
func (m *SolverMetrics) Rank(id int) *RankMetrics {
	if m == nil {
		return nil
	}
	w := strconv.Itoa(id)
	return &RankMetrics{
		relax:         m.relax.With(w),
		iters:         m.iters.With(w),
		msgsSent:      m.msgsSent.With(w),
		msgsRecv:      m.msgsRecv.With(w),
		puts:          m.puts.With(w),
		localResidual: m.localResidual.With(w),
		parent:        m,
		ws:            newWorkerStream(m.strm, id),
	}
}

// AddRelaxations counts n row relaxations.
func (r *RankMetrics) AddRelaxations(n int) {
	if r != nil {
		r.relax.Add(n)
	}
}

// IncIteration counts one completed local iteration and, with a bus
// attached, publishes this rank's periodic sample when the gate
// allows.
func (r *RankMetrics) IncIteration() {
	if r != nil {
		r.iters.Inc()
		if r.ws != nil {
			r.ws.maybePublish(r.iters.Value(), r.relax.Value())
		}
	}
}

// IncSent counts one point-to-point message sent.
func (r *RankMetrics) IncSent() {
	if r != nil {
		r.msgsSent.Inc()
	}
}

// IncReceived counts one point-to-point message received.
func (r *RankMetrics) IncReceived() {
	if r != nil {
		r.msgsRecv.Inc()
	}
}

// IncPut counts one RMA window put.
func (r *RankMetrics) IncPut() {
	if r != nil {
		r.puts.Inc()
	}
}

// SetLocalResidual publishes this rank's local residual share, both
// to the per-rank gauge and (with a bus attached) to the bus-wide
// sum-of-shares residual estimate.
func (r *RankMetrics) SetLocalResidual(v float64) {
	if r != nil {
		r.localResidual.Set(v)
		r.ws.setShare(v)
	}
}

// ObserveStaleness records missed sender updates on a ghost read and
// accumulates the observation for this rank's next stream sample.
func (r *RankMetrics) ObserveStaleness(missed int) {
	if r != nil {
		r.parent.ObserveStaleness(missed)
		r.ws.observe(missed)
	}
}

// IncDelay forwards one injected delay sleep.
func (r *RankMetrics) IncDelay() {
	if r != nil {
		r.parent.IncDelay()
	}
}
