package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestSolverMetricsNil drives every method through a nil handle — the
// metrics-disabled path the solvers run by default. None may panic.
func TestSolverMetricsNil(t *testing.T) {
	var m *SolverMetrics
	if m.Registry() != nil {
		t.Fatalf("nil handle has a registry")
	}
	m.SetWorkers(4)
	m.SetResidual(0.5)
	m.SetConverged(true)
	m.IncDelay()
	m.ObserveStaleness(3)
	m.TermFlagRaise()
	m.TermFlagLower()
	m.TermLatch()
	m.TermTokenPass()
	m.TermTokenBlacken()
	m.TermHalt()
	m.TermDecided()
	m.SimRelaxations(10)
	m.SimMessage()
	m.SimMessageDropped()
	m.SetSimTime(1.5)

	w := m.Worker(0)
	if w != nil {
		t.Fatalf("nil handle returned a non-nil WorkerMetrics")
	}
	w.AddRelaxations(5)
	w.IncIteration()
	w.IncYield()
	w.ObserveSweep(time.Millisecond)
	w.ObserveStaleness(1)
	w.SetResidual(0.1)
	w.IncDelay()

	r := m.Rank(0)
	if r != nil {
		t.Fatalf("nil handle returned a non-nil RankMetrics")
	}
	r.AddRelaxations(5)
	r.IncIteration()
	r.IncSent()
	r.IncReceived()
	r.IncPut()
	r.SetLocalResidual(0.2)
	r.ObserveStaleness(2)
	r.IncDelay()
}

// TestSolverMetricsExposition drives the live handle and checks every
// family shows up in the Prometheus text with the recorded values.
func TestSolverMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	m := NewSolverMetrics(reg)
	m.SetWorkers(2)
	m.SetConverged(true)
	m.ObserveStaleness(5)
	m.ObserveStaleness(-1) // clamps to 0
	m.IncDelay()
	m.TermFlagRaise()
	m.TermLatch()
	m.SimRelaxations(100)
	m.SimMessage()
	m.SetSimTime(2.5)

	w := m.Worker(0)
	w.AddRelaxations(64)
	w.IncIteration()
	w.IncYield()
	w.ObserveSweep(2 * time.Millisecond)
	w.SetResidual(0.25)

	r := m.Rank(1)
	r.AddRelaxations(32)
	r.IncIteration()
	r.IncSent()
	r.IncReceived()
	r.IncPut()
	r.SetLocalResidual(0.125)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`aj_relaxations_total{worker="0"} 64`,
		`aj_relaxations_total{worker="1"} 32`,
		`aj_iterations_total{worker="0"} 1`,
		`aj_yields_total{worker="0"} 1`,
		`aj_sweep_seconds_count{worker="0"} 1`,
		`aj_residual 0.25`,
		`aj_converged 1`,
		`aj_workers 2`,
		`aj_injected_delays_total 1`,
		`aj_staleness_bucket{le="0"} 1`,
		`aj_staleness_count 2`,
		`aj_local_residual{rank="1"} 0.125`,
		`aj_messages_sent_total{rank="1"} 1`,
		`aj_messages_received_total{rank="1"} 1`,
		`aj_window_puts_total{rank="1"} 1`,
		`aj_termination_events_total{event="flag_raise"} 1`,
		`aj_termination_events_total{event="latch"} 1`,
		`aj_termination_events_total{event="token_pass"} 0`,
		`aj_sim_relaxations_total 100`,
		`aj_sim_messages_total 1`,
		`aj_sim_virtual_seconds 2.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSolverMetricsStalenessBuckets pins the bucket placement the dist
// and shm staleness instrumentation relies on: 0 missed updates lands
// in the le="0" bucket, large misses land in the tail.
func TestSolverMetricsStalenessBuckets(t *testing.T) {
	reg := NewRegistry()
	m := NewSolverMetrics(reg)
	m.ObserveStaleness(0)
	m.ObserveStaleness(1)
	m.ObserveStaleness(1 << 20) // beyond the last bound -> +Inf bucket
	bounds, counts := m.staleness.Snapshot()
	if bounds[0] != 0 || counts[0] != 1 {
		t.Fatalf("le=0 bucket: bounds[0]=%g counts[0]=%d", bounds[0], counts[0])
	}
	if counts[1] != 1 {
		t.Fatalf("le=1 bucket count = %d", counts[1])
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("+Inf bucket count = %d", counts[len(counts)-1])
	}
}
