package obs

import "strconv"

// WireMetrics is the per-peer handle of the wire-transport
// instrumentation: RTT and one-way delay histograms, the clock-offset
// gauge, per-lane outbox depth gauges, and the per-peer event counters.
// Like WorkerMetrics and RankMetrics, children are resolved once so the
// transport's reader/writer loops see only direct atomic operations,
// and every method no-ops on a nil receiver.
type WireMetrics struct {
	rtt, delay            *Histogram
	offset                *Gauge
	obControl             *Gauge
	obPuts, obData        *Gauge
	drop, evict           *Counter
	reconnect, retransmit *Counter
}

// Wire resolves the per-peer wire handle; nil-safe.
func (m *SolverMetrics) Wire(peer int) *WireMetrics {
	if m == nil {
		return nil
	}
	p := strconv.Itoa(peer)
	return &WireMetrics{
		rtt:        m.wireRTT.With(p),
		delay:      m.wireDelay.With(p),
		offset:     m.wireOffset.With(p),
		obControl:  m.wireOutbox.With(p, "control"),
		obPuts:     m.wireOutbox.With(p, "puts"),
		obData:     m.wireOutbox.With(p, "data"),
		drop:       m.wireEvents.With(p, "drop"),
		evict:      m.wireEvents.With(p, "evict"),
		reconnect:  m.wireEvents.With(p, "reconnect"),
		retransmit: m.wireEvents.With(p, "retransmit"),
	}
}

// ObserveRTT records one measured heartbeat round trip, in seconds.
func (w *WireMetrics) ObserveRTT(seconds float64) {
	if w != nil {
		w.rtt.Observe(seconds)
	}
}

// ObserveDelay records one measured one-way frame delay, in seconds.
func (w *WireMetrics) ObserveDelay(seconds float64) {
	if w != nil {
		w.delay.Observe(seconds)
	}
}

// SetClockOffset publishes the current offset estimate (peer minus
// local), in seconds.
func (w *WireMetrics) SetClockOffset(seconds float64) {
	if w != nil {
		w.offset.Set(seconds)
	}
}

// SetOutboxDepths publishes the per-lane outbox depths.
func (w *WireMetrics) SetOutboxDepths(control, puts, data int) {
	if w != nil {
		w.obControl.Set(float64(control))
		w.obPuts.Set(float64(puts))
		w.obData.Set(float64(data))
	}
}

// Drop counts one injected frame drop on this link.
func (w *WireMetrics) Drop() {
	if w != nil {
		w.drop.Inc()
	}
}

// Evict counts one frame shed by the bounded outbox on this link.
func (w *WireMetrics) Evict() {
	if w != nil {
		w.evict.Inc()
	}
}

// Reconnect counts one re-established connection to this peer.
func (w *WireMetrics) Reconnect() {
	if w != nil {
		w.reconnect.Inc()
	}
}

// Retransmit counts one eager boundary retransmission to this peer.
func (w *WireMetrics) Retransmit() {
	if w != nil {
		w.retransmit.Inc()
	}
}
