package obs_test

import (
	"testing"

	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/shm"
)

// These benchmarks pin the cost of the instrumentation layer on the
// shared-memory asynchronous solver, the hottest loop in the repo.
// Tol=0 fixes the work per op (every worker runs exactly MaxIters local
// iterations), so ns/op differences are attributable to the metrics
// path alone.
//
// Measured on the development container (4 workers, 64x64 FD grid,
// 200 iterations/worker, linux/amd64, Xeon 2.10GHz, -benchtime 30x):
//
//	BenchmarkShmSolveNilMetrics   ~35.4 ms/op   (seed-equivalent baseline)
//	BenchmarkShmSolveMetrics      ~34.1 ms/op
//
// The nil-metrics path is the seed solver plus one pointer comparison
// per iteration batch, and benchmarks identically to the seed within
// run-to-run noise — the two configurations are statistically
// indistinguishable here (the enabled run even came out marginally
// faster on this sample), well under the 5% budget. The
// enabled path stays cheap because children are resolved once per
// worker and the per-iteration work is a handful of uncontended atomic
// adds — there is no lock anywhere near the relaxation loop.

func benchSolve(b *testing.B, m *obs.SolverMetrics) {
	a := matgen.FD2D(64, 64)
	n := a.N
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	x0 := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shm.Solve(a, rhs, x0, shm.Options{
			Threads:     4,
			MaxIters:    200,
			Tol:         0, // fixed iteration count: constant work per op
			Async:       true,
			DelayThread: -1,
			Metrics:     m,
		})
	}
}

// BenchmarkShmSolveNilMetrics is the metrics-disabled path every
// default solve takes: opt.Metrics == nil, so instrumentation reduces
// to nil checks. This is the number to compare against the seed.
func BenchmarkShmSolveNilMetrics(b *testing.B) {
	benchSolve(b, nil)
}

// BenchmarkShmSolveMetrics is the fully instrumented path: per-worker
// relaxation/iteration/yield counters, sweep latency and staleness
// histograms, and a live residual gauge.
func BenchmarkShmSolveMetrics(b *testing.B) {
	reg := obs.NewRegistry()
	benchSolve(b, obs.NewSolverMetrics(reg))
}

// BenchmarkCounterInc and BenchmarkCounterIncNil pin the primitive
// costs: one atomic add when enabled, one nil check when disabled.
func BenchmarkCounterInc(b *testing.B) {
	var c obs.Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *obs.Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures the enabled histogram hot path
// (bucket search + two atomic adds + CAS on the float sum).
func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewHistogram(obs.StalenessBuckets())
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 15))
	}
}
