package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server serves a registry over HTTP:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   expvar-style flat JSON
//	/healthz        liveness JSON ({"status":"ok","uptime":...})
//	/debug/pprof/   the standard runtime profiles
//
// pprof is wired onto the same mux (not http.DefaultServeMux) so a
// long-running asynchronous solve can be CPU- or block-profiled live —
// the slow-thread experiments of Fig 3/4 are exactly the situation
// where you want `go tool pprof http://host/debug/pprof/profile`.
type Server struct {
	reg   *Registry
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Handler returns the HTTP handler serving the registry, usable when
// the caller owns the server (tests, embedding into an existing mux).
func Handler(reg *Registry) http.Handler {
	s := &Server{reg: reg, start: time.Now()}
	return s.mux()
}

func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f}\n",
			time.Since(s.start).Seconds())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for reg on addr (":9090", "127.0.0.1:0",
// ...) and returns once the listener is bound, serving in the
// background. Close shuts it down.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, ln: ln, start: time.Now()}
	s.srv = &http.Server{Handler: s.mux()}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
