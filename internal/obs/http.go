package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/stream"
)

// Server serves a registry over HTTP:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   expvar-style flat JSON
//	/healthz        liveness JSON ({"status":"ok","uptime":...})
//	/stream         Server-Sent Events telemetry (with AttachBus)
//	/alerts         JSON alert log (with AttachAlerts)
//	/debug/pprof/   the standard runtime profiles
//
// pprof is wired onto the same mux (not http.DefaultServeMux) so a
// long-running asynchronous solve can be CPU- or block-profiled live —
// the slow-thread experiments of Fig 3/4 are exactly the situation
// where you want `go tool pprof http://host/debug/pprof/profile`.
type Server struct {
	reg    *Registry
	ln     net.Listener
	srv    *http.Server
	start  time.Time
	bus    *stream.Bus
	alerts http.Handler
	quit   chan struct{}
}

// NewServer builds an unstarted server for reg. Attach the bus and
// alert handler before Start; the handlers read them per request.
func NewServer(reg *Registry) *Server {
	return &Server{reg: reg, start: time.Now(), quit: make(chan struct{})}
}

// AttachBus enables the /stream SSE endpoint, subscribing each client
// to b. Call before Start.
func (s *Server) AttachBus(b *stream.Bus) {
	if s != nil {
		s.bus = b
	}
}

// AttachAlerts mounts h at /alerts (typically the analytics engine's
// JSON alert log). Call before Start.
func (s *Server) AttachAlerts(h http.Handler) {
	if s != nil {
		s.alerts = h
	}
}

// Handler returns the HTTP handler serving the registry, usable when
// the caller owns the server (tests, embedding into an existing mux).
func Handler(reg *Registry) http.Handler {
	return NewServer(reg).mux()
}

func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f}\n",
			time.Since(s.start).Seconds())
	})
	mux.HandleFunc("/stream", s.serveStream)
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		if s.alerts == nil {
			http.Error(w, "no alert log attached", http.StatusNotFound)
			return
		}
		s.alerts.ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveStream is the SSE endpoint: one `data:` line per bus event,
// JSON-encoded with the stream.Event field names. The subscription's
// ring is generous (4096) but still bounded — a slow client drops
// oldest events rather than backpressuring the solver.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request) {
	if s.bus == nil {
		http.Error(w, "no telemetry bus attached", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := s.bus.Subscribe(4096)
	defer sub.Close()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev := <-sub.C():
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(ev); err != nil { // Encode appends \n
				return
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		}
	}
}

// Start binds addr (":9090", "127.0.0.1:0", ...) and serves in the
// background, returning once the listener is bound.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux()}
	go s.srv.Serve(ln)
	return nil
}

// Serve starts an HTTP server for reg on addr and returns once the
// listener is bound, serving in the background. Shutdown (graceful)
// or Close (hard) stops it.
func Serve(addr string, reg *Registry) (*Server, error) {
	s := NewServer(reg)
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops the server gracefully: the listener closes
// immediately (no new scrapes), open SSE streams are told to finish,
// and in-flight requests are drained until ctx expires, at which point
// any stragglers are hard-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
		return err
	}
	return nil
}

// Close stops the server immediately, aborting in-flight requests.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	return s.srv.Close()
}
