package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil Counter Value() = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value() = %g, want 1.5", got)
	}
	g.Add(-2.25)
	if got := g.Value(); got != -0.75 {
		t.Fatalf("after Add, Value() = %g, want -0.75", got)
	}
	var nilG *Gauge
	nilG.Set(3)
	nilG.Add(1)
	if got := nilG.Value(); got != 0 {
		t.Fatalf("nil Gauge Value() = %g, want 0", got)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 1e6} {
		h.Observe(v)
	}
	// Prometheus semantics: an observation lands in the first bucket
	// whose upper bound is >= value, so exact bound hits count low.
	_, counts := h.Snapshot()
	want := []uint64{2, 2, 2, 1} // (<=1)=2, (<=10)=2, (<=100)=2, +Inf=1
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("Count() = %d, want 7", h.Count())
	}
	wantSum := 0.5 + 1 + 5 + 10 + 50 + 100 + 1e6
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("Sum() = %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil Histogram observed something")
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewHistogram with unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if sb := StalenessBuckets(); sb[0] != 0 || sb[1] != 1 || len(sb) != 16 {
		t.Fatalf("StalenessBuckets() = %v", sb)
	}
	if lb := LatencyBuckets(); len(lb) != 12 || lb[0] != 1e-6 {
		t.Fatalf("LatencyBuckets() = %v", lb)
	}
}

func TestPrimitivesConcurrent(t *testing.T) {
	const workers, perWorker = 8, 1000
	var c Counter
	var g Gauge
	h := NewHistogram(StalenessBuckets())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 3))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("Counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("Gauge = %g, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("Histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	relax := r.NewCounter("test_relax_total", "Relaxations.", "worker")
	relax.With("0").Add(10)
	relax.With("1").Add(20)
	r.NewGauge("test_residual", "Residual.").With().Set(0.125)
	h := r.NewHistogram("test_lat", "Latency.", []float64{1, 2}).With()
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_relax_total Relaxations.\n# TYPE test_relax_total counter\n",
		`test_relax_total{worker="0"} 10`,
		`test_relax_total{worker="1"} 20`,
		"# TYPE test_residual gauge",
		"test_residual 0.125",
		"# TYPE test_lat histogram",
		`test_lat_bucket{le="1"} 1`,
		`test_lat_bucket{le="2"} 2`,
		`test_lat_bucket{le="+Inf"} 3`,
		"test_lat_sum 101",
		"test_lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render in registration order; children sorted.
	if strings.Index(out, "test_relax_total") > strings.Index(out, "test_residual") {
		t.Fatalf("families out of registration order:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c_total", "c", "rank").With("3").Add(7)
	r.NewGauge("g", "g").With().Set(2.5)
	h := r.NewHistogram("h", "h", []float64{1}).With()
	h.Observe(0.5)
	h.Observe(42)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if string(got[`c_total{rank="3"}`]) != "7" {
		t.Fatalf("counter series = %s", got[`c_total{rank="3"}`])
	}
	if string(got["g"]) != "2.5" {
		t.Fatalf("gauge series = %s", got["g"])
	}
	var hj struct {
		Count   uint64            `json:"count"`
		Sum     float64           `json:"sum"`
		Buckets map[string]uint64 `json:"buckets"`
	}
	if err := json.Unmarshal(got["h"], &hj); err != nil {
		t.Fatal(err)
	}
	if hj.Count != 2 || hj.Sum != 42.5 || hj.Buckets["1"] != 1 || hj.Buckets["+Inf"] != 2 {
		t.Fatalf("histogram JSON = %+v", hj)
	}
}

func TestRegistryReRegister(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "first", "l")
	b := r.NewCounter("dup_total", "second", "l")
	a.With("x").Inc()
	if b.With("x").Value() != 1 {
		t.Fatalf("re-registration did not return the same family")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering with a different shape did not panic")
		}
	}()
	r.NewGauge("dup_total", "bad")
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.125:        "0.125",
		1e-06:        "1e-06",
		10:           "10",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Fatalf("formatValue(%g) = %q, want %q", in, got, want)
		}
	}
}
