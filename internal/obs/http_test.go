package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestRegistry() *Registry {
	r := NewRegistry()
	r.NewCounter("aj_relaxations_total", "relaxations", "worker").With("0").Add(3)
	r.NewGauge("aj_residual", "residual").With().Set(0.5)
	return r
}

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Header().Get("Content-Type"), rec.Body.String()
}

func TestHandlerMetrics(t *testing.T) {
	h := Handler(newTestRegistry())
	code, ct, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, `aj_relaxations_total{worker="0"} 3`) {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}
}

func TestHandlerMetricsJSON(t *testing.T) {
	code, ct, body := get(t, Handler(newTestRegistry()), "/metrics.json")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json status %d content type %q", code, ct)
	}
	if !strings.Contains(body, `"aj_residual": 0.5`) {
		t.Fatalf("/metrics.json body:\n%s", body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	code, _, body := get(t, Handler(newTestRegistry()), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz status %d body %q", code, body)
	}
	if !strings.Contains(body, "uptime_seconds") {
		t.Fatalf("/healthz missing uptime: %q", body)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	code, _, body := get(t, Handler(newTestRegistry()), "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index does not list profiles:\n%s", body)
	}
}

func TestServe(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", newTestRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatalf("Addr() empty after Serve")
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "aj_relaxations_total") {
		t.Fatalf("live /metrics status %d body:\n%s", resp.StatusCode, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestServerNilSafe(t *testing.T) {
	var s *Server
	if s.Addr() != "" {
		t.Fatalf("nil Server Addr() non-empty")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Server Close: %v", err)
	}
}
