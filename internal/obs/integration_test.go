package obs_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/shm"
)

// promValues parses a Prometheus text exposition into series -> value,
// skipping comment lines. Series names keep their label sets.
func promValues(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad exposition line %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// sumSeries adds up every series of one family (any label values).
func sumSeries(vals map[string]float64, family string) float64 {
	var s float64
	for k, v := range vals {
		if k == family || strings.HasPrefix(k, family+"{") {
			s += v
		}
	}
	return s
}

// TestShmSolveMetrics runs the shared-memory asynchronous solver with
// metrics enabled and checks the exposition agrees with the solver's
// own accounting.
func TestShmSolveMetrics(t *testing.T) {
	a := matgen.FD2D(24, 24)
	n := a.N
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	res := shm.Solve(a, b, make([]float64, n), shm.Options{
		Threads:     4,
		MaxIters:    2000,
		Tol:         1e-6,
		Async:       true,
		DelayThread: -1,
		Metrics:     m,
	})
	if !res.Converged {
		t.Fatalf("solve did not converge: relres %g", res.RelRes)
	}
	vals := promValues(t, reg)

	if got := sumSeries(vals, "aj_relaxations_total"); got != float64(res.TotalRelaxations) {
		t.Fatalf("aj_relaxations_total sums to %g, solver counted %d", got, res.TotalRelaxations)
	}
	var iterSum int
	for _, it := range res.Iterations {
		iterSum += it
	}
	if got := sumSeries(vals, "aj_iterations_total"); got != float64(iterSum) {
		t.Fatalf("aj_iterations_total sums to %g, solver counted %d", got, iterSum)
	}
	if vals["aj_workers"] != 4 {
		t.Fatalf("aj_workers = %g", vals["aj_workers"])
	}
	if vals["aj_converged"] != 1 {
		t.Fatalf("aj_converged = %g", vals["aj_converged"])
	}
	if got := vals["aj_residual"]; got != res.RelRes {
		t.Fatalf("aj_residual = %g, want exact final %g", got, res.RelRes)
	}
	// Workers sample every neighbor once per iteration, so the
	// staleness histogram must have observations on any multi-worker
	// async run.
	if vals["aj_staleness_count"] == 0 {
		t.Fatalf("aj_staleness histogram is empty")
	}
	if got := sumSeries(vals, "aj_sweep_seconds_count"); got != float64(iterSum) {
		t.Fatalf("aj_sweep_seconds counts %g sweeps, want %d", got, iterSum)
	}
}

// TestDistSolveMetricsAsync runs the distributed RMA solver with
// metrics enabled and checks relaxation totals, window traffic, the
// ghost staleness histogram, and termination-protocol events.
func TestDistSolveMetricsAsync(t *testing.T) {
	a := matgen.FD2D(16, 16)
	n := a.N
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	res := dist.Solve(a, b, make([]float64, n), dist.SolveOptions{
		Procs:       4,
		MaxIters:    5000,
		Tol:         1e-4,
		Async:       true,
		Termination: dist.FlagTree,
		DelayRank:   -1,
		Metrics:     m,
	})
	if !res.Converged {
		t.Fatalf("solve did not converge: relres %g", res.RelRes)
	}
	vals := promValues(t, reg)

	if got := sumSeries(vals, "aj_relaxations_total"); got != float64(res.TotalRelaxations) {
		t.Fatalf("aj_relaxations_total sums to %g, solver counted %d", got, res.TotalRelaxations)
	}
	if sumSeries(vals, "aj_window_puts_total") == 0 {
		t.Fatalf("async RMA run recorded no window puts")
	}
	if vals["aj_staleness_count"] == 0 {
		t.Fatalf("ghost-read staleness histogram is empty")
	}
	if vals[`aj_termination_events_total{event="flag_raise"}`] < 4 {
		t.Fatalf("expected every rank to raise its flag at least once: %g",
			vals[`aj_termination_events_total{event="flag_raise"}`])
	}
	if vals[`aj_termination_events_total{event="latch"}`] != 1 {
		t.Fatalf("termination latch fired %g times, want once",
			vals[`aj_termination_events_total{event="latch"}`])
	}
	if sumSeries(vals, "aj_local_residual") < 0 {
		t.Fatalf("negative local residual")
	}
}

// TestDistSolveMetricsSync checks point-to-point message accounting:
// the synchronous solver's sends and receives must balance exactly.
func TestDistSolveMetricsSync(t *testing.T) {
	a := matgen.FD2D(12, 12)
	n := a.N
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	res := dist.Solve(a, b, make([]float64, n), dist.SolveOptions{
		Procs:     3,
		MaxIters:  5000,
		Tol:       1e-4,
		DelayRank: -1,
		Metrics:   m,
	})
	if !res.Converged {
		t.Fatalf("solve did not converge: relres %g", res.RelRes)
	}
	vals := promValues(t, reg)
	sent := sumSeries(vals, "aj_messages_sent_total")
	recv := sumSeries(vals, "aj_messages_received_total")
	if sent == 0 {
		t.Fatalf("synchronous run sent no messages")
	}
	if sent != recv {
		t.Fatalf("messages sent %g != received %g", sent, recv)
	}
}
