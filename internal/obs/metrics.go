// Package obs is a zero-dependency (stdlib-only) metrics and runtime
// introspection layer for the asynchronous solvers. It provides
// lock-free atomic Counter, Gauge, and Histogram primitives, a Registry
// of labeled metric families with Prometheus text-format and
// expvar-style JSON exposition, and an optional HTTP server exposing
// /metrics, /healthz, and net/http/pprof.
//
// The design goal is an always-on observability surface whose disabled
// path costs a nil check only: the solvers accept a nil-safe
// *SolverMetrics handle and every method on it (and on the per-worker
// and per-rank sub-handles) no-ops on a nil receiver. The enabled path
// is atomic adds on uncontended (per-worker-labeled) counters — no
// locks anywhere near a relaxation loop.
//
// The metric families mirror the quantities the paper reasons about:
// per-row relaxation counts (§V), staleness of read values (the live
// counterpart of the Fig 2 propagated-relaxation statistic), residual
// trajectories under delay (Fig 3–5), and message/window traffic of the
// distributed substrate (§VI).
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n panics: counters only go up).
func (c *Counter) Add(n int) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("obs: Counter.Add of negative value")
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down, stored as IEEE-754
// bits in one atomic word (the same trick the shm solver uses for its
// shared iterate).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Buckets are defined by their upper bounds (ascending); an implicit
// +Inf bucket catches the rest. Observations also maintain an atomic
// sum (CAS on float bits) and total count, so the Prometheus exposition
// can emit cumulative _bucket, _sum, and _count series.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// ExpBuckets returns n log-scale upper bounds start, start*factor,
// start*factor^2, ... — the shape staleness counts and latency
// distributions want (most mass near zero, rare long tails).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets requires start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// StalenessBuckets are the default buckets for staleness histograms:
// integer counts of missed sender updates, 0 through 2^14.
func StalenessBuckets() []float64 {
	b := []float64{0}
	return append(b, ExpBuckets(1, 2, 15)...)
}

// LatencyBuckets are the default buckets for sweep/latency histograms
// in seconds: 1µs up to ~4s in factor-4 steps.
func LatencyBuckets() []float64 {
	return ExpBuckets(1e-6, 4, 12)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns an approximate q-quantile (q in [0,1]) from the
// bucket counts: the upper bound of the first bucket whose cumulative
// count reaches q of the total. Observations in the +Inf bucket report
// the last finite bound (the histogram cannot resolve beyond it).
// Returns 0 on an empty histogram or a nil receiver — callers treat
// "no data" and "instantaneous" the same way.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot returns the bucket upper bounds and the (non-cumulative)
// per-bucket counts, including the final +Inf bucket.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}
