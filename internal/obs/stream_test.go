package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
)

// TestAttachBusMirrorsInstrumentation drives the handle the way a
// solver does and checks every event class reaches a subscriber.
func TestAttachBusMirrorsInstrumentation(t *testing.T) {
	m := NewSolverMetrics(NewRegistry())
	bus := stream.NewBus()
	m.AttachBus(bus, 0) // no gate: every call publishes
	if m.Bus() != bus {
		t.Fatal("Bus() does not return the attached bus")
	}
	sub := bus.Subscribe(256)
	defer sub.Close()

	w := m.Worker(2)
	w.AddRelaxations(10)
	w.ObserveStaleness(3)
	w.ObserveStaleness(5)
	w.SetLocalResidual(0.25)
	w.IncIteration()
	m.SetResidual(0.5)
	m.FaultCrash()
	m.RecoveryReassign()
	m.TermLatch()
	m.SetConverged(true)

	got := map[stream.Type][]stream.Event{}
	deadline := time.After(2 * time.Second)
	for len(got[stream.TypeDone]) == 0 {
		select {
		case ev := <-sub.C():
			got[ev.Type] = append(got[ev.Type], ev)
		case <-deadline:
			t.Fatalf("timed out; got %v", got)
		}
	}
	samples := got[stream.TypeSample]
	if len(samples) == 0 {
		t.Fatal("no worker sample published")
	}
	s := samples[len(samples)-1]
	if s.Worker != 2 || s.Iter != 1 || s.Relax != 10 {
		t.Fatalf("sample = %+v", s)
	}
	if s.Staleness != 4 || s.MaxStale != 5 {
		t.Fatalf("sample staleness = %v max %v, want mean 4 max 5", s.Staleness, s.MaxStale)
	}
	if s.Residual != 0.25 {
		t.Fatalf("sample share = %v, want 0.25", s.Residual)
	}
	var exact bool
	for _, ev := range got[stream.TypeResidual] {
		if !ev.Estimated && ev.Residual == 0.5 {
			exact = true
		}
	}
	if !exact {
		t.Fatalf("no exact residual sample in %v", got[stream.TypeResidual])
	}
	for typ, kind := range map[stream.Type]string{
		stream.TypeFault:       "crash",
		stream.TypeRecovery:    "reassign",
		stream.TypeTermination: "latch",
	} {
		evs := got[typ]
		if len(evs) != 1 || evs[0].Kind != kind {
			t.Fatalf("%v events = %v, want one %q", typ, evs, kind)
		}
	}
	done := got[stream.TypeDone][0]
	if !done.Converged || done.Residual != 0.5 {
		t.Fatalf("done = %+v", done)
	}
}

// TestRankSharesSumIntoEstimate checks the distributed-substrate path:
// per-rank local residual shares fold into one estimated global
// residual stream.
func TestRankSharesSumIntoEstimate(t *testing.T) {
	m := NewSolverMetrics(NewRegistry())
	bus := stream.NewBus()
	m.AttachBus(bus, 0)
	sub := bus.Subscribe(64)
	defer sub.Close()

	r0, r1 := m.Rank(0), m.Rank(1)
	r0.SetLocalResidual(0.3)
	r1.SetLocalResidual(0.2)
	var last stream.Event
	for i := 0; i < 2; i++ {
		select {
		case last = <-sub.C():
		case <-time.After(time.Second):
			t.Fatal("missing estimated residual event")
		}
	}
	if !last.Estimated || last.Residual < 0.499 || last.Residual > 0.501 {
		t.Fatalf("estimated residual = %+v, want ~0.5", last)
	}
	// Updating a share replaces it (delta semantics), not re-adds it.
	r0.SetLocalResidual(0.1)
	select {
	case ev := <-sub.C():
		if ev.Residual < 0.299 || ev.Residual > 0.301 {
			t.Fatalf("after update residual = %v, want ~0.3", ev.Residual)
		}
	case <-time.After(time.Second):
		t.Fatal("missing updated estimate")
	}
}

func TestSampleGateThrottles(t *testing.T) {
	m := NewSolverMetrics(NewRegistry())
	bus := stream.NewBus()
	m.AttachBus(bus, time.Hour) // gate so wide only the first sample passes
	sub := bus.Subscribe(64)
	defer sub.Close()
	w := m.Worker(0)
	for i := 0; i < 100; i++ {
		w.IncIteration()
		m.SetResidual(float64(i))
	}
	// One worker sample and one residual sample claim the gate; the
	// other 99 of each are suppressed.
	if got := bus.Published(); got != 2 {
		t.Fatalf("published %d events through an hour-wide gate, want 2", got)
	}
}

func TestAlertCounters(t *testing.T) {
	m := NewSolverMetrics(NewRegistry())
	m.IncAlert("divergence")
	m.IncAlert("divergence")
	m.IncAlert("stall")
	if got := m.AlertCount("divergence"); got != 2 {
		t.Fatalf("divergence count = %d", got)
	}
	if got := m.AlertCount("stall"); got != 1 {
		t.Fatalf("stall count = %d", got)
	}
	var nilM *SolverMetrics
	nilM.IncAlert("divergence") // must not panic
	if nilM.AlertCount("divergence") != 0 {
		t.Fatal("nil handle reports alerts")
	}
}

// TestSSEStream round-trips events through the live /stream endpoint.
func TestSSEStream(t *testing.T) {
	reg := NewRegistry()
	m := NewSolverMetrics(reg)
	bus := stream.NewBus()
	m.AttachBus(bus, 0)
	srv := NewServer(reg)
	srv.AttachBus(bus)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Publish until the subscriber inside the handler is attached.
	go func() {
		for bus.Published() == 0 {
			m.SetResidual(0.125)
			time.Sleep(time.Millisecond)
		}
		m.SetConverged(true)
	}()

	sc := bufio.NewScanner(resp.Body)
	var ev stream.Event
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if ev.Type == stream.TypeDone {
			break
		}
		if ev.Type != stream.TypeResidual || ev.Residual != 0.125 {
			t.Fatalf("unexpected event %+v", ev)
		}
	}
	if ev.Type != stream.TypeDone {
		t.Fatalf("stream ended without done event: %v", sc.Err())
	}
}

// TestShutdownDrainsInFlight is the graceful-shutdown test: an open
// SSE stream (an in-flight request) must be released and drained, not
// abandoned, and new requests must be refused afterwards.
func TestShutdownDrainsInFlight(t *testing.T) {
	reg := newTestRegistry()
	bus := stream.NewBus()
	srv := NewServer(reg)
	srv.AttachBus(bus)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	resp, err := http.Get("http://" + addr + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	for !bus.Active() { // wait until the handler has subscribed
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with open SSE stream: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("Shutdown did not release the SSE handler promptly (%v)", elapsed)
	}
	// The drained stream reads EOF, not an abort.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err == nil {
		t.Fatal("stream still open after Shutdown")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server accepted a request after Shutdown")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestAlertsEndpoint(t *testing.T) {
	srv := NewServer(newTestRegistry())
	srv.AttachAlerts(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`[{"type":"stall"}]`))
	}))
	code, _, body := get(t, srv.mux(), "/alerts")
	if code != http.StatusOK || !strings.Contains(body, "stall") {
		t.Fatalf("/alerts status %d body %q", code, body)
	}
	code, _, _ = get(t, Handler(newTestRegistry()).(*http.ServeMux), "/alerts")
	if code != http.StatusNotFound {
		t.Fatalf("/alerts without handler: status %d, want 404", code)
	}
	code, _, _ = get(t, Handler(newTestRegistry()).(*http.ServeMux), "/stream")
	if code != http.StatusNotFound {
		t.Fatalf("/stream without bus: status %d, want 404", code)
	}
}
