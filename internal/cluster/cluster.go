// Package cluster is a discrete-event simulator of synchronous and
// asynchronous distributed Jacobi on a virtual machine with
// configurable per-process compute speed, message latency, and
// synchronization cost.
//
// This is the substitution for the paper's 128-node Cori runs: the host
// here cannot run thousands of truly parallel processes, but the phenomena
// of Figs 5, 7, 8 and 9 are driven by the *relative* costs of
// computation, communication and barriers, and by which ghost values a
// process sees when it relaxes — exactly what a discrete-event
// simulation reproduces. Virtual time is reported in seconds.
//
// The simulator keeps a God's-eye copy of every owner's current values
// (the model's "snapshots in time") for exact residual sampling, while
// each simulated process reads neighbor values only through ghost
// copies updated by messages that arrive MsgLatency after they are
// sent — the RMA Put of the real implementation.
package cluster

import (
	"container/heap"
	"context"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/resilience"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// Config parameterizes a simulated run.
type Config struct {
	// Procs is the number of simulated processes.
	Procs int
	// Part maps rows to processes; nil means BFS partition (the METIS
	// stand-in), matching the paper's distributed experiments.
	Part *partition.Partition

	// Async selects asynchronous execution; false simulates
	// bulk-synchronous Jacobi with a barrier every iteration.
	Async bool

	// RelaxCostPerNNZ is the virtual seconds a process spends per
	// matrix nonzero it owns, per iteration.
	RelaxCostPerNNZ float64
	// MsgLatency is the virtual time between sending a boundary update
	// and the neighbor seeing it.
	MsgLatency float64
	// MsgCostPerNeighbor is per-iteration sender overhead for each
	// neighbor message posted.
	MsgCostPerNeighbor float64
	// BarrierCost is the per-iteration synchronization cost of the
	// synchronous method (barrier + allreduce); it typically grows with
	// Procs, so callers set it from a model like c*log2(P).
	BarrierCost float64

	// SpeedJitter draws a persistent per-process speed factor in
	// [1, 1+SpeedJitter] (hardware heterogeneity); IterJitter adds
	// per-iteration multiplicative noise in [1, 1+IterJitter] (OS
	// interference). Both apply to compute time only.
	SpeedJitter float64
	IterJitter  float64

	// DelayProc, when >= 0, multiplies that process's compute time by
	// DelayFactor — the paper's severely delayed process experiments.
	DelayProc   int
	DelayFactor float64

	// MsgLossProb drops each asynchronous boundary message with this
	// probability — failure injection. Asynchronous Jacobi tolerates
	// loss (the next Put overwrites the same window slots); the
	// synchronous method cannot lose messages without deadlocking, so
	// loss applies to asynchronous runs only.
	MsgLossProb float64

	// MaxSweeps bounds the run: the simulation stops when total
	// relaxations reach MaxSweeps*n.
	MaxSweeps int
	// MinIters, when positive, additionally keeps the run alive until
	// every process has completed at least MinIters local iterations —
	// the paper's Fig 5(b) measurement ("a thread only terminates once
	// all threads have completed 100 iterations").
	MinIters int
	// Tol, when positive, stops the run once the sampled global
	// relative residual 1-norm drops to Tol.
	Tol float64
	// SamplesPerSweep controls residual sampling density: a sample is
	// taken every n/SamplesPerSweep relaxations; 0 means one sample per
	// sweep-equivalent (n relaxations).
	SamplesPerSweep int

	Seed uint64

	// Ctx, when non-nil, cancels the simulation between events; MaxTime,
	// when positive, bounds the *real* wall clock the simulation loop may
	// consume (virtual time is unbounded by it). A stopped run reports
	// StopReason accordingly and keeps the history gathered so far.
	Ctx     context.Context
	MaxTime time.Duration

	// Metrics, when non-nil, streams the simulation into the
	// observability layer: simulated relaxation/message/drop counters, a
	// virtual-time gauge, and the sampled residual gauge. Nil disables.
	Metrics *obs.SolverMetrics
}

// Sample is one point of a simulated convergence history.
type Sample struct {
	Time      float64 // virtual seconds
	RelaxPerN float64 // cumulative relaxations / n (the Fig 7 x-axis)
	RelRes    float64 // global relative residual 1-norm
}

// Result reports a simulated run.
type Result struct {
	History   []Sample
	Converged bool
	// FinalTime is the virtual time at which the run stopped.
	FinalTime float64
	// TotalRelaxations counts row relaxations performed.
	TotalRelaxations int
	// IterationsPerProc is each process's local iteration count.
	IterationsPerProc []int
	// StopReason says why the simulation stopped (converged, deadline,
	// canceled, or max-iter when the relaxation budget ran out).
	StopReason resilience.StopReason
	// Elapsed is the real wall-clock time the simulation loop consumed
	// (distinct from FinalTime, which is virtual seconds).
	Elapsed time.Duration
}

// event is a process finishing one local iteration (compute phase).
type event struct {
	time float64
	proc int
	seq  int // tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() event   { return h[0] }

// ghostMsg is boundary data in flight.
type ghostMsg struct {
	arrive float64
	proc   int // destination
	from   int
	vals   []float64
	seq    int
}

type msgHeap []ghostMsg

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].arrive != h[j].arrive {
		return h[i].arrive < h[j].arrive
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(ghostMsg)) }
func (h *msgHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulate runs the discrete-event simulation.
func Simulate(a *sparse.CSR, b, x0 []float64, cfg Config) *Result {
	n := a.N
	if len(b) != n || len(x0) != n {
		panic("cluster: dimension mismatch")
	}
	if cfg.Procs <= 0 || cfg.MaxSweeps <= 0 {
		panic("cluster: Procs and MaxSweeps must be positive")
	}
	if cfg.RelaxCostPerNNZ <= 0 {
		panic("cluster: RelaxCostPerNNZ must be positive")
	}
	part := cfg.Part
	if part == nil {
		part = partition.BFS(a, cfg.Procs)
	}
	if part.P != cfg.Procs {
		panic("cluster: partition part count != Procs")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc1a5))

	subs := partition.BuildSubdomains(a, part)
	// ghost[j] for each proc: position of global index j in its ghost
	// view; views are dense maps global->value for simplicity.
	// x is the owner's authoritative value (God's-eye view).
	x := vec.Clone(x0)
	// ghostView[p][j] = what proc p currently believes x_j is, for each
	// ghost j it needs.
	ghostView := make([]map[int]float64, cfg.Procs)
	for p, sub := range subs {
		gv := map[int]float64{}
		for _, idx := range sub.Recv {
			for _, j := range idx {
				gv[j] = x0[j]
			}
		}
		ghostView[p] = gv
	}
	// Per-proc compute cost.
	nnzOf := make([]int, cfg.Procs)
	for p, sub := range subs {
		for _, i := range sub.Rows {
			nnzOf[p] += a.RowNNZ(i)
		}
	}
	speed := make([]float64, cfg.Procs)
	for p := range speed {
		speed[p] = 1 + rng.Float64()*cfg.SpeedJitter
	}
	iterCost := func(p int) float64 {
		c := cfg.RelaxCostPerNNZ * float64(nnzOf[p]) * speed[p]
		if cfg.IterJitter > 0 {
			c *= 1 + rng.Float64()*cfg.IterJitter
		}
		c += cfg.MsgCostPerNeighbor * float64(len(subs[p].Send))
		if p == cfg.DelayProc && cfg.DelayFactor > 1 {
			c *= cfg.DelayFactor
		}
		if c <= 0 {
			c = 1e-12
		}
		return c
	}

	nb := vec.Norm1(b)
	if nb == 0 {
		nb = 1
	}
	samplesPerSweep := cfg.SamplesPerSweep
	if samplesPerSweep <= 0 {
		samplesPerSweep = 1
	}
	sampleInterval := n / samplesPerSweep
	if sampleInterval == 0 {
		sampleInterval = 1
	}

	cfg.Metrics.SetWorkers(cfg.Procs)
	stopper := resilience.NewStopper(cfg.Ctx, cfg.MaxTime)
	wall0 := time.Now()
	finish := func(res *Result) *Result {
		res.StopReason = resilience.Resolve(res.Converged, stopper, false)
		switch res.StopReason {
		case resilience.StopDeadline:
			cfg.Metrics.RecoveryDeadline()
		case resilience.StopCanceled:
			cfg.Metrics.RecoveryCancel()
		}
		res.Elapsed = time.Since(wall0)
		// End-of-solve event for live consumers (the stream bus).
		cfg.Metrics.SetConverged(res.Converged)
		return res
	}
	res := &Result{IterationsPerProc: make([]int, cfg.Procs)}
	r := make([]float64, n)
	recordSample := func(t float64) float64 {
		a.Residual(r, b, x)
		rel := vec.Norm1(r) / nb
		res.History = append(res.History, Sample{
			Time:      t,
			RelaxPerN: float64(res.TotalRelaxations) / float64(n),
			RelRes:    rel,
		})
		cfg.Metrics.SetResidual(rel)
		cfg.Metrics.SetSimTime(t)
		return rel
	}
	recordSample(0)

	maxRelax := cfg.MaxSweeps * n
	nextSample := sampleInterval

	relaxProc := func(p int) {
		sub := subs[p]
		gv := ghostView[p]
		// Residual for owned rows against owner values + ghost view,
		// then in-place correction (two-pass like the real solvers).
		deltas := make([]float64, len(sub.Rows))
		for s, i := range sub.Rows {
			sum := b[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.Col[k]
				if part.Part[j] == p {
					sum -= a.Val[k] * x[j]
				} else {
					sum -= a.Val[k] * gv[j]
				}
			}
			deltas[s] = sum
		}
		for s, i := range sub.Rows {
			x[i] += deltas[s]
		}
		res.TotalRelaxations += len(sub.Rows)
		res.IterationsPerProc[p]++
		cfg.Metrics.SimRelaxations(len(sub.Rows))
	}

	if !cfg.Async {
		// Bulk-synchronous: rounds of compute + barrier; the round time
		// is the slowest process plus barrier cost; ghosts refresh
		// exactly each round (latency is covered by the barrier).
		t := 0.0
		for res.TotalRelaxations < maxRelax || (cfg.MinIters > 0 && res.IterationsPerProc[0] < cfg.MinIters) {
			var slowest float64
			for p := 0; p < cfg.Procs; p++ {
				if c := iterCost(p); c > slowest {
					slowest = c
				}
			}
			for p := 0; p < cfg.Procs; p++ {
				relaxProc(p)
			}
			t += slowest + cfg.BarrierCost + cfg.MsgLatency
			// Refresh every ghost view with current owner values.
			for p := 0; p < cfg.Procs; p++ {
				for j := range ghostView[p] {
					ghostView[p][j] = x[j]
				}
			}
			if res.TotalRelaxations >= nextSample {
				nextSample += sampleInterval
				rel := recordSample(t)
				if cfg.Tol > 0 && rel <= cfg.Tol {
					res.Converged = true
					break
				}
				if math.IsNaN(rel) || math.IsInf(rel, 0) {
					break
				}
			}
			if stopper.Check() != resilience.StopNone {
				break
			}
		}
		res.FinalTime = t
		return finish(res)
	}

	// Asynchronous: event-driven.
	seq := 0
	var evq eventHeap
	var msgq msgHeap
	for p := 0; p < cfg.Procs; p++ {
		heap.Push(&evq, event{time: iterCost(p), proc: p, seq: seq})
		seq++
	}
	minItersMet := func() bool {
		if cfg.MinIters <= 0 {
			return true
		}
		for _, it := range res.IterationsPerProc {
			if it < cfg.MinIters {
				return false
			}
		}
		return true
	}
	t := 0.0
	events := 0
	for (res.TotalRelaxations < maxRelax || !minItersMet()) && evq.Len() > 0 {
		// Poll the stopper only every few events: Check reads the real
		// clock, which would dominate the per-event cost.
		events++
		if events%64 == 0 && stopper.Check() != resilience.StopNone {
			break
		}
		// Deliver any messages arriving before the next compute event.
		for msgq.Len() > 0 && msgq[0].arrive <= evq.Peek().time {
			m := heap.Pop(&msgq).(ghostMsg)
			gv := ghostView[m.proc]
			for t2, j := range subs[m.proc].Recv[m.from] {
				gv[j] = m.vals[t2]
			}
		}
		ev := heap.Pop(&evq).(event)
		t = ev.time
		p := ev.proc
		relaxProc(p)
		// Post boundary updates (RMA Puts) to each neighbor.
		for q, idx := range subs[p].Send {
			if cfg.MsgLossProb > 0 && rng.Float64() < cfg.MsgLossProb {
				cfg.Metrics.SimMessageDropped()
				continue // dropped on the wire
			}
			cfg.Metrics.SimMessage()
			vals := make([]float64, len(idx))
			for t2, j := range idx {
				vals[t2] = x[j]
			}
			heap.Push(&msgq, ghostMsg{
				arrive: t + cfg.MsgLatency, proc: q, from: p, vals: vals, seq: seq,
			})
			seq++
		}
		heap.Push(&evq, event{time: t + iterCost(p), proc: p, seq: seq})
		seq++
		if res.TotalRelaxations >= nextSample {
			nextSample += sampleInterval
			rel := recordSample(t)
			if cfg.Tol > 0 && rel <= cfg.Tol {
				res.Converged = true
				break
			}
			if math.IsNaN(rel) || math.IsInf(rel, 0) {
				break
			}
		}
	}
	res.FinalTime = t
	return finish(res)
}

// TimeToRelRes returns the virtual time at which the history first
// reaches the target relative residual, using linear interpolation on
// log10 of the residual between samples (the paper's Section VII-C
// measurement technique). It returns ok=false when the target is never
// reached.
func (r *Result) TimeToRelRes(target float64) (float64, bool) {
	return interpolateAt(r.History, target, func(s Sample) float64 { return s.Time })
}

// RelaxPerNToRelRes is TimeToRelRes with relaxations/n as the abscissa.
func (r *Result) RelaxPerNToRelRes(target float64) (float64, bool) {
	return interpolateAt(r.History, target, func(s Sample) float64 { return s.RelaxPerN })
}

func interpolateAt(hist []Sample, target float64, axis func(Sample) float64) (float64, bool) {
	if len(hist) == 0 || target <= 0 {
		return 0, false
	}
	lt := math.Log10(target)
	for k := 1; k < len(hist); k++ {
		prev, cur := hist[k-1], hist[k]
		if cur.RelRes > target || math.IsNaN(cur.RelRes) {
			continue
		}
		// cur reached the target; prev did not (or is the start).
		if prev.RelRes <= target {
			return axis(prev), true
		}
		lp := math.Log10(prev.RelRes)
		lc := math.Log10(cur.RelRes)
		if lc == lp {
			return axis(cur), true
		}
		f := (lt - lp) / (lc - lp)
		return axis(prev) + f*(axis(cur)-axis(prev)), true
	}
	return 0, false
}
