package cluster

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/matgen"
	"repro/internal/resilience"
)

// A wall-clock deadline stops the simulator even though virtual time is
// unbounded, and the result says so — for both the event-driven
// asynchronous loop (periodic stopper poll) and the bulk-synchronous
// round loop.
func TestSimulateDeadlineStops(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	a := matgen.FD2D(16, 16)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	for _, async := range []bool{true, false} {
		name := "sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig(4)
			cfg.Async = async
			cfg.MaxSweeps = 1 << 28
			cfg.Tol = 1e-300
			cfg.MaxTime = 5 * time.Millisecond
			res := Simulate(a, b, x0, cfg)
			if res.StopReason != resilience.StopDeadline {
				t.Fatalf("stop reason %v, want deadline", res.StopReason)
			}
			if res.Converged {
				t.Fatal("deadline-stopped simulation claims convergence")
			}
			if res.Elapsed <= 0 {
				t.Fatal("Elapsed not recorded")
			}
		})
	}
}

// Cancellation via context stops the event loop; a run that converges
// on its own reports StopConverged.
func TestSimulateStopReasons(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 94))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseConfig(4)
	cfg.Async = true
	cfg.MaxSweeps = 1 << 28
	cfg.Tol = 1e-300
	cfg.Ctx = ctx
	if res := Simulate(a, b, x0, cfg); res.StopReason != resilience.StopCanceled {
		t.Fatalf("stop reason %v, want canceled", res.StopReason)
	}

	ok := baseConfig(4)
	ok.Async = true
	res := Simulate(a, b, x0, ok)
	if !res.Converged || res.StopReason != resilience.StopConverged {
		t.Fatalf("converged=%v reason=%v", res.Converged, res.StopReason)
	}

	budget := baseConfig(4)
	budget.Async = true
	budget.MaxSweeps = 3
	budget.Tol = 1e-300
	if res := Simulate(a, b, x0, budget); res.StopReason != resilience.StopMaxIter {
		t.Fatalf("stop reason %v, want max-iter", res.StopReason)
	}
}
