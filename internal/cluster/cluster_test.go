package cluster

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/matgen"
	"repro/internal/model"
	"repro/internal/partition"
)

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func baseConfig(procs int) Config {
	return Config{
		Procs:           procs,
		RelaxCostPerNNZ: 1e-7,
		MsgLatency:      2e-6,
		BarrierCost:     5e-6,
		MaxSweeps:       20000,
		Tol:             1e-4,
		DelayProc:       -1,
		Seed:            7,
	}
}

// The synchronous simulation is exactly Jacobi: its iterates (and hence
// its residual history per sweep) must match the sequential model.
func TestSyncSimMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)

	cfg := baseConfig(4)
	cfg.Tol = 0
	cfg.MaxSweeps = 30
	sim := Simulate(a, b, x0, cfg)

	h := model.Run(a, b, x0, model.NewSyncSchedule(a.N), model.Options{MaxSteps: 30})
	if len(sim.History) != len(h.RelRes) {
		t.Fatalf("history lengths differ: %d vs %d", len(sim.History), len(h.RelRes))
	}
	for k := range sim.History {
		if math.Abs(sim.History[k].RelRes-h.RelRes[k]) > 1e-12 {
			t.Fatalf("sweep %d: sim %g model %g", k, sim.History[k].RelRes, h.RelRes[k])
		}
	}
}

func TestSyncSimConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := matgen.FD2D(10, 10)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Simulate(a, b, x0, baseConfig(8))
	if !res.Converged {
		t.Fatalf("sync sim did not converge: %+v", res.History[len(res.History)-1])
	}
	if res.FinalTime <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestAsyncSimConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := matgen.FD2D(10, 10)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	cfg := baseConfig(8)
	cfg.Async = true
	cfg.IterJitter = 0.3
	res := Simulate(a, b, x0, cfg)
	if !res.Converged {
		t.Fatalf("async sim did not converge: final %g",
			res.History[len(res.History)-1].RelRes)
	}
	// Every proc iterated.
	for p, it := range res.IterationsPerProc {
		if it == 0 {
			t.Fatalf("proc %d never iterated", p)
		}
	}
}

// Determinism: same config, same history.
func TestSimDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	cfg := baseConfig(6)
	cfg.Async = true
	cfg.IterJitter = 0.5
	r1 := Simulate(a, b, x0, cfg)
	r2 := Simulate(a, b, x0, cfg)
	if len(r1.History) != len(r2.History) {
		t.Fatal("histories differ in length")
	}
	for k := range r1.History {
		if r1.History[k] != r2.History[k] {
			t.Fatalf("histories differ at %d", k)
		}
	}
}

// With a severely delayed process, the asynchronous machine reaches the
// tolerance in far less virtual time than the synchronous one — the
// Fig 3 speedup, now on the simulated cluster.
func TestAsyncBeatsSyncUnderDelay(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	a := matgen.FD2D(4, 17)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)

	mk := func(async bool) Config {
		cfg := baseConfig(17)
		cfg.Async = async
		cfg.Tol = 1e-3
		cfg.DelayProc = 8
		cfg.DelayFactor = 30
		return cfg
	}
	sres := Simulate(a, b, x0, mk(false))
	ares := Simulate(a, b, x0, mk(true))
	if !sres.Converged || !ares.Converged {
		t.Fatal("sim runs did not converge")
	}
	ts, ok1 := sres.TimeToRelRes(1e-3)
	ta, ok2 := ares.TimeToRelRes(1e-3)
	if !ok1 || !ok2 {
		t.Fatal("interpolation failed")
	}
	if ta >= ts {
		t.Fatalf("async virtual time %g not faster than sync %g", ta, ts)
	}
	if ts/ta < 3 {
		t.Fatalf("speedup %g too small for delay factor 30", ts/ta)
	}
}

// The Fig 9 phenomenon on the simulated cluster: sync diverges on the
// Dubcova2 analogue, async with enough processes converges, and more
// processes converge in fewer relaxations/n.
func TestAsyncConvergesWhereSyncDivergesSim(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	a := matgen.FE2D(matgen.DefaultFEOptions(25, 25))
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)

	cfg := baseConfig(8)
	cfg.Tol = 0
	cfg.MaxSweeps = 300
	sres := Simulate(a, b, x0, cfg)
	if last := sres.History[len(sres.History)-1].RelRes; last < sres.History[0].RelRes {
		t.Fatalf("sync should diverge on FE analogue: %g -> %g", sres.History[0].RelRes, last)
	}

	acfg := baseConfig(128)
	acfg.Async = true
	acfg.IterJitter = 0.5
	acfg.Tol = 1e-3
	acfg.MaxSweeps = 5000
	ares := Simulate(a, b, x0, acfg)
	if !ares.Converged {
		t.Fatalf("async sim with 128 procs should converge: final %g",
			ares.History[len(ares.History)-1].RelRes)
	}
}

// Increasing concurrency improves asynchronous convergence per
// relaxation (Fig 7's green-to-blue trend) on a divergence-prone
// matrix.
func TestMoreProcsImproveAsyncConvergence(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	a := matgen.Dubcova2Like().A
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)

	run := func(procs int) (float64, bool) {
		cfg := baseConfig(procs)
		cfg.Async = true
		cfg.IterJitter = 0.5
		cfg.Tol = 1e-2
		cfg.MaxSweeps = 4000
		res := Simulate(a, b, x0, cfg)
		return res.RelaxPerNToRelRes(1e-2)
	}
	few, okFew := run(8)
	many, okMany := run(128)
	if !okMany {
		t.Fatal("128-proc async failed to reach 1e-2 on Dubcova2 analogue")
	}
	if okFew && many >= few {
		t.Fatalf("more procs did not improve convergence: %g vs %g relax/n", many, few)
	}
}

func TestInterpolation(t *testing.T) {
	hist := []Sample{
		{Time: 0, RelaxPerN: 0, RelRes: 1},
		{Time: 1, RelaxPerN: 1, RelRes: 0.1},
		{Time: 2, RelaxPerN: 2, RelRes: 0.01},
	}
	r := &Result{History: hist}
	// Exact sample point.
	tt, ok := r.TimeToRelRes(0.1)
	if !ok || math.Abs(tt-1) > 1e-12 {
		t.Fatalf("TimeToRelRes(0.1) = %g ok=%v", tt, ok)
	}
	// Between samples: log-linear halfway between 0.1 and 0.01 is
	// ~0.0316 at t=1.5.
	tt, ok = r.TimeToRelRes(math.Sqrt(0.1 * 0.01))
	if !ok || math.Abs(tt-1.5) > 1e-9 {
		t.Fatalf("log interpolation = %g ok=%v", tt, ok)
	}
	// Unreached target.
	if _, ok := r.TimeToRelRes(1e-9); ok {
		t.Fatal("unreached target must report ok=false")
	}
	// Start already below target.
	if tt, ok := r.TimeToRelRes(2); !ok || tt != 0 {
		t.Fatalf("start-below-target: %g %v", tt, ok)
	}
}

func TestSimWithExplicitPartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	a := matgen.FD2D(6, 6)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	cfg := baseConfig(4)
	cfg.Part = partition.Contiguous(a.N, 4)
	res := Simulate(a, b, x0, cfg)
	if !res.Converged {
		t.Fatal("explicit-partition sim failed")
	}
}

func TestSimPanics(t *testing.T) {
	a := matgen.Laplace1D(4)
	v := make([]float64, 4)
	bad := []Config{
		{Procs: 0, MaxSweeps: 1, RelaxCostPerNNZ: 1},
		{Procs: 1, MaxSweeps: 0, RelaxCostPerNNZ: 1},
		{Procs: 1, MaxSweeps: 1, RelaxCostPerNNZ: 0},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			Simulate(a, v, v, cfg)
		}()
	}
}

func TestMsgLossAsyncStillConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	a := matgen.FD2D(10, 10)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	cfg := baseConfig(8)
	cfg.Async = true
	cfg.MsgLossProb = 0.3
	cfg.IterJitter = 0.3
	res := Simulate(a, b, x0, cfg)
	if !res.Converged {
		t.Fatalf("async with 30%% message loss did not converge: %g",
			res.History[len(res.History)-1].RelRes)
	}
}

func TestMinItersHonoured(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	cfg := baseConfig(5)
	cfg.Async = true
	cfg.IterJitter = 0.5
	cfg.Tol = 0
	cfg.MaxSweeps = 40
	cfg.MinIters = 40
	res := Simulate(a, b, x0, cfg)
	for p, it := range res.IterationsPerProc {
		if it < 40 {
			t.Fatalf("proc %d stopped at %d iterations, want >= 40", p, it)
		}
	}
}
