package cluster

import (
	"math/rand/v2"
	"testing"

	"repro/internal/matgen"
)

func BenchmarkSimulateAsync(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	cfg := baseConfig(16)
	cfg.Async = true
	cfg.Tol = 0
	cfg.MaxSweeps = 50
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(a, bb, x0, cfg)
	}
}

func BenchmarkSimulateSync(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(2, 2))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	cfg := baseConfig(16)
	cfg.Tol = 0
	cfg.MaxSweeps = 50
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(a, bb, x0, cfg)
	}
}
