package dist

// runRank is ONE rank's solve loop, extracted from the solvePass
// closure so the same code drives both backends: Solve runs it on
// opt.Procs goroutines over the in-process *Rank world, SolveRank runs
// it once per OS process over a NetComm (TCP). Everything
// backend-specific comes in through the Comm/Window/Board interfaces;
// everything pass-shared comes in through rankShared.

import (
	"context"
	"math"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/resilience"
	"repro/internal/shm"
)

// rankShared is the per-pass state every rank of a pass shares. opt
// carries this pass's budget in MaxIters.
type rankShared struct {
	b     []float64
	x0    []float64
	opt   SolveOptions
	plans []*ghostPlan
	// lrp/lcol/lval are the per-rank local CSR blocks (own rows,
	// columns remapped to local slots), built once per solve.
	lrp  [][]int
	lcol [][]int
	lval [][]float64
	nb   float64
	// stopper polls cancellation/deadline; never nil.
	stopper *resilience.Stopper
	// board is the termination flag board / failure detector. In-process
	// it is a fresh flagBoard per pass; over TCP it is the transport's
	// wire-replicated board, Reset between passes.
	board Board
	// decided is the Safra decision latch, fresh per pass.
	decided *atomic.Bool
	// net marks multi-process mode: tokens can be lost on the wire, so
	// the flag-board fallback engages after the termination deadline
	// even before any peer is declared dead.
	net bool
	// win, when non-nil, is this rank's preallocated RMA window (net
	// mode allocates once, outside the pass loop); nil makes runRank
	// allocate collectively via c.AllocWindow.
	win Window
	// onIter, when non-nil, runs after every completed local iteration
	// with the current local iterate — SolveRank's sub-pass checkpoint
	// hook, so a kill mid-pass still resumes from recent work.
	onIter func(iter int, xl []float64)
}

// rankOut is one rank's pass outcome.
type rankOut struct {
	iter int
	hist []float64
	xl   []float64 // local state: own values first, then ghosts
}

func runRank(c Comm, inj *fault.Injector, sh *rankShared) rankOut {
	opt := &sh.opt
	id := c.RankID()
	size := c.WorldSize()
	board := sh.board
	// pprof labels: CPU samples on each rank goroutine attribute to
	// solver/worker/phase so a -profile-out capture separates relax
	// from ghost publishing and idle/termination waiting. The label
	// contexts come from a process-wide cache — building them is a
	// dozen allocations per rank, which used to dominate repeated
	// small solves' allocation profiles.
	lbl := distLabels.For(id)
	phaseRelax := lbl.Relax
	phasePublish := lbl.Publish
	phaseWait := lbl.Wait
	pprof.SetGoroutineLabels(phaseRelax)
	defer pprof.SetGoroutineLabels(context.Background())
	rm := opt.Metrics.Rank(id)
	tw := opt.Tracer.Worker(id)
	gp := sh.plans[id]
	nown := len(gp.rows)
	// Fault injection applies to the asynchronous solver only: the
	// synchronous scheme's blocking receives and collectives would
	// deadlock on a lost message rather than degrade.
	faultsOn := opt.Async && inj != nil
	// Local state: own values then ghosts.
	xl := make([]float64, gp.nLocal)
	for s, i := range gp.rows {
		xl[s] = sh.x0[i]
	}
	for _, q := range gp.recvFrom {
		for _, j := range gp.recvIdx[q] {
			xl[gp.localOf[j]] = sh.x0[j]
		}
	}
	rl := make([]float64, nown)
	// curNorm tracks |rl|_1, accumulated inside the relaxation loop
	// of the most recent local iteration: the convergence predicate,
	// the history point, the metrics gauge, and the synchronous
	// Allreduce all reuse it instead of each rescanning rl (up to
	// four O(nLocal) passes per iteration before).
	curNorm := 0.0

	lrp, lcol, lval := sh.lrp[id], sh.lcol[id], sh.lval[id]

	eager := opt.Async && opt.Eager
	var win Window
	if opt.Async && !eager {
		win = sh.win
		if win == nil {
			win = c.AllocWindow(gp.winLen)
		}
		// Seed our own ghost slots with the pass's starting iterate:
		// the window is allocated zeroed on every pass, and the loop
		// top refreshes ghosts from it unconditionally, so without
		// the seed a resume pass would overwrite converged ghost
		// values with zeros — destroying exactly the progress the
		// resume loop exists to preserve. A neighbor racing ahead of
		// the seed only reinstates values one Put older; asynchronous
		// Jacobi tolerates that by construction.
		wbuf := win.Local()
		for s := 0; s < gp.ghostLen; s++ {
			wbuf.Store(s, xl[nown+s])
		}
	}
	var wbuf shm.AtomicVector
	if win != nil {
		wbuf = win.Local()
	}
	// A rank that fail-stopped in an earlier pass stays down; it
	// still took part in the collective window allocation above so
	// the survivors' setup barrier completes.
	if faultsOn && inj.Dead() {
		board.MarkDead(id)
		return rankOut{xl: xl}
	}

	sendBufs := map[int][]float64{}
	for _, q := range gp.sendTo {
		buflen := len(gp.sendIdx[q])
		if eager {
			buflen++ // room for the iteration stamp
		}
		sendBufs[q] = make([]float64, buflen)
	}
	// Reordered point-to-point messages are held back here until
	// the next send on the same link overtakes them.
	var held map[int][]float64
	if faultsOn {
		held = map[int][]float64{}
	}
	// Async: precompute (targetRank, targetOffset) of our boundary
	// values inside each neighbor's window, plus the slot where our
	// iteration stamp goes.
	putOff := map[int]int{}
	stampPutOff := map[int]int{}
	if opt.Async {
		for _, q := range gp.sendTo {
			// Our values land in q's window at q's offset for
			// neighbor id, which q computed as winOff[id].
			putOff[q] = sh.plans[q].winOff[id]
			stampPutOff[q] = sh.plans[q].stampOff[id]
		}
	}
	// lastStamp[qi] is the newest iteration stamp seen from
	// gp.recvFrom[qi]; the gap between consecutive stamps minus one
	// is how many of that neighbor's updates this rank never saw.
	// Both the staleness histogram and the tracer's ghost-arrival
	// events key on it.
	var lastStamp []int64
	if rm != nil || tw != nil {
		lastStamp = make([]int64, len(gp.recvFrom))
	}
	stampBuf := make([]float64, 1)

	var hist []float64
	iter := 0
	idle := 0
	// Loss-recovery retransmission budget for the eager scheme:
	// bounded retry with exponential backoff, reset whenever fresh
	// ghost data arrives. Exhaustion gives the links up as dead
	// rather than retransmitting forever.
	retry := resilience.DefaultRetryPolicy()
	if opt.Retry != nil {
		retry = *opt.Retry
	}
	attempt := 0
	var nextRetry time.Time
	var safra *safraState
	if opt.Async && opt.Tol > 0 && opt.Termination == DijkstraSafra {
		safra = newSafra(c, sh.decided, opt.Metrics, tw)
	}
	// Termination-degradation deadline: once a crash is visible on
	// the board, a locally-converged rank waits at most this long
	// for the regular protocol before deciding over the surviving
	// active block (Safra's token may be parked forever in a dead
	// rank's mailbox; the flag board skips dead ranks by itself).
	// Over a real wire the fallback also covers lost tokens: net mode
	// arms the deadline whenever the protocol stalls, dead peer or
	// not.
	termDeadline := opt.Fault.TermDeadline()
	var deadSeen time.Time
	pollTerm := func(localConv bool) bool {
		if safra == nil {
			if board.Set(id, localConv) {
				tw.Flag(localConv, iter)
			}
			return board.Check()
		}
		stop := safra.poll(c, localConv)
		if !stop && ((faultsOn && board.AnyDead()) || sh.net) {
			if deadSeen.IsZero() {
				deadSeen = time.Now()
			}
			if board.Set(id, localConv) {
				tw.Flag(localConv, iter)
			}
			if time.Since(deadSeen) > termDeadline && board.Check() {
				if sh.decided.CompareAndSwap(false, true) {
					opt.Metrics.FaultTermTimeout()
					opt.Metrics.TermDecided()
					tw.TermTimeout(iter)
				}
				stop = true
			}
		}
		return stop
	}
	for {
		// Cancellation / deadline: an asynchronous rank just leaves;
		// the flag board and the other ranks' own stopper polls keep
		// termination live without it. (Synchronous ranks instead
		// vote below, in lockstep.)
		if opt.Async && sh.stopper.Check() != resilience.StopNone {
			break
		}
		if faultsOn {
			if inj.CrashNow(iter) {
				opt.Metrics.FaultCrash()
				tw.Crash(iter)
				after, restart := inj.Restart()
				if !restart {
					board.MarkDead(id)
					break
				}
				// Restart-from-current-x: the rank rejoins after the
				// outage with the iterate its window and local state
				// already hold.
				time.Sleep(after)
				opt.Metrics.FaultRestart()
				tw.Restart(iter)
			}
			if d := inj.StallFor(iter); d > 0 {
				opt.Metrics.FaultStall()
				tw.Stall(iter)
				time.Sleep(d)
			}
			if d := inj.IterDelay(); d > 0 {
				opt.Metrics.FaultDelay()
				tw.Delay(iter + 1)
				time.Sleep(d)
			}
		}
		if opt.DelayRank == id && opt.Delay > 0 {
			rm.IncDelay()
			tw.Delay(iter + 1)
			time.Sleep(opt.Delay)
		}
		gotNew := iter == 0 || len(gp.recvFrom) == 0
		if opt.Async && win != nil {
			// Refresh ghosts from the local window (neighbors Put
			// whenever they finish an iteration).
			base := nown
			for s := 0; s < gp.ghostLen; s++ {
				xl[base+s] = wbuf.Load(s)
			}
			if lastStamp != nil {
				// Ghost-read staleness: each neighbor stamps its
				// Puts with its iteration count; the jump between
				// consecutive stamps counts the updates this rank
				// skipped over.
				for qi, q := range gp.recvFrom {
					stamp := int64(wbuf.Load(gp.ghostLen + qi))
					if stamp > lastStamp[qi] {
						rm.ObserveStaleness(int(stamp - lastStamp[qi] - 1))
						tw.Recv(q, int(stamp))
						lastStamp[qi] = stamp
					}
				}
			}
		}
		if eager {
			// Drain pending ghost messages; remember whether any
			// neighbor supplied fresh information.
			for qi, q := range gp.recvFrom {
				if data, ok := c.TryRecv(q, 0); ok {
					for t, j := range gp.recvIdx[q] {
						xl[gp.localOf[j]] = data[t]
					}
					if lastStamp != nil && len(data) > len(gp.recvIdx[q]) {
						stamp := int64(data[len(data)-1])
						if stamp > lastStamp[qi] {
							rm.ObserveStaleness(int(stamp - lastStamp[qi] - 1))
							tw.Recv(q, int(stamp))
							lastStamp[qi] = stamp
						}
					}
					gotNew = true
				}
			}
			if !gotNew && faultsOn && board.AnyDead() && len(gp.recvFrom) > 0 {
				// Every neighbor fail-stopped: no fresh ghosts will ever
				// arrive, so iterate on what we have rather than idling
				// against dead links (their blocks are frozen; ours can
				// still improve).
				allDead := true
				for _, q := range gp.recvFrom {
					if !board.IsDead(q) {
						allDead = false
						break
					}
				}
				gotNew = allDead
			}
			if !gotNew {
				// Nothing new: poll termination and idle.
				pprof.SetGoroutineLabels(phaseWait)
				if opt.Tol > 0 {
					localConv := iter >= opt.MaxIters ||
						curNorm/sh.nb <= opt.Tol/float64(size)
					if pollTerm(localConv) {
						tw.Decided(iter)
						break
					}
				} else if iter >= opt.MaxIters {
					break
				}
				idle++
				if idle >= 1000*opt.MaxIters {
					break
				}
				if faultsOn && !retry.Exhausted(attempt) && !time.Now().Before(nextRetry) {
					// Liveness under loss: an eager rank iterates only
					// on fresh ghosts, so if the last message on a link
					// is dropped both endpoints idle forever with their
					// flags down. Retransmit the current boundary values
					// (each copy drawing its own fate) with exponential
					// backoff, the way a real at-least-once transport
					// retries — bounded, so a genuinely dead peer stops
					// costing bandwidth once the policy is exhausted.
					nextRetry = time.Now().Add(retry.Backoff(attempt))
					attempt++
					opt.Metrics.RecoveryRetransmit()
					for _, q := range gp.sendTo {
						if board.IsDead(q) {
							opt.Metrics.RecoveryExclude()
							continue
						}
						buf := sendBufs[q]
						for t, j := range gp.sendIdx[q] {
							buf[t] = xl[gp.localOf[j]]
						}
						buf[len(buf)-1] = float64(iter)
						if inj.SendFate(q) == fault.Drop {
							opt.Metrics.FaultDrop()
							tw.FaultDrop(q, iter)
							continue
						}
						c.Isend(q, 0, buf)
						tw.Send(q, iter)
						opt.Metrics.Wire(q).Retransmit()
						if old, ok := held[q]; ok {
							delete(held, q)
							c.Isend(q, 0, old)
						}
					}
				}
				tw.Yield()
				yield()
				continue
			}
			idle = 0
			if attempt != 0 {
				attempt = 0
				nextRetry = time.Time{}
			}
		}
		pprof.SetGoroutineLabels(phaseRelax)
		// Step 1: local residual. The tracer brackets the whole
		// local iteration (residual + correction) as one slice; the
		// per-read version sampling of the shm tracer has no
		// counterpart here because ghost versions are only known at
		// neighbor granularity (the iteration stamps).
		tw.RelaxStart(-1, iter+1)
		rsum := 0.0
		for s := 0; s < nown; s++ {
			sum := sh.b[gp.rows[s]]
			for k := lrp[s]; k < lrp[s+1]; k++ {
				sum -= lval[k] * xl[lcol[k]]
			}
			rl[s] = sum
			rsum += math.Abs(sum)
		}
		curNorm = rsum
		// Step 2: correct own values.
		for s := 0; s < nown; s++ {
			xl[s] += rl[s]
		}
		iter++
		tw.RelaxEnd(-1, iter)
		if opt.RecordHistory {
			hist = append(hist, curNorm)
		}
		if rm != nil {
			// Relaxations and the residual share land before the
			// iteration tick so the stream sample published by
			// IncIteration sees current totals.
			rm.AddRelaxations(nown)
			rm.SetLocalResidual(curNorm / sh.nb)
			rm.IncIteration()
		}
		if sh.onIter != nil {
			sh.onIter(iter, xl)
		}
		pprof.SetGoroutineLabels(phasePublish)
		// Communicate boundary values. Each message first draws its
		// fate from the fault plan: dropped messages leave the
		// receiver on stale ghosts, duplicates exercise
		// at-least-once delivery, and a reordered point-to-point
		// message is held back until the next send on the same link
		// overtakes it (the receiver then installs the older values
		// last). RMA windows have no inter-message ordering, so
		// Reorder degrades to Deliver there.
		for _, q := range gp.sendTo {
			if faultsOn && board.IsDead(q) {
				// Rank exclusion: the failure detector already knows q
				// fail-stopped, so sending to it is pure waste (and, for
				// eager links, would count as a live retransmission).
				opt.Metrics.RecoveryExclude()
				continue
			}
			buf := sendBufs[q]
			for t, j := range gp.sendIdx[q] {
				buf[t] = xl[gp.localOf[j]]
			}
			if eager {
				buf[len(buf)-1] = float64(iter) // iteration stamp
			}
			fate := fault.Deliver
			if faultsOn {
				fate = inj.SendFate(q)
			}
			if fate == fault.Drop {
				opt.Metrics.FaultDrop()
				tw.FaultDrop(q, iter)
				continue
			}
			if opt.Async && !eager {
				win.Put(q, putOff[q], buf)
				stampBuf[0] = float64(iter)
				win.Put(q, stampPutOff[q], stampBuf)
				rm.IncPut()
				rm.IncPut()
				tw.Put(q, iter)
				if fate == fault.Dup {
					win.Put(q, putOff[q], buf)
					win.Put(q, stampPutOff[q], stampBuf)
					opt.Metrics.FaultDup()
					tw.FaultDup(q, iter)
				}
			} else {
				if fate == fault.Reorder {
					held[q] = append([]float64(nil), buf...)
					opt.Metrics.FaultReorder()
					tw.FaultReorder(q, iter)
					continue
				}
				c.Isend(q, 0, buf)
				tw.Send(q, iter)
				if fate == fault.Dup {
					c.Isend(q, 0, buf)
					opt.Metrics.FaultDup()
					tw.FaultDup(q, iter)
				}
				if old, ok := held[q]; ok {
					delete(held, q)
					c.Isend(q, 0, old) // the overtaken message lands late
				}
			}
		}
		if !opt.Async {
			// Synchronous ghost exchange: blocking receives from
			// every neighbor. In lockstep the sender's iteration
			// equals ours, which is the stamp the tracer records
			// (and what pairs the send→receive flow arrows).
			for _, q := range gp.recvFrom {
				data := c.Recv(q, 0)
				for t, j := range gp.recvIdx[q] {
					xl[gp.localOf[j]] = data[t]
				}
				tw.Recv(q, iter)
			}
		}
		// Termination.
		pprof.SetGoroutineLabels(phaseWait)
		if !opt.Async {
			stop := iter >= opt.MaxIters
			if opt.Tol > 0 {
				grn := c.Allreduce(curNorm)
				if grn/sh.nb <= opt.Tol {
					stop = true
				}
			}
			if sh.stopper != nil {
				// Stop vote: lockstep ranks must agree on the exact
				// iteration they stop at, so the deadline/cancel poll
				// goes through a collective. One extra Allreduce per
				// iteration, paid only when a stopper exists.
				vote := 0.0
				if sh.stopper.Check() != resilience.StopNone {
					vote = 1
				}
				if c.Allreduce(vote) > 0 {
					stop = true
				}
			}
			if stop {
				break
			}
		} else {
			if opt.Tol <= 0 {
				// The paper's naive scheme: stop after MaxIters.
				if iter >= opt.MaxIters {
					break
				}
			} else {
				// Local predicate: own residual share below tol/P
				// (additive in the 1-norm), or budget exhausted.
				localConv := iter >= opt.MaxIters ||
					curNorm/sh.nb <= opt.Tol/float64(size)
				stop := pollTerm(localConv)
				if stop {
					tw.Decided(iter)
				}
				if stop || iter >= 100*opt.MaxIters {
					break
				}
				if sh.net && localConv {
					// Over a real wire, a rank that is only waiting for
					// its peers' flags gains nothing by spinning: every
					// extra relaxation floods the links (and on a small
					// box, the CPU) with puts of values that barely
					// change, starving slower ranks. Pace the wait; the
					// solve stays asynchronous, just not busy-hot.
					time.Sleep(100 * time.Microsecond)
				}
			}
			tw.Yield()
			yield()
		}
	}
	return rankOut{iter: iter, hist: hist, xl: xl}
}

// buildLocalCSR remaps each rank's rows of a into local column slots so
// the relax loop's SpMV is cache-friendly; built once per solve and
// shared read-only by every pass.
func buildLocalCSR(rowPtr []int, col []int, val []float64, plans []*ghostPlan) (lrp [][]int, lcol [][]int, lval [][]float64) {
	lrp = make([][]int, len(plans))
	lcol = make([][]int, len(plans))
	lval = make([][]float64, len(plans))
	for p, gp := range plans {
		nown := len(gp.rows)
		rp := make([]int, nown+1)
		var cols []int
		var vals []float64
		for s, i := range gp.rows {
			for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
				cols = append(cols, gp.localOf[col[k]])
				vals = append(vals, val[k])
			}
			rp[s+1] = len(cols)
		}
		lrp[p], lcol[p], lval[p] = rp, cols, vals
	}
	return lrp, lcol, lval
}
