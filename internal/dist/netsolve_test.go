package dist_test

// End-to-end SolveRank coverage over the TCP transport: a 4-rank
// asynchronous solve under deterministic wire faults (in-process
// goroutines, real sockets on localhost), and a kill-and-restart solve
// across real OS processes where one rank resumes from its checkpoint.

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/dist/tcptransport"
	"repro/internal/fault"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sparse"
)

func testVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// soakProblem is the fixed test system shared by the in-process soak
// and the subprocess helper (which must rebuild it bit-identically).
func soakProblem() (*sparse.CSR, []float64, []float64) {
	a := matgen.FD2D(12, 12)
	rng := rand.New(rand.NewPCG(41, 43))
	b := testVec(rng, a.N)
	x0 := testVec(rng, a.N)
	return a, b, x0
}

func dialRanks(t *testing.T, p int, mk func(rank int) tcptransport.Config) []*tcptransport.Transport {
	t.Helper()
	trs := make([]*tcptransport.Transport, p)
	for rank := 0; rank < p; rank++ {
		tr, err := tcptransport.Dial(mk(rank))
		if err != nil {
			t.Fatalf("rank %d dial: %v", rank, err)
		}
		trs[rank] = tr
	}
	for _, tr := range trs {
		if err := tr.WaitReady(10 * time.Second); err != nil {
			t.Fatalf("mesh never completed: %v", err)
		}
	}
	return trs
}

// TestSolveRankTCPWireFaultSoak runs the asynchronous solver across
// four TCP transports with 10% deterministic frame drops (plus some
// reordering) on the data plane and asserts the convergence contract
// on every rank: Converged == (RelRes <= Tol), and all ranks agree on
// the final iterate.
func TestSolveRankTCPWireFaultSoak(t *testing.T) {
	const p = 4
	a, b, x0 := soakProblem()
	addrs := freeAddrs(t, p)
	plan := &fault.Plan{Seed: 2026, Drop: 0.10, Reorder: 0.05}
	trs := dialRanks(t, p, func(rank int) tcptransport.Config {
		return tcptransport.Config{
			Rank: rank, Addrs: addrs,
			Metrics:   obs.NewSolverMetrics(obs.NewRegistry()),
			WireFault: plan,
		}
	})

	results := make([]*dist.Result, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			results[rank] = dist.SolveRank(trs[rank], a, b, x0, dist.SolveOptions{
				Procs: p, MaxIters: 200000, Tol: 1e-6, Async: true,
				NetTimeout: 20 * time.Second,
			})
		}(rank)
	}
	wg.Wait()
	for _, tr := range trs {
		tr.Close()
	}

	for rank, res := range results {
		if res == nil {
			t.Fatalf("rank %d returned no result", rank)
		}
		if res.Converged != (res.RelRes <= 1e-6) {
			t.Errorf("rank %d violates the contract: Converged=%v RelRes=%g",
				rank, res.Converged, res.RelRes)
		}
		if !res.Converged {
			t.Errorf("rank %d did not converge under 10%% wire drop: RelRes=%g",
				rank, res.RelRes)
		}
	}
	// The stop decision broadcast the assembled solution: all ranks
	// must hold the same X.
	for rank := 1; rank < p; rank++ {
		for i := range results[0].X {
			if math.Abs(results[rank].X[i]-results[0].X[i]) > 1e-12 {
				t.Fatalf("rank %d X[%d]=%g disagrees with rank 0's %g",
					rank, i, results[rank].X[i], results[0].X[i])
			}
		}
	}
}

// TestSolveRankTCPMatchesTolerance is the fault-free sanity twin of the
// soak: same solve, clean wire, must converge with the same contract.
func TestSolveRankTCPClean(t *testing.T) {
	const p = 2
	a, b, x0 := soakProblem()
	addrs := freeAddrs(t, p)
	trs := dialRanks(t, p, func(rank int) tcptransport.Config {
		return tcptransport.Config{
			Rank: rank, Addrs: addrs,
			Metrics: obs.NewSolverMetrics(obs.NewRegistry()),
		}
	})
	results := make([]*dist.Result, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			results[rank] = dist.SolveRank(trs[rank], a, b, x0, dist.SolveOptions{
				Procs: p, MaxIters: 200000, Tol: 1e-8, Async: true,
				NetTimeout: 20 * time.Second,
			})
		}(rank)
	}
	wg.Wait()
	for _, tr := range trs {
		tr.Close()
	}
	for rank, res := range results {
		if !res.Converged || res.RelRes > 1e-8 {
			t.Errorf("rank %d: Converged=%v RelRes=%g", rank, res.Converged, res.RelRes)
		}
	}
}

// helperResult is what each helper process writes for the parent.
type helperResult struct {
	Rank      int     `json:"rank"`
	Converged bool    `json:"converged"`
	RelRes    float64 `json:"relres"`
	Tol       float64 `json:"tol"`
	Resumed   bool    `json:"resumed"`
	Stop      string  `json:"stop"`
}

// TestHelperRankProcess is not a test: it is the per-rank body of the
// kill/restart integration test below, re-executed as a child process.
func TestHelperRankProcess(t *testing.T) {
	rankEnv := os.Getenv("AJ_HELPER_RANK")
	if rankEnv == "" {
		t.Skip("helper body for TestSolveRankKillRestart; not a standalone test")
	}
	rank, err := strconv.Atoi(rankEnv)
	if err != nil {
		t.Fatalf("AJ_HELPER_RANK: %v", err)
	}
	addrs := strings.Split(os.Getenv("AJ_HELPER_ADDRS"), ",")
	ckptPath := os.Getenv("AJ_HELPER_CKPT")
	outPath := os.Getenv("AJ_HELPER_OUT")

	a, b, x0 := soakProblem()
	const tol = 1e-8

	opt := dist.SolveOptions{
		Procs: len(addrs), MaxIters: 500000, Tol: tol, Async: true,
		NetTimeout: 15 * time.Second,
		// A heavy-ish per-iteration delay stretches the solve to ~2s of
		// wall time so the parent can kill and restart a rank while
		// real work is in flight.
		Fault:      &fault.Plan{Seed: 9, DelayMean: 3 * time.Millisecond, DelayAlpha: 8},
		Checkpoint: &resilience.Spec{Path: ckptPath, Interval: 20 * time.Millisecond},
	}
	resumed := false
	if ck, err := resilience.Load(ckptPath); err == nil {
		if err := ck.ValidateFor(a.N); err != nil {
			t.Fatalf("checkpoint invalid: %v", err)
		}
		x0 = ck.X
		opt.Resume = ck
		resumed = true
	}

	tr, err := tcptransport.Dial(tcptransport.Config{
		Rank: rank, Addrs: addrs,
		Metrics:        obs.NewSolverMetrics(obs.NewRegistry()),
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	if err := tr.WaitReady(20 * time.Second); err != nil {
		t.Fatalf("mesh: %v", err)
	}

	res := dist.SolveRank(tr, a, b, x0, opt)
	out, _ := json.Marshal(helperResult{
		Rank: rank, Converged: res.Converged, RelRes: res.RelRes,
		Tol: tol, Resumed: resumed, Stop: res.StopReason.String(),
	})
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		t.Fatalf("write result: %v", err)
	}
}

// TestSolveRankKillRestart runs a real multi-process solve: four OS
// processes over TCP, rank 2 SIGKILLed mid-solve and restarted shortly
// after, resuming from its interval checkpoint. The solve must still
// converge, the contract must hold on every surviving record, and the
// restarted process must actually have resumed.
func TestSolveRankKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	const p = 4
	addrs := freeAddrs(t, p)
	dir := t.TempDir()

	spawn := func(rank int) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=^TestHelperRankProcess$", "-test.timeout=120s")
		cmd.Env = append(os.Environ(),
			"AJ_HELPER_RANK="+strconv.Itoa(rank),
			"AJ_HELPER_ADDRS="+strings.Join(addrs, ","),
			"AJ_HELPER_CKPT="+filepath.Join(dir, "ck."+strconv.Itoa(rank)),
			"AJ_HELPER_OUT="+filepath.Join(dir, "out."+strconv.Itoa(rank)+".json"),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn rank %d: %v", rank, err)
		}
		return cmd
	}

	cmds := make([]*exec.Cmd, p)
	for rank := 0; rank < p; rank++ {
		cmds[rank] = spawn(rank)
	}

	// Let the mesh form and real iterations (and checkpoints) happen,
	// then kill rank 2 the hard way and bring it back.
	time.Sleep(900 * time.Millisecond)
	victimCkpt := filepath.Join(dir, "ck.2")
	if err := cmds[2].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill rank 2: %v", err)
	}
	cmds[2].Wait()
	if _, err := os.Stat(victimCkpt); err != nil {
		t.Fatalf("no checkpoint written before the kill: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	cmds[2] = spawn(2)

	done := make(chan int, p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			cmds[rank].Wait()
			done <- rank
		}(rank)
	}
	deadline := time.After(90 * time.Second)
	for i := 0; i < p; i++ {
		select {
		case <-done:
		case <-deadline:
			for _, c := range cmds {
				c.Process.Kill()
			}
			t.Fatal("solve processes did not finish in time")
		}
	}

	read := func(rank int) helperResult {
		raw, err := os.ReadFile(filepath.Join(dir, "out."+strconv.Itoa(rank)+".json"))
		if err != nil {
			t.Fatalf("rank %d wrote no result: %v", rank, err)
		}
		var hr helperResult
		if err := json.Unmarshal(raw, &hr); err != nil {
			t.Fatalf("rank %d result: %v", rank, err)
		}
		return hr
	}
	for rank := 0; rank < p; rank++ {
		hr := read(rank)
		if hr.Converged != (hr.RelRes <= hr.Tol) {
			t.Errorf("rank %d violates the contract: converged=%v relres=%g tol=%g",
				rank, hr.Converged, hr.RelRes, hr.Tol)
		}
	}
	root := read(0)
	if !root.Converged {
		t.Errorf("solve with a killed+restarted rank did not converge: relres=%g stop=%s",
			root.RelRes, root.Stop)
	}
	if victim := read(2); !victim.Resumed {
		t.Error("restarted rank 2 did not resume from its checkpoint")
	}
}
