package dist_test

// Transport conformance: one table of behavioral tests asserted
// against BOTH Comm backends — the in-process channel world and the
// TCP transport on localhost — so a backend cannot drift from the
// contract the solver loop assumes (ordering per channel, Isend buffer
// copy, drain-to-newest receives, window put visibility, collective
// correctness, deadline errors, dead-rank degradation).

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/dist/tcptransport"
	"repro/internal/obs"
)

// world runs a p-rank communication world, invoking body concurrently
// with each rank's Comm. Bodies must return before the world tears
// down (the TCP backend closes its transports only after every body
// finishes, so late frames still have live sockets).
type world struct {
	name string
	run  func(t *testing.T, p int, body func(c dist.Comm))
}

func memWorld() world {
	return world{
		name: "mem",
		run: func(t *testing.T, p int, body func(c dist.Comm)) {
			dist.Run(p, func(r *dist.Rank) { body(r) })
		},
	}
}

// freeAddrs reserves n distinct localhost ports by listening and
// immediately closing; the tiny reuse race is acceptable in tests.
func freeAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func tcpWorld() world {
	return world{
		name: "tcp",
		run: func(t *testing.T, p int, body func(c dist.Comm)) {
			addrs := freeAddrs(t, p)
			trs := make([]*tcptransport.Transport, p)
			var wg sync.WaitGroup
			wg.Add(p)
			for rank := 0; rank < p; rank++ {
				go func(rank int) {
					defer wg.Done()
					tr, err := tcptransport.Dial(tcptransport.Config{
						Rank: rank, Addrs: addrs,
						Metrics: obs.NewSolverMetrics(obs.NewRegistry()),
					})
					if err != nil {
						t.Errorf("rank %d dial: %v", rank, err)
						return
					}
					trs[rank] = tr
					if err := tr.WaitReady(10 * time.Second); err != nil {
						t.Errorf("rank %d not ready: %v", rank, err)
						return
					}
					body(tr)
				}(rank)
			}
			wg.Wait()
			for _, tr := range trs {
				if tr != nil {
					tr.Close()
				}
			}
		},
	}
}

func worlds() []world { return []world{memWorld(), tcpWorld()} }

func TestConformanceOrderingPerChannel(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			w.run(t, 2, func(c dist.Comm) {
				const k = 20
				if c.RankID() == 0 {
					for i := 0; i < k; i++ {
						c.Isend(1, 0, []float64{float64(i)})
					}
					return
				}
				for i := 0; i < k; i++ {
					got := c.Recv(0, 0)
					if got[0] != float64(i) {
						t.Errorf("message %d arrived out of order: got %v", i, got[0])
					}
				}
			})
		})
	}
}

func TestConformanceIsendCopiesBuffer(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			w.run(t, 2, func(c dist.Comm) {
				if c.RankID() == 0 {
					buf := []float64{1, 2, 3}
					c.Isend(1, 0, buf)
					buf[0] = 99 // must not affect the in-flight message
					return
				}
				got := c.Recv(0, 0)
				if got[0] != 1 {
					t.Errorf("Isend aliased the caller's buffer: got %v", got)
				}
			})
		})
	}
}

func TestConformanceTryRecvDrainsToNewest(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			w.run(t, 2, func(c dist.Comm) {
				if c.RankID() == 0 {
					for i := 1; i <= 3; i++ {
						c.Isend(1, 7, []float64{float64(10 * i)})
					}
					c.Barrier()
					return
				}
				c.Barrier()
				// All three were sent before the barrier; keep draining
				// until the newest shows (frames may still be landing).
				deadline := time.Now().Add(5 * time.Second)
				var newest float64
				for time.Now().Before(deadline) && newest != 30 {
					if got, ok := c.TryRecv(0, 7); ok {
						newest = got[0]
					}
					time.Sleep(time.Millisecond)
				}
				if newest != 30 {
					t.Errorf("drain-to-newest: want 30, got %v", newest)
				}
				// And nothing older may surface afterwards.
				if got, ok := c.TryRecv(0, 7); ok {
					t.Errorf("stale message after drain: %v", got)
				}
			})
		})
	}
}

func TestConformanceTagsSeparateChannels(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			w.run(t, 2, func(c dist.Comm) {
				if c.RankID() == 0 {
					c.Isend(1, 2, []float64{2})
					c.Isend(1, 1, []float64{1})
					return
				}
				if got := c.Recv(0, 1); got[0] != 1 {
					t.Errorf("tag 1: got %v", got[0])
				}
				if got := c.Recv(0, 2); got[0] != 2 {
					t.Errorf("tag 2: got %v", got[0])
				}
			})
		})
	}
}

func TestConformanceWindowPutVisibility(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			w.run(t, 2, func(c dist.Comm) {
				win := c.AllocWindow(4)
				c.Barrier() // both windows exist before any put
				if c.RankID() == 0 {
					win.Put(1, 1, []float64{2.5, 3.5})
					c.Barrier() // wait for rank 1's assertion
					return
				}
				buf := win.Local()
				deadline := time.Now().Add(5 * time.Second)
				for time.Now().Before(deadline) {
					if buf.Load(1) == 2.5 && buf.Load(2) == 3.5 {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if buf.Load(1) != 2.5 || buf.Load(2) != 3.5 || buf.Load(0) != 0 || buf.Load(3) != 0 {
					t.Errorf("window after put: [%v %v %v %v]",
						buf.Load(0), buf.Load(1), buf.Load(2), buf.Load(3))
				}
				c.Barrier()
			})
		})
	}
}

func TestConformanceAllreduce(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			const p = 4
			want := float64(p * (p + 1) / 2)
			w.run(t, p, func(c dist.Comm) {
				// Twice, to exercise tag-stream reuse across calls.
				for round := 0; round < 2; round++ {
					got := c.Allreduce(float64(c.RankID() + 1))
					if got != want {
						t.Errorf("round %d rank %d: Allreduce = %v, want %v",
							round, c.RankID(), got, want)
					}
				}
			})
		})
	}
}

func TestConformanceBarrierSynchronizes(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			const p = 3
			var before atomic.Int64
			w.run(t, p, func(c dist.Comm) {
				before.Add(1)
				c.Barrier()
				if got := before.Load(); got != p {
					t.Errorf("rank %d passed barrier with only %d/%d arrivals",
						c.RankID(), got, p)
				}
			})
		})
	}
}

func TestConformanceAllreduceTimeoutDeadline(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			w.run(t, 2, func(c dist.Comm) {
				if c.RankID() == 1 {
					return // crashed peer: never joins the collective
				}
				_, err := c.AllreduceTimeout(1, 150*time.Millisecond, nil)
				if !errors.Is(err, dist.ErrTimeout) {
					t.Errorf("want ErrTimeout on a silent peer, got %v", err)
				}
			})
		})
	}
}

func TestConformanceAllreduceTimeoutSkipsDead(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			const p = 3
			dead := func(q int) bool { return q == 2 }
			w.run(t, p, func(c dist.Comm) {
				if c.RankID() == 2 {
					return // declared dead: contributes nothing
				}
				got, err := c.AllreduceTimeout(float64(c.RankID()+1), 5*time.Second, dead)
				if err != nil {
					t.Errorf("rank %d: %v", c.RankID(), err)
					return
				}
				if got != 3 { // 1 + 2, rank 2 skipped
					t.Errorf("rank %d: sum over survivors = %v, want 3", c.RankID(), got)
				}
			})
		})
	}
}

func TestConformanceBarrierTimeoutDeadPeer(t *testing.T) {
	for _, w := range worlds() {
		t.Run(w.name, func(t *testing.T) {
			w.run(t, 2, func(c dist.Comm) {
				if c.RankID() == 1 {
					return
				}
				dead := func(q int) bool { return q == 1 }
				if err := c.BarrierTimeout(5*time.Second, dead); err != nil {
					t.Errorf("barrier over survivors: %v", err)
				}
			})
		})
	}
}

// TestMailboxBoundedEviction covers the satellite fix directly: a slow
// reader no longer accumulates unbounded ghost backlog — the oldest
// message is shed, the eviction is counted, and the newest survives.
func TestMailboxBoundedEviction(t *testing.T) {
	var evictions atomic.Int64
	mb := dist.NewMailbox(4, func() { evictions.Add(1) })
	for i := 1; i <= 7; i++ {
		mb.Push([]float64{float64(i)})
	}
	if got := mb.Len(); got != 4 {
		t.Fatalf("bounded mailbox holds %d, want 4", got)
	}
	if got := evictions.Load(); got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	first, _ := mb.TryPop()
	if first[0] != 4 {
		t.Fatalf("oldest surviving message = %v, want 4 (1..3 evicted)", first[0])
	}
	var last []float64
	for {
		m, ok := mb.TryPop()
		if !ok {
			break
		}
		last = m
	}
	if last[0] != 7 {
		t.Fatalf("newest message = %v, want 7", last[0])
	}
}

func TestMailboxPopTimeout(t *testing.T) {
	mb := dist.NewMailbox(0, nil)
	if _, err := mb.PopTimeout(50 * time.Millisecond); !errors.Is(err, dist.ErrTimeout) {
		t.Fatalf("empty mailbox: want ErrTimeout, got %v", err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		mb.Push([]float64{42})
	}()
	got, err := mb.PopTimeout(5 * time.Second)
	if err != nil || got[0] != 42 {
		t.Fatalf("PopTimeout after push: %v, %v", got, err)
	}
}

// TestWorldEvictionCounted checks the in-process world sheds backlog on
// user tags and surfaces it on the transport eviction counter.
func TestWorldEvictionCounted(t *testing.T) {
	m := obs.NewSolverMetrics(obs.NewRegistry())
	total := dist.DefaultMailboxCap + 50
	dist.RunObserved(2, m, func(r *dist.Rank) {
		if r.ID == 0 {
			for i := 0; i < total; i++ {
				r.Isend(1, 0, []float64{float64(i)})
			}
		}
		r.Barrier()
		if r.ID == 1 {
			newest, ok := r.TryRecv(0, 0)
			if !ok {
				t.Error("no message survived the bounded mailbox")
			} else if newest[0] != float64(total-1) {
				t.Errorf("newest = %v, want %v", newest[0], total-1)
			}
		}
	})
	if got := m.TransportEvictCount(); got != 50 {
		t.Fatalf("evictions = %d, want 50", got)
	}
}
