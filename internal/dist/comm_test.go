package dist

import (
	"sync/atomic"
	"testing"
)

func TestPointToPoint(t *testing.T) {
	Run(2, func(r *Rank) {
		if r.ID == 0 {
			r.Isend(1, 7, []float64{1, 2, 3})
		} else {
			data := r.Recv(0, 7)
			if len(data) != 3 || data[2] != 3 {
				t.Errorf("Recv got %v", data)
			}
		}
	})
}

func TestIsendCopiesBuffer(t *testing.T) {
	Run(2, func(r *Rank) {
		if r.ID == 0 {
			buf := []float64{42}
			r.Isend(1, 0, buf)
			buf[0] = -1 // must not affect the message
			r.Barrier()
		} else {
			data := r.Recv(0, 0)
			r.Barrier()
			if data[0] != 42 {
				t.Errorf("Isend aliased caller buffer: %v", data)
			}
		}
	})
}

func TestMessagesOrderedPerChannel(t *testing.T) {
	const k = 100
	Run(2, func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < k; i++ {
				r.Isend(1, 0, []float64{float64(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				d := r.Recv(0, 0)
				if d[0] != float64(i) {
					t.Errorf("message %d out of order: got %g", i, d[0])
					return
				}
			}
		}
	})
}

func TestTagsSeparateChannels(t *testing.T) {
	Run(2, func(r *Rank) {
		if r.ID == 0 {
			r.Isend(1, 2, []float64{2})
			r.Isend(1, 1, []float64{1})
		} else {
			if d := r.Recv(0, 1); d[0] != 1 {
				t.Errorf("tag 1 got %g", d[0])
			}
			if d := r.Recv(0, 2); d[0] != 2 {
				t.Errorf("tag 2 got %g", d[0])
			}
		}
	})
}

func TestTryRecvDrainsToNewest(t *testing.T) {
	Run(2, func(r *Rank) {
		if r.ID == 0 {
			for i := 1; i <= 5; i++ {
				r.Isend(1, 0, []float64{float64(i)})
			}
			r.Barrier()
		} else {
			r.Barrier() // all five messages pending
			d, ok := r.TryRecv(0, 0)
			if !ok || d[0] != 5 {
				t.Errorf("TryRecv got %v ok=%v, want newest (5)", d, ok)
			}
			if _, ok := r.TryRecv(0, 0); ok {
				t.Error("mailbox should be drained")
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	const p = 7
	Run(p, func(r *Rank) {
		got := r.Allreduce(float64(r.ID + 1))
		want := float64(p * (p + 1) / 2)
		if got != want {
			t.Errorf("rank %d: Allreduce = %g want %g", r.ID, got, want)
		}
		// Twice in a row: no tag leakage between collectives.
		got2 := r.Allreduce(1)
		if got2 != p {
			t.Errorf("rank %d: second Allreduce = %g", r.ID, got2)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 5
	var before, after atomic.Int64
	Run(p, func(r *Rank) {
		before.Add(1)
		r.Barrier()
		if before.Load() != p {
			t.Errorf("rank %d passed barrier before all arrived", r.ID)
		}
		after.Add(1)
	})
	if after.Load() != p {
		t.Fatal("not all ranks finished")
	}
}

func TestWindowPut(t *testing.T) {
	Run(3, func(r *Rank) {
		win := r.WinAllocate(4)
		win.LockAll()
		defer win.UnlockAll()
		// Every rank writes its ID+1 into slot ID of rank 0's window.
		win.Put(0, r.ID, []float64{float64(r.ID + 1)})
		r.Barrier()
		if r.ID == 0 {
			buf := win.Local(0)
			for i := 0; i < 3; i++ {
				if buf.Load(i) != float64(i+1) {
					t.Errorf("window[%d] = %g", i, buf.Load(i))
				}
			}
		}
	})
}

func TestMultipleWindows(t *testing.T) {
	Run(2, func(r *Rank) {
		w1 := r.WinAllocate(1)
		w2 := r.WinAllocate(1)
		other := 1 - r.ID
		w1.Put(other, 0, []float64{10})
		w2.Put(other, 0, []float64{20})
		r.Barrier()
		if w1.Local(r.ID).Load(0) != 10 || w2.Local(r.ID).Load(0) != 20 {
			t.Errorf("rank %d: windows mixed up: %g %g",
				r.ID, w1.Local(r.ID).Load(0), w2.Local(r.ID).Load(0))
		}
	})
}

func TestRunPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(0, func(*Rank) {})
}
