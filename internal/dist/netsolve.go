package dist

// SolveRank drives ONE rank of a multi-process distributed solve over
// a NetComm transport (internal/dist/tcptransport): the same runRank
// loop, ghost plans, and termination protocols as the in-process
// Solve, with the recheck-and-resume decision centralized on rank 0
// through a gather/decide exchange.
//
// Per pass, every rank runs runRank to a termination detection, then:
//
//   - non-root ranks send [iterations, owned values...] to rank 0
//     (tagGather) and wait for its verdict (tagDecide);
//   - rank 0 assembles the global iterate from the newest gather of
//     each live peer (a dead or silent peer's block stays frozen at
//     its last known values — exactly the degradation Theorem 1's
//     arbitrary-delay model permits), recomputes the residual
//     EXACTLY, applies the same stop logic as Solve (tolerance,
//     budget, progress), and broadcasts [stop, relres, nextBudget]
//     — plus the assembled solution on the final pass, so every
//     process returns the same converged X.
//
// Both waits drain to the newest message, which makes a skipped
// round self-correcting: if rank 0 gave up on a slow peer and decided
// with its frozen block, the late gather simply feeds the next pass,
// and the slow peer picks up the newest decide whenever it arrives.
// All coordination runs on negative (control-plane) tags, which the
// TCP backend neither evicts nor wire-faults.
//
// Checkpoints are per-process and iteration-grained: each rank
// snapshots its locally-assembled view of the iterate (own block
// authoritative, ghosts as last seen) on the spec's interval from
// inside the solve loop, so a SIGKILL mid-pass still resumes from
// recent work. A restarted rank re-enters with -resume: the transport
// revives it on its peers' boards and its checkpointed block rejoins
// the iteration.

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/resilience"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// SolveRank runs this process's rank of a distributed Jacobi solve
// over c. Every process passes the same a, b, x0, and options.
// Result.X is the globally-assembled final iterate on every rank when
// the solve ends through the decide protocol; if rank 0 became
// unreachable, it is this rank's local view and RelRes is recomputed
// exactly against it, so Converged == (RelRes <= Tol) holds either
// way. Result.History carries this rank's LOCAL residual share per
// iteration (no cross-process reconstruction). Result.Iterations has
// only this rank's entry filled.
func SolveRank(c NetComm, a *sparse.CSR, b, x0 []float64, opt SolveOptions) *Result {
	n := a.N
	rank := c.RankID()
	if opt.Procs == 0 {
		opt.Procs = c.WorldSize()
	}
	if opt.Procs != c.WorldSize() {
		panic("dist: SolveRank Procs != transport world size")
	}
	if len(b) != n || len(x0) != n {
		panic("dist: dimension mismatch")
	}
	if opt.MaxIters <= 0 {
		panic("dist: MaxIters must be positive")
	}
	if err := opt.Fault.Validate(opt.Procs); err != nil {
		panic("dist: " + err.Error())
	}
	part := opt.Part
	if part == nil {
		part = partition.Contiguous(n, opt.Procs)
	}
	if part.P != opt.Procs {
		panic("dist: partition part count != Procs")
	}
	netTimeout := opt.NetTimeout
	if netTimeout <= 0 {
		netTimeout = DefaultOpTimeout
	}
	t0 := time.Now()
	plans := buildPlans(a, part)
	lrp, lcol, lval := buildLocalCSR(a.RowPtr, a.Col, a.Val, plans)
	gp := plans[rank]

	nb := vec.Norm1(b)
	if nb == 0 {
		nb = 1
	}

	// One injector slice sized to the world, with only this rank's slot
	// armed: fault.States/RestoreStates then key checkpointed RNG
	// streams by rank exactly as the in-process solver does.
	injs := make([]*fault.Injector, opt.Procs)
	injs[rank] = opt.Fault.ForRank(rank)
	inj := injs[rank]

	res := &Result{
		Iterations: make([]int, opt.Procs),
		X:          append([]float64(nil), x0...),
	}
	var elapsed0 time.Duration
	if opt.Resume != nil {
		if err := opt.Resume.ValidateFor(n); err != nil {
			panic("dist: " + err.Error())
		}
		if err := fault.RestoreStates(injs, opt.Resume.FaultStates); err != nil {
			panic("dist: " + err.Error())
		}
		if len(opt.Resume.Iters) == opt.Procs {
			res.Iterations[rank] = int(opt.Resume.Iters[rank])
		}
		elapsed0 = opt.Resume.Elapsed
		opt.Metrics.RecoveryCheckpointLoad()
		opt.Metrics.RecoveryResume()
	}
	iters0 := res.Iterations[rank] // cumulative baseline from the resume
	stopper := resilience.NewStopper(opt.Ctx, opt.MaxTime)
	writer := resilience.NewWriter(opt.Checkpoint, opt.Metrics)

	// scatter installs this rank's local state (own rows + ghosts) into
	// a full-length vector.
	scatter := func(dst, xl []float64) {
		for s, i := range gp.rows {
			dst[i] = xl[s]
		}
		for _, q := range gp.recvFrom {
			for _, j := range gp.recvIdx[q] {
				dst[j] = xl[gp.localOf[j]]
			}
		}
	}
	ckptFrom := func(x []float64, cumIters int) *resilience.Checkpoint {
		ck := &resilience.Checkpoint{
			Substrate: "dist",
			N:         n,
			X:         append([]float64(nil), x...),
			Iters:     make([]int64, opt.Procs),
			Sweeps:    cumIters,
			Elapsed:   elapsed0 + time.Since(t0),
		}
		ck.Iters[rank] = int64(cumIters)
		ck.FaultStates = fault.States(injs)
		return ck
	}
	rr := make([]float64, n)
	relres := func() float64 {
		a.Residual(rr, b, res.X)
		return vec.Norm1(rr) / nb
	}

	board := c.Board()
	var win Window
	if opt.Async && !opt.Eager {
		// Allocated once, outside the pass loop: the TCP backend's
		// windows are keyed by allocation order, and reallocating per
		// pass would desynchronize ids across ranks that run different
		// pass counts.
		win = c.AllocWindow(gp.winLen)
	}
	opt.Metrics.SetWorkers(opt.Procs)

	budget := opt.MaxIters
	prev := math.Inf(1)
	stalls := 0
	crashedOut := false
	for {
		board.Reset()
		var decided atomic.Bool
		passOpt := opt
		passOpt.MaxIters = budget
		sh := &rankShared{
			b: b, x0: res.X, opt: passOpt, plans: plans,
			lrp: lrp, lcol: lcol, lval: lval, nb: nb,
			stopper: stopper, board: board, decided: &decided,
			net: true, win: win,
		}
		cumBase := res.Iterations[rank]
		sh.onIter = func(iterInPass int, xl []float64) {
			// Iteration-grained checkpointing: snapshot the local view
			// on the writer's interval so a kill mid-pass resumes from
			// recent work, not the last pass boundary.
			_, _ = writer.MaybeWrite(func() *resilience.Checkpoint {
				x := append([]float64(nil), res.X...)
				scatter(x, xl)
				return ckptFrom(x, cumBase+iterInPass)
			})
		}
		out := runRank(c, inj, sh)
		res.Iterations[rank] += out.iter
		res.TotalRelaxations += out.iter * len(gp.rows)
		for _, h := range out.hist {
			res.History = append(res.History, h/nb)
		}
		scatter(res.X, out.xl)

		if rank == 0 {
			// Gather the newest contribution of every live peer; a
			// silent one's block stays frozen at its last known values.
			for src := 1; src < opt.Procs; src++ {
				if board.IsDead(src) {
					continue
				}
				msg, ok := recvNewest(c, board, src, tagGather, netTimeout)
				if !ok || len(msg) != 1+len(plans[src].rows) {
					continue
				}
				for s, i := range plans[src].rows {
					res.X[i] = msg[1+s]
				}
			}
			res.RelRes = relres()
			stop := stopper.Stopped() ||
				opt.Tol <= 0 || !opt.Async ||
				res.RelRes <= opt.Tol
			// MaxIters is a per-rank budget, so charge the root's own
			// pass against it: a fast peer free-running while it waits
			// for slower flags must not bill the whole solve.
			budget -= out.iter
			if budget <= 0 || out.iter == 0 {
				stop = true
			}
			if res.RelRes > 0.999*prev {
				// No meaningful progress over the previous pass. One
				// stalled pass can be an artifact of the wire: a peer's
				// flag-true rebroadcast from the previous pass can land
				// just after Reset and latch the tree before the peer's
				// corrected flag arrives, ending the pass after a
				// handful of iterations. A dead rank's frozen block, by
				// contrast, pins the residual on EVERY pass — so only
				// consecutive stalls stop the solve.
				stalls++
				if stalls >= 3 {
					stop = true
				}
			} else {
				stalls = 0
			}
			prev = res.RelRes
			// Decide broadcast: [stop, relres, nextBudget] plus the
			// assembled iterate — on EVERY decide, not just the final
			// one. A resumed pass must restart from the globally-
			// consistent state: each rank left the last pass at the
			// local fixpoint of its own block against whatever ghosts
			// it last saw, so its local residual share reads (near)
			// zero and its flag re-raises after a single relaxation —
			// before any new boundary data has crossed the wire. Passes
			// then degenerate into one-iteration no-ops that never move
			// the true residual. Restarting from the assembled X makes
			// the local share reflect the TRUE residual: whichever rank
			// holds the remaining residual mass sees it immediately and
			// keeps its flag down until the work is actually done. (The
			// in-process solver never needs this — its shared-memory
			// ghosts refresh instantly, so the residual re-excites
			// before the flag tree can latch.)
			payload := []float64{0, res.RelRes, float64(budget)}
			if stop {
				payload[0] = 1
			}
			payload = append(payload, res.X...)
			for dst := 1; dst < opt.Procs; dst++ {
				if !board.IsDead(dst) {
					c.Isend(dst, tagDecide, payload)
				}
			}
			if stop {
				break
			}
		} else {
			gmsg := make([]float64, 1+len(gp.rows))
			gmsg[0] = float64(out.iter)
			for s, i := range gp.rows {
				gmsg[1+s] = res.X[i]
			}
			c.Isend(0, tagGather, gmsg)
			wait := netTimeout
			if stopper.Stopped() {
				// This process is leaving regardless; give the verdict
				// one short window, then go.
				wait = time.Second
			}
			msg, ok := recvNewest(c, board, 0, tagDecide, wait)
			if !ok {
				// Rank 0 is unreachable: stop with the local view,
				// recomputing the residual exactly against it so the
				// convergence contract holds on what we actually return.
				res.RelRes = relres()
				crashedOut = board.IsDead(0)
				break
			}
			res.RelRes = msg[1]
			budget = int(msg[2])
			if msg[0] == 1 {
				if len(msg) == 3+n {
					copy(res.X, msg[3:])
				}
				break
			}
			if len(msg) == 3+n {
				// Resume from the root's assembled iterate, keeping our
				// own block authoritative: if the root decided with an
				// older gather of ours (it skips silent peers), its copy
				// of our rows may trail the work we have already done.
				copy(res.X, msg[3:])
				for s, i := range gp.rows {
					res.X[i] = out.xl[s]
				}
			}
		}
		if stopper.Stopped() {
			break
		}
		res.Resumes++
		opt.Metrics.TermResume()
	}

	if opt.Tracer != nil {
		st := opt.Tracer.Worker(rank).Stats()
		opt.Metrics.TraceCaptured(rank, obs.TraceCapture{
			Events: st.Retained, Dropped: st.Dropped,
			Coalesced: st.Coalesced, SampledOut: st.SampledOut,
			Bytes: st.Bytes, EventsPerSec: st.EventsPerSec(),
		})
	}

	res.WallTime = time.Since(t0)
	res.Converged = opt.Tol > 0 && res.RelRes <= opt.Tol
	opt.Metrics.SetResidual(res.RelRes)
	opt.Metrics.SetConverged(res.Converged)
	if writer != nil {
		res.CheckpointErr = writer.Write(ckptFrom(res.X, res.Iterations[rank]))
		opt.Tracer.Worker(rank).Checkpoint(res.Iterations[rank] - iters0)
	}
	crashed := crashedOut || inj.Dead()
	res.StopReason = resilience.Resolve(res.Converged, stopper, crashed)
	switch res.StopReason {
	case resilience.StopDeadline:
		opt.Metrics.RecoveryDeadline()
	case resilience.StopCanceled:
		opt.Metrics.RecoveryCancel()
	}
	res.Elapsed = elapsed0 + res.WallTime
	return res
}

// recvNewest waits for the newest pending message on (from, tag),
// draining intermediates. It gives up when the deadline passes or the
// board declares the sender dead.
func recvNewest(c Comm, board Board, from, tag int, timeout time.Duration) ([]float64, bool) {
	deadline := time.Now().Add(timeout)
	for {
		if msg, ok := c.TryRecv(from, tag); ok {
			return msg, true
		}
		if board.IsDead(from) || time.Now().After(deadline) {
			return nil, false
		}
		time.Sleep(time.Millisecond)
	}
}
