package dist

import (
	"math/rand/v2"
	"testing"

	"repro/internal/matgen"
)

func BenchmarkDistAsync(b *testing.B) {
	a := matgen.FD2D(24, 24)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, SolveOptions{Procs: 8, MaxIters: 50, Async: true})
	}
}

func BenchmarkDistSync(b *testing.B) {
	a := matgen.FD2D(24, 24)
	rng := rand.New(rand.NewPCG(2, 2))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, SolveOptions{Procs: 8, MaxIters: 50})
	}
}
