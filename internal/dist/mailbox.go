package dist

import (
	"sync"
	"time"
)

// DefaultMailboxCap bounds a user-tag mailbox. The original mailbox
// was unbounded, so a slow rank accumulated every ghost update ever
// sent to it; a bounded evict-oldest queue is legal for ghost traffic
// because newest-wins is the reading discipline anyway (TryRecv
// drains to the newest pending message), and 1024 pending messages is
// three orders of magnitude more lag than the asynchronous model ever
// profits from. Internal (negative) tags — collectives, termination
// tokens, gather/decide coordination — stay unbounded: dropping one
// of those is a protocol violation, and their queue depth is bounded
// by the protocols themselves.
const DefaultMailboxCap = 1024

// Mailbox is a FIFO message queue with an optional evict-oldest bound,
// blocking and deadline pops, and a drain-to-newest TryPop. Both
// transport backends use it: the in-process world keys one per
// (src, dst, tag), the TCP backend one per (src, tag) on the
// receiving side.
type Mailbox struct {
	mu    sync.Mutex
	queue [][]float64
	// avail coalesces arrival signals for blocked readers (cap 1; a
	// reader re-checks the queue after every wake, so coalescing is
	// safe).
	avail chan struct{}
	// cap bounds the queue; 0 = unbounded. When full, Push evicts the
	// oldest message and calls onEvict.
	cap     int
	onEvict func()
}

// NewMailbox builds a mailbox with the given capacity (0 = unbounded)
// and eviction callback (nil ok).
func NewMailbox(capacity int, onEvict func()) *Mailbox {
	return &Mailbox{avail: make(chan struct{}, 1), cap: capacity, onEvict: onEvict}
}

// Push appends data (not copied — callers own the copy discipline),
// evicting the oldest message when the bound is hit.
func (m *Mailbox) Push(data []float64) {
	m.mu.Lock()
	evicted := false
	if m.cap > 0 && len(m.queue) >= m.cap {
		// Evict-oldest: readers drain to newest, so the oldest message
		// is the one whose information is most superseded.
		m.queue = m.queue[1:]
		evicted = true
	}
	m.queue = append(m.queue, data)
	m.mu.Unlock()
	if evicted && m.onEvict != nil {
		m.onEvict()
	}
	select {
	case m.avail <- struct{}{}:
	default:
	}
}

// TryPop removes and returns the oldest message, or ok=false when the
// mailbox is empty.
func (m *Mailbox) TryPop() ([]float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return nil, false
	}
	data := m.queue[0]
	m.queue = m.queue[1:]
	return data, true
}

// Pop blocks until a message is available and returns the oldest.
func (m *Mailbox) Pop() []float64 {
	for {
		if data, ok := m.TryPop(); ok {
			return data
		}
		<-m.avail
	}
}

// PopTimeout is Pop with a deadline: it returns ErrTimeout once d has
// elapsed without a message. d <= 0 selects DefaultOpTimeout.
func (m *Mailbox) PopTimeout(d time.Duration) ([]float64, error) {
	if data, ok := m.TryPop(); ok {
		return data, nil
	}
	if d <= 0 {
		d = DefaultOpTimeout
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		select {
		case <-m.avail:
			if data, ok := m.TryPop(); ok {
				return data, nil
			}
		case <-timer.C:
			return nil, ErrTimeout
		}
	}
}

// Len reports the queued message count.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
