package dist_test

// Whole-pipeline coverage for the cluster observability path: three
// ranks solve over real TCP sockets with tracing on, the non-root
// ranks ship their telemetry reports through the collect side channel,
// and the root merges the skew-corrected timelines. The merged trace
// must be causally clean and must still satisfy Theorem 1's norm
// bounds when bridged to the model — the same check the shm tracer
// passes, now across process timelines.

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/collect"
	"repro/internal/dist"
	"repro/internal/dist/tcptransport"
	"repro/internal/ledger"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/trace"
)

func TestSolveRankTCPMergedTraceNorms(t *testing.T) {
	const p = 3
	// Smaller than the soak problem: the model-side propagation analysis
	// of the reconstructed schedule is O(events·n) and a 12x12 grid
	// pushes the runtime past 20s.
	a := matgen.FD2D(8, 8)
	rng := rand.New(rand.NewPCG(7, 11))
	b := testVec(rng, a.N)
	x0 := testVec(rng, a.N)
	addrs := freeAddrs(t, p)
	trs := dialRanks(t, p, func(rank int) tcptransport.Config {
		return tcptransport.Config{
			Rank: rank, Addrs: addrs,
			Metrics:        obs.NewSolverMetrics(obs.NewRegistry()),
			HeartbeatEvery: 20 * time.Millisecond,
		}
	})
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()

	recs := make([]*trace.Recorder, p)
	results := make([]*dist.Result, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		recs[rank] = trace.NewRecorder(p, 1<<16)
		go func(rank int) {
			defer wg.Done()
			results[rank] = dist.SolveRank(trs[rank], a, b, x0, dist.SolveOptions{
				Procs: p, MaxIters: 200000, Tol: 1e-6, Async: true,
				NetTimeout: 20 * time.Second,
				Tracer:     recs[rank],
			})
		}(rank)
	}
	wg.Wait()
	for rank, res := range results {
		if res == nil || !res.Converged {
			t.Fatalf("rank %d did not converge", rank)
		}
	}

	// Non-root ranks ship their reports exactly as ajdist does: events
	// plus the partial clock rebase (recorder-base minus transport-epoch
	// plus the heartbeat-estimated offset to root).
	var swg sync.WaitGroup
	for rank := 1; rank < p; rank++ {
		swg.Add(1)
		go func(rank int) {
			defer swg.Done()
			off, _ := trs[rank].OffsetTo(0)
			rep := collect.RankReport{
				Rank:    rank,
				Record:  ledger.RankRecord{Rank: rank, Converged: true},
				ShiftNs: recs[rank].Base().Sub(trs[rank].Epoch()).Nanoseconds() + int64(off),
				Events:  recs[rank].Worker(rank).Events(),
			}
			if err := collect.Ship(trs[rank], &rep); err != nil {
				t.Errorf("rank %d ship: %v", rank, err)
			}
		}(rank)
	}
	gathered := collect.Gather(trs[0], 10*time.Second)
	swg.Wait()
	if len(gathered) != p-1 {
		t.Fatalf("root gathered %d reports, want %d", len(gathered), p-1)
	}

	d0 := recs[0].Base().Sub(trs[0].Epoch()).Nanoseconds()
	procs := []trace.ProcTrace{{Rank: 0, Events: recs[0].Worker(0).Events()}}
	for _, rep := range gathered {
		if len(rep.Events) == 0 {
			t.Fatalf("rank %d shipped no trace events", rep.Rank)
		}
		procs = append(procs, trace.ProcTrace{
			Rank: rep.Rank, ShiftNs: rep.ShiftNs - d0, Events: rep.Events,
		})
	}
	merged, err := trace.MergeProcesses(procs, p)
	if err != nil {
		t.Fatalf("MergeProcesses: %v", err)
	}
	if v := trace.CausalViolations(merged); v != 0 {
		t.Errorf("merged trace has %d causal violations, want 0", v)
	}

	owner := partition.Contiguous(a.N, p).Part
	mt, err := trace.ToModelTraceRanks(merged, a, owner)
	if err != nil {
		t.Fatalf("ToModelTraceRanks: %v", err)
	}
	rep, err := trace.VerifyNorms(a, mt, 1e-9, 400)
	if err != nil {
		t.Fatalf("VerifyNorms: %v", err)
	}
	if rep.MasksChecked == 0 {
		t.Fatal("VerifyNorms checked no masks")
	}
	if rep.Violations != 0 {
		t.Errorf("merged trace violates the norm bounds: %d of %d masks (max |G|_inf=%g |H|_1=%g)",
			rep.Violations, rep.MasksChecked, rep.MaxGNormInf, rep.MaxHNorm1)
	}
}
