// Package dist is the distributed-memory substrate (Section VI of the
// paper): an MPI-like communication layer whose ranks are goroutines.
//
// Two communication styles are provided, matching the paper's two
// implementations:
//
//   - Point-to-point: non-blocking Isend and blocking Recv over
//     per-(source, destination, tag) mailboxes. The synchronous solver
//     exchanges ghost values this way, just as the paper uses
//     MPI_Isend/MPI_Recv.
//
//   - Remote memory access (RMA): each rank collectively allocates a
//     window (WinAllocate); neighbors write into disjoint subarrays of
//     the target's window with Put. Puts are atomic per float64 element
//     but not per message — exactly the semantics the paper gets from
//     MPI_Put under passive-target locking, and exactly what
//     asynchronous Jacobi needs, since a row's information needs are
//     independent of other rows. LockAll/UnlockAll are provided for API
//     fidelity; the Go memory model makes them no-ops.
//
// A small Allreduce collective (sum) supports the synchronous solver's
// global residual norm.
package dist

import (
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/shm"
)

// World owns the shared state of a rank group.
type World struct {
	size    int
	boxes   sync.Map // mailKey -> *mailbox
	wins    []*Win
	winMu   sync.Mutex
	metrics *obs.SolverMetrics
}

type mailKey struct {
	src, dst, tag int
}

// mailbox is an unbounded FIFO channel substitute: Isend never blocks.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue [][]float64
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(data []float64) {
	m.mu.Lock()
	m.queue = append(m.queue, data)
	m.cond.Signal()
	m.mu.Unlock()
}

func (m *mailbox) pop() []float64 {
	m.mu.Lock()
	for len(m.queue) == 0 {
		m.cond.Wait()
	}
	data := m.queue[0]
	m.queue = m.queue[1:]
	m.mu.Unlock()
	return data
}

func (m *mailbox) tryPop() ([]float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return nil, false
	}
	data := m.queue[0]
	m.queue = m.queue[1:]
	return data, true
}

// Rank is one process's handle into the world.
type Rank struct {
	ID    int
	Size  int
	world *World
	rm    *obs.RankMetrics // nil unless the world is observed
}

// Run spawns fn on p rank goroutines and blocks until all return.
func Run(p int, fn func(*Rank)) { RunObserved(p, nil, fn) }

// RunObserved is Run with message-level instrumentation: every Isend,
// Recv, and successful TryRecv is counted per rank on m. A nil m makes
// it identical to Run.
func RunObserved(p int, m *obs.SolverMetrics, fn func(*Rank)) {
	if p <= 0 {
		panic("dist: world size must be positive")
	}
	w := &World{size: p, metrics: m}
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			fn(&Rank{ID: id, Size: p, world: w, rm: m.Rank(id)})
		}(id)
	}
	wg.Wait()
}

func (w *World) box(src, dst, tag int) *mailbox {
	key := mailKey{src, dst, tag}
	if b, ok := w.boxes.Load(key); ok {
		return b.(*mailbox)
	}
	b, _ := w.boxes.LoadOrStore(key, newMailbox())
	return b.(*mailbox)
}

// Isend posts data to rank `to` with the given tag and returns
// immediately (the data slice is copied, so the caller may reuse its
// buffer — the completion semantics of a buffered MPI_Isend).
func (r *Rank) Isend(to, tag int, data []float64) {
	if to < 0 || to >= r.Size {
		panic(fmt.Sprintf("dist: Isend to invalid rank %d", to))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	r.rm.IncSent()
	r.world.box(r.ID, to, tag).push(cp)
}

// Recv blocks until a message from rank `from` with the given tag
// arrives, and returns its payload.
func (r *Rank) Recv(from, tag int) []float64 {
	if from < 0 || from >= r.Size {
		panic(fmt.Sprintf("dist: Recv from invalid rank %d", from))
	}
	data := r.world.box(from, r.ID, tag).pop()
	r.rm.IncReceived()
	return data
}

// TryRecv is a non-blocking receive (MPI_Iprobe+Recv): it returns the
// newest pending message from `from`, discarding older ones, or
// ok=false when none is pending. Asynchronous racy schemes use it to
// drain ghost updates without waiting.
func (r *Rank) TryRecv(from, tag int) ([]float64, bool) {
	box := r.world.box(from, r.ID, tag)
	var last []float64
	ok := false
	for {
		data, got := box.tryPop()
		if !got {
			break
		}
		r.rm.IncReceived()
		last, ok = data, true
	}
	return last, ok
}

// internal tags reserved by collectives; user tags must be >= 0.
const (
	tagReduce = -1
	tagBcast  = -2
)

// Allreduce sums each rank's contribution and returns the global sum on
// every rank. Implemented as a gather to rank 0 plus broadcast; the
// call is collective and synchronizing.
func (r *Rank) Allreduce(v float64) float64 {
	if r.ID == 0 {
		sum := v
		for src := 1; src < r.Size; src++ {
			m := r.Recv(src, tagReduce)
			sum += m[0]
		}
		for dst := 1; dst < r.Size; dst++ {
			r.Isend(dst, tagBcast, []float64{sum})
		}
		return sum
	}
	r.Isend(0, tagReduce, []float64{v})
	return r.Recv(0, tagBcast)[0]
}

// Barrier synchronizes all ranks (an Allreduce of zero).
func (r *Rank) Barrier() { r.Allreduce(0) }

// Win is a remote-access memory window: one shared atomic array per
// rank, allocated collectively. Writers use Put; the owner reads its
// own window with Local().Load.
type Win struct {
	id      int
	bufs    []shm.AtomicVector // per rank
	world   *World
	claimed []bool // which ranks have claimed this window slot
}

// WinAllocate collectively creates a window of n float64 slots on every
// rank. All ranks must call it the same number of times in the same
// order (as with MPI_Win_allocate); each rank passes its own size.
func (r *Rank) WinAllocate(n int) *Win {
	// First arrival allocates the window slot; everyone synchronizes
	// through a barrier so the window is ready on return.
	w := r.world
	w.winMu.Lock()
	// Windows are identified by allocation order. Count how many this
	// rank has seen via a per-rank counter stored in the window list
	// itself: the k-th call returns wins[k].
	var win *Win
	for _, cand := range w.wins {
		if cand.claimed[r.ID] {
			continue
		}
		win = cand
		break
	}
	if win == nil {
		win = &Win{id: len(w.wins), bufs: make([]shm.AtomicVector, w.size), world: w,
			claimed: make([]bool, w.size)}
		w.wins = append(w.wins, win)
	}
	win.claimed[r.ID] = true
	win.bufs[r.ID] = shm.NewAtomicVector(n)
	w.winMu.Unlock()
	r.Barrier()
	return win
}

// Put writes data into target's window starting at offset. Each
// float64 element is stored atomically; the message as a whole is not
// atomic (MPI_Put semantics, sufficient for row-independent Jacobi).
func (win *Win) Put(target, offset int, data []float64) {
	buf := win.bufs[target]
	for i, v := range data {
		buf.Store(offset+i, v)
	}
}

// Local returns the caller-rank's window buffer for direct reading.
func (win *Win) Local(rank int) shm.AtomicVector { return win.bufs[rank] }

// LockAll and UnlockAll exist for fidelity with the paper's
// MPI_Win_lock_all/unlock_all passive-target epoch; Go's atomic stores
// need no epoch, so they are no-ops.
func (win *Win) LockAll()   {}
func (win *Win) UnlockAll() {}
