// Package dist is the distributed-memory substrate (Section VI of the
// paper): an MPI-like communication layer whose default backend runs
// ranks as goroutines, and whose TCP backend
// (internal/dist/tcptransport) runs the same rank loop across OS
// processes. See transport.go for the Comm interface both implement.
//
// Two communication styles are provided, matching the paper's two
// implementations:
//
//   - Point-to-point: non-blocking Isend and blocking Recv over
//     per-(source, destination, tag) mailboxes. The synchronous solver
//     exchanges ghost values this way, just as the paper uses
//     MPI_Isend/MPI_Recv. User-tag mailboxes are bounded (evict-
//     oldest, DefaultMailboxCap): a slow rank no longer accumulates
//     every ghost update ever sent to it, because readers drain to the
//     newest anyway.
//
//   - Remote memory access (RMA): each rank collectively allocates a
//     window (WinAllocate); neighbors write into disjoint subarrays of
//     the target's window with Put. Puts are atomic per float64 element
//     but not per message — exactly the semantics the paper gets from
//     MPI_Put under passive-target locking, and exactly what
//     asynchronous Jacobi needs, since a row's information needs are
//     independent of other rows. LockAll/UnlockAll are provided for API
//     fidelity; the Go memory model makes them no-ops.
//
// A small Allreduce collective (sum) supports the synchronous solver's
// global residual norm; AllreduceTimeout/BarrierTimeout are the
// deadline-and-liveness-aware versions that degrade on crashed ranks
// instead of blocking forever.
package dist

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/shm"
)

// World owns the shared state of a rank group.
type World struct {
	size    int
	boxes   sync.Map // mailKey -> *Mailbox
	wins    []*Win
	winMu   sync.Mutex
	metrics *obs.SolverMetrics
}

type mailKey struct {
	src, dst, tag int
}

// Rank is one process's handle into the world.
type Rank struct {
	ID    int
	Size  int
	world *World
	rm    *obs.RankMetrics // nil unless the world is observed
}

// RankID returns this rank's id (Comm).
func (r *Rank) RankID() int { return r.ID }

// WorldSize returns the rank count (Comm).
func (r *Rank) WorldSize() int { return r.Size }

// Run spawns fn on p rank goroutines and blocks until all return.
func Run(p int, fn func(*Rank)) { RunObserved(p, nil, fn) }

// RunObserved is Run with message-level instrumentation: every Isend,
// Recv, and successful TryRecv is counted per rank on m. A nil m makes
// it identical to Run.
func RunObserved(p int, m *obs.SolverMetrics, fn func(*Rank)) {
	if p <= 0 {
		panic("dist: world size must be positive")
	}
	w := &World{size: p, metrics: m}
	var wg sync.WaitGroup
	wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer wg.Done()
			fn(&Rank{ID: id, Size: p, world: w, rm: m.Rank(id)})
		}(id)
	}
	wg.Wait()
}

func (w *World) box(src, dst, tag int) *Mailbox {
	key := mailKey{src, dst, tag}
	if b, ok := w.boxes.Load(key); ok {
		return b.(*Mailbox)
	}
	// User tags are ghost traffic: bounded, evict-oldest (readers
	// drain to newest, so dropping the oldest loses nothing the reader
	// would have kept). Internal tags carry collectives and
	// termination protocol messages whose loss would be a protocol
	// violation; their depth is bounded by the protocols themselves.
	capacity := 0
	if tag >= 0 {
		capacity = DefaultMailboxCap
	}
	b, _ := w.boxes.LoadOrStore(key, NewMailbox(capacity, w.metrics.TransportEvict))
	return b.(*Mailbox)
}

// Isend posts data to rank `to` with the given tag and returns
// immediately (the data slice is copied, so the caller may reuse its
// buffer — the completion semantics of a buffered MPI_Isend).
func (r *Rank) Isend(to, tag int, data []float64) {
	if to < 0 || to >= r.Size {
		panic(fmt.Sprintf("dist: Isend to invalid rank %d", to))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	r.rm.IncSent()
	r.world.box(r.ID, to, tag).Push(cp)
}

// Recv blocks until a message from rank `from` with the given tag
// arrives, and returns its payload.
func (r *Rank) Recv(from, tag int) []float64 {
	if from < 0 || from >= r.Size {
		panic(fmt.Sprintf("dist: Recv from invalid rank %d", from))
	}
	data := r.world.box(from, r.ID, tag).Pop()
	r.rm.IncReceived()
	return data
}

// RecvTimeout is Recv with a deadline: it returns ErrTimeout instead
// of blocking forever on a sender that will never send. d <= 0
// selects DefaultOpTimeout.
func (r *Rank) RecvTimeout(from, tag int, d time.Duration) ([]float64, error) {
	if from < 0 || from >= r.Size {
		panic(fmt.Sprintf("dist: Recv from invalid rank %d", from))
	}
	data, err := r.world.box(from, r.ID, tag).PopTimeout(d)
	if err != nil {
		r.world.metrics.TransportTimeout()
		return nil, err
	}
	r.rm.IncReceived()
	return data, nil
}

// TryRecv is a non-blocking receive (MPI_Iprobe+Recv): it returns the
// newest pending message from `from`, discarding older ones, or
// ok=false when none is pending. Asynchronous racy schemes use it to
// drain ghost updates without waiting.
func (r *Rank) TryRecv(from, tag int) ([]float64, bool) {
	box := r.world.box(from, r.ID, tag)
	var last []float64
	ok := false
	for {
		data, got := box.TryPop()
		if !got {
			break
		}
		r.rm.IncReceived()
		last, ok = data, true
	}
	return last, ok
}

// internal tags reserved by collectives and the multi-process solve
// protocol; user tags must be >= 0.
const (
	tagReduce = -1
	tagBcast  = -2
	// tagToken, tagHalt (-3, -4) live in termination.go.
	tagGather = -5
	tagDecide = -6
	// collect.Tag (-7) is the end-of-run telemetry collection channel.
)

// Allreduce sums each rank's contribution and returns the global sum on
// every rank. Implemented as a gather to rank 0 plus broadcast; the
// call is collective and synchronizing.
func (r *Rank) Allreduce(v float64) float64 {
	if r.ID == 0 {
		sum := v
		for src := 1; src < r.Size; src++ {
			m := r.Recv(src, tagReduce)
			sum += m[0]
		}
		for dst := 1; dst < r.Size; dst++ {
			r.Isend(dst, tagBcast, []float64{sum})
		}
		return sum
	}
	r.Isend(0, tagReduce, []float64{v})
	return r.Recv(0, tagBcast)[0]
}

// AllreduceTimeout is Allreduce with a deadline and a liveness view:
// dead ranks' contributions are skipped (their block is frozen at its
// final iterate), and the call returns ErrTimeout/ErrPeerDead instead
// of blocking forever on a crashed peer. All live ranks must call it
// collectively, with an agreeing dead view, or the tag streams
// desynchronize (same contract as any MPI collective).
func (r *Rank) AllreduceTimeout(v float64, timeout time.Duration, dead func(int) bool) (float64, error) {
	if timeout <= 0 {
		timeout = DefaultOpTimeout
	}
	deadline := time.Now().Add(timeout)
	if r.ID == 0 {
		sum := v
		for src := 1; src < r.Size; src++ {
			if dead != nil && dead(src) {
				continue
			}
			m, err := r.RecvTimeout(src, tagReduce, time.Until(deadline))
			if err != nil {
				if dead != nil && dead(src) {
					// The peer died mid-collective; its share is
					// whatever the survivors last saw.
					continue
				}
				return 0, fmt.Errorf("allreduce gather from rank %d: %w", src, err)
			}
			sum += m[0]
		}
		for dst := 1; dst < r.Size; dst++ {
			if dead != nil && dead(dst) {
				continue
			}
			r.Isend(dst, tagBcast, []float64{sum})
		}
		return sum, nil
	}
	if dead != nil && dead(0) {
		return 0, fmt.Errorf("allreduce root: %w", ErrPeerDead)
	}
	r.Isend(0, tagReduce, []float64{v})
	m, err := r.RecvTimeout(0, tagBcast, time.Until(deadline))
	if err != nil {
		if dead != nil && dead(0) {
			return 0, fmt.Errorf("allreduce root: %w", ErrPeerDead)
		}
		return 0, fmt.Errorf("allreduce broadcast: %w", err)
	}
	return m[0], nil
}

// Barrier synchronizes all ranks (an Allreduce of zero).
func (r *Rank) Barrier() { r.Allreduce(0) }

// BarrierTimeout is Barrier with deadline/liveness semantics; see
// AllreduceTimeout.
func (r *Rank) BarrierTimeout(timeout time.Duration, dead func(int) bool) error {
	_, err := r.AllreduceTimeout(0, timeout, dead)
	return err
}

// Win is a remote-access memory window: one shared atomic array per
// rank, allocated collectively. Writers use Put; the owner reads its
// own window with Local().Load.
type Win struct {
	id      int
	bufs    []shm.AtomicVector // per rank
	world   *World
	claimed []bool // which ranks have claimed this window slot
}

// WinAllocate collectively creates a window of n float64 slots on every
// rank. All ranks must call it the same number of times in the same
// order (as with MPI_Win_allocate); each rank passes its own size.
func (r *Rank) WinAllocate(n int) *Win {
	// First arrival allocates the window slot; everyone synchronizes
	// through a barrier so the window is ready on return.
	w := r.world
	w.winMu.Lock()
	// Windows are identified by allocation order. Count how many this
	// rank has seen via a per-rank counter stored in the window list
	// itself: the k-th call returns wins[k].
	var win *Win
	for _, cand := range w.wins {
		if cand.claimed[r.ID] {
			continue
		}
		win = cand
		break
	}
	if win == nil {
		win = &Win{id: len(w.wins), bufs: make([]shm.AtomicVector, w.size), world: w,
			claimed: make([]bool, w.size)}
		w.wins = append(w.wins, win)
	}
	win.claimed[r.ID] = true
	win.bufs[r.ID] = shm.NewAtomicVector(n)
	w.winMu.Unlock()
	r.Barrier()
	return win
}

// AllocWindow is the Comm-interface window allocation: WinAllocate
// wrapped with this rank's local view.
func (r *Rank) AllocWindow(n int) Window {
	return &memWindow{win: r.WinAllocate(n), rank: r.ID}
}

// memWindow adapts *Win to the backend-neutral Window interface.
type memWindow struct {
	win  *Win
	rank int
}

func (w *memWindow) Put(target, offset int, data []float64) { w.win.Put(target, offset, data) }
func (w *memWindow) Local() shm.AtomicVector                { return w.win.bufs[w.rank] }

// Put writes data into target's window starting at offset. Each
// float64 element is stored atomically; the message as a whole is not
// atomic (MPI_Put semantics, sufficient for row-independent Jacobi).
func (win *Win) Put(target, offset int, data []float64) {
	buf := win.bufs[target]
	for i, v := range data {
		buf.Store(offset+i, v)
	}
}

// Local returns the caller-rank's window buffer for direct reading.
func (win *Win) Local(rank int) shm.AtomicVector { return win.bufs[rank] }

// LockAll and UnlockAll exist for fidelity with the paper's
// MPI_Win_lock_all/unlock_all passive-target epoch; Go's atomic stores
// need no epoch, so they are no-ops.
func (win *Win) LockAll()   {}
func (win *Win) UnlockAll() {}
