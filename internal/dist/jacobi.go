package dist

import (
	"context"
	"math"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/proflabel"
	"repro/internal/resilience"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/vec"
)

// distLabels caches the pprof label contexts the rank goroutines run
// under, shared across every solve in the process.
var distLabels = proflabel.NewCache("dist")

// SolveOptions configure a distributed Jacobi solve.
type SolveOptions struct {
	// Procs is the number of ranks.
	Procs int
	// Part assigns rows to ranks; nil means contiguous blocks.
	Part *partition.Partition
	// MaxIters is each rank's local iteration budget.
	MaxIters int
	// Tol, when positive, enables residual-based termination. For the
	// synchronous solver this is an exact Allreduce of the global
	// relative residual 1-norm each iteration. For the asynchronous
	// solver the paper uses naive fixed-iteration termination; when Tol
	// is set we use a shared flag array (the shared-memory scheme of
	// Section V carried over), which the paper leaves as future work.
	Tol float64
	// Async selects RMA-window communication and no barriers; false
	// selects point-to-point synchronous Jacobi.
	Async bool
	// Eager selects the semi-synchronous scheme of Jager and Bradley
	// discussed in Section III: an asynchronous process relaxes its
	// rows only when it has received new ghost information since its
	// last relaxation, avoiding "wasted" self-only updates. Implies
	// point-to-point communication with non-blocking receives instead
	// of RMA windows. Requires Async.
	Eager bool
	// Termination selects the asynchronous termination scheme when Tol
	// is positive: FlagTree (default) or DijkstraSafra. With Tol == 0
	// the paper's FixedIterations scheme always applies.
	Termination TerminationMode
	// DelayRank, when >= 0, makes that rank sleep Delay each iteration.
	DelayRank int
	Delay     time.Duration
	// Fault, when non-nil and enabled, injects adversity at the
	// communication points of the asynchronous solver: per-link message
	// drop/duplication/reordering, heavy-tailed per-rank iteration
	// delays, a one-shot stall, and rank crashes with optional restart
	// from the current iterate. Crashed ranks mark themselves dead on
	// the termination board, and a deadline wrapper degrades both the
	// flag-tree and Dijkstra-Safra schemes to the surviving active
	// block instead of hanging the run. Ignored by the synchronous
	// solver (dropping a message a blocking Recv is waiting on would
	// deadlock, not degrade). See internal/fault.
	Fault *fault.Plan
	// RecordHistory samples each rank's local residual 1-norm per local
	// iteration; Result.History then carries the approximate global
	// relative residual per (minimum) iteration count, assembled from
	// the per-rank samples. This is what a production asynchronous
	// solver could log without extra synchronization.
	RecordHistory bool
	// Metrics, when non-nil, streams live observability data: per-rank
	// relaxations and messages/window-puts, a ghost-read staleness
	// histogram (how many neighbor iterations each refresh skipped — the
	// live counterpart of the paper's Fig 2 propagation statistic),
	// per-rank local residual gauges, and termination-protocol
	// transitions. A nil handle costs a nil check per iteration.
	Metrics *obs.SolverMetrics
	// Tracer, when non-nil, records timestamped execution events into
	// per-rank ring buffers: iteration start/end, message sends and RMA
	// puts with iteration stamps, ghost arrivals with the stamp they
	// carried (which is what lets the Chrome exporter draw send→receive
	// flow arrows), injected delays and faults, termination-flag
	// transitions, and Safra token traffic. Nil costs one pointer test
	// per site.
	Tracer *trace.Recorder
	// Ctx, when non-nil, cancels the solve cooperatively: asynchronous
	// ranks poll it once per local iteration; synchronous ranks vote on
	// it in an extra Allreduce per iteration (lockstep ranks must stop
	// at the same iteration or a blocking Recv deadlocks).
	Ctx context.Context
	// MaxTime, when positive, bounds wall-clock time; past it the solve
	// stops like a cancellation with StopReason deadline.
	MaxTime time.Duration
	// Checkpoint, when non-nil with a Path, snapshots the gathered
	// iterate, cumulative per-rank iteration counts, and the fault RNG
	// streams at pass boundaries (on the spec's interval) and once more
	// at exit, atomically. Dist checkpoints are pass-grained, not
	// iteration-grained: the gather that a snapshot needs already
	// happens at each recheck-and-resume boundary.
	Checkpoint *resilience.Spec
	// Resume, when non-nil, continues a checkpointed solve: the caller
	// passes the checkpoint's X as x0, while Resume restores the fault
	// injectors' RNG streams and crash latches (a crash already spent
	// does not replay), seeds the cumulative iteration counts, and
	// offsets Elapsed. MaxIters is this run's fresh budget.
	Resume *resilience.Checkpoint
	// Retry bounds the eager scheme's loss-recovery retransmissions:
	// an idle rank retransmits its boundary values with exponential
	// backoff until the policy is exhausted, after which the link is
	// given up as dead. Nil selects DefaultRetryPolicy.
	Retry *resilience.RetryPolicy
}

// Result reports a distributed solve.
type Result struct {
	X                []float64
	Iterations       []int // per-rank local iterations (summed over resume passes)
	TotalRelaxations int
	RelRes           float64 // exact, recomputed after the run
	Converged        bool
	WallTime         time.Duration
	// Resumes counts recheck-and-resume passes: times the asynchronous
	// termination detection latched on stale ghost data while the exact
	// residual was still above tolerance, and the solve continued from
	// the current iterate with the remaining budget.
	Resumes int
	// History[k] approximates the global relative residual 1-norm when
	// every participating rank had completed k+1 local iterations (sum
	// of per-rank local norms sampled at that iteration). Filled when
	// SolveOptions.RecordHistory is set; its length is the minimum
	// iteration count across ranks that completed at least one
	// iteration (a rank crashed before its first iteration does not
	// zero out the whole history).
	History []float64
	// StopReason states why the solve returned: converged, deadline,
	// canceled, max-iter, or crashed.
	StopReason resilience.StopReason
	// Elapsed is this run's wall-clock time plus, on a resumed solve,
	// the checkpointed time of the run(s) before it.
	Elapsed time.Duration
	// CheckpointErr reports a failure of the final at-exit checkpoint
	// write (pass-boundary write failures only bump the
	// checkpoint_error counter).
	CheckpointErr error
}

// ghostPlan is one rank's communication plan, derived from the
// partition and sparsity (Section VI: neighbors are found "by
// inspecting the nonzero values of the matrix rows").
type ghostPlan struct {
	rows []int // owned global rows
	// neighbors in deterministic order
	recvFrom []int         // neighbor ranks we receive ghosts from
	recvIdx  map[int][]int // global indices received from each neighbor
	sendTo   []int         // neighbor ranks we send boundary values to
	sendIdx  map[int][]int // owned global indices sent to each neighbor
	// local indexing: own rows first, then ghosts grouped by neighbor
	// in recvFrom order.
	localOf map[int]int // global index -> local slot
	nLocal  int         // total local slots (own + ghosts)
	// window layout for async: ghost slot offset of each recv neighbor.
	// The window holds ghostLen data slots followed by one iteration
	// stamp slot per recv neighbor (stampOff): senders Put their local
	// iteration count alongside the data, which is what lets a receiver
	// measure ghost-read staleness without any extra synchronization.
	winOff   map[int]int
	stampOff map[int]int
	ghostLen int // data slots
	winLen   int // data + stamp slots
}

func buildPlans(a *sparse.CSR, part *partition.Partition) []*ghostPlan {
	subs := partition.BuildSubdomains(a, part)
	plans := make([]*ghostPlan, part.P)
	for p, sub := range subs {
		gp := &ghostPlan{
			rows:     sub.Rows,
			recvIdx:  map[int][]int{},
			sendIdx:  map[int][]int{},
			localOf:  map[int]int{},
			winOff:   map[int]int{},
			stampOff: map[int]int{},
		}
		for q := range sub.Recv {
			gp.recvFrom = append(gp.recvFrom, q)
		}
		sort.Ints(gp.recvFrom)
		for q := range sub.Send {
			gp.sendTo = append(gp.sendTo, q)
		}
		sort.Ints(gp.sendTo)
		for _, q := range gp.recvFrom {
			gp.recvIdx[q] = sub.Recv[q]
		}
		for _, q := range gp.sendTo {
			gp.sendIdx[q] = sub.Send[q]
		}
		slot := 0
		for _, i := range sub.Rows {
			gp.localOf[i] = slot
			slot++
		}
		off := 0
		for _, q := range gp.recvFrom {
			gp.winOff[q] = off
			for _, j := range gp.recvIdx[q] {
				gp.localOf[j] = slot
				slot++
				off++
			}
		}
		gp.nLocal = slot
		gp.ghostLen = off
		for qi, q := range gp.recvFrom {
			gp.stampOff[q] = off + qi
		}
		gp.winLen = off + len(gp.recvFrom)
		plans[p] = gp
	}
	return plans
}

// Solve runs distributed Jacobi. The returned X is gathered from all
// ranks; RelRes is recomputed exactly from X.
//
// For the asynchronous solver with a positive tolerance, Solve runs a
// recheck-and-resume loop: the flag-tree and Safra detectors test each
// rank's *local* residual share, which is computed against possibly
// stale ghost values, so a detection can latch while the exact global
// residual is still above tolerance. After each pass Solve recomputes
// the residual exactly; if it is above Tol and iteration budget
// remains, the solve resumes from the current iterate. Converged=true
// is therefore never reported with an exact RelRes > Tol, and an early
// latch costs a resume pass rather than a failed run.
func Solve(a *sparse.CSR, b, x0 []float64, opt SolveOptions) *Result {
	n := a.N
	if len(b) != n || len(x0) != n {
		panic("dist: dimension mismatch")
	}
	if opt.Procs <= 0 || opt.MaxIters <= 0 {
		panic("dist: Procs and MaxIters must be positive")
	}
	if err := opt.Fault.Validate(opt.Procs); err != nil {
		panic("dist: " + err.Error())
	}
	part := opt.Part
	if part == nil {
		part = partition.Contiguous(n, opt.Procs)
	}
	if part.P != opt.Procs {
		panic("dist: partition part count != Procs")
	}
	t0 := time.Now()
	plans := buildPlans(a, part)

	nb := vec.Norm1(b)
	if nb == 0 {
		nb = 1
	}

	// Injectors persist across resume passes so a fail-stop crash stays
	// fatal for the whole solve, not just the pass it fired in.
	injs := opt.Fault.Injectors(opt.Procs)

	res := &Result{
		Iterations: make([]int, opt.Procs),
		X:          append([]float64(nil), x0...),
	}
	var elapsed0 time.Duration
	if opt.Resume != nil {
		if err := opt.Resume.ValidateFor(n); err != nil {
			panic("dist: " + err.Error())
		}
		if err := fault.RestoreStates(injs, opt.Resume.FaultStates); err != nil {
			panic("dist: " + err.Error())
		}
		if len(opt.Resume.Iters) == opt.Procs {
			// Iteration counts stay cumulative across restarts, so the
			// next checkpoint's Iters describe the whole solve.
			for p := range res.Iterations {
				res.Iterations[p] = int(opt.Resume.Iters[p])
			}
		}
		elapsed0 = opt.Resume.Elapsed
		opt.Metrics.RecoveryCheckpointLoad()
		opt.Metrics.RecoveryResume()
	}
	stopper := resilience.NewStopper(opt.Ctx, opt.MaxTime)
	writer := resilience.NewWriter(opt.Checkpoint, opt.Metrics)
	ckpt := func() *resilience.Checkpoint {
		c := &resilience.Checkpoint{
			Substrate: "dist",
			N:         n,
			X:         append([]float64(nil), res.X...),
			Iters:     make([]int64, opt.Procs),
			Elapsed:   elapsed0 + time.Since(t0),
		}
		for p, it := range res.Iterations {
			c.Iters[p] = int64(it)
			if it > c.Sweeps {
				c.Sweeps = it
			}
		}
		c.FaultStates = fault.States(injs)
		return c
	}
	budget := opt.MaxIters
	rr := make([]float64, n)
	relres := func() float64 {
		a.Residual(rr, b, res.X)
		return vec.Norm1(rr) / nb
	}
	prev := math.Inf(1)
	for {
		pass := solvePass(a, b, res.X, opt, plans, injs, budget, nb, stopper)
		res.X = pass.x
		maxIter := 0
		for p := 0; p < opt.Procs; p++ {
			res.Iterations[p] += pass.iters[p]
			res.TotalRelaxations += pass.iters[p] * len(plans[p].rows)
			if pass.iters[p] > maxIter {
				maxIter = pass.iters[p]
			}
		}
		res.History = append(res.History, pass.history...)
		res.RelRes = relres()
		// Pass boundaries are dist's checkpoint grain: the iterate was
		// just gathered, so a snapshot costs only the write.
		_, _ = writer.MaybeWrite(ckpt)
		if stopper.Stopped() {
			break
		}
		if !opt.Async || opt.Tol <= 0 || res.RelRes <= opt.Tol {
			break
		}
		budget -= maxIter
		if budget <= 0 || maxIter == 0 {
			// Budget exhausted, or no rank can make progress (all
			// crashed): report the degraded result honestly.
			break
		}
		if res.RelRes > 0.999*prev {
			// No meaningful progress over the previous pass — a dead
			// rank's frozen block pins the residual; further passes
			// would only burn the budget in thousand-iteration slices.
			break
		}
		prev = res.RelRes
		// Early latch on stale ghosts: resume from the current iterate.
		res.Resumes++
		opt.Metrics.TermResume()
	}

	if opt.Tracer != nil {
		// The trace substrate is itself observable: per-rank capture,
		// wraparound-drop, coalescing, and sampling totals flow into the
		// metrics registry (aj_trace_*).
		for p := 0; p < opt.Procs; p++ {
			st := opt.Tracer.Worker(p).Stats()
			opt.Metrics.TraceCaptured(p, obs.TraceCapture{
				Events: st.Retained, Dropped: st.Dropped,
				Coalesced: st.Coalesced, SampledOut: st.SampledOut,
				Bytes: st.Bytes, EventsPerSec: st.EventsPerSec(),
			})
		}
	}

	res.WallTime = time.Since(t0)
	res.Converged = opt.Tol > 0 && res.RelRes <= opt.Tol
	opt.Metrics.SetResidual(res.RelRes)
	opt.Metrics.SetConverged(res.Converged)
	if writer != nil {
		// Final at-exit checkpoint: the restart point a later Resume
		// continues from, so its failure is a first-class result field.
		res.CheckpointErr = writer.Write(ckpt())
		maxIter := 0
		for _, it := range res.Iterations {
			if it > maxIter {
				maxIter = it
			}
		}
		opt.Tracer.Worker(0).Checkpoint(maxIter)
	}
	crashed := false
	for _, in := range injs {
		if in.Dead() {
			crashed = true
		}
	}
	res.StopReason = resilience.Resolve(res.Converged, stopper, crashed)
	switch res.StopReason {
	case resilience.StopDeadline:
		opt.Metrics.RecoveryDeadline()
	case resilience.StopCanceled:
		opt.Metrics.RecoveryCancel()
	}
	res.Elapsed = elapsed0 + res.WallTime
	return res
}

// passResult is one solvePass outcome: the gathered iterate, per-rank
// iteration counts, and the assembled history samples of this pass.
type passResult struct {
	x       []float64
	iters   []int
	history []float64
}

// solvePass executes one full parallel solve attempt from x0 with the
// given per-rank iteration budget. The caller owns the resume loop.
func solvePass(a *sparse.CSR, b, x0 []float64, opt SolveOptions, plans []*ghostPlan,
	injs []*fault.Injector, budget int, nb float64, stopper *resilience.Stopper) passResult {
	n := a.N
	opt.MaxIters = budget

	// Dead or crashed ranks may never write their block, so the gather
	// target starts from the pass's initial iterate rather than zeros.
	finalX := append([]float64(nil), x0...)
	var finalMu sync.Mutex
	iters := make([]int, opt.Procs)
	localHist := make([][]float64, opt.Procs)
	board := newFlagBoard(opt.Procs, opt.Metrics) // async termination extension
	var safraDecided atomic.Bool
	opt.Metrics.SetWorkers(opt.Procs)

	RunObserved(opt.Procs, opt.Metrics, func(r *Rank) {
		// pprof labels: CPU samples on each rank goroutine attribute to
		// solver/worker/phase so a -profile-out capture separates relax
		// from ghost publishing and idle/termination waiting. The label
		// contexts come from a process-wide cache — building them is a
		// dozen allocations per rank, which used to dominate repeated
		// small solves' allocation profiles.
		lbl := distLabels.For(r.ID)
		phaseRelax := lbl.Relax
		phasePublish := lbl.Publish
		phaseWait := lbl.Wait
		pprof.SetGoroutineLabels(phaseRelax)
		defer pprof.SetGoroutineLabels(context.Background())
		rm := opt.Metrics.Rank(r.ID)
		tw := opt.Tracer.Worker(r.ID)
		gp := plans[r.ID]
		nown := len(gp.rows)
		var inj *fault.Injector
		if injs != nil {
			inj = injs[r.ID]
		}
		// Fault injection applies to the asynchronous solver only: the
		// synchronous scheme's blocking receives and collectives would
		// deadlock on a lost message rather than degrade.
		faultsOn := opt.Async && inj != nil
		// Local state: own values then ghosts.
		xl := make([]float64, gp.nLocal)
		for s, i := range gp.rows {
			xl[s] = x0[i]
		}
		for _, q := range gp.recvFrom {
			for _, j := range gp.recvIdx[q] {
				xl[gp.localOf[j]] = x0[j]
			}
		}
		rl := make([]float64, nown)
		// curNorm tracks |rl|_1, accumulated inside the relaxation loop
		// of the most recent local iteration: the convergence predicate,
		// the history point, the metrics gauge, and the synchronous
		// Allreduce all reuse it instead of each rescanning rl (up to
		// four O(nLocal) passes per iteration before).
		curNorm := 0.0

		// Local CSR with remapped columns for cache-friendly SpMV.
		lrp := make([]int, nown+1)
		var lcol []int
		var lval []float64
		for s, i := range gp.rows {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				lcol = append(lcol, gp.localOf[a.Col[k]])
				lval = append(lval, a.Val[k])
			}
			lrp[s+1] = len(lcol)
		}

		eager := opt.Async && opt.Eager
		var win *Win
		if opt.Async && !eager {
			win = r.WinAllocate(gp.winLen)
			win.LockAll()
			defer win.UnlockAll()
			// Seed our own ghost slots with the pass's starting iterate:
			// the window is allocated zeroed on every pass, and the loop
			// top refreshes ghosts from it unconditionally, so without
			// the seed a resume pass would overwrite converged ghost
			// values with zeros — destroying exactly the progress the
			// resume loop exists to preserve. A neighbor racing ahead of
			// the seed only reinstates values one Put older; asynchronous
			// Jacobi tolerates that by construction.
			wbuf := win.Local(r.ID)
			for s := 0; s < gp.ghostLen; s++ {
				wbuf.Store(s, xl[nown+s])
			}
		}
		// A rank that fail-stopped in an earlier pass stays down; it
		// still took part in the collective window allocation above so
		// the survivors' setup barrier completes.
		if faultsOn && inj.Dead() {
			board.markDead(r.ID)
			return
		}

		sendBufs := map[int][]float64{}
		for _, q := range gp.sendTo {
			buflen := len(gp.sendIdx[q])
			if eager {
				buflen++ // room for the iteration stamp
			}
			sendBufs[q] = make([]float64, buflen)
		}
		// Reordered point-to-point messages are held back here until
		// the next send on the same link overtakes them.
		var held map[int][]float64
		if faultsOn {
			held = map[int][]float64{}
		}
		// Async: precompute (targetRank, targetOffset) of our boundary
		// values inside each neighbor's window, plus the slot where our
		// iteration stamp goes.
		putOff := map[int]int{}
		stampPutOff := map[int]int{}
		if opt.Async {
			for _, q := range gp.sendTo {
				// Our values land in q's window at q's offset for
				// neighbor r.ID, which q computed as winOff[r.ID].
				putOff[q] = plans[q].winOff[r.ID]
				stampPutOff[q] = plans[q].stampOff[r.ID]
			}
		}
		// lastStamp[qi] is the newest iteration stamp seen from
		// gp.recvFrom[qi]; the gap between consecutive stamps minus one
		// is how many of that neighbor's updates this rank never saw.
		// Both the staleness histogram and the tracer's ghost-arrival
		// events key on it.
		var lastStamp []int64
		if rm != nil || tw != nil {
			lastStamp = make([]int64, len(gp.recvFrom))
		}
		stampBuf := make([]float64, 1)

		iter := 0
		idle := 0
		// Loss-recovery retransmission budget for the eager scheme:
		// bounded retry with exponential backoff, reset whenever fresh
		// ghost data arrives. Exhaustion gives the links up as dead
		// rather than retransmitting forever.
		retry := resilience.DefaultRetryPolicy()
		if opt.Retry != nil {
			retry = *opt.Retry
		}
		attempt := 0
		var nextRetry time.Time
		var safra *safraState
		if opt.Async && opt.Tol > 0 && opt.Termination == DijkstraSafra {
			safra = newSafra(r, &safraDecided, opt.Metrics, tw)
		}
		// Termination-degradation deadline: once a crash is visible on
		// the board, a locally-converged rank waits at most this long
		// for the regular protocol before deciding over the surviving
		// active block (Safra's token may be parked forever in a dead
		// rank's mailbox; the flag board skips dead ranks by itself).
		termDeadline := opt.Fault.TermDeadline()
		var deadSeen time.Time
		pollTerm := func(localConv bool) bool {
			if safra == nil {
				if board.set(r.ID, localConv) {
					tw.Flag(localConv, iter)
				}
				return board.check()
			}
			stop := safra.poll(r, localConv)
			if !stop && faultsOn && board.anyDead() {
				if deadSeen.IsZero() {
					deadSeen = time.Now()
				}
				if board.set(r.ID, localConv) {
					tw.Flag(localConv, iter)
				}
				if time.Since(deadSeen) > termDeadline && board.check() {
					if safraDecided.CompareAndSwap(false, true) {
						opt.Metrics.FaultTermTimeout()
						opt.Metrics.TermDecided()
						tw.TermTimeout(iter)
					}
					stop = true
				}
			}
			return stop
		}
		for {
			// Cancellation / deadline: an asynchronous rank just leaves;
			// the flag board and the other ranks' own stopper polls keep
			// termination live without it. (Synchronous ranks instead
			// vote below, in lockstep.)
			if opt.Async && stopper.Check() != resilience.StopNone {
				break
			}
			if faultsOn {
				if inj.CrashNow(iter) {
					opt.Metrics.FaultCrash()
					tw.Crash(iter)
					after, restart := inj.Restart()
					if !restart {
						board.markDead(r.ID)
						break
					}
					// Restart-from-current-x: the rank rejoins after the
					// outage with the iterate its window and local state
					// already hold.
					time.Sleep(after)
					opt.Metrics.FaultRestart()
					tw.Restart(iter)
				}
				if d := inj.StallFor(iter); d > 0 {
					opt.Metrics.FaultStall()
					tw.Stall(iter)
					time.Sleep(d)
				}
				if d := inj.IterDelay(); d > 0 {
					opt.Metrics.FaultDelay()
					tw.Delay(iter + 1)
					time.Sleep(d)
				}
			}
			if opt.DelayRank == r.ID && opt.Delay > 0 {
				rm.IncDelay()
				tw.Delay(iter + 1)
				time.Sleep(opt.Delay)
			}
			gotNew := iter == 0 || len(gp.recvFrom) == 0
			if opt.Async && win != nil {
				// Refresh ghosts from the local window (neighbors Put
				// whenever they finish an iteration).
				wbuf := win.Local(r.ID)
				base := nown
				for s := 0; s < gp.ghostLen; s++ {
					xl[base+s] = wbuf.Load(s)
				}
				if lastStamp != nil {
					// Ghost-read staleness: each neighbor stamps its
					// Puts with its iteration count; the jump between
					// consecutive stamps counts the updates this rank
					// skipped over.
					for qi, q := range gp.recvFrom {
						stamp := int64(wbuf.Load(gp.ghostLen + qi))
						if stamp > lastStamp[qi] {
							rm.ObserveStaleness(int(stamp - lastStamp[qi] - 1))
							tw.Recv(q, int(stamp))
							lastStamp[qi] = stamp
						}
					}
				}
			}
			if eager {
				// Drain pending ghost messages; remember whether any
				// neighbor supplied fresh information.
				for qi, q := range gp.recvFrom {
					if data, ok := r.TryRecv(q, 0); ok {
						for t, j := range gp.recvIdx[q] {
							xl[gp.localOf[j]] = data[t]
						}
						if lastStamp != nil && len(data) > len(gp.recvIdx[q]) {
							stamp := int64(data[len(data)-1])
							if stamp > lastStamp[qi] {
								rm.ObserveStaleness(int(stamp - lastStamp[qi] - 1))
								tw.Recv(q, int(stamp))
								lastStamp[qi] = stamp
							}
						}
						gotNew = true
					}
				}
				if !gotNew && faultsOn && board.anyDead() && len(gp.recvFrom) > 0 {
					// Every neighbor fail-stopped: no fresh ghosts will ever
					// arrive, so iterate on what we have rather than idling
					// against dead links (their blocks are frozen; ours can
					// still improve).
					allDead := true
					for _, q := range gp.recvFrom {
						if !board.isDead(q) {
							allDead = false
							break
						}
					}
					gotNew = allDead
				}
				if !gotNew {
					// Nothing new: poll termination and idle.
					pprof.SetGoroutineLabels(phaseWait)
					if opt.Tol > 0 {
						localConv := iter >= opt.MaxIters ||
							curNorm/nb <= opt.Tol/float64(r.Size)
						if pollTerm(localConv) {
							tw.Decided(iter)
							break
						}
					} else if iter >= opt.MaxIters {
						break
					}
					idle++
					if idle >= 1000*opt.MaxIters {
						break
					}
					if faultsOn && !retry.Exhausted(attempt) && !time.Now().Before(nextRetry) {
						// Liveness under loss: an eager rank iterates only
						// on fresh ghosts, so if the last message on a link
						// is dropped both endpoints idle forever with their
						// flags down. Retransmit the current boundary values
						// (each copy drawing its own fate) with exponential
						// backoff, the way a real at-least-once transport
						// retries — bounded, so a genuinely dead peer stops
						// costing bandwidth once the policy is exhausted.
						nextRetry = time.Now().Add(retry.Backoff(attempt))
						attempt++
						opt.Metrics.RecoveryRetransmit()
						for _, q := range gp.sendTo {
							if board.isDead(q) {
								opt.Metrics.RecoveryExclude()
								continue
							}
							buf := sendBufs[q]
							for t, j := range gp.sendIdx[q] {
								buf[t] = xl[gp.localOf[j]]
							}
							buf[len(buf)-1] = float64(iter)
							if inj.SendFate(q) == fault.Drop {
								opt.Metrics.FaultDrop()
								tw.FaultDrop(q, iter)
								continue
							}
							r.Isend(q, 0, buf)
							tw.Send(q, iter)
							if old, ok := held[q]; ok {
								delete(held, q)
								r.Isend(q, 0, old)
							}
						}
					}
					tw.Yield()
					yield()
					continue
				}
				idle = 0
				if attempt != 0 {
					attempt = 0
					nextRetry = time.Time{}
				}
			}
			pprof.SetGoroutineLabels(phaseRelax)
			// Step 1: local residual. The tracer brackets the whole
			// local iteration (residual + correction) as one slice; the
			// per-read version sampling of the shm tracer has no
			// counterpart here because ghost versions are only known at
			// neighbor granularity (the iteration stamps).
			tw.RelaxStart(-1, iter+1)
			rsum := 0.0
			for s := 0; s < nown; s++ {
				sum := b[gp.rows[s]]
				for k := lrp[s]; k < lrp[s+1]; k++ {
					sum -= lval[k] * xl[lcol[k]]
				}
				rl[s] = sum
				rsum += math.Abs(sum)
			}
			curNorm = rsum
			// Step 2: correct own values.
			for s := 0; s < nown; s++ {
				xl[s] += rl[s]
			}
			iter++
			tw.RelaxEnd(-1, iter)
			if opt.RecordHistory {
				localHist[r.ID] = append(localHist[r.ID], curNorm)
			}
			if rm != nil {
				// Relaxations and the residual share land before the
				// iteration tick so the stream sample published by
				// IncIteration sees current totals.
				rm.AddRelaxations(nown)
				rm.SetLocalResidual(curNorm / nb)
				rm.IncIteration()
			}
			pprof.SetGoroutineLabels(phasePublish)
			// Communicate boundary values. Each message first draws its
			// fate from the fault plan: dropped messages leave the
			// receiver on stale ghosts, duplicates exercise
			// at-least-once delivery, and a reordered point-to-point
			// message is held back until the next send on the same link
			// overtakes it (the receiver then installs the older values
			// last). RMA windows have no inter-message ordering, so
			// Reorder degrades to Deliver there.
			for _, q := range gp.sendTo {
				if faultsOn && board.isDead(q) {
					// Rank exclusion: the failure detector already knows q
					// fail-stopped, so sending to it is pure waste (and, for
					// eager links, would count as a live retransmission).
					opt.Metrics.RecoveryExclude()
					continue
				}
				buf := sendBufs[q]
				for t, j := range gp.sendIdx[q] {
					buf[t] = xl[gp.localOf[j]]
				}
				if eager {
					buf[len(buf)-1] = float64(iter) // iteration stamp
				}
				fate := fault.Deliver
				if faultsOn {
					fate = inj.SendFate(q)
				}
				if fate == fault.Drop {
					opt.Metrics.FaultDrop()
					tw.FaultDrop(q, iter)
					continue
				}
				if opt.Async && !eager {
					win.Put(q, putOff[q], buf)
					stampBuf[0] = float64(iter)
					win.Put(q, stampPutOff[q], stampBuf)
					rm.IncPut()
					rm.IncPut()
					tw.Put(q, iter)
					if fate == fault.Dup {
						win.Put(q, putOff[q], buf)
						win.Put(q, stampPutOff[q], stampBuf)
						opt.Metrics.FaultDup()
						tw.FaultDup(q, iter)
					}
				} else {
					if fate == fault.Reorder {
						held[q] = append([]float64(nil), buf...)
						opt.Metrics.FaultReorder()
						tw.FaultReorder(q, iter)
						continue
					}
					r.Isend(q, 0, buf)
					tw.Send(q, iter)
					if fate == fault.Dup {
						r.Isend(q, 0, buf)
						opt.Metrics.FaultDup()
						tw.FaultDup(q, iter)
					}
					if old, ok := held[q]; ok {
						delete(held, q)
						r.Isend(q, 0, old) // the overtaken message lands late
					}
				}
			}
			if !opt.Async {
				// Synchronous ghost exchange: blocking receives from
				// every neighbor. In lockstep the sender's iteration
				// equals ours, which is the stamp the tracer records
				// (and what pairs the send→receive flow arrows).
				for _, q := range gp.recvFrom {
					data := r.Recv(q, 0)
					for t, j := range gp.recvIdx[q] {
						xl[gp.localOf[j]] = data[t]
					}
					tw.Recv(q, iter)
				}
			}
			// Termination.
			pprof.SetGoroutineLabels(phaseWait)
			if !opt.Async {
				stop := iter >= opt.MaxIters
				if opt.Tol > 0 {
					grn := r.Allreduce(curNorm)
					if grn/nb <= opt.Tol {
						stop = true
					}
				}
				if stopper != nil {
					// Stop vote: lockstep ranks must agree on the exact
					// iteration they stop at, so the deadline/cancel poll
					// goes through a collective. One extra Allreduce per
					// iteration, paid only when a stopper exists.
					vote := 0.0
					if stopper.Check() != resilience.StopNone {
						vote = 1
					}
					if r.Allreduce(vote) > 0 {
						stop = true
					}
				}
				if stop {
					break
				}
			} else {
				if opt.Tol <= 0 {
					// The paper's naive scheme: stop after MaxIters.
					if iter >= opt.MaxIters {
						break
					}
				} else {
					// Local predicate: own residual share below tol/P
					// (additive in the 1-norm), or budget exhausted.
					localConv := iter >= opt.MaxIters ||
						curNorm/nb <= opt.Tol/float64(r.Size)
					stop := pollTerm(localConv)
					if stop {
						tw.Decided(iter)
					}
					if stop || iter >= 100*opt.MaxIters {
						break
					}
				}
				tw.Yield()
				yield()
			}
		}
		iters[r.ID] = iter
		finalMu.Lock()
		for s, i := range gp.rows {
			finalX[i] = xl[s]
		}
		finalMu.Unlock()
	})

	pr := passResult{x: finalX, iters: iters}
	if opt.RecordHistory {
		// Assemble over ranks that completed at least one iteration, so
		// a rank crashed before its first iteration does not zero out
		// the whole history.
		minIter := 0
		for _, it := range iters {
			if it > 0 && (minIter == 0 || it < minIter) {
				minIter = it
			}
		}
		for k := 0; k < minIter; k++ {
			var sum float64
			for p := 0; p < opt.Procs; p++ {
				if k < len(localHist[p]) {
					sum += localHist[p][k]
				}
			}
			pr.history = append(pr.history, sum/nb)
		}
	}
	_ = n
	return pr
}

// yield lets other rank goroutines run between asynchronous iterations,
// which is what makes oversubscribed (ranks >> cores) executions
// interleave like a real machine.
func yield() { runtime.Gosched() }
