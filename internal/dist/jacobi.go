package dist

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/proflabel"
	"repro/internal/resilience"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/vec"
)

// distLabels caches the pprof label contexts the rank goroutines run
// under, shared across every solve in the process.
var distLabels = proflabel.NewCache("dist")

// SolveOptions configure a distributed Jacobi solve.
type SolveOptions struct {
	// Procs is the number of ranks.
	Procs int
	// Part assigns rows to ranks; nil means contiguous blocks.
	Part *partition.Partition
	// MaxIters is each rank's local iteration budget.
	MaxIters int
	// Tol, when positive, enables residual-based termination. For the
	// synchronous solver this is an exact Allreduce of the global
	// relative residual 1-norm each iteration. For the asynchronous
	// solver the paper uses naive fixed-iteration termination; when Tol
	// is set we use a shared flag array (the shared-memory scheme of
	// Section V carried over), which the paper leaves as future work.
	Tol float64
	// Async selects RMA-window communication and no barriers; false
	// selects point-to-point synchronous Jacobi.
	Async bool
	// Eager selects the semi-synchronous scheme of Jager and Bradley
	// discussed in Section III: an asynchronous process relaxes its
	// rows only when it has received new ghost information since its
	// last relaxation, avoiding "wasted" self-only updates. Implies
	// point-to-point communication with non-blocking receives instead
	// of RMA windows. Requires Async.
	Eager bool
	// Termination selects the asynchronous termination scheme when Tol
	// is positive: FlagTree (default) or DijkstraSafra. With Tol == 0
	// the paper's FixedIterations scheme always applies.
	Termination TerminationMode
	// DelayRank, when >= 0, makes that rank sleep Delay each iteration.
	DelayRank int
	Delay     time.Duration
	// Fault, when non-nil and enabled, injects adversity at the
	// communication points of the asynchronous solver: per-link message
	// drop/duplication/reordering, heavy-tailed per-rank iteration
	// delays, a one-shot stall, and rank crashes with optional restart
	// from the current iterate. Crashed ranks mark themselves dead on
	// the termination board, and a deadline wrapper degrades both the
	// flag-tree and Dijkstra-Safra schemes to the surviving active
	// block instead of hanging the run. Ignored by the synchronous
	// solver (dropping a message a blocking Recv is waiting on would
	// deadlock, not degrade). See internal/fault.
	Fault *fault.Plan
	// RecordHistory samples each rank's local residual 1-norm per local
	// iteration; Result.History then carries the approximate global
	// relative residual per (minimum) iteration count, assembled from
	// the per-rank samples. This is what a production asynchronous
	// solver could log without extra synchronization.
	RecordHistory bool
	// Metrics, when non-nil, streams live observability data: per-rank
	// relaxations and messages/window-puts, a ghost-read staleness
	// histogram (how many neighbor iterations each refresh skipped — the
	// live counterpart of the paper's Fig 2 propagation statistic),
	// per-rank local residual gauges, and termination-protocol
	// transitions. A nil handle costs a nil check per iteration.
	Metrics *obs.SolverMetrics
	// Tracer, when non-nil, records timestamped execution events into
	// per-rank ring buffers: iteration start/end, message sends and RMA
	// puts with iteration stamps, ghost arrivals with the stamp they
	// carried (which is what lets the Chrome exporter draw send→receive
	// flow arrows), injected delays and faults, termination-flag
	// transitions, and Safra token traffic. Nil costs one pointer test
	// per site.
	Tracer *trace.Recorder
	// Ctx, when non-nil, cancels the solve cooperatively: asynchronous
	// ranks poll it once per local iteration; synchronous ranks vote on
	// it in an extra Allreduce per iteration (lockstep ranks must stop
	// at the same iteration or a blocking Recv deadlocks).
	Ctx context.Context
	// MaxTime, when positive, bounds wall-clock time; past it the solve
	// stops like a cancellation with StopReason deadline.
	MaxTime time.Duration
	// Checkpoint, when non-nil with a Path, snapshots the gathered
	// iterate, cumulative per-rank iteration counts, and the fault RNG
	// streams at pass boundaries (on the spec's interval) and once more
	// at exit, atomically. Dist checkpoints are pass-grained, not
	// iteration-grained: the gather that a snapshot needs already
	// happens at each recheck-and-resume boundary.
	Checkpoint *resilience.Spec
	// Resume, when non-nil, continues a checkpointed solve: the caller
	// passes the checkpoint's X as x0, while Resume restores the fault
	// injectors' RNG streams and crash latches (a crash already spent
	// does not replay), seeds the cumulative iteration counts, and
	// offsets Elapsed. MaxIters is this run's fresh budget.
	Resume *resilience.Checkpoint
	// Retry bounds the eager scheme's loss-recovery retransmissions:
	// an idle rank retransmits its boundary values with exponential
	// backoff until the policy is exhausted, after which the link is
	// given up as dead. Nil selects DefaultRetryPolicy.
	Retry *resilience.RetryPolicy
	// NetTimeout bounds SolveRank's cross-process coordination waits
	// (the per-pass gather/decide exchange with rank 0); <= 0 selects
	// DefaultOpTimeout. Ignored by the in-process Solve.
	NetTimeout time.Duration
}

// Result reports a distributed solve.
type Result struct {
	X                []float64
	Iterations       []int // per-rank local iterations (summed over resume passes)
	TotalRelaxations int
	RelRes           float64 // exact, recomputed after the run
	Converged        bool
	WallTime         time.Duration
	// Resumes counts recheck-and-resume passes: times the asynchronous
	// termination detection latched on stale ghost data while the exact
	// residual was still above tolerance, and the solve continued from
	// the current iterate with the remaining budget.
	Resumes int
	// History[k] approximates the global relative residual 1-norm when
	// every participating rank had completed k+1 local iterations (sum
	// of per-rank local norms sampled at that iteration). Filled when
	// SolveOptions.RecordHistory is set; its length is the minimum
	// iteration count across ranks that completed at least one
	// iteration (a rank crashed before its first iteration does not
	// zero out the whole history).
	History []float64
	// StopReason states why the solve returned: converged, deadline,
	// canceled, max-iter, or crashed.
	StopReason resilience.StopReason
	// Elapsed is this run's wall-clock time plus, on a resumed solve,
	// the checkpointed time of the run(s) before it.
	Elapsed time.Duration
	// CheckpointErr reports a failure of the final at-exit checkpoint
	// write (pass-boundary write failures only bump the
	// checkpoint_error counter).
	CheckpointErr error
}

// ghostPlan is one rank's communication plan, derived from the
// partition and sparsity (Section VI: neighbors are found "by
// inspecting the nonzero values of the matrix rows").
type ghostPlan struct {
	rows []int // owned global rows
	// neighbors in deterministic order
	recvFrom []int         // neighbor ranks we receive ghosts from
	recvIdx  map[int][]int // global indices received from each neighbor
	sendTo   []int         // neighbor ranks we send boundary values to
	sendIdx  map[int][]int // owned global indices sent to each neighbor
	// local indexing: own rows first, then ghosts grouped by neighbor
	// in recvFrom order.
	localOf map[int]int // global index -> local slot
	nLocal  int         // total local slots (own + ghosts)
	// window layout for async: ghost slot offset of each recv neighbor.
	// The window holds ghostLen data slots followed by one iteration
	// stamp slot per recv neighbor (stampOff): senders Put their local
	// iteration count alongside the data, which is what lets a receiver
	// measure ghost-read staleness without any extra synchronization.
	winOff   map[int]int
	stampOff map[int]int
	ghostLen int // data slots
	winLen   int // data + stamp slots
}

func buildPlans(a *sparse.CSR, part *partition.Partition) []*ghostPlan {
	subs := partition.BuildSubdomains(a, part)
	plans := make([]*ghostPlan, part.P)
	for p, sub := range subs {
		gp := &ghostPlan{
			rows:     sub.Rows,
			recvIdx:  map[int][]int{},
			sendIdx:  map[int][]int{},
			localOf:  map[int]int{},
			winOff:   map[int]int{},
			stampOff: map[int]int{},
		}
		for q := range sub.Recv {
			gp.recvFrom = append(gp.recvFrom, q)
		}
		sort.Ints(gp.recvFrom)
		for q := range sub.Send {
			gp.sendTo = append(gp.sendTo, q)
		}
		sort.Ints(gp.sendTo)
		for _, q := range gp.recvFrom {
			gp.recvIdx[q] = sub.Recv[q]
		}
		for _, q := range gp.sendTo {
			gp.sendIdx[q] = sub.Send[q]
		}
		slot := 0
		for _, i := range sub.Rows {
			gp.localOf[i] = slot
			slot++
		}
		off := 0
		for _, q := range gp.recvFrom {
			gp.winOff[q] = off
			for _, j := range gp.recvIdx[q] {
				gp.localOf[j] = slot
				slot++
				off++
			}
		}
		gp.nLocal = slot
		gp.ghostLen = off
		for qi, q := range gp.recvFrom {
			gp.stampOff[q] = off + qi
		}
		gp.winLen = off + len(gp.recvFrom)
		plans[p] = gp
	}
	return plans
}

// Solve runs distributed Jacobi. The returned X is gathered from all
// ranks; RelRes is recomputed exactly from X.
//
// For the asynchronous solver with a positive tolerance, Solve runs a
// recheck-and-resume loop: the flag-tree and Safra detectors test each
// rank's *local* residual share, which is computed against possibly
// stale ghost values, so a detection can latch while the exact global
// residual is still above tolerance. After each pass Solve recomputes
// the residual exactly; if it is above Tol and iteration budget
// remains, the solve resumes from the current iterate. Converged=true
// is therefore never reported with an exact RelRes > Tol, and an early
// latch costs a resume pass rather than a failed run.
func Solve(a *sparse.CSR, b, x0 []float64, opt SolveOptions) *Result {
	n := a.N
	if len(b) != n || len(x0) != n {
		panic("dist: dimension mismatch")
	}
	if opt.Procs <= 0 || opt.MaxIters <= 0 {
		panic("dist: Procs and MaxIters must be positive")
	}
	if err := opt.Fault.Validate(opt.Procs); err != nil {
		panic("dist: " + err.Error())
	}
	part := opt.Part
	if part == nil {
		part = partition.Contiguous(n, opt.Procs)
	}
	if part.P != opt.Procs {
		panic("dist: partition part count != Procs")
	}
	t0 := time.Now()
	plans := buildPlans(a, part)
	lrp, lcol, lval := buildLocalCSR(a.RowPtr, a.Col, a.Val, plans)

	nb := vec.Norm1(b)
	if nb == 0 {
		nb = 1
	}

	// Injectors persist across resume passes so a fail-stop crash stays
	// fatal for the whole solve, not just the pass it fired in.
	injs := opt.Fault.Injectors(opt.Procs)

	res := &Result{
		Iterations: make([]int, opt.Procs),
		X:          append([]float64(nil), x0...),
	}
	var elapsed0 time.Duration
	if opt.Resume != nil {
		if err := opt.Resume.ValidateFor(n); err != nil {
			panic("dist: " + err.Error())
		}
		if err := fault.RestoreStates(injs, opt.Resume.FaultStates); err != nil {
			panic("dist: " + err.Error())
		}
		if len(opt.Resume.Iters) == opt.Procs {
			// Iteration counts stay cumulative across restarts, so the
			// next checkpoint's Iters describe the whole solve.
			for p := range res.Iterations {
				res.Iterations[p] = int(opt.Resume.Iters[p])
			}
		}
		elapsed0 = opt.Resume.Elapsed
		opt.Metrics.RecoveryCheckpointLoad()
		opt.Metrics.RecoveryResume()
	}
	stopper := resilience.NewStopper(opt.Ctx, opt.MaxTime)
	writer := resilience.NewWriter(opt.Checkpoint, opt.Metrics)
	ckpt := func() *resilience.Checkpoint {
		c := &resilience.Checkpoint{
			Substrate: "dist",
			N:         n,
			X:         append([]float64(nil), res.X...),
			Iters:     make([]int64, opt.Procs),
			Elapsed:   elapsed0 + time.Since(t0),
		}
		for p, it := range res.Iterations {
			c.Iters[p] = int64(it)
			if it > c.Sweeps {
				c.Sweeps = it
			}
		}
		c.FaultStates = fault.States(injs)
		return c
	}
	budget := opt.MaxIters
	rr := make([]float64, n)
	relres := func() float64 {
		a.Residual(rr, b, res.X)
		return vec.Norm1(rr) / nb
	}
	prev := math.Inf(1)
	for {
		pass := solvePass(a, b, res.X, opt, plans, lrp, lcol, lval, injs, budget, nb, stopper)
		res.X = pass.x
		maxIter := 0
		for p := 0; p < opt.Procs; p++ {
			res.Iterations[p] += pass.iters[p]
			res.TotalRelaxations += pass.iters[p] * len(plans[p].rows)
			if pass.iters[p] > maxIter {
				maxIter = pass.iters[p]
			}
		}
		res.History = append(res.History, pass.history...)
		res.RelRes = relres()
		// Pass boundaries are dist's checkpoint grain: the iterate was
		// just gathered, so a snapshot costs only the write.
		_, _ = writer.MaybeWrite(ckpt)
		if stopper.Stopped() {
			break
		}
		if !opt.Async || opt.Tol <= 0 || res.RelRes <= opt.Tol {
			break
		}
		budget -= maxIter
		if budget <= 0 || maxIter == 0 {
			// Budget exhausted, or no rank can make progress (all
			// crashed): report the degraded result honestly.
			break
		}
		if res.RelRes > 0.999*prev {
			// No meaningful progress over the previous pass — a dead
			// rank's frozen block pins the residual; further passes
			// would only burn the budget in thousand-iteration slices.
			break
		}
		prev = res.RelRes
		// Early latch on stale ghosts: resume from the current iterate.
		res.Resumes++
		opt.Metrics.TermResume()
	}

	if opt.Tracer != nil {
		// The trace substrate is itself observable: per-rank capture,
		// wraparound-drop, coalescing, and sampling totals flow into the
		// metrics registry (aj_trace_*).
		for p := 0; p < opt.Procs; p++ {
			st := opt.Tracer.Worker(p).Stats()
			opt.Metrics.TraceCaptured(p, obs.TraceCapture{
				Events: st.Retained, Dropped: st.Dropped,
				Coalesced: st.Coalesced, SampledOut: st.SampledOut,
				Bytes: st.Bytes, EventsPerSec: st.EventsPerSec(),
			})
		}
	}

	res.WallTime = time.Since(t0)
	res.Converged = opt.Tol > 0 && res.RelRes <= opt.Tol
	opt.Metrics.SetResidual(res.RelRes)
	opt.Metrics.SetConverged(res.Converged)
	if writer != nil {
		// Final at-exit checkpoint: the restart point a later Resume
		// continues from, so its failure is a first-class result field.
		res.CheckpointErr = writer.Write(ckpt())
		maxIter := 0
		for _, it := range res.Iterations {
			if it > maxIter {
				maxIter = it
			}
		}
		opt.Tracer.Worker(0).Checkpoint(maxIter)
	}
	crashed := false
	for _, in := range injs {
		if in.Dead() {
			crashed = true
		}
	}
	res.StopReason = resilience.Resolve(res.Converged, stopper, crashed)
	switch res.StopReason {
	case resilience.StopDeadline:
		opt.Metrics.RecoveryDeadline()
	case resilience.StopCanceled:
		opt.Metrics.RecoveryCancel()
	}
	res.Elapsed = elapsed0 + res.WallTime
	return res
}

// passResult is one solvePass outcome: the gathered iterate, per-rank
// iteration counts, and the assembled history samples of this pass.
type passResult struct {
	x       []float64
	iters   []int
	history []float64
}

// solvePass executes one full parallel solve attempt from x0 with the
// given per-rank iteration budget, running runRank on one goroutine per
// rank over the in-process world. The caller owns the resume loop.
func solvePass(a *sparse.CSR, b, x0 []float64, opt SolveOptions, plans []*ghostPlan,
	lrp [][]int, lcol [][]int, lval [][]float64,
	injs []*fault.Injector, budget int, nb float64, stopper *resilience.Stopper) passResult {
	opt.MaxIters = budget

	// Dead or crashed ranks may never write their block, so the gather
	// target starts from the pass's initial iterate rather than zeros.
	finalX := append([]float64(nil), x0...)
	var finalMu sync.Mutex
	iters := make([]int, opt.Procs)
	localHist := make([][]float64, opt.Procs)
	var safraDecided atomic.Bool
	sh := &rankShared{
		b: b, x0: x0, opt: opt, plans: plans,
		lrp: lrp, lcol: lcol, lval: lval, nb: nb,
		stopper: stopper,
		board:   newFlagBoard(opt.Procs, opt.Metrics), // async termination extension
		decided: &safraDecided,
	}
	opt.Metrics.SetWorkers(opt.Procs)

	RunObserved(opt.Procs, opt.Metrics, func(r *Rank) {
		var inj *fault.Injector
		if injs != nil {
			inj = injs[r.ID]
		}
		out := runRank(r, inj, sh)
		gp := plans[r.ID]
		iters[r.ID] = out.iter
		localHist[r.ID] = out.hist
		finalMu.Lock()
		for s, i := range gp.rows {
			finalX[i] = out.xl[s]
		}
		finalMu.Unlock()
	})

	pr := passResult{x: finalX, iters: iters}
	if opt.RecordHistory {
		// Assemble over ranks that completed at least one iteration, so
		// a rank crashed before its first iteration does not zero out
		// the whole history.
		minIter := 0
		for _, it := range iters {
			if it > 0 && (minIter == 0 || it < minIter) {
				minIter = it
			}
		}
		for k := 0; k < minIter; k++ {
			var sum float64
			for p := 0; p < opt.Procs; p++ {
				if k < len(localHist[p]) {
					sum += localHist[p][k]
				}
			}
			pr.history = append(pr.history, sum/nb)
		}
	}
	return pr
}

// yield lets other rank goroutines run between asynchronous iterations,
// which is what makes oversubscribed (ranks >> cores) executions
// interleave like a real machine.
func yield() { runtime.Gosched() }
