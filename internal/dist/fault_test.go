package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/matgen"
	"repro/internal/obs"
)

// The headline acceptance scenario: a seeded run with 10% message drop
// and one crashed-then-restarted rank still converges on a W.D.D.
// Laplacian (Theorem 1 — faults are just delays; a restart resumes the
// infinitely-delayed process).
func TestDistFaultDropAndCrashConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	a := matgen.FD2D(8, 8) // W.D.D. unit-diagonal after FD2D's scaling
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	const tol = 1e-4
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	res := Solve(a, b, x0, SolveOptions{
		Procs: 8, MaxIters: 100000, Tol: tol, Async: true,
		Termination: FlagTree, DelayRank: -1, Metrics: m,
		Fault: &fault.Plan{
			Seed:         42,
			Drop:         0.10,
			StallRank:    -1,
			CrashRanks:   []int{3},
			CrashIter:    20,
			Restart:      true,
			RestartAfter: time.Millisecond,
		},
	})
	if !res.Converged || res.RelRes > tol {
		t.Fatalf("10%% drop + crash/restart did not converge: relres=%g converged=%v",
			res.RelRes, res.Converged)
	}
	for p, it := range res.Iterations {
		if it == 0 {
			t.Fatalf("rank %d recorded zero iterations after restart", p)
		}
	}
}

// Injected message faults must show up in the metrics registry.
func TestDistFaultMetricsCounted(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	a := matgen.FD2D(6, 6)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 300, Async: true, DelayRank: -1, Metrics: m,
		Fault: &fault.Plan{Seed: 1, Drop: 0.2, Dup: 0.1, StallRank: -1},
	})
	drops := m.FaultDropCount()
	dups := m.FaultDupCount()
	if drops == 0 || dups == 0 {
		t.Fatalf("fault counters not incremented: drops=%d dups=%d", drops, dups)
	}
}

// With every rank crashed and no restart, Solve must return promptly
// (degraded, unconverged) instead of hanging or spinning resume passes.
func TestDistAllRanksCrashedReturns(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	a := matgen.FD2D(6, 6)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	done := make(chan *Result, 1)
	go func() {
		done <- Solve(a, b, x0, SolveOptions{
			Procs: 4, MaxIters: 100000, Tol: 1e-6, Async: true,
			Termination: FlagTree, DelayRank: -1,
			Fault: &fault.Plan{
				Seed: 2, StallRank: -1,
				CrashRanks: []int{0, 1, 2, 3}, CrashIter: 2,
			},
		})
	}()
	var res *Result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("all-ranks-crashed solve hung")
	}
	if res.Converged {
		t.Fatal("all ranks crashed but the solve claims convergence")
	}
	for p, it := range res.Iterations {
		if it > 2 {
			t.Fatalf("rank %d iterated %d times past its crash", p, it)
		}
	}
	for i, v := range res.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("x[%d] = %g after total crash", i, v)
		}
	}
}

// A rank crashed before its first iteration must not zero out
// Result.History: the assembly uses the minimum over ranks that
// completed at least one iteration.
func TestDistHistoryWithZeroIterationRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	a := matgen.FD2D(6, 6)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 2000, Tol: 1e-6, Async: true,
		Termination: FlagTree, DelayRank: -1, RecordHistory: true,
		Fault: &fault.Plan{
			Seed: 3, StallRank: -1,
			CrashRanks: []int{1}, CrashIter: 0, // dead before iteration 1
		},
	})
	if res.Iterations[1] != 0 {
		t.Fatalf("crashed-at-0 rank iterated %d times", res.Iterations[1])
	}
	if len(res.History) == 0 {
		t.Fatal("History empty despite three surviving ranks iterating")
	}
	for k, h := range res.History {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			t.Fatalf("History[%d] = %g", k, h)
		}
	}
}

// Satellite regression for the early-termination race: under heavy
// message loss the flag-tree local tests fire on stale ghost data, so a
// detection can latch while the exact residual is still above
// tolerance. The recheck-and-resume loop must guarantee the contract
// Converged == (RelRes <= Tol) regardless.
func TestDistRecheckResumeContract(t *testing.T) {
	a := matgen.FD2D(8, 8)
	const tol = 1e-4
	for seed := uint64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		b := randomVec(rng, a.N)
		x0 := randomVec(rng, a.N)
		res := Solve(a, b, x0, SolveOptions{
			Procs: 8, MaxIters: 200000, Tol: tol, Async: true,
			Termination: FlagTree, DelayRank: -1,
			Fault: &fault.Plan{Seed: seed, Drop: 0.9, StallRank: -1},
		})
		if res.Converged != (res.RelRes <= tol) {
			t.Fatalf("seed %d: Converged=%v but RelRes=%g (tol %g)",
				seed, res.Converged, res.RelRes, tol)
		}
		if !res.Converged {
			t.Fatalf("seed %d: 90%% drop exhausted the budget: relres=%g resumes=%d",
				seed, res.RelRes, res.Resumes)
		}
	}
}

// A crashed rank must not hang Dijkstra-Safra: its mailbox can hold the
// token forever, so after the deadline the surviving ranks decide over
// the flag board instead.
func TestDistSafraCrashDegrades(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 20))
	a := matgen.FD2D(6, 6)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	done := make(chan *Result, 1)
	go func() {
		done <- Solve(a, b, x0, SolveOptions{
			Procs: 4, MaxIters: 3000, Tol: 1e-6, Async: true,
			Termination: DijkstraSafra, DelayRank: -1,
			Fault: &fault.Plan{
				Seed: 4, StallRank: -1,
				CrashRanks: []int{2}, CrashIter: 10,
				TermTimeout: 100 * time.Millisecond,
			},
		})
	}()
	var res *Result
	select {
	case res = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Safra run with a crashed rank hung")
	}
	// The dead block freezes, so the exact tolerance is unreachable;
	// what matters is that the run ended and reported that honestly.
	if res.Converged {
		t.Fatalf("converged with a dead block: relres=%g", res.RelRes)
	}
	if res.Iterations[2] > 10 {
		t.Fatalf("crashed rank kept iterating: %d", res.Iterations[2])
	}
}

// Eager (point-to-point) async under drop/dup/reorder exercises the
// held-message reordering path; the solve must still converge.
func TestDistEagerFaultsConverge(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	const tol = 1e-4
	res := Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 200000, Tol: tol, Async: true, Eager: true,
		Termination: FlagTree, DelayRank: -1,
		Fault: &fault.Plan{Seed: 5, Drop: 0.1, Dup: 0.05, Reorder: 0.1, StallRank: -1},
	})
	if !res.Converged || res.RelRes > tol {
		t.Fatalf("eager async under faults: relres=%g converged=%v", res.RelRes, res.Converged)
	}
}
