package dist

// The communication layer of this package is defined by the Comm
// interface below, with two backends:
//
//   - the in-process channel substrate of comm.go (*Rank): ranks are
//     goroutines, mailboxes are bounded in-memory queues, RMA windows
//     are shared atomic arrays. The default, and the only backend the
//     paper's experiments need.
//
//   - the TCP backend of internal/dist/tcptransport: ranks are OS
//     processes, mailboxes and windows are fed by length-prefixed
//     frames over real sockets, and the fault tolerance the paper's
//     delay model promises (Theorem 1: the residual never grows under
//     arbitrary bounded delay) is exercised by real packet loss, peer
//     restarts, and partitions instead of simulated fates.
//
// The same rank loop (runRank in jacobi.go), the same ghost-exchange
// plans, and the same termination protocols (flag tree, Dijkstra-
// Safra) run against either backend; Solve drives all ranks in one
// process, SolveRank drives one rank of a multi-process world.

import (
	"errors"
	"time"

	"repro/internal/shm"
)

// Typed wire errors. Every blocking transport operation with a
// deadline reports one of these instead of hanging forever on a dead
// peer; callers errors.Is their way to the cause.
var (
	// ErrTimeout: the operation's deadline expired before the peers
	// answered.
	ErrTimeout = errors.New("dist: operation deadline exceeded")
	// ErrPeerDead: the operation needs a peer the liveness layer has
	// declared dead (crashed, heartbeat-silent, or unreachable past
	// the retry budget).
	ErrPeerDead = errors.New("dist: peer is dead")
	// ErrClosed: the transport has been closed.
	ErrClosed = errors.New("dist: transport closed")
)

// DefaultOpTimeout bounds blocking wire operations (deadline receives
// and collectives) when the caller passes no explicit timeout.
const DefaultOpTimeout = 30 * time.Second

// Comm is one rank's handle into the communication world — the
// MPI-flavored surface the solver loop runs against. The in-process
// *Rank and the TCP transport both implement it.
//
// Send-side calls never block on a slow peer: Isend copies the buffer
// and queues it (bounded, evict-oldest), RMA puts are asynchronous.
// Blocking calls (Recv, the collectives) come in two flavors: the
// bare ones for lockstep synchronous code that would deadlock rather
// than degrade anyway, and *Timeout variants that accept a deadline
// plus a dead-rank predicate and return typed errors instead of
// hanging on a crashed peer.
type Comm interface {
	// RankID is this rank's id in [0, WorldSize).
	RankID() int
	// WorldSize is the number of ranks.
	WorldSize() int
	// Isend posts data to rank `to` under tag (>= 0 for user traffic)
	// and returns immediately; the slice is copied.
	Isend(to, tag int, data []float64)
	// Recv blocks until a message from `from` under tag arrives.
	Recv(from, tag int) []float64
	// TryRecv drains the (from, tag) mailbox and returns the newest
	// pending message, or ok=false when none is pending.
	TryRecv(from, tag int) ([]float64, bool)
	// Allreduce sums v across all ranks; collective and blocking.
	Allreduce(v float64) float64
	// AllreduceTimeout is Allreduce with a deadline and a liveness
	// view: contributions from ranks where dead(rank) is true are
	// skipped (a crashed block is frozen — its share is whatever the
	// survivors last saw), and the call returns ErrTimeout or
	// ErrPeerDead instead of blocking forever. timeout <= 0 selects
	// DefaultOpTimeout; a nil dead treats every rank as live.
	AllreduceTimeout(v float64, timeout time.Duration, dead func(int) bool) (float64, error)
	// Barrier synchronizes all ranks.
	Barrier()
	// BarrierTimeout is Barrier with the same deadline/liveness
	// semantics as AllreduceTimeout.
	BarrierTimeout(timeout time.Duration, dead func(int) bool) error
	// AllocWindow creates an n-slot RMA window on this rank and
	// returns the handle used for remote puts and local reads.
	AllocWindow(n int) Window
}

// Window is one rank's view of an RMA window: remote writes via Put,
// local reads (and seeding stores) via the Local atomic buffer. Puts
// are atomic per float64 element but not per message — MPI_Put under
// passive-target locking, which is exactly what row-independent
// asynchronous Jacobi needs.
type Window interface {
	// Put writes data into target's window starting at offset. Never
	// blocks; over a wire backend the message may be lost, which the
	// asynchronous solver tolerates by construction.
	Put(target, offset int, data []float64)
	// Local returns this rank's own window buffer for direct atomic
	// reads and stores.
	Local() shm.AtomicVector
}

// Board is the termination flag board doubling as a fail-stop failure
// detector: one convergence flag and one dead mark per rank. The
// in-process flagBoard shares atomics; the TCP backend replicates
// transitions as wire frames and feeds dead marks from heartbeats.
type Board interface {
	// Set publishes rank's local convergence state; reports whether
	// the call changed the flag.
	Set(rank int, converged bool) bool
	// Check reports whether every live rank's flag has been seen up;
	// the first observer latches the decision.
	Check() bool
	// MarkDead records rank's fail-stop crash.
	MarkDead(rank int)
	// Revive clears a dead mark (a restarted peer reconnected).
	Revive(rank int)
	// IsDead reports whether rank has been declared dead.
	IsDead(rank int) bool
	// AnyDead reports whether any rank is currently declared dead.
	AnyDead() bool
	// Reset clears the flags and the decision latch (dead marks
	// survive) for the next recheck-and-resume pass.
	Reset()
}

// NetComm is what a multi-process transport provides beyond Comm: the
// wire-replicated termination/liveness board and a lifecycle. The
// in-process backend never needs it (Solve builds a fresh board per
// pass); SolveRank requires it.
type NetComm interface {
	Comm
	// Board returns the transport's termination/liveness board. The
	// same board instance lives for the whole transport; SolveRank
	// resets it between passes.
	Board() Board
	// Close tears the transport down; subsequent operations fail.
	Close() error
}
