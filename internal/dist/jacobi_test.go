package dist

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/matgen"
	"repro/internal/model"
	"repro/internal/partition"
)

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// Synchronous distributed Jacobi must reproduce the sequential model
// exactly, for both contiguous and BFS partitions.
func TestDistSyncMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := matgen.FD2D(8, 8)
	n := a.N
	b := randomVec(rng, n)
	x0 := randomVec(rng, n)
	const iters = 30
	h := model.Run(a, b, x0, model.NewSyncSchedule(n), model.Options{MaxSteps: iters})

	for _, procs := range []int{1, 3, 7} {
		for _, useBFS := range []bool{false, true} {
			opt := SolveOptions{Procs: procs, MaxIters: iters}
			if useBFS {
				opt.Part = partition.BFS(a, procs)
			}
			res := Solve(a, b, x0, opt)
			for i := 0; i < n; i++ {
				if math.Abs(res.X[i]-h.X[i]) > 1e-12 {
					t.Fatalf("procs=%d bfs=%v: x[%d] = %.15g model %.15g",
						procs, useBFS, i, res.X[i], h.X[i])
				}
			}
		}
	}
}

func TestDistSyncToleranceTermination(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := matgen.FD2D(4, 17)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{Procs: 4, MaxIters: 100000, Tol: 1e-3})
	if !res.Converged {
		t.Fatalf("sync did not converge: %g", res.RelRes)
	}
	// All ranks must stop at the same iteration.
	for _, it := range res.Iterations {
		if it != res.Iterations[0] {
			t.Fatalf("sync ranks stopped at different iterations: %v", res.Iterations)
		}
	}
}

func TestDistAsyncConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{Procs: 8, MaxIters: 100000, Tol: 1e-4, Async: true})
	if !res.Converged {
		t.Fatalf("async did not converge: %g", res.RelRes)
	}
}

func TestDistAsyncFixedIterations(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := matgen.FD2D(6, 6)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{Procs: 4, MaxIters: 200, Async: true})
	for p, it := range res.Iterations {
		if it != 200 {
			t.Fatalf("rank %d did %d iterations, want exactly 200 (naive scheme)", p, it)
		}
	}
	if res.RelRes > 1e-3 {
		t.Fatalf("200 async iterations left residual %g", res.RelRes)
	}
}

// The Fig 6/9 phenomenon on the distributed substrate: sync diverges on
// the FE matrix, async with many ranks converges.
func TestDistAsyncConvergesWhereSyncDiverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	a := matgen.FE2D(matgen.DefaultFEOptions(25, 25))
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)

	syncRes := Solve(a, b, x0, SolveOptions{Procs: 8, MaxIters: 400})
	if syncRes.RelRes < 1 {
		t.Fatalf("sync should diverge on FE matrix: %g", syncRes.RelRes)
	}
	asyncRes := Solve(a, b, x0, SolveOptions{Procs: 64, MaxIters: 4000, Tol: 1e-3, Async: true})
	if !asyncRes.Converged {
		t.Fatalf("async should converge on FE matrix: %g", asyncRes.RelRes)
	}
}

func TestDistDelayedRankStillConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	a := matgen.FD2D(4, 17)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 100000, Tol: 1e-3, Async: true,
		DelayRank: 1, Delay: 100000, // 100us in time.Duration units
	})
	if !res.Converged {
		t.Fatalf("async with delayed rank did not converge: %g", res.RelRes)
	}
	// The delayed rank should have iterated less than the others.
	if res.Iterations[1] >= res.Iterations[0] {
		t.Logf("note: delayed rank iterations %v (scheduling-dependent)", res.Iterations)
	}
}

func TestDistSingleProc(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	a := matgen.FD2D(5, 5)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{Procs: 1, MaxIters: 100000, Tol: 1e-6, Async: true})
	if !res.Converged {
		t.Fatalf("single-proc async failed: %g", res.RelRes)
	}
}

func TestDistMoreProcsThanRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	a := matgen.Laplace1D(6)
	b := randomVec(rng, 6)
	x0 := randomVec(rng, 6)
	res := Solve(a, b, x0, SolveOptions{Procs: 10, MaxIters: 3000, Tol: 1e-6, Async: true})
	if !res.Converged {
		t.Fatalf("oversubscribed dist solve failed: %g", res.RelRes)
	}
}

func TestBuildPlansConsistency(t *testing.T) {
	a := matgen.FD2D(10, 7)
	part := partition.BFS(a, 6)
	plans := buildPlans(a, part)
	// Window offsets: rank p's slot for neighbor q must match what q
	// computes when Putting (plans[q] sends into plans[p].winOff[q]).
	for p, gp := range plans {
		for _, q := range gp.sendTo {
			if _, ok := plans[q].winOff[p]; !ok {
				t.Fatalf("rank %d sends to %d but %d has no window offset for %d", p, q, q, p)
			}
			if len(gp.sendIdx[q]) != len(plans[q].recvIdx[p]) {
				t.Fatalf("send/recv length mismatch %d->%d", p, q)
			}
		}
		// Local numbering covers own rows + ghosts without collision.
		seen := map[int]bool{}
		for _, s := range gp.localOf {
			if seen[s] {
				t.Fatal("local slot collision")
			}
			seen[s] = true
		}
		if len(gp.localOf) != gp.nLocal {
			t.Fatal("nLocal mismatch")
		}
	}
}

func TestDistPanics(t *testing.T) {
	a := matgen.Laplace1D(4)
	v := make([]float64, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: zero procs")
			}
		}()
		Solve(a, v, v, SolveOptions{Procs: 0, MaxIters: 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic: partition mismatch")
			}
		}()
		Solve(a, v, v, SolveOptions{Procs: 2, MaxIters: 1, Part: partition.Contiguous(4, 3)})
	}()
}

func TestDistRecordHistory(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 60, RecordHistory: true,
	})
	if len(res.History) != 60 {
		t.Fatalf("history length %d, want 60 (sync lockstep)", len(res.History))
	}
	// Sync history must decay monotonically on the W.D.D. problem.
	for k := 1; k < len(res.History); k++ {
		if res.History[k] > res.History[k-1]*(1+1e-12) {
			t.Fatalf("sync residual history increased at %d", k)
		}
	}
	// Async history exists and ends low.
	ares := Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 200, Async: true, RecordHistory: true,
	})
	if len(ares.History) == 0 {
		t.Fatal("async history empty")
	}
	if last := ares.History[len(ares.History)-1]; last > 1e-3 {
		t.Fatalf("async history ends high: %g", last)
	}
}
