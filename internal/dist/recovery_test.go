package dist

import (
	"context"
	"math/rand/v2"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// A deadline-stopped dist run must say so and never claim convergence
// its exact residual does not back — for both the asynchronous solver
// (per-iteration stopper poll) and the synchronous one (lockstep stop
// vote through an extra Allreduce).
func TestDistDeadlineStops(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	for _, async := range []bool{true, false} {
		name := "sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			res := Solve(a, b, x0, SolveOptions{
				Procs: 4, MaxIters: 1 << 20, Tol: 1e-300, Async: async,
				DelayRank: -1, MaxTime: 5 * time.Millisecond,
			})
			if res.StopReason != resilience.StopDeadline {
				t.Fatalf("stop reason %v, want deadline", res.StopReason)
			}
			if res.Converged {
				t.Fatalf("deadline-stopped run claims convergence (relres %g)", res.RelRes)
			}
			if res.Converged != (res.RelRes <= 1e-300) {
				t.Fatal("Converged contradicts RelRes")
			}
			if res.Elapsed != res.WallTime {
				t.Fatalf("fresh run elapsed %v != walltime %v", res.Elapsed, res.WallTime)
			}
		})
	}
}

// Cancellation reaches every rank through the shared stopper latch.
func TestDistCancelStops(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	res := Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 1 << 20, Tol: 1e-300, Async: true,
		DelayRank: -1, Ctx: ctx,
	})
	if res.StopReason != resilience.StopCanceled {
		t.Fatalf("stop reason %v, want canceled", res.StopReason)
	}
	if res.Converged {
		t.Fatal("canceled run claims convergence")
	}
}

// The dist acceptance scenario: a run degraded by an injected fail-stop
// rank crash leaves its at-exit checkpoint; a new solve restarted from
// it (fault latches restored, so the crash does not replay) converges,
// with Converged == (RelRes <= Tol) and cumulative iteration counts.
func TestDistKillRestartFromCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewPCG(65, 66))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	const tol = 1e-6
	path := filepath.Join(t.TempDir(), "dist.ajcp")
	plan := &fault.Plan{
		Seed: 19, StallRank: -1,
		CrashRanks: []int{2}, CrashIter: 10,
	}

	res1 := Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 400, Tol: tol, Async: true,
		Termination: FlagTree, DelayRank: -1,
		Fault:      plan,
		Checkpoint: &resilience.Spec{Path: path, Interval: time.Hour},
	})
	if res1.Converged {
		t.Fatal("crashed run converged with a frozen block; crash did not bite")
	}
	if res1.StopReason != resilience.StopCrashed {
		t.Fatalf("stop reason %v, want crashed", res1.StopReason)
	}
	if res1.CheckpointErr != nil {
		t.Fatalf("final checkpoint write failed: %v", res1.CheckpointErr)
	}

	ck, err := resilience.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if ck.Substrate != "dist" {
		t.Fatalf("substrate %q, want dist", ck.Substrate)
	}
	res2 := Solve(a, b, ck.X, SolveOptions{
		Procs: 4, MaxIters: 100000, Tol: tol, Async: true,
		Termination: FlagTree, DelayRank: -1,
		Fault:  plan,
		Resume: ck,
	})
	if !res2.Converged {
		t.Fatalf("restarted run did not converge: relres %g, reason %v",
			res2.RelRes, res2.StopReason)
	}
	if res2.Converged != (res2.RelRes <= tol) {
		t.Fatal("Converged contradicts RelRes")
	}
	if res2.StopReason != resilience.StopConverged {
		t.Fatalf("stop reason %v, want converged", res2.StopReason)
	}
	if res2.Elapsed <= res2.WallTime {
		t.Fatalf("resumed Elapsed %v does not include checkpointed time", res2.Elapsed)
	}
	// Iteration counts accumulate across the restart, including the
	// crashed rank's pre-crash work.
	for p, it1 := range res1.Iterations {
		if res2.Iterations[p] < it1 {
			t.Fatalf("rank %d iterations went backwards across restart: %d -> %d",
				p, it1, res2.Iterations[p])
		}
	}
}

// The eager scheme's loss recovery is a real retry policy now: idle
// retransmissions are counted, backed off, and bounded — and a run with
// a lossy link still converges inside the default budget.
func TestDistEagerRetryPolicyConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(67, 68))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	const tol = 1e-4
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	res := Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 100000, Tol: tol, Async: true, Eager: true,
		Termination: FlagTree, DelayRank: -1, Metrics: m,
		Fault: &fault.Plan{Seed: 23, Drop: 0.3, StallRank: -1},
		Retry: &resilience.RetryPolicy{
			MaxAttempts: 30, Base: 50 * time.Microsecond, Max: 2 * time.Millisecond,
		},
	})
	if !res.Converged || res.RelRes > tol {
		t.Fatalf("eager + 30%% drop did not converge under the retry policy: relres=%g",
			res.RelRes)
	}
	if m.RecoveryRetransmitCount() == 0 {
		t.Fatal("no retransmissions counted under 30% drop")
	}
}

// A crashed rank is excluded from further sends once the failure
// detector has it: the exclude counter moves and the run still returns.
func TestDistCrashedRankExcluded(t *testing.T) {
	rng := rand.New(rand.NewPCG(69, 70))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	done := make(chan *Result, 1)
	go func() {
		done <- Solve(a, b, x0, SolveOptions{
			Procs: 4, MaxIters: 2000, Tol: 1e-8, Async: true,
			Termination: FlagTree, DelayRank: -1, Metrics: m,
			Fault: &fault.Plan{
				Seed: 29, StallRank: -1,
				CrashRanks: []int{1}, CrashIter: 5,
			},
		})
	}()
	var res *Result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("solve with crashed rank hung")
	}
	if res.StopReason != resilience.StopCrashed {
		t.Fatalf("stop reason %v, want crashed", res.StopReason)
	}
	if m.RecoveryExcludeCount() == 0 {
		t.Fatal("no sends excluded toward the dead rank")
	}
}
