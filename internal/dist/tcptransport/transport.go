package tcptransport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collect"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/shm"
)

// Internal tags reserved by the collectives; they mirror the
// in-process backend's so the gather/broadcast streams of the two
// backends behave identically. Negative tags are control-plane: never
// wire-faulted, never evicted.
const (
	tagReduce = -1
	tagBcast  = -2
)

// Defaults for the liveness and retry machinery.
const (
	DefaultHeartbeatEvery = 100 * time.Millisecond
	DefaultPeerTimeout    = 3 * time.Second
	// DefaultOutboxCap bounds each peer's queued data frames
	// (evict-oldest; control frames are never evicted).
	DefaultOutboxCap = 1024
	// dialTimeout bounds one TCP connect attempt.
	dialTimeout = 2 * time.Second
	// redialEvery paces the background redial loop that keeps probing a
	// dead peer's address until it restarts or the transport closes.
	redialEvery = time.Second
	// helloTimeout bounds how long an accepted connection may stall
	// before its handshake frame arrives.
	helloTimeout = 5 * time.Second
)

// DefaultDialRetry is the bounded-exponential-backoff budget for
// connection establishment: more patient than the solver's
// retransmission policy because peer processes routinely start seconds
// apart.
func DefaultDialRetry() resilience.RetryPolicy {
	return resilience.RetryPolicy{MaxAttempts: 40, Base: 10 * time.Millisecond, Max: 500 * time.Millisecond}
}

// Config describes one rank of a TCP world.
type Config struct {
	// Rank is this process's id in [0, len(Addrs)).
	Rank int
	// Addrs lists every rank's listen address in rank order; Addrs[Rank]
	// is the local listen address.
	Addrs []string
	// Metrics receives transport counters (bytes, frames, retries,
	// reconnects, timeouts, evictions) plus per-rank send/recv counts;
	// nil disables instrumentation.
	Metrics *obs.SolverMetrics
	// DialRetry bounds connection-establishment retries; nil selects
	// DefaultDialRetry. After the budget exhausts the peer is marked
	// dead and a slow background redial keeps probing so a restarted
	// peer can revive.
	DialRetry *resilience.RetryPolicy
	// OpTimeout bounds blocking wire operations (Recv, collectives)
	// when the caller passes none; <= 0 selects dist.DefaultOpTimeout.
	OpTimeout time.Duration
	// HeartbeatEvery paces keepalive frames; <= 0 selects the default.
	HeartbeatEvery time.Duration
	// PeerTimeout is the heartbeat silence after which a peer is
	// declared dead; <= 0 selects the default.
	PeerTimeout time.Duration
	// WireFault, when non-nil and enabled, faults real data/put frames
	// on the way out: drops, duplicates, reorders, and heavy-tailed
	// delays drawn deterministically from per-link PCG streams
	// (fault.Plan.ForLink), so a seeded run loses the same frames every
	// time. Control frames (hello, flags, liveness, heartbeats,
	// collective traffic) are never faulted.
	WireFault *fault.Plan
	// OutboxCap bounds each peer's data-frame send queue; 0 selects
	// DefaultOutboxCap.
	OutboxCap int
}

// Transport is one rank's TCP-backed communication world. It
// implements dist.NetComm: the solver's Comm surface plus the
// wire-replicated termination/liveness board and a lifecycle.
type Transport struct {
	cfg    Config
	rank   int
	size   int
	ln     net.Listener
	board  *wireBoard
	peers  []*peer // index by rank; peers[rank] is nil
	boxes  sync.Map
	winMu  sync.Mutex
	wins   []*window
	closed chan struct{}
	once   sync.Once
	m      *obs.SolverMetrics
	rm     *obs.RankMetrics
	wg     sync.WaitGroup

	// epoch anchors this rank's wire timestamps: every stamp on the
	// wire (heartbeat probes, stamped data/put frames) is monotonic
	// nanoseconds since epoch, so the offset estimator aligns epochs —
	// not wall clocks — across ranks.
	epoch time.Time
}

// mono returns monotonic nanoseconds since the transport epoch, as the
// float64 the wire carries (exact below 2^53 ns ≈ 104 days).
func (t *Transport) mono() float64 { return float64(time.Since(t.epoch)) }

type boxKey struct{ src, tag int }

// peer is the send/liveness state for one remote rank. The connection
// convention is dialer-owns: the higher rank dials the lower, owns
// reconnection, and the acceptor simply installs whatever connection
// last said hello.
type peer struct {
	rank   int
	addr   string
	dialer bool

	mu     sync.Mutex
	conn   net.Conn
	connCh chan struct{} // signaled when a connection is installed

	out      *outbox
	lastSeen atomic.Int64 // UnixNano of the last frame read
	everConn atomic.Bool

	inj       *fault.Injector // wire faults for the self→peer link
	held      *frame          // reorder holdback
	heldStamp float64         // wire-entry instant of the held frame

	// Wire-measurement state. est and the standalone histograms are
	// always on (PeerStats works with a nil metrics registry); wm
	// additionally feeds the obs families and is nil-safe.
	verOK atomic.Bool // peer speaks heartbeat v1 (timing probes)
	est   *collect.OffsetEstimator
	rtt   *obs.Histogram // measured heartbeat RTT, seconds
	delay *obs.Histogram // measured one-way data/put delay, seconds
	wm    *obs.WireMetrics

	drops      atomic.Uint64 // injected frame drops on this link
	evicts     atomic.Uint64 // outbox evict-oldest sheds on this link
	reconnects atomic.Uint64 // re-established connections
}

func (p *peer) getConn() net.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

// setConn installs c as the peer's live connection, closing any
// predecessor (a reconnect replaces, never races).
func (p *peer) setConn(c net.Conn) {
	p.mu.Lock()
	old := p.conn
	p.conn = c
	p.mu.Unlock()
	if old != nil && old != c {
		old.Close()
	}
	select {
	case p.connCh <- struct{}{}:
	default:
	}
}

// clearConn drops c if it is still the live connection; a stale clear
// (reconnect already installed a fresh conn) is a no-op.
func (p *peer) clearConn(c net.Conn) {
	p.mu.Lock()
	if p.conn == c {
		p.conn = nil
	}
	p.mu.Unlock()
	c.Close()
}

// Dial starts rank cfg.Rank of the world described by cfg.Addrs:
// binds the local listener, begins dialing lower-ranked peers (with
// bounded-backoff retries), and accepts connections from higher ranks.
// It returns immediately; WaitReady blocks until the full mesh is up.
func Dial(cfg Config) (*Transport, error) {
	size := len(cfg.Addrs)
	if size == 0 || cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("tcptransport: rank %d out of range for %d addrs", cfg.Rank, size)
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = dist.DefaultOpTimeout
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = DefaultPeerTimeout
	}
	if cfg.OutboxCap <= 0 {
		cfg.OutboxCap = DefaultOutboxCap
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
	}
	t := &Transport{
		cfg:    cfg,
		rank:   cfg.Rank,
		size:   size,
		ln:     ln,
		closed: make(chan struct{}),
		m:      cfg.Metrics,
		rm:     cfg.Metrics.Rank(cfg.Rank),
		epoch:  time.Now(),
	}
	t.board = newWireBoard(cfg.Rank, size, cfg.Metrics, t.broadcastControl)
	t.peers = make([]*peer, size)
	now := time.Now().UnixNano()
	for q := 0; q < size; q++ {
		if q == cfg.Rank {
			continue
		}
		p := &peer{
			rank:   q,
			addr:   cfg.Addrs[q],
			dialer: q < cfg.Rank, // higher rank dials lower
			connCh: make(chan struct{}, 1),
			inj:    cfg.WireFault.ForLink(cfg.Rank, q),
			est:    &collect.OffsetEstimator{},
			rtt:    obs.NewHistogram(obs.LatencyBuckets()),
			delay:  obs.NewHistogram(obs.LatencyBuckets()),
			wm:     cfg.Metrics.Wire(q),
		}
		p.out = newOutbox(cfg.OutboxCap, func() {
			t.m.TransportEvict()
			p.wm.Evict()
			p.evicts.Add(1)
		})
		p.lastSeen.Store(now)
		t.peers[q] = p
		t.wg.Add(1)
		go t.writerLoop(p)
	}
	t.wg.Add(3)
	go t.acceptLoop()
	go t.heartbeatLoop()
	go t.flagLoop()
	return t, nil
}

func (t *Transport) evicted() { t.m.TransportEvict() }

// WaitReady blocks until every peer has a live connection, or the
// timeout expires (dist.ErrTimeout).
func (t *Transport) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := true
		for _, p := range t.peers {
			if p != nil && p.getConn() == nil {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		select {
		case <-t.closed:
			return dist.ErrClosed
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("tcptransport: mesh not ready: %w", dist.ErrTimeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// RankID implements dist.Comm.
func (t *Transport) RankID() int { return t.rank }

// WorldSize implements dist.Comm.
func (t *Transport) WorldSize() int { return t.size }

// Board returns the wire-replicated termination/liveness board
// (dist.NetComm).
func (t *Transport) Board() dist.Board { return t.board }

// Addr returns the listener's actual address (useful when the config
// asked for port 0).
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Epoch returns the instant this rank's wire timestamps count from.
func (t *Transport) Epoch() time.Time { return t.epoch }

// OffsetTo returns the estimated clock offset to rank q — the peer's
// monotonic epoch-time minus the local one, in nanoseconds — from the
// heartbeat ping/echo samples. ok is false for self, an invalid rank,
// or before any sample landed.
func (t *Transport) OffsetTo(q int) (offsetNs float64, ok bool) {
	if q < 0 || q >= t.size || t.peers[q] == nil {
		return 0, false
	}
	return t.peers[q].est.OffsetNs()
}

// PeerStats is a snapshot of the measured wire behavior of one link,
// independent of any metrics registry (the always-on transport-local
// instrumentation), in the units ledger sub-records carry.
type PeerStats struct {
	Rank                   int
	RTTSamples             int     // completed ping/echo exchanges
	RTTP50Ns, RTTP95Ns     float64 // measured round-trip quantiles
	DelayP50Ns, DelayP95Ns float64 // measured one-way delay quantiles
	DelaySamples           uint64  // stamped data/put frames observed
	OffsetNs               float64 // peer clock - local clock estimate
	Drops                  uint64  // injected frame drops on this link
	Evicts                 uint64  // outbox evict-oldest sheds
	Reconnects             uint64  // re-established connections
}

// PeerStats snapshots the link to rank q; ok is false for self or an
// invalid rank.
func (t *Transport) PeerStats(q int) (PeerStats, bool) {
	if q < 0 || q >= t.size || t.peers[q] == nil {
		return PeerStats{}, false
	}
	p := t.peers[q]
	off, _ := p.est.OffsetNs()
	return PeerStats{
		Rank:         q,
		RTTSamples:   p.est.Samples(),
		RTTP50Ns:     p.rtt.Quantile(0.50) * 1e9,
		RTTP95Ns:     p.rtt.Quantile(0.95) * 1e9,
		DelayP50Ns:   p.delay.Quantile(0.50) * 1e9,
		DelayP95Ns:   p.delay.Quantile(0.95) * 1e9,
		DelaySamples: p.delay.Count(),
		OffsetNs:     off,
		Drops:        p.drops.Load(),
		Evicts:       p.evicts.Load(),
		Reconnects:   p.reconnects.Load(),
	}, true
}

func (t *Transport) box(src, tag int) *dist.Mailbox {
	key := boxKey{src, tag}
	if b, ok := t.boxes.Load(key); ok {
		return b.(*dist.Mailbox)
	}
	capacity := 0
	if tag >= 0 {
		capacity = dist.DefaultMailboxCap
	}
	b, _ := t.boxes.LoadOrStore(key, dist.NewMailbox(capacity, t.evicted))
	return b.(*dist.Mailbox)
}

// Isend posts data to rank `to` under tag and returns immediately; the
// slice is copied (dist.Comm). User-tag frames ride the bounded data
// queue and may be evicted or wire-faulted; negative-tag frames are
// control-plane and are neither.
func (t *Transport) Isend(to, tag int, data []float64) {
	if to < 0 || to >= t.size {
		panic(fmt.Sprintf("tcptransport: Isend to invalid rank %d", to))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	t.rm.IncSent()
	if to == t.rank {
		t.box(t.rank, tag).Push(cp)
		return
	}
	f := &frame{typ: frData, src: int32(t.rank), a: int32(tag), payload: cp}
	t.peers[to].out.push(f, tag < 0)
}

// Recv blocks until a message from `from` under tag arrives
// (dist.Comm). Over a real wire "blocks" is bounded by the configured
// OpTimeout, after which Recv panics: the synchronous lockstep solver
// it serves cannot degrade anyway (a lost blocking message is a
// deadlock, not a slow path), so the panic converts a silent hang into
// a diagnosable crash. Fault-tolerant paths use TryRecv or the
// *Timeout collectives instead.
func (t *Transport) Recv(from, tag int) []float64 {
	data, err := t.RecvTimeout(from, tag, t.cfg.OpTimeout)
	if err != nil {
		panic(fmt.Sprintf("tcptransport: Recv(from=%d, tag=%d): %v", from, tag, err))
	}
	return data
}

// RecvTimeout is Recv with a deadline and a typed error.
func (t *Transport) RecvTimeout(from, tag int, d time.Duration) ([]float64, error) {
	if from < 0 || from >= t.size {
		panic(fmt.Sprintf("tcptransport: Recv from invalid rank %d", from))
	}
	data, err := t.box(from, tag).PopTimeout(d)
	if err != nil {
		t.m.TransportTimeout()
		return nil, err
	}
	t.rm.IncReceived()
	return data, nil
}

// TryRecv drains the (from, tag) mailbox and returns the newest
// pending message (dist.Comm).
func (t *Transport) TryRecv(from, tag int) ([]float64, bool) {
	box := t.box(from, tag)
	var last []float64
	ok := false
	for {
		data, got := box.TryPop()
		if !got {
			break
		}
		t.rm.IncReceived()
		last, ok = data, true
	}
	return last, ok
}

// Allreduce sums v across all ranks (dist.Comm): gather to rank 0 plus
// broadcast, like the in-process backend. Blocking; panics on a wire
// timeout for the same reason Recv does.
func (t *Transport) Allreduce(v float64) float64 {
	sum, err := t.AllreduceTimeout(v, t.cfg.OpTimeout, nil)
	if err != nil {
		panic(fmt.Sprintf("tcptransport: Allreduce: %v", err))
	}
	return sum
}

// AllreduceTimeout is Allreduce with a deadline and a liveness view
// (dist.Comm): dead ranks' contributions are skipped, and the call
// returns dist.ErrTimeout/dist.ErrPeerDead instead of hanging on a
// crashed peer.
func (t *Transport) AllreduceTimeout(v float64, timeout time.Duration, dead func(int) bool) (float64, error) {
	if timeout <= 0 {
		timeout = t.cfg.OpTimeout
	}
	deadline := time.Now().Add(timeout)
	if t.rank == 0 {
		sum := v
		for src := 1; src < t.size; src++ {
			if dead != nil && dead(src) {
				continue
			}
			m, err := t.RecvTimeout(src, tagReduce, time.Until(deadline))
			if err != nil {
				if dead != nil && dead(src) {
					continue
				}
				return 0, fmt.Errorf("allreduce gather from rank %d: %w", src, err)
			}
			sum += m[0]
		}
		for dst := 1; dst < t.size; dst++ {
			if dead != nil && dead(dst) {
				continue
			}
			t.Isend(dst, tagBcast, []float64{sum})
		}
		return sum, nil
	}
	if dead != nil && dead(0) {
		return 0, fmt.Errorf("allreduce root: %w", dist.ErrPeerDead)
	}
	t.Isend(0, tagReduce, []float64{v})
	m, err := t.RecvTimeout(0, tagBcast, time.Until(deadline))
	if err != nil {
		if dead != nil && dead(0) {
			return 0, fmt.Errorf("allreduce root: %w", dist.ErrPeerDead)
		}
		return 0, fmt.Errorf("allreduce broadcast: %w", err)
	}
	return m[0], nil
}

// Barrier synchronizes all ranks (dist.Comm).
func (t *Transport) Barrier() { t.Allreduce(0) }

// BarrierTimeout is Barrier with deadline/liveness semantics
// (dist.Comm).
func (t *Transport) BarrierTimeout(timeout time.Duration, dead func(int) bool) error {
	_, err := t.AllreduceTimeout(0, timeout, dead)
	return err
}

// window is one rank's local slab of a distributed RMA window.
type window struct {
	t   *Transport
	id  int
	buf shm.AtomicVector
}

// AllocWindow creates an n-slot window (dist.Comm). Unlike the
// in-process backend this is NOT collective: window ids are assigned
// by local allocation order, which matches across ranks because every
// rank runs the same solver code (the same discipline MPI_Win_allocate
// demands, minus the barrier). A Put that arrives before the target
// allocated the window is dropped — asynchronous Jacobi tolerates a
// lost first put exactly as it tolerates a dropped frame, and the next
// put heals it.
func (t *Transport) AllocWindow(n int) dist.Window {
	t.winMu.Lock()
	defer t.winMu.Unlock()
	w := &window{t: t, id: len(t.wins), buf: shm.NewAtomicVector(n)}
	t.wins = append(t.wins, w)
	return w
}

func (t *Transport) winAt(id int) *window {
	t.winMu.Lock()
	defer t.winMu.Unlock()
	if id < 0 || id >= len(t.wins) {
		return nil
	}
	return t.wins[id]
}

// Put writes data into target's window at offset (dist.Window): local
// atomic stores for the own rank, a put frame otherwise. Never blocks;
// the frame may be evicted, lost to wire faults, or dropped by a
// not-yet-allocated target — all tolerated by the asynchronous solver.
func (w *window) Put(target, offset int, data []float64) {
	t := w.t
	if target == t.rank {
		for i, v := range data {
			w.buf.Store(offset+i, v)
		}
		return
	}
	if target < 0 || target >= t.size {
		panic(fmt.Sprintf("tcptransport: Put to invalid rank %d", target))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	t.rm.IncPut()
	f := &frame{typ: frPut, src: int32(t.rank), a: int32(w.id), b: int32(offset), payload: cp}
	t.peers[target].out.push(f, false)
}

// Local returns this rank's own window buffer (dist.Window).
func (w *window) Local() shm.AtomicVector { return w.buf }

// broadcastControl enqueues a control frame to every peer (the board's
// flag/dead gossip).
func (t *Transport) broadcastControl(f *frame) {
	select {
	case <-t.closed:
		return
	default:
	}
	for _, p := range t.peers {
		if p != nil {
			p.out.push(f, true)
		}
	}
}

// Close tears the transport down: the listener stops, writers and
// readers unwind, connections close (dist.NetComm). Outboxes get a
// brief drain so final protocol frames (a stop decision, a dead mark)
// reach the wire.
func (t *Transport) Close() error {
	t.once.Do(func() {
		// Grace for queued control frames: writers drain until empty or
		// the grace expires.
		deadline := time.Now().Add(250 * time.Millisecond)
		for time.Now().Before(deadline) {
			pending := false
			for _, p := range t.peers {
				if p != nil && p.out.len() > 0 && p.getConn() != nil {
					pending = true
					break
				}
			}
			if !pending {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		close(t.closed)
		t.ln.Close()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			if c := p.getConn(); c != nil {
				c.Close()
			}
		}
	})
	return nil
}

// acceptLoop installs connections from higher-ranked dialers: each must
// introduce itself with a hello frame before it is trusted with a peer
// slot.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			// Transient accept failure; the listener is still up.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		go t.handleAccept(conn)
	}
}

func (t *Transport) handleAccept(conn net.Conn) {
	hdr := make([]byte, headerLen)
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	f, err := readFrame(conn, hdr)
	conn.SetReadDeadline(time.Time{})
	if err != nil || f.typ != frHello {
		conn.Close()
		return
	}
	src := int(f.src)
	if src < 0 || src >= t.size || src == t.rank || t.peers[src] == nil {
		conn.Close()
		return
	}
	p := t.peers[src]
	if f.a >= hbVersion {
		p.verOK.Store(true)
	}
	wasConnected := p.everConn.Swap(true)
	p.lastSeen.Store(time.Now().UnixNano())
	p.setConn(conn)
	// A hello is proof of life: revive a dead mark (a restarted peer
	// re-entering the solve) and re-announce our own flag so the
	// newcomer's board converges without waiting for a transition.
	if t.board.IsDead(src) {
		t.board.Revive(src)
	}
	if wasConnected {
		t.m.TransportReconnect()
		p.wm.Reconnect()
		p.reconnects.Add(1)
	}
	t.board.announce()
	t.wg.Add(1)
	go t.readerLoop(p, conn)
}

// readerLoop demultiplexes inbound frames from one connection until it
// errors: data to mailboxes, puts to windows, flags/deads to the
// board, heartbeats to the liveness clock.
func (t *Transport) readerLoop(p *peer, conn net.Conn) {
	defer t.wg.Done()
	hdr := make([]byte, headerLen)
	for {
		f, err := readFrame(conn, hdr)
		if err != nil {
			p.clearConn(conn)
			return
		}
		p.lastSeen.Store(time.Now().UnixNano())
		t.m.TransportRx(f.wireLen())
		if f.stamp > 0 && (f.typ == frData || f.typ == frPut) {
			t.observeDelay(p, f.stamp)
		}
		switch f.typ {
		case frData:
			t.box(int(f.src), int(f.a)).Push(f.payload)
		case frPut:
			if w := t.winAt(int(f.a)); w != nil && int(f.b)+len(f.payload) <= len(w.buf) {
				for i, v := range f.payload {
					w.buf.Store(int(f.b)+i, v)
				}
			} else {
				// Put raced the target's window allocation (or was
				// corrupted): dropped, like any lost frame.
				t.m.TransportEvict()
			}
		case frFlag:
			t.board.setRemote(int(f.src), f.a == 1, int64(f.b))
		case frDead:
			// A dead mark about ourselves is necessarily stale — we are
			// alive to read it. It happens after a restart: the gossip
			// frame sat in a peer's control outbox while we were down and
			// flushes on reconnect. Honoring it would re-broadcast our
			// own death and undo the hello-driven revive.
			if int(f.a) != t.rank {
				t.board.MarkDead(int(f.a))
			}
		case frHeartbeat:
			t.handleHeartbeat(p, f)
		case frHello:
			// Liveness already refreshed above; learn the peer's wire
			// version if the hello carries one.
			if f.a >= hbVersion {
				p.verOK.Store(true)
			}
		}
	}
}

// handleHeartbeat processes one inbound keepalive. Version-0 frames
// (empty payload, a=0) are pure liveness — already refreshed by the
// caller. Version-1 frames are timing probes: a ping is turned around
// on the control lane as an echo, and a completed echo yields one RTT
// and clock-offset sample for the link.
func (t *Transport) handleHeartbeat(p *peer, f *frame) {
	if f.a < hbVersion {
		return
	}
	p.verOK.Store(true)
	switch f.b {
	case hbPing:
		if len(f.payload) < 1 {
			return
		}
		echo := &frame{typ: frHeartbeat, src: int32(t.rank), a: hbVersion, b: hbEcho,
			payload: []float64{f.payload[0], t.mono()}}
		p.out.push(echo, true)
	case hbEcho:
		if len(f.payload) < 2 {
			return
		}
		t1, t2, t4 := f.payload[0], f.payload[1], t.mono()
		if t4 < t1 {
			return
		}
		p.est.AddPingEcho(t1, t2, t4)
		p.rtt.Observe((t4 - t1) / 1e9)
		p.wm.ObserveRTT((t4 - t1) / 1e9)
		if off, ok := p.est.OffsetNs(); ok {
			p.wm.SetClockOffset(off / 1e9)
		}
	}
}

// observeDelay folds one stamped inbound frame into the link's one-way
// delay histogram: the stamp is the sender's monotonic send time, so
// delay = (local arrival rebased onto the sender's clock) - stamp.
// Without an offset estimate yet, the sample is skipped rather than
// polluted with raw epoch skew.
func (t *Transport) observeDelay(p *peer, stamp float64) {
	off, ok := p.est.OffsetNs()
	if !ok {
		return
	}
	d := (t.mono() + off) - stamp
	if d < 0 {
		d = 0
	}
	p.delay.Observe(d / 1e9)
	p.wm.ObserveDelay(d / 1e9)
}

// writerBatchBytes caps how much a writer serializes before forcing a
// socket write. Batching matters: an asynchronous rank can refresh its
// put slots hundreds of thousands of times per second, and one write
// syscall per frame would burn the CPU the solver needs.
const writerBatchBytes = 32 << 10

// writerLoop owns one peer's outbound side: it pops frames, applies
// wire faults to data-class traffic, serializes batches into single
// socket writes, and (for dialer-owned links) establishes and
// re-establishes the connection with bounded backoff.
//
// A batch that fails to write is lost whole — the wire is lossy by
// design; data traffic tolerates it and control traffic heals by
// re-announcement on reconnect.
func (t *Transport) writerLoop(p *peer) {
	defer t.wg.Done()
	var buf []byte
	var lens []int
	flush := func() {
		if len(buf) == 0 {
			return
		}
		if conn := t.connFor(p); conn != nil {
			if _, err := conn.Write(buf); err != nil {
				p.clearConn(conn)
			} else {
				for _, n := range lens {
					t.m.TransportTx(n)
				}
			}
		}
		buf, lens = buf[:0], lens[:0]
	}
	add := func(f *frame, stamp float64) {
		pre := len(buf)
		// Stamp data-class frames to v1 peers with their wire-entry
		// instant — the stamp lives in the wire image, never in the
		// frame, so a Dup fate re-serializing the same *frame stays
		// race-free and each copy carries its own send instant.
		if p.verOK.Load() && (f.typ == frPut || (f.typ == frData && f.a >= 0)) {
			buf = appendFrameStamp(buf, f, stamp, true)
		} else {
			buf = appendFrame(buf, f)
		}
		lens = append(lens, len(buf)-pre)
	}
	for {
		f, ok := p.out.pop(t.closed)
		if !ok {
			flush()
			return
		}
		for {
			// Wire faults apply to user-tag data and put frames only.
			// The stamp is taken BEFORE the injected delay: the injector
			// emulates a slow wire, and a real slow wire shows up in the
			// receiver's measured one-way delay — that is what lets the
			// measured distribution be compared against the configured
			// one (see the delay test and DESIGN.md).
			faultable := p.inj != nil &&
				(f.typ == frPut || (f.typ == frData && f.a >= 0))
			stamp := t.mono()
			if faultable {
				if d := p.inj.IterDelay(); d > 0 {
					// A delayed frame delays the frames behind it too —
					// that is what an in-order byte stream does.
					flush()
					t.m.FaultDelay()
					time.Sleep(d)
				}
				switch p.inj.SendFate(p.rank) {
				case fault.Drop:
					t.m.FaultDrop()
					p.wm.Drop()
					p.drops.Add(1)
				case fault.Dup:
					t.m.FaultDup()
					add(f, stamp)
					add(f, stamp)
					if p.held != nil {
						add(p.held, p.heldStamp)
						p.held = nil
					}
				case fault.Reorder:
					// Hold the frame back until the next data frame on
					// this link overtakes it; its stamp stays its original
					// wire-entry instant, so the holdback reads as extra
					// measured delay, exactly like real reordering.
					t.m.FaultReorder()
					if p.held != nil {
						add(p.held, p.heldStamp)
					}
					p.held, p.heldStamp = f, stamp
				default:
					add(f, stamp)
					if p.held != nil {
						add(p.held, p.heldStamp)
						p.held = nil
					}
				}
			} else {
				add(f, stamp)
			}
			if len(buf) >= writerBatchBytes {
				flush()
			}
			if f, ok = p.out.tryPop(); !ok {
				break
			}
		}
		flush()
	}
}

// connFor returns the peer's live connection, dialing (with bounded
// backoff, then slow background redial) when this side owns the link.
// Returns nil only when the transport is closed or the peer is
// unreachable right now.
func (t *Transport) connFor(p *peer) net.Conn {
	if c := p.getConn(); c != nil {
		return c
	}
	if !p.dialer {
		// Acceptor side: wait briefly for the peer to redial us; frames
		// queued meanwhile stay in the outbox.
		select {
		case <-p.connCh:
			return p.getConn()
		case <-t.closed:
			return nil
		case <-time.After(50 * time.Millisecond):
			return nil
		}
	}
	return t.dialPeer(p)
}

// dialPeer establishes the connection to a lower-ranked peer: bounded
// exponential backoff first, then — after marking the peer dead — a
// slow background probe that keeps the door open for a restarted
// process to revive.
func (t *Transport) dialPeer(p *peer) net.Conn {
	retry := DefaultDialRetry()
	if t.cfg.DialRetry != nil {
		retry = *t.cfg.DialRetry
	}
	attempt := 0
	for {
		select {
		case <-t.closed:
			return nil
		default:
		}
		conn, err := net.DialTimeout("tcp", p.addr, dialTimeout)
		if err == nil {
			// Introduce ourselves before the conn is trusted with
			// traffic; the hello is what keys the acceptor's peer slot.
			hello := appendFrame(nil, &frame{typ: frHello, src: int32(t.rank), a: hbVersion})
			if _, werr := conn.Write(hello); werr != nil {
				conn.Close()
			} else {
				wasConnected := p.everConn.Swap(true)
				p.lastSeen.Store(time.Now().UnixNano())
				p.setConn(conn)
				if t.board.IsDead(p.rank) {
					t.board.Revive(p.rank)
				}
				if wasConnected {
					t.m.TransportReconnect()
					p.wm.Reconnect()
					p.reconnects.Add(1)
				}
				t.board.announce()
				t.wg.Add(1)
				go t.readerLoop(p, conn)
				return conn
			}
		}
		if retry.Exhausted(attempt) {
			// Retry budget spent: declare the peer dead so the solver
			// degrades, then keep probing slowly — a restarted peer
			// revives on the next successful dial.
			t.board.MarkDead(p.rank)
			select {
			case <-t.closed:
				return nil
			case <-time.After(redialEvery):
			}
			continue
		}
		t.m.TransportRetry()
		select {
		case <-t.closed:
			return nil
		case <-time.After(retry.Backoff(attempt)):
		}
		attempt++
	}
}

// heartbeatLoop paces keepalives and turns heartbeat silence into dead
// marks. Revival is NOT heartbeat-driven: a dead mark clears only on a
// fresh hello (or successful dial), so a crash-injected rank whose
// transport still breathes stays dead until it deliberately rejoins.
func (t *Transport) heartbeatLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for _, p := range t.peers {
			if p == nil {
				continue
			}
			// Each keepalive is a v1 timing probe: [t1] stamped at push.
			// pushHeartbeat coalesces, so a backed-up link keeps at most
			// one pending ping (its slightly stale t1 inflates that RTT
			// sample; the estimator's lowest-RTT filter sheds it).
			p.out.pushHeartbeat(&frame{typ: frHeartbeat, src: int32(t.rank),
				a: hbVersion, b: hbPing, payload: []float64{t.mono()}})
			c, pu, d := p.out.depths()
			p.wm.SetOutboxDepths(c, pu, d)
			if now-p.lastSeen.Load() > int64(t.cfg.PeerTimeout) && !t.board.IsDead(p.rank) {
				t.board.MarkDead(p.rank)
			}
		}
	}
}

// flagLoop re-announces this rank's termination flag every
// flagRebroadcast, for as long as the transport lives. Driving this
// from the transport rather than from Board.Set keeps the gossip
// flowing while the rank is outside its solve loop — a root waiting in
// the gather/decide exchange would otherwise go silent, and a peer that
// reset its board just after the last transition frame landed would
// wait out its whole network deadline for a flag that never comes
// again.
func (t *Transport) flagLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(flagRebroadcast)
	defer ticker.Stop()
	for {
		select {
		case <-t.closed:
			return
		case <-ticker.C:
			t.board.announce()
		}
	}
}
