package tcptransport

// Wire-measurement coverage: the measured one-way delay histogram must
// agree with the fault injector's configured Pareto when the injector
// IS the wire (loopback transit is microseconds, the injected sleeps
// are milliseconds), and the defensive heartbeat payload cap must
// reject oversized control frames before they allocate.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestHeartbeatPayloadCapRejected(t *testing.T) {
	hdr := make([]byte, headerLen)
	ok := frame{typ: frHeartbeat, src: 0, payload: make([]float64, maxHeartbeatWords)}
	if _, err := readFrame(bytes.NewReader(appendFrame(nil, &ok)), hdr); err != nil {
		t.Fatalf("heartbeat at the cap rejected: %v", err)
	}
	big := frame{typ: frHeartbeat, src: 0, payload: make([]float64, maxHeartbeatWords+1)}
	if _, err := readFrame(bytes.NewReader(appendFrame(nil, &big)), hdr); err == nil {
		t.Fatal("heartbeat above the payload cap accepted")
	}
}

// TestMeasuredDelayMatchesConfiguredPareto drives data frames through
// a link whose only latency is the injected truncated Pareto and
// checks the receiver's measured one-way quantiles against the plan's
// analytic ones. The histogram buckets are factor-4 and Quantile
// returns a bucket's upper bound, so the comparison allows one bucket
// of slack each way — what it actually pins down is that the stamp is
// taken at wire entry (before the injected sleep): with the stamp
// taken after the sleep the measured quantiles collapse to the
// microsecond floor and fail the lower bound by orders of magnitude.
func TestMeasuredDelayMatchesConfiguredPareto(t *testing.T) {
	addrs := testAddrs(t, 2)
	plan := &fault.Plan{Seed: 5, DelayMean: 2 * time.Millisecond}
	var trs [2]*Transport
	for rank := 0; rank < 2; rank++ {
		tr, err := Dial(Config{
			Rank: rank, Addrs: addrs, Metrics: testMetrics(),
			WireFault:      plan,
			HeartbeatEvery: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		defer tr.Close()
		trs[rank] = tr
	}
	if err := trs[0].WaitReady(10 * time.Second); err != nil {
		t.Fatalf("mesh: %v", err)
	}
	// Delay samples are only folded in once the receiver has a clock
	// offset estimate for the sender; wait for the first heartbeat
	// exchanges before generating traffic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := trs[1].OffsetTo(0); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("receiver never estimated a clock offset to the sender")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// One frame in flight at a time: a burst would overflow the lossy
	// outbox while the writer sleeps out the injected delays, and the
	// evicted frames' draws would go missing from the histogram.
	const k = 150
	for i := 0; i < k; i++ {
		trs[0].Isend(1, 0, []float64{float64(i), 0, 0, 0})
		if _, err := trs[1].RecvTimeout(0, 0, 10*time.Second); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}

	st, ok := trs[1].PeerStats(0)
	if !ok {
		t.Fatal("no peer stats for rank 0")
	}
	if st.DelaySamples < 100 {
		t.Fatalf("only %d delay samples measured, want >= 100", st.DelaySamples)
	}
	check := func(name string, measuredNs float64, q float64) {
		want := float64(plan.DelayQuantile(q))
		// One factor-4 bucket of slack up (upper-bound quantiles), a
		// little more than one down (sample scatter near a boundary).
		lo, hi := want/6, want*6
		if measuredNs < lo || measuredNs > hi {
			t.Errorf("measured %s %.3gms outside [%.3g, %.3g]ms of configured %.3gms",
				name, measuredNs/1e6, lo/1e6, hi/1e6, want/1e6)
		}
	}
	check("p50", st.DelayP50Ns, 0.50)
	check("p95", st.DelayP95Ns, 0.95)
	if st.DelayP95Ns < st.DelayP50Ns {
		t.Errorf("delay p95 %.3gms below p50 %.3gms", st.DelayP95Ns/1e6, st.DelayP50Ns/1e6)
	}
}
