// Package tcptransport is the multi-process backend of internal/dist:
// the same Comm surface the in-process world provides — mailboxes,
// RMA-style windows, collectives, the termination/liveness board —
// carried over length-prefixed frames on real TCP sockets, so the
// asynchronous Jacobi rank loop, its ghost exchanges, and its
// termination protocols run unchanged across OS processes.
//
// The robustness layer is the point: dials and reconnects retry with
// bounded exponential backoff (resilience.RetryPolicy), every blocking
// wire operation carries a deadline and returns a typed error,
// heartbeats feed the dead-rank board so termination degrades to the
// surviving block exactly as it does for simulated crashes, and a
// deterministic wire-fault mode drops/duplicates/reorders/delays real
// data frames from the same seeded PCG streams as internal/fault.
package tcptransport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame types. Control frames (hello, flag, dead, heartbeat) and
// protocol-tagged data frames are never wire-faulted; only user-tag
// data and put frames draw fates.
const (
	frHello     = 1 // handshake: src introduces itself on a new conn; a = wire version
	frData      = 2 // point-to-point message: a = tag
	frPut       = 3 // RMA put: a = window id, b = element offset
	frFlag      = 4 // termination flag: a = 0/1 (src's convergence), b = epoch
	frDead      = 5 // liveness: a = rank declared fail-stopped
	frHeartbeat = 6 // keepalive; a = heartbeat version, b = kind (ping/echo)
)

// Heartbeat versioning. Version 0 heartbeats (the original wire format)
// carry an empty payload and no kind; version 1 heartbeats are timing
// probes: a ping carries [t1] (the sender's monotonic ns at send) and
// the echo replies [t1, t2] (t2 = the echoer's monotonic ns when it
// turned the ping around), which is enough for the NTP-style midpoint
// offset and RTT estimates (t3 ~ t2: the echo is stamped once, at
// turnaround, and the control lane sends it promptly). A v0 peer
// ignores the payload and a v1 peer tolerates an empty one, so mixed
// worlds keep heartbeating.
const (
	hbVersion = 1 // heartbeat format we speak (frame.a)
	hbPing    = 0 // frame.b: timing probe carrying [t1]
	hbEcho    = 1 // frame.b: reply carrying [t1, t2]
)

// maxHeartbeatWords bounds a heartbeat payload defensively: timing
// probes need at most a few words, so anything larger is a corrupt or
// hostile frame and the connection is dropped rather than buffered.
const maxHeartbeatWords = 4

// Header flag bits (hdr[5]).
const (
	// flagStamped marks a data/put frame whose final payload word is a
	// send timestamp (monotonic ns since the sender's transport epoch,
	// as a float64) rather than solver data. The receiver strips it and
	// feeds the one-way delay histogram.
	flagStamped = 1 << 0
)

// frameMagic guards against cross-protocol connections; "AJF1" =
// asynchronous Jacobi framing, version 1.
var frameMagic = [4]byte{'A', 'J', 'F', '1'}

// headerLen is the fixed frame header size:
//
//	magic[4] type[1] flags[1] reserved[2] src[4] a[4] b[4] count[4]
//
// followed by count little-endian float64 payload words.
const headerLen = 24

// maxFrameWords caps a frame's payload so a corrupt length prefix
// cannot make the reader allocate gigabytes.
const maxFrameWords = 1 << 22 // 32 MiB of float64s

// frame is the in-memory form of one wire frame. stamp is receive-side
// only: readFrame strips a flagStamped trailing word into it (0 when
// the frame was unstamped).
type frame struct {
	typ     byte
	src     int32
	a, b    int32
	payload []float64
	stamp   float64
}

// appendFrame serializes f onto buf and returns the extended slice
// (writer-side, reusing the writer's scratch buffer).
func appendFrame(buf []byte, f *frame) []byte {
	return appendFrameStamp(buf, f, 0, false)
}

// appendFrameStamp serializes f with an optional trailing send
// timestamp. The stamp never mutates f — frames may be serialized more
// than once (a Dup fate re-appends the same *frame) — it is written
// straight into the wire image: flagStamped in the header, count+1, and
// the stamp as the final payload word.
func appendFrameStamp(buf []byte, f *frame, stampNs float64, stamped bool) []byte {
	var hdr [headerLen]byte
	copy(hdr[0:4], frameMagic[:])
	hdr[4] = f.typ
	count := len(f.payload)
	if stamped {
		hdr[5] = flagStamped
		count++
	}
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(f.src))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(f.a))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(f.b))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(count))
	buf = append(buf, hdr[:]...)
	for _, v := range f.payload {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		buf = append(buf, w[:]...)
	}
	if stamped {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(stampNs))
		buf = append(buf, w[:]...)
	}
	return buf
}

// readFrame reads one frame from r. The payload slice is freshly
// allocated (it is handed to mailboxes and windows, which own it).
func readFrame(r io.Reader, hdr []byte) (*frame, error) {
	if _, err := io.ReadFull(r, hdr[:headerLen]); err != nil {
		return nil, err
	}
	if [4]byte(hdr[0:4]) != frameMagic {
		return nil, fmt.Errorf("tcptransport: bad frame magic %q", hdr[0:4])
	}
	f := &frame{
		typ: hdr[4],
		src: int32(binary.LittleEndian.Uint32(hdr[8:12])),
		a:   int32(binary.LittleEndian.Uint32(hdr[12:16])),
		b:   int32(binary.LittleEndian.Uint32(hdr[16:20])),
	}
	count := binary.LittleEndian.Uint32(hdr[20:24])
	if count > maxFrameWords {
		return nil, fmt.Errorf("tcptransport: frame payload %d words exceeds cap", count)
	}
	if f.typ == frHeartbeat && count > maxHeartbeatWords {
		return nil, fmt.Errorf("tcptransport: heartbeat payload %d words exceeds cap %d", count, maxHeartbeatWords)
	}
	stamped := hdr[5]&flagStamped != 0
	if stamped && count == 0 {
		return nil, fmt.Errorf("tcptransport: stamped frame with empty payload")
	}
	if count == 0 {
		return f, nil
	}
	raw := make([]byte, 8*count)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, err
	}
	f.payload = make([]float64, count)
	for i := range f.payload {
		f.payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	if stamped {
		f.stamp = f.payload[count-1]
		f.payload = f.payload[:count-1]
	}
	return f, nil
}

// wireLen is the encoded size of f in bytes.
func (f *frame) wireLen() int { return headerLen + 8*len(f.payload) }
