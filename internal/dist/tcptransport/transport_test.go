package tcptransport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/resilience"
)

func testAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func testMetrics() *obs.SolverMetrics { return obs.NewSolverMetrics(obs.NewRegistry()) }

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{typ: frHello, src: 3},
		{typ: frData, src: 1, a: -3, payload: []float64{1.5}},
		{typ: frData, src: 0, a: 7, payload: []float64{0.25, -2, 1e300}},
		{typ: frPut, src: 2, a: 0, b: 128, payload: make([]float64, 1000)},
		{typ: frFlag, src: 1, a: 1},
		{typ: frDead, src: 0, a: 2},
		{typ: frHeartbeat, src: 3},
	}
	var buf bytes.Buffer
	for i := range cases {
		buf.Write(appendFrame(nil, &cases[i]))
	}
	hdr := make([]byte, headerLen)
	for i := range cases {
		got, err := readFrame(&buf, hdr)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		want := &cases[i]
		if got.typ != want.typ || got.src != want.src || got.a != want.a || got.b != want.b {
			t.Fatalf("frame %d header: got %+v want %+v", i, got, want)
		}
		if len(got.payload) != len(want.payload) {
			t.Fatalf("frame %d payload len: got %d want %d", i, len(got.payload), len(want.payload))
		}
		for j := range got.payload {
			if got.payload[j] != want.payload[j] {
				t.Fatalf("frame %d payload[%d]: got %v want %v", i, j, got.payload[j], want.payload[j])
			}
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	hdr := make([]byte, headerLen)
	if _, err := readFrame(bytes.NewReader([]byte("not a frame, definitely")), hdr); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Oversized count must be rejected before any giant allocation.
	f := frame{typ: frData, src: 0, a: 0, payload: []float64{1}}
	raw := appendFrame(nil, &f)
	raw[20], raw[21], raw[22], raw[23] = 0xff, 0xff, 0xff, 0x7f
	if _, err := readFrame(bytes.NewReader(raw), hdr); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestDialRetryLateListener starts the dialing (higher) rank before the
// listening (lower) rank exists: the bounded-backoff retry loop must
// absorb the refused connections and complete the mesh once the peer
// appears, counting the failed attempts on the transport retry metric.
func TestDialRetryLateListener(t *testing.T) {
	addrs := testAddrs(t, 2)
	m1 := testMetrics()

	t1, err := Dial(Config{Rank: 1, Addrs: addrs, Metrics: m1})
	if err != nil {
		t.Fatalf("rank 1 dial: %v", err)
	}
	defer t1.Close()

	time.Sleep(150 * time.Millisecond) // let a few dial attempts fail

	t0, err := Dial(Config{Rank: 0, Addrs: addrs, Metrics: testMetrics()})
	if err != nil {
		t.Fatalf("rank 0 dial: %v", err)
	}
	defer t0.Close()

	if err := t1.WaitReady(10 * time.Second); err != nil {
		t.Fatalf("rank 1 never completed the mesh: %v", err)
	}
	if err := t0.WaitReady(10 * time.Second); err != nil {
		t.Fatalf("rank 0 never completed the mesh: %v", err)
	}
	if got := m1.TransportRetryCount(); got == 0 {
		t.Error("no dial retries recorded despite the late listener")
	}

	// The mesh works end to end after the retries.
	t1.Isend(0, 5, []float64{42})
	got, err := t0.RecvTimeout(1, 5, 5*time.Second)
	if err != nil || got[0] != 42 {
		t.Fatalf("post-retry delivery: %v, %v", got, err)
	}
}

// TestHeartbeatDeathAndHelloRevive kills a peer process (modeled by
// closing its transport), waits for heartbeat silence to cross
// PeerTimeout so the survivor marks it dead, then restarts it on the
// same address and checks the hello handshake revives it on the board.
func TestHeartbeatDeathAndHelloRevive(t *testing.T) {
	addrs := testAddrs(t, 2)
	cfg := func(rank int) Config {
		return Config{
			Rank: rank, Addrs: addrs, Metrics: testMetrics(),
			HeartbeatEvery: 20 * time.Millisecond,
			PeerTimeout:    200 * time.Millisecond,
		}
	}
	t0, err := Dial(cfg(0))
	if err != nil {
		t.Fatalf("rank 0: %v", err)
	}
	defer t0.Close()
	t1, err := Dial(cfg(1))
	if err != nil {
		t.Fatalf("rank 1: %v", err)
	}
	if err := t0.WaitReady(10 * time.Second); err != nil {
		t.Fatalf("mesh: %v", err)
	}

	t1.Close() // rank 1 "dies"

	deadline := time.Now().Add(10 * time.Second)
	for !t0.Board().IsDead(1) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !t0.Board().IsDead(1) {
		t.Fatal("rank 1 never marked dead after heartbeat silence")
	}

	// Restart rank 1; its hello (it is the dialer) must revive it.
	t1b, err := Dial(cfg(1))
	if err != nil {
		t.Fatalf("rank 1 restart: %v", err)
	}
	defer t1b.Close()
	deadline = time.Now().Add(10 * time.Second)
	for t0.Board().IsDead(1) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if t0.Board().IsDead(1) {
		t.Fatal("rank 1 not revived after reconnect hello")
	}

	// Traffic flows again on the new connection.
	t1b.Isend(0, 9, []float64{7})
	got, err := t0.RecvTimeout(1, 9, 5*time.Second)
	if err != nil || got[0] != 7 {
		t.Fatalf("post-revive delivery: %v, %v", got, err)
	}
}

// TestBoardFlagReplication checks the wire board: a flag set on one
// rank becomes visible to Check on the other, and a full board latches.
func TestBoardFlagReplication(t *testing.T) {
	addrs := testAddrs(t, 2)
	var trs [2]*Transport
	for rank := 0; rank < 2; rank++ {
		tr, err := Dial(Config{Rank: rank, Addrs: addrs, Metrics: testMetrics()})
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		defer tr.Close()
		trs[rank] = tr
	}
	if err := trs[0].WaitReady(10 * time.Second); err != nil {
		t.Fatalf("mesh: %v", err)
	}
	trs[0].Board().Set(0, true)
	trs[1].Board().Set(1, true)
	for rank := 0; rank < 2; rank++ {
		deadline := time.Now().Add(5 * time.Second)
		for !trs[rank].Board().Check() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if !trs[rank].Board().Check() {
			t.Fatalf("rank %d: board never latched after both flags raised", rank)
		}
	}
}

// TestWireFaultDropIsDeterministicAndScoped checks that wire faults
// (a) hit only data-plane frames — the control plane stays reliable so
// barriers still complete under 100% data drop — and (b) replay
// identically for the same seed: two runs deliver the same subset.
func TestWireFaultDropIsDeterministicAndScoped(t *testing.T) {
	run := func(seed uint64, drop float64) []float64 {
		addrs := testAddrs(t, 2)
		plan := &fault.Plan{Seed: seed, Drop: drop}
		var trs [2]*Transport
		for rank := 0; rank < 2; rank++ {
			tr, err := Dial(Config{
				Rank: rank, Addrs: addrs, Metrics: testMetrics(),
				WireFault: plan,
			})
			if err != nil {
				t.Fatalf("rank %d: %v", rank, err)
			}
			trs[rank] = tr
		}
		defer trs[0].Close()
		defer trs[1].Close()
		if err := trs[0].WaitReady(10 * time.Second); err != nil {
			t.Fatalf("mesh: %v", err)
		}
		const k = 60
		for i := 0; i < k; i++ {
			trs[0].Isend(1, 0, []float64{float64(i)})
		}
		// Control-plane barrier must complete even under total data
		// drop — faults are scoped to user-tag and put frames only.
		var wg sync.WaitGroup
		wg.Add(2)
		for rank := 0; rank < 2; rank++ {
			go func(rank int) { defer wg.Done(); trs[rank].Barrier() }(rank)
		}
		wg.Wait()
		var got []float64
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if msg, ok := trs[1].TryRecv(0, 0); ok {
				got = append(got, msg[0])
				deadline = time.Now().Add(250 * time.Millisecond)
				continue
			}
			time.Sleep(2 * time.Millisecond)
		}
		return got
	}

	if got := run(7, 1.0); len(got) != 0 {
		t.Fatalf("total drop delivered %d data messages: %v", len(got), got)
	}
	a := run(99, 0.5)
	b := run(99, 0.5)
	if len(a) == 0 || len(a) == 60 {
		t.Fatalf("50%% drop delivered %d/60 — fault injection inert or total", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different delivery at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestForLinkStreamsIndependent pins the per-link fate streams: the
// same plan replays identically per directed link, and distinct links
// draw from distinct streams.
func TestForLinkStreamsIndependent(t *testing.T) {
	plan := &fault.Plan{Seed: 11, Drop: 0.3, Dup: 0.2, Reorder: 0.1}
	fates := func(src, dst int) []fault.Fate {
		in := plan.ForLink(src, dst)
		out := make([]fault.Fate, 200)
		for i := range out {
			out[i] = in.SendFate(dst)
		}
		return out
	}
	a, b := fates(0, 1), fates(0, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link (0,1) not replayable at draw %d", i)
		}
	}
	c := fates(1, 0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("links (0,1) and (1,0) share a fate stream")
	}
}

// TestRetryPolicyExhaustionMarksDead: with an address nobody ever
// listens on and a tiny retry budget, the dialer must exhaust its
// policy and mark the peer dead rather than block forever.
func TestRetryPolicyExhaustionMarksDead(t *testing.T) {
	addrs := testAddrs(t, 2)
	tr, err := Dial(Config{
		Rank: 1, Addrs: addrs, Metrics: testMetrics(),
		DialRetry: &resilience.RetryPolicy{MaxAttempts: 3, Base: 5 * time.Millisecond, Max: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()
	// Force traffic so the writer loop needs a connection.
	tr.Isend(0, 0, []float64{1})
	deadline := time.Now().Add(10 * time.Second)
	for !tr.Board().IsDead(0) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !tr.Board().IsDead(0) {
		t.Fatal("peer with no listener never marked dead after retry exhaustion")
	}
}

// TestRecvTimeoutTyped: a blocking receive with nothing inbound must
// return dist.ErrTimeout, not hang.
func TestRecvTimeoutTyped(t *testing.T) {
	addrs := testAddrs(t, 2)
	var trs [2]*Transport
	for rank := 0; rank < 2; rank++ {
		tr, err := Dial(Config{Rank: rank, Addrs: addrs, Metrics: testMetrics()})
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		defer tr.Close()
		trs[rank] = tr
	}
	if err := trs[0].WaitReady(10 * time.Second); err != nil {
		t.Fatalf("mesh: %v", err)
	}
	_, err := trs[0].RecvTimeout(1, 3, 100*time.Millisecond)
	if !errors.Is(err, dist.ErrTimeout) {
		t.Fatalf("want dist.ErrTimeout, got %v", err)
	}
	var m = trs[0].m
	if got := m.TransportTimeoutCount(); got == 0 {
		t.Error("timeout not counted on transport metrics")
	}
}
