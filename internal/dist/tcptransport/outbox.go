package tcptransport

import "sync"

// outbox is one peer's outbound frame queue, in three lanes:
//
//   - control: never dropped (handshakes, flags, dead marks,
//     collective and gather/decide traffic). Heartbeats coalesce — at
//     most one is ever queued.
//   - puts: newest-wins slots keyed by (window, offset). A put
//     superseded before it reaches the wire is simply replaced — the
//     receiver would have overwritten it anyway, so the wire carries
//     the freshest value at whatever rate it can drain instead of a
//     backlog of stale ones. This is what keeps a fast rank from
//     flooding the link (and the CPU) with puts a slow peer will
//     never read.
//   - data: bounded evict-oldest FIFO for user-tag messages (eager
//     ghost exchanges) — newest-wins traffic by construction, so
//     shedding the oldest under backpressure costs nothing the
//     receiver would have kept.
type outbox struct {
	mu        sync.Mutex
	control   []*frame
	puts      map[uint64]*frame
	putOrder  []uint64
	data      []*frame
	dataCap   int
	hbPending bool
	avail     chan struct{}
	onEvict   func()
}

func newOutbox(dataCap int, onEvict func()) *outbox {
	return &outbox{
		dataCap: dataCap,
		puts:    make(map[uint64]*frame),
		avail:   make(chan struct{}, 1),
		onEvict: onEvict,
	}
}

func putKey(f *frame) uint64 {
	return uint64(uint32(f.a))<<32 | uint64(uint32(f.b))
}

func (o *outbox) signal() {
	select {
	case o.avail <- struct{}{}:
	default:
	}
}

// push enqueues f on the lane its type selects.
func (o *outbox) push(f *frame, control bool) {
	o.mu.Lock()
	switch {
	case control:
		o.control = append(o.control, f)
	case f.typ == frPut:
		k := putKey(f)
		if _, pending := o.puts[k]; pending {
			// Supersede in place: the slot is already queued, so the
			// writer will pick up the fresh frame when it gets there.
			o.puts[k] = f
			o.mu.Unlock()
			return
		}
		o.puts[k] = f
		o.putOrder = append(o.putOrder, k)
	default:
		evicted := false
		if o.dataCap > 0 && len(o.data) >= o.dataCap {
			o.data = o.data[1:]
			evicted = true
		}
		o.data = append(o.data, f)
		if evicted && o.onEvict != nil {
			o.mu.Unlock()
			o.onEvict()
			o.signal()
			return
		}
	}
	o.mu.Unlock()
	o.signal()
}

// pushHeartbeat enqueues a keepalive unless one is already pending.
func (o *outbox) pushHeartbeat(f *frame) {
	o.mu.Lock()
	if o.hbPending {
		o.mu.Unlock()
		return
	}
	o.hbPending = true
	o.control = append(o.control, f)
	o.mu.Unlock()
	o.signal()
}

// next pops the highest-priority queued frame; caller holds o.mu.
func (o *outbox) next() *frame {
	if len(o.control) > 0 {
		f := o.control[0]
		o.control = o.control[1:]
		if f.typ == frHeartbeat {
			o.hbPending = false
		}
		return f
	}
	if len(o.putOrder) > 0 {
		k := o.putOrder[0]
		o.putOrder = o.putOrder[1:]
		f := o.puts[k]
		delete(o.puts, k)
		return f
	}
	if len(o.data) > 0 {
		f := o.data[0]
		o.data = o.data[1:]
		return f
	}
	return nil
}

// pop blocks for the next frame — control lane first, then put slots,
// then data — until the closed channel fires (ok=false).
func (o *outbox) pop(closed <-chan struct{}) (*frame, bool) {
	for {
		o.mu.Lock()
		f := o.next()
		o.mu.Unlock()
		if f != nil {
			return f, true
		}
		select {
		case <-o.avail:
		case <-closed:
			return nil, false
		}
	}
}

// tryPop is pop without the wait, for batching writers.
func (o *outbox) tryPop() (*frame, bool) {
	o.mu.Lock()
	f := o.next()
	o.mu.Unlock()
	return f, f != nil
}

// len reports queued frames across all lanes.
func (o *outbox) len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.control) + len(o.putOrder) + len(o.data)
}

// depths reports the per-lane queue depths, for outbox depth gauges.
func (o *outbox) depths() (control, puts, data int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.control), len(o.putOrder), len(o.data)
}
