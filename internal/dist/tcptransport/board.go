package tcptransport

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// flagRebroadcast is how often the transport re-announces the local
// flag. The in-process board is shared memory — a flag raised once is
// visible forever — but over the wire a peer that reset its board for a
// new pass, or restarted from a checkpoint, has lost our transition
// frame; periodic re-announcement heals both races without any
// request/reply machinery. The re-announcement is driven by the
// transport's own ticker, not by Set calls, so it keeps flowing while
// this rank sits outside its solve loop (e.g. the root waiting in the
// gather/decide exchange) — otherwise a peer that missed the last
// transition would wait in silence until its own network deadline.
const flagRebroadcast = 50 * time.Millisecond

// wireBoard is the TCP backend's termination flag board and fail-stop
// failure detector (dist.Board): local atomics mirrored across the
// world by frFlag/frDead control frames. Flag transitions of the owning
// rank broadcast immediately (plus the periodic re-announcement);
// remote transitions land via the reader goroutines. Dead marks come
// from three sources — a frDead broadcast (a rank announcing its own
// injected crash, or a peer's verdict), heartbeat silence past the peer
// timeout, and a reconnect retry budget exhausting — and are cleared
// only by a revive (hello handshake from a restarted peer).
//
// Flags are epoch-scoped. The epoch counts recheck-and-resume passes,
// every flag frame carries it, and each flag slot remembers the epoch
// it was installed at: a flag only counts toward the latch while its
// epoch matches the board's. This is what makes the board safe across
// pass boundaries over an asynchronous wire — a flag-true frame from
// the pass that just ended cannot latch the new pass (it reads as
// down), while a flag that arrived EARLY, from a peer that already
// entered the next pass, survives this rank's own Reset instead of
// being wiped and re-awaited.
type wireBoard struct {
	self int
	// flags[q] packs (epoch<<1 | converged): the flag value and the
	// pass epoch it belongs to, swapped as one word so a reader never
	// sees a value paired with the wrong pass.
	flags []atomic.Int64
	dead  []atomic.Bool
	nDead atomic.Int64
	done  atomic.Bool
	// epoch is the pass this board is currently deciding. It advances
	// at Reset, and fast-forwards when a flag frame from a later epoch
	// arrives — that means this rank is behind (it missed a decide,
	// e.g. it just restarted from a checkpoint) and the world has moved
	// on without it.
	epoch atomic.Int64
	// latchEpoch is the epoch the decision latch last fired at. Reset
	// advances the epoch to latchEpoch+1 rather than blindly +1:
	// if gossip already fast-forwarded the board into the new pass,
	// Reset must not advance it a second time.
	latchEpoch atomic.Int64
	// lastReset is the epoch the previous Reset left the board at — the
	// floor for the next Reset, covering passes that end without a
	// local latch (the root's degraded timeout decisions).
	lastReset atomic.Int64
	// broadcast sends a control frame to every connected peer; wired to
	// the transport at construction.
	broadcast func(f *frame)
	m         *obs.SolverMetrics
}

func newWireBoard(self, size int, m *obs.SolverMetrics, broadcast func(*frame)) *wireBoard {
	return &wireBoard{
		self:      self,
		flags:     make([]atomic.Int64, size),
		dead:      make([]atomic.Bool, size),
		broadcast: broadcast,
		m:         m,
	}
}

// flagWord packs a flag and its epoch into one atomic word.
func flagWord(ep int64, converged bool) int64 {
	w := ep << 1
	if converged {
		w |= 1
	}
	return w
}

// up reports whether rank's flag is raised for epoch ep.
func (b *wireBoard) up(rank int, ep int64) bool {
	w := b.flags[rank].Load()
	return w>>1 == ep && w&1 == 1
}

// Set publishes this rank's convergence state for the current pass: the
// local mirror flips and the transition crosses the wire immediately
// (the transport's ticker handles the periodic re-announcement). Only
// rank == self makes sense here (remote flags arrive via setRemote);
// the signature is the Board interface's.
func (b *wireBoard) Set(rank int, converged bool) bool {
	ep := b.epoch.Load()
	old := b.flags[rank].Swap(flagWord(ep, converged))
	was := old>>1 == ep && old&1 == 1
	changed := was != converged
	if changed {
		if converged {
			b.m.TermFlagRaise()
		} else {
			b.m.TermFlagLower()
		}
		if rank == b.self {
			b.announce()
		}
	}
	return changed
}

// announce broadcasts this rank's flag state for the current pass
// epoch. A flag installed in an earlier pass reads as down — "not yet
// converged in this pass" is exactly what the peers must hear.
func (b *wireBoard) announce() {
	ep := b.epoch.Load()
	a := int32(0)
	if b.up(b.self, ep) {
		a = 1
	}
	b.broadcast(&frame{typ: frFlag, src: int32(b.self), a: a, b: int32(ep)})
}

// setRemote installs a peer's flag as received off the wire (no
// rebroadcast, no transition counting — the owner already counted).
// Flags from a past epoch are dropped; a future epoch fast-forwards
// this rank's own epoch first, then installs.
func (b *wireBoard) setRemote(rank int, converged bool, ep int64) {
	if rank < 0 || rank >= len(b.flags) || rank == b.self {
		return
	}
	for {
		cur := b.epoch.Load()
		if ep < cur {
			return // stale: from a pass that already ended
		}
		if ep == cur || b.epoch.CompareAndSwap(cur, ep) {
			b.flags[rank].Store(flagWord(ep, converged))
			return
		}
	}
}

// Check reports whether every live rank's flag is up for the current
// pass; the first observer latches the decision (Board).
func (b *wireBoard) Check() bool {
	if b.done.Load() {
		return true
	}
	ep := b.epoch.Load()
	for q := range b.flags {
		if !b.up(q, ep) && !b.dead[q].Load() {
			return false
		}
	}
	if !b.done.Swap(true) {
		b.latchEpoch.Store(ep)
		b.m.TermLatch()
		b.m.TermDecided()
	}
	return true
}

// MarkDead records rank's fail-stop and broadcasts the verdict so the
// whole world degrades together (Board). Transition-guarded, so the
// gossip converges instead of looping.
func (b *wireBoard) MarkDead(rank int) {
	if rank < 0 || rank >= len(b.dead) {
		return
	}
	if !b.dead[rank].Swap(true) {
		b.nDead.Add(1)
		b.m.TransportPeerDead()
		b.broadcast(&frame{typ: frDead, src: int32(b.self), a: int32(rank)})
	}
}

// Revive clears a dead mark — a restarted peer completed the hello
// handshake (Board).
func (b *wireBoard) Revive(rank int) {
	if rank < 0 || rank >= len(b.dead) {
		return
	}
	if b.dead[rank].Swap(false) {
		b.nDead.Add(-1)
		b.m.TransportRevive()
	}
}

// IsDead reports whether rank is currently declared dead (Board).
func (b *wireBoard) IsDead(rank int) bool {
	return rank >= 0 && rank < len(b.dead) && b.dead[rank].Load()
}

// AnyDead reports whether any rank is currently declared dead (Board).
func (b *wireBoard) AnyDead() bool { return b.nDead.Load() > 0 }

// Reset opens the next recheck-and-resume pass: the decision latch
// clears and the epoch advances to one past the pass that just decided
// — latchEpoch+1, floored by one past the previous Reset for passes
// that ended without a local latch. Dead marks survive (Board). Flags
// are NOT cleared: a slot whose epoch is now behind reads as down by
// itself, while a flag that already arrived for the new pass (from a
// peer that reset first) stays visible — wiping it would mean waiting
// out a re-announcement interval for information the board already
// had.
func (b *wireBoard) Reset() {
	next := b.latchEpoch.Load() + 1
	if floor := b.lastReset.Load() + 1; floor > next {
		next = floor
	}
	for {
		cur := b.epoch.Load()
		if cur >= next || b.epoch.CompareAndSwap(cur, next) {
			break
		}
	}
	b.lastReset.Store(b.epoch.Load())
	b.done.Store(false)
}
