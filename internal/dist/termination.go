package dist

// Distributed termination detection for the asynchronous solver.
//
// The paper terminates its asynchronous distributed runs after a fixed
// iteration count and explicitly leaves global residual-based
// termination "for future research" (Section VI). This file implements
// that future work with two classical schemes adapted to the RMA
// setting:
//
//   - FlagTree: a non-blocking emulation of the shared flag array of
//     the paper's shared-memory solver (Section V). Every rank owns one
//     slot of a global flag window; a rank raises its flag when its
//     local residual share is below its budget and keeps iterating
//     until it reads every flag up. Simple, but a rank that raises its
//     flag and later sees its residual grow (a neighbor was still
//     changing) can lower it again, so detection is of a *stable*
//     conjunction.
//
//   - DijkstraSafra: the classical token-ring termination detection
//     algorithm (Dijkstra-Feijen-van Gasteren). Rank 0 injects a white
//     token; a rank forwards the token only while locally converged,
//     colouring it black when it became unconverged since the last
//     visit. A white token returning to rank 0 after a full lap during
//     which rank 0 stayed converged detects stable global convergence.
//
// Both schemes detect the predicate "every rank's local residual share
// is under budget", which for the additive 1-norm implies the global
// relative residual is under the target. An RMA Put in flight exactly
// when the decision is taken can make detection marginally early (the
// full Safra message-counting machinery would close that window); the
// solver therefore always recomputes the final residual exactly, and
// tests assert the achieved tolerance, not just the detection.
// The flag boards and the decision latch are, in MPI terms, one-slot
// RMA windows — shared atomics here, like every window in this
// substrate.

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TerminationMode selects the asynchronous termination scheme.
type TerminationMode int

const (
	// FixedIterations is the paper's naive scheme: each rank stops
	// after MaxIters local iterations, no communication.
	FixedIterations TerminationMode = iota
	// FlagTree is the shared-flag-array emulation.
	FlagTree
	// DijkstraSafra is token-ring termination detection.
	DijkstraSafra
)

// String names the mode.
func (m TerminationMode) String() string {
	switch m {
	case FixedIterations:
		return "fixed-iterations"
	case FlagTree:
		return "flag-tree"
	case DijkstraSafra:
		return "dijkstra-safra"
	}
	return "unknown"
}

// flagBoard is the FlagTree state: one atomic flag per rank plus a
// global all-up latch. Once every flag is observed up simultaneously by
// any rank, the latch fixes the decision so late flag-lowering cannot
// retract a termination some rank already acted on (the standard
// "commit" step that makes the unstable flag array safe).
//
// The board doubles as a fail-stop failure detector for the fault
// substrate: a crashing rank marks itself dead before exiting, and the
// all-up test then skips dead ranks, so the surviving active block can
// still reach a decision instead of waiting forever on a flag that will
// never rise (the degradation Theorem 1's arbitrary-delay model
// permits — a crashed process is an infinitely delayed one).
type flagBoard struct {
	flags []atomic.Bool
	dead  []atomic.Bool
	nDead atomic.Int64
	done  atomic.Bool
	m     *obs.SolverMetrics // nil-safe transition counters
}

func newFlagBoard(p int, m *obs.SolverMetrics) *flagBoard {
	return &flagBoard{flags: make([]atomic.Bool, p), dead: make([]atomic.Bool, p), m: m}
}

// MarkDead records rank's fail-stop crash (Board).
func (fb *flagBoard) MarkDead(rank int) {
	if !fb.dead[rank].Swap(true) {
		fb.nDead.Add(1)
	}
}

// Revive clears a dead mark: a restarted peer has reconnected and
// re-entered the solve (Board).
func (fb *flagBoard) Revive(rank int) {
	if fb.dead[rank].Swap(false) {
		fb.nDead.Add(-1)
	}
}

// AnyDead reports whether any rank is currently declared dead (Board).
func (fb *flagBoard) AnyDead() bool { return fb.nDead.Load() > 0 }

// IsDead reports whether rank q has fail-stopped — the failure
// detector's read side, which survivors use to exclude dead ranks from
// sends and retransmissions (Board).
func (fb *flagBoard) IsDead(q int) bool { return fb.dead[q].Load() }

// Set publishes rank's local convergence state, counting raise/lower
// transitions. It reports whether the call changed the flag, so the
// caller can trace the transition on its own ring (Board).
func (fb *flagBoard) Set(rank int, converged bool) bool {
	if fb.flags[rank].Swap(converged) != converged {
		if converged {
			fb.m.TermFlagRaise()
		} else {
			fb.m.TermFlagLower()
		}
		return true
	}
	return false
}

// Reset clears the flags and the decision latch for the next
// recheck-and-resume pass; dead marks survive, because a crash outlives
// a pass boundary (Board).
func (fb *flagBoard) Reset() {
	for q := range fb.flags {
		fb.flags[q].Store(false)
	}
	fb.done.Store(false)
}

// Check returns true once all live ranks' flags have been seen up (dead
// ranks are vacuously converged — their block froze at its final
// iterate); the first observer latches the decision (Board).
func (fb *flagBoard) Check() bool {
	if fb.done.Load() {
		return true
	}
	for q := range fb.flags {
		if !fb.flags[q].Load() && !fb.dead[q].Load() {
			return false
		}
	}
	if !fb.done.Swap(true) {
		fb.m.TermLatch()
		fb.m.TermDecided()
	}
	return true
}

// token colors for Dijkstra-Safra.
const (
	tokenWhite = 0.0
	tokenBlack = 1.0
	tagToken   = -3
	tagHalt    = -4
)

// safraState is one rank's token-ring bookkeeping.
type safraState struct {
	rank, size int
	// dirty records whether this rank became unconverged since it last
	// forwarded the token (its "colour").
	dirty bool
	// haveToken is set for rank 0 initially.
	haveToken  bool
	tokenColor float64
	decided    *atomic.Bool
	m          *obs.SolverMetrics
	tw         *trace.Ring // this rank's trace ring (nil-safe)
}

func newSafra(c Comm, decided *atomic.Bool, m *obs.SolverMetrics, tw *trace.Ring) *safraState {
	return &safraState{
		rank:       c.RankID(),
		size:       c.WorldSize(),
		haveToken:  c.RankID() == 0,
		tokenColor: tokenWhite,
		dirty:      true, // conservative: not converged yet
		decided:    decided,
		m:          m,
		tw:         tw,
	}
}

// poll advances the protocol. converged is this rank's current local
// state. It returns true once global termination has been decided
// (either by this rank or broadcast by another).
func (s *safraState) poll(r Comm, converged bool) bool {
	if s.decided.Load() {
		return true
	}
	// Receive a halt broadcast?
	if _, ok := r.TryRecv((s.rank+s.size-1)%s.size, tagHalt); ok {
		if s.decided.CompareAndSwap(false, true) {
			s.m.TermDecided()
		}
		// forward the halt around the ring
		s.m.TermHalt()
		s.tw.Halt(0)
		s.tw.Decided(0)
		r.Isend((s.rank+1)%s.size, tagHalt, []float64{1})
		return true
	}
	if !converged {
		s.dirty = true
		return false
	}
	// Converged: try to pick up the token from the predecessor.
	if !s.haveToken {
		if tok, ok := r.TryRecv((s.rank+s.size-1)%s.size, tagToken); ok {
			s.haveToken = true
			s.tokenColor = tok[0]
		}
	}
	if !s.haveToken {
		return false
	}
	if s.rank == 0 {
		// A white token completing a lap while rank 0 stayed clean
		// proves stable global convergence.
		if s.tokenColor == tokenWhite && !s.dirty {
			if s.decided.CompareAndSwap(false, true) {
				s.m.TermDecided()
			}
			s.m.TermHalt()
			s.tw.Halt(0)
			s.tw.Decided(0)
			r.Isend((s.rank+1)%s.size, tagHalt, []float64{1})
			return true
		}
		// Otherwise start a fresh white lap.
		s.tokenColor = tokenWhite
		s.dirty = false
		s.haveToken = false
		s.m.TermTokenPass()
		s.tw.TokenPass(0)
		r.Isend(1%s.size, tagToken, []float64{tokenWhite})
		return false
	}
	// Non-root: colour the token if dirty, then forward.
	color := s.tokenColor
	if s.dirty {
		color = tokenBlack
		s.m.TermTokenBlacken()
		s.tw.TokenBlacken(0)
	}
	s.dirty = false
	s.haveToken = false
	s.m.TermTokenPass()
	s.tw.TokenPass(0)
	r.Isend((s.rank+1)%s.size, tagToken, []float64{color})
	return false
}
