package dist

import (
	"math/rand/v2"
	"testing"

	"repro/internal/matgen"
)

func TestTerminationModeString(t *testing.T) {
	if FixedIterations.String() != "fixed-iterations" ||
		FlagTree.String() != "flag-tree" ||
		DijkstraSafra.String() != "dijkstra-safra" {
		t.Fatal("mode names wrong")
	}
	if TerminationMode(9).String() != "unknown" {
		t.Fatal("fallback name wrong")
	}
}

func TestFlagBoard(t *testing.T) {
	fb := newFlagBoard(3, nil)
	if fb.Check() {
		t.Fatal("empty board reported done")
	}
	fb.Set(0, true)
	fb.Set(1, true)
	if fb.Check() {
		t.Fatal("partial board reported done")
	}
	fb.Set(2, true)
	if !fb.Check() {
		t.Fatal("full board not detected")
	}
	// Latched: lowering a flag afterwards cannot retract the decision.
	fb.Set(1, false)
	if !fb.Check() {
		t.Fatal("decision retracted after latch")
	}
}

// Every asynchronous termination mode must solve to the requested
// tolerance on the FD problem.
func TestAsyncTerminationModes(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	for _, mode := range []TerminationMode{FlagTree, DijkstraSafra} {
		res := Solve(a, b, x0, SolveOptions{
			Procs: 6, MaxIters: 100000, Tol: 1e-4, Async: true,
			Termination: mode,
		})
		if !res.Converged {
			t.Fatalf("%v: did not converge, rel res %g", mode, res.RelRes)
		}
	}
}

// Dijkstra-Safra must not fire while any rank is still far from
// converged: with a very tight tolerance the solve runs many sweeps and
// still ends under tolerance.
func TestSafraTightTolerance(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	a := matgen.FD2D(6, 10)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{
		Procs: 5, MaxIters: 200000, Tol: 1e-8, Async: true,
		Termination: DijkstraSafra,
	})
	if !res.Converged {
		t.Fatalf("rel res %g above tight tolerance", res.RelRes)
	}
}

func TestSafraSingleRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	a := matgen.FD2D(5, 5)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{
		Procs: 1, MaxIters: 100000, Tol: 1e-6, Async: true,
		Termination: DijkstraSafra,
	})
	if !res.Converged {
		t.Fatalf("single-rank Safra failed: %g", res.RelRes)
	}
}

// The eager (semi-synchronous) scheme converges and performs no more
// relaxations than the racy scheme, because it skips updates that would
// use no new information.
func TestEagerScheme(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	a := matgen.FD2D(10, 10)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	eres := Solve(a, b, x0, SolveOptions{
		Procs: 8, MaxIters: 100000, Tol: 1e-4, Async: true, Eager: true,
	})
	if !eres.Converged {
		t.Fatalf("eager scheme did not converge: %g", eres.RelRes)
	}
}

func TestEagerSingleRank(t *testing.T) {
	// A single rank has no neighbors; the scheme must degenerate to
	// plain iteration rather than deadlock.
	rng := rand.New(rand.NewPCG(39, 40))
	a := matgen.FD2D(5, 5)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{
		Procs: 1, MaxIters: 100000, Tol: 1e-6, Async: true, Eager: true,
	})
	if !res.Converged {
		t.Fatalf("single-rank eager failed: %g", res.RelRes)
	}
}

func TestEagerFixedIterations(t *testing.T) {
	// Tol == 0 with eager: ranks stop after MaxIters local relaxations
	// (idle polls do not count as iterations).
	rng := rand.New(rand.NewPCG(41, 42))
	a := matgen.FD2D(6, 6)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	res := Solve(a, b, x0, SolveOptions{
		Procs: 4, MaxIters: 50, Async: true, Eager: true,
	})
	for p, it := range res.Iterations {
		if it > 50 {
			t.Fatalf("rank %d exceeded iteration budget: %d", p, it)
		}
		if it == 0 {
			t.Fatalf("rank %d never relaxed", p)
		}
	}
}
