package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/matgen"
)

// Fig9Data holds the Dubcova2 divergence/convergence curves.
type Fig9Data struct {
	Series []Series
}

// RunFig9 reproduces Figure 9: on the Dubcova2 analogue (rho(G) > 1)
// synchronous Jacobi diverges at any process count, while asynchronous
// Jacobi converges and improves as the process count grows — the
// distributed-memory twin of Fig 6.
func RunFig9(cfg Config) (*Fig9Data, error) {
	p := matgen.Dubcova2Like()
	a := p.A
	rng := cfg.NewRNG(0xF169)
	b := RandomVec(rng, a.N)
	x0 := RandomVec(rng, a.N)
	start := startRelRes(a, b, x0)

	procCounts := []int{8, 32, 128, 256}
	budget := sweepBudget(p.Name, cfg.Quick)
	if cfg.Quick {
		procCounts = []int{16, 128}
	}
	data := &Fig9Data{}

	// Synchronous: diverges; cap the sweeps so the history stays finite
	// long enough to show the rise.
	sres := cluster.Simulate(a, b, x0, suiteSimConfig(8, false, min(200, budget), 0, cfg.Seed+17))
	ss := Series{Label: "sync"}
	for _, smp := range sres.History {
		ss.X = append(ss.X, smp.RelaxPerN)
		ss.Y = append(ss.Y, smp.RelRes)
	}
	data.Series = append(data.Series, ss)

	for _, procs := range procCounts {
		ares := cluster.Simulate(a, b, x0, suiteSimConfig(procs, true, budget, start*1e-4, cfg.Seed+19))
		s := Series{Label: fmt.Sprintf("async %4d procs", procs)}
		for _, smp := range ares.History {
			s.X = append(s.X, smp.RelaxPerN)
			s.Y = append(s.Y, smp.RelRes)
		}
		data.Series = append(data.Series, s)
	}
	return data, nil
}

// Fig9 prints the Dubcova2 curves.
func Fig9(w io.Writer, cfg Config) error {
	data, err := RunFig9(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig 9: Dubcova2 analogue (rho(G) > 1): sync diverges, async converges with more procs ==")
	printSeries(w, "relax/n", "rel res", data.Series, 10)
	fmt.Fprintln(w, "  (paper: increasing the number of processes improves the convergence rate of")
	fmt.Fprintln(w, "   asynchronous Jacobi to the point of converging where synchronous does not)")
	fmt.Fprintln(w)
	return nil
}
