package experiments

import (
	"fmt"
	"io"

	"repro/internal/matgen"
	"repro/internal/spectral"
)

// TableIRow summarises one test problem: the paper's metadata next to
// the synthetic analogue's measured properties.
type TableIRow struct {
	Name            string
	PaperN          int
	PaperNNZ        int
	N               int
	NNZ             int
	WDDFraction     float64
	RhoG            float64
	JacobiConverges bool
}

// RunTableI generates the seven Table I analogues and measures their
// properties.
func RunTableI(cfg Config) ([]TableIRow, error) {
	var rows []TableIRow
	for _, p := range matgen.SuiteProblems() {
		krylov := 400
		if cfg.Quick {
			krylov = 150
		}
		rho := spectral.JacobiRhoGLanczos(p.A, krylov, 1e-10)
		rows = append(rows, TableIRow{
			Name:            p.Name,
			PaperN:          p.PaperN,
			PaperNNZ:        p.PaperNNZ,
			N:               p.A.N,
			NNZ:             p.A.NNZ(),
			WDDFraction:     p.A.WDDFraction(),
			RhoG:            rho.Value,
			JacobiConverges: p.JacobiConverges,
		})
	}
	return rows, nil
}

// TableI prints the Table I reproduction: paper sizes, analogue sizes,
// and the measured spectral properties that drive every later figure.
func TableI(w io.Writer, cfg Config) error {
	rows, err := RunTableI(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Table I: test problems (SuiteSparse originals -> synthetic analogues) ==")
	fmt.Fprintf(w, "%-14s %12s %10s | %8s %8s %8s %8s %s\n",
		"Matrix", "paper nnz", "paper n", "nnz", "n", "wdd", "rho(G)", "Jacobi")
	for _, r := range rows {
		conv := "converges"
		if !r.JacobiConverges {
			conv = "diverges"
		}
		fmt.Fprintf(w, "%-14s %12d %10d | %8d %8d %8.2f %8.4f %s\n",
			r.Name, r.PaperNNZ, r.PaperN, r.NNZ, r.N, r.WDDFraction, r.RhoG, conv)
	}
	fmt.Fprintln(w)
	return nil
}
