package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/spectral"
)

// RatesRow compares a problem's predicted asymptotic Jacobi rate
// (rho(G) from the Lanczos eigenvalue extremes) with the factor
// actually measured from a synchronous Jacobi residual history — a
// validation table beyond the paper's figures: if the spectral
// machinery and the solvers disagree, every other experiment is
// suspect.
type RatesRow struct {
	Name     string
	RhoG     float64
	Measured float64
	AsyncF   float64 // measured asynchronous per-sweep factor
}

// RunRates measures per-sweep convergence factors for the convergent
// Table I analogues.
func RunRates(cfg Config) ([]RatesRow, error) {
	rng := cfg.NewRNG(0x5a7e)
	sweeps := 1500
	krylov := 400
	if cfg.Quick {
		sweeps = 400
		krylov = 150
	}
	var rows []RatesRow
	probs := matgen.ConvergentSuiteProblems()
	if cfg.Quick {
		probs = probs[3:5]
	}
	for _, p := range probs {
		a := p.A
		b := RandomVec(rng, a.N)
		rho := spectral.JacobiRhoGLanczos(a, krylov, 1e-10)

		sres, err := core.Solve(a, b, core.Options{
			Method: core.JacobiSync, Tol: 1e-14, MaxSweeps: sweeps, RecordHistory: true,
		})
		if err != nil {
			return nil, err
		}
		factor, ok := spectral.ConvergenceFactor(sres.History)
		if !ok {
			factor = 0
		}
		ares, err := core.Solve(a, b, core.Options{
			Method: core.JacobiAsync, Threads: 16, Tol: 1e-14, MaxSweeps: sweeps,
			RecordHistory: true,
		})
		if err != nil {
			return nil, err
		}
		af, ok := spectral.ConvergenceFactor(ares.History)
		if !ok {
			af = 0
		}
		rows = append(rows, RatesRow{
			Name:     p.Name,
			RhoG:     rho.Value,
			Measured: factor,
			AsyncF:   af,
		})
	}
	return rows, nil
}

// Rates prints the spectral-vs-measured rate validation table.
func Rates(w io.Writer, cfg Config) error {
	rows, err := RunRates(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Rates: predicted rho(G) vs measured per-sweep factors ==")
	fmt.Fprintf(w, "%-14s %10s %14s %14s\n", "Matrix", "rho(G)", "sync factor", "async factor")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.5f %14.5f %14.5f\n", r.Name, r.RhoG, r.Measured, r.AsyncF)
	}
	fmt.Fprintln(w, "  (sync factor must match rho(G); the async factor is at or below it —")
	fmt.Fprintln(w, "   the multiplicative advantage of Sections IV-B/IV-C)")
	fmt.Fprintln(w)
	return nil
}
