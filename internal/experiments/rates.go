package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/shm"
	"repro/internal/spectral"
	"repro/internal/stream"
)

// RatesRow compares a problem's predicted asymptotic Jacobi rate
// (rho(G) from the Lanczos eigenvalue extremes) with the factor
// actually measured from a synchronous Jacobi residual history — a
// validation table beyond the paper's figures: if the spectral
// machinery and the solvers disagree, every other experiment is
// suspect.
type RatesRow struct {
	Name     string
	RhoG     float64
	Measured float64
	AsyncF   float64 // measured asynchronous per-sweep factor
}

// RunRates measures per-sweep convergence factors for the convergent
// Table I analogues.
func RunRates(cfg Config) ([]RatesRow, error) {
	rng := cfg.NewRNG(0x5a7e)
	sweeps := 1500
	krylov := 400
	if cfg.Quick {
		sweeps = 400
		krylov = 150
	}
	var rows []RatesRow
	probs := matgen.ConvergentSuiteProblems()
	if cfg.Quick {
		probs = probs[3:5]
	}
	for _, p := range probs {
		a := p.A
		b := RandomVec(rng, a.N)
		rho := spectral.JacobiRhoGLanczos(a, krylov, 1e-10)

		sres, err := core.Solve(a, b, core.Options{
			Method: core.JacobiSync, Tol: 1e-14, MaxSweeps: sweeps, RecordHistory: true,
		})
		if err != nil {
			return nil, err
		}
		factor, ok := spectral.ConvergenceFactor(sres.History)
		if !ok {
			factor = 0
		}
		ares, err := core.Solve(a, b, core.Options{
			Method: core.JacobiAsync, Threads: 16, Tol: 1e-14, MaxSweeps: sweeps,
			RecordHistory: true,
		})
		if err != nil {
			return nil, err
		}
		af, ok := spectral.ConvergenceFactor(ares.History)
		if !ok {
			af = 0
		}
		rows = append(rows, RatesRow{
			Name:     p.Name,
			RhoG:     rho.Value,
			Measured: factor,
			AsyncF:   af,
		})
	}
	return rows, nil
}

// RateSweepRow is one worker count's live-estimated asynchronous rate.
type RateSweepRow struct {
	Workers int
	RhoHat  float64 // windowed log-linear fit over sweep-equivalents
	Lo, Hi  float64 // 95% confidence band
	Samples int
	RelRes  float64 // final true relative residual
}

// RunRateSweep measures the live rho-hat estimate (the streaming
// analytics pipeline's windowed fit, not an offline history fit) of
// the asynchronous shared-memory solver across worker counts on the
// seed Laplacian — the paper's §VII observation that the rate
// *improves* as the process count grows, because finer active blocks
// make the iteration more multiplicative (§IV-D). Every run streams
// through obs -> stream -> analytics exactly as a monitored production
// solve would, so this doubles as an end-to-end check of the pipeline.
func RunRateSweep(cfg Config) ([]RateSweepRow, error) {
	a := matgen.FD2D(8, 8)
	rng := cfg.NewRNG(0x4a7e)
	b := RandomVec(rng, a.N)
	counts := []int{1, 2, 4, 8, 16, 32}
	iters := 300
	if cfg.Quick {
		counts = []int{1, 16}
		iters = 200
	}
	reps := 5
	if cfg.Quick {
		reps = 3
	}
	var rows []RateSweepRow
	for _, p := range counts {
		// One asynchronous schedule is one draw from a distribution;
		// the median fit over several runs is the stable rate figure.
		fits := make([]RateFitLite, 0, reps)
		var relRes float64
		for rep := 0; rep < reps; rep++ {
			m := obs.NewSolverMetrics(obs.NewRegistry())
			bus := stream.NewBus()
			m.AttachBus(bus, 0) // every iteration: the estimate wants dense samples
			sub := bus.Subscribe(1 << 15)
			eng := analytics.New(analytics.Config{N: a.N, Window: 128})
			done := make(chan struct{})
			go func() {
				eng.Pump(sub)
				close(done)
			}()
			res := shm.Solve(a, b, make([]float64, a.N), shm.Options{
				Threads: p, Async: true, MaxIters: iters, Tol: 1e-14,
				YieldProb: 0.25, Metrics: m,
			})
			<-done
			sub.Close()
			snap := eng.Snapshot()
			fit := snap.Fit
			if !fit.OK {
				return nil, fmt.Errorf("experiments: no rate fit for %d workers", p)
			}
			fits = append(fits, RateFitLite{Rho: fit.Rho, Lo: fit.Lo, Hi: fit.Hi, N: fit.N})
			relRes += res.RelRes
			cfg.recordRun(&ledger.RunRecord{
				Substrate: "shm", Method: "jacobi-async", Rep: rep,
				Params: map[string]float64{"workers": float64(p)},
				Matrix: ledger.DescribeMatrix("fd:8x8", a),
				Config: ledger.SolveConfig{Tol: 1e-14, MaxSweeps: iters, Threads: p, Seed: cfg.Seed},
				Outcome: ledger.Outcome{
					Converged: res.Converged, StopReason: res.StopReason.String(),
					Sweeps: res.TotalRelaxations / a.N, RelRes: res.RelRes,
					WallNs: int64(res.WallTime), SolveNs: int64(res.Elapsed),
				},
				Rate:      ledger.RateInfo{RhoHat: fit.Rho, Lo: fit.Lo, Hi: fit.Hi, Samples: fit.N},
				Staleness: ledger.StalenessInfo{P50: snap.StaleP50, P95: snap.StaleP95},
			})
		}
		sort.Slice(fits, func(i, j int) bool { return fits[i].Rho < fits[j].Rho })
		med := fits[len(fits)/2]
		rows = append(rows, RateSweepRow{
			Workers: p, RhoHat: med.Rho, Lo: med.Lo, Hi: med.Hi,
			Samples: med.N, RelRes: relRes / float64(reps),
		})
	}
	return rows, nil
}

// RateFitLite is the subset of analytics.RateFit the sweep keeps.
type RateFitLite struct {
	Rho, Lo, Hi float64
	N           int
}

// Rates prints the spectral-vs-measured rate validation table and the
// live rho-hat-vs-workers sweep.
func Rates(w io.Writer, cfg Config) error {
	rows, err := RunRates(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Rates: predicted rho(G) vs measured per-sweep factors ==")
	fmt.Fprintf(w, "%-14s %10s %14s %14s\n", "Matrix", "rho(G)", "sync factor", "async factor")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %10.5f %14.5f %14.5f\n", r.Name, r.RhoG, r.Measured, r.AsyncF)
	}
	fmt.Fprintln(w, "  (sync factor must match rho(G); the async factor is at or below it —")
	fmt.Fprintln(w, "   the multiplicative advantage of Sections IV-B/IV-C)")
	fmt.Fprintln(w)

	sweep, err := RunRateSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Live rho-hat vs worker count (streaming analytics, seed Laplacian) ==")
	fmt.Fprintf(w, "%-8s %10s %22s %10s\n", "workers", "rho-hat", "95% band", "rel res")
	for _, r := range sweep {
		fmt.Fprintf(w, "%-8d %10.5f    [%.5f, %.5f] %10.2g\n", r.Workers, r.RhoHat, r.Lo, r.Hi, r.RelRes)
	}
	fmt.Fprintln(w, "  (rho-hat falls as workers increase: finer active blocks are more")
	fmt.Fprintln(w, "   multiplicative — the paper's §VII \"rate improves with more processes\")")
	fmt.Fprintln(w)
	return nil
}
