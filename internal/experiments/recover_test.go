package experiments

import (
	"strings"
	"testing"
)

// The quick recovery sweep must complete the crash → hard kill →
// restart-from-checkpoint loop for every interval, converge each time,
// and account for the work honestly: the interrupted runs cannot cost
// less than the uninterrupted baseline.
func TestRecoverSweepQuick(t *testing.T) {
	data, err := RunRecoverSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 2 {
		t.Fatalf("quick sweep has %d rows, want 2", len(data.Rows))
	}
	if data.BaselineRelaxPN <= 0 {
		t.Fatal("baseline did not run")
	}
	for _, r := range data.Rows {
		if !r.Converged {
			t.Fatalf("interval %v: resumed run did not converge", r.Interval)
		}
		if r.WastedPerN < 0 {
			t.Fatalf("interval %v: negative waste %.1f — a killed run out-performed the baseline",
				r.Interval, r.WastedPerN)
		}
		if r.CheckpointAge < 0 {
			t.Fatalf("interval %v: negative checkpoint age %v", r.Interval, r.CheckpointAge)
		}
	}

	var sb strings.Builder
	if err := Recover(&sb, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "checkpoint interval") {
		t.Fatal("report missing header")
	}
}
