package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestRateSweepImprovesWithWorkers(t *testing.T) {
	rows, err := RunRateSweep(Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("quick sweep returned %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.RhoHat <= 0 || r.RhoHat >= 1 {
			t.Fatalf("rho-hat for %d workers out of (0,1): %+v", r.Workers, r)
		}
		if r.Lo > r.RhoHat || r.Hi < r.RhoHat {
			t.Fatalf("band excludes estimate: %+v", r)
		}
	}
	// The paper's §VII effect: finer active blocks converge faster, so
	// the high-concurrency rate beats the single-worker (= synchronous
	// Jacobi) rate by more than run-to-run noise.
	lo, hi := rows[0], rows[len(rows)-1]
	if hi.RhoHat >= lo.RhoHat-5e-4 {
		t.Fatalf("rho-hat did not improve with workers: %d -> %.6f, %d -> %.6f",
			lo.Workers, lo.RhoHat, hi.Workers, hi.RhoHat)
	}
}

func TestRatesCSVEmitter(t *testing.T) {
	var buf bytes.Buffer
	if err := RunCSV("rates", &buf, Config{Seed: 7, Quick: true}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"workers", "rho_hat", "rho_lo", "rho_hi", "samples", "rel_res"}
	if strings.Join(recs[0], ",") != strings.Join(want, ",") {
		t.Fatalf("header %v, want %v", recs[0], want)
	}
	if len(recs) != 3 {
		t.Fatalf("%d rows incl header, want 3", len(recs))
	}
}

func TestWriteTableRejectsRaggedRows(t *testing.T) {
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	err := WriteTable(cw, []string{"a", "b"}, [][]string{{"1", "2"}, {"only-one"}})
	if err == nil {
		t.Fatal("ragged row accepted")
	}
	buf.Reset()
	cw = csv.NewWriter(&buf)
	if err := WriteTable(cw, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}}); err != nil {
		t.Fatal(err)
	}
	cw.Flush()
	if got := buf.String(); got != "a,b\n1,2\n3,4\n" {
		t.Fatalf("unexpected table output %q", got)
	}
}
