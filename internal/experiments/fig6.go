package experiments

import (
	"fmt"
	"io"

	"repro/internal/matgen"
	"repro/internal/model"
	"repro/internal/shm"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// Fig6Data holds residual-vs-iteration curves for the FE divergence
// experiment, plus the long-run async check of Fig 6(b).
type Fig6Data struct {
	Series []Series
	// ModelSeries are the propagation-matrix model runs with
	// block-skew masks at the same thread counts. On this single-CPU
	// host the goroutine solver interleaves rather than truly
	// overlapping, which favours asynchronous convergence even at low
	// thread counts; the model retains genuine simultaneity and shows
	// the paper's concurrency threshold (async diverges at low thread
	// counts and converges once blocks are fine enough).
	ModelSeries []Series
	// LongRun is the extended async history at the largest thread
	// count, demonstrating that asynchronous Jacobi truly converges and
	// does not diverge later.
	LongRun Series
	// FinalRelRes of the long run.
	LongRunFinal float64
}

// RunFig6 reproduces Figure 6: on the FE matrix (SPD, not W.D.D.,
// rho(G) > 1; paper n=3081, here n=3136), synchronous Jacobi diverges
// at every thread count while asynchronous Jacobi starts to converge as
// the thread count grows.
//
// The x-axis for asynchronous runs is the mean local iteration count
// (the paper: "the number of iterations is the average number of local
// iterations carried out by all the threads"); histories are sampled by
// worker 0.
func RunFig6(cfg Config) (*Fig6Data, error) {
	var a *sparse.CSR
	threads := []int{68, 136, 272}
	syncIters, asyncIters, longIters := 120, 1500, 6000
	if cfg.Quick {
		a = matgen.FE2D(matgen.DefaultFEOptions(25, 25))
		threads = []int{16, 64}
		syncIters, asyncIters, longIters = 250, 600, 1500
	} else {
		a = matgen.FEPaper()
	}
	rng := cfg.NewRNG(0xF166)
	b := RandomVec(rng, a.N)
	x0 := RandomVec(rng, a.N)

	data := &Fig6Data{}
	for _, th := range threads {
		sres := shm.Solve(a, b, x0, shm.Options{
			Threads: th, MaxIters: syncIters, RecordHistory: true,
		})
		ss := Series{Label: fmt.Sprintf("sync %d threads", th)}
		for _, h := range sres.History {
			if !vec.AllFinite([]float64{h.RelRes}) {
				break
			}
			ss.X = append(ss.X, float64(h.Iteration))
			ss.Y = append(ss.Y, h.RelRes)
		}
		ares := shm.Solve(a, b, x0, shm.Options{
			Threads: th, MaxIters: asyncIters, Tol: 1e-4, Async: true,
			RecordHistory: true, YieldProb: 0.02,
		})
		sa := Series{Label: fmt.Sprintf("async %d threads", th)}
		for _, h := range ares.History {
			sa.X = append(sa.X, float64(h.Iteration))
			sa.Y = append(sa.Y, h.RelRes)
		}
		data.Series = append(data.Series, ss, sa)
	}

	// Model runs with genuine simultaneity: block-skew masks at a
	// thread sweep that brackets the convergence threshold.
	modelThreads := []int{17, 34, 68, 136, 272}
	modelSteps := 3000
	if cfg.Quick {
		modelThreads = []int{8, 64}
		modelSteps = 1500
	}
	for _, th := range modelThreads {
		sched := model.NewBlockSkewSchedule(model.BlockSkewOptions{
			N: a.N, T: th, Jitter: 2, Seed: 5,
		})
		h := model.Run(a, b, x0, sched, model.Options{
			MaxSteps: modelSteps, Tol: 1e-3, SampleEvery: 25,
		})
		s := Series{Label: fmt.Sprintf("model async %d threads", th)}
		for k := range h.Times {
			s.X = append(s.X, float64(h.Times[k]))
			s.Y = append(s.Y, h.RelRes[k])
		}
		data.ModelSeries = append(data.ModelSeries, s)
	}

	// (b): long run at the largest thread count.
	th := threads[len(threads)-1]
	lres := shm.Solve(a, b, x0, shm.Options{
		Threads: th, MaxIters: longIters, Tol: 1e-10, Async: true,
		RecordHistory: true, YieldProb: 0.02,
	})
	data.LongRun = Series{Label: fmt.Sprintf("async %d threads (long run)", th)}
	for _, h := range lres.History {
		data.LongRun.X = append(data.LongRun.X, float64(h.Iteration))
		data.LongRun.Y = append(data.LongRun.Y, h.RelRes)
	}
	data.LongRunFinal = lres.RelRes
	return data, nil
}

// Fig6 prints the divergence/convergence histories.
func Fig6(w io.Writer, cfg Config) error {
	data, err := RunFig6(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig 6: FE matrix (rho(G) > 1): sync diverges, async converges with enough threads ==")
	printSeries(w, "iterations", "rel res", data.Series, 10)
	fmt.Fprintln(w, "  model (block-skew masks, genuine simultaneity):")
	printSeries(w, "model time", "rel res", data.ModelSeries, 8)
	fmt.Fprintln(w, "  (b) long-run async check:")
	printSeries(w, "iterations", "rel res", []Series{data.LongRun}, 10)
	fmt.Fprintf(w, "  final long-run rel res: %.3g (truly converges, no later divergence)\n", data.LongRunFinal)
	fmt.Fprintln(w)
	return nil
}
