package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/matgen"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// Ablations probes the design choices DESIGN.md calls out, one table
// per question:
//
//	A1  partitioner: BFS (METIS stand-in) vs contiguous vs round-robin —
//	    cut size and asynchronous time-to-tolerance on the simulated
//	    cluster (including the anisotropic case where orientation
//	    dominates).
//	A2  message latency: how the async/sync advantage scales as the
//	    network slows down.
//	A3  worker skew: the paper's mechanism test — lockstep asynchronous
//	    blocks (jitter 0) stay effectively synchronous and diverge on
//	    the FE matrix, skewed blocks converge.
//	A4  termination detection: fixed iterations vs flag tree vs
//	    Dijkstra-Safra token ring — achieved residual and iteration
//	    overshoot on the real distributed substrate.
//	A5  eager vs racy communication: relaxations spent to tolerance.
func Ablations(w io.Writer, cfg Config) error {
	if err := ablationPartitioner(w, cfg); err != nil {
		return err
	}
	if err := ablationLatency(w, cfg); err != nil {
		return err
	}
	if err := ablationSkew(w, cfg); err != nil {
		return err
	}
	if err := ablationTermination(w, cfg); err != nil {
		return err
	}
	return ablationEager(w, cfg)
}

func ablationPartitioner(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Ablation A1: partitioner quality (async, simulated cluster) ==")
	rng := cfg.NewRNG(0xAB1)
	grid := 40
	if cfg.Quick {
		grid = 24
	}
	workloads := []struct {
		name string
		a    *sparse.CSR
	}{
		{"isotropic FD", matgen.FD2D(grid, grid)},
		{"anisotropic FD (eps=0.01)", matgen.FD2DAniso(grid, grid, 0.01)},
	}
	procs := 16
	budget := 4000
	if cfg.Quick {
		budget = 1500
	}
	for _, wl := range workloads {
		a := wl.a
		b := RandomVec(rng, a.N)
		x0 := RandomVec(rng, a.N)
		start := startRelRes(a, b, x0)
		target := start / 100
		fmt.Fprintf(w, " %s (n=%d):\n", wl.name, a.N)
		fmt.Fprintf(w, "    %-12s %10s %12s %14s\n", "partition", "cut nnz", "cut weight", "time to 1e-2x")
		refined := partition.BFS(a, procs)
		partition.Refine(a, refined, 20, 0.15)
		parts := []struct {
			name string
			pt   *partition.Partition
		}{
			{"bfs", partition.BFS(a, procs)},
			{"bfs+refine", refined},
			{"contiguous", partition.Contiguous(a.N, procs)},
			{"round-robin", roundRobin(a.N, procs)},
		}
		for _, p := range parts {
			c := suiteSimConfig(procs, true, budget, target, cfg.Seed+21)
			c.Part = p.pt
			res := cluster.Simulate(a, b, x0, c)
			tt, ok := res.TimeToRelRes(target)
			ts := "-"
			if ok {
				ts = fmt.Sprintf("%.6g", tt)
			}
			fmt.Fprintf(w, "    %-12s %10d %12.4g %14s\n",
				p.name, p.pt.CutEdges(a), p.pt.WeightedCut(a), ts)
		}
	}
	fmt.Fprintln(w, "  (round-robin's huge cut is always worst; between BFS and contiguous the")
	fmt.Fprintln(w, "   WEIGHTED cut decides — on the anisotropic problem contiguous strips cut")
	fmt.Fprintln(w, "   only weak couplings and win despite a larger raw cut count)")
	fmt.Fprintln(w)
	return nil
}

func ablationLatency(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Ablation A2: async advantage vs message latency (FD, 32 procs) ==")
	rng := cfg.NewRNG(0xAB2)
	grid := 40
	budget := 4000
	if cfg.Quick {
		grid, budget = 24, 1500
	}
	a := matgen.FD2D(grid, grid)
	b := RandomVec(rng, a.N)
	x0 := RandomVec(rng, a.N)
	start := startRelRes(a, b, x0)
	target := start / 100
	fmt.Fprintf(w, "    %12s %14s %14s %10s\n", "latency", "sync time", "async time", "speedup")
	lats := []float64{1e-7, 1e-6, 1e-5, 1e-4}
	if cfg.Quick {
		lats = []float64{1e-6, 1e-4}
	}
	for _, lat := range lats {
		mk := func(async bool) cluster.Config {
			c := suiteSimConfig(32, async, budget, target, cfg.Seed+23)
			c.MsgLatency = lat
			return c
		}
		sres := cluster.Simulate(a, b, x0, mk(false))
		ares := cluster.Simulate(a, b, x0, mk(true))
		ts, ok1 := sres.TimeToRelRes(target)
		ta, ok2 := ares.TimeToRelRes(target)
		if !ok1 || !ok2 {
			fmt.Fprintf(w, "    %12.3g %14s %14s %10s\n", lat, "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "    %12.3g %14.6g %14.6g %9.2fx\n", lat, ts, ta, ts/ta)
	}
	fmt.Fprintln(w, "  (expected: async advantage grows with latency — barriers pay it every sweep)")
	fmt.Fprintln(w)
	return nil
}

func ablationSkew(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Ablation A3: worker skew is the convergence mechanism (FE matrix, model) ==")
	rng := cfg.NewRNG(0xAB3)
	var a = matgen.FE2D(matgen.DefaultFEOptions(25, 25))
	steps := 3000
	threads := 96
	if cfg.Quick {
		steps = 1500
	}
	b := RandomVec(rng, a.N)
	x0 := RandomVec(rng, a.N)
	fmt.Fprintf(w, "    %8s %14s %12s\n", "jitter", "final rel res", "converged")
	for _, jit := range []int{0, 1, 2, 3} {
		sched := model.NewBlockSkewSchedule(model.BlockSkewOptions{
			N: a.N, T: threads, Jitter: jit, Seed: 5,
		})
		h := model.Run(a, b, x0, sched, model.Options{MaxSteps: steps, Tol: 1e-3, SampleEvery: 25})
		fmt.Fprintf(w, "    %8d %14.4g %12v\n", jit, h.FinalRelRes(), h.Converged)
	}
	fmt.Fprintln(w, "  (expected: jitter 0 = lockstep = synchronous-like divergence; skew converges)")
	fmt.Fprintln(w)
	return nil
}

func ablationTermination(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Ablation A4: asynchronous termination detection (dist substrate) ==")
	rng := cfg.NewRNG(0xAB4)
	grid := 12
	a := matgen.FD2D(grid, grid)
	b := RandomVec(rng, a.N)
	x0 := RandomVec(rng, a.N)
	const tol = 1e-4
	fmt.Fprintf(w, "    %-18s %12s %12s %12s\n", "scheme", "rel res", "max iters", "min iters")
	for _, mode := range []dist.TerminationMode{dist.FlagTree, dist.DijkstraSafra} {
		res := dist.Solve(a, b, x0, dist.SolveOptions{
			Procs: 8, MaxIters: 100000, Tol: tol, Async: true, Termination: mode,
		})
		fmt.Fprintf(w, "    %-18s %12.3g %12d %12d\n",
			mode, res.RelRes, maxInt(res.Iterations), minInt(res.Iterations))
	}
	// Fixed iterations for reference: run the sync-equivalent count.
	res := dist.Solve(a, b, x0, dist.SolveOptions{
		Procs: 8, MaxIters: 500, Async: true,
	})
	fmt.Fprintf(w, "    %-18s %12.3g %12d %12d\n",
		dist.FixedIterations, res.RelRes, maxInt(res.Iterations), minInt(res.Iterations))
	fmt.Fprintln(w, "  (both detectors stop at the requested tolerance; fixed iterations needs the")
	fmt.Fprintln(w, "   budget guessed in advance — the paper's motivation for future work)")
	fmt.Fprintln(w)
	return nil
}

func ablationEager(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Ablation A5: racy (RMA) vs eager (semi-synchronous) communication ==")
	rng := cfg.NewRNG(0xAB5)
	a := matgen.FD2D(16, 16)
	b := RandomVec(rng, a.N)
	x0 := RandomVec(rng, a.N)
	const tol = 1e-4
	fmt.Fprintf(w, "    %-8s %12s %14s\n", "scheme", "rel res", "relaxations/n")
	for _, eager := range []bool{false, true} {
		res := dist.Solve(a, b, x0, dist.SolveOptions{
			Procs: 8, MaxIters: 100000, Tol: tol, Async: true, Eager: eager,
		})
		name := "racy"
		if eager {
			name = "eager"
		}
		fmt.Fprintf(w, "    %-8s %12.3g %14.1f\n",
			name, res.RelRes, float64(res.TotalRelaxations)/float64(a.N))
	}
	fmt.Fprintln(w, "  (eager skips relaxations that would use no new information; with")
	fmt.Fprintln(w, "   homogeneous ranks nothing is wasted and the schemes tie — its value")
	fmt.Fprintln(w, "   appears when ranks run at different speeds, as Jager and Bradley found)")
	fmt.Fprintln(w)
	return nil
}

func roundRobin(n, p int) *partition.Partition {
	pt := &partition.Partition{P: p, Part: make([]int, n)}
	for i := range pt.Part {
		pt.Part[i] = i % p
	}
	return pt
}

func maxInt(v []int) int {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func minInt(v []int) int {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}
