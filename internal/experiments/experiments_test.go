package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func TestDownsample(t *testing.T) {
	s := Series{X: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, Y: make([]float64, 10)}
	d := s.Downsample(4)
	if len(d.X) != 4 || d.X[0] != 0 || d.X[3] != 9 {
		t.Fatalf("Downsample = %v", d.X)
	}
	// Short series unchanged.
	if got := s.Downsample(20); len(got.X) != 10 {
		t.Fatal("short series should be unchanged")
	}
}

func TestNamesAndDispatch(t *testing.T) {
	if len(Names()) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(Names()))
	}
	var buf bytes.Buffer
	if err := Run("no-such", &buf, quickCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableI(t *testing.T) {
	var buf bytes.Buffer
	if err := TableI(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"thermal2", "G3_circuit", "ecology2", "apache2",
		"parabolic_fem", "thermomech_dm", "Dubcova2"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table I output missing %s", name)
		}
	}
	if !strings.Contains(out, "diverges") {
		t.Fatal("Dubcova2 must be reported divergent")
	}
}

func TestFig1(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4/4") || !strings.Contains(out, "3/4") {
		t.Fatalf("Fig 1 output wrong:\n%s", out)
	}
}

func TestFig2QuickTrend(t *testing.T) {
	points, err := RunFig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no Fig 2 points")
	}
	// Majority propagated at the largest thread count of each platform,
	// and the fraction must increase from the smallest to the largest
	// thread count (the paper's headline trend).
	byPlat := map[string][]Fig2Point{}
	for _, p := range points {
		if p.Fraction < 0 || p.Fraction > 1 {
			t.Fatalf("fraction out of range: %+v", p)
		}
		byPlat[p.Platform] = append(byPlat[p.Platform], p)
	}
	for plat, ps := range byPlat {
		first, last := ps[0], ps[len(ps)-1]
		if last.Fraction <= first.Fraction {
			t.Fatalf("%s: fraction did not increase with threads: %+v", plat, ps)
		}
		if last.Fraction < 0.5 {
			t.Fatalf("%s: majority not propagated at max threads: %+v", plat, last)
		}
	}
}

func TestFig3QuickSpeedupGrows(t *testing.T) {
	points, err := RunFig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatal("too few Fig 3 points")
	}
	first, last := points[0], points[len(points)-1]
	if last.ModelSpeedup <= first.ModelSpeedup {
		t.Fatalf("model speedup did not grow with delay: %+v -> %+v", first, last)
	}
	if last.ModelSpeedup < 5 {
		t.Fatalf("model speedup at delay %d only %g", last.Delay, last.ModelSpeedup)
	}
	if last.SimSpeedup <= 1 {
		t.Fatalf("sim speedup at delay %d is %g, want > 1", last.Delay, last.SimSpeedup)
	}
}

func TestFig4Quick(t *testing.T) {
	data, err := RunFig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Series) == 0 {
		t.Fatal("no Fig 4 series")
	}
	// Async curves never increase (W.D.D. matrix, Theorem 1).
	for _, s := range data.Series {
		if !strings.HasPrefix(s.Label, "async") {
			continue
		}
		for k := 1; k < len(s.Y); k++ {
			// Absolute slack covers roundoff fluctuation once the
			// residual stagnates at machine precision.
			if s.Y[k] > s.Y[k-1]*(1+1e-12)+1e-14 {
				t.Fatalf("%s: residual increased", s.Label)
			}
		}
	}
}

func TestFig5Quick(t *testing.T) {
	points, err := RunFig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if !p.SyncReached || !p.AsyncReached {
			t.Fatalf("threads=%d: tolerance not reached (sync %v async %v)",
				p.Threads, p.SyncReached, p.AsyncReached)
		}
		if p.SyncTime100 <= 0 || p.AsyncTime100 <= 0 {
			t.Fatalf("threads=%d: non-positive sweep times", p.Threads)
		}
	}
	// At the largest thread count async must win on both measures.
	last := points[len(points)-1]
	if last.AsyncTimeTol >= last.SyncTimeTol {
		t.Fatalf("async not faster at %d threads: %g vs %g",
			last.Threads, last.AsyncTimeTol, last.SyncTimeTol)
	}
	if last.AsyncTime100 >= last.SyncTime100 {
		t.Fatalf("async 100-sweep time not faster at %d threads", last.Threads)
	}
}

func TestFig6Quick(t *testing.T) {
	data, err := RunFig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Sync curves end higher than they start (divergence); the largest
	// async run converges.
	var sawSyncDiverge bool
	for _, s := range data.Series {
		if strings.HasPrefix(s.Label, "sync") && len(s.Y) >= 2 {
			if s.Y[len(s.Y)-1] > s.Y[0] {
				sawSyncDiverge = true
			}
		}
	}
	if !sawSyncDiverge {
		t.Fatal("no synchronous divergence observed on the FE matrix")
	}
	if data.LongRunFinal > 1e-3 {
		t.Fatalf("long async run did not converge: %g", data.LongRunFinal)
	}
	// The model's concurrency threshold: the lowest thread count fails
	// to converge, the highest converges.
	if len(data.ModelSeries) < 2 {
		t.Fatal("missing model series")
	}
	low := data.ModelSeries[0]
	high := data.ModelSeries[len(data.ModelSeries)-1]
	if final := low.Y[len(low.Y)-1]; final < 1e-2 {
		t.Fatalf("low-concurrency model run unexpectedly converged: %g", final)
	}
	if final := high.Y[len(high.Y)-1]; final > 1e-2 {
		t.Fatalf("high-concurrency model run did not converge: %g", final)
	}
}

func TestSuiteSimsQuick(t *testing.T) {
	data, err := RunSuiteSims(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Runs) == 0 {
		t.Fatal("no suite runs")
	}
	// For each problem and proc count: a factor-10 reduction must be
	// reachable, and async must be at least as fast as sync in virtual
	// time at the largest proc count.
	type key struct {
		problem string
		procs   int
	}
	syncT := map[key]float64{}
	asyncT := map[key]float64{}
	for _, run := range data.Runs {
		tt, ok := run.Result.TimeToRelRes(run.StartRelRes / 10)
		if !ok {
			t.Fatalf("%s procs=%d async=%v: factor-10 not reached",
				run.Problem, run.Procs, run.Async)
		}
		if run.Async {
			asyncT[key{run.Problem, run.Procs}] = tt
		} else {
			syncT[key{run.Problem, run.Procs}] = tt
		}
	}
	big := data.ProcCounts[len(data.ProcCounts)-1]
	for k, st := range syncT {
		if k.procs != big {
			continue
		}
		at := asyncT[k]
		if at > st {
			t.Fatalf("%s at %d procs: async %g slower than sync %g", k.problem, k.procs, at, st)
		}
	}
	// Printers run clean.
	var buf bytes.Buffer
	if err := data.PrintFig7(&buf); err != nil {
		t.Fatal(err)
	}
	if err := data.PrintFig8(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into Fig 7/8 output")
	}
}

func TestFig9Quick(t *testing.T) {
	data, err := RunFig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var syncS, bigAsync *Series
	for i := range data.Series {
		s := &data.Series[i]
		if s.Label == "sync" {
			syncS = s
		}
		if strings.HasPrefix(s.Label, "async") {
			bigAsync = s // last async series has the most procs
		}
	}
	if syncS == nil || bigAsync == nil {
		t.Fatal("missing series")
	}
	// Sync diverges: final >= initial (or went non-finite and the
	// history was truncated while rising).
	if len(syncS.Y) >= 2 {
		last := syncS.Y[len(syncS.Y)-1]
		if !math.IsNaN(last) && !math.IsInf(last, 0) && last < syncS.Y[0] {
			t.Fatalf("sync unexpectedly converging on Dubcova2 analogue: %g -> %g",
				syncS.Y[0], last)
		}
	}
	// Async at the largest proc count converges well below start.
	if bigAsync.Y[len(bigAsync.Y)-1] > bigAsync.Y[0]*0.05 {
		t.Fatalf("async did not converge on Dubcova2 analogue: %g -> %g",
			bigAsync.Y[0], bigAsync.Y[len(bigAsync.Y)-1])
	}
}

func TestAblationsQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablations(&buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, marker := range []string{"Ablation A1", "Ablation A2", "Ablation A3",
		"Ablation A4", "Ablation A5", "dijkstra-safra"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("ablation output missing %q", marker)
		}
	}
	// A3 must show the lockstep (jitter 0) run NOT converging and a
	// skewed run converging.
	if !strings.Contains(out, "false") || !strings.Contains(out, "true") {
		t.Fatal("skew ablation did not show both outcomes")
	}
}

func TestRunCSV(t *testing.T) {
	for _, name := range []string{"table1", "fig2", "fig3", "faults"} {
		var buf bytes.Buffer
		if err := RunCSV(name, &buf, quickCfg()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: CSV has no data rows", name)
		}
		cols := strings.Count(lines[0], ",")
		for i, ln := range lines {
			if strings.Count(ln, ",") != cols {
				t.Fatalf("%s: ragged CSV at line %d", name, i)
			}
		}
	}
	var buf bytes.Buffer
	if err := RunCSV("fig1", &buf, quickCfg()); err == nil {
		t.Fatal("fig1 should have no CSV emitter")
	}
}

func TestRatesQuick(t *testing.T) {
	rows, err := RunRates(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rate rows")
	}
	for _, r := range rows {
		if r.Measured == 0 {
			t.Fatalf("%s: no measured factor", r.Name)
		}
		if math.Abs(r.Measured-r.RhoG) > 0.05*(1+r.RhoG) {
			t.Fatalf("%s: measured sync factor %.5f far from rho(G) %.5f",
				r.Name, r.Measured, r.RhoG)
		}
		if r.AsyncF > r.RhoG*1.05 {
			t.Fatalf("%s: async factor %.5f worse than rho(G) %.5f",
				r.Name, r.AsyncF, r.RhoG)
		}
	}
}

func TestStalenessQuick(t *testing.T) {
	rows, err := RunStaleness(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no staleness rows")
	}
	for _, r := range rows {
		if r.FracFresh <= 0 || r.FracFresh > 1 {
			t.Fatalf("fresh fraction out of range: %+v", r)
		}
		if r.Mean < 0 || r.P95 > r.Max {
			t.Fatalf("inconsistent staleness row: %+v", r)
		}
	}
}

func TestRunPlot(t *testing.T) {
	var buf bytes.Buffer
	if err := RunPlot("fig3", &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "model") {
		t.Fatalf("plot output missing labels:\n%s", out)
	}
	if err := RunPlot("table1", &buf, quickCfg()); err == nil {
		t.Fatal("table1 should have no plot")
	}
}

func TestStaleModelQuick(t *testing.T) {
	rows, err := RunStaleModel(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	// FD rows all converge (Chazan-Miranker).
	var fdSteps []int
	for _, r := range rows {
		if strings.HasPrefix(r.Matrix, "FD") {
			if !r.Converged {
				t.Fatalf("FD stale=%d did not converge", r.MaxStale)
			}
			fdSteps = append(fdSteps, r.Steps)
		}
	}
	if len(fdSteps) >= 2 && fdSteps[len(fdSteps)-1] <= fdSteps[0] {
		t.Fatal("staleness did not slow the FD solve")
	}
	// FE: fresh GS converges; adversarial staleness leaves the worst
	// final residual of the FE rows.
	var fresh, adv float64
	for _, r := range rows {
		if !strings.HasPrefix(r.Matrix, "FE") {
			continue
		}
		if r.MaxStale == 0 {
			if !r.Converged {
				t.Fatal("fresh GS on FE must converge")
			}
			fresh = r.FinalRelRes
		}
		if r.Adversarial {
			adv = r.FinalRelRes
		}
	}
	if adv <= fresh*100 {
		t.Fatalf("adversarial staleness not clearly worse: fresh %g adv %g", fresh, adv)
	}
}

func TestFaultSweepQuick(t *testing.T) {
	rows, err := RunFaultSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 drop rates x {no crash, crash}
		t.Fatalf("expected 6 fault-sweep rows, got %d", len(rows))
	}
	var baseline *FaultSweepRow
	for i := range rows {
		r := &rows[i]
		if r.Drop == 0 && !r.Crash {
			baseline = r
		}
		// Theorem 1: faults cost work, never divergence.
		if !r.Converged {
			t.Fatalf("drop=%.2f crash=%v did not converge: relres=%g",
				r.Drop, r.Crash, r.RelRes)
		}
	}
	if baseline == nil {
		t.Fatal("missing fault-free baseline row")
	}
	// The lossiest run must cost at least as many relaxations as the
	// clean baseline (dropped updates are paid for in extra sweeps).
	worst := rows[len(rows)-1]
	if worst.RelaxPerN < baseline.RelaxPerN {
		t.Fatalf("40%% drop cheaper than baseline: %.1f vs %.1f relax/n",
			worst.RelaxPerN, baseline.RelaxPerN)
	}
}

// Full-scale smoke: the cheapest experiments also run at paper scale
// (covering the non-quick parameter branches). Heavier full-scale
// experiments are exercised by `ajexp all` (see full_run.txt).
func TestFullScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale smoke skipped in -short mode")
	}
	full := Config{Seed: 1}
	var buf bytes.Buffer
	if err := TableI(&buf, full); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Dubcova2") {
		t.Fatal("full-scale Table I incomplete")
	}
	points, err := RunFig3(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 {
		t.Fatalf("full-scale Fig 3 has %d delays, want 9", len(points))
	}
	last := points[len(points)-1]
	if last.ModelSpeedup < 10 {
		t.Fatalf("full-scale plateau speedup %g below expectation", last.ModelSpeedup)
	}
}
