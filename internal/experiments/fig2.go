package experiments

import (
	"fmt"
	"io"

	"repro/internal/matgen"
	"repro/internal/shm"
)

// Fig2Point is one measured propagated-relaxation fraction.
type Fig2Point struct {
	Platform string
	Threads  int
	Events   int
	Fraction float64
}

// RunFig2 reproduces Figure 2: the fraction of asynchronous relaxations
// expressible via propagation matrices, as a function of thread count,
// for the paper's two platforms:
//
//	CPU: FD matrix with 40 rows / 174 nonzeros, threads 5..40
//	Phi: FD matrix with 272 rows / 1294 nonzeros, threads 17..272
//
// The traces come from the goroutine shared-memory solver with
// mid-iteration yield injection standing in for hardware interleaving
// (see shm.Options.YieldProb); the analysis is the Phi(l) scheduler of
// Section IV-A.
func RunFig2(cfg Config) ([]Fig2Point, error) {
	rng := cfg.NewRNG(0xF162)
	iters := 60
	if cfg.Quick {
		iters = 15
	}
	var points []Fig2Point
	cases := []struct {
		platform string
		nx, ny   int
		threads  []int
	}{
		{"CPU", 5, 8, []int{5, 10, 20, 40}},
		{"Phi", 16, 17, []int{17, 34, 68, 136, 272}},
	}
	if cfg.Quick {
		cases[1].threads = []int{17, 68, 272}
	}
	for _, tc := range cases {
		a := matgen.FD2D(tc.nx, tc.ny)
		b := RandomVec(rng, a.N)
		x0 := RandomVec(rng, a.N)
		for _, th := range tc.threads {
			res := shm.Solve(a, b, x0, shm.Options{
				Threads:     th,
				MaxIters:    iters,
				Async:       true,
				RecordTrace: true,
				YieldProb:   0.02,
			})
			an, err := res.Trace.Analyze()
			if err != nil {
				return nil, err
			}
			points = append(points, Fig2Point{
				Platform: tc.platform,
				Threads:  th,
				Events:   an.Total,
				Fraction: an.Fraction,
			})
		}
	}
	return points, nil
}

// Fig2 prints the propagated-fraction sweep.
func Fig2(w io.Writer, cfg Config) error {
	points, err := RunFig2(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig 2: fraction of propagated relaxations vs thread count ==")
	fmt.Fprintf(w, "%-8s %8s %10s %10s\n", "Platform", "Threads", "Events", "Fraction")
	for _, p := range points {
		fmt.Fprintf(w, "%-8s %8d %10d %10.3f\n", p.Platform, p.Threads, p.Events, p.Fraction)
	}
	fmt.Fprintln(w, "  (paper: majority propagated, fraction increases with thread count;")
	fmt.Fprintln(w, "   worst 0.80 at Phi/34 threads, best 0.99 at CPU/40 threads)")
	fmt.Fprintln(w)
	return nil
}
