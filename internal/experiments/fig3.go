package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/matgen"
	"repro/internal/model"
)

// Fig3Point is one delay setting's speedup measurement.
type Fig3Point struct {
	Delay        int     // model-time delay delta of the slow worker
	ModelSpeedup float64 // sync model time / async model time to tol
	SimSpeedup   float64 // same ratio on the simulated machine
}

// fig3Matrix is the paper's Fig 3/4 test problem: FD with 68 rows and
// 298 nonzeros, one row per worker (68 workers on the KNL platform).
func fig3Matrix() (nx, ny int) { return 4, 17 }

// RunFig3 reproduces Figure 3: the speedup of asynchronous over
// synchronous Jacobi as a function of the delay experienced by one
// worker, at a relative residual tolerance of 1e-3.
//
// Two curves are produced: the paper's model (unit model time; the
// delayed row relaxes every delta steps, synchronous waits delta per
// sweep) and a simulated-machine curve standing in for the paper's
// OpenMP measurements (discrete-event simulation with the delayed
// process's compute time multiplied by delta).
func RunFig3(cfg Config) ([]Fig3Point, error) {
	nx, ny := fig3Matrix()
	a := matgen.FD2D(nx, ny)
	n := a.N
	rng := cfg.NewRNG(0xF163)
	b := RandomVec(rng, n)
	x0 := RandomVec(rng, n)
	const tol = 1e-3

	delays := []int{1, 2, 5, 10, 20, 30, 50, 75, 100}
	if cfg.Quick {
		delays = []int{1, 10, 50}
	}
	delayedRow := n / 2
	var points []Fig3Point
	for _, d := range delays {
		// Model curve.
		hs := model.Run(a, b, x0, model.NewSyncDelaySchedule(n, d),
			model.Options{MaxSteps: 200000, Tol: tol})
		ha := model.Run(a, b, x0, model.NewAsyncDelaySchedule(n, []int{delayedRow}, d),
			model.Options{MaxSteps: 200000, Tol: tol})
		ts, ta := hs.TimeToTol(tol), ha.TimeToTol(tol)
		msp := 0.0
		if ts > 0 && ta > 0 {
			msp = float64(ts) / float64(ta)
		}

		// Simulated machine: one row per process, process n/2 slowed by
		// a factor of d.
		mk := func(async bool) cluster.Config {
			return cluster.Config{
				Procs:           n,
				Async:           async,
				RelaxCostPerNNZ: 1e-7,
				MsgLatency:      5e-8,
				BarrierCost:     2e-7,
				IterJitter:      0.05,
				DelayProc:       delayedRow,
				DelayFactor:     float64(d),
				MaxSweeps:       200000,
				Tol:             tol,
				SamplesPerSweep: 1,
				Seed:            cfg.Seed + 3,
			}
		}
		ssim := cluster.Simulate(a, b, x0, mk(false))
		asim := cluster.Simulate(a, b, x0, mk(true))
		tss, ok1 := ssim.TimeToRelRes(tol)
		tas, ok2 := asim.TimeToRelRes(tol)
		ssp := 0.0
		if ok1 && ok2 && tas > 0 {
			ssp = tss / tas
		}
		points = append(points, Fig3Point{Delay: d, ModelSpeedup: msp, SimSpeedup: ssp})
	}
	return points, nil
}

// Fig3 prints the delay-speedup sweep.
func Fig3(w io.Writer, cfg Config) error {
	points, err := RunFig3(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig 3: async/sync speedup vs delay of one worker (FD n=68, 68 workers, tol 1e-3) ==")
	fmt.Fprintf(w, "%8s %16s %16s\n", "Delay", "Model speedup", "Sim speedup")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %16.2f %16.2f\n", p.Delay, p.ModelSpeedup, p.SimSpeedup)
	}
	fmt.Fprintln(w, "  (paper: both model and OpenMP speedups rise with delay and plateau above 40)")
	fmt.Fprintln(w)
	return nil
}
