package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

// SuiteSimRun is one (problem, method, procs) simulated run.
type SuiteSimRun struct {
	Problem string
	Async   bool
	Procs   int
	Result  *cluster.Result
	// StartRelRes is the initial relative residual (for the factor-10
	// reduction target of Fig 8).
	StartRelRes float64
	// MeanTimeTo10x is the factor-10 reduction time averaged over
	// Config.Repeats simulator seeds (paper Section VII-C: mean over
	// repeated runs); NaN when never reached.
	MeanTimeTo10x float64
}

// SuiteSimData holds every simulated run behind Figures 7 and 8.
type SuiteSimData struct {
	Runs []SuiteSimRun
	// ProcCounts is the sweep used for asynchronous runs (the paper's 1
	// to 128 nodes, i.e. 32 to 4096 MPI ranks, scaled to the analogue
	// problem sizes).
	ProcCounts []int
}

// suiteSimConfig is the distributed-machine cost model: network
// latency far above per-row compute, barrier/allreduce cost growing
// with the process count.
func suiteSimConfig(procs int, async bool, maxSweeps int, tol float64, seed uint64) cluster.Config {
	return cluster.Config{
		Procs:              procs,
		Async:              async,
		RelaxCostPerNNZ:    1e-8,
		MsgLatency:         1e-5,
		MsgCostPerNeighbor: 5e-7,
		BarrierCost:        2e-6 * math.Log2(float64(procs)+1),
		IterJitter:         0.3,
		SpeedJitter:        0.1,
		DelayProc:          -1,
		MaxSweeps:          maxSweeps,
		Tol:                tol,
		SamplesPerSweep:    1,
		Seed:               seed,
	}
}

// sweepBudget returns the sweep budget for a problem, scaled to its
// Jacobi convergence rate so that each run covers a comparable residual
// range.
func sweepBudget(name string, quick bool) int {
	budget := map[string]int{
		"thermal2":      6000,
		"G3_circuit":    1500,
		"ecology2":      6000,
		"apache2":       1200,
		"parabolic_fem": 200,
		"thermomech_dm": 400,
		"Dubcova2":      4000,
	}
	b, ok := budget[name]
	if !ok {
		b = 2000
	}
	if quick {
		b /= 10
		if b < 100 {
			b = 100
		}
	}
	return b
}

// RunSuiteSims simulates synchronous and asynchronous Jacobi for the
// six convergent Table I analogues over the process-count sweep. Runs
// feed both Fig 7 (residual vs relaxations/n) and Fig 8 (virtual time
// to a factor-10 residual reduction vs processes).
func RunSuiteSims(cfg Config) (*SuiteSimData, error) {
	procCounts := []int{8, 16, 32, 64, 128, 256}
	probs := matgen.ConvergentSuiteProblems()
	if cfg.Quick {
		procCounts = []int{8, 64}
		probs = probs[3:5] // apache2, parabolic_fem: the fast ones
	}
	data := &SuiteSimData{ProcCounts: procCounts}
	rng := cfg.NewRNG(0xF167)
	for _, p := range probs {
		a := p.A
		b := RandomVec(rng, a.N)
		x0 := RandomVec(rng, a.N)
		start := startRelRes(a, b, x0)
		budget := sweepBudget(p.Name, cfg.Quick)
		tol := start * 1e-3 // always cover well past the factor-10 mark

		repeats := cfg.Repeats
		if repeats < 1 {
			repeats = 1
		}
		// Synchronous reference at the mid process count (convergence
		// per relaxation is identical at any count; time differs, so
		// Fig 8 sync runs at every count below).
		for _, procs := range procCounts {
			for _, async := range []bool{false, true} {
				base := cfg.Seed + 11
				if async {
					base = cfg.Seed + 13
				}
				var primary *cluster.Result
				sum, hit := 0.0, 0
				for rep := 0; rep < repeats; rep++ {
					res := cluster.Simulate(a, b, x0,
						suiteSimConfig(procs, async, budget, tol, base+uint64(rep)*101))
					if rep == 0 {
						primary = res
					}
					if tt, ok := res.TimeToRelRes(start / 10); ok {
						sum += tt
						hit++
					}
				}
				mean := math.NaN()
				if hit > 0 {
					mean = sum / float64(hit)
				}
				data.Runs = append(data.Runs, SuiteSimRun{
					Problem: p.Name, Async: async, Procs: procs, Result: primary,
					StartRelRes: start, MeanTimeTo10x: mean,
				})
			}
		}
	}
	return data, nil
}

func startRelRes(a *sparse.CSR, b, x0 []float64) float64 {
	r := make([]float64, a.N)
	a.Residual(r, b, x0)
	var nr, nb float64
	for i := range r {
		nr += math.Abs(r[i])
		nb += math.Abs(b[i])
	}
	if nb == 0 {
		nb = 1
	}
	return nr / nb
}

// PrintFig7 emits residual-vs-relaxations/n curves: synchronous plus
// asynchronous at increasing process counts (the paper's green-to-blue
// gradient).
func (d *SuiteSimData) PrintFig7(w io.Writer) error {
	fmt.Fprintln(w, "== Fig 7: rel residual vs relaxations/n, sync vs async at growing process counts ==")
	byProblem := map[string][]SuiteSimRun{}
	var order []string
	for _, run := range d.Runs {
		if _, seen := byProblem[run.Problem]; !seen {
			order = append(order, run.Problem)
		}
		byProblem[run.Problem] = append(byProblem[run.Problem], run)
	}
	for _, name := range order {
		fmt.Fprintf(w, " %s:\n", name)
		var series []Series
		var syncDone bool
		for _, run := range byProblem[name] {
			if !run.Async {
				// One sync curve suffices: per-relaxation convergence
				// does not depend on the process count.
				if syncDone {
					continue
				}
				syncDone = true
			}
			label := "sync"
			if run.Async {
				label = fmt.Sprintf("async %4d procs", run.Procs)
			}
			s := Series{Label: label}
			for _, smp := range run.Result.History {
				s.X = append(s.X, smp.RelaxPerN)
				s.Y = append(s.Y, smp.RelRes)
			}
			series = append(series, s)
		}
		printSeries(w, "relax/n", "rel res", series, 8)
	}
	fmt.Fprintln(w, "  (paper: async converges in fewer relaxations, improving with process count,")
	fmt.Fprintln(w, "   most visibly on the smaller problems)")
	fmt.Fprintln(w)
	return nil
}

// PrintFig8 emits the virtual time to reduce the residual by a factor
// of 10, versus process count, for sync and async — the paper's
// strong-scaling comparison with log-interpolated measurement.
func (d *SuiteSimData) PrintFig8(w io.Writer) error {
	fmt.Fprintln(w, "== Fig 8: virtual time (s) to reduce residual 10x vs process count ==")
	type key struct {
		problem string
		procs   int
	}
	syncT := map[key]float64{}
	asyncT := map[key]float64{}
	var order []string
	seen := map[string]bool{}
	for _, run := range d.Runs {
		if !seen[run.Problem] {
			order = append(order, run.Problem)
			seen[run.Problem] = true
		}
		t := run.MeanTimeTo10x
		if math.IsNaN(t) {
			// Single-run fallback for callers that built Runs manually.
			if tt, ok := run.Result.TimeToRelRes(run.StartRelRes / 10); ok {
				t = tt
			}
		}
		k := key{run.Problem, run.Procs}
		if run.Async {
			asyncT[k] = t
		} else {
			syncT[k] = t
		}
	}
	for _, name := range order {
		fmt.Fprintf(w, " %s:\n", name)
		fmt.Fprintf(w, "    %8s %14s %14s\n", "procs", "sync time", "async time")
		for _, procs := range d.ProcCounts {
			fmt.Fprintf(w, "    %8d %14.6g %14.6g\n",
				procs, syncT[key{name, procs}], asyncT[key{name, procs}])
		}
	}
	fmt.Fprintln(w, "  (paper: async is generally faster; on the smallest problem the async time")
	fmt.Fprintln(w, "   rises mid-sweep then falls again as added concurrency improves convergence)")
	fmt.Fprintln(w)
	return nil
}
