package experiments

import (
	"fmt"
	"io"

	"repro/internal/plot"
)

// RunPlot renders one figure as an ASCII chart (ajexp -format plot).
// Only the series-shaped figures plot; the tabular experiments report
// an error pointing at the text format.
func RunPlot(name string, w io.Writer, cfg Config) error {
	switch name {
	case "fig2":
		points, err := RunFig2(cfg)
		if err != nil {
			return err
		}
		c := plot.New("Fig 2: fraction of propagated relaxations vs threads")
		c.XLabel = "threads"
		c.YLabel = "fraction"
		byPlat := map[string][][2]float64{}
		var order []string
		for _, p := range points {
			if _, ok := byPlat[p.Platform]; !ok {
				order = append(order, p.Platform)
			}
			byPlat[p.Platform] = append(byPlat[p.Platform], [2]float64{float64(p.Threads), p.Fraction})
		}
		for _, plat := range order {
			var xs, ys []float64
			for _, pt := range byPlat[plat] {
				xs = append(xs, pt[0])
				ys = append(ys, pt[1])
			}
			c.Add(plat, xs, ys)
		}
		return c.Render(w)

	case "fig3":
		points, err := RunFig3(cfg)
		if err != nil {
			return err
		}
		c := plot.New("Fig 3: async/sync speedup vs delay")
		c.XLabel = "delay"
		c.YLabel = "speedup"
		var xs, ym, ys []float64
		for _, p := range points {
			xs = append(xs, float64(p.Delay))
			ym = append(ym, p.ModelSpeedup)
			ys = append(ys, p.SimSpeedup)
		}
		c.Add("model", xs, ym)
		c.Add("simulated machine", xs, ys)
		return c.Render(w)

	case "fig4":
		data, err := RunFig4(cfg)
		if err != nil {
			return err
		}
		c := plot.New("Fig 4: rel residual vs model time under delays")
		c.XLabel = "model time"
		c.YLabel = "rel res"
		c.LogY = true
		for _, s := range data.Series {
			c.Add(s.Label, s.X, s.Y)
		}
		return c.Render(w)

	case "fig5":
		points, err := RunFig5(cfg)
		if err != nil {
			return err
		}
		c := plot.New("Fig 5(a): virtual time to 1e-3 vs threads")
		c.XLabel = "threads"
		c.YLabel = "virtual seconds"
		c.LogY = true
		var xs, sy, ay []float64
		for _, p := range points {
			xs = append(xs, float64(p.Threads))
			sy = append(sy, p.SyncTimeTol)
			ay = append(ay, p.AsyncTimeTol)
		}
		c.Add("sync", xs, sy)
		c.Add("async", xs, ay)
		return c.Render(w)

	case "fig6":
		data, err := RunFig6(cfg)
		if err != nil {
			return err
		}
		c := plot.New("Fig 6: FE matrix, sync diverges / async converges")
		c.XLabel = "iterations"
		c.YLabel = "rel res"
		c.LogY = true
		for _, s := range data.Series {
			c.Add(s.Label, s.X, s.Y)
		}
		return c.Render(w)

	case "fig9":
		data, err := RunFig9(cfg)
		if err != nil {
			return err
		}
		c := plot.New("Fig 9: Dubcova2 analogue")
		c.XLabel = "relax/n"
		c.YLabel = "rel res"
		c.LogY = true
		for _, s := range data.Series {
			c.Add(s.Label, s.X, s.Y)
		}
		return c.Render(w)
	}
	return fmt.Errorf("experiments: no plot for %q (series figures only: fig2-fig6, fig9)", name)
}
