// Package experiments regenerates every table and figure of the
// paper's evaluation (Section VII) from this library's implementations:
// the same workloads, the same parameter sweeps, the same reported
// series. Each experiment has a Run function returning structured data
// plus a text printer; the cmd/ajexp tool and the repository benchmarks
// drive them.
//
// Scale note: shared-memory runs use goroutine workers, distributed
// runs use the discrete-event cluster simulator, and "time" for
// anything latency-sensitive is the paper's own model time or the
// simulator's virtual seconds (the host machine has no parallel
// hardware to time against). EXPERIMENTS.md records the
// paper-vs-measured comparison for every entry here.
package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"

	"repro/internal/ledger"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks sweeps and problem sizes so the full suite runs in
	// seconds — used by tests; the defaults reproduce the paper-scale
	// analogues.
	Quick bool
	// Seed drives all random vectors (the paper uses random x0 and b in
	// [-1, 1]).
	Seed uint64
	// Repeats averages jitter-sensitive measurements (Fig 8's
	// time-to-target) over this many simulator seeds, echoing the
	// paper's "200 runs per configuration, mean wall-clock time".
	// 0 or 1 means a single run.
	Repeats int
	// Ledger, when non-nil, receives one RunRecord per sweep
	// repetition (the instrumented sweeps: rates, faultsweep), so the
	// tables can later be rebuilt from history by ajreport.
	Ledger *ledger.Store
	// SweepID tags the records of one sweep invocation; LedgerNote is
	// copied onto every record.
	SweepID    string
	LedgerNote string
}

// recordRun appends one sweep repetition to the configured ledger.
// Recording is best-effort: a ledger failure warns and the sweep goes
// on, because the experiment result matters more than its paper trail.
func (c Config) recordRun(rec *ledger.RunRecord) {
	if c.Ledger == nil {
		return
	}
	rec.Tool = "ajexp"
	rec.Sweep = c.SweepID
	rec.Note = c.LedgerNote
	if _, err := c.Ledger.Append(rec); err != nil {
		fmt.Fprintf(os.Stderr, "ledger: %v\n", err)
	}
}

// RandomVec returns a vector with entries uniform in [-1, 1], the
// paper's initial-guess and right-hand-side distribution.
func RandomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// NewRNG builds the deterministic generator for an experiment.
func (c Config) NewRNG(salt uint64) *rand.Rand {
	seed := c.Seed
	if seed == 0 {
		seed = 2018 // the paper's year; an arbitrary fixed default
	}
	return rand.New(rand.NewPCG(seed, salt))
}

// Series is a labelled (x, y) curve, the unit of figure output.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Downsample returns at most k points of the series, always keeping the
// first and last.
func (s Series) Downsample(k int) Series {
	n := len(s.X)
	if k <= 2 || n <= k {
		return s
	}
	out := Series{Label: s.Label}
	for i := 0; i < k; i++ {
		idx := i * (n - 1) / (k - 1)
		out.X = append(out.X, s.X[idx])
		out.Y = append(out.Y, s.Y[idx])
	}
	return out
}

// printSeries writes a compact aligned table of one or more series
// sharing the x semantics.
func printSeries(w io.Writer, xName, yName string, series []Series, points int) {
	for _, s := range series {
		d := s.Downsample(points)
		fmt.Fprintf(w, "  %s:\n", s.Label)
		fmt.Fprintf(w, "    %14s  %14s\n", xName, yName)
		for i := range d.X {
			fmt.Fprintf(w, "    %14.6g  %14.6g\n", d.X[i], d.Y[i])
		}
	}
}

// Names lists the runnable experiments in paper order.
func Names() []string {
	return []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablation", "rates", "staleness", "stalemodel", "faults", "recover"}
}

// Run dispatches one experiment by name, writing its report to w.
func Run(name string, w io.Writer, cfg Config) error {
	switch name {
	case "table1":
		return TableI(w, cfg)
	case "fig1":
		return Fig1(w)
	case "fig2":
		return Fig2(w, cfg)
	case "fig3":
		return Fig3(w, cfg)
	case "fig4":
		return Fig4(w, cfg)
	case "fig5":
		return Fig5(w, cfg)
	case "fig6":
		return Fig6(w, cfg)
	case "fig7":
		d, err := RunSuiteSims(cfg)
		if err != nil {
			return err
		}
		return d.PrintFig7(w)
	case "fig8":
		d, err := RunSuiteSims(cfg)
		if err != nil {
			return err
		}
		return d.PrintFig8(w)
	case "fig9":
		return Fig9(w, cfg)
	case "ablation":
		return Ablations(w, cfg)
	case "rates":
		return Rates(w, cfg)
	case "staleness":
		return Staleness(w, cfg)
	case "stalemodel":
		return StaleModel(w, cfg)
	case "faults":
		return FaultSweep(w, cfg)
	case "recover":
		return Recover(w, cfg)
	}
	valid := Names()
	sort.Strings(valid)
	return fmt.Errorf("experiments: unknown experiment %q (valid: %v)", name, valid)
}

// RunAll executes every experiment in paper order. The suite
// simulations behind Figs 7 and 8 run once and feed both printers.
func RunAll(w io.Writer, cfg Config) error {
	for _, name := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		if err := Run(name, w, cfg); err != nil {
			return err
		}
	}
	d, err := RunSuiteSims(cfg)
	if err != nil {
		return err
	}
	if err := d.PrintFig7(w); err != nil {
		return err
	}
	if err := d.PrintFig8(w); err != nil {
		return err
	}
	if err := Fig9(w, cfg); err != nil {
		return err
	}
	if err := Ablations(w, cfg); err != nil {
		return err
	}
	if err := Rates(w, cfg); err != nil {
		return err
	}
	if err := Staleness(w, cfg); err != nil {
		return err
	}
	if err := StaleModel(w, cfg); err != nil {
		return err
	}
	if err := FaultSweep(w, cfg); err != nil {
		return err
	}
	return Recover(w, cfg)
}
