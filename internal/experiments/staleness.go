package experiments

import (
	"fmt"
	"io"

	"repro/internal/matgen"
	"repro/internal/shm"
)

// StalenessRow summarizes the information-age statistics of one
// asynchronous run: how old the values consumed by relaxations were,
// in units of missed relaxations of the source row.
type StalenessRow struct {
	Platform  string
	Threads   int
	FracFresh float64
	Mean      float64
	P95       int
	Max       int
}

// RunStaleness extends the Fig 2 analysis: instead of asking whether
// relaxations are expressible as propagation matrices, it measures how
// stale the consumed information actually was. The paper's assumptions
// (Section II-B) require staleness to be bounded and information to
// eventually flow; these tables quantify both on the real goroutine
// solver.
func RunStaleness(cfg Config) ([]StalenessRow, error) {
	rng := cfg.NewRNG(0x57a1)
	iters := 60
	if cfg.Quick {
		iters = 15
	}
	cases := []struct {
		platform string
		nx, ny   int
		threads  []int
	}{
		{"CPU", 5, 8, []int{5, 10, 20, 40}},
		{"Phi", 16, 17, []int{17, 68, 272}},
	}
	if cfg.Quick {
		cases = cases[:1]
	}
	var rows []StalenessRow
	for _, tc := range cases {
		a := matgen.FD2D(tc.nx, tc.ny)
		b := RandomVec(rng, a.N)
		x0 := RandomVec(rng, a.N)
		for _, th := range tc.threads {
			res := shm.Solve(a, b, x0, shm.Options{
				Threads:     th,
				MaxIters:    iters,
				Async:       true,
				RecordTrace: true,
				YieldProb:   0.02,
			})
			st, err := res.Trace.Staleness()
			if err != nil {
				return nil, err
			}
			rows = append(rows, StalenessRow{
				Platform:  tc.platform,
				Threads:   th,
				FracFresh: st.FracFresh,
				Mean:      st.Mean,
				P95:       st.P95,
				Max:       st.Max,
			})
		}
	}
	return rows, nil
}

// Staleness prints the information-age table.
func Staleness(w io.Writer, cfg Config) error {
	rows, err := RunStaleness(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Staleness: age of information consumed by asynchronous relaxations ==")
	fmt.Fprintf(w, "%-8s %8s %10s %10s %6s %6s\n",
		"Platform", "Threads", "fresh", "mean", "p95", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %8d %9.1f%% %10.3f %6d %6d\n",
			r.Platform, r.Threads, 100*r.FracFresh, r.Mean, r.P95, r.Max)
	}
	fmt.Fprintln(w, "  (bounded staleness is assumption 1 of Section II-B; the paper's model")
	fmt.Fprintln(w, "   additionally assumes exact reads, which the fresh fraction quantifies)")
	fmt.Fprintln(w)
	return nil
}
