package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// RunCSV runs one experiment and emits its data as CSV instead of the
// aligned-text report — the machine-readable path for external plotting
// (ajexp -format csv <name>).
func RunCSV(name string, w io.Writer, cfg Config) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	switch name {
	case "table1":
		rows, err := RunTableI(cfg)
		if err != nil {
			return err
		}
		if err := cw.Write([]string{"matrix", "paper_n", "paper_nnz", "n", "nnz",
			"wdd_fraction", "rho_g", "jacobi_converges"}); err != nil {
			return err
		}
		for _, r := range rows {
			if err := cw.Write([]string{
				r.Name, itoa(r.PaperN), itoa(r.PaperNNZ), itoa(r.N), itoa(r.NNZ),
				ftoa(r.WDDFraction), ftoa(r.RhoG), strconv.FormatBool(r.JacobiConverges),
			}); err != nil {
				return err
			}
		}
		return nil

	case "fig2":
		points, err := RunFig2(cfg)
		if err != nil {
			return err
		}
		if err := cw.Write([]string{"platform", "threads", "events", "fraction"}); err != nil {
			return err
		}
		for _, p := range points {
			if err := cw.Write([]string{p.Platform, itoa(p.Threads), itoa(p.Events), ftoa(p.Fraction)}); err != nil {
				return err
			}
		}
		return nil

	case "fig3":
		points, err := RunFig3(cfg)
		if err != nil {
			return err
		}
		if err := cw.Write([]string{"delay", "model_speedup", "sim_speedup"}); err != nil {
			return err
		}
		for _, p := range points {
			if err := cw.Write([]string{itoa(p.Delay), ftoa(p.ModelSpeedup), ftoa(p.SimSpeedup)}); err != nil {
				return err
			}
		}
		return nil

	case "fig4":
		data, err := RunFig4(cfg)
		if err != nil {
			return err
		}
		return writeSeriesCSV(cw, "model_time", data.Series)

	case "fig5":
		points, err := RunFig5(cfg)
		if err != nil {
			return err
		}
		if err := cw.Write([]string{"threads", "sync_time_tol", "async_time_tol",
			"sync_time_100", "async_time_100"}); err != nil {
			return err
		}
		for _, p := range points {
			if err := cw.Write([]string{itoa(p.Threads), ftoa(p.SyncTimeTol), ftoa(p.AsyncTimeTol),
				ftoa(p.SyncTime100), ftoa(p.AsyncTime100)}); err != nil {
				return err
			}
		}
		return nil

	case "fig6":
		data, err := RunFig6(cfg)
		if err != nil {
			return err
		}
		all := append(append([]Series{}, data.Series...), data.ModelSeries...)
		all = append(all, data.LongRun)
		return writeSeriesCSV(cw, "iterations", all)

	case "fig7", "fig8":
		data, err := RunSuiteSims(cfg)
		if err != nil {
			return err
		}
		if name == "fig7" {
			if err := cw.Write([]string{"problem", "scheme", "procs", "relax_per_n", "rel_res"}); err != nil {
				return err
			}
			for _, run := range data.Runs {
				scheme := "sync"
				if run.Async {
					scheme = "async"
				}
				for _, smp := range run.Result.History {
					if err := cw.Write([]string{run.Problem, scheme, itoa(run.Procs),
						ftoa(smp.RelaxPerN), ftoa(smp.RelRes)}); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if err := cw.Write([]string{"problem", "scheme", "procs", "time_to_10x"}); err != nil {
			return err
		}
		for _, run := range data.Runs {
			scheme := "sync"
			if run.Async {
				scheme = "async"
			}
			t, ok := run.Result.TimeToRelRes(run.StartRelRes / 10)
			ts := ""
			if ok {
				ts = ftoa(t)
			}
			if err := cw.Write([]string{run.Problem, scheme, itoa(run.Procs), ts}); err != nil {
				return err
			}
		}
		return nil

	case "fig9":
		data, err := RunFig9(cfg)
		if err != nil {
			return err
		}
		return writeSeriesCSV(cw, "relax_per_n", data.Series)

	case "faults":
		rows, err := RunFaultSweep(cfg)
		if err != nil {
			return err
		}
		var recs [][]string
		for _, r := range rows {
			recs = append(recs, []string{ftoa(r.Drop), strconv.FormatBool(r.Crash),
				ftoa(r.RelRes), strconv.FormatBool(r.Converged),
				ftoa(r.RelaxPerN), itoa(r.Resumes)})
		}
		return WriteTable(cw,
			[]string{"drop", "crash", "rel_res", "converged", "relax_per_n", "resumes"}, recs)

	case "recover":
		data, err := RunRecoverSweep(cfg)
		if err != nil {
			return err
		}
		var recs [][]string
		for _, r := range data.Rows {
			recs = append(recs, []string{
				ftoa(float64(r.Interval) / float64(time.Millisecond)),
				ftoa(float64(r.TimeToSolution) / float64(time.Millisecond)),
				ftoa(r.RelaxPerN), ftoa(r.WastedPerN),
				ftoa(float64(r.CheckpointAge) / float64(time.Millisecond)),
				strconv.FormatBool(r.Converged)})
		}
		return WriteTable(cw,
			[]string{"interval_ms", "time_to_solution_ms", "relax_per_n",
				"wasted_per_n", "checkpoint_age_ms", "converged"}, recs)

	case "rates":
		rows, err := RunRateSweep(cfg)
		if err != nil {
			return err
		}
		var recs [][]string
		for _, r := range rows {
			recs = append(recs, []string{itoa(r.Workers), ftoa(r.RhoHat),
				ftoa(r.Lo), ftoa(r.Hi), itoa(r.Samples), ftoa(r.RelRes)})
		}
		return WriteTable(cw,
			[]string{"workers", "rho_hat", "rho_lo", "rho_hi", "samples", "rel_res"}, recs)
	}
	return fmt.Errorf("experiments: no CSV emitter for %q (text-only: fig1, ablation)", name)
}

// WriteTable emits one header row followed by the data rows, checking
// that every row has the header's width — the shared shape of the
// sweep emitters above and of ajreport's ledger-derived tables.
func WriteTable(cw *csv.Writer, header []string, rows [][]string) error {
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, r := range rows {
		if len(r) != len(header) {
			return fmt.Errorf("experiments: csv row %d has %d fields, header has %d", i, len(r), len(header))
		}
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	return nil
}

func writeSeriesCSV(cw *csv.Writer, xName string, series []Series) error {
	if err := cw.Write([]string{"series", xName, "value"}); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.X {
			if err := cw.Write([]string{s.Label, ftoa(s.X[i]), ftoa(s.Y[i])}); err != nil {
				return err
			}
		}
	}
	return nil
}

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
