package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fault"
	"repro/internal/matgen"
	"repro/internal/resilience"
	"repro/internal/shm"
)

// RecoverRow is one configuration of the checkpoint-interval sweep: an
// asynchronous shared-memory solve that loses a worker to an injected
// fail-stop crash and is then hard-killed mid-flight, restarted from
// the last checkpoint that survived, and run to tolerance.
type RecoverRow struct {
	// Interval between checkpoint writes during the doomed first leg.
	Interval time.Duration
	// TimeToSolution is wall clock across both legs (kill + resume).
	TimeToSolution time.Duration
	// RelaxPerN is total relaxations across both legs divided by n.
	RelaxPerN float64
	// WastedPerN is RelaxPerN minus the uninterrupted baseline's — the
	// work the crash+kill cost, which shrinks as checkpoints get
	// fresher.
	WastedPerN float64
	// CheckpointAge is how stale the surviving checkpoint was at kill
	// time (kill instant minus the checkpoint's recorded elapsed time).
	CheckpointAge time.Duration
	Converged     bool
}

// RecoverData is the sweep result plus its uninterrupted baseline.
type RecoverData struct {
	BaselineTime    time.Duration
	BaselineRelaxPN float64
	Rows            []RecoverRow
}

// RunRecoverSweep measures time-to-solution and relaxations wasted as
// a function of the checkpoint interval.
//
// The scenario per interval: the async shm solver runs under a fault
// plan that fail-stops one of its eight workers (the PR 3 crash plan),
// so the run cannot converge on its own; checkpoints land every
// Interval. Half a baseline-solve later the whole process is
// hard-killed — simulated by loading the checkpoint file *before*
// cancelling the run, so the at-exit checkpoint (which a real kill -9
// would never produce) is ignored. A fresh solve resumes from that
// surviving checkpoint — restoring the fault streams revives the
// crashed worker, exactly as restarting the binary would — and runs to
// tolerance. Stale checkpoints lose up to Interval of survivor work;
// the sweep prices that staleness.
func RunRecoverSweep(cfg Config) (*RecoverData, error) {
	nx := 24
	intervals := []time.Duration{
		2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond,
	}
	if cfg.Quick {
		nx = 16
		intervals = []time.Duration{2 * time.Millisecond, 10 * time.Millisecond}
	}
	a := matgen.FD2D(nx, nx)
	rng := cfg.NewRNG(0x4ec0)
	b := RandomVec(rng, a.N)
	x0 := RandomVec(rng, a.N)
	const workers = 8
	const tol = 1e-4
	seed := cfg.Seed
	if seed == 0 {
		seed = 2018
	}
	// A per-iteration delay throttles the solve into the tens of
	// milliseconds so millisecond checkpoint intervals resolve.
	throttle := func() *fault.Plan {
		return &fault.Plan{
			Seed: seed, StallRank: -1,
			DelayMean: 50 * time.Microsecond, DelayProb: 1,
		}
	}

	base := shm.Solve(a, b, x0, shm.Options{
		Threads: workers, MaxIters: 1 << 20, Tol: tol, Async: true,
		DelayThread: -1, Fault: throttle(),
	})
	if !base.Converged {
		return nil, fmt.Errorf("experiments: recover baseline did not converge (relres %g)", base.RelRes)
	}
	data := &RecoverData{
		BaselineTime:    base.WallTime,
		BaselineRelaxPN: float64(base.TotalRelaxations) / float64(a.N),
	}
	killAfter := base.WallTime / 2

	dir, err := os.MkdirTemp("", "ajrecover")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	for _, interval := range intervals {
		plan := throttle()
		plan.CrashRanks = []int{workers / 2}
		plan.CrashIter = 20
		path := filepath.Join(dir, fmt.Sprintf("ck-%s.ajcp", interval))

		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan *shm.Result, 1)
		t0 := time.Now()
		go func() {
			done <- shm.Solve(a, b, x0, shm.Options{
				Threads: workers, MaxIters: 1 << 20, Tol: tol, Async: true,
				DelayThread: -1, Fault: plan, Ctx: ctx,
				Checkpoint: &resilience.Spec{Path: path, Interval: interval},
			})
		}()
		// The hard kill: capture the last on-disk checkpoint BEFORE
		// cancelling, then ignore anything written at exit.
		time.Sleep(killAfter)
		var ck *resilience.Checkpoint
		for {
			raw, rerr := os.ReadFile(path)
			if rerr == nil {
				if ck, rerr = resilience.Decode(raw); rerr == nil {
					break
				}
			}
			// No tick has landed yet (interval > kill time): wait for
			// the first write rather than fabricating a restart point.
			time.Sleep(time.Millisecond)
		}
		cancel()
		res1 := <-done
		leg1 := time.Since(t0)

		res2 := shm.Solve(a, b, ck.X, shm.Options{
			Threads: workers, MaxIters: 1 << 20, Tol: tol, Async: true,
			DelayThread: -1, Fault: plan, Resume: ck,
		})
		totalRelax := res1.TotalRelaxations + res2.TotalRelaxations
		row := RecoverRow{
			Interval:       interval,
			TimeToSolution: leg1 + res2.WallTime,
			RelaxPerN:      float64(totalRelax) / float64(a.N),
			CheckpointAge:  leg1 - ck.Elapsed,
			Converged:      res2.Converged,
		}
		row.WastedPerN = row.RelaxPerN - data.BaselineRelaxPN
		data.Rows = append(data.Rows, row)
	}
	return data, nil
}

// Recover prints the checkpoint-interval sweep table.
func Recover(w io.Writer, cfg Config) error {
	data, err := RunRecoverSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Recovery: checkpoint interval vs cost of a crash (async shm, FD2D, 8 workers) ==")
	fmt.Fprintf(w, "baseline (no crash): %v, %.1f relax/n\n",
		data.BaselineTime.Round(time.Millisecond), data.BaselineRelaxPN)
	fmt.Fprintf(w, "%10s %12s %10s %10s %10s %10s\n",
		"interval", "ttsolution", "relax/n", "wasted/n", "ck age", "converged")
	for _, r := range data.Rows {
		fmt.Fprintf(w, "%10s %12s %10.1f %10.1f %10s %10v\n",
			r.Interval, r.TimeToSolution.Round(time.Millisecond),
			r.RelaxPerN, r.WastedPerN, r.CheckpointAge.Round(time.Millisecond),
			r.Converged)
	}
	fmt.Fprintln(w, "  (a fail-stopped worker plus a mid-flight hard kill; shorter intervals leave")
	fmt.Fprintln(w, "   fresher checkpoints, so less survivor work is redone after the restart)")
	fmt.Fprintln(w)
	return nil
}
