package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/ledger"
	"repro/internal/matgen"
)

// FaultSweepRow is one configuration of the drop-rate sweep: the
// asynchronous distributed solver on a W.D.D. Laplacian under an
// increasingly lossy network, with one variant additionally crashing a
// rank mid-solve. Theorem 1 says the residual 1-norm cannot grow under
// any of this; the sweep measures what the faults do cost — extra
// relaxations and resume passes, never divergence.
type FaultSweepRow struct {
	Drop       float64
	Crash      bool
	RelRes     float64
	Converged  bool
	RelaxPerN  float64
	Resumes    int
	FaultHalts bool // all ranks crashed / budget exhausted
}

// RunFaultSweep sweeps the message-drop probability (and a crashed-rank
// variant per rate) on an FD2D Laplacian solved by the asynchronous
// RMA solver with flag-tree termination.
func RunFaultSweep(cfg Config) ([]FaultSweepRow, error) {
	nx := 40
	maxIters := 40000
	drops := []float64{0, 0.02, 0.05, 0.10, 0.20, 0.40}
	if cfg.Quick {
		nx = 16
		maxIters = 20000
		drops = []float64{0, 0.10, 0.40}
	}
	a := matgen.FD2D(nx, nx)
	rng := cfg.NewRNG(0xfa17)
	b := RandomVec(rng, a.N)
	x0 := RandomVec(rng, a.N)
	const procs = 8
	const tol = 1e-4

	seed := cfg.Seed
	if seed == 0 {
		seed = 2018
	}
	var rows []FaultSweepRow
	for _, drop := range drops {
		for _, crash := range []bool{false, true} {
			plan := &fault.Plan{
				Seed:      seed,
				Drop:      drop,
				StallRank: -1,
			}
			if crash {
				// One rank fail-stops early and rejoins from its current
				// iterate after a short outage.
				plan.CrashRanks = []int{procs / 2}
				plan.CrashIter = 20
				plan.Restart = true
				plan.RestartAfter = 2 * time.Millisecond
			}
			if drop == 0 && !crash {
				plan = nil // the fault-free baseline runs clean
			}
			res := dist.Solve(a, b, x0, dist.SolveOptions{
				Procs:       procs,
				MaxIters:    maxIters,
				Tol:         tol,
				Async:       true,
				Termination: dist.FlagTree,
				DelayRank:   -1,
				Fault:       plan,
			})
			rows = append(rows, FaultSweepRow{
				Drop:       drop,
				Crash:      crash,
				RelRes:     res.RelRes,
				Converged:  res.Converged,
				RelaxPerN:  float64(res.TotalRelaxations) / float64(a.N),
				Resumes:    res.Resumes,
				FaultHalts: !res.Converged,
			})
			crashed := 0.0
			if crash {
				crashed = 1
			}
			cfg.recordRun(&ledger.RunRecord{
				Substrate: "dist", Method: "jacobi-async",
				Params: map[string]float64{"workers": procs, "drop": drop, "crash": crashed},
				Matrix: ledger.DescribeMatrix(fmt.Sprintf("fd:%dx%d", nx, nx), a),
				Config: ledger.SolveConfig{Tol: tol, MaxSweeps: maxIters, Threads: procs, Seed: seed},
				Outcome: ledger.Outcome{
					Converged: res.Converged, StopReason: res.StopReason.String(),
					Sweeps: res.TotalRelaxations / a.N, RelRes: res.RelRes,
					WallNs: int64(res.WallTime), SolveNs: int64(res.Elapsed),
					Resumes: res.Resumes,
				},
			})
		}
	}
	return rows, nil
}

// FaultSweep prints the drop-rate-vs-convergence table.
func FaultSweep(w io.Writer, cfg Config) error {
	rows, err := RunFaultSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Faults: drop rate vs convergence (async dist, FD2D, 8 ranks) ==")
	fmt.Fprintf(w, "%8s %7s %12s %10s %10s %8s\n",
		"drop", "crash", "rel res", "converged", "relax/n", "resumes")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2f %7v %12.4g %10v %10.1f %8d\n",
			r.Drop, r.Crash, r.RelRes, r.Converged, r.RelaxPerN, r.Resumes)
	}
	fmt.Fprintln(w, "  (Theorem 1 in action: dropped messages and a crashed-then-restarted rank")
	fmt.Fprintln(w, "   cost relaxations and resume passes, never divergence)")
	fmt.Fprintln(w)
	return nil
}
