package experiments

import (
	"fmt"
	"io"

	"repro/internal/model"
)

// Fig1 reproduces the paper's Figure 1 worked examples: trace (a) is
// fully expressible as a sequence of propagation matrices, trace (b)
// has a cyclic dependency and loses one relaxation.
func Fig1(w io.Writer) error {
	fmt.Fprintln(w, "== Fig 1: propagation-matrix expressibility of two 4-process traces ==")
	for _, tc := range []struct {
		name  string
		trace *model.Trace
	}{
		{"(a)", model.Fig1aTrace()},
		{"(b)", model.Fig1bTrace()},
	} {
		res, err := tc.trace.Analyze()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  example %s: %d/%d relaxations propagated, parallel steps Phi: ",
			tc.name, res.Propagated, res.Total)
		for i, step := range res.Steps {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			// Report 1-based process ids like the paper.
			fmt.Fprint(w, "{")
			for j, row := range step {
				if j > 0 {
					fmt.Fprint(w, ",")
				}
				fmt.Fprintf(w, "p%d", row+1)
			}
			fmt.Fprint(w, "}")
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}
