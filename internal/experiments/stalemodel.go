package experiments

import (
	"fmt"
	"io"

	"repro/internal/matgen"
	"repro/internal/model"
)

// StaleRow is one bounded-staleness model measurement.
type StaleRow struct {
	Matrix      string
	Masks       string
	MaxStale    int
	Adversarial bool
	Converged   bool
	FinalRelRes float64
	Steps       int
}

// RunStaleModel quantifies how information age affects convergence in
// the bounded-staleness model (Baudet's general asynchronous iteration,
// the paper's Eq. 5 with nontrivial s_ij):
//
//   - On the W.D.D. FD matrix, any bounded staleness still converges
//     (the Chazan-Miranker guarantee, rho(|G|) < 1), only more slowly.
//   - On the FE matrix (rho(|G|) > 1), sequential Gauss-Seidel masks
//     converge with fresh reads, degrade under random staleness, and
//     lose their multiplicative advantage entirely under adversarial
//     (maximal constant) staleness — asynchronous convergence on
//     divergence-prone systems depends on reads being mostly current,
//     exactly the regime the Fig 2 propagated-fraction measurements
//     certify.
func RunStaleModel(cfg Config) ([]StaleRow, error) {
	rng := cfg.NewRNG(0x57a2)
	var rows []StaleRow

	// FD: sync masks, growing staleness.
	fd := matgen.FD2D(10, 10)
	bfd := RandomVec(rng, fd.N)
	x0fd := RandomVec(rng, fd.N)
	stales := []int{0, 5, 20}
	maxSteps := 20000
	if cfg.Quick {
		stales = []int{0, 10}
		maxSteps = 8000
	}
	for _, st := range stales {
		h := model.StaleRun(fd, bfd, x0fd, model.NewSyncSchedule(fd.N), model.StaleOptions{
			MaxSteps: maxSteps, Tol: 1e-8, MaxStale: st, Seed: cfg.Seed + 9,
		})
		rows = append(rows, StaleRow{
			Matrix: "FD (W.D.D.)", Masks: "sync", MaxStale: st,
			Converged: h.Converged, FinalRelRes: h.FinalRelRes(), Steps: h.Steps,
		})
	}

	// FE: GS masks, random vs adversarial staleness.
	grid := 12
	sweeps := 300
	if cfg.Quick {
		grid, sweeps = 10, 150
	}
	fe := matgen.FE2D(matgen.DefaultFEOptions(grid, grid))
	n := fe.N
	bfe := RandomVec(rng, n)
	x0fe := RandomVec(rng, n)
	gs := func() model.Schedule {
		return &model.SequenceSchedule{Masks: model.GaussSeidelMasks(n), Repeat: true}
	}
	type cse struct {
		stale int
		adv   bool
	}
	cases := []cse{{0, false}, {n, false}, {n, true}}
	for _, tc := range cases {
		h := model.StaleRun(fe, bfe, x0fe, gs(), model.StaleOptions{
			MaxSteps: sweeps * n, Tol: 1e-6, MaxStale: tc.stale,
			Adversarial: tc.adv, SampleEvery: n, Seed: cfg.Seed + 9,
		})
		masks := "gauss-seidel"
		rows = append(rows, StaleRow{
			Matrix: "FE (rho(|G|)>1)", Masks: masks, MaxStale: tc.stale, Adversarial: tc.adv,
			Converged: h.Converged, FinalRelRes: h.FinalRelRes(), Steps: h.Steps,
		})
	}
	return rows, nil
}

// StaleModel prints the bounded-staleness sensitivity table.
func StaleModel(w io.Writer, cfg Config) error {
	rows, err := RunStaleModel(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Stale model: convergence vs information age (bounded-staleness Eq. 5) ==")
	fmt.Fprintf(w, "%-16s %-13s %8s %6s %10s %14s %8s\n",
		"Matrix", "masks", "stale", "adv", "converged", "final relres", "steps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-13s %8d %6v %10v %14.3g %8d\n",
			r.Matrix, r.Masks, r.MaxStale, r.Adversarial, r.Converged, r.FinalRelRes, r.Steps)
	}
	fmt.Fprintln(w, "  (W.D.D.: Chazan-Miranker guarantees convergence under any bounded")
	fmt.Fprintln(w, "   staleness; FE: multiplicative masks need mostly-fresh reads)")
	fmt.Fprintln(w)
	return nil
}
