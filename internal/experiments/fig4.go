package experiments

import (
	"fmt"
	"io"

	"repro/internal/matgen"
	"repro/internal/model"
)

// Fig4Data holds the model convergence histories for the delayed-worker
// experiment: relative residual 1-norm versus model time, synchronous
// and asynchronous, for several delays.
type Fig4Data struct {
	Series []Series
}

// RunFig4 reproduces Figure 4 (model half): convergence histories on
// the FD n=68 problem with one worker delayed by delta in
// {0, 10, 20, 50, 100}. The asynchronous curves keep reducing the
// residual even under the largest delay (the delayed row relaxes only
// once or twice before the rest converge around it), showing the
// plateau and saw-tooth behaviour of the paper.
func RunFig4(cfg Config) (*Fig4Data, error) {
	nx, ny := fig3Matrix()
	a := matgen.FD2D(nx, ny)
	n := a.N
	rng := cfg.NewRNG(0xF164)
	b := RandomVec(rng, n)
	x0 := RandomVec(rng, n)

	maxSteps := 2500
	delays := []int{0, 10, 20, 50, 100}
	if cfg.Quick {
		maxSteps = 600
		delays = []int{0, 20, 100}
	}
	delayedRow := n / 2
	data := &Fig4Data{}
	for _, d := range delays {
		var syncSched model.Schedule
		var asyncSched model.Schedule
		if d <= 1 {
			syncSched = model.NewSyncSchedule(n)
			asyncSched = model.NewSyncSchedule(n) // no delay: async == sync in the model
		} else {
			syncSched = model.NewSyncDelaySchedule(n, d)
			asyncSched = model.NewAsyncDelaySchedule(n, []int{delayedRow}, d)
		}
		hs := model.Run(a, b, x0, syncSched, model.Options{MaxSteps: maxSteps})
		ha := model.Run(a, b, x0, asyncSched, model.Options{MaxSteps: maxSteps})
		ss := Series{Label: fmt.Sprintf("sync delay=%d", d)}
		for k := range hs.Times {
			ss.X = append(ss.X, float64(hs.Times[k]))
			ss.Y = append(ss.Y, hs.RelRes[k])
		}
		sa := Series{Label: fmt.Sprintf("async delay=%d", d)}
		for k := range ha.Times {
			sa.X = append(sa.X, float64(ha.Times[k]))
			sa.Y = append(sa.Y, ha.RelRes[k])
		}
		data.Series = append(data.Series, ss, sa)
	}
	return data, nil
}

// Fig4 prints the convergence histories.
func Fig4(w io.Writer, cfg Config) error {
	data, err := RunFig4(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig 4: relative residual 1-norm vs model time, one delayed worker (FD n=68) ==")
	printSeries(w, "model time", "rel res", data.Series, 12)
	fmt.Fprintln(w, "  (paper: async keeps reducing the residual even when one row is delayed")
	fmt.Fprintln(w, "   until convergence; sync advances only at multiples of the delay)")
	fmt.Fprintln(w)
	return nil
}
