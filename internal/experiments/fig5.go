package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/matgen"
	"repro/internal/partition"
)

// Fig5Point is one thread-count measurement of the strong-scaling
// experiment.
type Fig5Point struct {
	Threads      int
	SyncTimeTol  float64 // virtual time to rel res <= 1e-3
	AsyncTimeTol float64
	SyncTime100  float64 // virtual time for 100 sweeps
	AsyncTime100 float64
	AsyncReached bool
	SyncReached  bool
}

// RunFig5 reproduces Figure 5: strong scaling of synchronous vs
// asynchronous Jacobi on the FD matrix with 4624 rows (68x68 grid,
// 22,848 nonzeros), thread counts 1..272, on a simulated
// shared-memory machine whose barrier cost grows with the thread count
// while per-thread compute shrinks.
//
// (a) time to reach relative residual 1e-3; (b) time to carry out 100
// sweep-equivalents regardless of residual.
func RunFig5(cfg Config) ([]Fig5Point, error) {
	a := matgen.FD2D(68, 68)
	rng := cfg.NewRNG(0xF165)
	b := RandomVec(rng, a.N)
	x0 := RandomVec(rng, a.N)
	const tol = 1e-3

	threads := []int{1, 2, 4, 8, 17, 34, 68, 136, 272}
	if cfg.Quick {
		threads = []int{1, 17, 136}
	}
	mk := func(t int, async bool, maxSweeps int, tolv float64) cluster.Config {
		return cluster.Config{
			MinIters: 0,
			Procs:    t,
			Part:     partition.Contiguous(a.N, t),
			Async:    async,
			// Memory-bound shared-memory cost model: per-nonzero work,
			// negligible propagation latency, a barrier whose cost
			// grows like log2(T) (tree barrier) plus a linear
			// coherence term.
			RelaxCostPerNNZ:    2e-8,
			MsgLatency:         5e-8,
			MsgCostPerNeighbor: 1e-7,
			BarrierCost:        5e-7*math.Log2(float64(t)+1) + 2e-8*float64(t),
			IterJitter:         0.15,
			SpeedJitter:        0.05,
			DelayProc:          -1,
			MaxSweeps:          maxSweeps,
			Tol:                tolv,
			SamplesPerSweep:    2,
			Seed:               cfg.Seed + 5,
		}
	}

	maxSweeps := 40000
	if cfg.Quick {
		maxSweeps = 5000
	}
	var points []Fig5Point
	for _, t := range threads {
		p := Fig5Point{Threads: t}
		sres := cluster.Simulate(a, b, x0, mk(t, false, maxSweeps, tol))
		ares := cluster.Simulate(a, b, x0, mk(t, true, maxSweeps, tol))
		p.SyncTimeTol, p.SyncReached = sres.TimeToRelRes(tol)
		p.AsyncTimeTol, p.AsyncReached = ares.TimeToRelRes(tol)

		// (b): run until EVERY process has done 100 iterations, the
		// paper's exact measurement.
		cfgS := mk(t, false, 100, 0)
		cfgS.MinIters = 100
		cfgA := mk(t, true, 100, 0)
		cfgA.MinIters = 100
		s100 := cluster.Simulate(a, b, x0, cfgS)
		a100 := cluster.Simulate(a, b, x0, cfgA)
		p.SyncTime100 = s100.FinalTime
		p.AsyncTime100 = a100.FinalTime
		points = append(points, p)
	}
	return points, nil
}

// Fig5 prints the strong-scaling tables.
func Fig5(w io.Writer, cfg Config) error {
	points, err := RunFig5(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Fig 5: strong scaling on FD n=4624 (simulated shared-memory machine) ==")
	fmt.Fprintln(w, "  (a) virtual time to rel res <= 1e-3    (b) virtual time for 100 sweeps")
	fmt.Fprintf(w, "%8s | %12s %12s | %12s %12s\n",
		"Threads", "sync(a)", "async(a)", "sync(b)", "async(b)")
	for _, p := range points {
		sa := "-"
		if p.SyncReached {
			sa = fmt.Sprintf("%.6g", p.SyncTimeTol)
		}
		aa := "-"
		if p.AsyncReached {
			aa = fmt.Sprintf("%.6g", p.AsyncTimeTol)
		}
		fmt.Fprintf(w, "%8d | %12s %12s | %12.6g %12.6g\n",
			p.Threads, sa, aa, p.SyncTime100, p.AsyncTime100)
	}
	fmt.Fprintln(w, "  (paper: async up to 10x faster at high thread counts; async is fastest")
	fmt.Fprintln(w, "   at 272 threads while sync is fastest below 272)")
	fmt.Fprintln(w)
	return nil
}
