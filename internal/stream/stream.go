// Package stream is a lock-light telemetry bus connecting the solvers'
// existing instrumentation points to live consumers (the analytics
// engine, the /stream SSE endpoint, cmd/ajmon).
//
// Design constraints, in order:
//
//  1. The hot path never blocks. Publish is wait-free from the
//     publisher's point of view: each subscriber owns a bounded ring
//     (a buffered channel); when it is full the oldest event is
//     dropped and a per-subscriber drop counter increments. A
//     subscriber that stops reading therefore costs the solver two
//     channel operations per event, never a stall.
//  2. Nil-safe handle. A nil *Bus no-ops on every method, so the
//     disabled path costs one pointer comparison — the same contract
//     as obs.SolverMetrics and trace.Recorder.
//  3. Zero dependencies. The package sits below obs in the import
//     graph; anything may publish to it.
//
// Events carry periodic per-worker samples (residual contribution,
// relaxation and iteration counts, staleness since the last sample),
// global residual samples, and fault/recovery/termination lifecycle
// events. The JSON encoding (used verbatim by the SSE endpoint) keeps
// field names stable for external consumers.
package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Type discriminates bus events.
type Type uint8

const (
	// TypeSample is a periodic per-worker progress sample.
	TypeSample Type = iota + 1
	// TypeResidual is a global residual sample. Estimated=true marks
	// a sum-of-local-shares approximation (distributed substrate)
	// rather than an exactly computed norm.
	TypeResidual
	// TypeFault is an injected-fault lifecycle event (drop, delay,
	// stall, crash, restart, ...); Kind names the fault.
	TypeFault
	// TypeRecovery is a recovery-layer event (checkpoint, reassign,
	// worker death, resume, ...); Kind names the action.
	TypeRecovery
	// TypeTermination is a termination-protocol transition; Kind
	// names the transition (flag_raise, latch, halt, ...).
	TypeTermination
	// TypeDone marks the end of a solve. Converged carries the
	// outcome; Residual the final relative residual if known.
	TypeDone
)

var typeNames = [...]string{
	TypeSample:      "sample",
	TypeResidual:    "residual",
	TypeFault:       "fault",
	TypeRecovery:    "recovery",
	TypeTermination: "termination",
	TypeDone:        "done",
}

// String returns the wire name of the type ("sample", "residual", ...).
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ParseType inverts String. Unknown names return 0, false.
func ParseType(s string) (Type, bool) {
	for i, n := range typeNames {
		if n == s {
			return Type(i), true
		}
	}
	return 0, false
}

// MarshalJSON encodes the type as its wire name.
func (t Type) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name back into a Type.
func (t *Type) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("stream: bad event type %q", b)
	}
	v, ok := ParseType(string(b[1 : len(b)-1]))
	if !ok {
		return fmt.Errorf("stream: unknown event type %q", b)
	}
	*t = v
	return nil
}

// Event is one bus message. TS is event time relative to the bus
// epoch (wall time for live runs, recorded time for replays).
type Event struct {
	TS        time.Duration `json:"ts_ns"`
	Type      Type          `json:"type"`
	Worker    int           `json:"worker"` // -1 for global events
	Iter      int64         `json:"iter,omitempty"`
	Relax     int64         `json:"relax,omitempty"`
	Residual  float64       `json:"residual,omitempty"`
	Staleness float64       `json:"staleness,omitempty"` // mean missed updates since last sample
	StaleN    int64         `json:"stale_n,omitempty"`   // observations behind Staleness (0 = no reads)
	MaxStale  int64         `json:"max_stale,omitempty"`
	Estimated bool          `json:"estimated,omitempty"`
	Kind      string        `json:"kind,omitempty"`
	Converged bool          `json:"converged,omitempty"`
}

// Sub is one subscriber's bounded ring over the bus. Receive from C();
// events overflowing the ring are dropped oldest-first and counted.
type Sub struct {
	bus     *Bus
	ch      chan Event
	done    chan struct{}
	closed  atomic.Bool
	dropped atomic.Uint64
}

// C returns the receive channel. It is never closed (a publisher may
// hold a stale subscriber-list snapshot); select on Done to stop.
func (s *Sub) C() <-chan Event { return s.ch }

// Done is closed when the subscription is Closed, letting consumers
// unblock even if no further events arrive.
func (s *Sub) Done() <-chan struct{} { return s.done }

// Dropped reports how many events were discarded because this
// subscriber's ring was full.
func (s *Sub) Dropped() uint64 { return s.dropped.Load() }

// Close unsubscribes from the bus. Idempotent. Events already in the
// ring remain readable from C().
func (s *Sub) Close() {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.bus.unsubscribe(s)
	close(s.done)
}

// Bus fans events out to subscribers. The subscriber list is
// copy-on-write behind an atomic pointer: Publish loads it with one
// atomic read and touches no locks.
type Bus struct {
	epoch     time.Time
	subs      atomic.Pointer[[]*Sub]
	mu        sync.Mutex // serializes Subscribe/unsubscribe COW swaps
	published atomic.Uint64
}

// NewBus returns a bus whose event clock starts now.
func NewBus() *Bus {
	return &Bus{epoch: time.Now()}
}

// Active reports whether anyone is listening. Publishers may use it to
// skip building events entirely; nil-safe.
func (b *Bus) Active() bool {
	if b == nil {
		return false
	}
	subs := b.subs.Load()
	return subs != nil && len(*subs) > 0
}

// Now returns the current event time (elapsed since the bus epoch).
func (b *Bus) Now() time.Duration {
	if b == nil {
		return 0
	}
	return time.Since(b.epoch)
}

// Published reports the total number of events accepted by Publish
// while at least one subscriber was attached.
func (b *Bus) Published() uint64 {
	if b == nil {
		return 0
	}
	return b.published.Load()
}

// Subscribe attaches a new subscriber with the given ring capacity
// (minimum 1; 0 or negative selects a default of 1024).
func (b *Bus) Subscribe(capacity int) *Sub {
	if b == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = 1024
	}
	s := &Sub{bus: b, ch: make(chan Event, capacity), done: make(chan struct{})}
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.subs.Load()
	var next []*Sub
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	b.subs.Store(&next)
	return s
}

func (b *Bus) unsubscribe(s *Sub) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.subs.Load()
	if old == nil {
		return
	}
	next := make([]*Sub, 0, len(*old))
	for _, x := range *old {
		if x != s {
			next = append(next, x)
		}
	}
	b.subs.Store(&next)
}

// Publish fans ev out to every subscriber without ever blocking: a
// full ring evicts its oldest event (counting the drop) to admit the
// new one. If ev.TS is zero it is stamped with the bus clock. Nil-safe
// and free when nobody subscribed.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	subs := b.subs.Load()
	if subs == nil || len(*subs) == 0 {
		return
	}
	if ev.TS == 0 {
		ev.TS = time.Since(b.epoch)
	}
	b.published.Add(1)
	for _, s := range *subs {
		select {
		case s.ch <- ev:
			continue
		default:
		}
		// Ring full: evict the oldest event and retry once. The
		// consumer may race us for the eviction; either way one slot
		// frees up, and if it refills in between we drop the new
		// event instead. Both outcomes count as one drop.
		select {
		case <-s.ch:
		default:
		}
		select {
		case s.ch <- ev:
		default:
		}
		s.dropped.Add(1)
	}
}
