package stream

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilBusIsFree(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	b.Publish(Event{Type: TypeSample}) // must not panic
	if b.Subscribe(8) != nil {
		t.Fatal("nil bus returned a subscriber")
	}
	if b.Now() != 0 || b.Published() != 0 {
		t.Fatal("nil bus reports nonzero state")
	}
	var s *Sub
	s.Close() // must not panic
}

func TestPublishWithoutSubscribersIsDiscarded(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("fresh bus reports active")
	}
	b.Publish(Event{Type: TypeSample})
	if got := b.Published(); got != 0 {
		t.Fatalf("published=%d with no subscribers, want 0", got)
	}
}

func TestFanOutAndTimestamps(t *testing.T) {
	b := NewBus()
	s1 := b.Subscribe(16)
	s2 := b.Subscribe(16)
	defer s1.Close()
	defer s2.Close()
	if !b.Active() {
		t.Fatal("bus with subscribers reports inactive")
	}
	b.Publish(Event{Type: TypeResidual, Worker: -1, Residual: 0.5})
	for i, s := range []*Sub{s1, s2} {
		select {
		case ev := <-s.C():
			if ev.Type != TypeResidual || ev.Residual != 0.5 {
				t.Fatalf("sub %d got %+v", i, ev)
			}
			if ev.TS <= 0 {
				t.Fatalf("sub %d event not timestamped: %v", i, ev.TS)
			}
		case <-time.After(time.Second):
			t.Fatalf("sub %d did not receive the event", i)
		}
	}
}

// TestIdleSubscriberNeverBlocks is the acceptance-criterion test: a
// subscriber that stops reading must never block a publisher; the
// drop counter increments instead and the ring retains recent events.
func TestIdleSubscriberNeverBlocks(t *testing.T) {
	b := NewBus()
	const cap = 64
	s := b.Subscribe(cap)
	defer s.Close()

	const n = 10 * cap
	doneCh := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			b.Publish(Event{Type: TypeSample, Worker: 0, Iter: int64(i)})
		}
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on an idle subscriber")
	}
	if s.Dropped() == 0 {
		t.Fatal("overflow did not increment the drop counter")
	}
	if got := len(s.ch); got != cap {
		t.Fatalf("ring holds %d events, want full capacity %d", got, cap)
	}
	// Drop-oldest: the retained window must be the most recent events.
	first := <-s.C()
	if first.Iter < int64(n-2*cap) {
		t.Fatalf("oldest retained event is iter %d; drop-oldest should have evicted it", first.Iter)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := NewBus()
	s := b.Subscribe(4)
	b.Publish(Event{Type: TypeSample})
	s.Close()
	s.Close() // idempotent
	select {
	case <-s.Done():
	default:
		t.Fatal("Done not closed after Close")
	}
	b.Publish(Event{Type: TypeSample})
	if got := len(s.ch); got != 1 {
		t.Fatalf("ring has %d events after unsubscribe, want only the pre-close one", got)
	}
	if b.Active() {
		t.Fatal("bus still active after sole subscriber left")
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Publish(Event{Type: TypeSample, Worker: w})
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		s := b.Subscribe(8)
		<-s.C()
		s.Close()
	}
	close(stop)
	wg.Wait()
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{
		TS: 1500 * time.Nanosecond, Type: TypeFault, Worker: 3,
		Iter: 7, Relax: 90, Residual: 1e-4, Staleness: 2.5, StaleN: 4,
		MaxStale: 9, Estimated: true, Kind: "crash", Converged: false,
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("unmarshal %s: %v", blob, err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	var bad Event
	if err := json.Unmarshal([]byte(`{"type":"nonsense"}`), &bad); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestTypeNames(t *testing.T) {
	for _, typ := range []Type{TypeSample, TypeResidual, TypeFault, TypeRecovery, TypeTermination, TypeDone} {
		got, ok := ParseType(typ.String())
		if !ok || got != typ {
			t.Fatalf("ParseType(%q) = %v, %v", typ.String(), got, ok)
		}
	}
	if _, ok := ParseType("bogus"); ok {
		t.Fatal("ParseType accepted a bogus name")
	}
}
