package vec

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestCopyClone(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	Copy(dst, src)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("Copy mismatch at %d", i)
		}
	}
	c := Clone(src)
	c[0] = 99
	if src[0] == 99 {
		t.Fatal("Clone aliases source")
	}
}

func TestCopyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Copy(make([]float64, 2), make([]float64, 3))
}

func TestFillZero(t *testing.T) {
	v := []float64{1, 2, 3}
	Fill(v, 7)
	for _, x := range v {
		if x != 7 {
			t.Fatal("Fill failed")
		}
	}
	Zero(v)
	for _, x := range v {
		if x != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %g want %g", i, y[i], want[i])
		}
	}
}

func TestAxpby(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 4}
	Axpby(2, x, -1, y)
	if y[0] != -1 || y[1] != 0 {
		t.Fatalf("Axpby got %v", y)
	}
}

func TestAddSubScaleMulElem(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	dst := make([]float64, 2)
	Add(dst, a, b)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("Add got %v", dst)
	}
	Sub(dst, a, b)
	if dst[0] != -2 || dst[1] != -3 {
		t.Fatalf("Sub got %v", dst)
	}
	Scale(2, dst)
	if dst[0] != -4 || dst[1] != -6 {
		t.Fatalf("Scale got %v", dst)
	}
	MulElem(dst, a, b)
	if dst[0] != 3 || dst[1] != 10 {
		t.Fatalf("MulElem got %v", dst)
	}
}

func TestDot(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %g", d)
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if Norm1(v) != 7 {
		t.Fatalf("Norm1 = %g", Norm1(v))
	}
	if Norm2(v) != 5 {
		t.Fatalf("Norm2 = %g", Norm2(v))
	}
	if NormInf(v) != 4 {
		t.Fatalf("NormInf = %g", NormInf(v))
	}
}

func TestNorm1Range(t *testing.T) {
	v := []float64{1, -2, 3, -4}
	if got := Norm1Range(v, 1, 3); got != 5 {
		t.Fatalf("Norm1Range = %g", got)
	}
	// Ranges must partition the norm.
	if got := Norm1Range(v, 0, 2) + Norm1Range(v, 2, 4); got != Norm1(v) {
		t.Fatalf("partitioned ranges = %g, full = %g", got, Norm1(v))
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if Dist2(a, b) != 5 {
		t.Fatalf("Dist2 = %g", Dist2(a, b))
	}
	if DistInf(a, b) != 4 {
		t.Fatalf("DistInf = %g", DistInf(a, b))
	}
}

func TestRelResidual(t *testing.T) {
	r := []float64{1, 1}
	b := []float64{2, 2}
	if got := RelResidual(Norm1, r, b); got != 0.5 {
		t.Fatalf("RelResidual = %g", got)
	}
	// zero b: absolute residual returned
	if got := RelResidual(Norm1, r, []float64{0, 0}); got != 2 {
		t.Fatalf("RelResidual zero-b = %g", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2}) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

// Property: norm inequalities ||v||_inf <= ||v||_2 <= ||v||_1 hold for
// all vectors.
func TestNormOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// bound magnitude to avoid overflow in Norm2 squaring
			v = append(v, math.Mod(x, 1e100))
		}
		n1, n2, ni := Norm1(v), Norm2(v), NormInf(v)
		return ni <= n2*(1+1e-12) && n2 <= n1*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(50)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64()
		}
		alpha := rng.NormFloat64()
		// dot(alpha*a + c, b) == alpha*dot(a,b) + dot(c,b)
		lhsArg := make([]float64, n)
		for i := range lhsArg {
			lhsArg[i] = alpha*a[i] + c[i]
		}
		lhs := Dot(lhsArg, b)
		rhs := alpha*Dot(a, b) + Dot(c, b)
		if !almostEq(lhs, rhs, 1e-10) {
			t.Fatalf("linearity violated: %g vs %g", lhs, rhs)
		}
		if !almostEq(Dot(a, b), Dot(b, a), 1e-12) {
			t.Fatal("symmetry violated")
		}
	}
}

// Property: Axpy then Axpy with negated alpha restores y.
func TestAxpyInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(64)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		orig := Clone(y)
		alpha := rng.NormFloat64()
		Axpy(alpha, x, y)
		Axpy(-alpha, x, y)
		for i := range y {
			if !almostEq(y[i], orig[i], 1e-12) {
				t.Fatalf("Axpy not invertible at %d: %g vs %g", i, y[i], orig[i])
			}
		}
	}
}

func BenchmarkDot(b *testing.B) {
	n := 1 << 14
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 7)
		y[i] = float64(i % 5)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkNorm1(b *testing.B) {
	n := 1 << 14
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Norm1(x)
	}
}
