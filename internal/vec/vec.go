// Package vec provides dense vector kernels used throughout the
// asynchronous Jacobi library: BLAS-1 style operations, norms, and
// residual helpers.
//
// All functions operate on plain []float64 slices. Functions that write
// into a destination take it as the first argument and panic if slice
// lengths disagree, mirroring the convention of the standard library's
// copy builtin (where mismatch is silent) but with explicit checking,
// because silent truncation would corrupt solver state.
package vec

import "math"

// checkLen panics when two vectors participating in an element-wise
// operation have different lengths.
func checkLen(a, b []float64) {
	if len(a) != len(b) {
		panic("vec: length mismatch")
	}
}

// Copy copies src into dst. The two must have equal length.
func Copy(dst, src []float64) {
	checkLen(dst, src)
	copy(dst, src)
}

// Clone returns a newly allocated copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to c.
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Zero sets every element of v to zero.
func Zero(v []float64) { Fill(v, 0) }

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	checkLen(x, y)
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Axpby computes y = alpha*x + beta*y.
func Axpby(alpha float64, x []float64, beta float64, y []float64) {
	checkLen(x, y)
	for i, xv := range x {
		y[i] = alpha*xv + beta*y[i]
	}
}

// Add computes dst = a + b.
func Add(dst, a, b []float64) {
	checkLen(dst, a)
	checkLen(a, b)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b.
func Sub(dst, a, b []float64) {
	checkLen(dst, a)
	checkLen(a, b)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Scale multiplies every element of v by alpha.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// MulElem computes dst = a .* b (element-wise product).
func MulElem(dst, a, b []float64) {
	checkLen(dst, a)
	checkLen(a, b)
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	checkLen(a, b)
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm1 returns the L1 norm sum |v_i|. The paper monitors the residual
// in this norm because Theorem 1 bounds the residual propagation matrix
// in the induced 1-norm.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Norm2 returns the Euclidean norm. The naive sum-of-squares is used:
// solver vectors are well scaled (unit-diagonal systems, |x| ~ 1) so
// overflow protection a la hypot is unnecessary and would slow the
// inner loop.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry. The error propagation
// matrix of Theorem 1 is bounded in the induced infinity norm.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm1Range returns sum |v_i| for i in [lo, hi). Worker threads in the
// shared-memory solver each compute the norm of their own row range and
// combine (Section V of the paper).
func Norm1Range(v []float64, lo, hi int) float64 {
	var s float64
	for _, x := range v[lo:hi] {
		s += math.Abs(x)
	}
	return s
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DistInf returns the max-norm distance between a and b.
func DistInf(a, b []float64) float64 {
	checkLen(a, b)
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// RelResidual returns ||r|| / ||b|| in the given norm, guarding the
// ||b|| = 0 case (where the residual itself is returned, since the
// exact solution of Ax = 0 is x = 0 and any nonzero residual is
// absolute error).
func RelResidual(norm func([]float64) float64, r, b []float64) float64 {
	nb := norm(b)
	nr := norm(r)
	if nb == 0 {
		return nr
	}
	return nr / nb
}

// AllFinite reports whether every element is finite (no NaN/Inf).
// Divergent synchronous Jacobi runs overflow quickly; histories are
// truncated at the first non-finite entry.
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
