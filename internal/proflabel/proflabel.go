// Package proflabel caches pprof goroutine-label contexts for the
// solver hot paths. Label sets are immutable and safe to share across
// goroutines, but building one allocates: three phase contexts per
// worker cost ~110 allocations on an 8-worker shm solve — most of the
// untraced solve's entire allocation budget. Each solver substrate
// keeps one process-wide cache and reuses the contexts across every
// solve, so repeated solves (a serving workload) label their workers
// for free.
package proflabel

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
)

// Set is one worker's label contexts, one per iteration phase. The
// phases match what `go tool pprof -tagfocus` splits a -profile-out
// capture by: relax (residual + correction), publish (shared stores /
// sends), wait (barriers, termination polling, yields).
type Set struct {
	Relax, Publish, Wait context.Context
}

// Cache builds and retains label sets keyed by worker id for one
// solver substrate ("shm", "dist", ...).
type Cache struct {
	solver string
	mu     sync.Mutex
	tab    []*Set
}

// NewCache returns an empty cache whose sets carry the given solver
// label value.
func NewCache(solver string) *Cache { return &Cache{solver: solver} }

// For returns the label set for a worker id, building it on first use.
// The returned set is shared: callers must treat it as read-only.
func (c *Cache) For(worker int) *Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.tab) <= worker {
		c.tab = append(c.tab, nil)
	}
	if c.tab[worker] == nil {
		wid := strconv.Itoa(worker)
		mk := func(phase string) context.Context {
			return pprof.WithLabels(context.Background(),
				pprof.Labels("solver", c.solver, "worker", wid, "phase", phase))
		}
		c.tab[worker] = &Set{Relax: mk("relax"), Publish: mk("publish"), Wait: mk("wait")}
	}
	return c.tab[worker]
}
