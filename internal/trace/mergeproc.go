package trace

import (
	"fmt"
	"time"
)

// Multi-process trace merging: a -spawn run yields one Recorder per OS
// process, each stamping events against its own monotonic epoch. This
// file rebases every rank's events onto the root's timeline (using the
// per-rank shift derived from the transport's heartbeat clock-offset
// estimator) and assembles one Recorder with one ring per rank, so
// WriteChrome renders a single timeline whose cross-process flow
// arrows — send(src, iter) -> recv(dst, stamp) pairs — never point
// backwards in time.
//
// The skew correction is two-stage. The shift applies the measured
// clock offset; because the offset estimate carries up to half an RTT
// of asymmetry error, a residual causal fixup then raises whole rings
// (preserving each rank's internal order) until every matched arrow
// satisfies recv > send, clamping any stragglers individually.

// ProcTrace is one process's contribution to a merged trace.
type ProcTrace struct {
	// Rank is the process's rank in [0, world size).
	Rank int
	// ShiftNs rebases this rank's event timestamps onto the root
	// recorder's timeline: root_trace_ns = local_trace_ns + ShiftNs.
	// For the root itself it is 0; for other ranks it is
	// (base_r - epoch_r) + offset_r - (base_0 - epoch_0), combining the
	// recorder-base/transport-epoch skews with the heartbeat-estimated
	// clock offset to root.
	ShiftNs int64
	// Events is the rank's retained event stream, oldest first
	// (Ring.Events order).
	Events []Event
}

// flowKey identifies one send(src, iter) -> recv(dst) pairing, matched
// by iteration stamp exactly like the Chrome exporter's flow ids.
type flowKey struct {
	src, dst int32
	stamp    int64
}

// mergeFixupPasses bounds the whole-ring raise iteration: each pass can
// propagate a raise one hop further through the rank graph, so a few
// multiples of the world size settles any realistic tension. The
// per-event clamp afterwards handles whatever is left.
func mergeFixupPasses(ranks int) int { return 3*ranks + 1 }

// MergeProcesses assembles per-process traces into one Recorder with
// one ring per rank (so flow-arrow ids match the single-process
// layout). Missing ranks — a crashed process that shipped nothing —
// leave empty rings. Event slices are copied; inputs are not mutated.
func MergeProcesses(procs []ProcTrace, ranks int) (*Recorder, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("trace: merge needs a positive rank count")
	}
	byRank := make([][]Event, ranks)
	for _, pt := range procs {
		if pt.Rank < 0 || pt.Rank >= ranks {
			return nil, fmt.Errorf("trace: merge rank %d outside [0,%d)", pt.Rank, ranks)
		}
		if byRank[pt.Rank] != nil {
			return nil, fmt.Errorf("trace: duplicate merge contribution for rank %d", pt.Rank)
		}
		evs := make([]Event, len(pt.Events))
		copy(evs, pt.Events)
		for i := range evs {
			evs[i].TS += pt.ShiftNs
		}
		byRank[pt.Rank] = evs
	}
	causalFixup(byRank)
	rec := &Recorder{base: time.Now(), rings: make([]*Ring, ranks), coalesce: true}
	for r := range byRank {
		buf := byRank[r]
		if buf == nil {
			buf = []Event{}
		}
		rec.rings[r] = &Ring{buf: buf, n: uint64(len(buf)), base: rec.base, id: r}
	}
	return rec, nil
}

// sendIndex maps each flow key to the earliest matching send/put
// timestamp (the weakest constraint a recv must satisfy: it can only
// have observed a stamp that some send already carried).
func sendIndex(byRank [][]Event) map[flowKey]int64 {
	sends := make(map[flowKey]int64)
	for r, evs := range byRank {
		for i := range evs {
			e := &evs[i]
			if (e.Kind == KindSend || e.Kind == KindPut) && e.Payload > 0 {
				k := flowKey{src: int32(r), dst: e.Peer, stamp: e.Payload}
				if ts, ok := sends[k]; !ok || e.TS < ts {
					sends[k] = e.TS
				}
			}
		}
	}
	return sends
}

// causalFixup repairs residual skew the offset estimate missed: while
// any matched recv does not strictly follow its earliest send, the
// receiving ring is raised wholesale by the largest deficit (keeping
// its internal order intact), bounded by mergeFixupPasses. Any arrows
// still inverted after that — mutually tensioned cycles from
// asymmetric-path offset error — are clamped per event, restoring
// non-decreasing order within the ring afterwards.
func causalFixup(byRank [][]Event) {
	n := len(byRank)
	for pass := 0; pass < mergeFixupPasses(n); pass++ {
		sends := sendIndex(byRank)
		raise := make([]int64, n)
		for r, evs := range byRank {
			for i := range evs {
				e := &evs[i]
				if e.Kind != KindRecv || e.Payload <= 0 {
					continue
				}
				sts, ok := sends[flowKey{src: e.Peer, dst: int32(r), stamp: e.Payload}]
				if ok && e.TS <= sts {
					if d := sts - e.TS + 1; d > raise[r] {
						raise[r] = d
					}
				}
			}
		}
		moved := false
		for r, d := range raise {
			if d > 0 {
				moved = true
				for i := range byRank[r] {
					byRank[r][i].TS += d
				}
			}
		}
		if !moved {
			return
		}
	}
	// Fallback: clamp each inverted recv just past its send, then
	// restore monotone order within the ring so intra-rank slices never
	// run backwards.
	sends := sendIndex(byRank)
	for r, evs := range byRank {
		touched := false
		for i := range evs {
			e := &evs[i]
			if e.Kind != KindRecv || e.Payload <= 0 {
				continue
			}
			sts, ok := sends[flowKey{src: e.Peer, dst: int32(r), stamp: e.Payload}]
			if ok && e.TS <= sts {
				e.TS = sts + 1
				touched = true
			}
		}
		if touched {
			for i := 1; i < len(evs); i++ {
				if evs[i].TS < evs[i-1].TS {
					evs[i].TS = evs[i-1].TS
				}
			}
		}
	}
}

// CausalViolations counts matched cross-rank flow arrows that do not
// strictly go forward in time — recv at or before its earliest send.
// Zero on a well-merged trace; tests and the CI smoke assert it.
func CausalViolations(rec *Recorder) int {
	if rec == nil {
		return 0
	}
	byRank := make([][]Event, rec.Workers())
	for r := range byRank {
		byRank[r] = rec.Worker(r).Events()
	}
	sends := sendIndex(byRank)
	bad := 0
	for r, evs := range byRank {
		for i := range evs {
			e := &evs[i]
			if e.Kind != KindRecv || e.Payload <= 0 {
				continue
			}
			sts, ok := sends[flowKey{src: e.Peer, dst: int32(r), stamp: e.Payload}]
			if ok && e.TS <= sts {
				bad++
			}
		}
	}
	return bad
}
