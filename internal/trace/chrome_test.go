package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

type chromeFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		TID  int            `json:"tid"`
		ID   int64          `json:"id"`
		BP   string         `json:"bp"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func exportToDoc(t *testing.T, rec *Recorder, proc string) chromeFile {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec, proc); err != nil {
		t.Fatal(err)
	}
	var doc chromeFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestWriteChromeNilRecorder(t *testing.T) {
	if err := WriteChrome(&bytes.Buffer{}, nil, "x"); err == nil {
		t.Fatal("nil recorder accepted")
	}
}

func TestWriteChromeMetadataAndSlices(t *testing.T) {
	rec := NewRecorder(2, 64)
	w0 := rec.Worker(0)
	w0.RelaxStart(3, 1)
	w0.ReadVersion(3, 1, 2, 0)
	w0.ReadVersion(3, 1, 4, 0)
	w0.RelaxEnd(3, 1)
	rec.Worker(1).Yield()

	doc := exportToDoc(t, rec, "shm")
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var procName string
	threads := map[int]string{}
	var slices, instants int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			procName = e.Args["name"].(string)
		case e.Ph == "M" && e.Name == "thread_name":
			threads[e.TID] = e.Args["name"].(string)
		case e.Ph == "X":
			slices++
			if e.Name != "relax r3" {
				t.Fatalf("slice name %q", e.Name)
			}
			if e.Args["reads"].(float64) != 2 {
				t.Fatalf("slice reads = %v, want 2", e.Args["reads"])
			}
			if e.Dur < 0 {
				t.Fatalf("negative duration %v", e.Dur)
			}
		case e.Ph == "i" && e.Name == "yield":
			instants++
			if e.TID != 1 {
				t.Fatalf("yield on tid %d", e.TID)
			}
		}
	}
	if procName != "shm" {
		t.Fatalf("process name %q", procName)
	}
	if len(threads) != 2 {
		t.Fatalf("thread metadata for %d tids", len(threads))
	}
	if slices != 1 || instants != 1 {
		t.Fatalf("slices=%d instants=%d", slices, instants)
	}
}

func TestWriteChromeFlowIDsMatch(t *testing.T) {
	rec := NewRecorder(3, 64)
	rec.Worker(1).Put(2, 7)  // rank 1 puts its iter-7 boundary to rank 2
	rec.Worker(2).Recv(1, 7) // rank 2 later observes stamp 7 from rank 1

	doc := exportToDoc(t, rec, "dist")
	var startID, finishID int64 = -1, -1
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			startID = e.ID
		case "f":
			finishID = e.ID
			if e.BP != "e" {
				t.Fatalf("flow finish bp = %q, want e", e.BP)
			}
		}
	}
	if startID < 0 || finishID < 0 {
		t.Fatal("missing flow start or finish")
	}
	if startID != finishID {
		t.Fatalf("flow ids differ: start %d, finish %d", startID, finishID)
	}
	if want := flowID(1, 2, 3, 7); startID != want {
		t.Fatalf("flow id %d, want %d", startID, want)
	}
}

func TestWriteChromeOrphanedEndIsInstant(t *testing.T) {
	// A RelaxEnd whose start was overwritten by wraparound must not
	// produce a slice with garbage duration.
	rec := NewRecorder(1, 64)
	w := rec.Worker(0)
	w.RelaxEnd(5, 9) // no matching start
	doc := exportToDoc(t, rec, "shm")
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			t.Fatalf("orphaned end rendered as slice: %+v", e)
		}
		if e.Ph == "i" && e.Name == "relax" {
			return
		}
	}
	t.Fatal("orphaned end not rendered at all")
}

func TestWriteChromeRankLevelSliceName(t *testing.T) {
	rec := NewRecorder(1, 64)
	w := rec.Worker(0)
	w.RelaxStart(-1, 4)
	w.RelaxEnd(-1, 4)
	doc := exportToDoc(t, rec, "dist")
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			if !strings.HasPrefix(e.Name, "iter ") {
				t.Fatalf("rank-level slice named %q", e.Name)
			}
			return
		}
	}
	t.Fatal("no slice emitted")
}

func TestFlowIDRoundTrips(t *testing.T) {
	// Sender and receiver must compute identical ids from their own
	// views, and the value must stay under 2^53 (JSON float precision).
	const p = 1024
	id1 := flowID(1023, 0, p, 1<<31)
	id2 := flowID(1023, 0, p, 1<<31)
	if id1 != id2 || id1 >= 1<<53 {
		t.Fatalf("flow id %d unstable or too large", id1)
	}
	if flowID(0, 1, p, 5) == flowID(1, 0, p, 5) {
		t.Fatal("direction not encoded")
	}
}
