package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func send(ts int64, to int32, iter int64) Event {
	return Event{TS: ts, Kind: KindSend, Peer: to, Payload: iter, Iter: int32(iter), Row: -1}
}

func recv(ts int64, from int32, stamp int64) Event {
	return Event{TS: ts, Kind: KindRecv, Peer: from, Payload: stamp, Row: -1}
}

func TestMergeProcessesRebasesShifts(t *testing.T) {
	rec, err := MergeProcesses([]ProcTrace{
		{Rank: 0, ShiftNs: 0, Events: []Event{send(100, 1, 1)}},
		{Rank: 1, ShiftNs: 50_000_000, Events: []Event{recv(60, 0, 1)}},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Worker(1).Events()[0].TS; got != 50_000_060 {
		t.Fatalf("rank 1 recv TS = %d, want shifted 50000060", got)
	}
	if got := rec.Worker(0).Events()[0].TS; got != 100 {
		t.Fatalf("rank 0 send TS = %d, want unshifted 100", got)
	}
	if v := CausalViolations(rec); v != 0 {
		t.Fatalf("%d causal violations after merge", v)
	}
}

func TestMergeProcessesValidates(t *testing.T) {
	if _, err := MergeProcesses([]ProcTrace{{Rank: 2}}, 2); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := MergeProcesses([]ProcTrace{{Rank: 0}, {Rank: 0}}, 2); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	if _, err := MergeProcesses(nil, 0); err == nil {
		t.Fatal("zero world size accepted")
	}
	// A crashed rank that shipped nothing leaves an empty ring.
	rec, err := MergeProcesses([]ProcTrace{{Rank: 0, Events: []Event{send(1, 1, 1)}}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Workers() != 3 || len(rec.Worker(2).Events()) != 0 {
		t.Fatalf("missing ranks not materialized as empty rings")
	}
}

// Residual skew the offset estimate missed: rank 1's recv lands before
// rank 0's send even after shifting, and rank 1's own send to rank 2
// cascades the tension one hop further. The fixup must raise whole
// rings until every arrow points forward, preserving intra-ring order.
func TestMergeProcessesCausalFixup(t *testing.T) {
	r1 := []Event{recv(900, 0, 1), send(950, 2, 1)}
	r2 := []Event{recv(940, 1, 1)}
	rec, err := MergeProcesses([]ProcTrace{
		{Rank: 0, Events: []Event{send(1000, 1, 1)}},
		{Rank: 1, Events: r1},
		{Rank: 2, Events: r2},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v := CausalViolations(rec); v != 0 {
		t.Fatalf("%d causal violations survive the fixup", v)
	}
	evs1 := rec.Worker(1).Events()
	if evs1[0].TS <= 1000 {
		t.Fatalf("rank 1 recv at %d not raised past send at 1000", evs1[0].TS)
	}
	if evs1[1].TS-evs1[0].TS != 50 {
		t.Fatalf("rank 1 intra-ring spacing changed: %d -> %d", evs1[0].TS, evs1[1].TS)
	}
	if rec.Worker(2).Events()[0].TS <= evs1[1].TS {
		t.Fatalf("rank 2 recv at %d not raised past rank 1 send at %d",
			rec.Worker(2).Events()[0].TS, evs1[1].TS)
	}
	// Inputs untouched.
	if r1[0].TS != 900 || r2[0].TS != 940 {
		t.Fatal("merge mutated its inputs")
	}
}

// A merged 3-rank trace renders as one Chrome timeline whose
// cross-process flow arrows pair up: every finish ("ph":"f") id has a
// matching start ("ph":"s") id, and matched arrows go forward in time.
func TestMergedChromeFlowArrows(t *testing.T) {
	// 3 ranks in a ring, each sending its iteration stamp onward, with
	// ±50ms synthetic skew baked into the raw timestamps and corrected
	// by the shifts.
	const ms = int64(1e6)
	rec, err := MergeProcesses([]ProcTrace{
		{Rank: 0, ShiftNs: 0, Events: []Event{
			send(1*ms, 1, 1), recv(9*ms, 2, 1), send(10*ms, 1, 2),
		}},
		{Rank: 1, ShiftNs: 50 * ms, Events: []Event{
			recv(-48*ms, 0, 1), send(-47*ms, 2, 1), recv(-39*ms, 0, 2),
		}},
		{Rank: 2, ShiftNs: -50 * ms, Events: []Event{
			recv(55*ms, 1, 1), send(56*ms, 0, 1),
		}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v := CausalViolations(rec); v != 0 {
		t.Fatalf("%d causal violations", v)
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec, "dist"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			ID  int64   `json:"id"`
			TS  float64 `json:"ts"`
			TID int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output not JSON: %v", err)
	}
	starts := map[int64]float64{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "s" {
			if ts, ok := starts[e.ID]; !ok || e.TS < ts {
				starts[e.ID] = e.TS
			}
		}
	}
	finishes := 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "f" {
			continue
		}
		finishes++
		sts, ok := starts[e.ID]
		if !ok {
			t.Fatalf("flow finish id %d has no matching start", e.ID)
		}
		if e.TS <= sts {
			t.Fatalf("flow id %d points backwards: start %v, finish %v", e.ID, sts, e.TS)
		}
	}
	if finishes != 4 {
		t.Fatalf("expected 4 flow arrows, saw %d", finishes)
	}
	if !strings.Contains(buf.String(), `"ph":"s"`) {
		t.Fatal("no flow starts in chrome output")
	}
}
