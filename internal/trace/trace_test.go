package trace

import "testing"

func TestNilHandlesNoOp(t *testing.T) {
	var rec *Recorder
	if rec.Worker(0) != nil {
		t.Fatal("nil recorder returned a ring")
	}
	if rec.Workers() != 0 || rec.TotalEvents() != 0 || rec.TotalDropped() != 0 {
		t.Fatal("nil recorder reported nonzero totals")
	}
	var r *Ring
	// Every recording method must be callable on a nil ring.
	r.Record(KindRead, 0, 1, 2, 3)
	r.RelaxStart(0, 1)
	r.RelaxEnd(0, 1)
	r.ReadVersion(0, 1, 1, 0)
	r.Write(0, 1)
	r.Yield()
	r.Delay(1)
	r.FlagRaise(1)
	r.FlagLower(1)
	r.Flag(true, 1)
	r.Send(1, 1)
	r.Put(1, 1)
	r.Recv(1, 1)
	r.TokenPass(1)
	r.TokenBlacken(1)
	r.Halt(1)
	r.Decided(1)
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 || r.Events() != nil || r.ID() != -1 {
		t.Fatal("nil ring reported recorded state")
	}
}

func TestRingAppendOrder(t *testing.T) {
	rec := NewRecorder(1, 8)
	r := rec.Worker(0)
	for i := 0; i < 5; i++ {
		r.RelaxStart(i, 1)
	}
	evs := r.Events()
	if len(evs) != 5 || r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d", len(evs), r.Total(), r.Dropped())
	}
	for i, e := range evs {
		if int(e.Row) != i {
			t.Fatalf("event %d has row %d", i, e.Row)
		}
		if i > 0 && e.TS < evs[i-1].TS {
			t.Fatalf("timestamps not monotone: %d then %d", evs[i-1].TS, e.TS)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	rec := NewRecorder(1, 4)
	r := rec.Worker(0)
	for i := 0; i < 10; i++ {
		r.RelaxStart(i, 1)
	}
	if r.Len() != 4 || r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
	evs := r.Events()
	// Oldest-first: rows 6, 7, 8, 9 survive.
	for i, e := range evs {
		if int(e.Row) != 6+i {
			t.Fatalf("event %d has row %d, want %d", i, e.Row, 6+i)
		}
	}
	if rec.TotalEvents() != 4 || rec.TotalDropped() != 6 {
		t.Fatalf("recorder totals: events=%d dropped=%d", rec.TotalEvents(), rec.TotalDropped())
	}
}

func TestWorkerOutOfRange(t *testing.T) {
	rec := NewRecorder(2, 8)
	if rec.Worker(-1) != nil || rec.Worker(2) != nil {
		t.Fatal("out-of-range worker id returned a ring")
	}
	if rec.Worker(1) == nil || rec.Worker(1).ID() != 1 {
		t.Fatal("in-range worker missing or misnumbered")
	}
}

func TestSharedEpochOrdersAcrossRings(t *testing.T) {
	rec := NewRecorder(2, 8)
	rec.Worker(0).RelaxStart(0, 1)
	rec.Worker(1).RelaxStart(1, 1)
	rec.Worker(0).RelaxStart(0, 2)
	a := rec.Worker(0).Events()
	b := rec.Worker(1).Events()
	if !(a[0].TS <= b[0].TS && b[0].TS <= a[1].TS) {
		t.Fatalf("cross-ring timestamps out of order: %d, %d, %d", a[0].TS, b[0].TS, a[1].TS)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindRelaxStart; k <= KindDecided; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatal("invalid kinds must stringify as unknown")
	}
}
