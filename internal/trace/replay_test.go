package trace_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/analytics"
	"repro/internal/matgen"
	"repro/internal/model"
	"repro/internal/shm"
	"repro/internal/stream"
	"repro/internal/trace"
)

func replayVec(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 0xc))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func TestReplayFeedsAnalyticsLikeALiveRun(t *testing.T) {
	a := matgen.FD2D(12, 12)
	b := replayVec(a.N, 1)
	rec := trace.NewRecorder(4, 1<<16)
	shm.Solve(a, b, make([]float64, a.N), shm.Options{
		Threads: 4, Async: true, MaxIters: 60, Tol: 1e-14,
		YieldProb: 0.05, Tracer: rec,
	})
	tr, err := trace.ToModelTraceMatrix(rec, a)
	if err != nil {
		t.Fatalf("bridge: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("recording produced no events")
	}

	bus := stream.NewBus()
	sub := bus.Subscribe(1 << 14)
	defer sub.Close()
	eng := analytics.New(analytics.Config{N: a.N})
	done := make(chan struct{})
	go func() { eng.Pump(sub); close(done) }()

	res, err := trace.Replay(a, b, tr, trace.ReplayOptions{
		Workers: 4, Bus: bus, Tol: 1e-3,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	<-done

	if res.Relaxations != len(tr.Events) {
		t.Fatalf("replayed %d of %d events", res.Relaxations, len(tr.Events))
	}
	snap := eng.Snapshot()
	if !snap.Done {
		t.Fatal("engine never saw the done event")
	}
	if snap.Residual != res.FinalRes {
		t.Fatalf("engine residual %v != replay final %v", snap.Residual, res.FinalRes)
	}
	if !snap.Fit.OK || snap.Fit.Rho >= 1 || snap.Fit.Rho <= 0 {
		t.Fatalf("converging replay should fit rho in (0,1), got %+v", snap.Fit)
	}
	if n := eng.AlertCount(analytics.AlertDivergence); n != 0 {
		t.Fatalf("converging replay raised divergence alerts: %+v", eng.Alerts())
	}
	if len(snap.Workers) != 4 {
		t.Fatalf("engine saw %d workers, want 4: %+v", len(snap.Workers), snap.Workers)
	}
	var totalRelax int64
	for _, w := range snap.Workers {
		totalRelax += w.Relax
	}
	if totalRelax != int64(res.Relaxations) {
		t.Fatalf("worker relax counts sum to %d, want %d", totalRelax, res.Relaxations)
	}
	if res.FinalRes > 1e-3 || !res.Converged {
		t.Fatalf("replay of a converging run ended at res=%v converged=%v", res.FinalRes, res.Converged)
	}
}

func TestReplayStalenessReconstruction(t *testing.T) {
	// Hand-built 3-row trace: row 1 relaxes twice; row 0 then reads
	// version 0 of row 1 (two updates behind) and the current version
	// of row 2 (fresh).
	a := matgen.Laplace1D(3)
	b := []float64{1, 1, 1}
	tr := &model.Trace{N: 3, Events: []model.Event{
		{Row: 1, Count: 1, Seq: 0, Reads: []model.Read{{Row: 0, Version: 0}, {Row: 2, Version: 0}}},
		{Row: 1, Count: 2, Seq: 1, Reads: []model.Read{{Row: 0, Version: 0}, {Row: 2, Version: 0}}},
		{Row: 0, Count: 1, Seq: 2, Reads: []model.Read{{Row: 1, Version: 0}}},
	}}
	bus := stream.NewBus()
	sub := bus.Subscribe(64)
	defer sub.Close()
	if _, err := trace.Replay(a, b, tr, trace.ReplayOptions{Workers: 1, Bus: bus, SampleEvery: 3}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Staleness accumulators reset at each publish, so the stats ride
	// on the sample of the tick that observed the reads.
	var sample *stream.Event
	for {
		ev := <-sub.C()
		if ev.Type == stream.TypeSample && ev.StaleN > 0 {
			sample = &ev
		}
		if ev.Type == stream.TypeDone {
			break
		}
	}
	if sample == nil {
		t.Fatal("no worker sample carried staleness stats")
	}
	// Five reads total; only row 0's read of row 1 was stale, by 2.
	if sample.StaleN != 5 {
		t.Fatalf("StaleN = %d, want 5", sample.StaleN)
	}
	if want := 2.0 / 5.0; sample.Staleness != want {
		t.Fatalf("mean staleness = %v, want %v", sample.Staleness, want)
	}
	if sample.MaxStale != 2 {
		t.Fatalf("max staleness = %d, want 2", sample.MaxStale)
	}
}

func TestReplayMatchesDirectRecompute(t *testing.T) {
	// Replaying with a nil bus must still produce the same final
	// residual as replaying with one (the bus is pure observation).
	a := matgen.FD2D(8, 8)
	b := replayVec(a.N, 2)
	tr := &model.Trace{N: a.N}
	for k := 0; k < 3*a.N; k++ {
		tr.Events = append(tr.Events, model.Event{Row: k % a.N, Count: k/a.N + 1, Seq: k})
	}
	quiet, err := trace.Replay(a, b, tr, trace.ReplayOptions{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	bus := stream.NewBus()
	sub := bus.Subscribe(1 << 12)
	defer sub.Close()
	loud, err := trace.Replay(a, b, tr, trace.ReplayOptions{Bus: bus})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if quiet.FinalRes != loud.FinalRes {
		t.Fatalf("bus changed the arithmetic: %v vs %v", quiet.FinalRes, loud.FinalRes)
	}
	// Three full sequential sweeps of a W.D.D. system must contract.
	if quiet.FinalRes >= 1 {
		t.Fatalf("three Jacobi sweeps did not reduce the residual: %v", quiet.FinalRes)
	}
}

func TestReplayValidation(t *testing.T) {
	a := matgen.FD2D(4, 4)
	b := replayVec(a.N, 3)
	good := &model.Trace{N: a.N, Events: []model.Event{{Row: 0, Count: 1, Seq: 0}}}
	cases := []struct {
		name string
		run  func() error
	}{
		{"empty trace", func() error { _, err := trace.Replay(a, b, &model.Trace{N: a.N}, trace.ReplayOptions{}); return err }},
		{"size mismatch", func() error {
			_, err := trace.Replay(a, b, &model.Trace{N: a.N + 1, Events: good.Events}, trace.ReplayOptions{})
			return err
		}},
		{"bad b", func() error { _, err := trace.Replay(a, b[:3], good, trace.ReplayOptions{}); return err }},
		{"bad x0", func() error {
			_, err := trace.Replay(a, b, good, trace.ReplayOptions{X0: make([]float64, 2)})
			return err
		}},
		{"too many workers", func() error { _, err := trace.Replay(a, b, good, trace.ReplayOptions{Workers: a.N + 1}); return err }},
		{"row out of range", func() error {
			_, err := trace.Replay(a, b, &model.Trace{N: a.N, Events: []model.Event{{Row: a.N, Seq: 0}}}, trace.ReplayOptions{})
			return err
		}},
	}
	for _, tc := range cases {
		if tc.run() == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
