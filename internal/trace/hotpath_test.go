package trace

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/matgen"
	"repro/internal/model"
	"repro/internal/sparse"
)

// driveSchedule records a deterministic pseudo-asynchronous schedule:
// sweeps round-robin sweeps over all rows, reading every off-diagonal
// neighbor in CSR order with a staleness of (i+j) mod vary versions
// (clamped at the initial value 0). The same call sequence lands on
// any recorder, which is what the twin tests rely on.
func driveSchedule(rec *Recorder, a *sparse.CSR, sweeps, vary int) {
	w := rec.Worker(0)
	for c := 1; c <= sweeps; c++ {
		for i := 0; i < a.N; i++ {
			w.RelaxStart(i, c)
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if j := a.Col[k]; j != i {
					v := c - 1 - (i+j)%vary
					if v < 0 {
						v = 0
					}
					w.ReadVersion(i, c, j, v)
				}
			}
			w.Write(i, c)
			w.RelaxEnd(i, c)
		}
	}
}

// canonical reduces a bridged trace to a deterministic shape —
// events sorted by (count, row), sequence and timestamps erased — so
// two recordings of the same schedule compare independently of clock
// resolution.
func canonical(tr *model.Trace) []model.Event {
	evs := append([]model.Event(nil), tr.Events...)
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].Count != evs[b].Count {
			return evs[a].Count < evs[b].Count
		}
		return evs[a].Row < evs[b].Row
	})
	for k := range evs {
		evs[k].Seq = 0
		evs[k].TimestampNs = 0
	}
	return evs
}

// TestCoalescedMatchesUncoalescedTwin is the core round-trip property
// of the always-on hot path: the same schedule recorded with and
// without coalescing must bridge to bit-identical relaxations (same
// rows, counts, read columns, and read versions), and both must pass
// Theorem 1's norm checks with zero violations on a W.D.D. system.
func TestCoalescedMatchesUncoalescedTwin(t *testing.T) {
	a := matgen.FD2D(6, 5)
	for _, vary := range []int{1, 2, 4} {
		co := NewRecorder(1, 1<<14)
		un := NewRecorder(1, 1<<15, WithoutCoalescing())
		driveSchedule(co, a, 7, vary)
		driveSchedule(un, a, 7, vary)
		if co.Totals().Coalesced == 0 {
			t.Fatalf("vary=%d: coalescing recorder coalesced nothing", vary)
		}
		if co.TotalEvents() >= un.TotalEvents() {
			t.Fatalf("vary=%d: coalescing did not shrink the stream (%d vs %d events)",
				vary, co.TotalEvents(), un.TotalEvents())
		}
		trCo, err := ToModelTraceMatrix(co, a)
		if err != nil {
			t.Fatalf("vary=%d: coalesced bridge: %v", vary, err)
		}
		trUn, err := ToModelTraceMatrix(un, a)
		if err != nil {
			t.Fatalf("vary=%d: uncoalesced bridge: %v", vary, err)
		}
		if !reflect.DeepEqual(canonical(trCo), canonical(trUn)) {
			t.Fatalf("vary=%d: coalesced and uncoalesced twins reconstruct different schedules", vary)
		}
		for name, tr := range map[string]*model.Trace{"coalesced": trCo, "uncoalesced": trUn} {
			rep, err := VerifyNorms(a, tr, 1e-9, 0)
			if err != nil {
				t.Fatalf("vary=%d %s: %v", vary, name, err)
			}
			if rep.Violations != 0 {
				t.Fatalf("vary=%d %s: %d Theorem 1 violations", vary, name, rep.Violations)
			}
		}
	}
}

// TestCompleteBlockWidths exercises every delta width of the complete-
// block encoding: spans of 1 (1-bit), 3 (2-bit), 15 (4-bit), and 255
// (8-bit) must all round-trip to the exact recorded versions.
func TestCompleteBlockWidths(t *testing.T) {
	// Star matrix: row 0 couples to rows 1..4, so one relaxation of
	// row 0 reads four neighbors whose version spread we control.
	coo := sparse.NewCOO(5, 5)
	for i := 0; i < 5; i++ {
		coo.Add(i, i, 1)
	}
	for j := 1; j < 5; j++ {
		coo.Add(0, j, -0.1)
		coo.Add(j, 0, -0.1)
	}
	a := coo.ToCSR()
	for _, span := range []int{0, 1, 3, 15, 255} {
		rec := NewRecorder(1, 1<<13)
		w := rec.Worker(0)
		// Neighbors first reach the versions row 0 will read (keeps
		// Validate's contiguity happy: row j relaxes base+... times).
		base := span + 2
		for j := 1; j < 5; j++ {
			for c := 1; c <= base; c++ {
				w.RelaxStart(j, c)
				w.ReadVersion(j, c, 0, 0)
				w.RelaxEnd(j, c)
			}
		}
		// Row 0 reads versions spread across exactly `span`.
		want := []int{base - span, base, base - span/2, base - span/3}
		w.RelaxStart(0, 1)
		for k, j := range []int{1, 2, 3, 4} {
			w.ReadVersion(0, 1, j, want[k])
		}
		w.RelaxEnd(0, 1)
		tr, err := ToModelTraceMatrix(rec, a)
		if err != nil {
			t.Fatalf("span=%d: %v", span, err)
		}
		var got []model.Read
		for _, e := range tr.Events {
			if e.Row == 0 {
				got = e.Reads
			}
		}
		if len(got) != 4 {
			t.Fatalf("span=%d: row 0 reads %v", span, got)
		}
		for k, rd := range got {
			if rd.Row != k+1 || rd.Version != want[k] {
				t.Fatalf("span=%d read %d: got (%d,%d) want (%d,%d)",
					span, k, rd.Row, rd.Version, k+1, want[k])
			}
		}
	}
}

// TestRingAccountingAcrossWraparound is the regression test for the
// drop-count double-count: Total == Retained + Dropped must hold
// through multiple full wraparounds, including a burst larger than the
// whole ring landing in one staging flush.
func TestRingAccountingAcrossWraparound(t *testing.T) {
	rec := NewRecorder(1, 64)
	w := rec.Worker(0)
	// 10 full ring generations of bare events, syncing (via the stats
	// read) at uneven points so publishes split across block copies.
	for gen := 0; gen < 10; gen++ {
		for k := 0; k < 64; k++ {
			w.Yield()
		}
		if gen%3 == 0 {
			st := w.Stats()
			if st.Total != st.Retained+st.Dropped {
				t.Fatalf("gen %d: Total %d != Retained %d + Dropped %d",
					gen, st.Total, st.Retained, st.Dropped)
			}
		}
	}
	st := w.Stats()
	if st.Total != 640 {
		t.Fatalf("Total = %d, want 640", st.Total)
	}
	if st.Retained != 64 || st.Dropped != 576 {
		t.Fatalf("Retained/Dropped = %d/%d, want 64/576", st.Retained, st.Dropped)
	}
	if got := len(w.Events()); got != st.Retained {
		t.Fatalf("Events() returned %d, Retained says %d", got, st.Retained)
	}
	// A burst larger than the ring in one go: the single flush must
	// retain the final window and account for everything else.
	rec2 := NewRecorder(1, 32)
	w2 := rec2.Worker(0)
	for k := 0; k < 500; k++ {
		w2.Yield()
	}
	st2 := w2.Stats()
	if st2.Total != 500 || st2.Retained != 32 || st2.Dropped != 468 {
		t.Fatalf("burst stats = %+v", st2)
	}
}

// TestSampledBridge round-trips each sampling mode through the bridge:
// the kept sub-schedule must renumber densely, validate, and satisfy
// Theorem 1 with zero violations.
func TestSampledBridge(t *testing.T) {
	a := matgen.FD2D(5, 4)
	const sweeps = 12
	cases := []struct {
		pol  *SamplePolicy
		kept int // kept relaxations per row
	}{
		{&SamplePolicy{Mode: SampleEvery, N: 4}, 3},
		{&SamplePolicy{Mode: SampleHead, N: 5}, 5},
		{&SamplePolicy{Mode: SampleTail, N: 5, Horizon: sweeps}, 5},
	}
	for _, tc := range cases {
		rec := NewRecorder(1, 1<<14, WithSampling(tc.pol))
		driveSchedule(rec, a, sweeps, 2)
		if rec.Totals().SampledOut == 0 {
			t.Fatalf("%s: nothing sampled out", tc.pol)
		}
		tr, err := ToModelTraceMatrix(rec, a)
		if err != nil {
			t.Fatalf("%s: %v", tc.pol, err)
		}
		if want := tc.kept * a.N; len(tr.Events) != want {
			t.Fatalf("%s: %d events, want %d", tc.pol, len(tr.Events), want)
		}
		rep, err := VerifyNorms(a, tr, 1e-9, 0)
		if err != nil {
			t.Fatalf("%s: verify: %v", tc.pol, err)
		}
		if rep.Violations != 0 {
			t.Fatalf("%s: %d Theorem 1 violations on the sampled suffix", tc.pol, rep.Violations)
		}
	}
}

// TestParseSamplePolicy covers the flag syntax both ways.
func TestParseSamplePolicy(t *testing.T) {
	good := map[string]string{
		"1/8": "1/8", "every:8": "1/8", "head:100": "head:100", "tail:50": "tail:50",
	}
	for in, want := range good {
		p, err := ParseSamplePolicy(in)
		if err != nil || p == nil || p.String() != want {
			t.Fatalf("ParseSamplePolicy(%q) = %v, %v; want %s", in, p, err, want)
		}
	}
	if p, err := ParseSamplePolicy(""); p != nil || err != nil {
		t.Fatalf("empty policy = %v, %v", p, err)
	}
	for _, bad := range []string{"1/0", "every:x", "head:-3", "nope", "tail:"} {
		if _, err := ParseSamplePolicy(bad); err == nil {
			t.Fatalf("ParseSamplePolicy(%q) accepted", bad)
		}
	}
	// Keep semantics: every-4 keeps counts 1, 5, 9, ...
	p := &SamplePolicy{Mode: SampleEvery, N: 4}
	for c, want := range map[int32]bool{1: true, 2: false, 4: false, 5: true, 9: true} {
		if p.Keep(c) != want {
			t.Fatalf("every:4 Keep(%d) = %v", c, !want)
		}
	}
	tail := &SamplePolicy{Mode: SampleTail, N: 3, Horizon: 10}
	for c, want := range map[int32]bool{7: false, 8: true, 10: true, 11: true} {
		if tail.Keep(c) != want {
			t.Fatalf("tail:3@10 Keep(%d) = %v", c, !want)
		}
	}
}

// TestRecorderStatsAndRate sanity-checks the self-observability
// surface the solvers feed into the metrics registry.
func TestRecorderStatsAndRate(t *testing.T) {
	a := matgen.FD2D(4, 4)
	rec := NewRecorder(1, 1<<12)
	driveSchedule(rec, a, 3, 1)
	st := rec.Worker(0).Stats()
	if st.Total == 0 || st.Bytes != st.Total*EventBytes {
		t.Fatalf("stats %+v", st)
	}
	if st.Coalesced == 0 {
		t.Fatal("no reads coalesced on the default configuration")
	}
	if st.ElapsedNs <= 0 || st.EventsPerSec() <= 0 {
		t.Fatalf("no recording span: %+v", st)
	}
	if (RingStats{}).EventsPerSec() != 0 {
		t.Fatal("empty stats should have zero rate")
	}
}
