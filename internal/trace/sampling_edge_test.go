package trace

import (
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// expectedEvents counts the events driveSchedule emits on an
// uncoalesced ring for the kept relaxations: one start, one read per
// off-diagonal, one write, one end.
func expectedEvents(a *sparse.CSR, sweeps int, pol *SamplePolicy) (kept, suppressed int) {
	for c := 1; c <= sweeps; c++ {
		for i := 0; i < a.N; i++ {
			per := 3 // start + write + end
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if a.Col[k] != i {
					per++
				}
			}
			if pol.Keep(int32(c)) {
				kept += per
			} else {
				suppressed += per
			}
		}
	}
	return kept, suppressed
}

// TestSampleHeadBeyondTotal: head:K with K at or beyond the total
// relaxation count is a no-op policy — every event recorded, zero
// suppressed. The boundary where the filter never fires must not
// miscount.
func TestSampleHeadBeyondTotal(t *testing.T) {
	a := matgen.FD2D(4, 4)
	const sweeps = 10
	for _, k := range []int{sweeps, sweeps + 1, sweeps * 100} {
		pol := &SamplePolicy{Mode: SampleHead, N: k}
		rec := NewRecorder(1, 1<<14, WithSampling(pol), WithoutCoalescing())
		driveSchedule(rec, a, sweeps, 2)
		st := rec.Totals()
		want, _ := expectedEvents(a, sweeps, nil)
		if st.SampledOut != 0 {
			t.Fatalf("head:%d: %d events sampled out, want 0", k, st.SampledOut)
		}
		if st.Total != want {
			t.Fatalf("head:%d: %d events recorded, want %d", k, st.Total, want)
		}
		if st.Dropped != 0 || st.Retained != want {
			t.Fatalf("head:%d: stats %+v disagree with a full recording", k, st)
		}
	}
}

// TestSampleOneOfOne: 1/1 ("every relaxation") must behave exactly
// like no policy at all — everything kept, zero suppressed — rather
// than tripping on the (count-1)%1 degenerate period.
func TestSampleOneOfOne(t *testing.T) {
	pol, err := ParseSamplePolicy("1/1")
	if err != nil {
		t.Fatal(err)
	}
	for c := int32(1); c <= 64; c++ {
		if !pol.Keep(c) {
			t.Fatalf("1/1 suppressed count %d", c)
		}
	}
	a := matgen.FD2D(4, 4)
	const sweeps = 8
	rec := NewRecorder(1, 1<<14, WithSampling(pol), WithoutCoalescing())
	driveSchedule(rec, a, sweeps, 2)
	bare := NewRecorder(1, 1<<14, WithoutCoalescing())
	driveSchedule(bare, a, sweeps, 2)
	st, ref := rec.Totals(), bare.Totals()
	if st.SampledOut != 0 {
		t.Fatalf("1/1: %d events sampled out, want 0", st.SampledOut)
	}
	if st.Total != ref.Total || st.Retained != ref.Retained {
		t.Fatalf("1/1 recording %+v differs from unsampled %+v", st, ref)
	}
}

// TestSamplingWraparoundAccountingExact: sampling and ring wraparound
// compose without losing a single event in the books. Against a ring
// far smaller than the kept stream, every event is either retained,
// dropped by wraparound, or suppressed by the policy — and each bucket
// must match the schedule arithmetic exactly, not approximately.
func TestSamplingWraparoundAccountingExact(t *testing.T) {
	a := matgen.FD2D(5, 4)
	const sweeps = 40
	for _, tc := range []struct {
		name string
		pol  *SamplePolicy
	}{
		{"every-3", &SamplePolicy{Mode: SampleEvery, N: 3}},
		{"head-7", &SamplePolicy{Mode: SampleHead, N: 7}},
		{"tail-9", &SamplePolicy{Mode: SampleTail, N: 9, Horizon: sweeps}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const capacity = 64 // far below the kept volume: guaranteed wraparound
			rec := NewRecorder(1, capacity, WithSampling(tc.pol), WithoutCoalescing())
			driveSchedule(rec, a, sweeps, 2)
			st := rec.Totals()
			kept, suppressed := expectedEvents(a, sweeps, tc.pol)
			if st.Total != kept {
				t.Fatalf("Total = %d, want %d kept events", st.Total, kept)
			}
			if st.SampledOut != suppressed {
				t.Fatalf("SampledOut = %d, want %d", st.SampledOut, suppressed)
			}
			if st.Dropped == 0 {
				t.Fatalf("no wraparound: capacity %d did not overflow (Total %d)", capacity, st.Total)
			}
			if st.Total != st.Retained+st.Dropped {
				t.Fatalf("Total %d != Retained %d + Dropped %d", st.Total, st.Retained, st.Dropped)
			}
			if got := len(rec.Worker(0).Events()); got != st.Retained {
				t.Fatalf("Events() = %d, Retained = %d", got, st.Retained)
			}
		})
	}
}
