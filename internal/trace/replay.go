package trace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/stream"
	"repro/internal/vec"
)

// ReplayOptions configures a trace replay.
type ReplayOptions struct {
	// Workers is the worker count of the recording run; rows map to
	// workers by the same contiguous partition the solvers use, so
	// replayed per-worker telemetry lines up with the live run's.
	// Defaults to 1.
	Workers int
	// X0 is the starting iterate (nil = zeros). The recorded trace does
	// not carry values, only the relaxation schedule, so the replayed
	// trajectory depends on it; the convergence *rate* largely does not.
	X0 []float64
	// Bus receives the reconstructed telemetry. Nil replays silently
	// (useful to just recompute the final residual).
	Bus *stream.Bus
	// SampleEvery is how many relaxations separate residual samples
	// (each costs one O(nnz) residual recompute). 0 means n — one
	// sample per sweep-equivalent.
	SampleEvery int
	// Tol, when positive, decides the Converged flag of the final done
	// event from the replayed residual.
	Tol float64
}

// ReplayResult summarizes a finished replay.
type ReplayResult struct {
	Relaxations int
	Samples     int
	FinalRes    float64
	Converged   bool
}

// Replay re-executes a recorded relaxation schedule against a concrete
// unit-diagonal system and publishes the reconstructed telemetry —
// per-worker samples with exact version-derived staleness, periodic
// exact residuals, and a final done event — through the same stream
// schema the live solvers use. The analytics engine (and the ajmon
// dashboard) can therefore analyze a saved trace exactly like a live
// run: same estimators, same detectors, no solver in the loop.
//
// The relaxation applied is the paper's unit-diagonal Jacobi update
// x_i <- b_i - sum_{j != i} a_ij x_j against the *current* iterate;
// the recorded read versions are used to reconstruct staleness (how
// many updates of row j the recorded read had missed), not to rewind
// values. Events replay in Seq order. Recorded timestamps (v2 traces)
// are honored when present; otherwise event time advances one
// microsecond per relaxation so rate fits over event time stay
// meaningful.
func Replay(a *sparse.CSR, b []float64, tr *model.Trace, opt ReplayOptions) (*ReplayResult, error) {
	if tr == nil || len(tr.Events) == 0 {
		return nil, fmt.Errorf("trace: replay needs a non-empty trace")
	}
	if !a.IsSquare() || a.N != tr.N {
		return nil, fmt.Errorf("trace: matrix is %dx%d but trace covers n=%d", a.N, a.M, tr.N)
	}
	if len(b) != a.N {
		return nil, fmt.Errorf("trace: len(b)=%d != n=%d", len(b), a.N)
	}
	if !a.HasUnitDiagonal(1e-8) {
		return nil, fmt.Errorf("trace: replay needs the unit-diagonal system the solvers ran (core.Prepare)")
	}
	n := a.N
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		return nil, fmt.Errorf("trace: %d workers for n=%d rows", workers, n)
	}
	sampleEvery := opt.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = n
	}

	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, fmt.Errorf("trace: len(X0)=%d != n=%d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}

	// Row -> recording worker, via the solvers' contiguous partition.
	owner := make([]int, n)
	for w := 0; w < workers; w++ {
		lo, hi := partition.ContiguousRange(n, workers, w)
		for i := lo; i < hi; i++ {
			owner[i] = w
		}
	}

	events := make([]model.Event, len(tr.Events))
	copy(events, tr.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })

	nb := vec.Norm1(b)
	if nb == 0 {
		nb = 1
	}

	type workerAcc struct {
		relax    int64
		staleSum float64
		staleCnt int64
		staleMax int64
		touched  bool
	}
	acc := make([]workerAcc, workers)
	version := make([]int, n)
	rowsOf := func(w int) int {
		lo, hi := partition.ContiguousRange(n, workers, w)
		return hi - lo
	}

	r := make([]float64, n)
	res := func() float64 {
		a.Residual(r, b, x)
		return vec.Norm1(r) / nb
	}

	var ts time.Duration
	stamp := func(ev model.Event) time.Duration {
		if ev.TimestampNs > 0 {
			if t := time.Duration(ev.TimestampNs); t > ts {
				return t
			}
		}
		return ts + time.Microsecond
	}

	publishTick := func(rel float64) {
		if opt.Bus == nil {
			return
		}
		for w := range acc {
			ac := &acc[w]
			if !ac.touched {
				continue
			}
			ev := stream.Event{
				TS: ts, Type: stream.TypeSample, Worker: w,
				Iter:  ac.relax / int64(rowsOf(w)),
				Relax: ac.relax,
			}
			if ac.staleCnt > 0 {
				ev.Staleness = ac.staleSum / float64(ac.staleCnt)
				ev.StaleN = ac.staleCnt
				ev.MaxStale = ac.staleMax
				ac.staleSum, ac.staleCnt, ac.staleMax = 0, 0, 0
			}
			lo, hi := partition.ContiguousRange(n, workers, w)
			ev.Residual = vec.Norm1Range(r, lo, hi) / nb
			opt.Bus.Publish(ev)
		}
		opt.Bus.Publish(stream.Event{
			TS: ts, Type: stream.TypeResidual, Worker: -1, Residual: rel,
		})
	}

	samples := 0
	for k, ev := range events {
		i := ev.Row
		if i < 0 || i >= n {
			return nil, fmt.Errorf("trace: event %d relaxes row %d outside [0,%d)", k, i, n)
		}
		ts = stamp(ev)

		ac := &acc[owner[i]]
		ac.relax++
		ac.touched = true
		for _, rd := range ev.Reads {
			if rd.Row < 0 || rd.Row >= n {
				return nil, fmt.Errorf("trace: event %d reads row %d outside [0,%d)", k, rd.Row, n)
			}
			if stale := version[rd.Row] - rd.Version; stale > 0 {
				ac.staleSum += float64(stale)
				ac.staleCnt++
				if int64(stale) > ac.staleMax {
					ac.staleMax = int64(stale)
				}
			} else {
				ac.staleCnt++ // fresh read still counts as an observation
			}
		}

		s := b[i]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if j := a.Col[p]; j != i {
				s -= a.Val[p] * x[j]
			}
		}
		x[i] = s
		version[i]++

		if (k+1)%sampleEvery == 0 {
			publishTick(res())
			samples++
		}
	}

	final := res()
	if opt.Bus != nil {
		publishTick(final)
		samples++
		conv := opt.Tol > 0 && final <= opt.Tol
		opt.Bus.Publish(stream.Event{
			TS: ts, Type: stream.TypeDone, Worker: -1,
			Residual: final, Converged: conv,
		})
	}
	return &ReplayResult{
		Relaxations: len(events),
		Samples:     samples,
		FinalRes:    final,
		Converged:   opt.Tol > 0 && final <= opt.Tol,
	}, nil
}
