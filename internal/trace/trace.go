// Package trace is the timestamped execution-tracing subsystem: it
// captures what the metrics of internal/obs deliberately aggregate
// away — the realized update schedule itself. The paper's Fig 2
// methodology is literally "print the solution components that i read
// from other rows for each relaxation of i"; this package is that
// printout made cheap enough to leave on in production (fixed-capacity
// per-worker ring buffers, lock-free single-writer append, one 32-byte
// record per event, staged block publication, a coarse per-relaxation
// clock, and read coalescing) and useful (a Chrome trace-event
// exporter for Perfetto timelines, and a bridge that replays a live
// trace through the propagation-matrix model of Section IV).
//
// The hot path is built around three amortizations:
//
//   - Events are first written into a worker-local staging array and
//     published to the ring in cache-line-sized blocks, so the ring's
//     wraparound arithmetic runs once per block, not once per event.
//   - Timestamps come from a coarse monotonic clock refreshed once per
//     relaxation (at RelaxStart); the reads, write, and end events of
//     that relaxation reuse the cached stamp. Rank-level iteration
//     brackets (Row < 0) still take fresh stamps on both edges so the
//     distributed timeline keeps real durations.
//   - Per-component reads — the dominant event class, one per
//     off-diagonal entry per relaxation — coalesce into one
//     KindReadBlock event per run of reads whose versions span at most
//     one increment, losslessly (the bridge expands blocks back to the
//     exact per-component versions of Eq. 5).
//
// Like obs.SolverMetrics, every handle is nil-safe: a nil *Recorder
// yields nil *Ring handles whose methods no-op, so the disabled path
// in a solver hot loop costs one pointer comparison.
package trace

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind classifies one trace event.
type Kind uint8

const (
	// KindRelaxStart/KindRelaxEnd bracket the residual computation of
	// one row relaxation (Row, Iter = 1-based relaxation count). In the
	// two-phase solvers the write lands later, as a KindWrite event.
	KindRelaxStart Kind = iota + 1
	KindRelaxEnd
	// KindRead is one neighbor read inside a relaxation: row Row's
	// Iter-th relaxation consumed version Payload of row Peer — the
	// s_ij(k) sample of Eq. 5.
	KindRead
	// KindWrite marks the solution write (and version increment) of
	// row Row's Iter-th relaxation.
	KindWrite
	// KindYield is a scheduler yield by the recording worker.
	KindYield
	// KindDelay is an injected slow-worker sleep before iteration Iter.
	KindDelay
	// KindFlagRaise/KindFlagLower are termination-flag transitions of
	// the recording worker/rank at local iteration Iter.
	KindFlagRaise
	KindFlagLower
	// KindSend is a point-to-point boundary message to rank Peer
	// stamped with local iteration Iter.
	KindSend
	// KindPut is an RMA window put to rank Peer stamped with local
	// iteration Iter.
	KindPut
	// KindRecv is ghost-data arrival from rank Peer whose iteration
	// stamp was Payload (message receive or window refresh observing a
	// new stamp).
	KindRecv
	// Dijkstra-Safra token-ring events (see internal/dist).
	KindTokenPass
	KindTokenBlacken
	KindHalt
	// KindDecided marks the recording worker/rank observing the global
	// termination decision.
	KindDecided
	// Fault-injection events (see internal/fault). KindFaultDrop,
	// KindFaultDup, and KindFaultReorder record the fate drawn for a
	// boundary message to rank Peer at local iteration Iter.
	KindFaultDrop
	KindFaultDup
	KindFaultReorder
	// KindStall is an injected one-shot stall before iteration Iter.
	KindStall
	// KindCrash is the recording rank fail-stopping before iteration
	// Iter; KindRestart is it rejoining from its current iterate.
	KindCrash
	KindRestart
	// KindTermTimeout marks a surviving rank degrading the termination
	// decision after the fault plan's deadline expired with crashed
	// ranks present.
	KindTermTimeout
	// Recovery events (see internal/resilience). KindCheckpoint marks a
	// checkpoint publish observed at local iteration Iter; KindReassign
	// marks the recording worker adopting rows of dead worker Peer after
	// the supervisor's reassignment. Both are worker-level (Row = -1) so
	// the model bridge skips them.
	KindCheckpoint
	KindReassign
	// KindReadBlock is a coalesced run of KindRead events: row Row's
	// Iter-th relaxation read Peer&63 consecutive off-diagonal
	// neighbors of row Row in CSR column order. Peer bit 6
	// (blockComplete) marks a self-contained complete relaxation — the
	// block is the whole relax-start/reads/relax-end group in one
	// event, always starting at off-diagonal index 0, with Peer bits
	// 7-8 holding the log2 of the delta width (1, 2, 4, or 8 bits per
	// read). Non-complete blocks (the chunked fallback for relaxations
	// longer than 32 reads) carry their starting off-diagonal index in
	// Peer>>7 and always use 1-bit deltas. Payload>>32 is the minimum
	// version in the run and the low 32 bits hold the per-read deltas
	// (read b consumed version min + delta b). The encoding is exact:
	// version spreads that exceed the widest delta fall back to plain
	// KindRead events, so the bridge always reconstructs the
	// per-component versions bit-identically.
	KindReadBlock
)

// String names the kind for exporters and debugging.
func (k Kind) String() string {
	switch k {
	case KindRelaxStart:
		return "relax-start"
	case KindRelaxEnd:
		return "relax-end"
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindYield:
		return "yield"
	case KindDelay:
		return "delay"
	case KindFlagRaise:
		return "flag-raise"
	case KindFlagLower:
		return "flag-lower"
	case KindSend:
		return "send"
	case KindPut:
		return "put"
	case KindRecv:
		return "recv"
	case KindTokenPass:
		return "token-pass"
	case KindTokenBlacken:
		return "token-blacken"
	case KindHalt:
		return "halt"
	case KindDecided:
		return "decided"
	case KindFaultDrop:
		return "fault-drop"
	case KindFaultDup:
		return "fault-dup"
	case KindFaultReorder:
		return "fault-reorder"
	case KindStall:
		return "stall"
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindTermTimeout:
		return "term-timeout"
	case KindCheckpoint:
		return "checkpoint"
	case KindReassign:
		return "reassign"
	case KindReadBlock:
		return "read-block"
	}
	return "unknown"
}

// Event is one fixed-size trace record: 8+8+4+4+4+1 bytes pad to 32,
// so two events share a cache line and a ring of 2^16 events costs
// 2 MiB. Fields not meaningful for a kind are -1 (Row, Peer) or 0.
type Event struct {
	// TS is a monotonic nanosecond timestamp relative to the
	// recorder's start (all rings of one recorder share the epoch, so
	// cross-worker ordering is meaningful). Within one relaxation the
	// stamp is coarse: read/write/end events reuse the stamp taken at
	// RelaxStart.
	TS int64
	// Payload is kind-specific: the consumed version for KindRead, the
	// observed iteration stamp for KindRecv, the packed min-version and
	// delta bitmap for KindReadBlock.
	Payload int64
	// Row is the subject row, or -1 for worker-level events.
	Row int32
	// Iter is the 1-based relaxation count (row events) or local
	// iteration (worker/rank events).
	Iter int32
	// Peer is the read source row (KindRead), the packed start index
	// and length (KindReadBlock), or the other rank (message events),
	// or -1.
	Peer int32
	Kind Kind
}

// EventBytes is the encoded size of one Event, used for byte-volume
// accounting (aj_trace_bytes_total).
const EventBytes = 32

// stageEvents is the worker-local staging buffer length: 128 events =
// 4 KiB = 64 cache lines published per block copy.
const stageEvents = 128

// coalesceMax is the longest run of reads one KindReadBlock can carry
// (the delta bitmap has 32 bits).
const coalesceMax = 32

// blockComplete, set in a KindReadBlock's Peer field, marks the block
// as a whole self-contained relaxation (see the Kind documentation).
const blockComplete = int32(1) << 6

// clockStride is how many row relaxations share one coarse-clock
// refresh. The monotonic read costs ~25-30ns — comparable to an entire
// untraced relaxation on small stencils — so stamping every
// relaxation would alone double the solve. A stride of 16 keeps the
// stamp resolution near a microsecond (finer than the Chrome
// exporter's display unit) while making the clock's amortized cost
// ~2ns. Rank-level brackets (Row < 0) and worker-level events always
// take fresh stamps.
const clockStride = 16

// SampleMode selects which relaxations a SamplePolicy keeps.
type SampleMode uint8

const (
	// SampleEvery keeps every N-th relaxation: counts 1, 1+N, 1+2N, ...
	SampleEvery SampleMode = iota
	// SampleHead keeps the first N relaxations of every row/rank.
	SampleHead
	// SampleTail keeps the last N relaxations before the horizon.
	SampleTail
)

// SamplePolicy is a stateless per-relaxation admission filter: a
// relaxation (identified by its 1-based count) is either recorded in
// full — start, reads, write, end — or suppressed entirely, so the
// bridge never sees a torn relaxation. Stateless means the decision
// depends only on the count, keeping the start/read/end events of one
// relaxation consistent without any cross-call state.
type SamplePolicy struct {
	Mode SampleMode
	// N is the period (SampleEvery) or the kept prefix/suffix length
	// (SampleHead/SampleTail).
	N int
	// Horizon is the expected maximum relaxation count (the solver's
	// MaxIters); SampleTail keeps counts > Horizon-N. A zero horizon
	// disables tail filtering (everything is kept).
	Horizon int
}

// ParseSamplePolicy parses the -trace-sample flag syntax: "1/N" or
// "every:N" (every N-th relaxation), "head:K" (first K), "tail:K"
// (last K before the horizon). An empty string means no sampling and
// returns nil.
func ParseSamplePolicy(s string) (*SamplePolicy, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	mode := SampleEvery
	var num string
	switch {
	case strings.HasPrefix(s, "1/"):
		num = s[2:]
	case strings.HasPrefix(s, "every:"):
		num = s[len("every:"):]
	case strings.HasPrefix(s, "head:"):
		mode, num = SampleHead, s[len("head:"):]
	case strings.HasPrefix(s, "tail:"):
		mode, num = SampleTail, s[len("tail:"):]
	default:
		return nil, fmt.Errorf("trace: bad sample policy %q (want 1/N, every:N, head:K, or tail:K)", s)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("trace: bad sample policy %q: count must be a positive integer", s)
	}
	return &SamplePolicy{Mode: mode, N: n}, nil
}

// Keep reports whether the relaxation with the given 1-based count is
// admitted. Nil policies keep everything.
func (p *SamplePolicy) Keep(count int32) bool {
	if p == nil || p.N <= 1 && p.Mode == SampleEvery {
		return true
	}
	switch p.Mode {
	case SampleHead:
		return count <= int32(p.N)
	case SampleTail:
		return p.Horizon <= 0 || count > int32(p.Horizon-p.N)
	default:
		return (count-1)%int32(p.N) == 0
	}
}

// String renders the policy back in flag syntax.
func (p *SamplePolicy) String() string {
	if p == nil {
		return ""
	}
	switch p.Mode {
	case SampleHead:
		return fmt.Sprintf("head:%d", p.N)
	case SampleTail:
		return fmt.Sprintf("tail:%d", p.N)
	default:
		return fmt.Sprintf("1/%d", p.N)
	}
}

// relaxAcc holds the open (deferred) relaxation: with coalescing on,
// RelaxStart stages nothing — the whole relaxation encodes at
// RelaxEnd, usually as one self-contained KindReadBlock. Fallbacks
// re-emit the classic KindRelaxStart/KindRead/KindRelaxEnd grouping,
// so consumers never see a torn encoding.
type relaxAcc struct {
	open    bool
	emitted bool // Start already staged (chunk spill fallback)
	row     int32
	cnt     int32
	ts      int64 // stamp taken at RelaxStart
	start   int32 // off-diagonal index of the pending chunk's first read
	n       int32
	cols    [coalesceMax]int32
	vers    [coalesceMax]int64
}

// RingStats is a point-in-time accounting snapshot of one ring.
type RingStats struct {
	// Retained is how many events the ring currently holds; Total how
	// many were ever encoded; Dropped how many wraparound overwrote.
	// The invariant Total == Retained + Dropped holds at all times.
	Retained int
	Total    int
	Dropped  int
	// Coalesced counts component reads that were carried by
	// KindReadBlock events instead of per-read events.
	Coalesced int
	// SampledOut counts events suppressed by the sampling policy.
	SampledOut int
	// Bytes is the event volume ever encoded (Total * EventBytes).
	Bytes int
	// ElapsedNs spans the first to the last recorded event timestamp,
	// for events/sec rate derivation. Zero when fewer than two events.
	ElapsedNs int64
}

// EventsPerSec derives the retained-event throughput over the
// recording span; 0 when the span is unknown (fewer than two events).
func (s RingStats) EventsPerSec() float64 {
	if s.ElapsedNs <= 0 {
		return 0
	}
	return float64(s.Retained) / (float64(s.ElapsedNs) / 1e9)
}

// Ring is one worker's fixed-capacity event buffer. Exactly one
// goroutine — the owning worker — may append; when the buffer is full
// new events overwrite the oldest (the tail of a long run is usually
// the interesting part), and the overwritten count is reported by
// Dropped. Readers must not call Events, Len, or Dropped until the
// owning goroutine has finished (the solvers' WaitGroup join provides
// the happens-before edge), which is what lets the append path stay
// free of atomics entirely — the read-side methods flush the staging
// buffer, so they are writes too.
type Ring struct {
	buf  []Event
	n    uint64 // total events published (monotone)
	base time.Time
	id   int

	now    int64 // coarse clock: ns since base, refreshed on a stride of relaxations
	tick   int32 // fast relaxations left before the next clock refresh
	nstage int
	stage  [stageEvents]Event

	pol      *SamplePolicy
	coalesce bool
	fast     bool // unsampled + coalescing: hot paths may inline
	acc      relaxAcc

	sampledOut uint64
	coalesced  uint64
	seenTS     bool
	firstTS    int64
	lastTS     int64
}

// refresh re-reads the monotonic clock into the coarse stamp.
func (r *Ring) refresh() { r.now = int64(time.Since(r.base)) }

// put stages one event under the cached stamp; the stage publishes to
// the ring in blocks so the wraparound arithmetic is amortized. The
// fast path is a bounds-known array store that inlines into the typed
// helpers; the stage-full path is split out to keep it that way.
func (r *Ring) put(k Kind, row, iter, peer int32, payload int64) {
	i := r.nstage
	if i < stageEvents {
		r.stage[i] = Event{
			TS:      r.now,
			Payload: payload,
			Row:     row,
			Iter:    iter,
			Peer:    peer,
			Kind:    k,
		}
		r.nstage = i + 1
		return
	}
	r.putSlow(k, row, iter, peer, payload)
}

// putSlow publishes the full staging block, then stages the event.
func (r *Ring) putSlow(k Kind, row, iter, peer int32, payload int64) {
	r.flushStage()
	r.stage[0] = Event{
		TS:      r.now,
		Payload: payload,
		Row:     row,
		Iter:    iter,
		Peer:    peer,
		Kind:    k,
	}
	r.nstage = 1
}

// flushStage publishes the staged block, preserving the ring invariant
// that global event m lives at buf[m % cap]. Dropped counts are
// derived from the monotone total (Total - cap), never accumulated per
// publish, so a block that overwrites several older blocks — or wraps
// the ring more than once — cannot double-count.
func (r *Ring) flushStage() {
	k := r.nstage
	if k == 0 {
		return
	}
	s := r.stage[:k]
	if !r.seenTS {
		r.firstTS, r.seenTS = s[0].TS, true
	}
	r.lastTS = s[k-1].TS
	c := len(r.buf)
	pos := int(r.n % uint64(c))
	for len(s) > 0 {
		m := copy(r.buf[pos:], s)
		s = s[m:]
		pos += m
		if pos == c {
			pos = 0
		}
	}
	r.n += uint64(k)
	r.nstage = 0
}

// flushChunk publishes the pending read chunk under the relaxation's
// grouped encoding: one (non-complete) KindReadBlock when at least two
// reads share a version span of at most one increment, plain KindRead
// events otherwise (exactness first). The chunk's starting
// off-diagonal index advances so a relaxation longer than coalesceMax
// splits into consecutive exact blocks.
func (r *Ring) flushChunk() {
	a := &r.acc
	n := int(a.n)
	if n == 0 {
		return
	}
	if n == 1 {
		r.put(KindRead, a.row, a.cnt, a.cols[0], a.vers[0])
	} else {
		minv, maxv := a.vers[0], a.vers[0]
		for _, v := range a.vers[1:n] {
			if v < minv {
				minv = v
			}
			if v > maxv {
				maxv = v
			}
		}
		if maxv-minv <= 1 && minv >= 0 {
			var bitmap int64
			if maxv != minv {
				for b := 0; b < n; b++ {
					if a.vers[b] != minv {
						bitmap |= 1 << b
					}
				}
			}
			r.coalesced += uint64(n)
			r.put(KindReadBlock, a.row, a.cnt, a.start<<7|int32(n), minv<<32|bitmap)
		} else {
			for b := 0; b < n; b++ {
				r.put(KindRead, a.row, a.cnt, a.cols[b], a.vers[b])
			}
		}
	}
	a.start += a.n
	a.n = 0
}

// spillChunk handles a relaxation outgrowing one block: fall back to
// the grouped encoding — emit the deferred KindRelaxStart, then the
// full chunk — and keep accumulating.
func (r *Ring) spillChunk() {
	a := &r.acc
	save := r.now
	r.now = a.ts
	if !a.emitted {
		a.emitted = true
		r.put(KindRelaxStart, a.row, a.cnt, -1, 0)
	}
	r.flushChunk()
	r.now = save
}

// tryCompleteBlock encodes the open accumulator as one self-contained
// complete KindReadBlock — the hot-path encoding — choosing the
// narrowest per-read delta width that fits the version spread: 1-bit
// deltas carry up to 32 reads spanning one increment, widening to
// 8-bit deltas for up to 4 reads spanning 255 increments (the common
// stencil case: few neighbors, versions spread by whole scheduler
// quanta). Reports false — leaving the accumulator untouched — when no
// width fits, or the relaxation already spilled a chunk, or it has
// fewer than two reads (the grouped encoding is no larger then).
func (r *Ring) tryCompleteBlock() bool {
	a := &r.acc
	n := int(a.n)
	if a.emitted || n < 2 {
		return false
	}
	v0 := a.vers[0]
	minv, maxv := v0, v0
	for _, v := range a.vers[1:n] {
		if v < minv {
			minv = v
		} else if v > maxv {
			maxv = v
		}
	}
	if minv < 0 {
		return false
	}
	span := maxv - minv
	var bitmap int64
	var wlog int32
	// span == 0 — every read saw the same version — is the steady-state
	// common case (an interior stencil row's neighbors are all in-block,
	// relaxed in lockstep): the delta bitmap is identically zero, so skip
	// the width fit and the bitmap build outright.
	if span != 0 {
		switch {
		case span <= 1:
			wlog = 0
		case span <= 3 && n <= 16:
			wlog = 1
		case span <= 15 && n <= 8:
			wlog = 2
		case span <= 255 && n <= 4:
			wlog = 3
		default:
			return false
		}
		w := uint(1) << wlog
		for b := 0; b < n; b++ {
			bitmap |= (a.vers[b] - minv) << (uint(b) * w)
		}
	}
	r.coalesced += uint64(n)
	a.open, a.n = false, 0
	i := r.nstage
	if i == stageEvents {
		r.flushStage()
		i = 0
	}
	r.stage[i] = Event{
		TS:      a.ts,
		Payload: minv<<32 | bitmap,
		Row:     a.row,
		Iter:    a.cnt,
		Peer:    int32(n) | blockComplete | wlog<<7,
		Kind:    KindReadBlock,
	}
	r.nstage = i + 1
	return true
}

// closeRelax encodes and clears the open relaxation. A complete
// relaxation usually becomes a single self-contained KindReadBlock
// (tryCompleteBlock); everything else re-emits the classic grouped
// encoding — KindRelaxStart, reads (blocks or plain), and KindRelaxEnd
// when complete. Incomplete closings (a new RelaxStart or a reader
// sync arrived first) stage the group without its end marker, which
// the bridge discards exactly like a wraparound-truncated group.
func (r *Ring) closeRelax(complete bool) {
	if complete && r.tryCompleteBlock() {
		return
	}
	a := &r.acc
	a.open = false
	save := r.now
	r.now = a.ts
	if !a.emitted {
		r.put(KindRelaxStart, a.row, a.cnt, -1, 0)
	}
	r.flushChunk()
	if complete {
		r.put(KindRelaxEnd, a.row, a.cnt, -1, 0)
	}
	a.start, a.emitted, a.n = 0, false, 0
	r.now = save
}

// sync makes the ring externally consistent: the open relaxation (if
// any) and the staging block are published. Reader-side methods call
// it; the owner must have finished appending (same happens-before edge
// as Events).
func (r *Ring) sync() {
	if r.acc.open {
		r.closeRelax(false)
	}
	r.flushStage()
}

// Record appends one raw event under a fresh timestamp; nil-safe.
// Worker-level helpers route through it. It does not disturb an open
// relaxation: a yield or checkpoint landing mid-relaxation stages
// immediately (its stamp carries the ordering) while the relaxation
// still encodes as one block at RelaxEnd.
func (r *Ring) Record(k Kind, row, iter, peer int32, payload int64) {
	if r == nil {
		return
	}
	r.refresh()
	r.put(k, row, iter, peer, payload)
}

// Typed helpers — all nil-safe.
//
// The Try* variants are the inlinable fast paths of the corresponding
// helpers, for hot loops that relax rows millions of times per second:
// they report true when the event was fully handled (or the ring is
// nil) and false when the caller must invoke the full helper. A
// non-inlinable function call costs more than an entire untraced
// relaxation on small stencils, so the solvers guard every per-event
// call with the Try form; everyone else can just call the full
// helpers, which subsume them.

// TryRelaxStart is the inlinable fast path of RelaxStart: open the
// deferred accumulator under the coarse clock stamp. It succeeds only
// on unsampled coalescing rings (only those arm tick) with no open
// relaxation, a non-negative row, and a stride budget left.
func (r *Ring) TryRelaxStart(row, count int) bool {
	if r == nil {
		return true
	}
	a := &r.acc
	t := r.tick - 1
	if t >= 0 && !a.open && row >= 0 {
		r.tick = t
		a.open = true
		a.row, a.cnt, a.ts = int32(row), int32(count), r.now
		return true
	}
	return false
}

// TryReadVersion is the inlinable fast path of ReadVersion: append one
// read to the open relaxation's accumulator. Like ReadVersion's own
// fast path it trusts the caller's nesting discipline — the read must
// belong to the relaxation bracketed by the enclosing
// RelaxStart/RelaxEnd pair on this ring.
func (r *Ring) TryReadVersion(src, version int) bool {
	if r == nil {
		return true
	}
	a := &r.acc
	n := a.n
	if a.open && n < coalesceMax {
		a.cols[n] = int32(src)
		a.vers[n] = int64(version)
		a.n = n + 1
		return true
	}
	return false
}

// TryRelaxEnd is the inlinable fast path of RelaxEnd: close the open
// relaxation as one self-contained block event. Like TryReadVersion it
// trusts the caller's nesting — the open relaxation is the one the
// caller is ending — so it takes no row/count to match against.
func (r *Ring) TryRelaxEnd() bool {
	if r == nil {
		return true
	}
	return r.acc.open && r.tryCompleteBlock()
}

// RelaxStart marks the beginning of row's count-th relaxation. With
// coalescing on, nothing is staged yet — the relaxation encodes at
// RelaxEnd (usually as one block event). The fast path inlines into
// the solver: tick > 0 is only ever true for unsampled coalescing
// rings (the slow path arms it), so the single comparison also proves
// no sampling policy needs consulting and no previous relaxation is
// open to close. The clock stamp is the coarse one refreshed every
// clockStride-th relaxation by the slow path.
func (r *Ring) RelaxStart(row, count int) {
	if r == nil {
		return
	}
	a := &r.acc
	t := r.tick - 1
	if t >= 0 && !a.open && row >= 0 {
		r.tick = t
		a.open = true
		a.row, a.cnt, a.ts = int32(row), int32(count), r.now
		return
	}
	r.relaxStartSlow(row, count)
}

// relaxStartSlow is the out-of-line RelaxStart: close any open
// relaxation, consult the sampling policy, refresh the coarse clock
// (re-arming the fast path's tick for fast rings), and either stage an
// immediate KindRelaxStart (rank-level or uncoalesced) or open the
// deferred accumulator.
func (r *Ring) relaxStartSlow(row, count int) {
	if r.acc.open {
		r.closeRelax(false)
	}
	if r.pol != nil && !r.pol.Keep(int32(count)) {
		r.sampledOut++
		return
	}
	r.refresh()
	if r.fast {
		r.tick = clockStride - 1
	}
	if row < 0 || !r.coalesce {
		r.put(KindRelaxStart, int32(row), int32(count), -1, 0)
		return
	}
	a := &r.acc
	a.open, a.emitted = true, false
	a.row, a.cnt, a.ts = int32(row), int32(count), r.now
	a.start, a.n = 0, 0
}

// RelaxEnd marks the end of row's count-th relaxation (read phase) and
// publishes the deferred encoding — on the hot path a single
// self-contained KindReadBlock stored straight into the staging
// buffer. Rank-level brackets (row < 0) take a fresh stamp so
// iteration slices keep real durations; row relaxations reuse the
// RelaxStart stamp.
func (r *Ring) RelaxEnd(row, count int) {
	if r == nil {
		return
	}
	a := &r.acc
	if a.open && a.row == int32(row) && a.cnt == int32(count) && r.tryCompleteBlock() {
		return
	}
	r.relaxEndSlow(row, count)
}

// relaxEndSlow handles everything the single-block fast path cannot:
// grouped fallback encodings, mismatched or absent open relaxations,
// sampling, and rank-level brackets.
func (r *Ring) relaxEndSlow(row, count int) {
	a := &r.acc
	if a.open {
		if a.row == int32(row) && a.cnt == int32(count) {
			r.closeRelax(true)
			return
		}
		r.closeRelax(false)
	}
	if r.pol != nil && !r.pol.Keep(int32(count)) {
		r.sampledOut++
		return
	}
	if row < 0 {
		r.refresh()
	}
	r.put(KindRelaxEnd, int32(row), int32(count), -1, 0)
}

// ReadVersion records that row's count-th relaxation read version of
// row src. Reads of the open relaxation accumulate and publish as
// coalesced KindReadBlock events; srcs must then arrive in the row's
// CSR off-diagonal column order (which is how the solvers iterate),
// because the block encodes positions, not column ids. Reads outside
// an open relaxation stage plain KindRead events (the uncoalesced wire
// format). The fast path — accumulate into the open relaxation — is
// two array stores and inlines into the solver; an open accumulator
// already implies coalescing is on and the sampling policy admitted
// this count. It trusts the solvers' call discipline — reads between a
// RelaxStart/RelaxEnd pair belong to that relaxation — so it elides
// the row/count match; the slow path keeps the full check for
// out-of-group reads.
func (r *Ring) ReadVersion(row, count, src, version int) {
	if r == nil {
		return
	}
	a := &r.acc
	n := a.n
	if a.open && n < coalesceMax {
		a.cols[n] = int32(src)
		a.vers[n] = int64(version)
		a.n = n + 1
		return
	}
	r.readVersionSlow(row, count, src, version)
}

// readVersionSlow handles sampling, the plain KindRead fallback, and
// the chunk-spill case (a relaxation outgrowing one 32-read block).
func (r *Ring) readVersionSlow(row, count, src, version int) {
	if r.pol != nil && !r.pol.Keep(int32(count)) {
		r.sampledOut++
		return
	}
	a := &r.acc
	if !a.open || a.row != int32(row) || a.cnt != int32(count) {
		r.put(KindRead, int32(row), int32(count), int32(src), int64(version))
		return
	}
	// The accumulator is full: spill it as a grouped chunk, then keep
	// accumulating.
	r.spillChunk()
	a.cols[a.n] = int32(src)
	a.vers[a.n] = int64(version)
	a.n++
}

// FastBlocks reports whether the ring is on the fused block path —
// unsampled, coalescing — where every complete relaxation encodes as
// one self-contained KindReadBlock. A solver may then accumulate the
// read versions inside its own relaxation loop and hand them over
// wholesale with AppendReads, skipping the per-read accumulator API
// entirely. Nil-safe (false; the generic path handles nil rings).
func (r *Ring) FastBlocks() bool { return r != nil && r.fast }

// TileStamp refreshes and returns the coarse clock stamp. Solvers on
// the fused path stamp once per row tile instead of once per
// clockStride relaxations — the same sub-sweep granularity trade the
// stride already makes, amortized further.
func (r *Ring) TileStamp() int64 {
	if r == nil {
		return 0
	}
	r.refresh()
	return r.now
}

// AppendReads encodes row's count-th relaxation — its off-diagonal
// read versions, CSR column order — in one call under stamp ts: the
// fused equivalent of a RelaxStart / n× ReadVersion / RelaxEnd
// bracket for hot loops that gather vers themselves (FastBlocks
// rings). cols is the row's full CSR column slice, diagonal included;
// it is consulted only on the fallback when no delta width fits the
// version spread and the reads re-emit as plain KindRead events.
func (r *Ring) AppendReads(row, count int, ts int64, vers []int64, cols []int) {
	if r == nil {
		return
	}
	if r.acc.open {
		r.closeRelax(false)
	}
	n := len(vers)
	if n >= 2 {
		v0 := vers[0]
		minv, maxv := v0, v0
		for _, v := range vers[1:] {
			if v < minv {
				minv = v
			} else if v > maxv {
				maxv = v
			}
		}
		if minv >= 0 {
			span := maxv - minv
			var bitmap int64
			var wlog int32
			fits := true
			if span != 0 {
				switch {
				case span <= 1:
					wlog = 0
				case span <= 3 && n <= 16:
					wlog = 1
				case span <= 15 && n <= 8:
					wlog = 2
				case span <= 255 && n <= 4:
					wlog = 3
				default:
					fits = false
				}
				if fits {
					w := uint(1) << wlog
					for b := 0; b < n; b++ {
						bitmap |= (vers[b] - minv) << (uint(b) * w)
					}
				}
			}
			if fits {
				r.coalesced += uint64(n)
				i := r.nstage
				if i == stageEvents {
					r.flushStage()
					i = 0
				}
				r.stage[i] = Event{
					TS:      ts,
					Payload: minv<<32 | bitmap,
					Row:     int32(row),
					Iter:    int32(count),
					Peer:    int32(n) | blockComplete | wlog<<7,
					Kind:    KindReadBlock,
				}
				r.nstage = i + 1
				return
			}
		}
	}
	r.appendReadsSlow(row, count, ts, vers, cols)
}

// appendReadsSlow re-emits the grouped encoding for relaxations the
// complete block cannot carry (fewer than two reads, negative
// versions, spreads no delta width fits): KindRelaxStart, plain
// KindRead events recovering the column ids from cols, KindRelaxEnd.
func (r *Ring) appendReadsSlow(row, count int, ts int64, vers []int64, cols []int) {
	save := r.now
	r.now = ts
	r.put(KindRelaxStart, int32(row), int32(count), -1, 0)
	q := 0
	for _, j := range cols {
		if j == row {
			continue
		}
		if q >= len(vers) {
			break
		}
		r.put(KindRead, int32(row), int32(count), int32(j), vers[q])
		q++
	}
	r.put(KindRelaxEnd, int32(row), int32(count), -1, 0)
	r.now = save
}

// Write records the solution write of row's count-th relaxation. The
// coalesced encoding elides the marker: no consumer distinguishes the
// write moment from the relaxation that produced it at the coarse
// clock's resolution (the bridge ignores KindWrite entirely), so the
// event would be a third of the hot-path volume for nothing. Disable
// coalescing to record exact per-write events.
func (r *Ring) Write(row, count int) {
	if r == nil || r.coalesce {
		return
	}
	r.writeSlow(row, count)
}

func (r *Ring) writeSlow(row, count int) {
	if r.pol != nil && !r.pol.Keep(int32(count)) {
		r.sampledOut++
		return
	}
	r.put(KindWrite, int32(row), int32(count), -1, 0)
}

// Yield records a scheduler yield.
func (r *Ring) Yield() { r.Record(KindYield, -1, 0, -1, 0) }

// Delay records an injected slow-worker sleep before iteration iter.
func (r *Ring) Delay(iter int) { r.Record(KindDelay, -1, int32(iter), -1, 0) }

// FlagRaise records this worker raising its termination flag.
func (r *Ring) FlagRaise(iter int) { r.Record(KindFlagRaise, -1, int32(iter), -1, 0) }

// FlagLower records this worker lowering its termination flag.
func (r *Ring) FlagLower(iter int) { r.Record(KindFlagLower, -1, int32(iter), -1, 0) }

// Flag records a termination-flag transition in the given direction.
func (r *Ring) Flag(up bool, iter int) {
	if up {
		r.FlagRaise(iter)
	} else {
		r.FlagLower(iter)
	}
}

// Send records a boundary message to rank peer stamped iter.
func (r *Ring) Send(peer, iter int) { r.Record(KindSend, -1, int32(iter), int32(peer), int64(iter)) }

// Put records an RMA window put to rank peer stamped iter.
func (r *Ring) Put(peer, iter int) { r.Record(KindPut, -1, int32(iter), int32(peer), int64(iter)) }

// Recv records ghost data from rank peer carrying iteration stamp.
func (r *Ring) Recv(peer, stamp int) { r.Record(KindRecv, -1, 0, int32(peer), int64(stamp)) }

// TokenPass records forwarding the termination token at iteration iter.
func (r *Ring) TokenPass(iter int) { r.Record(KindTokenPass, -1, int32(iter), -1, 0) }

// TokenBlacken records dirtying the token at iteration iter.
func (r *Ring) TokenBlacken(iter int) { r.Record(KindTokenBlacken, -1, int32(iter), -1, 0) }

// Halt records sending/forwarding the halt broadcast.
func (r *Ring) Halt(iter int) { r.Record(KindHalt, -1, int32(iter), -1, 0) }

// Decided records observing the global termination decision.
func (r *Ring) Decided(iter int) { r.Record(KindDecided, -1, int32(iter), -1, 0) }

// FaultDrop records an injected loss of the boundary message to peer.
func (r *Ring) FaultDrop(peer, iter int) {
	r.Record(KindFaultDrop, -1, int32(iter), int32(peer), 0)
}

// FaultDup records an injected duplication of the message to peer.
func (r *Ring) FaultDup(peer, iter int) {
	r.Record(KindFaultDup, -1, int32(iter), int32(peer), 0)
}

// FaultReorder records an injected reordering of the message to peer.
func (r *Ring) FaultReorder(peer, iter int) {
	r.Record(KindFaultReorder, -1, int32(iter), int32(peer), 0)
}

// Stall records an injected one-shot stall before iteration iter.
func (r *Ring) Stall(iter int) { r.Record(KindStall, -1, int32(iter), -1, 0) }

// Crash records the recording rank fail-stopping before iteration iter.
func (r *Ring) Crash(iter int) { r.Record(KindCrash, -1, int32(iter), -1, 0) }

// Restart records the recording rank rejoining after a crash.
func (r *Ring) Restart(iter int) { r.Record(KindRestart, -1, int32(iter), -1, 0) }

// TermTimeout records a termination-deadline degradation.
func (r *Ring) TermTimeout(iter int) { r.Record(KindTermTimeout, -1, int32(iter), -1, 0) }

// Checkpoint records a checkpoint publish observed at iteration iter.
func (r *Ring) Checkpoint(iter int) { r.Record(KindCheckpoint, -1, int32(iter), -1, 0) }

// Reassign records this worker adopting rows of dead worker `from` at
// local iteration iter (the supervisor's finer-block redistribution).
func (r *Ring) Reassign(from, iter int) {
	r.Record(KindReassign, -1, int32(iter), int32(from), 0)
}

// ID returns the owning worker/rank id (-1 on nil).
func (r *Ring) ID() int {
	if r == nil {
		return -1
	}
	return r.id
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.sync()
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Total reports how many events were ever appended.
func (r *Ring) Total() int {
	if r == nil {
		return 0
	}
	r.sync()
	return int(r.n)
}

// Dropped reports how many events were overwritten by wraparound.
func (r *Ring) Dropped() int {
	if r == nil {
		return 0
	}
	r.sync()
	if d := int(r.n) - len(r.buf); d > 0 {
		return d
	}
	return 0
}

// SampledOut reports how many events the sampling policy suppressed.
func (r *Ring) SampledOut() int {
	if r == nil {
		return 0
	}
	return int(r.sampledOut)
}

// Stats snapshots the ring's accounting counters.
func (r *Ring) Stats() RingStats {
	if r == nil {
		return RingStats{}
	}
	r.sync()
	s := RingStats{
		Retained:   r.Len(),
		Total:      int(r.n),
		Coalesced:  int(r.coalesced),
		SampledOut: int(r.sampledOut),
		Bytes:      int(r.n) * EventBytes,
	}
	s.Dropped = s.Total - s.Retained
	if r.seenTS && r.lastTS > r.firstTS {
		s.ElapsedNs = r.lastTS - r.firstTS
	}
	return s
}

// Events returns the retained events oldest-first. The returned slice
// aliases the ring; callers must not append to the ring afterwards.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.sync()
	if r.n == 0 {
		return nil
	}
	if r.n <= uint64(len(r.buf)) {
		return r.buf[:r.n]
	}
	// Wrapped: oldest retained event sits at the write cursor.
	cut := int(r.n % uint64(len(r.buf)))
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[cut:]...)
	return append(out, r.buf[:cut]...)
}

// Recorder owns one ring per worker/rank, sharing a monotonic epoch.
type Recorder struct {
	rings    []*Ring
	base     time.Time
	pol      *SamplePolicy
	coalesce bool
	exact    bool
}

// DefaultCapacity is the per-worker ring size commands use unless told
// otherwise: 2^16 events = 2 MiB per worker.
const DefaultCapacity = 1 << 16

// Option configures a Recorder at construction.
type Option func(*Recorder)

// WithSampling installs a per-relaxation sampling policy (nil keeps
// everything). The bridge detects a sampled recorder and verifies the
// longest contiguous suffix per row instead of requiring a gap-free
// window.
func WithSampling(p *SamplePolicy) Option {
	return func(rec *Recorder) { rec.pol = p }
}

// WithoutCoalescing disables KindReadBlock coalescing, recording one
// KindRead per component read (the pre-coalescing wire format; useful
// for differential testing and for consumers that cannot be given the
// matrix the bridge needs to expand blocks).
func WithoutCoalescing() Option {
	return func(rec *Recorder) { rec.coalesce = false }
}

// WithExactStamps refreshes the coarse clock on every relaxation
// instead of every clockStride-th, restoring exact cross-worker
// interleaving at the cost of one monotonic clock read per relaxation
// (roughly the cost of an untraced relaxation on small stencils).
// Production tracing does not need it — within a stride the workers
// race anyway — but differential tests and schedule-forensics tools
// that assert fine-grained ordering do.
func WithExactStamps() Option {
	return func(rec *Recorder) { rec.exact = true }
}

// NewRecorder allocates rings for `workers` workers, each holding
// `capacity` events (DefaultCapacity if capacity <= 0). Read
// coalescing is on by default.
func NewRecorder(workers, capacity int, opts ...Option) *Recorder {
	if workers <= 0 {
		panic("trace: workers must be positive")
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	rec := &Recorder{base: time.Now(), rings: make([]*Ring, workers), coalesce: true}
	for _, o := range opts {
		o(rec)
	}
	for i := range rec.rings {
		rec.rings[i] = &Ring{
			buf:      make([]Event, capacity),
			base:     rec.base,
			id:       i,
			pol:      rec.pol,
			coalesce: rec.coalesce,
			fast:     rec.pol == nil && rec.coalesce && !rec.exact,
		}
	}
	return rec
}

// Reset rewinds every ring to empty and restarts the shared epoch, so
// one recorder (and its megabytes of ring buffer) can be reused across
// solves instead of reallocated — the always-on deployment shape. The
// buffers are not rezeroed: a ring never reads past its published
// count, so stale events are unreachable. The same single-writer rule
// applies: only call Reset when no worker is appending.
func (rec *Recorder) Reset() {
	if rec == nil {
		return
	}
	rec.base = time.Now()
	for _, r := range rec.rings {
		r.n = 0
		r.base = rec.base
		r.now = 0
		r.tick = 0
		r.nstage = 0
		r.acc = relaxAcc{}
		r.sampledOut = 0
		r.coalesced = 0
		r.seenTS = false
		r.firstTS = 0
		r.lastTS = 0
	}
}

// Worker returns the ring owned by worker id; nil-safe, and nil when
// id is out of range (a solver may be asked for more workers than the
// recorder was sized for — those workers simply go unrecorded).
func (rec *Recorder) Worker(id int) *Ring {
	if rec == nil || id < 0 || id >= len(rec.rings) {
		return nil
	}
	return rec.rings[id]
}

// Base returns the recorder's epoch — the instant event timestamps
// count from (zero on nil). Cross-process merging needs it: a rank's
// trace time rebases onto another clock via the difference between its
// recorder base and its transport epoch plus the estimated peer offset.
func (rec *Recorder) Base() time.Time {
	if rec == nil {
		return time.Time{}
	}
	return rec.base
}

// Workers reports the number of rings (0 on nil).
func (rec *Recorder) Workers() int {
	if rec == nil {
		return 0
	}
	return len(rec.rings)
}

// Sampled reports whether a sampling policy is installed — the bridge
// switches to gap-tolerant suffix reconstruction when it is.
func (rec *Recorder) Sampled() bool {
	return rec != nil && rec.pol != nil
}

// Policy returns the installed sampling policy (nil when unsampled).
func (rec *Recorder) Policy() *SamplePolicy {
	if rec == nil {
		return nil
	}
	return rec.pol
}

// Coalescing reports whether reads coalesce into KindReadBlock events.
func (rec *Recorder) Coalescing() bool {
	return rec != nil && rec.coalesce
}

// TotalEvents sums retained events across rings.
func (rec *Recorder) TotalEvents() int {
	if rec == nil {
		return 0
	}
	n := 0
	for _, r := range rec.rings {
		n += r.Len()
	}
	return n
}

// TotalDropped sums wraparound losses across rings.
func (rec *Recorder) TotalDropped() int {
	if rec == nil {
		return 0
	}
	n := 0
	for _, r := range rec.rings {
		n += r.Dropped()
	}
	return n
}

// Totals aggregates Stats across all rings.
func (rec *Recorder) Totals() RingStats {
	var t RingStats
	if rec == nil {
		return t
	}
	for _, r := range rec.rings {
		s := r.Stats()
		t.Retained += s.Retained
		t.Total += s.Total
		t.Dropped += s.Dropped
		t.Coalesced += s.Coalesced
		t.SampledOut += s.SampledOut
		t.Bytes += s.Bytes
		if s.ElapsedNs > t.ElapsedNs {
			t.ElapsedNs = s.ElapsedNs
		}
	}
	return t
}
