// Package trace is the timestamped execution-tracing subsystem: it
// captures what the metrics of internal/obs deliberately aggregate
// away — the realized update schedule itself. The paper's Fig 2
// methodology is literally "print the solution components that i read
// from other rows for each relaxation of i"; this package is that
// printout made cheap (fixed-capacity per-worker ring buffers,
// lock-free single-writer append, one 32-byte record per event) and
// useful (a Chrome trace-event exporter for Perfetto timelines, and a
// bridge that replays a live trace through the propagation-matrix
// model of Section IV).
//
// Like obs.SolverMetrics, every handle is nil-safe: a nil *Recorder
// yields nil *Ring handles whose methods no-op, so the disabled path
// in a solver hot loop costs one pointer comparison.
package trace

import "time"

// Kind classifies one trace event.
type Kind uint8

const (
	// KindRelaxStart/KindRelaxEnd bracket the residual computation of
	// one row relaxation (Row, Iter = 1-based relaxation count). In the
	// two-phase solvers the write lands later, as a KindWrite event.
	KindRelaxStart Kind = iota + 1
	KindRelaxEnd
	// KindRead is one neighbor read inside a relaxation: row Row's
	// Iter-th relaxation consumed version Payload of row Peer — the
	// s_ij(k) sample of Eq. 5.
	KindRead
	// KindWrite marks the solution write (and version increment) of
	// row Row's Iter-th relaxation.
	KindWrite
	// KindYield is a scheduler yield by the recording worker.
	KindYield
	// KindDelay is an injected slow-worker sleep before iteration Iter.
	KindDelay
	// KindFlagRaise/KindFlagLower are termination-flag transitions of
	// the recording worker/rank at local iteration Iter.
	KindFlagRaise
	KindFlagLower
	// KindSend is a point-to-point boundary message to rank Peer
	// stamped with local iteration Iter.
	KindSend
	// KindPut is an RMA window put to rank Peer stamped with local
	// iteration Iter.
	KindPut
	// KindRecv is ghost-data arrival from rank Peer whose iteration
	// stamp was Payload (message receive or window refresh observing a
	// new stamp).
	KindRecv
	// Dijkstra-Safra token-ring events (see internal/dist).
	KindTokenPass
	KindTokenBlacken
	KindHalt
	// KindDecided marks the recording worker/rank observing the global
	// termination decision.
	KindDecided
	// Fault-injection events (see internal/fault). KindFaultDrop,
	// KindFaultDup, and KindFaultReorder record the fate drawn for a
	// boundary message to rank Peer at local iteration Iter.
	KindFaultDrop
	KindFaultDup
	KindFaultReorder
	// KindStall is an injected one-shot stall before iteration Iter.
	KindStall
	// KindCrash is the recording rank fail-stopping before iteration
	// Iter; KindRestart is it rejoining from its current iterate.
	KindCrash
	KindRestart
	// KindTermTimeout marks a surviving rank degrading the termination
	// decision after the fault plan's deadline expired with crashed
	// ranks present.
	KindTermTimeout
	// Recovery events (see internal/resilience). KindCheckpoint marks a
	// checkpoint publish observed at local iteration Iter; KindReassign
	// marks the recording worker adopting rows of dead worker Peer after
	// the supervisor's reassignment. Both are worker-level (Row = -1) so
	// the model bridge skips them.
	KindCheckpoint
	KindReassign
)

// String names the kind for exporters and debugging.
func (k Kind) String() string {
	switch k {
	case KindRelaxStart:
		return "relax-start"
	case KindRelaxEnd:
		return "relax-end"
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindYield:
		return "yield"
	case KindDelay:
		return "delay"
	case KindFlagRaise:
		return "flag-raise"
	case KindFlagLower:
		return "flag-lower"
	case KindSend:
		return "send"
	case KindPut:
		return "put"
	case KindRecv:
		return "recv"
	case KindTokenPass:
		return "token-pass"
	case KindTokenBlacken:
		return "token-blacken"
	case KindHalt:
		return "halt"
	case KindDecided:
		return "decided"
	case KindFaultDrop:
		return "fault-drop"
	case KindFaultDup:
		return "fault-dup"
	case KindFaultReorder:
		return "fault-reorder"
	case KindStall:
		return "stall"
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindTermTimeout:
		return "term-timeout"
	case KindCheckpoint:
		return "checkpoint"
	case KindReassign:
		return "reassign"
	}
	return "unknown"
}

// Event is one fixed-size trace record: 8+8+4+4+4+1 bytes pad to 32,
// so two events share a cache line and a ring of 2^16 events costs
// 2 MiB. Fields not meaningful for a kind are -1 (Row, Peer) or 0.
type Event struct {
	// TS is a monotonic nanosecond timestamp relative to the
	// recorder's start (all rings of one recorder share the epoch, so
	// cross-worker ordering is meaningful).
	TS int64
	// Payload is kind-specific: the consumed version for KindRead, the
	// observed iteration stamp for KindRecv.
	Payload int64
	// Row is the subject row, or -1 for worker-level events.
	Row int32
	// Iter is the 1-based relaxation count (row events) or local
	// iteration (worker/rank events).
	Iter int32
	// Peer is the read source row (KindRead) or the other rank
	// (message events), or -1.
	Peer int32
	Kind Kind
}

// Ring is one worker's fixed-capacity event buffer. Exactly one
// goroutine — the owning worker — may append; when the buffer is full
// new events overwrite the oldest (the tail of a long run is usually
// the interesting part), and the overwritten count is reported by
// Dropped. Readers must not call Events or Dropped until the owning
// goroutine has finished (the solvers' WaitGroup join provides the
// happens-before edge), which is what lets the append path stay free
// of atomics entirely.
type Ring struct {
	buf  []Event
	n    uint64 // total events appended (monotone)
	base time.Time
	id   int
}

// Record appends one raw event; nil-safe.
func (r *Ring) Record(k Kind, row, iter, peer int32, payload int64) {
	if r == nil {
		return
	}
	i := r.n % uint64(len(r.buf))
	r.buf[i] = Event{
		TS:      int64(time.Since(r.base)),
		Payload: payload,
		Row:     row,
		Iter:    iter,
		Peer:    peer,
		Kind:    k,
	}
	r.n++
}

// Typed helpers — all nil-safe, all one Record call.

// RelaxStart marks the beginning of row's count-th relaxation.
func (r *Ring) RelaxStart(row, count int) {
	r.Record(KindRelaxStart, int32(row), int32(count), -1, 0)
}

// RelaxEnd marks the end of row's count-th relaxation (read phase).
func (r *Ring) RelaxEnd(row, count int) {
	r.Record(KindRelaxEnd, int32(row), int32(count), -1, 0)
}

// ReadVersion records that row's count-th relaxation read version of
// row src.
func (r *Ring) ReadVersion(row, count, src, version int) {
	r.Record(KindRead, int32(row), int32(count), int32(src), int64(version))
}

// Write records the solution write of row's count-th relaxation.
func (r *Ring) Write(row, count int) {
	r.Record(KindWrite, int32(row), int32(count), -1, 0)
}

// Yield records a scheduler yield.
func (r *Ring) Yield() { r.Record(KindYield, -1, 0, -1, 0) }

// Delay records an injected slow-worker sleep before iteration iter.
func (r *Ring) Delay(iter int) { r.Record(KindDelay, -1, int32(iter), -1, 0) }

// FlagRaise records this worker raising its termination flag.
func (r *Ring) FlagRaise(iter int) { r.Record(KindFlagRaise, -1, int32(iter), -1, 0) }

// FlagLower records this worker lowering its termination flag.
func (r *Ring) FlagLower(iter int) { r.Record(KindFlagLower, -1, int32(iter), -1, 0) }

// Flag records a termination-flag transition in the given direction.
func (r *Ring) Flag(up bool, iter int) {
	if up {
		r.FlagRaise(iter)
	} else {
		r.FlagLower(iter)
	}
}

// Send records a boundary message to rank peer stamped iter.
func (r *Ring) Send(peer, iter int) { r.Record(KindSend, -1, int32(iter), int32(peer), int64(iter)) }

// Put records an RMA window put to rank peer stamped iter.
func (r *Ring) Put(peer, iter int) { r.Record(KindPut, -1, int32(iter), int32(peer), int64(iter)) }

// Recv records ghost data from rank peer carrying iteration stamp.
func (r *Ring) Recv(peer, stamp int) { r.Record(KindRecv, -1, 0, int32(peer), int64(stamp)) }

// TokenPass records forwarding the termination token at iteration iter.
func (r *Ring) TokenPass(iter int) { r.Record(KindTokenPass, -1, int32(iter), -1, 0) }

// TokenBlacken records dirtying the token at iteration iter.
func (r *Ring) TokenBlacken(iter int) { r.Record(KindTokenBlacken, -1, int32(iter), -1, 0) }

// Halt records sending/forwarding the halt broadcast.
func (r *Ring) Halt(iter int) { r.Record(KindHalt, -1, int32(iter), -1, 0) }

// Decided records observing the global termination decision.
func (r *Ring) Decided(iter int) { r.Record(KindDecided, -1, int32(iter), -1, 0) }

// FaultDrop records an injected loss of the boundary message to peer.
func (r *Ring) FaultDrop(peer, iter int) {
	r.Record(KindFaultDrop, -1, int32(iter), int32(peer), 0)
}

// FaultDup records an injected duplication of the message to peer.
func (r *Ring) FaultDup(peer, iter int) {
	r.Record(KindFaultDup, -1, int32(iter), int32(peer), 0)
}

// FaultReorder records an injected reordering of the message to peer.
func (r *Ring) FaultReorder(peer, iter int) {
	r.Record(KindFaultReorder, -1, int32(iter), int32(peer), 0)
}

// Stall records an injected one-shot stall before iteration iter.
func (r *Ring) Stall(iter int) { r.Record(KindStall, -1, int32(iter), -1, 0) }

// Crash records the recording rank fail-stopping before iteration iter.
func (r *Ring) Crash(iter int) { r.Record(KindCrash, -1, int32(iter), -1, 0) }

// Restart records the recording rank rejoining after a crash.
func (r *Ring) Restart(iter int) { r.Record(KindRestart, -1, int32(iter), -1, 0) }

// TermTimeout records a termination-deadline degradation.
func (r *Ring) TermTimeout(iter int) { r.Record(KindTermTimeout, -1, int32(iter), -1, 0) }

// Checkpoint records a checkpoint publish observed at iteration iter.
func (r *Ring) Checkpoint(iter int) { r.Record(KindCheckpoint, -1, int32(iter), -1, 0) }

// Reassign records this worker adopting rows of dead worker `from` at
// local iteration iter (the supervisor's finer-block redistribution).
func (r *Ring) Reassign(from, iter int) {
	r.Record(KindReassign, -1, int32(iter), int32(from), 0)
}

// ID returns the owning worker/rank id (-1 on nil).
func (r *Ring) ID() int {
	if r == nil {
		return -1
	}
	return r.id
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Total reports how many events were ever appended.
func (r *Ring) Total() int {
	if r == nil {
		return 0
	}
	return int(r.n)
}

// Dropped reports how many events were overwritten by wraparound.
func (r *Ring) Dropped() int {
	if r == nil {
		return 0
	}
	if d := int(r.n) - len(r.buf); d > 0 {
		return d
	}
	return 0
}

// Events returns the retained events oldest-first. The returned slice
// aliases the ring; callers must not append to the ring afterwards.
func (r *Ring) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	if r.n <= uint64(len(r.buf)) {
		return r.buf[:r.n]
	}
	// Wrapped: oldest retained event sits at the write cursor.
	cut := int(r.n % uint64(len(r.buf)))
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[cut:]...)
	return append(out, r.buf[:cut]...)
}

// Recorder owns one ring per worker/rank, sharing a monotonic epoch.
type Recorder struct {
	rings []*Ring
	base  time.Time
}

// DefaultCapacity is the per-worker ring size commands use unless told
// otherwise: 2^16 events = 2 MiB per worker.
const DefaultCapacity = 1 << 16

// NewRecorder allocates rings for `workers` workers, each holding
// `capacity` events (DefaultCapacity if capacity <= 0).
func NewRecorder(workers, capacity int) *Recorder {
	if workers <= 0 {
		panic("trace: workers must be positive")
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	rec := &Recorder{base: time.Now(), rings: make([]*Ring, workers)}
	for i := range rec.rings {
		rec.rings[i] = &Ring{buf: make([]Event, capacity), base: rec.base, id: i}
	}
	return rec
}

// Worker returns the ring owned by worker id; nil-safe, and nil when
// id is out of range (a solver may be asked for more workers than the
// recorder was sized for — those workers simply go unrecorded).
func (rec *Recorder) Worker(id int) *Ring {
	if rec == nil || id < 0 || id >= len(rec.rings) {
		return nil
	}
	return rec.rings[id]
}

// Workers reports the number of rings (0 on nil).
func (rec *Recorder) Workers() int {
	if rec == nil {
		return 0
	}
	return len(rec.rings)
}

// TotalEvents sums retained events across rings.
func (rec *Recorder) TotalEvents() int {
	if rec == nil {
		return 0
	}
	n := 0
	for _, r := range rec.rings {
		n += r.Len()
	}
	return n
}

// TotalDropped sums wraparound losses across rings.
func (rec *Recorder) TotalDropped() int {
	if rec == nil {
		return 0
	}
	n := 0
	for _, r := range rec.rings {
		n += r.Dropped()
	}
	return n
}
