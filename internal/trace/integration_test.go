package trace_test

// End-to-end tests of the tracing loop the ISSUE closes: record a live
// run into ring buffers, export Chrome trace-event JSON, and replay
// the shared-memory trace through the propagation-matrix model,
// checking Theorem 1's norm bounds on the recorded masks.

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"testing"

	"repro/internal/dist"
	"repro/internal/matgen"
	"repro/internal/shm"
	"repro/internal/trace"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// chromeDoc mirrors the trace-event JSON container.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TID  int            `json:"tid"`
		TS   float64        `json:"ts"`
		ID   int64          `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestShmRecordedRunReplaysThroughModel(t *testing.T) {
	a := matgen.FD2D(5, 8) // W.D.D. unit-diagonal Laplacian
	rng := rand.New(rand.NewPCG(7, 7))
	b := randVec(rng, a.N)
	x0 := randVec(rng, a.N)
	rec := trace.NewRecorder(4, 1<<14)
	res := shm.Solve(a, b, x0, shm.Options{
		Threads:     4,
		MaxIters:    6,
		Async:       true,
		YieldProb:   0.05,
		RecordTrace: true,
		Tracer:      rec,
	})
	if rec.TotalDropped() != 0 {
		t.Fatalf("ring wrapped on a run sized to fit: dropped %d", rec.TotalDropped())
	}
	mt, err := trace.ToModelTraceMatrix(rec, a)
	if err != nil {
		t.Fatal(err)
	}
	// The bridged trace must agree with the solver's own unbounded
	// recording: same relaxations, identical read versions (both
	// sample the same atomic in the same loop).
	if len(mt.Events) != len(res.Trace.Events) {
		t.Fatalf("bridge reconstructed %d events, solver recorded %d",
			len(mt.Events), len(res.Trace.Events))
	}
	type key struct{ row, count int }
	recorded := map[key][]int{}
	for _, e := range res.Trace.Events {
		vs := make([]int, len(e.Reads))
		for i, r := range e.Reads {
			vs[i] = r.Version*1000 + r.Row
		}
		recorded[key{e.Row, e.Count}] = vs
	}
	for _, e := range mt.Events {
		want, ok := recorded[key{e.Row, e.Count}]
		if !ok {
			t.Fatalf("bridged event (%d,%d) not in solver trace", e.Row, e.Count)
		}
		if len(want) != len(e.Reads) {
			t.Fatalf("event (%d,%d): %d reads vs %d", e.Row, e.Count, len(e.Reads), len(want))
		}
		for i, r := range e.Reads {
			if want[i] != r.Version*1000+r.Row {
				t.Fatalf("event (%d,%d) read %d mismatch", e.Row, e.Count, i)
			}
		}
	}
	// Replay through the propagation analysis and verify Theorem 1 on
	// every recorded mask.
	rep, err := trace.VerifyNorms(a, mt, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Analysis.Fraction <= 0 {
		t.Fatal("no propagated relaxations in a live trace")
	}
	if rep.Violations != 0 {
		t.Fatalf("%d of %d masks violate the norm bound (G=%.6g, H=%.6g)",
			rep.Violations, rep.MasksChecked, rep.MaxGNormInf, rep.MaxHNorm1)
	}
}

// TestShmSampledRunVerifies records a live asynchronous run under 1/N
// sampling: the retained sub-schedule must bridge cleanly and satisfy
// Theorem 1's norm bounds with zero violations.
func TestShmSampledRunVerifies(t *testing.T) {
	a := matgen.FD2D(5, 8)
	rng := rand.New(rand.NewPCG(7, 7))
	b := randVec(rng, a.N)
	x0 := randVec(rng, a.N)
	rec := trace.NewRecorder(4, 1<<14,
		trace.WithSampling(&trace.SamplePolicy{Mode: trace.SampleEvery, N: 3}))
	shm.Solve(a, b, x0, shm.Options{
		Threads:   4,
		MaxIters:  9,
		Async:     true,
		YieldProb: 0.05,
		Tracer:    rec,
	})
	if rec.Totals().SampledOut == 0 {
		t.Fatal("sampling policy admitted everything")
	}
	mt, err := trace.ToModelTraceMatrix(rec, a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trace.VerifyNorms(a, mt, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MasksChecked == 0 || rep.Violations != 0 {
		t.Fatalf("sampled masks=%d violations=%d (G=%.6g H=%.6g)",
			rep.MasksChecked, rep.Violations, rep.MaxGNormInf, rep.MaxHNorm1)
	}
}

func TestShmChromeExportParses(t *testing.T) {
	a := matgen.FD2D(4, 4)
	rng := rand.New(rand.NewPCG(3, 3))
	b := randVec(rng, a.N)
	rec := trace.NewRecorder(2, 1<<12)
	shm.Solve(a, b, make([]float64, a.N), shm.Options{
		Threads: 2, MaxIters: 3, Async: true, Tracer: rec,
	})
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, rec, "shm"); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var relax, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			relax++
		case "M":
			meta++
		}
	}
	if meta < 3 { // process_name + 2 thread_names
		t.Fatalf("missing metadata events (got %d)", meta)
	}
	if relax == 0 {
		t.Fatal("no complete relax slices in export")
	}
}

func TestDistChromeExportHasFlows(t *testing.T) {
	a := matgen.FD2D(6, 6)
	rng := rand.New(rand.NewPCG(11, 11))
	b := randVec(rng, a.N)
	x0 := randVec(rng, a.N)
	rec := trace.NewRecorder(4, 1<<12)
	dist.Solve(a, b, x0, dist.SolveOptions{
		Procs:     4,
		MaxIters:  50,
		Tol:       1e-3,
		Async:     true,
		DelayRank: -1,
		Tracer:    rec,
	})
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, rec, "dist"); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// The export is grouped per ring, not globally time-ordered, so
	// collect flow starts in a first pass before matching finishes.
	starts := map[int64]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "s" {
			starts[e.ID] = true
		}
	}
	var finishes, puts, recvs int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "f":
			finishes++
			if !starts[e.ID] {
				t.Fatalf("flow finish id %d has no start", e.ID)
			}
		case "X":
			switch e.Name {
			case "put":
				puts++
			case "recv":
				recvs++
			}
		}
	}
	if puts == 0 || recvs == 0 {
		t.Fatalf("expected put and recv slices, got %d/%d", puts, recvs)
	}
	if len(starts) == 0 || finishes == 0 {
		t.Fatalf("expected send→receive flow events, got %d starts, %d finishes", len(starts), finishes)
	}
}

func TestDistTraceWithSafraTermination(t *testing.T) {
	a := matgen.FD2D(5, 5)
	rng := rand.New(rand.NewPCG(5, 5))
	b := randVec(rng, a.N)
	rec := trace.NewRecorder(3, 1<<12)
	dist.Solve(a, b, make([]float64, a.N), dist.SolveOptions{
		Procs:       3,
		MaxIters:    2000,
		Tol:         1e-3,
		Async:       true,
		Termination: dist.DijkstraSafra,
		DelayRank:   -1,
		Tracer:      rec,
	})
	kinds := map[trace.Kind]int{}
	for id := 0; id < rec.Workers(); id++ {
		for _, e := range rec.Worker(id).Events() {
			kinds[e.Kind]++
		}
	}
	if kinds[trace.KindTokenPass] == 0 {
		t.Fatal("Safra run recorded no token passes")
	}
	if kinds[trace.KindHalt] == 0 || kinds[trace.KindDecided] == 0 {
		t.Fatalf("Safra run recorded no halt/decided events: %v", kinds)
	}
	if kinds[trace.KindPut] == 0 || kinds[trace.KindRecv] == 0 {
		t.Fatalf("async run recorded no communication events: %v", kinds)
	}
}
