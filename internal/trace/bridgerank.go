package trace

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/sparse"
)

// Rank-level bridge: the distributed solver's rings carry per-iteration
// brackets (Row = -1) and neighbor-granular ghost observations (KindRecv
// iteration stamps) rather than the per-row relaxations the shm tracer
// records. That is still a faithful — if coarser — sample of the §IV
// schedule: rank r's k-th local iteration relaxes every row it owns
// exactly once, reading its own rows at version k-1 (block Jacobi) and
// each ghost row at the version of the owner's latest stamp observed so
// far. ToModelTraceRanks expands that into a model.Trace so Theorem 1's
// norm checks run on merged multi-process traces too.
//
// One wrinkle the per-row bridge does not have: the network solver's
// termination runs in PASSES (see dist.SolveRank), and both the
// iteration brackets and the wire stamps restart at 1 inside each pass.
// The bridge rebuilds a globally-numbered schedule from the pass
// structure: a reset in a rank's bracket stream marks a pass boundary,
// each pass's counts shift by the rank's cumulative prior iterations,
// and — because every pass restarts from the decide broadcast's
// assembled iterate — a pass boundary also advances every ghost row to
// its owner's pass-start version. Wire stamps observed mid-pass rebase
// by the sender's matching pass offset, clamped to what the sender had
// actually completed by the (merged, skew-corrected) receive time, so
// a straggler stamp from the previous pass can only round down — the
// reconstruction never claims a read of the future.

// rankTimeline is one rank's multi-pass iteration history, extracted
// from its bracket stream in ring order.
type rankTimeline struct {
	offsets []int64 // cumulative global count at the start of each pass
	ts      []int64 // RelaxEnd timestamps, ascending (ring order)
	counts  []int64 // global count completed at ts[i]
}

func buildTimeline(evs []Event) *rankTimeline {
	tl := &rankTimeline{offsets: []int64{0}}
	var lastLocal, offset int64
	for i := range evs {
		e := &evs[i]
		if e.Kind != KindRelaxEnd || e.Row >= 0 || e.Iter <= 0 {
			continue
		}
		k := int64(e.Iter)
		if k <= lastLocal { // stamp went backwards: a new pass began
			offset += lastLocal
			tl.offsets = append(tl.offsets, offset)
		}
		lastLocal = k
		tl.ts = append(tl.ts, e.TS)
		tl.counts = append(tl.counts, offset+k)
	}
	return tl
}

// completedAt returns the rank's cumulative iteration count at merged
// time ts: the count of its latest bracket at or before ts.
func (tl *rankTimeline) completedAt(ts int64) int64 {
	i := sort.Search(len(tl.ts), func(i int) bool { return tl.ts[i] > ts }) - 1
	if i < 0 {
		return 0
	}
	return tl.counts[i]
}

// last returns the rank's final cumulative iteration count.
func (tl *rankTimeline) last() int64 {
	if len(tl.counts) == 0 {
		return 0
	}
	return tl.counts[len(tl.counts)-1]
}

// offsetOf returns the cumulative count at the start of the given pass,
// saturating at the final pass for ranks that ran fewer.
func (tl *rankTimeline) offsetOf(pass int) int64 {
	if pass >= len(tl.offsets) {
		pass = len(tl.offsets) - 1
	}
	return tl.offsets[pass]
}

// ToModelTraceRanks reconstructs a model.Trace from a rank-level trace
// (one ring per rank, as the dist solver and MergeProcesses produce)
// for the system a, with owner[i] naming the rank that owns row i.
// Pass-local iteration stamps rebase onto each rank's cumulative count
// (see above); ghost read versions clamp into [0, owner's completed
// count] so wraparound-truncated neighbor histories round down,
// mirroring the sampled-trace bias rule of the per-row bridge.
func ToModelTraceRanks(rec *Recorder, a *sparse.CSR, owner []int) (*model.Trace, error) {
	if rec == nil {
		return nil, fmt.Errorf("trace: nil recorder")
	}
	if a == nil {
		return nil, fmt.Errorf("trace: nil matrix")
	}
	n := a.N
	if len(owner) != n {
		return nil, fmt.Errorf("trace: owner map has %d rows, matrix has %d", len(owner), n)
	}
	nr := rec.Workers()
	rows := make([][]int, nr)
	for i, r := range owner {
		if r < 0 || r >= nr {
			return nil, fmt.Errorf("trace: row %d owned by rank %d outside [0,%d)", i, r, nr)
		}
		rows[r] = append(rows[r], i)
	}
	// First pass: every rank's pass structure and completion timeline —
	// the rebase offsets and clamp bounds for stamps referencing it.
	timelines := make([]*rankTimeline, nr)
	for r := 0; r < nr; r++ {
		timelines[r] = buildTimeline(rec.Worker(r).Events())
	}
	var relaxes []relaxation
	for r := 0; r < nr; r++ {
		// last[q] is the freshest cumulative iteration of rank q this
		// rank had observed at the current point of its event stream.
		last := make([]int64, nr)
		pass := 0
		var lastLocal int64
		for _, e := range rec.Worker(r).Events() {
			switch {
			case e.Kind == KindRecv && e.Peer >= 0 && int(e.Peer) < nr:
				q := int(e.Peer)
				v := timelines[q].offsetOf(pass) + e.Payload
				if c := timelines[q].completedAt(e.TS); v > c {
					v = c // stamp from an earlier pass: round down
				}
				if v > last[q] {
					last[q] = v
				}
			case e.Kind == KindRelaxEnd && e.Row < 0 && e.Iter > 0:
				k := int64(e.Iter)
				if k <= lastLocal {
					pass++
					// Every pass restarts from the decide broadcast's
					// assembled iterate: each ghost block advances to its
					// owner's pass-start version even if no wire stamp
					// from it was observed.
					for q := range last {
						if v := timelines[q].offsetOf(pass); v > last[q] {
							last[q] = v
						}
					}
				}
				lastLocal = k
				kg := timelines[r].offsetOf(pass) + k
				for _, i := range rows[r] {
					rx := relaxation{row: i, count: int(kg), ts: e.TS}
					for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
						j := a.Col[kk]
						if j == i {
							continue
						}
						var v int64
						if q := owner[j]; q == r {
							v = kg - 1
						} else {
							v = last[q]
							if mx := timelines[q].last(); v > mx {
								v = mx
							}
						}
						rx.reads = append(rx.reads, model.Read{Row: j, Version: int(v)})
					}
					relaxes = append(relaxes, rx)
				}
			}
		}
	}
	if len(relaxes) == 0 {
		return nil, fmt.Errorf("trace: no rank-level iteration brackets recorded")
	}
	if err := rebaseContiguous(relaxes, n); err != nil {
		return nil, err
	}
	sort.Slice(relaxes, func(a, b int) bool {
		if relaxes[a].ts != relaxes[b].ts {
			return relaxes[a].ts < relaxes[b].ts
		}
		if relaxes[a].row != relaxes[b].row {
			return relaxes[a].row < relaxes[b].row
		}
		return relaxes[a].count < relaxes[b].count
	})
	tr := &model.Trace{N: n}
	for seq, rx := range relaxes {
		tr.Events = append(tr.Events, model.Event{
			Row:         rx.row,
			Count:       rx.count,
			Seq:         seq,
			TimestampNs: rx.ts,
			Reads:       rx.reads,
		})
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: reconstructed rank-level trace invalid: %w", err)
	}
	return tr, nil
}
