package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the recorded rings serialize to the JSON
// object format understood by chrome://tracing and Perfetto
// (https://ui.perfetto.dev). One track (tid) per worker/rank;
// relaxations render as complete slices, everything else as instant
// events, and message traffic as flow arrows connecting each send/put
// to the receive that observed its iteration stamp.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// us converts a recorder-relative nanosecond stamp to the microsecond
// float the trace-event format uses.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// flowID identifies the send(src, iter) -> recv(dst) flow. Both sides
// can compute it: the sender knows (itself, peer, iter); the receiver
// knows (peer, itself, stamp). Bounded by P^2 * 2^32 < 2^53 for any
// realistic worker count, so the value survives JSON number parsing.
func flowID(src, dst, p int, iter int64) int64 {
	return (int64(src)*int64(p)+int64(dst))<<32 | (iter & 0xffffffff)
}

// WriteChrome serializes the recorder's rings as Chrome trace-event
// JSON. proc names the process track ("shm" / "dist").
func WriteChrome(w io.Writer, rec *Recorder, proc string) error {
	if rec == nil {
		return fmt.Errorf("trace: nil recorder")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		first = false
		_, err = bw.Write(data)
		return err
	}

	if err := emit(chromeEvent{Name: "process_name", Ph: "M",
		Args: map[string]any{"name": proc}}); err != nil {
		return err
	}
	p := rec.Workers()
	for id := 0; id < p; id++ {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", TID: id,
			Args: map[string]any{"name": fmt.Sprintf("%s %d", proc, id)}}); err != nil {
			return err
		}
	}

	type open struct {
		ts    int64
		count int32
		reads int
	}
	for id := 0; id < p; id++ {
		ring := rec.Worker(id)
		pending := map[int32]open{}
		for _, e := range ring.Events() {
			switch e.Kind {
			case KindRelaxStart:
				pending[e.Row] = open{ts: e.TS, count: e.Iter}
			case KindRead:
				// Folded into the enclosing relax slice as a read count;
				// the per-read versions feed the model bridge, where they
				// matter, rather than the timeline, where they'd flood it.
				if o, ok := pending[e.Row]; ok {
					o.reads++
					pending[e.Row] = o
				}
			case KindReadBlock:
				// A coalesced block counts as Peer&63 component reads; a
				// complete block is a whole relaxation, rendered as a
				// zero-duration slice (the coarse clock stamps the entire
				// relaxation with its start time).
				if e.Peer&(1<<6) != 0 {
					if err := emit(chromeEvent{
						Name: fmt.Sprintf("relax r%d", e.Row), Cat: "relax", Ph: "X",
						TS: us(e.TS), Dur: 0, TID: id,
						Args: map[string]any{"row": e.Row, "count": e.Iter, "reads": e.Peer & 63},
					}); err != nil {
						return err
					}
					continue
				}
				if o, ok := pending[e.Row]; ok {
					o.reads += int(e.Peer & 63)
					pending[e.Row] = o
				}
			case KindRelaxEnd:
				o, ok := pending[e.Row]
				if !ok || o.count != e.Iter {
					// Orphaned end (its start was overwritten by ring
					// wraparound): render as an instant.
					if err := emit(chromeEvent{Name: "relax", Cat: "relax", Ph: "i",
						TS: us(e.TS), TID: id, S: "t",
						Args: map[string]any{"row": e.Row, "count": e.Iter}}); err != nil {
						return err
					}
					continue
				}
				delete(pending, e.Row)
				name := fmt.Sprintf("relax r%d", e.Row)
				if e.Row < 0 {
					// Rank-level slice: the whole local iteration.
					name = fmt.Sprintf("iter %d", e.Iter)
				}
				if err := emit(chromeEvent{
					Name: name, Cat: "relax", Ph: "X",
					TS: us(o.ts), Dur: us(e.TS - o.ts), TID: id,
					Args: map[string]any{"row": e.Row, "count": e.Iter, "reads": o.reads},
				}); err != nil {
					return err
				}
			case KindSend, KindPut:
				name := "send"
				if e.Kind == KindPut {
					name = "put"
				}
				if err := emit(chromeEvent{Name: name, Cat: "comm", Ph: "X",
					TS: us(e.TS), Dur: 1, TID: id,
					Args: map[string]any{"to": e.Peer, "iter": e.Iter}}); err != nil {
					return err
				}
				if e.Payload > 0 {
					if err := emit(chromeEvent{Name: "ghost", Cat: "comm", Ph: "s",
						TS: us(e.TS), TID: id,
						ID: flowID(id, int(e.Peer), p, e.Payload)}); err != nil {
						return err
					}
				}
			case KindRecv:
				if err := emit(chromeEvent{Name: "recv", Cat: "comm", Ph: "X",
					TS: us(e.TS), Dur: 1, TID: id,
					Args: map[string]any{"from": e.Peer, "stamp": e.Payload}}); err != nil {
					return err
				}
				if e.Payload > 0 {
					if err := emit(chromeEvent{Name: "ghost", Cat: "comm", Ph: "f", BP: "e",
						TS: us(e.TS), TID: id,
						ID: flowID(int(e.Peer), id, p, e.Payload)}); err != nil {
						return err
					}
				}
			case KindCheckpoint, KindReassign:
				// Recovery events: same filtering story as faults, their
				// own category. A reassignment names the dead worker whose
				// rows the recording track adopted.
				args := map[string]any{"iter": e.Iter}
				if e.Kind == KindReassign && e.Peer >= 0 {
					args["from"] = e.Peer
				}
				if err := emit(chromeEvent{Name: e.Kind.String(), Cat: "recovery", Ph: "i",
					TS: us(e.TS), TID: id, S: "t", Args: args}); err != nil {
					return err
				}
			case KindFaultDrop, KindFaultDup, KindFaultReorder, KindStall,
				KindCrash, KindRestart, KindTermTimeout:
				// Fault events get their own category so a timeline can
				// filter to injected adversity; a crash is scoped to the
				// whole track (it ends the rank's activity until any
				// restart instant).
				scope := "t"
				if e.Kind == KindCrash || e.Kind == KindRestart {
					scope = "p"
				}
				args := map[string]any{}
				if e.Iter != 0 {
					args["iter"] = e.Iter
				}
				if e.Peer >= 0 {
					args["to"] = e.Peer
				}
				if err := emit(chromeEvent{Name: e.Kind.String(), Cat: "fault", Ph: "i",
					TS: us(e.TS), TID: id, S: scope, Args: args}); err != nil {
					return err
				}
			default:
				args := map[string]any{}
				if e.Row >= 0 {
					args["row"] = e.Row
				}
				if e.Iter != 0 {
					args["iter"] = e.Iter
				}
				if e.Peer >= 0 {
					args["peer"] = e.Peer
				}
				if err := emit(chromeEvent{Name: e.Kind.String(), Cat: "state", Ph: "i",
					TS: us(e.TS), TID: id, S: "t", Args: args}); err != nil {
					return err
				}
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
