package trace

import (
	"testing"

	"repro/internal/model"
)

// Merging a resumed run's bridged trace onto the first run's must shift
// counts and read versions into one contiguous history, pin reads of
// frozen rows to their checkpointed version, and keep first-then-second
// time order.
func TestMergeModelTraces(t *testing.T) {
	// First run: row 0 relaxed twice, row 1 once, row 2 never (its
	// worker was slow) — final counts {2, 1, 0}.
	first := &model.Trace{N: 3, Events: []model.Event{
		{Row: 0, Count: 1, Seq: 0, TimestampNs: 10},
		{Row: 1, Count: 1, Seq: 1, TimestampNs: 20,
			Reads: []model.Read{{Row: 0, Version: 1}}},
		{Row: 0, Count: 2, Seq: 2, TimestampNs: 30,
			Reads: []model.Read{{Row: 1, Version: 1}}},
	}}
	// Resumed run (bridged, so counts rebased to 1): rows 0 and 1
	// relax once each; row 1's relaxation reads row 0 (relaxed in this
	// run: shift) and row 2 (frozen: pin to the checkpointed count 0).
	second := &model.Trace{N: 3, Events: []model.Event{
		{Row: 0, Count: 1, Seq: 0, TimestampNs: 5},
		{Row: 1, Count: 1, Seq: 1, TimestampNs: 15,
			Reads: []model.Read{{Row: 0, Version: 1}, {Row: 2, Version: 0}}},
	}}
	merged, err := MergeModelTraces(first, second)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(merged.Events) != 5 {
		t.Fatalf("merged %d events, want 5", len(merged.Events))
	}
	// Events sorted by (offset) timestamps; second run's land after the
	// first run's last stamp (30).
	for i, e := range merged.Events {
		if e.Seq != i {
			t.Fatalf("Seq not renumbered: event %d has Seq %d", i, e.Seq)
		}
		if i > 0 && e.TimestampNs < merged.Events[i-1].TimestampNs {
			t.Fatal("merged events out of time order")
		}
	}
	e3, e4 := merged.Events[3], merged.Events[4]
	if e3.Row != 0 || e3.Count != 3 {
		t.Fatalf("resumed row 0 count = %d, want 3 (shifted by 2)", e3.Count)
	}
	if e4.Row != 1 || e4.Count != 2 {
		t.Fatalf("resumed row 1 count = %d, want 2 (shifted by 1)", e4.Count)
	}
	for _, rd := range e4.Reads {
		switch rd.Row {
		case 0:
			if rd.Version != 3 {
				t.Fatalf("read of relaxed row 0 version %d, want 3 (shifted)", rd.Version)
			}
		case 2:
			if rd.Version != 0 {
				t.Fatalf("read of frozen row 2 version %d, want 0 (pinned)", rd.Version)
			}
		}
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
}

func TestMergeModelTracesErrors(t *testing.T) {
	ok := &model.Trace{N: 2}
	if _, err := MergeModelTraces(nil, ok); err == nil {
		t.Fatal("nil first accepted")
	}
	if _, err := MergeModelTraces(ok, nil); err == nil {
		t.Fatal("nil second accepted")
	}
	if _, err := MergeModelTraces(ok, &model.Trace{N: 3}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
