package trace

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// MergeModelTraces stitches the bridged trace of a resumed run onto the
// bridged trace of the run it continued, producing one model.Trace over
// the combined relaxation history — the object the end-to-end recovery
// check (cancel → checkpoint → resume → VerifyNorms) needs.
//
// `first` is ToModelTrace of the interrupted run; `second` is
// ToModelTrace of the run resumed from its checkpoint. ToModelTrace
// rebases each row's counts to start at 1, so `second` arrives in
// run-local coordinates; the merge shifts its counts and read versions
// by the first run's final per-row counts, which — because shm resume
// seeds the version array from the checkpoint's RelaxCounts — is
// exactly the coordinate change that makes the histories line up. A
// read in `second` of a row the resumed run never relaxed observed the
// checkpointed value, i.e. the first run's final version of that row,
// so it pins to that count rather than shifting.
//
// The merged events keep first-then-second order: `second`'s
// timestamps are offset past `first`'s last event, and Seq is
// renumbered over the concatenation.
func MergeModelTraces(first, second *model.Trace) (*model.Trace, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("trace: merge requires two traces")
	}
	if first.N != second.N {
		return nil, fmt.Errorf("trace: merge dimension mismatch: %d vs %d", first.N, second.N)
	}
	n := first.N
	final := make([]int, n) // first run's final count per row
	var lastTS int64
	for _, e := range first.Events {
		if e.Count > final[e.Row] {
			final[e.Row] = e.Count
		}
		if e.TimestampNs > lastTS {
			lastTS = e.TimestampNs
		}
	}
	relaxedInSecond := make([]bool, n)
	var firstTS int64
	for i, e := range second.Events {
		relaxedInSecond[e.Row] = true
		if i == 0 || e.TimestampNs < firstTS {
			firstTS = e.TimestampNs
		}
	}
	offset := lastTS - firstTS + 1

	merged := &model.Trace{N: n}
	merged.Events = append(merged.Events, first.Events...)
	for _, e := range second.Events {
		ev := model.Event{
			Row:         e.Row,
			Count:       e.Count + final[e.Row],
			TimestampNs: e.TimestampNs + offset,
		}
		for _, rd := range e.Reads {
			v := rd.Version
			if relaxedInSecond[rd.Row] {
				v += final[rd.Row]
			} else {
				// Frozen row: its value throughout the resumed run is the
				// checkpointed one.
				v = final[rd.Row]
			}
			ev.Reads = append(ev.Reads, model.Read{Row: rd.Row, Version: v})
		}
		merged.Events = append(merged.Events, ev)
	}
	sort.SliceStable(merged.Events, func(a, b int) bool {
		return merged.Events[a].TimestampNs < merged.Events[b].TimestampNs
	})
	for i := range merged.Events {
		merged.Events[i].Seq = i
	}
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("trace: merged trace invalid: %w", err)
	}
	return merged, nil
}
