package trace

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/sparse"
)

// Bridge from a timestamped live trace to the propagation-matrix model
// of Section IV: ToModelTrace reconstructs the (row, count, reads)
// relaxation history that model.Analyze schedules into propagation
// steps, and VerifyNorms closes the loop with Theorem 1 by checking
// ||Ĝ(k)||_inf and ||Ĥ(k)||_1 on every recorded mask.

// relaxation is one reconstructed row relaxation.
type relaxation struct {
	row, count int
	ts         int64
	reads      []model.Read
}

// ToModelTrace reconstructs a model.Trace from the recorder's rings
// for an n-row system. Relaxations are rebuilt from
// RelaxStart/Read/RelaxEnd groups; groups truncated by ring wraparound
// are discarded, and when wraparound removed the early history of a
// row the surviving counts are rebased to 1 (read versions of that row
// rebase with it; reads of pre-window versions clamp to the initial
// value 0). Event Seq order and TimestampNs both come from the
// relaxation-start timestamps, so the model sees the schedule the
// hardware actually executed.
func ToModelTrace(rec *Recorder, n int) (*model.Trace, error) {
	if rec == nil {
		return nil, fmt.Errorf("trace: nil recorder")
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: system dimension must be positive")
	}
	var relaxes []relaxation
	for id := 0; id < rec.Workers(); id++ {
		pending := map[int32]*relaxation{}
		for _, e := range rec.Worker(id).Events() {
			if e.Row < 0 {
				continue
			}
			if int(e.Row) >= n {
				return nil, fmt.Errorf("trace: row %d out of range for n=%d", e.Row, n)
			}
			switch e.Kind {
			case KindRelaxStart:
				pending[e.Row] = &relaxation{row: int(e.Row), count: int(e.Iter), ts: e.TS}
			case KindRead:
				if p, ok := pending[e.Row]; ok && p.count == int(e.Iter) {
					p.reads = append(p.reads, model.Read{Row: int(e.Peer), Version: int(e.Payload)})
				}
			case KindRelaxEnd:
				if p, ok := pending[e.Row]; ok && p.count == int(e.Iter) {
					relaxes = append(relaxes, *p)
					delete(pending, e.Row)
				}
			}
		}
	}
	if len(relaxes) == 0 {
		return nil, fmt.Errorf("trace: no complete relaxation events recorded")
	}
	// Per-row base: wraparound drops the oldest prefix of each worker's
	// stream, so the surviving counts of a row form a contiguous suffix
	// [min..max]; rebase it to [1..max-min+1]. Non-contiguous counts
	// mean the ring was corrupted (or two workers relaxed one row).
	minCount := make([]int, n)
	maxCount := make([]int, n)
	seen := make([]int, n)
	for _, rx := range relaxes {
		if seen[rx.row] == 0 || rx.count < minCount[rx.row] {
			minCount[rx.row] = rx.count
		}
		if seen[rx.row] == 0 || rx.count > maxCount[rx.row] {
			maxCount[rx.row] = rx.count
		}
		seen[rx.row]++
	}
	base := make([]int, n)
	for i := 0; i < n; i++ {
		if seen[i] == 0 {
			continue
		}
		if maxCount[i]-minCount[i]+1 != seen[i] {
			return nil, fmt.Errorf("trace: row %d relaxation counts not contiguous (%d events spanning [%d,%d])",
				i, seen[i], minCount[i], maxCount[i])
		}
		base[i] = minCount[i] - 1
	}
	sort.Slice(relaxes, func(a, b int) bool {
		if relaxes[a].ts != relaxes[b].ts {
			return relaxes[a].ts < relaxes[b].ts
		}
		if relaxes[a].row != relaxes[b].row {
			return relaxes[a].row < relaxes[b].row
		}
		return relaxes[a].count < relaxes[b].count
	})
	tr := &model.Trace{N: n}
	for seq, rx := range relaxes {
		ev := model.Event{
			Row:         rx.row,
			Count:       rx.count - base[rx.row],
			Seq:         seq,
			TimestampNs: rx.ts,
		}
		for _, rd := range rx.reads {
			v := rd.Version - base[rd.Row]
			if v < 0 {
				v = 0
			}
			ev.Reads = append(ev.Reads, model.Read{Row: rd.Row, Version: v})
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: reconstructed trace invalid: %w", err)
	}
	return tr, nil
}

// VerifyReport is the outcome of replaying a trace through the
// propagation model and checking Theorem 1's norm bounds on the
// recorded masks.
type VerifyReport struct {
	Analysis *model.PropagationAnalysis
	// MasksChecked counts the step masks whose Ĝ/Ĥ norms were formed
	// (≤ MaxMasks when capped).
	MasksChecked int
	// MaxGNormInf and MaxHNorm1 are the largest norms observed across
	// the checked masks. Theorem 1: both equal 1 on a W.D.D.
	// unit-diagonal matrix whenever a mask delays at least one row, and
	// stay ≤ 1 for full masks.
	MaxGNormInf float64
	MaxHNorm1   float64
	// Violations counts masks whose norm exceeded 1 + tol.
	Violations int
}

// VerifyNorms runs the propagation analysis on tr and checks
// ||Ĝ(k)||_inf ≤ 1+tol and ||Ĥ(k)||_1 ≤ 1+tol for each recorded step
// mask (dense n² work per mask; maxMasks > 0 caps how many are
// formed, 0 checks all).
func VerifyNorms(a *sparse.CSR, tr *model.Trace, tol float64, maxMasks int) (*VerifyReport, error) {
	if a.N != tr.N {
		return nil, fmt.Errorf("trace: matrix dimension %d != trace dimension %d", a.N, tr.N)
	}
	an, err := tr.Analyze()
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{Analysis: an}
	for _, mask := range an.Steps {
		if maxMasks > 0 && rep.MasksChecked >= maxMasks {
			break
		}
		g := model.GHat(a, mask).NormInf()
		h := model.HHat(a, mask).Norm1()
		if g > rep.MaxGNormInf {
			rep.MaxGNormInf = g
		}
		if h > rep.MaxHNorm1 {
			rep.MaxHNorm1 = h
		}
		if g > 1+tol || h > 1+tol {
			rep.Violations++
		}
		rep.MasksChecked++
	}
	return rep, nil
}
