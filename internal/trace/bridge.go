package trace

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/sparse"
)

// Bridge from a timestamped live trace to the propagation-matrix model
// of Section IV: ToModelTrace reconstructs the (row, count, reads)
// relaxation history that model.Analyze schedules into propagation
// steps, and VerifyNorms closes the loop with Theorem 1 by checking
// ||Ĝ(k)||_inf and ||Ĥ(k)||_1 on every recorded mask.

// relaxation is one reconstructed row relaxation.
type relaxation struct {
	row, count int
	ts         int64
	reads      []model.Read
}

// ToModelTrace reconstructs a model.Trace from the recorder's rings
// for an n-row system. Relaxations are rebuilt from
// RelaxStart/Read/RelaxEnd groups; groups truncated by ring wraparound
// are discarded, and when wraparound removed the early history of a
// row the surviving counts are rebased to 1 (read versions of that row
// rebase with it; reads of pre-window versions clamp to the initial
// value 0). Event Seq order and TimestampNs both come from the
// relaxation-start timestamps, so the model sees the schedule the
// hardware actually executed.
//
// Traces carrying coalesced KindReadBlock events need the matrix to
// recover which columns each block read — use ToModelTraceMatrix for
// those; this variant reports an error when it meets a block.
func ToModelTrace(rec *Recorder, n int) (*model.Trace, error) {
	return toModel(rec, n, nil)
}

// ToModelTraceMatrix is ToModelTrace for coalesced traces: a
// KindReadBlock starting at off-diagonal index s with length m expands
// to reads of columns s..s+m-1 of the row's CSR off-diagonal column
// list (the order ReadVersion was called in), with per-component
// versions decoded from the block's min-version + delta bitmap. The
// expansion is bit-identical to the uncoalesced recording.
func ToModelTraceMatrix(rec *Recorder, a *sparse.CSR) (*model.Trace, error) {
	if a == nil {
		return nil, fmt.Errorf("trace: nil matrix")
	}
	offdiag := make([][]int32, a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := a.Col[k]; j != i {
				offdiag[i] = append(offdiag[i], int32(j))
			}
		}
	}
	return toModel(rec, a.N, offdiag)
}

func toModel(rec *Recorder, n int, offdiag [][]int32) (*model.Trace, error) {
	if rec == nil {
		return nil, fmt.Errorf("trace: nil recorder")
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: system dimension must be positive")
	}
	var relaxes []relaxation
	for id := 0; id < rec.Workers(); id++ {
		pending := map[int32]*relaxation{}
		for _, e := range rec.Worker(id).Events() {
			if e.Row < 0 {
				continue
			}
			if int(e.Row) >= n {
				return nil, fmt.Errorf("trace: row %d out of range for n=%d", e.Row, n)
			}
			switch e.Kind {
			case KindRelaxStart:
				pending[e.Row] = &relaxation{row: int(e.Row), count: int(e.Iter), ts: e.TS}
			case KindRead:
				if p, ok := pending[e.Row]; ok && p.count == int(e.Iter) {
					p.reads = append(p.reads, model.Read{Row: int(e.Peer), Version: int(e.Payload)})
				}
			case KindReadBlock:
				complete := e.Peer&blockComplete != 0
				var p *relaxation
				if complete {
					// A self-contained complete relaxation in one event.
					p = &relaxation{row: int(e.Row), count: int(e.Iter), ts: e.TS}
				} else {
					q, ok := pending[e.Row]
					if !ok || q.count != int(e.Iter) {
						continue
					}
					p = q
				}
				if offdiag == nil {
					return nil, fmt.Errorf("trace: coalesced read block for row %d: expanding needs the matrix (use ToModelTraceMatrix)", e.Row)
				}
				// Complete blocks start at off-diagonal index 0 and carry
				// their delta width in Peer bits 7-8; chunked blocks carry
				// a start index there and always use 1-bit deltas.
				start, m := 0, int(e.Peer&63)
				w := uint(1)
				if complete {
					w <<= uint(e.Peer>>7) & 3
				} else {
					start = int(e.Peer >> 7)
				}
				cols := offdiag[e.Row]
				if start+m > len(cols) {
					return nil, fmt.Errorf("trace: read block [%d,%d) exceeds row %d's %d off-diagonal entries",
						start, start+m, e.Row, len(cols))
				}
				minv, bitmap := e.Payload>>32, e.Payload&0xffffffff
				mask := int64(1)<<w - 1
				for b := 0; b < m; b++ {
					v := minv + bitmap>>(uint(b)*w)&mask
					p.reads = append(p.reads, model.Read{Row: int(cols[start+b]), Version: int(v)})
				}
				if complete {
					relaxes = append(relaxes, *p)
				}
			case KindRelaxEnd:
				if p, ok := pending[e.Row]; ok && p.count == int(e.Iter) {
					relaxes = append(relaxes, *p)
					delete(pending, e.Row)
				}
			}
		}
	}
	if len(relaxes) == 0 {
		return nil, fmt.Errorf("trace: no complete relaxation events recorded")
	}
	if rec.Sampled() {
		remapSampled(relaxes, n)
	} else if err := rebaseContiguous(relaxes, n); err != nil {
		return nil, err
	}
	sort.Slice(relaxes, func(a, b int) bool {
		if relaxes[a].ts != relaxes[b].ts {
			return relaxes[a].ts < relaxes[b].ts
		}
		if relaxes[a].row != relaxes[b].row {
			return relaxes[a].row < relaxes[b].row
		}
		return relaxes[a].count < relaxes[b].count
	})
	tr := &model.Trace{N: n}
	for seq, rx := range relaxes {
		ev := model.Event{
			Row:         rx.row,
			Count:       rx.count,
			Seq:         seq,
			TimestampNs: rx.ts,
			Reads:       rx.reads,
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: reconstructed trace invalid: %w", err)
	}
	return tr, nil
}

// rebaseContiguous handles the unsampled case in place: wraparound
// drops the oldest prefix of each worker's stream, so the surviving
// counts of a row form a contiguous suffix [min..max]; rebase it to
// [1..max-min+1], rebasing read versions with it (reads of pre-window
// versions clamp to the initial value 0). Non-contiguous counts mean
// the ring was corrupted (or two workers relaxed one row).
func rebaseContiguous(relaxes []relaxation, n int) error {
	minCount := make([]int, n)
	maxCount := make([]int, n)
	seen := make([]int, n)
	for _, rx := range relaxes {
		if seen[rx.row] == 0 || rx.count < minCount[rx.row] {
			minCount[rx.row] = rx.count
		}
		if seen[rx.row] == 0 || rx.count > maxCount[rx.row] {
			maxCount[rx.row] = rx.count
		}
		seen[rx.row]++
	}
	base := make([]int, n)
	for i := 0; i < n; i++ {
		if seen[i] == 0 {
			continue
		}
		if maxCount[i]-minCount[i]+1 != seen[i] {
			return fmt.Errorf("trace: row %d relaxation counts not contiguous (%d events spanning [%d,%d])",
				i, seen[i], minCount[i], maxCount[i])
		}
		base[i] = minCount[i] - 1
	}
	for k := range relaxes {
		rx := &relaxes[k]
		rx.count -= base[rx.row]
		for j, rd := range rx.reads {
			v := rd.Version - base[rd.Row]
			if v < 0 {
				v = 0
			}
			rx.reads[j].Version = v
		}
	}
	return nil
}

// remapSampled handles sampled recorders, whose kept counts per row
// are deliberately non-contiguous (every-N keeps counts 1, 1+N, ...).
// The kept relaxations of each row renumber densely to 1..k in count
// order — the verified object is the sampled sub-schedule — and a read
// of version v of row j maps to how many kept relaxations of j have
// count ≤ v (the latest kept version the read could have observed;
// pre-window and sampled-out versions round down, which is the
// sampling-bias caveat DESIGN.md §8 documents for delay histograms).
func remapSampled(relaxes []relaxation, n int) {
	counts := make([][]int, n)
	for _, rx := range relaxes {
		counts[rx.row] = append(counts[rx.row], rx.count)
	}
	rank := make([]map[int]int, n)
	for i := range counts {
		if counts[i] == nil {
			continue
		}
		sort.Ints(counts[i])
		rank[i] = make(map[int]int, len(counts[i]))
		for k, c := range counts[i] {
			rank[i][c] = k + 1
		}
	}
	for k := range relaxes {
		rx := &relaxes[k]
		rx.count = rank[rx.row][rx.count]
		for j, rd := range rx.reads {
			rx.reads[j].Version = sort.SearchInts(counts[rd.Row], rd.Version+1)
		}
	}
}

// VerifyReport is the outcome of replaying a trace through the
// propagation model and checking Theorem 1's norm bounds on the
// recorded masks.
type VerifyReport struct {
	Analysis *model.PropagationAnalysis
	// MasksChecked counts the step masks whose Ĝ/Ĥ norms were formed
	// (≤ MaxMasks when capped).
	MasksChecked int
	// MaxGNormInf and MaxHNorm1 are the largest norms observed across
	// the checked masks. Theorem 1: both equal 1 on a W.D.D.
	// unit-diagonal matrix whenever a mask delays at least one row, and
	// stay ≤ 1 for full masks.
	MaxGNormInf float64
	MaxHNorm1   float64
	// Violations counts masks whose norm exceeded 1 + tol.
	Violations int
}

// VerifyNorms runs the propagation analysis on tr and checks
// ||Ĝ(k)||_inf ≤ 1+tol and ||Ĥ(k)||_1 ≤ 1+tol for each recorded step
// mask (dense n² work per mask; maxMasks > 0 caps how many are
// formed, 0 checks all).
func VerifyNorms(a *sparse.CSR, tr *model.Trace, tol float64, maxMasks int) (*VerifyReport, error) {
	if a.N != tr.N {
		return nil, fmt.Errorf("trace: matrix dimension %d != trace dimension %d", a.N, tr.N)
	}
	an, err := tr.Analyze()
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{Analysis: an}
	for _, mask := range an.Steps {
		if maxMasks > 0 && rep.MasksChecked >= maxMasks {
			break
		}
		g := model.GHat(a, mask).NormInf()
		h := model.HHat(a, mask).Norm1()
		if g > rep.MaxGNormInf {
			rep.MaxGNormInf = g
		}
		if h > rep.MaxHNorm1 {
			rep.MaxHNorm1 = h
		}
		if g > 1+tol || h > 1+tol {
			rep.Violations++
		}
		rep.MasksChecked++
	}
	return rep, nil
}
