package trace

import (
	"testing"

	"repro/internal/matgen"
)

func TestToModelTraceSimple(t *testing.T) {
	// Exact stamps: the test asserts fine-grained cross-worker
	// interleaving, which the production stride clock deliberately
	// blurs within a stride.
	rec := NewRecorder(2, 64, WithExactStamps())
	w0, w1 := rec.Worker(0), rec.Worker(1)
	// Row 0 relaxes twice, row 1 once, interleaved so the timestamp
	// order is (0,1), (1,1), (0,2).
	w0.RelaxStart(0, 1)
	w0.ReadVersion(0, 1, 1, 0)
	w0.RelaxEnd(0, 1)
	w1.RelaxStart(1, 1)
	w1.ReadVersion(1, 1, 0, 1)
	w1.RelaxEnd(1, 1)
	w0.RelaxStart(0, 2)
	w0.ReadVersion(0, 2, 1, 1)
	w0.RelaxEnd(0, 2)

	tr, err := ToModelTrace(rec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 || tr.N != 2 {
		t.Fatalf("got %d events, n=%d", len(tr.Events), tr.N)
	}
	want := []struct{ row, count, readRow, readVer int }{
		{0, 1, 1, 0}, {1, 1, 0, 1}, {0, 2, 1, 1},
	}
	for i, w := range want {
		e := tr.Events[i]
		if e.Row != w.row || e.Count != w.count || e.Seq != i {
			t.Fatalf("event %d = %+v, want row %d count %d seq %d", i, e, w.row, w.count, i)
		}
		if len(e.Reads) != 1 || e.Reads[0].Row != w.readRow || e.Reads[0].Version != w.readVer {
			t.Fatalf("event %d reads %+v", i, e.Reads)
		}
		if e.TimestampNs == 0 {
			t.Fatalf("event %d has no timestamp", i)
		}
		if i > 0 && e.TimestampNs < tr.Events[i-1].TimestampNs {
			t.Fatalf("timestamps not ordered at %d", i)
		}
	}
}

func TestToModelTraceRebaseAfterWraparound(t *testing.T) {
	// One worker owns both rows; 3 events per relaxation, ring of 12.
	// 10 relaxations each of rows 0 and 1 (60 events) leave the last
	// 12 = relaxations (0,9),(1,9),(0,10),(1,10) retained; the bridge
	// must rebase counts to 1..2 and read versions with them.
	rec := NewRecorder(1, 12, WithExactStamps())
	w := rec.Worker(0)
	for c := 1; c <= 10; c++ {
		w.RelaxStart(0, c)
		w.ReadVersion(0, c, 1, c-1)
		w.RelaxEnd(0, c)
		w.RelaxStart(1, c)
		w.ReadVersion(1, c, 0, c)
		w.RelaxEnd(1, c)
	}
	if w.Dropped() == 0 {
		t.Fatal("test did not wrap the ring")
	}
	tr, err := ToModelTrace(rec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(tr.Events))
	}
	// Rows 0 and 1 both survive with original counts 9, 10 → rebased
	// 1, 2 (base 8). Row 0's count-9 read of (1, 8) rebases to (1, 0).
	if err := tr.Validate(); err != nil {
		t.Fatalf("rebased trace invalid: %v", err)
	}
	e0 := tr.Events[0]
	if e0.Row != 0 || e0.Count != 1 || e0.Reads[0].Row != 1 || e0.Reads[0].Version != 0 {
		t.Fatalf("first rebased event %+v", e0)
	}
	e1 := tr.Events[1]
	if e1.Row != 1 || e1.Count != 1 || e1.Reads[0].Version != 1 {
		t.Fatalf("second rebased event %+v (read %+v)", e1, e1.Reads[0])
	}
}

func TestToModelTraceClampsPreWindowReads(t *testing.T) {
	// Row 1 wraps away its early history; row 0's read of a pre-window
	// version of row 1 clamps to the initial value 0.
	rec := NewRecorder(2, 6)
	w0, w1 := rec.Worker(0), rec.Worker(1)
	for c := 1; c <= 10; c++ { // wraps: keeps counts 9, 10
		w1.RelaxStart(1, c)
		w1.RelaxEnd(1, c)
	}
	w0.RelaxStart(0, 1)
	w0.ReadVersion(0, 1, 1, 3) // version 3 predates row 1's window (base 8)
	w0.RelaxEnd(0, 1)
	tr, err := ToModelTrace(rec, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.Row == 0 && e.Reads[0].Version != 0 {
			t.Fatalf("pre-window read not clamped: %+v", e.Reads[0])
		}
	}
}

func TestToModelTraceErrors(t *testing.T) {
	if _, err := ToModelTrace(nil, 2); err == nil {
		t.Fatal("nil recorder accepted")
	}
	rec := NewRecorder(1, 8)
	if _, err := ToModelTrace(rec, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ToModelTrace(rec, 2); err == nil {
		t.Fatal("empty recorder accepted")
	}
	rec.Worker(0).RelaxStart(5, 1)
	rec.Worker(0).RelaxEnd(5, 1)
	if _, err := ToModelTrace(rec, 2); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestVerifyNormsOnSyntheticSchedule(t *testing.T) {
	// A W.D.D. Laplacian and a hand-built exact-read schedule: every
	// recorded mask must satisfy Theorem 1's norm bounds.
	a := matgen.Laplace1D(4)
	rec := NewRecorder(1, 256)
	w := rec.Worker(0)
	for c := 1; c <= 3; c++ {
		for i := 0; i < 4; i++ {
			w.RelaxStart(i, c)
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if j := a.Col[k]; j != i {
					// Synchronous schedule: read last completed version.
					w.ReadVersion(i, c, j, c-1)
				}
			}
			w.RelaxEnd(i, c)
		}
	}
	tr, err := ToModelTraceMatrix(rec, a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyNorms(a, tr, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Analysis.Fraction != 1 {
		t.Fatalf("synchronous schedule should be fully propagated, got %.2f", rep.Analysis.Fraction)
	}
	if rep.MasksChecked == 0 || rep.Violations != 0 {
		t.Fatalf("masks=%d violations=%d", rep.MasksChecked, rep.Violations)
	}
	if rep.MaxGNormInf > 1+1e-9 || rep.MaxHNorm1 > 1+1e-9 {
		t.Fatalf("norms exceed Theorem 1 bound: G=%.3g H=%.3g", rep.MaxGNormInf, rep.MaxHNorm1)
	}
}

func TestVerifyNormsDimensionMismatch(t *testing.T) {
	a := matgen.Laplace1D(4)
	rec := NewRecorder(1, 8)
	rec.Worker(0).RelaxStart(0, 1)
	rec.Worker(0).RelaxEnd(0, 1)
	tr, err := ToModelTrace(rec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyNorms(a, tr, 1e-9, 0); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestVerifyNormsMaskCap(t *testing.T) {
	a := matgen.Laplace1D(3)
	rec := NewRecorder(1, 256)
	w := rec.Worker(0)
	for c := 1; c <= 4; c++ {
		for i := 0; i < 3; i++ {
			w.RelaxStart(i, c)
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if j := a.Col[k]; j != i {
					w.ReadVersion(i, c, j, c-1)
				}
			}
			w.RelaxEnd(i, c)
		}
	}
	tr, err := ToModelTraceMatrix(rec, a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyNorms(a, tr, 1e-9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MasksChecked != 2 {
		t.Fatalf("mask cap ignored: checked %d", rep.MasksChecked)
	}
}
