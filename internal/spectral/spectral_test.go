package spectral

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// scaled 1-D Laplacian: diag 1, off -1/2; rho(G) = cos(pi/(n+1)).
func scaledLaplace1D(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
		if i > 0 {
			c.Add(i, i-1, -0.5)
		}
		if i < n-1 {
			c.Add(i, i+1, -0.5)
		}
	}
	return c.ToCSR()
}

func randomSymUnitDiag(rng *rand.Rand, n int, off float64) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				c.AddSym(i, j, off*rng.NormFloat64())
			}
		}
	}
	return c.ToCSR()
}

func denseOf(a *sparse.CSR) *dense.Matrix {
	return dense.FromRows(a.Dense())
}

func TestJacobiRhoGAnalytic(t *testing.T) {
	n := 25
	a := scaledLaplace1D(n)
	want := math.Cos(math.Pi / float64(n+1))
	got := JacobiRhoG(a, 100000, 1e-12)
	if math.Abs(got.Value-want) > 1e-5 {
		t.Fatalf("JacobiRhoG = %.8f want %.8f", got.Value, want)
	}
	got2 := JacobiRhoGSym(a, 100000, 1e-12)
	if math.Abs(got2.Value-want) > 1e-5 {
		t.Fatalf("JacobiRhoGSym = %.8f want %.8f", got2.Value, want)
	}
}

func TestSpectralRadiusMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 10; trial++ {
		a := randomSymUnitDiag(rng, 3+rng.IntN(20), 0.3)
		want, err := dense.SpectralRadiusSym(denseOf(a))
		if err != nil {
			t.Fatal(err)
		}
		got := SpectralRadius(a, 100000, 1e-12)
		if math.Abs(got.Value-want) > 1e-4*(1+want) {
			t.Fatalf("SpectralRadius = %.8f dense %.8f", got.Value, want)
		}
	}
}

func TestSymmetricExtremesMatchDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 10; trial++ {
		a := randomSymUnitDiag(rng, 4+rng.IntN(16), 0.4)
		ev, err := dense.SymEig(denseOf(a))
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := SymmetricExtremes(a, 200000, 1e-13)
		if math.Abs(lo.Value-ev[0]) > 1e-4*(1+math.Abs(ev[0])) {
			t.Fatalf("lambda_min = %.8f dense %.8f", lo.Value, ev[0])
		}
		if math.Abs(hi.Value-ev[len(ev)-1]) > 1e-4*(1+math.Abs(ev[len(ev)-1])) {
			t.Fatalf("lambda_max = %.8f dense %.8f", hi.Value, ev[len(ev)-1])
		}
	}
}

func TestChazanMiranker(t *testing.T) {
	// For the scaled Laplacian, G has entries +1/2 off-diagonal after
	// negation; |G| equals G in absolute value so rho(|G|) = rho(G).
	n := 15
	a := scaledLaplace1D(n)
	want := math.Cos(math.Pi / float64(n+1))
	got := ChazanMirankerRho(a, 100000, 1e-12)
	if math.Abs(got.Value-want) > 1e-5 {
		t.Fatalf("rho(|G|) = %.8f want %.8f", got.Value, want)
	}
}

// rho(G) <= rho(|G|) always (the paper cites this in Section IV-D).
func TestRhoGLeqRhoAbsG(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 15; trial++ {
		a := randomSymUnitDiag(rng, 5+rng.IntN(15), 0.3)
		rg := JacobiRhoGSym(a, 100000, 1e-11)
		rabs := ChazanMirankerRho(a, 100000, 1e-11)
		if rg.Value > rabs.Value+1e-6 {
			t.Fatalf("rho(G)=%g > rho(|G|)=%g", rg.Value, rabs.Value)
		}
	}
}

func TestGershgorinBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 15; trial++ {
		a := randomSymUnitDiag(rng, 5+rng.IntN(15), 0.2)
		bound := GershgorinRhoGBound(a)
		rho := JacobiRhoGSym(a, 100000, 1e-11)
		if rho.Value > bound+1e-6 {
			t.Fatalf("rho(G)=%g exceeds Gershgorin bound %g", rho.Value, bound)
		}
	}
}

func TestZeroDimension(t *testing.T) {
	c := sparse.NewCOO(0, 0)
	a := c.ToCSR()
	r := SpectralRadius(a, 10, 1e-10)
	if !r.Converged || r.Value != 0 {
		t.Fatalf("empty matrix: %+v", r)
	}
}

func TestIdentityMatrix(t *testing.T) {
	c := sparse.NewCOO(5, 5)
	for i := 0; i < 5; i++ {
		c.Add(i, i, 1)
	}
	a := c.ToCSR()
	// G = I - I = 0
	r := JacobiRhoG(a, 100, 1e-10)
	if r.Value > 1e-12 {
		t.Fatalf("rho(G) for identity = %g", r.Value)
	}
}
