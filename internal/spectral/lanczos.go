package spectral

import (
	"math"

	"repro/internal/dense"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// LanczosExtremes estimates the smallest and largest eigenvalues of a
// symmetric matrix with the Lanczos process (full reorthogonalization,
// up to maxKrylov vectors). For the ill-conditioned diffusion matrices
// in this library it converges in tens of matrix-vector products where
// shifted power iteration needs tens of thousands, because Krylov
// spaces resolve both ends of the spectrum simultaneously.
//
// The returned Results carry the Ritz-value estimates; Converged is set
// when the last Krylov expansion changed both extremes by less than tol
// relatively, and Iterations counts matrix-vector products.
func LanczosExtremes(a *sparse.CSR, maxKrylov int, tol float64) (lo, hi Result) {
	n := a.N
	if n == 0 {
		return Result{Converged: true}, Result{Converged: true}
	}
	if maxKrylov > n {
		maxKrylov = n
	}
	if maxKrylov < 2 {
		maxKrylov = 2
	}

	// Krylov basis (kept for full reorthogonalization).
	basis := make([][]float64, 0, maxKrylov)
	alphas := make([]float64, 0, maxKrylov)
	betas := make([]float64, 0, maxKrylov) // betas[j] couples v_j and v_{j+1}

	v := make([]float64, n)
	defaultStart(v)
	normalize(v)
	basis = append(basis, vec.Clone(v))

	w := make([]float64, n)
	var prevLo, prevHi float64
	for j := 0; j < maxKrylov; j++ {
		a.MulVec(w, basis[j])
		alpha := vec.Dot(basis[j], w)
		alphas = append(alphas, alpha)
		// w <- w - alpha v_j - beta_{j-1} v_{j-1}
		vec.Axpy(-alpha, basis[j], w)
		if j > 0 {
			vec.Axpy(-betas[j-1], basis[j-1], w)
		}
		// Full reorthogonalization: Lanczos loses orthogonality exactly
		// when Ritz values converge, which is always here.
		for _, u := range basis {
			vec.Axpy(-vec.Dot(u, w), u, w)
		}
		beta := vec.Norm2(w)

		// Ritz values of the current tridiagonal section.
		rlo, rhi, ok := tridiagExtremes(alphas, betas)
		if !ok {
			break
		}
		matvecs := j + 1
		lo = Result{Value: rlo, Iterations: matvecs}
		hi = Result{Value: rhi, Iterations: matvecs}
		if j > 0 {
			dLo := math.Abs(rlo-prevLo) <= tol*math.Max(math.Abs(rlo), 1e-300)
			dHi := math.Abs(rhi-prevHi) <= tol*math.Max(math.Abs(rhi), 1e-300)
			if dLo && dHi {
				lo.Converged, hi.Converged = true, true
				return lo, hi
			}
		}
		prevLo, prevHi = rlo, rhi

		if beta <= 1e-14*(math.Abs(alpha)+1) {
			// Invariant subspace found: Ritz values are exact.
			lo.Converged, hi.Converged = true, true
			return lo, hi
		}
		if j+1 == maxKrylov {
			break
		}
		betas = append(betas, beta)
		inv := 1 / beta
		next := make([]float64, n)
		for i := range next {
			next[i] = w[i] * inv
		}
		basis = append(basis, next)
	}
	return lo, hi
}

// JacobiRhoGLanczos estimates rho(G) = max |1 - lambda(A)| via Lanczos
// eigenvalue extremes — the fast path used by experiment drivers.
func JacobiRhoGLanczos(a *sparse.CSR, maxKrylov int, tol float64) Result {
	lo, hi := LanczosExtremes(a, maxKrylov, tol)
	return Result{
		Value:      math.Max(math.Abs(1-lo.Value), math.Abs(1-hi.Value)),
		Iterations: hi.Iterations,
		Converged:  lo.Converged && hi.Converged,
	}
}

// tridiagExtremes returns the extreme eigenvalues of the symmetric
// tridiagonal matrix with the given diagonal and off-diagonal, via the
// dense symmetric eigensolver (sections stay small: <= maxKrylov).
func tridiagExtremes(diag, off []float64) (lo, hi float64, ok bool) {
	m := len(diag)
	if m == 0 {
		return 0, 0, false
	}
	t := dense.New(m, m)
	for i := 0; i < m; i++ {
		t.Set(i, i, diag[i])
		if i+1 < m && i < len(off) {
			t.Set(i, i+1, off[i])
			t.Set(i+1, i, off[i])
		}
	}
	ev, err := dense.SymEig(t)
	if err != nil || len(ev) == 0 {
		return 0, 0, false
	}
	return ev[0], ev[len(ev)-1], true
}

// normalize scales v to unit 2-norm in place (no-op for zero vectors).
func normalize(v []float64) {
	n := vec.Norm2(v)
	if n == 0 {
		return
	}
	vec.Scale(1/n, v)
}
