package spectral_test

import (
	"fmt"

	"repro/internal/matgen"
	"repro/internal/spectral"
)

// ExampleJacobiRhoGLanczos classifies a matrix by its Jacobi iteration
// spectral radius: the FD Laplacian converges, the distorted FE matrix
// does not.
func ExampleJacobiRhoGLanczos() {
	fd := matgen.FD2D(20, 20)
	fe := matgen.FE2D(matgen.DefaultFEOptions(20, 20))
	rFD := spectral.JacobiRhoGLanczos(fd, 200, 1e-10)
	rFE := spectral.JacobiRhoGLanczos(fe, 400, 1e-10)
	fmt.Println("FD converges:", rFD.Value < 1)
	fmt.Println("FE converges:", rFE.Value < 1)
	// Output:
	// FD converges: true
	// FE converges: false
}
