package spectral

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

func TestLanczosAnalyticLaplacian(t *testing.T) {
	n := 64
	a := scaledLaplace1D(n)
	lo, hi := LanczosExtremes(a, 64, 1e-12)
	wantLo := 1 - math.Cos(math.Pi/float64(n+1))
	wantHi := 1 + math.Cos(math.Pi/float64(n+1))
	if math.Abs(lo.Value-wantLo) > 1e-8 {
		t.Fatalf("lambda_min = %.10f want %.10f", lo.Value, wantLo)
	}
	if math.Abs(hi.Value-wantHi) > 1e-8 {
		t.Fatalf("lambda_max = %.10f want %.10f", hi.Value, wantHi)
	}
}

func TestLanczosMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	for trial := 0; trial < 15; trial++ {
		a := randomSymUnitDiag(rng, 5+rng.IntN(25), 0.4)
		ev, err := dense.SymEig(denseOf(a))
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := LanczosExtremes(a, a.N, 1e-13)
		if math.Abs(lo.Value-ev[0]) > 1e-7*(1+math.Abs(ev[0])) {
			t.Fatalf("lambda_min %.10f dense %.10f", lo.Value, ev[0])
		}
		if math.Abs(hi.Value-ev[len(ev)-1]) > 1e-7*(1+math.Abs(ev[len(ev)-1])) {
			t.Fatalf("lambda_max %.10f dense %.10f", hi.Value, ev[len(ev)-1])
		}
	}
}

// Lanczos must agree with the power-iteration path and use far fewer
// matrix-vector products on a slow-spectrum problem.
func TestLanczosFasterThanPower(t *testing.T) {
	n := 400
	a := scaledLaplace1D(n) // rho(G) = cos(pi/401) ~ 0.99997: hard for power iteration
	rl := JacobiRhoGLanczos(a, 200, 1e-10)
	rp := JacobiRhoGSym(a, 200000, 1e-10)
	if math.Abs(rl.Value-rp.Value) > 1e-5 {
		t.Fatalf("Lanczos %.8f vs power %.8f", rl.Value, rp.Value)
	}
	if rl.Iterations*10 > rp.Iterations {
		t.Fatalf("Lanczos used %d matvecs, power %d — expected >=10x fewer",
			rl.Iterations, rp.Iterations)
	}
}

func TestLanczosEmptyAndTiny(t *testing.T) {
	empty := sparse.NewCOO(0, 0).ToCSR()
	lo, hi := LanczosExtremes(empty, 10, 1e-10)
	if !lo.Converged || !hi.Converged {
		t.Fatal("empty matrix should converge trivially")
	}
	// 1x1 identity: both extremes are exactly 1 via invariant subspace.
	c := sparse.NewCOO(1, 1)
	c.Add(0, 0, 1)
	lo, hi = LanczosExtremes(c.ToCSR(), 10, 1e-10)
	if math.Abs(lo.Value-1) > 1e-14 || math.Abs(hi.Value-1) > 1e-14 {
		t.Fatalf("1x1: lo=%g hi=%g", lo.Value, hi.Value)
	}
}

func TestLanczosInvariantSubspaceEarlyExit(t *testing.T) {
	// Diagonal matrix: Krylov space from any start vector with distinct
	// diagonal values spans quickly; with repeated values it hits an
	// invariant subspace and must still report correct extremes.
	c := sparse.NewCOO(6, 6)
	for i := 0; i < 6; i++ {
		c.Add(i, i, float64(1+i%2)) // eigenvalues {1, 2}
	}
	lo, hi := LanczosExtremes(c.ToCSR(), 6, 1e-12)
	if math.Abs(lo.Value-1) > 1e-10 || math.Abs(hi.Value-2) > 1e-10 {
		t.Fatalf("extremes [%g, %g], want [1, 2]", lo.Value, hi.Value)
	}
}

func BenchmarkLanczosRhoG(b *testing.B) {
	a := scaledLaplace1D(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = JacobiRhoGLanczos(a, 150, 1e-10)
	}
}

func TestConvergenceFactor(t *testing.T) {
	// Synthetic geometric history with factor 0.9.
	res := make([]float64, 60)
	res[0] = 1
	for k := 1; k < len(res); k++ {
		res[k] = res[k-1] * 0.9
	}
	f, ok := ConvergenceFactor(res)
	if !ok || math.Abs(f-0.9) > 1e-10 {
		t.Fatalf("factor = %g ok=%v", f, ok)
	}
	// Too-short history.
	if _, ok := ConvergenceFactor([]float64{1, 0.5}); ok {
		t.Fatal("short history accepted")
	}
	// Non-finite tail entries are skipped.
	res[40] = math.NaN()
	if f, ok := ConvergenceFactor(res); !ok || math.Abs(f-0.9) > 1e-9 {
		t.Fatalf("NaN-tolerant fit failed: %g %v", f, ok)
	}
}
