// Package spectral estimates spectral quantities of sparse matrices:
// the spectral radius of the Jacobi iteration matrix G = I - A (which
// decides synchronous convergence), the Chazan-Miranker radius
// rho(|G|) (which decides guaranteed asynchronous convergence), and
// Gershgorin bounds. For symmetric matrices the estimates come from
// power iteration with a spectral shift that makes the extreme
// eigenvalue dominant.
package spectral

import (
	"math"

	"repro/internal/sparse"
)

// Result reports an eigenvalue estimate and how it was obtained.
type Result struct {
	Value      float64 // the estimate
	Iterations int     // power-iteration steps used
	Converged  bool    // tolerance met before maxIter
}

// defaultStart fills x with a deterministic, sign-varying start vector
// that is extremely unlikely to be orthogonal to the dominant
// eigenvector.
func defaultStart(x []float64) {
	for i := range x {
		x[i] = 1 + 0.5*math.Sin(float64(3*i+1))
	}
}

// powerIterate runs power iteration with Rayleigh-quotient eigenvalue
// estimates on a matrix-free symmetric operator of dimension n. The
// Rayleigh quotient converges smoothly (quadratically in the
// eigenvector error for symmetric operators), avoiding the stagnation
// artifacts of norm-ratio estimates; convergence is declared only after
// the relative change stays below tol on two consecutive iterations.
// The returned Value is the Rayleigh quotient of the final iterate —
// for the positive (semi)definite operators used in this package it is
// the dominant eigenvalue.
func powerIterate(n int, op func(y, x []float64), maxIter int, tol float64) Result {
	if n == 0 {
		return Result{Converged: true}
	}
	x := make([]float64, n)
	y := make([]float64, n)
	defaultStart(x)
	// Normalize the start vector.
	var nx float64
	for _, v := range x {
		nx += v * v
	}
	nx = math.Sqrt(nx)
	for i := range x {
		x[i] /= nx
	}
	var lambda, prev float64
	hits := 0
	for it := 1; it <= maxIter; it++ {
		op(y, x)
		// Rayleigh quotient with ||x||_2 = 1.
		var rq, ny float64
		for i := range y {
			rq += x[i] * y[i]
			ny += y[i] * y[i]
		}
		ny = math.Sqrt(ny)
		lambda = rq
		if ny == 0 {
			return Result{Value: 0, Iterations: it, Converged: true}
		}
		inv := 1 / ny
		for i := range y {
			x[i] = y[i] * inv
		}
		if it > 1 && math.Abs(lambda-prev) <= tol*math.Max(math.Abs(lambda), 1e-300) {
			hits++
			if hits >= 2 {
				return Result{Value: lambda, Iterations: it, Converged: true}
			}
		} else {
			hits = 0
		}
		prev = lambda
	}
	return Result{Value: lambda, Iterations: maxIter}
}

// SpectralRadius estimates rho(A) by plain power iteration. Reliable
// when the dominant eigenvalue is real and simple (always the case for
// the symmetric matrices in this library, up to sign ties, which still
// yield the correct magnitude for symmetric A after two steps since
// A^2's dominant eigenvalue is lambda^2; we iterate on A^2 to be safe).
func SpectralRadius(a *sparse.CSR, maxIter int, tol float64) Result {
	t := make([]float64, a.N)
	op := func(y, x []float64) {
		a.MulVec(t, x)
		a.MulVec(y, t)
	}
	r := powerIterate(a.N, op, maxIter, tol)
	r.Value = math.Sqrt(math.Max(0, r.Value))
	return r
}

// JacobiRhoG estimates rho(G) where G = I - A for a unit-diagonal
// matrix A, applying G matrix-free: Gx = x - Ax. This is the quantity
// that decides whether synchronous Jacobi converges.
func JacobiRhoG(a *sparse.CSR, maxIter int, tol float64) Result {
	t := make([]float64, a.N)
	gmul := func(y, x []float64) {
		a.MulVec(y, x)
		for i := range y {
			y[i] = x[i] - y[i]
		}
	}
	op := func(y, x []float64) {
		gmul(t, x)
		gmul(y, t)
	}
	r := powerIterate(a.N, op, maxIter, tol)
	r.Value = math.Sqrt(math.Max(0, r.Value))
	return r
}

// ChazanMirankerRho estimates rho(|G|), the classical sufficient
// condition for asynchronous convergence (rho(|G|) < 1, Chazan and
// Miranker 1969). |G| is nonnegative so its Perron root is real, but
// bipartite sparsity patterns pair it with -rho; the iteration squares
// the operator to break the tie.
func ChazanMirankerRho(a *sparse.CSR, maxIter int, tol float64) Result {
	g := sparse.JacobiIterationMatrix(a).Abs()
	t := make([]float64, a.N)
	// Iterate on |G|^2: bipartite connectivity graphs (grids, paths)
	// make |G| have +rho and -rho eigenvalue pairs, on which plain
	// power iteration cycles; squaring removes the tie.
	op := func(y, x []float64) {
		g.MulVec(t, x)
		g.MulVec(y, t)
	}
	r := powerIterate(a.N, op, maxIter, tol)
	r.Value = math.Sqrt(math.Max(0, r.Value))
	return r
}

// SymmetricExtremes estimates the smallest and largest eigenvalues of a
// symmetric matrix A via shifted power iterations:
// lambda_max from rho estimation on A + sI with s = ||A||_inf (making
// all eigenvalues positive and the largest dominant), and lambda_min
// symmetrically from sI - A.
func SymmetricExtremes(a *sparse.CSR, maxIter int, tol float64) (lo, hi Result) {
	s := a.NormInf()
	opHi := func(y, x []float64) {
		a.MulVec(y, x)
		for i := range y {
			y[i] += s * x[i]
		}
	}
	hi = powerIterate(a.N, opHi, maxIter, tol)
	hi.Value -= s
	opLo := func(y, x []float64) {
		a.MulVec(y, x)
		for i := range y {
			y[i] = s*x[i] - y[i]
		}
	}
	lo = powerIterate(a.N, opLo, maxIter, tol)
	lo.Value = s - lo.Value
	return lo, hi
}

// JacobiRhoGSym estimates rho(G) for symmetric unit-diagonal A using
// the eigenvalue extremes of A: the eigenvalues of G = I - A are
// 1 - lambda(A), so rho(G) = max(|1 - lambda_min|, |1 - lambda_max|).
// More robust than plain power iteration when the two extreme
// eigenvalues of G have nearly equal magnitude and opposite signs.
func JacobiRhoGSym(a *sparse.CSR, maxIter int, tol float64) Result {
	lo, hi := SymmetricExtremes(a, maxIter, tol)
	v := math.Max(math.Abs(1-lo.Value), math.Abs(1-hi.Value))
	return Result{
		Value:      v,
		Iterations: lo.Iterations + hi.Iterations,
		Converged:  lo.Converged && hi.Converged,
	}
}

// GershgorinRhoGBound returns the Gershgorin upper bound on rho(G) for
// unit-diagonal A: the largest off-diagonal absolute row sum. Equals 1
// exactly when A is weakly diagonally dominant with at least one row
// achieving equality.
func GershgorinRhoGBound(a *sparse.CSR) float64 {
	return a.GershgorinRadius()
}
