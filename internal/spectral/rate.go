package spectral

import "math"

// ConvergenceFactor estimates the asymptotic per-step residual
// reduction factor from a convergence history by least-squares fitting
// a line to log(residual) over the tail of the run (the second half,
// where transients have died out). For a stationary method the fitted
// factor approaches rho(G); comparing the two validates the spectral
// estimates against actual solver behaviour.
//
// The fit uses only strictly positive, finite samples; ok is false when
// fewer than three usable tail samples exist or the history is not
// decreasing at all.
func ConvergenceFactor(res []float64) (factor float64, ok bool) {
	// Collect the usable tail: second half of finite positive entries.
	var xs []float64
	var ys []float64
	start := len(res) / 2
	for k := start; k < len(res); k++ {
		v := res[k]
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		xs = append(xs, float64(k))
		ys = append(ys, math.Log(v))
	}
	if len(xs) < 3 {
		return 0, false
	}
	// Least squares slope of ys against xs.
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	nf := float64(len(xs))
	den := nf*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	slope := (nf*sxy - sx*sy) / den
	f := math.Exp(slope)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, false
	}
	return f, true
}
