package matgen

import (
	"math"
	"testing"

	"repro/internal/spectral"
)

func TestFD2DAniso(t *testing.T) {
	a := FD2DAniso(10, 8, 0.01)
	if a.N != 80 || !a.IsSymmetric(1e-14) || !a.HasUnitDiagonal(1e-14) || !a.IsWDD() {
		t.Fatal("anisotropic matrix properties violated")
	}
	// eps = 1 degenerates to the isotropic 5-point stencil.
	iso := FD2DAniso(7, 6, 1)
	fd := FD2D(7, 6)
	for i := 0; i < iso.N; i++ {
		for j := 0; j < iso.N; j++ {
			if math.Abs(iso.At(i, j)-fd.At(i, j)) > 1e-15 {
				t.Fatal("eps=1 does not match FD2D")
			}
		}
	}
	// The classical fact: point-Jacobi's rho(G) is insensitive to the
	// anisotropy (eigenvalues (2cos(i pi h) + 2 eps cos(j pi h))/(2+2eps)
	// peak at cos(pi h) for any eps).
	r1 := spectral.JacobiRhoGLanczos(FD2DAniso(12, 12, 1), 80, 1e-11)
	r2 := spectral.JacobiRhoGLanczos(FD2DAniso(12, 12, 0.01), 80, 1e-11)
	if math.Abs(r2.Value-r1.Value) > 1e-6 {
		t.Fatalf("rho(G) should not depend on eps: %g vs %g", r2.Value, r1.Value)
	}
	want := math.Cos(math.Pi / 13)
	if math.Abs(r1.Value-want) > 1e-6 {
		t.Fatalf("rho(G) = %.10f want cos(pi/13) = %.10f", r1.Value, want)
	}
}

func TestFD2D9(t *testing.T) {
	a := FD2D9(9, 7)
	if !a.IsSymmetric(1e-14) || !a.HasUnitDiagonal(1e-14) || !a.IsWDD() {
		t.Fatal("nine-point matrix properties violated")
	}
	// Interior rows have 8 neighbors.
	mid := (7/2)*9 + 4
	if a.RowNNZ(mid) != 9 {
		t.Fatalf("interior row nnz = %d, want 9", a.RowNNZ(mid))
	}
	rho := spectral.JacobiRhoGLanczos(a, 60, 1e-11)
	if rho.Value >= 1 {
		t.Fatalf("rho(G) = %g", rho.Value)
	}
}

func TestRingLaplacianAnalytic(t *testing.T) {
	for _, tc := range []struct {
		n     int
		shift float64
	}{{8, 0.5}, {17, 1}, {64, 0.1}} {
		a := RingLaplacian(tc.n, tc.shift)
		if !a.IsSymmetric(1e-14) || !a.HasUnitDiagonal(1e-14) || !a.IsWDD() {
			t.Fatal("ring Laplacian properties violated")
		}
		got := spectral.JacobiRhoGLanczos(a, tc.n, 1e-12)
		want := RingRhoG(tc.n, tc.shift)
		if math.Abs(got.Value-want) > 1e-7 {
			t.Fatalf("n=%d shift=%g: rho = %.10f want %.10f", tc.n, tc.shift, got.Value, want)
		}
	}
}

func TestStretched(t *testing.T) {
	a := Stretched(12, 8, 1.3)
	if !a.IsSymmetric(1e-12) || !a.HasUnitDiagonal(1e-12) {
		t.Fatal("stretched-grid matrix properties violated")
	}
	lo, _ := spectral.LanczosExtremes(a, 96, 1e-11)
	if lo.Value <= 0 {
		t.Fatalf("stretched matrix not SPD: lambda_min = %g", lo.Value)
	}
	rho := spectral.JacobiRhoGLanczos(a, 96, 1e-11)
	if rho.Value >= 1 {
		t.Fatalf("rho(G) = %g", rho.Value)
	}
}

func TestExtraGeneratorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("aniso eps<=0", func() { FD2DAniso(3, 3, 0) })
	mustPanic("aniso dims", func() { FD2DAniso(0, 3, 1) })
	mustPanic("9pt dims", func() { FD2D9(3, 0) })
	mustPanic("ring small", func() { RingLaplacian(2, 0) })
	mustPanic("ring shift", func() { RingLaplacian(5, -1) })
	mustPanic("stretched g", func() { Stretched(3, 3, 0) })
}
