package matgen

import (
	"math"
	"testing"

	"repro/internal/spectral"
)

func TestLaplace1D(t *testing.T) {
	a := Laplace1D(10)
	if a.N != 10 || !a.IsSymmetric(0) || !a.HasUnitDiagonal(0) || !a.IsWDD() {
		t.Fatal("Laplace1D basic properties violated")
	}
	if a.At(0, 1) != -0.5 {
		t.Fatalf("off-diagonal = %g", a.At(0, 1))
	}
	// rho(G) = cos(pi/(n+1))
	rho := spectral.JacobiRhoGSym(a, 20000, 1e-12)
	want := math.Cos(math.Pi / 11)
	if math.Abs(rho.Value-want) > 1e-6 {
		t.Fatalf("rho(G) = %.8f want %.8f", rho.Value, want)
	}
}

func TestFD2DProperties(t *testing.T) {
	a := FD2D(7, 5)
	if a.N != 35 {
		t.Fatalf("n = %d", a.N)
	}
	if !a.IsSymmetric(0) {
		t.Fatal("FD2D not symmetric")
	}
	if !a.HasUnitDiagonal(0) {
		t.Fatal("FD2D diagonal not unit")
	}
	if !a.IsWDD() {
		t.Fatal("FD2D not W.D.D.")
	}
	// Interior row degree 4, nnz = 5n - 2*(nx+ny) boundary deficit
	wantNNZ := 5*35 - 2*(7+5)
	if a.NNZ() != wantNNZ {
		t.Fatalf("nnz = %d want %d", a.NNZ(), wantNNZ)
	}
}

func TestFD2DRhoGMatchesAnalytic(t *testing.T) {
	for _, dims := range [][2]int{{4, 17}, {8, 5}, {17, 16}} {
		a := FD2D(dims[0], dims[1])
		got := spectral.JacobiRhoGSym(a, 50000, 1e-12)
		want := FD2DRhoG(dims[0], dims[1])
		if math.Abs(got.Value-want) > 1e-5 {
			t.Fatalf("FD2D(%d,%d) rho = %.8f want %.8f", dims[0], dims[1], got.Value, want)
		}
		if want >= 1 {
			t.Fatal("analytic rho must be < 1")
		}
	}
}

// The paper's shared-memory FD test matrices, reproduced exactly:
// n=68 with 298 nonzeros (4x17 grid), n=40 with 174 nonzeros (5x8),
// n=272 with 1294 nonzeros (16x17), n=4624 with 22848 (68x68).
func TestPaperFDMatrixSizes(t *testing.T) {
	a := FD2D(4, 17)
	if a.N != 68 || a.NNZ() != 298 {
		t.Fatalf("FD2D(4,17): n=%d nnz=%d, want 68/298", a.N, a.NNZ())
	}
	b := FD2D(5, 8)
	if b.N != 40 || b.NNZ() != 174 {
		t.Fatalf("FD2D(5,8): n=%d nnz=%d, want 40/174", b.N, b.NNZ())
	}
	c := FD2D(16, 17)
	if c.N != 272 || c.NNZ() != 1294 {
		t.Fatalf("FD2D(16,17): n=%d nnz=%d, want 272/1294", c.N, c.NNZ())
	}
	d := FD2D(68, 68)
	if d.N != 4624 || d.NNZ() != 22848 {
		t.Fatalf("FD2D(68,68): n=%d nnz=%d, want 4624/22848", d.N, d.NNZ())
	}
}

func TestFD3DProperties(t *testing.T) {
	a := FD3D(4, 3, 5)
	if a.N != 60 {
		t.Fatalf("n = %d", a.N)
	}
	if !a.IsSymmetric(0) || !a.HasUnitDiagonal(0) || !a.IsWDD() {
		t.Fatal("FD3D properties violated")
	}
	rho := spectral.JacobiRhoGSym(a, 50000, 1e-12)
	want := (math.Cos(math.Pi/5) + math.Cos(math.Pi/4) + math.Cos(math.Pi/6)) / 3
	if math.Abs(rho.Value-want) > 1e-5 {
		t.Fatalf("rho = %.8f want %.8f", rho.Value, want)
	}
}

func TestFD2DHetero(t *testing.T) {
	a := FD2DHetero(12, 9, 100, 5)
	if a.N != 108 {
		t.Fatalf("n = %d", a.N)
	}
	if !a.IsSymmetric(1e-12) {
		t.Fatal("hetero matrix not symmetric")
	}
	if !a.HasUnitDiagonal(1e-12) {
		t.Fatal("hetero matrix diagonal not unit")
	}
	// Symmetric unit-diagonal scaling does not preserve W.D.D. when
	// the diagonal varies, but most rows should remain dominant.
	if f := a.WDDFraction(); f < 0.5 {
		t.Fatalf("W.D.D. fraction %g too low", f)
	}
	rho := spectral.JacobiRhoGSym(a, 50000, 1e-10)
	if rho.Value >= 1 {
		t.Fatalf("rho(G) = %g >= 1", rho.Value)
	}
	// Determinism
	b := FD2DHetero(12, 9, 100, 5)
	if b.NNZ() != a.NNZ() {
		t.Fatal("generator not deterministic")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatal("generator not deterministic (values)")
		}
	}
}

func TestShiftedGridLaplacian(t *testing.T) {
	a := ShiftedGridLaplacian(10, 10, 0.8)
	if !a.IsSymmetric(1e-12) || !a.HasUnitDiagonal(1e-12) || !a.IsWDD() {
		t.Fatal("shifted Laplacian properties violated")
	}
	// Interior rows: offdiag sum = 4/(4.8) < 1: strictly dominant
	rho := spectral.JacobiRhoGSym(a, 20000, 1e-10)
	if rho.Value >= 4.0/4.8+1e-6 {
		t.Fatalf("rho = %g exceeds strict-dominance bound", rho.Value)
	}
}

func TestRandomWDD(t *testing.T) {
	for _, dom := range []float64{0.5, 0.9, 1.0} {
		a := RandomWDD(60, 4, dom, 99)
		if !a.IsSymmetric(1e-14) {
			t.Fatal("RandomWDD not symmetric")
		}
		if !a.HasUnitDiagonal(1e-14) {
			t.Fatal("RandomWDD diagonal not unit")
		}
		if !a.IsWDD() {
			t.Fatalf("RandomWDD(dominance=%g) not W.D.D.", dom)
		}
	}
}

func TestRandomWDDGershgorin(t *testing.T) {
	a := RandomWDD(40, 3, 0.7, 3)
	if g := a.GershgorinRadius(); g > 0.7+1e-12 {
		t.Fatalf("Gershgorin radius %g exceeds dominance budget", g)
	}
}

func TestGeneratorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Laplace1D(0)", func() { Laplace1D(0) })
	mustPanic("FD2D(0,1)", func() { FD2D(0, 1) })
	mustPanic("FD3D neg", func() { FD3D(1, -1, 1) })
	mustPanic("contrast<1", func() { FD2DHetero(3, 3, 0.5, 1) })
	mustPanic("shift<=0", func() { ShiftedGridLaplacian(3, 3, 0) })
	mustPanic("bad dominance", func() { RandomWDD(5, 2, 1.5, 1) })
	mustPanic("FE tiny grid", func() { FE2D(FEOptions{NX: 1, NY: 5}) })
	mustPanic("FE bad jitter", func() { FE2D(FEOptions{NX: 4, NY: 4, Jitter: 0.6}) })
	mustPanic("FE neg shift", func() { FE2D(FEOptions{NX: 4, NY: 4, Shift: -0.1}) })
}
