package matgen

import (
	"testing"

	"repro/internal/spectral"
)

func TestFE2DUndistortedIsFivePoint(t *testing.T) {
	// With zero jitter the right-triangle P1 discretization reduces to
	// the 5-point stencil (the diagonal couplings cancel), so the
	// scaled matrix must equal FD2D on the interior grid.
	fe := FE2D(FEOptions{NX: 6, NY: 6, Jitter: 0, Anisotropy: 1, Seed: 1})
	fd := FD2D(5, 5)
	if fe.N != fd.N {
		t.Fatalf("n = %d want %d", fe.N, fd.N)
	}
	for i := 0; i < fe.N; i++ {
		for j := 0; j < fe.N; j++ {
			d := fe.At(i, j) - fd.At(i, j)
			if d > 1e-12 || d < -1e-12 {
				t.Fatalf("(%d,%d): fe=%g fd=%g", i, j, fe.At(i, j), fd.At(i, j))
			}
		}
	}
}

func TestFE2DBasicProperties(t *testing.T) {
	a := FE2D(DefaultFEOptions(20, 20))
	if a.N != 19*19 {
		t.Fatalf("n = %d", a.N)
	}
	if !a.IsSymmetric(1e-10) {
		t.Fatal("FE matrix not symmetric")
	}
	if !a.HasUnitDiagonal(1e-12) {
		t.Fatal("FE matrix diagonal not unit")
	}
}

// The paper's FE matrix: SPD, not W.D.D. (about half the rows W.D.D.),
// rho(G) > 1. Verify the analogue reproduces all three.
func TestFEPaperRegime(t *testing.T) {
	a := FEPaper()
	if a.N != 3136 {
		t.Fatalf("n = %d, want 3136 (paper: 3081)", a.N)
	}
	if a.IsWDD() {
		t.Fatal("FE matrix should not be W.D.D.")
	}
	f := a.WDDFraction()
	if f < 0.2 || f > 0.8 {
		t.Fatalf("W.D.D. fraction %g outside the paper's 'about half' regime", f)
	}
	rho := spectral.JacobiRhoGSym(a, 50000, 1e-10)
	if rho.Value <= 1 {
		t.Fatalf("rho(G) = %g, want > 1 (synchronous Jacobi must diverge)", rho.Value)
	}
	lo, _ := spectral.SymmetricExtremes(a, 50000, 1e-10)
	if lo.Value <= 0 {
		t.Fatalf("lambda_min = %g, matrix must be SPD", lo.Value)
	}
}

func TestFE2DShiftPullsRhoDown(t *testing.T) {
	base := FE2D(FEOptions{NX: 20, NY: 20, Jitter: 0.25, Anisotropy: 1, Seed: 7})
	shifted := FE2D(FEOptions{NX: 20, NY: 20, Jitter: 0.25, Anisotropy: 1, Shift: 0.3, Seed: 7})
	r0 := spectral.JacobiRhoGSym(base, 50000, 1e-10)
	r1 := spectral.JacobiRhoGSym(shifted, 50000, 1e-10)
	if r1.Value >= r0.Value {
		t.Fatalf("shift did not reduce rho: %g -> %g", r0.Value, r1.Value)
	}
}

func TestFE2DDeterminism(t *testing.T) {
	a := FE2D(DefaultFEOptions(15, 15))
	b := FE2D(DefaultFEOptions(15, 15))
	if a.NNZ() != b.NNZ() {
		t.Fatal("nondeterministic pattern")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatal("nondeterministic values")
		}
	}
}

func BenchmarkFE2D(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FE2D(DefaultFEOptions(30, 30))
	}
}

func BenchmarkFD2D(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FD2D(64, 64)
	}
}
