package matgen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/sparse"
)

// Problem bundles a generated test matrix with the Table I metadata of
// the SuiteSparse problem it stands in for. PaperN and PaperNNZ are the
// paper's reported equation and nonzero counts; A is the synthetic
// analogue at laptop scale. JacobiConverges records whether synchronous
// Jacobi is expected to converge (rho(G) < 1) — true for every Table I
// problem except Dubcova2.
type Problem struct {
	Name            string
	PaperN          int
	PaperNNZ        int
	A               *sparse.CSR
	Description     string
	JacobiConverges bool
}

// Thermal2Like stands in for SuiteSparse thermal2 (unstructured FE
// steady-state thermal problem): a heterogeneous-conductivity diffusion
// matrix, W.D.D., SPD, with slow Jacobi convergence.
func Thermal2Like() Problem {
	return Problem{
		Name:     "thermal2",
		PaperN:   1227087,
		PaperNNZ: 8579355,
		A:        FD2DHetero(45, 45, 100, 71),
		Description: "heterogeneous-conductivity diffusion (contrast 100) on a " +
			"45x45 grid; stands in for the unstructured FE thermal problem",
		JacobiConverges: true,
	}
}

// G3CircuitLike stands in for G3_circuit (circuit simulation): the
// weighted Laplacian of a grid graph augmented with random long-range
// connections, grounded through a small shift. W.D.D., SPD.
func G3CircuitLike() Problem {
	return Problem{
		Name:     "G3_circuit",
		PaperN:   1585478,
		PaperNNZ: 7660826,
		A:        circuitMatrix(45, 45, 600, 73),
		Description: "grounded resistor-network Laplacian on a 45x45 grid " +
			"with 600 extra random branches",
		JacobiConverges: true,
	}
}

// Ecology2Like stands in for ecology2 (landscape ecology circuit
// model): 2-D five-point stencil with moderately heterogeneous
// coefficients. W.D.D., SPD.
func Ecology2Like() Problem {
	return Problem{
		Name:     "ecology2",
		PaperN:   999999,
		PaperNNZ: 4995991,
		A:        FD2DHetero(45, 45, 10, 79),
		Description: "heterogeneous 2-D five-point diffusion (contrast 10) on " +
			"a 45x45 grid; ecology2 is a 2-D landscape conductance model",
		JacobiConverges: true,
	}
}

// Apache2Like stands in for apache2 (3-D structured finite-difference
// problem): the 7-point Laplacian on a cube. W.D.D., SPD.
func Apache2Like() Problem {
	return Problem{
		Name:            "apache2",
		PaperN:          715176,
		PaperNNZ:        4817870,
		A:               FD3D(14, 14, 14),
		Description:     "3-D seven-point Laplacian on a 14x14x14 grid",
		JacobiConverges: true,
	}
}

// ParabolicFEMLike stands in for parabolic_fem (implicit time step of a
// parabolic PDE): diffusion plus a mass/time term that strengthens the
// diagonal, giving the fastest Jacobi convergence of the suite.
func ParabolicFEMLike() Problem {
	return Problem{
		Name:     "parabolic_fem",
		PaperN:   525825,
		PaperNNZ: 3674625,
		A:        ShiftedGridLaplacian(50, 50, 0.8),
		Description: "grid Laplacian plus mass term (shift 0.8) on a 50x50 grid, " +
			"the implicit Euler step structure of a parabolic problem",
		JacobiConverges: true,
	}
}

// ThermomechDMLike stands in for thermomech_dm (thermo-mechanical FE
// model): a mildly distorted P1 finite-element stiffness matrix - no
// longer W.D.D. on every row, but still rho(G) < 1.
func ThermomechDMLike() Problem {
	return Problem{
		Name:     "thermomech_dm",
		PaperN:   204316,
		PaperNNZ: 1423116,
		A:        FE2D(FEOptions{NX: 50, NY: 50, Jitter: 0.25, Anisotropy: 1, Shift: 0.15, Seed: 83}),
		Description: "P1 FE stiffness matrix on a mildly distorted 50x50-cell " +
			"mesh (jitter 0.25, reaction shift 0.15): loses W.D.D. on some " +
			"rows, keeps rho(G) < 1",
		JacobiConverges: true,
	}
}

// Dubcova2Like stands in for Dubcova2, the one Table I matrix on which
// synchronous Jacobi diverges (rho(G) > 1): a strongly distorted,
// anisotropic P1 FE stiffness matrix.
func Dubcova2Like() Problem {
	return Problem{
		Name:     "Dubcova2",
		PaperN:   65025,
		PaperNNZ: 1030225,
		A:        FE2D(FEOptions{NX: 40, NY: 40, Jitter: 0.25, Anisotropy: 1, Seed: 89}),
		Description: "P1 FE stiffness matrix on a distorted anisotropic " +
			"40x40-cell mesh: rho(G) > 1, synchronous Jacobi diverges",
		JacobiConverges: false,
	}
}

// SuiteProblems generates all seven Table I analogues, ordered as in
// the paper (largest first, Dubcova2 last).
func SuiteProblems() []Problem {
	return []Problem{
		Thermal2Like(),
		G3CircuitLike(),
		Ecology2Like(),
		Apache2Like(),
		ParabolicFEMLike(),
		ThermomechDMLike(),
		Dubcova2Like(),
	}
}

// ConvergentSuiteProblems returns the six problems of Fig 7/8 (all of
// Table I except Dubcova2).
func ConvergentSuiteProblems() []Problem {
	all := SuiteProblems()
	out := all[:0:0]
	for _, p := range all {
		if p.JacobiConverges {
			out = append(out, p)
		}
	}
	return out
}

// circuitMatrix builds the grounded resistor-network Laplacian:
// grid-graph branches with log-uniform conductances in [0.1, 10],
// extra random long-range branches, and a small conductance to ground
// at every node (keeping the matrix strictly diagonally dominant and
// SPD). Returned unit-diagonal scaled.
func circuitMatrix(nx, ny, extraEdges int, seed uint64) *sparse.CSR {
	rng := rand.New(rand.NewPCG(seed, 0xc19c017))
	n := nx * ny
	idx := func(i, j int) int { return j*nx + i }
	cond := func() float64 {
		return math.Exp(rng.Float64()*math.Log(100) + math.Log(0.1)) // [0.1, 10]
	}
	diag := make([]float64, n)
	c := sparse.NewCOO(n, n)
	addBranch := func(a, b int) {
		g := cond()
		c.AddSym(a, b, -g)
		diag[a] += g
		diag[b] += g
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if i < nx-1 {
				addBranch(idx(i, j), idx(i+1, j))
			}
			if j < ny-1 {
				addBranch(idx(i, j), idx(i, j+1))
			}
		}
	}
	for e := 0; e < extraEdges; e++ {
		a := rng.IntN(n)
		b := rng.IntN(n)
		if a != b {
			addBranch(a, b)
		}
	}
	const ground = 0.2
	for i := 0; i < n; i++ {
		c.Add(i, i, diag[i]+ground)
	}
	out, _, err := sparse.ScaleUnitDiagonal(c.ToCSR())
	if err != nil {
		panic(fmt.Sprintf("matgen: circuitMatrix scaling: %v", err))
	}
	return out
}
