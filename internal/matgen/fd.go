// Package matgen generates the test matrices used throughout the
// reproduction: finite-difference Laplacians (the paper's "FD"
// matrices), P1 finite-element stiffness matrices on distorted
// triangulations (the paper's "FE" matrix class), and synthetic
// analogues of the seven SuiteSparse problems of Table I.
//
// All generators return symmetric positive (semi)definite matrices
// already scaled to unit diagonal, matching the paper's convention that
// the Jacobi iteration matrix is G = I - A. Generators are
// deterministic: the same parameters always produce the same matrix.
package matgen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/sparse"
)

// Laplace1D returns the unit-diagonal-scaled 1-D three-point Laplacian
// of size n: diagonal 1, off-diagonals -1/2. It is irreducibly weakly
// diagonally dominant with rho(G) = cos(pi/(n+1)) < 1.
func Laplace1D(n int) *sparse.CSR {
	if n < 1 {
		panic("matgen: Laplace1D needs n >= 1")
	}
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
		if i > 0 {
			c.Add(i, i-1, -0.5)
		}
		if i < n-1 {
			c.Add(i, i+1, -0.5)
		}
	}
	return c.ToCSR()
}

// FD2D returns the unit-diagonal-scaled five-point centered-difference
// discretization of the Laplace equation on an nx-by-ny rectangular
// grid with uniform spacing and Dirichlet boundary (the paper's FD
// matrices): diagonal 1, neighbor entries -1/4. The matrix has
// n = nx*ny rows, is irreducibly W.D.D., SPD, and rho(G) < 1.
func FD2D(nx, ny int) *sparse.CSR {
	if nx < 1 || ny < 1 {
		panic("matgen: FD2D needs positive grid dimensions")
	}
	n := nx * ny
	idx := func(i, j int) int { return j*nx + i }
	c := sparse.NewCOO(n, n)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			r := idx(i, j)
			c.Add(r, r, 1)
			if i > 0 {
				c.Add(r, idx(i-1, j), -0.25)
			}
			if i < nx-1 {
				c.Add(r, idx(i+1, j), -0.25)
			}
			if j > 0 {
				c.Add(r, idx(i, j-1), -0.25)
			}
			if j < ny-1 {
				c.Add(r, idx(i, j+1), -0.25)
			}
		}
	}
	return c.ToCSR()
}

// FD2DRhoG returns the exact spectral radius of the Jacobi iteration
// matrix for FD2D(nx, ny):
// rho(G) = (cos(pi/(nx+1)) + cos(pi/(ny+1))) / 2.
// Used as an analytic cross-check for the spectral estimators.
func FD2DRhoG(nx, ny int) float64 {
	return (math.Cos(math.Pi/float64(nx+1)) + math.Cos(math.Pi/float64(ny+1))) / 2
}

// FD3D returns the unit-diagonal-scaled seven-point discretization of
// the 3-D Laplacian on an nx-by-ny-by-nz grid: diagonal 1, neighbor
// entries -1/6. W.D.D., SPD.
func FD3D(nx, ny, nz int) *sparse.CSR {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("matgen: FD3D needs positive grid dimensions")
	}
	n := nx * ny * nz
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	c := sparse.NewCOO(n, n)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				r := idx(i, j, k)
				c.Add(r, r, 1)
				if i > 0 {
					c.Add(r, idx(i-1, j, k), -1.0/6)
				}
				if i < nx-1 {
					c.Add(r, idx(i+1, j, k), -1.0/6)
				}
				if j > 0 {
					c.Add(r, idx(i, j-1, k), -1.0/6)
				}
				if j < ny-1 {
					c.Add(r, idx(i, j+1, k), -1.0/6)
				}
				if k > 0 {
					c.Add(r, idx(i, j, k-1), -1.0/6)
				}
				if k < nz-1 {
					c.Add(r, idx(i, j, k+1), -1.0/6)
				}
			}
		}
	}
	return c.ToCSR()
}

// FD2DHetero returns a unit-diagonal-scaled five-point discretization
// of div(kappa grad u) with a smoothly varying positive coefficient
// field kappa (log-uniform over [1, contrast]) on an nx-by-ny grid.
// The unscaled assembly is irreducibly W.D.D. and SPD; after symmetric
// unit-diagonal scaling most (not necessarily all) rows stay weakly
// dominant and the matrix remains SPD with rho(G) < 1. Heterogeneous
// coefficients shift the spectrum the way heterogeneous physical
// problems (ecology2-like) do.
func FD2DHetero(nx, ny int, contrast float64, seed uint64) *sparse.CSR {
	if nx < 1 || ny < 1 {
		panic("matgen: FD2DHetero needs positive grid dimensions")
	}
	if contrast < 1 {
		panic("matgen: contrast must be >= 1")
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	// Coefficient at cell centers; harmonic-mean face values couple
	// neighboring unknowns.
	kappa := make([]float64, nx*ny)
	logC := math.Log(contrast)
	// Smooth random field: a few random Fourier modes.
	type mode struct{ ax, ay, ph, amp float64 }
	modes := make([]mode, 6)
	for m := range modes {
		modes[m] = mode{
			ax:  (1 + rng.Float64()*3) * math.Pi,
			ay:  (1 + rng.Float64()*3) * math.Pi,
			ph:  rng.Float64() * 2 * math.Pi,
			amp: rng.Float64(),
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			x := (float64(i) + 0.5) / float64(nx)
			y := (float64(j) + 0.5) / float64(ny)
			var s, tot float64
			for _, m := range modes {
				s += m.amp * math.Sin(m.ax*x+m.ph) * math.Cos(m.ay*y)
				tot += m.amp
			}
			// s/tot in [-1, 1] -> kappa in [1, contrast]
			kappa[j*nx+i] = math.Exp((s/tot + 1) / 2 * logC)
		}
	}
	idx := func(i, j int) int { return j*nx + i }
	face := func(a, b float64) float64 { return 2 * a * b / (a + b) } // harmonic mean
	c := sparse.NewCOO(nx*ny, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			r := idx(i, j)
			var diag float64
			add := func(i2, j2 int) {
				w := face(kappa[r], kappa[idx(i2, j2)])
				c.Add(r, idx(i2, j2), -w)
				diag += w
			}
			if i > 0 {
				add(i-1, j)
			}
			if i < nx-1 {
				add(i+1, j)
			}
			if j > 0 {
				add(i, j-1)
			}
			if j < ny-1 {
				add(i, j+1)
			}
			// Boundary faces contribute kappa itself (Dirichlet),
			// keeping the matrix nonsingular and W.D.D. strictly at
			// the boundary.
			bnd := 0
			if i == 0 || i == nx-1 {
				bnd++
			}
			if j == 0 || j == ny-1 {
				bnd++
			}
			diag += float64(bnd) * kappa[r]
			c.Add(r, r, diag)
		}
	}
	out, _, err := sparse.ScaleUnitDiagonal(c.ToCSR())
	if err != nil {
		panic(fmt.Sprintf("matgen: FD2DHetero scaling: %v", err))
	}
	return out
}

// ShiftedGridLaplacian returns a unit-diagonal-scaled matrix
// A = L + shift*I where L is the graph Laplacian of the nx-by-ny grid
// graph with unit weights. Strictly diagonally dominant for shift > 0,
// hence SPD with rho(G) < 1. A building block for the parabolic
// (FD + mass matrix) analogue.
func ShiftedGridLaplacian(nx, ny int, shift float64) *sparse.CSR {
	if shift <= 0 {
		panic("matgen: shift must be positive")
	}
	n := nx * ny
	idx := func(i, j int) int { return j*nx + i }
	c := sparse.NewCOO(n, n)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			r := idx(i, j)
			deg := 0
			if i > 0 {
				c.Add(r, idx(i-1, j), -1)
				deg++
			}
			if i < nx-1 {
				c.Add(r, idx(i+1, j), -1)
				deg++
			}
			if j > 0 {
				c.Add(r, idx(i, j-1), -1)
				deg++
			}
			if j < ny-1 {
				c.Add(r, idx(i, j+1), -1)
				deg++
			}
			c.Add(r, r, float64(deg)+shift)
		}
	}
	out, _, err := sparse.ScaleUnitDiagonal(c.ToCSR())
	if err != nil {
		panic(fmt.Sprintf("matgen: ShiftedGridLaplacian scaling: %v", err))
	}
	return out
}

// RandomWDD returns a random unit-diagonal weakly diagonally dominant
// symmetric matrix of size n with roughly nnzPerRow off-diagonal
// entries per row. Row i's off-diagonal magnitudes sum to exactly
// dominance (<= 1), making the matrix W.D.D. (strictly if
// dominance < 1). Used by property tests of Theorem 1.
func RandomWDD(n, nnzPerRow int, dominance float64, seed uint64) *sparse.CSR {
	if dominance < 0 || dominance > 1 {
		panic("matgen: dominance must be in [0,1]")
	}
	rng := rand.New(rand.NewPCG(seed, 0xdeadbeef))
	// Build a symmetric pattern: for each row pick partners > i.
	type pair struct{ i, j int }
	var edges []pair
	for i := 0; i < n; i++ {
		for e := 0; e < nnzPerRow; e++ {
			j := rng.IntN(n)
			if j != i {
				if i < j {
					edges = append(edges, pair{i, j})
				} else {
					edges = append(edges, pair{j, i})
				}
			}
		}
	}
	// Assign random magnitudes and signs, then normalise each row's
	// off-diagonal absolute sum to dominance by a symmetric scaling
	// pass (divide each edge weight by the max of its two row sums
	// times 1/dominance).
	w := make([]float64, len(edges))
	rowAbs := make([]float64, n)
	for k, e := range edges {
		w[k] = rng.NormFloat64()
		rowAbs[e.i] += math.Abs(w[k])
		rowAbs[e.j] += math.Abs(w[k])
	}
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
	}
	for k, e := range edges {
		if w[k] == 0 {
			continue
		}
		denom := math.Max(rowAbs[e.i], rowAbs[e.j])
		v := w[k] / denom * dominance
		c.AddSym(e.i, e.j, v)
	}
	return c.ToCSR()
}
