package matgen

import (
	"testing"

	"repro/internal/spectral"
)

// Table I invariants: every analogue is symmetric, unit-diagonal, SPD,
// and synchronous Jacobi converges exactly when the paper says it does
// (all but Dubcova2).
func TestSuiteProblemsProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation is slow in -short mode")
	}
	probs := SuiteProblems()
	if len(probs) != 7 {
		t.Fatalf("expected 7 Table I problems, got %d", len(probs))
	}
	names := map[string]bool{}
	for _, p := range probs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if names[p.Name] {
				t.Fatal("duplicate problem name")
			}
			names[p.Name] = true
			a := p.A
			if a.N < 1000 {
				t.Fatalf("problem too small: n=%d", a.N)
			}
			if !a.IsSymmetric(1e-10) {
				t.Fatal("not symmetric")
			}
			if !a.HasUnitDiagonal(1e-10) {
				t.Fatal("diagonal not unit")
			}
			lo, _ := spectral.LanczosExtremes(a, 400, 1e-11)
			if lo.Value <= 0 {
				t.Fatalf("lambda_min = %g: not SPD", lo.Value)
			}
			rho := spectral.JacobiRhoGLanczos(a, 400, 1e-11)
			if p.JacobiConverges && rho.Value >= 1 {
				t.Fatalf("rho(G) = %g >= 1 but problem marked convergent", rho.Value)
			}
			if !p.JacobiConverges && rho.Value <= 1 {
				t.Fatalf("rho(G) = %g <= 1 but problem marked divergent", rho.Value)
			}
			if p.PaperN <= 0 || p.PaperNNZ <= 0 {
				t.Fatal("missing Table I metadata")
			}
		})
	}
}

func TestConvergentSuiteExcludesDubcova(t *testing.T) {
	conv := ConvergentSuiteProblems()
	if len(conv) != 6 {
		t.Fatalf("expected 6 convergent problems, got %d", len(conv))
	}
	for _, p := range conv {
		if p.Name == "Dubcova2" {
			t.Fatal("Dubcova2 must not be in the convergent set")
		}
	}
}

// Paper Table I ordering: descending nonzero count.
func TestSuiteOrderedLikeTableI(t *testing.T) {
	probs := SuiteProblems()
	for i := 1; i < len(probs); i++ {
		if probs[i].PaperNNZ > probs[i-1].PaperNNZ {
			t.Fatalf("Table I order violated at %s", probs[i].Name)
		}
	}
}
