package matgen

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/sparse"
)

// FEOptions controls the distorted-triangulation finite-element
// generator. The paper's FE matrix is an unstructured P1 discretization
// of the Laplace equation on a square: SPD, not weakly diagonally
// dominant (about half the rows are W.D.D.), with rho(G) > 1 so that
// synchronous Jacobi diverges.
//
// We reproduce that class by triangulating a structured
// (nx+1)x(ny+1) point grid (two triangles per cell) and then jittering
// the interior vertex positions. Distorted, obtuse triangles produce
// positive off-diagonal stiffness entries, which destroys diagonal
// dominance and pushes the largest eigenvalue of D^{-1}A above 2.
type FEOptions struct {
	NX, NY int     // cells per side; unknowns = (NX-1)*(NY-1) interior points
	Jitter float64 // vertex displacement as a fraction of cell size, in [0, 0.5)
	// Anisotropy stretches the y-coordinate jitter, producing thin
	// obtuse triangles; 1 means isotropic.
	Anisotropy float64
	// Shift adds Shift*diag(A) to the assembled stiffness matrix (a
	// lumped mass / reaction term) before unit-diagonal scaling. After
	// scaling this maps eigenvalues lambda of the shift-free scaled
	// system to (lambda+Shift)/(1+Shift), pulling rho(G) toward zero:
	// it turns a divergent FE matrix into a convergent one while
	// preserving the FE sparsity and sign structure.
	Shift float64
	Seed  uint64
}

// DefaultFEOptions mirror the paper's FE matrix regime: enough
// distortion that the assembled matrix loses weak diagonal dominance on
// roughly half its rows and rho(G) > 1 (moderately, rho(G) ~ 1.05, so
// that asynchronous Jacobi at high concurrency can still converge as in
// the paper's Fig 6).
func DefaultFEOptions(nx, ny int) FEOptions {
	return FEOptions{NX: nx, NY: ny, Jitter: 0.25, Anisotropy: 1.0, Seed: 2018}
}

// FE2D assembles the P1 stiffness matrix for -Laplace(u) = f with
// homogeneous Dirichlet boundary on a jittered triangulation of the
// unit square, eliminates boundary nodes, and returns the
// unit-diagonal-scaled interior system. The result is SPD.
func FE2D(opt FEOptions) *sparse.CSR {
	nx, ny := opt.NX, opt.NY
	if nx < 2 || ny < 2 {
		panic("matgen: FE2D needs at least a 2x2 cell grid")
	}
	if opt.Jitter < 0 || opt.Jitter >= 0.5 {
		panic("matgen: FE2D jitter must be in [0, 0.5)")
	}
	aniso := opt.Anisotropy
	if aniso <= 0 {
		aniso = 1
	}
	rng := rand.New(rand.NewPCG(opt.Seed, 0x5ca1ab1e))

	// Vertex coordinates: structured grid + jitter on interior points.
	np := (nx + 1) * (ny + 1)
	px := make([]float64, np)
	py := make([]float64, np)
	pid := func(i, j int) int { return j*(nx+1) + i }
	hx, hy := 1.0/float64(nx), 1.0/float64(ny)
	for j := 0; j <= ny; j++ {
		for i := 0; i <= nx; i++ {
			p := pid(i, j)
			px[p] = float64(i) * hx
			py[p] = float64(j) * hy
			if i > 0 && i < nx && j > 0 && j < ny {
				px[p] += (rng.Float64()*2 - 1) * opt.Jitter * hx
				jy := opt.Jitter * aniso
				if jy > 0.49 {
					jy = 0.49
				}
				py[p] += (rng.Float64()*2 - 1) * jy * hy
			}
		}
	}

	// Interior unknown numbering (Dirichlet boundary eliminated).
	unk := make([]int, np)
	for p := range unk {
		unk[p] = -1
	}
	n := 0
	for j := 1; j < ny; j++ {
		for i := 1; i < nx; i++ {
			unk[pid(i, j)] = n
			n++
		}
	}

	coo := sparse.NewCOO(n, n)
	// Assemble each cell's two triangles. Alternate the diagonal
	// direction per cell parity ("criss-cross"), which together with
	// jitter produces a genuinely unstructured-looking connectivity.
	addTri := func(p0, p1, p2 int) {
		x0, y0 := px[p0], py[p0]
		x1, y1 := px[p1], py[p1]
		x2, y2 := px[p2], py[p2]
		det := (x1-x0)*(y2-y0) - (x2-x0)*(y1-y0)
		area2 := det // twice the signed area
		if area2 < 0 {
			area2 = -area2
		}
		if area2 == 0 {
			panic("matgen: degenerate triangle in FE2D")
		}
		// Gradients of the barycentric basis functions.
		bx := [3]float64{y1 - y2, y2 - y0, y0 - y1}
		by := [3]float64{x2 - x1, x0 - x2, x1 - x0}
		pidx := [3]int{p0, p1, p2}
		for a := 0; a < 3; a++ {
			ua := unk[pidx[a]]
			if ua < 0 {
				continue
			}
			for b := 0; b < 3; b++ {
				ub := unk[pidx[b]]
				if ub < 0 {
					continue
				}
				k := (bx[a]*bx[b] + by[a]*by[b]) / (2 * area2)
				coo.Add(ua, ub, k)
			}
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			p00 := pid(i, j)
			p10 := pid(i+1, j)
			p01 := pid(i, j+1)
			p11 := pid(i+1, j+1)
			if (i+j)%2 == 0 {
				addTri(p00, p10, p11)
				addTri(p00, p11, p01)
			} else {
				addTri(p00, p10, p01)
				addTri(p10, p11, p01)
			}
		}
	}
	a := coo.ToCSR()
	if opt.Shift != 0 {
		if opt.Shift < 0 {
			panic("matgen: FE2D shift must be non-negative")
		}
		for i := 0; i < a.N; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if a.Col[k] == i {
					a.Val[k] *= 1 + opt.Shift
				}
			}
		}
	}
	out, _, err := sparse.ScaleUnitDiagonal(a)
	if err != nil {
		panic(fmt.Sprintf("matgen: FE2D scaling: %v", err))
	}
	return out
}

// FEPaper returns an FE matrix in the regime of the paper's shared-
// memory divergence experiment (Fig 6: n = 3081, about 21k nonzeros,
// rho(G) > 1). A 57x57-cell distorted mesh yields n = 56*56 = 3136
// interior unknowns, the closest square to the paper's 3081.
func FEPaper() *sparse.CSR {
	return FE2D(DefaultFEOptions(57, 57))
}
