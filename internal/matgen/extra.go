package matgen

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// FD2DAniso returns the unit-diagonal-scaled five-point discretization
// of -(u_xx + eps*u_yy) on an nx-by-ny grid: the anisotropic model
// problem. Point-Jacobi's spectral radius is famously insensitive to
// eps (it stays cos(pi/(nx+1))-ish for square grids), but the coupling
// becomes essentially one-dimensional along x, which makes partition
// orientation matter: strip subdomains across the strong direction cut
// heavy couplings, along it almost none. The matrix stays irreducibly
// W.D.D. and SPD.
func FD2DAniso(nx, ny int, eps float64) *sparse.CSR {
	if nx < 1 || ny < 1 {
		panic("matgen: FD2DAniso needs positive grid dimensions")
	}
	if eps <= 0 {
		panic("matgen: anisotropy eps must be positive")
	}
	n := nx * ny
	idx := func(i, j int) int { return j*nx + i }
	diag := 2 + 2*eps
	c := sparse.NewCOO(n, n)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			r := idx(i, j)
			c.Add(r, r, 1)
			if i > 0 {
				c.Add(r, idx(i-1, j), -1/diag)
			}
			if i < nx-1 {
				c.Add(r, idx(i+1, j), -1/diag)
			}
			if j > 0 {
				c.Add(r, idx(i, j-1), -eps/diag)
			}
			if j < ny-1 {
				c.Add(r, idx(i, j+1), -eps/diag)
			}
		}
	}
	return c.ToCSR()
}

// FD2D9 returns the unit-diagonal-scaled nine-point (Moore stencil)
// discretization of the Laplacian on an nx-by-ny grid: the compact
// fourth-order stencil with weights -4 (edge neighbors) and -1 (corner
// neighbors) against a 20 diagonal. W.D.D., SPD, denser coupling than
// the five-point stencil (up to 8 off-diagonals per row), which stresses
// ghost-layer construction with diagonal neighbor subdomains.
func FD2D9(nx, ny int) *sparse.CSR {
	if nx < 1 || ny < 1 {
		panic("matgen: FD2D9 needs positive grid dimensions")
	}
	n := nx * ny
	idx := func(i, j int) int { return j*nx + i }
	c := sparse.NewCOO(n, n)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			r := idx(i, j)
			c.Add(r, r, 1)
			for dj := -1; dj <= 1; dj++ {
				for di := -1; di <= 1; di++ {
					if di == 0 && dj == 0 {
						continue
					}
					i2, j2 := i+di, j+dj
					if i2 < 0 || i2 >= nx || j2 < 0 || j2 >= ny {
						continue
					}
					w := 4.0
					if di != 0 && dj != 0 {
						w = 1.0
					}
					c.Add(r, idx(i2, j2), -w/20)
				}
			}
		}
	}
	return c.ToCSR()
}

// RingLaplacian returns the unit-diagonal-scaled shifted Laplacian of
// the n-cycle: diagonal 1, neighbors -1/(2+shift) (wrap-around). Its
// Jacobi iteration matrix is a circulant with eigenvalues
// 2*cos(2*pi*k/n)/(2+shift), known in closed form — handy for exact
// spectral cross-checks.
func RingLaplacian(n int, shift float64) *sparse.CSR {
	if n < 3 {
		panic("matgen: RingLaplacian needs n >= 3")
	}
	if shift < 0 {
		panic("matgen: shift must be non-negative")
	}
	c := sparse.NewCOO(n, n)
	w := -1 / (2 + shift)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
		c.Add(i, (i+1)%n, w)
		c.Add(i, (i+n-1)%n, w)
	}
	return c.ToCSR()
}

// RingRhoG returns the exact spectral radius of the Jacobi iteration
// matrix for RingLaplacian(n, shift): max_k |2 cos(2 pi k / n)| / (2+shift)
// over k = 0..n-1, which is 2/(2+shift) (attained at k = 0).
func RingRhoG(n int, shift float64) float64 {
	_ = n
	return 2 / (2 + shift)
}

// Stretched returns a unit-diagonal-scaled FD Laplacian on a grid whose
// cell widths grow geometrically by factor g per column — a graded
// mesh. SPD and W.D.D.; grading skews the off-diagonal weights the way
// boundary-layer meshes do.
func Stretched(nx, ny int, g float64) *sparse.CSR {
	if nx < 1 || ny < 1 {
		panic("matgen: Stretched needs positive grid dimensions")
	}
	if g <= 0 {
		panic("matgen: grading factor must be positive")
	}
	// Cell widths along x: h_i = g^i; uniform along y.
	hx := make([]float64, nx+1)
	for i := range hx {
		hx[i] = math.Pow(g, float64(i))
	}
	idx := func(i, j int) int { return j*nx + i }
	n := nx * ny
	c := sparse.NewCOO(n, n)
	diag := make([]float64, n)
	addSym := func(r, q int, w float64) {
		c.AddSym(r, q, -w)
		diag[r] += w
		diag[q] += w
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			r := idx(i, j)
			if i < nx-1 {
				addSym(r, idx(i+1, j), 2/(hx[i]+hx[i+1]))
			}
			if j < ny-1 {
				addSym(r, idx(i, j+1), 1)
			}
			// Dirichlet boundary contributions keep A nonsingular.
			if i == 0 {
				diag[r] += 2 / (2 * hx[0])
			}
			if i == nx-1 {
				diag[r] += 2 / (2 * hx[nx])
			}
			if j == 0 || j == ny-1 {
				diag[r]++
			}
		}
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, diag[i])
	}
	out, _, err := sparse.ScaleUnitDiagonal(c.ToCSR())
	if err != nil {
		panic(fmt.Sprintf("matgen: Stretched scaling: %v", err))
	}
	return out
}
