// Package dense provides small dense-matrix linear algebra for the
// propagation-matrix model and for verification: matrix products,
// induced norms, LU solves, a symmetric eigensolver (Householder
// tridiagonalisation followed by implicit-shift QL), and power
// iteration for spectral radii of general matrices.
//
// These routines back the paper's analysis machinery — forming explicit
// propagation matrices Ĝ(k), Ĥ(k), checking Theorem 1, and verifying
// eigenvalue interlacing for principal submatrices — on model-sized
// problems (n up to a few thousand). They are deliberately simple,
// allocation-friendly implementations, not tuned BLAS.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("dense: negative dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n-by-n identity.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices (copied).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("dense: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a sub-slice of the backing storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec computes y = m x.
func (m *Matrix) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("dense: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("dense: Add shape mismatch")
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("dense: Sub shape mismatch")
	}
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// Scale multiplies every entry by alpha in place and returns m.
func (m *Matrix) Scale(alpha float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
	return m
}

// NormInf returns the induced infinity norm (max absolute row sum).
func (m *Matrix) NormInf() float64 {
	var mx float64
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Norm1 returns the induced 1-norm (max absolute column sum).
func (m *Matrix) Norm1() float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			sums[j] += math.Abs(v)
		}
	}
	var mx float64
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormFrob returns the Frobenius norm.
func (m *Matrix) NormFrob() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// IsSymmetric reports whether m is symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Submatrix extracts the principal submatrix on the given index set
// (order preserved).
func (m *Matrix) Submatrix(idx []int) *Matrix {
	out := New(len(idx), len(idx))
	for a, i := range idx {
		for b, j := range idx {
			out.Set(a, b, m.At(i, j))
		}
	}
	return out
}
