package dense

import (
	"fmt"
	"math"
	"sort"
)

// SymEig computes all eigenvalues of a symmetric matrix, returned in
// ascending order. It uses Householder reduction to tridiagonal form
// followed by the implicit-shift QL algorithm — the classic dense
// symmetric eigensolver. Eigenvectors are not computed (the model only
// needs spectra for interlacing and norm arguments).
func SymEig(a *Matrix) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: SymEig needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-10 * (1 + a.MaxAbs())) {
		return nil, fmt.Errorf("dense: SymEig called on non-symmetric matrix")
	}
	n := a.Rows
	if n == 0 {
		return nil, nil
	}
	d, e := tridiagonalize(a.Clone())
	if err := tqli(d, e); err != nil {
		return nil, err
	}
	sort.Float64s(d)
	return d, nil
}

// tridiagonalize reduces symmetric a to tridiagonal form in place via
// Householder reflections, returning the diagonal d and subdiagonal e
// (e[0] unused). Follows the standard "tred2" formulation without
// accumulating transforms.
func tridiagonalize(a *Matrix) (d, e []float64) {
	n := a.Rows
	d = make([]float64, n)
	e = make([]float64, n)
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a.At(i, k))
			}
			if scale == 0 {
				e[i] = a.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					a.Set(i, k, a.At(i, k)/scale)
					h += a.At(i, k) * a.At(i, k)
				}
				f := a.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				a.Set(i, l, f-g)
				var f2 float64
				for j := 0; j <= l; j++ {
					g = 0
					for k := 0; k <= j; k++ {
						g += a.At(j, k) * a.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += a.At(k, j) * a.At(i, k)
					}
					e[j] = g / h
					f2 += e[j] * a.At(i, j)
				}
				hh := f2 / (h + h)
				for j := 0; j <= l; j++ {
					f = a.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						a.Set(j, k, a.At(j, k)-f*e[k]-g*a.At(i, k))
					}
				}
			}
		} else {
			e[i] = a.At(i, l)
		}
		d[i] = h
	}
	e[0] = 0
	for i := 0; i < n; i++ {
		d[i] = a.At(i, i)
	}
	return d, e
}

// tqli runs the implicit-shift QL algorithm on a symmetric tridiagonal
// matrix with diagonal d and subdiagonal e (e[0] unused). On return d
// holds the eigenvalues (unsorted).
func tqli(d, e []float64) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter >= 50 {
				return fmt.Errorf("dense: QL failed to converge at index %d", l)
			}
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64*dd || math.Abs(e[m])+dd == dd {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// SpectralRadiusSym returns max |lambda| for a symmetric matrix, via
// the full eigendecomposition.
func SpectralRadiusSym(a *Matrix) (float64, error) {
	ev, err := SymEig(a)
	if err != nil {
		return 0, err
	}
	var r float64
	for _, l := range ev {
		if x := math.Abs(l); x > r {
			r = x
		}
	}
	return r, nil
}

// PowerIteration estimates the spectral radius of a general square
// matrix by power iteration from a deterministic pseudo-random start
// vector. It returns the dominant |eigenvalue| estimate and the number
// of iterations used. For matrices whose dominant eigenvalue is complex
// or defective convergence may be slow; maxIter bounds the work and the
// best estimate so far is returned.
func PowerIteration(a *Matrix, maxIter int, tol float64) (float64, int) {
	n := a.Rows
	if n == 0 {
		return 0, 0
	}
	x := make([]float64, n)
	// Deterministic non-degenerate start: varies by index so it is not
	// orthogonal to common dominant eigenvectors.
	for i := range x {
		x[i] = 1 + 0.5*math.Sin(float64(3*i+1))
	}
	y := make([]float64, n)
	var lambda, prev float64
	for it := 1; it <= maxIter; it++ {
		a.MulVec(y, x)
		// Normalize in infinity norm; the scale factor estimates |lambda|.
		var mx float64
		for _, v := range y {
			if av := math.Abs(v); av > mx {
				mx = av
			}
		}
		if mx == 0 {
			return 0, it // a x = 0: start vector in nullspace; radius 0 estimate
		}
		lambda = mx
		for i := range y {
			x[i] = y[i] / mx
		}
		if it > 1 && math.Abs(lambda-prev) <= tol*math.Abs(lambda) {
			return lambda, it
		}
		prev = lambda
	}
	return lambda, maxIter
}

// LUSolve solves a x = b by Gaussian elimination with partial pivoting,
// overwriting nothing (a and b are copied). Returns an error when the
// matrix is singular to working precision.
func LUSolve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("dense: LUSolve dimension mismatch")
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// partial pivot
		p, pmax := k, math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(m.At(i, k)); a > pmax {
				p, pmax = i, a
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("dense: singular matrix in LUSolve at column %d", k)
		}
		if p != k {
			mi, mk := m.Row(p), m.Row(k)
			for j := 0; j < n; j++ {
				mi[j], mk[j] = mk[j], mi[j]
			}
			x[p], x[k] = x[k], x[p]
		}
		piv := m.At(k, k)
		for i := k + 1; i < n; i++ {
			f := m.At(i, k) / piv
			if f == 0 {
				continue
			}
			ri, rk := m.Row(i), m.Row(k)
			for j := k; j < n; j++ {
				ri[j] -= f * rk[j]
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := m.Row(i)
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x, nil
}

// Interlaces reports whether the eigenvalues mu of an m-by-m principal
// submatrix interlace the eigenvalues lambda of the parent n-by-n
// symmetric matrix per Cauchy's theorem:
// lambda_i <= mu_i <= lambda_{i+n-m} (both ascending, 0-based), within
// tolerance tol.
func Interlaces(lambda, mu []float64, tol float64) bool {
	n, m := len(lambda), len(mu)
	if m > n {
		return false
	}
	for i := 0; i < m; i++ {
		if mu[i] < lambda[i]-tol || mu[i] > lambda[i+n-m]+tol {
			return false
		}
	}
	return true
}
