package dense

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestSymEigVecMatchesSymEig(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.IntN(12)
		a := randSym(rng, n)
		want, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := SymEigVec(a)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
				t.Fatalf("eig[%d] = %.12f, QL says %.12f", k, got[k], want[k])
			}
		}
	}
}

// A v_k = lambda_k v_k and V^T V = I.
func TestSymEigVecResidualAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	n := 10
	a := randSym(rng, n)
	evals, v, err := SymEigVec(a)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = v.At(i, k)
		}
		av := make([]float64, n)
		a.MulVec(av, col)
		for i := 0; i < n; i++ {
			if math.Abs(av[i]-evals[k]*col[i]) > 1e-9*(1+math.Abs(evals[k])) {
				t.Fatalf("eigpair %d residual %g at row %d", k, av[i]-evals[k]*col[i], i)
			}
		}
	}
	vtv := Mul(v.T(), v)
	if Sub(vtv, Identity(n)).MaxAbs() > 1e-10 {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestSymEigVecRejectsAsymmetric(t *testing.T) {
	if _, _, err := SymEigVec(FromRows([][]float64{{1, 2}, {3, 4}})); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

func TestSymEigVecEmpty(t *testing.T) {
	evals, v, err := SymEigVec(New(0, 0))
	if err != nil || len(evals) != 0 || v.Rows != 0 {
		t.Fatal("empty matrix mishandled")
	}
}

func TestNullspace(t *testing.T) {
	// Graph Laplacian of a path: nullspace = span(ones).
	n := 6
	m := New(n, n)
	for i := 0; i < n; i++ {
		deg := 0.0
		if i > 0 {
			m.Set(i, i-1, -1)
			deg++
		}
		if i < n-1 {
			m.Set(i, i+1, -1)
			deg++
		}
		m.Set(i, i, deg)
	}
	ns, err := Nullspace(m, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Cols != 1 {
		t.Fatalf("nullity = %d, want 1", ns.Cols)
	}
	// The basis vector is proportional to ones.
	first := ns.At(0, 0)
	if first == 0 {
		t.Fatal("degenerate nullspace vector")
	}
	for i := 1; i < n; i++ {
		if math.Abs(ns.At(i, 0)-first) > 1e-9 {
			t.Fatalf("nullspace vector not constant: %g vs %g", ns.At(i, 0), first)
		}
	}
	// Nonsingular matrix: empty nullspace.
	id := Identity(4)
	ns2, err := Nullspace(id, 1e-12)
	if err != nil || ns2.Cols != 0 {
		t.Fatalf("identity nullspace cols = %d", ns2.Cols)
	}
}

func BenchmarkSymEigVec32(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := randSym(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEigVec(a); err != nil {
			b.Fatal(err)
		}
	}
}
