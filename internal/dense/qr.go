package dense

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Eig computes all eigenvalues of a general real square matrix via
// Householder reduction to upper Hessenberg form followed by the
// Francis implicit double-shift QR iteration. Complex eigenvalues come
// out in conjugate pairs. The result is unordered.
//
// The asynchronous propagation matrices Ĝ(k) and Ĥ(k) are genuinely
// non-symmetric (delayed rows replace symmetric rows with unit basis
// vectors), so verifying rho(Ĝ) exactly — not just by power iteration —
// needs a general eigensolver.
func Eig(a *Matrix) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: Eig needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return nil, nil
	}
	h := a.Clone()
	hessenberg(h)
	return hqr(h)
}

// SpectralRadius returns max |lambda| over the full (possibly complex)
// spectrum of a general real matrix.
func SpectralRadius(a *Matrix) (float64, error) {
	ev, err := Eig(a)
	if err != nil {
		return 0, err
	}
	var r float64
	for _, l := range ev {
		if m := cmplx.Abs(l); m > r {
			r = m
		}
	}
	return r, nil
}

// hessenberg reduces m in place to upper Hessenberg form by Householder
// reflections (similarity transforms, spectrum preserved).
func hessenberg(m *Matrix) {
	n := m.Rows
	for k := 0; k < n-2; k++ {
		// Build the reflector annihilating column k below row k+1.
		var scale float64
		for i := k + 1; i < n; i++ {
			scale += math.Abs(m.At(i, k))
		}
		if scale == 0 {
			continue
		}
		var h float64
		v := make([]float64, n) // reflector, nonzero in rows k+1..n-1
		for i := k + 1; i < n; i++ {
			v[i] = m.At(i, k) / scale
			h += v[i] * v[i]
		}
		g := math.Sqrt(h)
		if v[k+1] > 0 {
			g = -g
		}
		h -= v[k+1] * g
		v[k+1] -= g
		if h == 0 {
			continue
		}
		// Apply (I - v v^T / h) from the left: rows k+1..n-1.
		for j := 0; j < n; j++ {
			var f float64
			for i := k + 1; i < n; i++ {
				f += v[i] * m.At(i, j)
			}
			f /= h
			for i := k + 1; i < n; i++ {
				m.Set(i, j, m.At(i, j)-f*v[i])
			}
		}
		// Apply from the right: columns k+1..n-1.
		for i := 0; i < n; i++ {
			var f float64
			for j := k + 1; j < n; j++ {
				f += v[j] * m.At(i, j)
			}
			f /= h
			for j := k + 1; j < n; j++ {
				m.Set(i, j, m.At(i, j)-f*v[j])
			}
		}
		m.Set(k+1, k, scale*g)
		for i := k + 2; i < n; i++ {
			m.Set(i, k, 0)
		}
	}
}

// hqr runs the Francis double-shift QR algorithm on an upper Hessenberg
// matrix, returning its eigenvalues. Adapted from the classic "hqr"
// formulation (Numerical Recipes / EISPACK lineage).
func hqr(m *Matrix) ([]complex128, error) {
	n := m.Rows
	ev := make([]complex128, 0, n)
	var anorm float64
	for i := 0; i < n; i++ {
		for j := max(i-1, 0); j < n; j++ {
			anorm += math.Abs(m.At(i, j))
		}
	}
	nn := n - 1
	t := 0.0
	for nn >= 0 {
		its := 0
		var l int
		for {
			// Look for a small subdiagonal element.
			for l = nn; l >= 1; l-- {
				s := math.Abs(m.At(l-1, l-1)) + math.Abs(m.At(l, l))
				if s == 0 {
					s = anorm
				}
				if math.Abs(m.At(l, l-1))+s == s {
					m.Set(l, l-1, 0)
					break
				}
			}
			x := m.At(nn, nn)
			if l == nn {
				// One real eigenvalue.
				ev = append(ev, complex(x+t, 0))
				nn--
				break
			}
			y := m.At(nn-1, nn-1)
			w := m.At(nn, nn-1) * m.At(nn-1, nn)
			if l == nn-1 {
				// A 2x2 block: two eigenvalues.
				p := 0.5 * (y - x)
				q := p*p + w
				z := math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 {
					if p >= 0 {
						z = p + z
					} else {
						z = p - z
					}
					ev = append(ev, complex(x+z, 0))
					if z != 0 {
						ev = append(ev, complex(x-w/z, 0))
					} else {
						ev = append(ev, complex(x+z, 0))
					}
				} else {
					ev = append(ev, complex(x+p, z), complex(x+p, -z))
				}
				nn -= 2
				break
			}
			// No convergence yet: QR step.
			if its == 60 {
				return nil, fmt.Errorf("dense: QR failed to converge at block %d", nn)
			}
			if its == 10 || its == 20 {
				// Exceptional shift.
				t += x
				for i := 0; i <= nn; i++ {
					m.Set(i, i, m.At(i, i)-x)
				}
				s := math.Abs(m.At(nn, nn-1)) + math.Abs(m.At(nn-1, nn-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			// Form shift and look for two consecutive small
			// subdiagonal elements.
			var mIdx int
			var p, q, r float64
			for mIdx = nn - 2; mIdx >= l; mIdx-- {
				z := m.At(mIdx, mIdx)
				rr := x - z
				ss := y - z
				p = (rr*ss-w)/m.At(mIdx+1, mIdx) + m.At(mIdx, mIdx+1)
				q = m.At(mIdx+1, mIdx+1) - z - rr - ss
				r = m.At(mIdx+2, mIdx+1)
				ss = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= ss
				q /= ss
				r /= ss
				if mIdx == l {
					break
				}
				u := math.Abs(m.At(mIdx, mIdx-1)) * (math.Abs(q) + math.Abs(r))
				v := math.Abs(p) * (math.Abs(m.At(mIdx-1, mIdx-1)) +
					math.Abs(m.At(mIdx, mIdx)) + math.Abs(m.At(mIdx+1, mIdx+1)))
				if u+v == v {
					break
				}
			}
			for i := mIdx + 2; i <= nn; i++ {
				m.Set(i, i-2, 0)
				if i != mIdx+2 {
					m.Set(i, i-3, 0)
				}
			}
			// Double QR step on rows l..nn and columns mIdx..nn.
			for k := mIdx; k <= nn-1; k++ {
				if k != mIdx {
					p = m.At(k, k-1)
					q = m.At(k+1, k-1)
					r = 0
					if k != nn-1 {
						r = m.At(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x != 0 {
						p /= x
						q /= x
						r /= x
					}
				}
				s := math.Sqrt(p*p + q*q + r*r)
				if p < 0 {
					s = -s
				}
				if s == 0 {
					continue
				}
				if k == mIdx {
					if l != mIdx {
						m.Set(k, k-1, -m.At(k, k-1))
					}
				} else {
					m.Set(k, k-1, -s*x)
				}
				p += s
				x = p / s
				y = q / s
				z := r / s
				q /= p
				r /= p
				// Row modification.
				for j := k; j <= nn; j++ {
					pp := m.At(k, j) + q*m.At(k+1, j)
					if k != nn-1 {
						pp += r * m.At(k+2, j)
						m.Set(k+2, j, m.At(k+2, j)-pp*z)
					}
					m.Set(k+1, j, m.At(k+1, j)-pp*y)
					m.Set(k, j, m.At(k, j)-pp*x)
				}
				// Column modification.
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				for i := l; i <= mmin; i++ {
					pp := x*m.At(i, k) + y*m.At(i, k+1)
					if k != nn-1 {
						pp += z * m.At(i, k+2)
						m.Set(i, k+2, m.At(i, k+2)-pp*r)
					}
					m.Set(i, k+1, m.At(i, k+1)-pp*q)
					m.Set(i, k, m.At(i, k)-pp)
				}
			}
		}
	}
	return ev, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
