package dense

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randSym(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := randSym(rng, 5)
	i5 := Identity(5)
	b := Mul(a, i5)
	c := Mul(i5, a)
	for k := range a.Data {
		if a.Data[k] != b.Data[k] || a.Data[k] != c.Data[k] {
			t.Fatal("identity multiplication changed matrix")
		}
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a, b, c := randSym(rng, 6), randSym(rng, 6), randSym(rng, 6)
	lhs := Mul(Mul(a, b), c)
	rhs := Mul(a, Mul(b, c))
	if Sub(lhs, rhs).MaxAbs() > 1e-10 {
		t.Fatal("matrix product not associative within tolerance")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randSym(rng, 7)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 7)
	a.MulVec(y, x)
	xm := New(7, 1)
	copy(xm.Data, x)
	ym := Mul(a, xm)
	for i := range y {
		if math.Abs(y[i]-ym.At(i, 0)) > 1e-12 {
			t.Fatal("MulVec disagrees with Mul")
		}
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 || mt.At(0, 1) != 4 || mt.At(2, 0) != 3 {
		t.Fatal("transpose wrong")
	}
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {3, 4}})
	if m.NormInf() != 7 {
		t.Fatalf("NormInf = %g", m.NormInf())
	}
	if m.Norm1() != 6 {
		t.Fatalf("Norm1 = %g", m.Norm1())
	}
	if math.Abs(m.NormFrob()-math.Sqrt(30)) > 1e-14 {
		t.Fatalf("NormFrob = %g", m.NormFrob())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %g", m.MaxAbs())
	}
}

func TestSubmatrix(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Submatrix([]int{0, 2})
	if s.At(0, 0) != 1 || s.At(0, 1) != 3 || s.At(1, 0) != 7 || s.At(1, 1) != 9 {
		t.Fatal("Submatrix wrong")
	}
}

// SymEig on the 1-D Laplacian has the analytic spectrum
// 2 - 2 cos(k pi/(n+1)), k = 1..n.
func TestSymEigLaplacian(t *testing.T) {
	n := 12
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 2)
		if i > 0 {
			m.Set(i, i-1, -1)
			m.Set(i-1, i, -1)
		}
	}
	ev, err := SymEig(m)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(ev[k-1]-want) > 1e-10 {
			t.Fatalf("eig[%d] = %.12f want %.12f", k-1, ev[k-1], want)
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	m := New(4, 4)
	vals := []float64{3, -1, 7, 0}
	for i, v := range vals {
		m.Set(i, i, v)
	}
	ev, err := SymEig(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 0, 3, 7}
	for i := range want {
		if math.Abs(ev[i]-want[i]) > 1e-12 {
			t.Fatalf("ev = %v", ev)
		}
	}
}

func TestSymEigRejectsAsymmetric(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymEig(m); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

// Property: trace(A) == sum of eigenvalues; Frobenius norm squared ==
// sum of squared eigenvalues (both for symmetric A).
func TestSymEigTraceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.IntN(14)
		a := randSym(rng, n)
		ev, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		var tr, evs, ev2 float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		for _, l := range ev {
			evs += l
			ev2 += l * l
		}
		if math.Abs(tr-evs) > 1e-9*(1+math.Abs(tr)) {
			t.Fatalf("trace %.12g != eig sum %.12g", tr, evs)
		}
		f2 := a.NormFrob()
		if math.Abs(f2*f2-ev2) > 1e-8*(1+f2*f2) {
			t.Fatalf("frob^2 %.12g != eig^2 sum %.12g", f2*f2, ev2)
		}
	}
}

// Cauchy interlacing: eigenvalues of principal submatrices interlace.
func TestInterlacingProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.IntN(10)
		a := randSym(rng, n)
		lambda, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		// Random index subset of size m.
		m := 1 + rng.IntN(n-1)
		perm := rng.Perm(n)[:m]
		sub := a.Submatrix(perm)
		mu, err := SymEig(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !Interlaces(lambda, mu, 1e-8) {
			t.Fatalf("interlacing violated: lambda=%v mu=%v", lambda, mu)
		}
	}
}

func TestInterlacesRejects(t *testing.T) {
	if Interlaces([]float64{0, 1}, []float64{2}, 1e-12) {
		t.Fatal("out-of-range mu accepted")
	}
	if Interlaces([]float64{0}, []float64{0, 1}, 1e-12) {
		t.Fatal("m > n accepted")
	}
}

func TestPowerIterationSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.IntN(10)
		a := randSym(rng, n)
		want, err := SpectralRadiusSym(a)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := PowerIteration(a, 20000, 1e-12)
		if math.Abs(got-want) > 1e-5*(1+want) {
			t.Fatalf("power iteration %.10f, eig %.10f", got, want)
		}
	}
}

func TestPowerIterationZeroMatrix(t *testing.T) {
	got, _ := PowerIteration(New(4, 4), 100, 1e-10)
	if got != 0 {
		t.Fatalf("zero matrix radius = %g", got)
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(12)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal boost keeps it comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		x, err := LUSolve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("LUSolve x[%d] = %g want %g", i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := LUSolve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func BenchmarkSymEig64(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randSym(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEig(a); err != nil {
			b.Fatal(err)
		}
	}
}
