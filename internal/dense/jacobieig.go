package dense

import (
	"fmt"
	"math"
	"sort"
)

// SymEigVec computes all eigenvalues and orthonormal eigenvectors of a
// symmetric matrix using the cyclic Jacobi rotation method — fittingly,
// the eigensolver named after the same Jacobi as the iteration this
// library studies. Eigenvalues are returned ascending; column k of the
// returned matrix is the eigenvector of eigenvalue k.
//
// The QL-based SymEig is faster for eigenvalues only; use this when the
// eigenvectors themselves matter (e.g. verifying that the residual
// propagation matrix's unit-eigenvalue eigenvectors are the delayed
// rows' unit basis vectors, Section IV-C).
func SymEigVec(a *Matrix) ([]float64, *Matrix, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("dense: SymEigVec needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-10 * (1 + a.MaxAbs())) {
		return nil, nil, fmt.Errorf("dense: SymEigVec called on non-symmetric matrix")
	}
	n := a.Rows
	if n == 0 {
		return nil, New(0, 0), nil
	}
	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius mass decides convergence.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off <= 1e-28*(1+m.NormFrob()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				// Stable rotation computation (Golub & Van Loan).
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(m, v, p, q, c, s)
			}
		}
	}

	// Extract and sort.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{m.At(i, i), i}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].val < pairs[b].val })
	evals := make([]float64, n)
	evecs := New(n, n)
	for k, pr := range pairs {
		evals[k] = pr.val
		for i := 0; i < n; i++ {
			evecs.Set(i, k, v.At(i, pr.idx))
		}
	}
	return evals, evecs, nil
}

// applyJacobiRotation applies the rotation J(p, q, c, s) as m <- J^T m J
// and accumulates v <- v J.
func applyJacobiRotation(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m.At(p, j), m.At(q, j)
		m.Set(p, j, c*mpj-s*mqj)
		m.Set(q, j, s*mpj+c*mqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// Nullspace returns an orthonormal basis of the (numerical) nullspace
// of a symmetric matrix: eigenvectors whose |eigenvalue| <= tol. Column
// k of the returned matrix is one basis vector; the matrix has zero
// columns when the matrix is nonsingular. Used to find the fixed-point
// directions of propagation matrices (Theorem 1's v = null(Y)).
func Nullspace(a *Matrix, tol float64) (*Matrix, error) {
	evals, evecs, err := SymEigVec(a)
	if err != nil {
		return nil, err
	}
	var cols []int
	for k, l := range evals {
		if math.Abs(l) <= tol {
			cols = append(cols, k)
		}
	}
	out := New(a.Rows, len(cols))
	for j, k := range cols {
		for i := 0; i < a.Rows; i++ {
			out.Set(i, j, evecs.At(i, k))
		}
	}
	return out, nil
}
