package dense

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"sort"
	"testing"
)

func sortedReal(ev []complex128) []float64 {
	out := make([]float64, len(ev))
	for i, l := range ev {
		out[i] = real(l)
	}
	sort.Float64s(out)
	return out
}

func TestEigDiagonal(t *testing.T) {
	m := New(4, 4)
	want := []float64{-3, 0.5, 2, 7}
	for i, v := range want {
		m.Set(i, i, v)
	}
	ev, err := Eig(m)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedReal(ev)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("ev = %v want %v", got, want)
		}
	}
}

func TestEigUpperTriangular(t *testing.T) {
	m := FromRows([][]float64{
		{3, 1, 4},
		{0, -2, 5},
		{0, 0, 1.5},
	})
	ev, err := Eig(m)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedReal(ev)
	want := []float64{-2, 1.5, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("ev = %v want %v", got, want)
		}
	}
}

func TestEigRotationComplexPair(t *testing.T) {
	// 2-D rotation by theta: eigenvalues e^{+-i theta}.
	theta := 0.7
	m := FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	ev, err := Eig(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 {
		t.Fatalf("got %d eigenvalues", len(ev))
	}
	for _, l := range ev {
		if math.Abs(cmplx.Abs(l)-1) > 1e-12 {
			t.Fatalf("|lambda| = %g want 1", cmplx.Abs(l))
		}
		if math.Abs(math.Abs(imag(l))-math.Sin(theta)) > 1e-12 {
			t.Fatalf("imag part %g want +-%g", imag(l), math.Sin(theta))
		}
	}
}

// Companion matrix of x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
func TestEigCompanion(t *testing.T) {
	m := FromRows([][]float64{
		{6, -11, 6},
		{1, 0, 0},
		{0, 1, 0},
	})
	ev, err := Eig(m)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedReal(ev)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("companion ev = %v", got)
		}
	}
}

// On symmetric matrices the general QR must agree with the symmetric
// QL solver.
func TestEigMatchesSymEig(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.IntN(12)
		a := randSym(rng, n)
		want, err := SymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := Eig(a)
		if err != nil {
			t.Fatal(err)
		}
		got := sortedReal(ev)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-8*(1+math.Abs(want[k])) {
				t.Fatalf("trial %d: ev[%d] = %.12f want %.12f", trial, k, got[k], want[k])
			}
		}
		// Imag parts must vanish for symmetric input.
		for _, l := range ev {
			if math.Abs(imag(l)) > 1e-8 {
				t.Fatalf("symmetric matrix produced complex eigenvalue %v", l)
			}
		}
	}
}

// Trace and determinant invariants for random matrices:
// sum(lambda) == trace, and |prod(lambda)| is reproducible from LU.
func TestEigTraceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 94))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.IntN(10)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		ev, err := Eig(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(ev) != n {
			t.Fatalf("got %d eigenvalues for n=%d", len(ev), n)
		}
		var tr float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		var sum complex128
		for _, l := range ev {
			sum += l
		}
		if math.Abs(real(sum)-tr) > 1e-8*(1+math.Abs(tr)) || math.Abs(imag(sum)) > 1e-8 {
			t.Fatalf("eig sum %v != trace %g", sum, tr)
		}
	}
}

// The non-symmetric propagation matrix use case: a Hessenberg-reducible
// matrix with known spectral radius.
func TestSpectralRadiusGeneral(t *testing.T) {
	// [1 0; g G] block form with G = 0.5: eigenvalues {1, 0.5}.
	m := FromRows([][]float64{
		{1, 0},
		{0.3, 0.5},
	})
	r, err := SpectralRadius(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("rho = %g want 1", r)
	}
}

func TestEigEmptyAndErrors(t *testing.T) {
	if ev, err := Eig(New(0, 0)); err != nil || len(ev) != 0 {
		t.Fatal("empty matrix mishandled")
	}
	if _, err := Eig(New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func BenchmarkEig32(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := New(32, 32)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eig(a); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: the spectrum is invariant under permutation similarity
// P A P^T.
func TestEigPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(95, 96))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.IntN(8)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		perm := rng.Perm(n)
		p := New(n, n)
		for i, pi := range perm {
			p.Set(pi, i, 1)
		}
		pap := Mul(Mul(p, a), p.T())
		ev1, err := Eig(a)
		if err != nil {
			t.Fatal(err)
		}
		ev2, err := Eig(pap)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := sortedReal(ev1), sortedReal(ev2)
		for k := range s1 {
			if math.Abs(s1[k]-s2[k]) > 1e-7*(1+math.Abs(s1[k])) {
				t.Fatalf("spectrum changed under permutation: %v vs %v", s1, s2)
			}
		}
	}
}
