package fault

import (
	"testing"
	"time"
)

// A restored injector must continue the fault stream exactly where the
// snapshot was taken: the resumed run faces the remainder of the
// planned adversity, not a replay of it.
func TestInjectorStateRoundTripDeterministic(t *testing.T) {
	plan := &Plan{
		Seed: 99, Drop: 0.3, Dup: 0.2,
		DelayMean: time.Millisecond, DelayProb: 0.5,
		StallRank: -1,
	}
	in := plan.ForRank(2)
	// Burn some draws so the stream is mid-flight.
	for i := 0; i < 57; i++ {
		in.SendFate(0)
		in.IterDelay()
	}
	snap := in.State()
	if len(snap) < 2 {
		t.Fatalf("state too short: %d bytes", len(snap))
	}

	// Continue the original and record its future.
	var fates []Fate
	var delays []time.Duration
	for i := 0; i < 40; i++ {
		fates = append(fates, in.SendFate(1))
		delays = append(delays, in.IterDelay())
	}

	// A fresh injector restored from the snapshot replays that future.
	in2 := plan.ForRank(2)
	if err := in2.SetState(snap); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	for i := 0; i < 40; i++ {
		if f := in2.SendFate(1); f != fates[i] {
			t.Fatalf("draw %d: fate %v, want %v", i, f, fates[i])
		}
		if d := in2.IterDelay(); d != delays[i] {
			t.Fatalf("draw %d: delay %v, want %v", i, d, delays[i])
		}
	}
}

// Restoring a spent crash latch revives the rank without re-arming the
// crash: a checkpoint restore is the operator restarting the process.
func TestInjectorStateReviveSemantics(t *testing.T) {
	plan := &Plan{Seed: 7, StallRank: -1, CrashRanks: []int{0}, CrashIter: 3}
	in := plan.ForRank(0)
	if in.CrashNow(2) {
		t.Fatal("crashed before CrashIter")
	}
	if !in.CrashNow(3) {
		t.Fatal("crash did not fire at CrashIter")
	}
	if !in.Dead() {
		t.Fatal("fail-stopped rank not dead")
	}
	snap := in.State()

	in2 := plan.ForRank(0)
	if err := in2.SetState(snap); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	if in2.Dead() {
		t.Fatal("restored rank still dead; restart-from-checkpoint must revive it")
	}
	if in2.CrashNow(10) {
		t.Fatal("spent crash replayed after restore")
	}

	// A snapshot taken before the crash leaves it armed.
	in3 := plan.ForRank(0)
	pre := in3.State()
	in4 := plan.ForRank(0)
	if err := in4.SetState(pre); err != nil {
		t.Fatal(err)
	}
	if !in4.CrashNow(3) {
		t.Fatal("unspent crash disarmed by restore")
	}
}

// States/RestoreStates are nil-safe and reject world-size mismatches.
func TestStatesWorldRoundTrip(t *testing.T) {
	if States(nil) != nil {
		t.Fatal("States(nil) != nil")
	}
	if err := RestoreStates(nil, nil); err != nil {
		t.Fatalf("nil restore: %v", err)
	}
	plan := &Plan{Seed: 3, Drop: 0.5, StallRank: -1}
	injs := plan.Injectors(4)
	states := States(injs)
	if len(states) != 4 {
		t.Fatalf("got %d states", len(states))
	}
	if err := RestoreStates(plan.Injectors(4), states); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := RestoreStates(plan.Injectors(3), states); err == nil {
		t.Fatal("world-size mismatch accepted")
	}
}
