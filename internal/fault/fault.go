// Package fault is the deterministic fault-injection substrate for the
// solver substrates. The paper proves (Theorem 1, §IV-C) that the
// asynchronous Jacobi residual 1-norm never grows under *arbitrary*
// delays, but the repository's original experiments only ever exercised
// the benign single-slow-process case (DelayThread/DelayRank). A Plan
// describes real adversity — per-link message loss, duplication and
// reordering, heavy-tailed per-process delay distributions, and process
// stall/crash (optionally followed by a restart from the current
// iterate) — and the shm and dist solvers consult it at their existing
// communication points.
//
// Everything is deterministic given (Seed, rank): each rank draws its
// fault decisions from its own PCG stream, so the k-th send fate and
// the k-th delay draw of rank r are pure functions of the plan. The
// realized interleaving still depends on the scheduler (that is the
// point of asynchronous execution), but the adversity itself replays.
//
// Like obs.SolverMetrics and trace.Recorder, every handle is nil-safe:
// a nil *Plan yields nil *Injector handles whose methods report "no
// fault" at the cost of one pointer test per site.
package fault

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"
)

// Fate is the outcome drawn for one outbound message.
type Fate uint8

const (
	// Deliver passes the message through unharmed.
	Deliver Fate = iota
	// Drop loses the message (the receiver keeps its stale ghosts).
	Drop
	// Dup delivers the message twice (at-least-once transports).
	Dup
	// Reorder holds the message back so a later one overtakes it; on a
	// last-writer-wins ghost buffer the overtaken message then lands
	// *after* fresher data, re-installing stale values.
	Reorder
)

// String names the fate.
func (f Fate) String() string {
	switch f {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Dup:
		return "dup"
	case Reorder:
		return "reorder"
	}
	return "unknown"
}

// Link identifies a directed communication edge between two ranks.
type Link struct{ Src, Dst int }

// LinkProbs are per-link fault probabilities overriding the plan-wide
// defaults for one directed edge.
type LinkProbs struct {
	Drop, Dup, Reorder float64
}

// Plan is a declarative fault schedule. The zero value injects nothing;
// Enabled reports whether any knob is set. Plans are read-only after
// construction and may be shared across ranks — all mutable state lives
// in the per-rank Injector.
type Plan struct {
	// Seed drives every random draw. Two runs with the same plan see
	// the same fault decisions per rank.
	Seed uint64

	// Drop, Dup, Reorder are plan-wide per-message probabilities,
	// applied on the sending side of every asynchronous communication
	// (RMA put or point-to-point send). Reorder is meaningful only for
	// point-to-point links; RMA windows have no inter-message ordering
	// to violate, so it degrades to Deliver there.
	Drop, Dup, Reorder float64

	// Links optionally overrides the probabilities on specific directed
	// edges (e.g. one flaky cable between two racks).
	Links map[Link]LinkProbs

	// DelayMean, when positive, draws a heavy-tailed (Pareto) sleep
	// before each local iteration: mean DelayMean, tail index
	// DelayAlpha (default 1.5 — infinite variance, the "one process is
	// sometimes very slow" regime the paper's delay model allows).
	// DelayProb is the per-iteration probability of drawing a delay at
	// all; 0 means every iteration. DelayMax caps a single draw
	// (default 50x mean) so tests cannot sleep unboundedly.
	DelayMean  time.Duration
	DelayAlpha float64
	DelayProb  float64
	DelayMax   time.Duration
	// DelayRanks restricts the delay distribution to these ranks; nil
	// applies it to every rank.
	DelayRanks []int

	// StallRank, when >= 0, sleeps StallFor once, immediately before
	// that rank's StallIter-th local iteration — a GC pause or
	// preemption spike rather than a persistent slowdown.
	StallRank int
	StallIter int
	StallFor  time.Duration

	// CrashRanks lists ranks that fail-stop just before their
	// CrashIter-th local iteration. Without Restart the rank is dead
	// for the remainder of the solve (including any resume passes);
	// with Restart it rejoins after RestartAfter (default 1ms),
	// continuing from its current iterate ("restart-from-current-x" —
	// the state a checkpointless restart inherits from shared memory or
	// its own window).
	CrashRanks   []int
	CrashIter    int
	Restart      bool
	RestartAfter time.Duration

	// TermTimeout bounds how long a locally-converged rank waits on the
	// termination protocol once a crash has been observed before
	// degrading to the surviving-ranks decision (the deadline that
	// keeps a crashed rank from hanging Dijkstra-Safra's token ring).
	// Zero selects DefaultTermTimeout.
	TermTimeout time.Duration
}

// DefaultTermTimeout is the termination-degradation deadline used when
// a plan schedules crashes but sets no explicit TermTimeout.
const DefaultTermTimeout = 2 * time.Second

// Validate checks probability ranges and index sanity against a world
// of p ranks. It does not reject out-of-range crash/stall ranks when
// p <= 0 (unknown world size).
func (p *Plan) Validate(procs int) error {
	if p == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{{"Drop", p.Drop}, {"Dup", p.Dup}, {"Reorder", p.Reorder}, {"DelayProb", p.DelayProb}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s probability %g outside [0,1]", pr.name, pr.v)
		}
	}
	if p.Drop+p.Dup+p.Reorder > 1 {
		return fmt.Errorf("fault: Drop+Dup+Reorder = %g exceeds 1", p.Drop+p.Dup+p.Reorder)
	}
	if p.DelayAlpha < 0 || (p.DelayAlpha > 0 && p.DelayAlpha <= 1) {
		return fmt.Errorf("fault: DelayAlpha %g must be > 1 (finite mean) or 0 (default)", p.DelayAlpha)
	}
	if p.DelayMean < 0 || p.StallFor < 0 || p.RestartAfter < 0 || p.TermTimeout < 0 {
		return fmt.Errorf("fault: negative duration in plan")
	}
	if procs > 0 {
		for _, r := range p.CrashRanks {
			if r < 0 || r >= procs {
				return fmt.Errorf("fault: crash rank %d outside [0,%d)", r, procs)
			}
		}
		if p.StallRank >= procs {
			return fmt.Errorf("fault: stall rank %d outside [0,%d)", p.StallRank, procs)
		}
		for _, r := range p.DelayRanks {
			if r < 0 || r >= procs {
				return fmt.Errorf("fault: delay rank %d outside [0,%d)", r, procs)
			}
		}
	}
	return nil
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.Drop > 0 || p.Dup > 0 || p.Reorder > 0 || len(p.Links) > 0 ||
		p.DelayMean > 0 || (p.StallRank >= 0 && p.StallFor > 0) ||
		len(p.CrashRanks) > 0
}

// TermDeadline returns the termination-degradation deadline: the
// configured TermTimeout, or DefaultTermTimeout when unset.
func (p *Plan) TermDeadline() time.Duration {
	if p == nil || p.TermTimeout <= 0 {
		return DefaultTermTimeout
	}
	return p.TermTimeout
}

// Injector is one rank's live fault state: its private RNG stream plus
// the crash latch. The owning rank drives the fault draws; sequential
// solve passes (the dist solver's recheck-and-resume loop) may reuse
// one injector so that a fail-stop crash stays fatal across passes. A
// small mutex guards the mutable state (the RNG position and the crash
// latch) so a checkpointer goroutine can snapshot it mid-run with
// State; the lock is uncontended on the fault hot path.
type Injector struct {
	plan *Plan
	rank int

	mu  sync.Mutex
	src *rand.PCG // retained for State/SetState serialization
	rng *rand.Rand

	delayed bool // this rank draws from the delay distribution
	crashAt int  // -1: never
	crashed bool // crash fired (one-shot)
	revived bool // crash latch restored from a checkpoint: the process
	// was restarted by the operator, so the rank is alive again while
	// the spent crash still cannot replay
	xm    float64
	alpha float64
	dprob float64
	dmax  time.Duration
}

// ForRank builds rank id's injector; nil-safe (a nil plan yields a nil
// injector whose methods report no faults).
func (p *Plan) ForRank(id int) *Injector {
	if p == nil || !p.Enabled() {
		return nil
	}
	// Distinct golden-ratio-spaced streams per rank; the plan seed
	// picks the family.
	src := rand.NewPCG(p.Seed, uint64(id)*0x9e3779b97f4a7c15+0xfa01)
	in := &Injector{
		plan:    p,
		rank:    id,
		src:     src,
		rng:     rand.New(src),
		crashAt: -1,
	}
	p.armDelay(in, id)
	for _, r := range p.CrashRanks {
		if r == id {
			in.crashAt = p.CrashIter
		}
	}
	return in
}

// DelayQuantile returns the q-quantile (0 < q < 1) of the plan's
// configured delay distribution: the truncated Pareto(x_m, alpha) the
// injector draws from, including DelayProb's point mass at zero. This
// is the analytic reference the transport's *measured* one-way delay
// histogram is compared against. Zero when the plan injects no delay.
func (p *Plan) DelayQuantile(q float64) time.Duration {
	if p == nil || p.DelayMean <= 0 || q <= 0 || q >= 1 {
		return 0
	}
	alpha := p.DelayAlpha
	if alpha == 0 {
		alpha = 1.5
	}
	prob := p.DelayProb
	if prob == 0 {
		prob = 1
	}
	if q <= 1-prob {
		return 0
	}
	q = (q - (1 - prob)) / prob
	xm := float64(p.DelayMean) * (alpha - 1) / alpha
	d := time.Duration(xm * math.Pow(1/(1-q), 1/alpha))
	dmax := p.DelayMax
	if dmax <= 0 {
		dmax = 50 * p.DelayMean
	}
	if d > dmax {
		d = dmax
	}
	return d
}

// armDelay configures in's heavy-tailed delay distribution for rank (or
// link-source) id per the plan.
func (p *Plan) armDelay(in *Injector, id int) {
	if p.DelayMean <= 0 {
		return
	}
	in.delayed = len(p.DelayRanks) == 0
	for _, r := range p.DelayRanks {
		if r == id {
			in.delayed = true
		}
	}
	in.alpha = p.DelayAlpha
	if in.alpha == 0 {
		in.alpha = 1.5
	}
	// Pareto scale x_m chosen so the mean alpha*x_m/(alpha-1)
	// equals DelayMean.
	in.xm = float64(p.DelayMean) * (in.alpha - 1) / in.alpha
	in.dprob = p.DelayProb
	if in.dprob == 0 {
		in.dprob = 1
	}
	in.dmax = p.DelayMax
	if in.dmax <= 0 {
		in.dmax = 50 * p.DelayMean
	}
}

// ForLink builds a per-directed-link injector for wire-level fault
// injection: the (src, dst) pair seeds its own deterministic PCG
// stream, so the fate sequence drawn on each link is reproducible
// regardless of how frames from different links interleave on the
// socket. Crash faults stay per-rank and are never armed on a link;
// the delay distribution follows the frame's source rank (DelayRanks
// selects links by origin). Nil-safe like ForRank.
func (p *Plan) ForLink(src, dst int) *Injector {
	if p == nil || !p.Enabled() {
		return nil
	}
	s := rand.NewPCG(p.Seed, uint64(src)*0x9e3779b97f4a7c15+uint64(dst)*0xbf58476d1ce4e5b9+0x51ed)
	in := &Injector{
		plan:    p,
		rank:    src,
		src:     s,
		rng:     rand.New(s),
		crashAt: -1,
	}
	p.armDelay(in, src)
	return in
}

// Injectors builds one injector per rank of a p-rank world; nil-safe
// (returns nil for a nil or inert plan, which the solvers accept).
func (p *Plan) Injectors(procs int) []*Injector {
	if p == nil || !p.Enabled() {
		return nil
	}
	injs := make([]*Injector, procs)
	for i := range injs {
		injs[i] = p.ForRank(i)
	}
	return injs
}

// SendFate draws the fate of the next message to rank dst; nil-safe.
func (in *Injector) SendFate(dst int) Fate {
	if in == nil {
		return Deliver
	}
	drop, dup, reorder := in.plan.Drop, in.plan.Dup, in.plan.Reorder
	if lp, ok := in.plan.Links[Link{Src: in.rank, Dst: dst}]; ok {
		drop, dup, reorder = lp.Drop, lp.Dup, lp.Reorder
	}
	if drop == 0 && dup == 0 && reorder == 0 {
		return Deliver
	}
	in.mu.Lock()
	u := in.rng.Float64()
	in.mu.Unlock()
	switch {
	case u < drop:
		return Drop
	case u < drop+dup:
		return Dup
	case u < drop+dup+reorder:
		return Reorder
	}
	return Deliver
}

// IterDelay draws this iteration's heavy-tailed delay (0 when the rank
// is not delayed this iteration); nil-safe.
func (in *Injector) IterDelay() time.Duration {
	if in == nil || !in.delayed {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.dprob < 1 && in.rng.Float64() >= in.dprob {
		return 0
	}
	// Pareto(x_m, alpha) via inverse transform; 1-U in (0,1].
	d := time.Duration(in.xm * math.Pow(1/(1-in.rng.Float64()), 1/in.alpha))
	if d > in.dmax {
		d = in.dmax
	}
	return d
}

// StallFor returns the one-shot stall duration scheduled immediately
// before local iteration iter (0 otherwise); nil-safe.
func (in *Injector) StallFor(iter int) time.Duration {
	if in == nil {
		return 0
	}
	p := in.plan
	if p.StallRank == in.rank && p.StallIter == iter && p.StallFor > 0 {
		return p.StallFor
	}
	return 0
}

// CrashNow reports whether the rank fail-stops before local iteration
// iter. It fires at most once per injector; after a restart the rank
// does not crash again. Nil-safe.
func (in *Injector) CrashNow(iter int) bool {
	if in == nil || in.crashAt < 0 || iter < in.crashAt {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return false
	}
	in.crashed = true
	return true
}

// Restart reports whether a crashed rank rejoins, and after how long.
func (in *Injector) Restart() (time.Duration, bool) {
	if in == nil || !in.plan.Restart {
		return 0, false
	}
	after := in.plan.RestartAfter
	if after <= 0 {
		after = time.Millisecond
	}
	return after, true
}

// Dead reports whether the rank has crashed without a restart — it must
// not participate in the (or any resumed) solve. A rank whose crash
// latch was restored from a checkpoint is not dead: restoring a
// checkpoint is the operator restarting the process. Nil-safe.
func (in *Injector) Dead() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed && !in.revived && !in.plan.Restart
}

// State serializes the injector's mutable state — the PCG stream
// position and the crash latch — for a checkpoint. Safe to call from a
// checkpointer goroutine while the owning rank keeps drawing. Nil-safe
// (returns nil).
func (in *Injector) State() []byte {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	pcg, err := in.src.MarshalBinary()
	if err != nil {
		// MarshalBinary on *rand.PCG cannot fail today; treat a future
		// failure as "no snapshot" rather than corrupting a checkpoint.
		return nil
	}
	flags := byte(0)
	if in.crashed {
		flags = 1
	}
	return append([]byte{flags}, pcg...)
}

// SetState restores a snapshot taken by State, so a resumed solve
// faces the remainder of the planned adversity rather than a replay of
// it: the RNG stream continues where it stopped, and a spent crash
// latch stays spent — but the rank itself revives, because restoring a
// checkpoint is precisely the operator restarting the crashed process.
// Nil-safe; an empty state is a no-op.
func (in *Injector) SetState(state []byte) error {
	if in == nil || len(state) == 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if err := in.src.UnmarshalBinary(state[1:]); err != nil {
		return fmt.Errorf("fault: restore injector %d rng: %w", in.rank, err)
	}
	in.crashed = state[0] == 1
	in.revived = in.crashed
	return nil
}

// States snapshots every injector of a world (nil entries yield nil
// states); nil-safe on a nil slice.
func States(injs []*Injector) [][]byte {
	if injs == nil {
		return nil
	}
	out := make([][]byte, len(injs))
	for i, in := range injs {
		out[i] = in.State()
	}
	return out
}

// RestoreStates restores a States snapshot onto a freshly built world
// of injectors. A nil snapshot is a no-op; a size mismatch (the resumed
// run changed its worker count) is an error, because per-rank streams
// would no longer line up with the plan.
func RestoreStates(injs []*Injector, states [][]byte) error {
	if len(states) == 0 || injs == nil {
		return nil
	}
	if len(states) != len(injs) {
		return fmt.Errorf("fault: checkpoint has %d injector states, world has %d ranks",
			len(states), len(injs))
	}
	for i, in := range injs {
		if err := in.SetState(states[i]); err != nil {
			return err
		}
	}
	return nil
}

// Rank returns the owning rank id (-1 on nil).
func (in *Injector) Rank() int {
	if in == nil {
		return -1
	}
	return in.rank
}
