package fault

import (
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Fatal("nil plan enabled")
	}
	if err := p.Validate(4); err != nil {
		t.Fatalf("nil plan validate: %v", err)
	}
	if p.ForRank(0) != nil {
		t.Fatal("nil plan yielded injector")
	}
	if p.Injectors(4) != nil {
		t.Fatal("nil plan yielded injectors")
	}
	if p.TermDeadline() != DefaultTermTimeout {
		t.Fatal("nil plan deadline")
	}
	var in *Injector
	if in.SendFate(1) != Deliver {
		t.Fatal("nil injector dropped")
	}
	if in.IterDelay() != 0 || in.StallFor(3) != 0 {
		t.Fatal("nil injector delayed")
	}
	if in.CrashNow(0) || in.Dead() {
		t.Fatal("nil injector crashed")
	}
	if _, ok := in.Restart(); ok {
		t.Fatal("nil injector restarts")
	}
	if in.Rank() != -1 {
		t.Fatal("nil injector rank")
	}
}

func TestZeroPlanInert(t *testing.T) {
	p := &Plan{}
	if p.Enabled() {
		t.Fatal("zero plan enabled")
	}
	if p.ForRank(2) != nil {
		t.Fatal("zero plan yielded injector")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Plan{
		{Drop: -0.1},
		{Dup: 1.5},
		{Drop: 0.6, Dup: 0.6},
		{DelayMean: time.Millisecond, DelayAlpha: 0.5},
		{DelayMean: -time.Second},
		{CrashRanks: []int{4}},
		{StallRank: 9, StallFor: time.Millisecond},
		{DelayRanks: []int{-1}},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Fatalf("case %d: bad plan accepted", i)
		}
	}
	good := &Plan{Seed: 1, Drop: 0.2, Dup: 0.1, Reorder: 0.1,
		DelayMean: time.Millisecond, DelayAlpha: 2,
		CrashRanks: []int{3}, StallRank: 0, StallFor: time.Microsecond}
	if err := good.Validate(4); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Injector {
		return (&Plan{Seed: 42, Drop: 0.3, Dup: 0.1, Reorder: 0.1,
			DelayMean: time.Millisecond}).ForRank(2)
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		if a.SendFate(0) != b.SendFate(0) {
			t.Fatalf("fate diverged at draw %d", i)
		}
		if a.IterDelay() != b.IterDelay() {
			t.Fatalf("delay diverged at draw %d", i)
		}
	}
	// Different ranks see different streams.
	c := (&Plan{Seed: 42, Drop: 0.5}).ForRank(0)
	d := (&Plan{Seed: 42, Drop: 0.5}).ForRank(1)
	same := true
	for i := 0; i < 64; i++ {
		if c.SendFate(1) != d.SendFate(0) {
			same = false
		}
	}
	if same {
		t.Fatal("rank streams identical")
	}
}

func TestSendFateRates(t *testing.T) {
	in := (&Plan{Seed: 7, Drop: 0.25, Dup: 0.1}).ForRank(0)
	const n = 20000
	var drops, dups int
	for i := 0; i < n; i++ {
		switch in.SendFate(1) {
		case Drop:
			drops++
		case Dup:
			dups++
		case Reorder:
			t.Fatal("reorder drawn with probability 0")
		}
	}
	if f := float64(drops) / n; f < 0.22 || f > 0.28 {
		t.Fatalf("drop rate %.3f far from 0.25", f)
	}
	if f := float64(dups) / n; f < 0.07 || f > 0.13 {
		t.Fatalf("dup rate %.3f far from 0.10", f)
	}
}

func TestLinkOverride(t *testing.T) {
	p := &Plan{Seed: 3, Drop: 0,
		Links: map[Link]LinkProbs{{Src: 1, Dst: 2}: {Drop: 1}}}
	in := p.ForRank(1)
	for i := 0; i < 16; i++ {
		if in.SendFate(2) != Drop {
			t.Fatal("overridden link should always drop")
		}
		if in.SendFate(0) != Deliver {
			t.Fatal("other links should deliver")
		}
	}
	// The override only applies on the named source rank.
	other := p.ForRank(0)
	if other.SendFate(2) != Deliver {
		t.Fatal("link override leaked to another source rank")
	}
}

func TestIterDelayDistribution(t *testing.T) {
	mean := 200 * time.Microsecond
	in := (&Plan{Seed: 11, DelayMean: mean, DelayAlpha: 3}).ForRank(0)
	const n = 20000
	var sum time.Duration
	var max time.Duration
	for i := 0; i < n; i++ {
		d := in.IterDelay()
		if d < 0 {
			t.Fatal("negative delay")
		}
		if d > max {
			max = d
		}
		sum += d
	}
	got := sum / n
	if got < mean/2 || got > 2*mean {
		t.Fatalf("empirical mean %v far from %v", got, mean)
	}
	// Heavy tail: the largest of 20k draws should dwarf the mean.
	if max < 2*mean {
		t.Fatalf("max draw %v shows no tail (mean %v)", max, mean)
	}
	if cap := 50 * mean; max > cap {
		t.Fatalf("draw %v exceeded default cap %v", max, cap)
	}
}

func TestIterDelayProb(t *testing.T) {
	in := (&Plan{Seed: 5, DelayMean: time.Millisecond, DelayProb: 0.1}).ForRank(0)
	const n = 10000
	hits := 0
	for i := 0; i < n; i++ {
		if in.IterDelay() > 0 {
			hits++
		}
	}
	if f := float64(hits) / n; f < 0.07 || f > 0.13 {
		t.Fatalf("delay probability %.3f far from 0.10", f)
	}
}

func TestDelayRanksRestrict(t *testing.T) {
	p := &Plan{Seed: 9, DelayMean: time.Millisecond, DelayRanks: []int{1}}
	if d := p.ForRank(0).IterDelay(); d != 0 {
		t.Fatalf("undelayed rank slept %v", d)
	}
	if d := p.ForRank(1).IterDelay(); d == 0 {
		t.Fatal("delayed rank never slept")
	}
}

func TestStall(t *testing.T) {
	p := &Plan{Seed: 1, StallRank: 2, StallIter: 5, StallFor: time.Millisecond}
	in := p.ForRank(2)
	for iter := 0; iter < 10; iter++ {
		want := time.Duration(0)
		if iter == 5 {
			want = time.Millisecond
		}
		if got := in.StallFor(iter); got != want {
			t.Fatalf("iter %d: stall %v want %v", iter, got, want)
		}
	}
	if p.ForRank(1).StallFor(5) != 0 {
		t.Fatal("stall leaked to another rank")
	}
}

func TestCrashOneShotAndDead(t *testing.T) {
	p := &Plan{Seed: 1, CrashRanks: []int{1}, CrashIter: 3}
	in := p.ForRank(1)
	if in.CrashNow(2) {
		t.Fatal("crashed early")
	}
	if !in.CrashNow(3) {
		t.Fatal("did not crash at the scheduled iteration")
	}
	if in.CrashNow(4) {
		t.Fatal("crash fired twice")
	}
	if !in.Dead() {
		t.Fatal("crashed rank without restart should be dead")
	}
	if _, ok := in.Restart(); ok {
		t.Fatal("restart not configured")
	}
	if p.ForRank(0).CrashNow(100) {
		t.Fatal("crash leaked to another rank")
	}
}

func TestCrashRestart(t *testing.T) {
	p := &Plan{Seed: 1, CrashRanks: []int{0}, CrashIter: 2,
		Restart: true, RestartAfter: 5 * time.Millisecond}
	in := p.ForRank(0)
	if !in.CrashNow(2) {
		t.Fatal("no crash")
	}
	after, ok := in.Restart()
	if !ok || after != 5*time.Millisecond {
		t.Fatalf("restart = (%v, %v)", after, ok)
	}
	if in.Dead() {
		t.Fatal("restarting rank reported dead")
	}
	if in.CrashNow(10) {
		t.Fatal("restarted rank crashed again")
	}
	// Default restart pause when unset.
	q := &Plan{Seed: 1, CrashRanks: []int{0}, Restart: true}
	qi := q.ForRank(0)
	if after, ok := qi.Restart(); !ok || after <= 0 {
		t.Fatalf("default restart pause = (%v, %v)", after, ok)
	}
}

func TestTermDeadline(t *testing.T) {
	if (&Plan{}).TermDeadline() != DefaultTermTimeout {
		t.Fatal("default deadline")
	}
	if (&Plan{TermTimeout: time.Second}).TermDeadline() != time.Second {
		t.Fatal("explicit deadline ignored")
	}
}

func TestFateString(t *testing.T) {
	for f, want := range map[Fate]string{
		Deliver: "deliver", Drop: "drop", Dup: "dup", Reorder: "reorder",
		Fate(99): "unknown",
	} {
		if f.String() != want {
			t.Fatalf("%d.String() = %q", f, f.String())
		}
	}
}
