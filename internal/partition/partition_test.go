package partition

import (
	"math/rand/v2"
	"testing"

	"repro/internal/matgen"
)

func TestContiguous(t *testing.T) {
	p := Contiguous(10, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := p.Sizes()
	if sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Fatal("sizes do not sum to n")
	}
	for _, s := range sizes {
		if s < 3 || s > 4 {
			t.Fatalf("unbalanced contiguous sizes %v", sizes)
		}
	}
	// Monotone assignment
	for i := 1; i < 10; i++ {
		if p.Part[i] < p.Part[i-1] {
			t.Fatal("contiguous partition not monotone")
		}
	}
}

func TestContiguousRangeConsistent(t *testing.T) {
	n, np := 97, 7
	p := Contiguous(n, np)
	for b := 0; b < np; b++ {
		lo, hi := ContiguousRange(n, np, b)
		for i := lo; i < hi; i++ {
			if p.Part[i] != b {
				t.Fatalf("row %d: range says %d, partition says %d", i, b, p.Part[i])
			}
		}
	}
}

func TestContiguousMorePartsThanRows(t *testing.T) {
	p := Contiguous(3, 8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Part) != 3 {
		t.Fatal("wrong length")
	}
}

func TestBFSPartitionBalance(t *testing.T) {
	a := matgen.FD2D(20, 20)
	for _, np := range []int{2, 4, 8, 16} {
		p := BFS(a, np)
		if err := p.Validate(); err != nil {
			t.Fatalf("P=%d: %v", np, err)
		}
		total := 0
		for _, s := range p.Sizes() {
			total += s
		}
		if total != a.N {
			t.Fatalf("P=%d: sizes sum %d != %d", np, total, a.N)
		}
		if imb := p.Imbalance(); imb > 1.5 {
			t.Fatalf("P=%d: imbalance %g too high", np, imb)
		}
	}
}

// BFS should beat a random assignment on cut edges for mesh problems —
// that is the whole point of locality-aware partitioning.
func TestBFSLocality(t *testing.T) {
	a := matgen.FD2D(24, 24)
	np := 8
	bfs := BFS(a, np)
	// Round-robin is the worst-case locality strawman.
	rr := &Partition{P: np, Part: make([]int, a.N)}
	for i := range rr.Part {
		rr.Part[i] = i % np
	}
	if BFSCut, rrCut := bfs.CutEdges(a), rr.CutEdges(a); BFSCut >= rrCut {
		t.Fatalf("BFS cut %d not better than round-robin cut %d", BFSCut, rrCut)
	}
}

func TestBFSSinglePart(t *testing.T) {
	a := matgen.FD2D(5, 5)
	p := BFS(a, 1)
	for _, pt := range p.Part {
		if pt != 0 {
			t.Fatal("single part must own everything")
		}
	}
	if p.CutEdges(a) != 0 {
		t.Fatal("single part has no cut edges")
	}
}

func TestBFSMorePartsThanRows(t *testing.T) {
	a := matgen.FD2D(2, 2)
	p := BFS(a, 9)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSubdomains(t *testing.T) {
	a := matgen.FD2D(6, 6)
	pt := Contiguous(a.N, 4)
	subs := BuildSubdomains(a, pt)
	if len(subs) != 4 {
		t.Fatalf("got %d subdomains", len(subs))
	}
	totalRows := 0
	for b, s := range subs {
		if s.Part != b {
			t.Fatal("part id mismatch")
		}
		totalRows += len(s.Rows)
		// Send/Recv symmetry: if p receives list L from q, q must send
		// exactly L to p.
		for q, recv := range s.Recv {
			send := subs[q].Send[s.Part]
			if len(send) != len(recv) {
				t.Fatalf("send/recv asymmetry between %d and %d", s.Part, q)
			}
			for i := range send {
				if send[i] != recv[i] {
					t.Fatal("send/recv index mismatch")
				}
			}
			// Every received index is owned by q.
			for _, j := range recv {
				if pt.Part[j] != q {
					t.Fatalf("ghost %d not owned by %d", j, q)
				}
			}
		}
	}
	if totalRows != a.N {
		t.Fatalf("subdomains own %d rows, want %d", totalRows, a.N)
	}
}

// Every off-part coupling in the matrix must be covered by a Recv list.
func TestSubdomainsCoverCouplings(t *testing.T) {
	a := matgen.FD2D(8, 5)
	pt := BFS(a, 5)
	subs := BuildSubdomains(a, pt)
	// index for quick lookup
	recvSet := make([]map[int]bool, pt.P)
	for b, s := range subs {
		recvSet[b] = map[int]bool{}
		for _, idx := range s.Recv {
			for _, j := range idx {
				recvSet[b][j] = true
			}
		}
	}
	for i := 0; i < a.N; i++ {
		pi := pt.Part[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			if j != i && pt.Part[j] != pi {
				if !recvSet[pi][j] {
					t.Fatalf("coupling (%d,%d) not covered by ghost exchange", i, j)
				}
			}
		}
	}
}

func TestGhostAndNeighborCounts(t *testing.T) {
	a := matgen.FD2D(10, 10)
	pt := Contiguous(a.N, 4)
	subs := BuildSubdomains(a, pt)
	// Contiguous strips of a 10x10 grid: interior strips have 2
	// neighbors, end strips 1.
	if subs[0].NeighborCount() != 1 || subs[1].NeighborCount() != 2 {
		t.Fatalf("neighbor counts: %d, %d", subs[0].NeighborCount(), subs[1].NeighborCount())
	}
	if subs[0].GhostCount() == 0 {
		t.Fatal("strip subdomain must have ghosts")
	}
}

func TestValidateCatchesBadPart(t *testing.T) {
	p := &Partition{P: 2, Part: []int{0, 1, 2}}
	if p.Validate() == nil {
		t.Fatal("out-of-range part accepted")
	}
	p2 := &Partition{P: 0, Part: nil}
	if p2.Validate() == nil {
		t.Fatal("zero parts accepted")
	}
}

func TestWeightedCut(t *testing.T) {
	a := matgen.FD2D(10, 10)
	p := Contiguous(a.N, 4)
	// Uniform weights: weighted cut = 0.25 * cut count for the scaled
	// 5-point stencil.
	want := 0.25 * float64(p.CutEdges(a))
	if got := p.WeightedCut(a); got < want*0.999 || got > want*1.001 {
		t.Fatalf("WeightedCut = %g want %g", got, want)
	}
}

// On the anisotropic problem, lexicographic strips cut only the weak
// couplings: their weighted cut must be far below BFS's even though
// their raw cut count can be larger.
func TestWeightedCutAnisotropy(t *testing.T) {
	a := matgen.FD2DAniso(24, 24, 0.01)
	cont := Contiguous(a.N, 8)
	bfs := BFS(a, 8)
	if cw, bw := cont.WeightedCut(a), bfs.WeightedCut(a); cw >= bw/4 {
		t.Fatalf("contiguous weighted cut %g not << BFS %g on anisotropic grid", cw, bw)
	}
}

func TestRefineReducesCut(t *testing.T) {
	a := matgen.FD2D(20, 20)
	pt := BFS(a, 8)
	before := pt.WeightedCut(a)
	moves := Refine(a, pt, 10, 0.15)
	after := pt.WeightedCut(a)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("refinement increased cut: %g -> %g (%d moves)", before, after, moves)
	}
	if imb := pt.Imbalance(); imb > 1.3 {
		t.Fatalf("refinement destroyed balance: %g", imb)
	}
	// Total rows preserved.
	total := 0
	for _, s := range pt.Sizes() {
		total += s
	}
	if total != a.N {
		t.Fatal("refinement lost rows")
	}
}

func TestRefineFixesRandomPartition(t *testing.T) {
	// A random partition is badly cut; greedy refinement must improve
	// it substantially. (Round-robin, by contrast, is a zero-gain local
	// optimum for single moves — the classic KL limitation.)
	a := matgen.FD2D(16, 16)
	rng := rand.New(rand.NewPCG(7, 7))
	pt := &Partition{P: 4, Part: make([]int, a.N)}
	for i := range pt.Part {
		pt.Part[i] = rng.IntN(4)
	}
	before := pt.WeightedCut(a)
	Refine(a, pt, 50, 0.3)
	after := pt.WeightedCut(a)
	if after > before/2 {
		t.Fatalf("refinement too weak on random partition: %g -> %g", before, after)
	}
}

func TestRefineIdempotentAtFixpoint(t *testing.T) {
	a := matgen.FD2D(12, 12)
	pt := BFS(a, 4)
	Refine(a, pt, 50, 0.15)
	if moves := Refine(a, pt, 5, 0.15); moves != 0 {
		t.Fatalf("second refinement still moved %d rows", moves)
	}
}

func TestRowsListsOwnership(t *testing.T) {
	pt := &Partition{P: 3, Part: []int{0, 2, 0, 1, 2}}
	rows := pt.Rows()
	if len(rows) != 3 {
		t.Fatal("wrong part count")
	}
	if len(rows[0]) != 2 || rows[0][0] != 0 || rows[0][1] != 2 {
		t.Fatalf("part 0 rows = %v", rows[0])
	}
	if len(rows[1]) != 1 || rows[1][0] != 3 {
		t.Fatalf("part 1 rows = %v", rows[1])
	}
	if len(rows[2]) != 2 {
		t.Fatalf("part 2 rows = %v", rows[2])
	}
}
