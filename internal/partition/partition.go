// Package partition assigns matrix rows to processes. The paper
// partitions its distributed problems with METIS; the stand-in here is
// a BFS/level-set growth partitioner over the matrix adjacency graph,
// which produces the properties the experiments actually need:
// balanced, connected, locality-preserving subdomains with small ghost
// layers. A trivial contiguous-block partitioner is also provided for
// structured problems (the paper's shared-memory experiments use
// contiguous row blocks).
package partition

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sparse"
)

// Partition maps each of N rows to one of P parts.
type Partition struct {
	P    int   // number of parts
	Part []int // Part[i] = owning part of row i, in [0, P)
}

// Validate checks structural consistency.
func (p *Partition) Validate() error {
	if p.P <= 0 {
		return fmt.Errorf("partition: nonpositive part count %d", p.P)
	}
	for i, pt := range p.Part {
		if pt < 0 || pt >= p.P {
			return fmt.Errorf("partition: row %d assigned to invalid part %d", i, pt)
		}
	}
	return nil
}

// Sizes returns the number of rows in each part.
func (p *Partition) Sizes() []int {
	s := make([]int, p.P)
	for _, pt := range p.Part {
		s[pt]++
	}
	return s
}

// Rows returns, for each part, the sorted list of rows it owns.
func (p *Partition) Rows() [][]int {
	out := make([][]int, p.P)
	for i, pt := range p.Part {
		out[pt] = append(out[pt], i)
	}
	return out
}

// Imbalance returns max part size divided by the ideal size N/P; 1.0 is
// perfect balance.
func (p *Partition) Imbalance() float64 {
	sizes := p.Sizes()
	mx := 0
	for _, s := range sizes {
		if s > mx {
			mx = s
		}
	}
	ideal := float64(len(p.Part)) / float64(p.P)
	if ideal == 0 {
		return 1
	}
	return float64(mx) / ideal
}

// CutEdges counts matrix nonzeros (i, j), i != j, whose endpoints lie in
// different parts — the communication volume proxy (each cut nonzero
// requires a ghost value).
func (p *Partition) CutEdges(a *sparse.CSR) int {
	cut := 0
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			if j != i && p.Part[i] != p.Part[j] {
				cut++
			}
		}
	}
	return cut
}

// WeightedCut sums |a_ij| over cut nonzeros (i, j), i != j, with
// endpoints in different parts. For anisotropic problems this — not
// the plain cut count — predicts communication-induced convergence
// loss: cutting strong couplings hurts, cutting weak ones barely
// matters.
func (p *Partition) WeightedCut(a *sparse.CSR) float64 {
	var cut float64
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			if j != i && p.Part[i] != p.Part[j] {
				cut += math.Abs(a.Val[k])
			}
		}
	}
	return cut
}

// Contiguous splits n rows into p nearly equal consecutive blocks
// (block b covers [b*n/p, (b+1)*n/p)). This matches the paper's
// shared-memory implementation where each thread owns a contiguous row
// range.
func Contiguous(n, p int) *Partition {
	if p <= 0 || n < 0 {
		panic("partition: invalid Contiguous arguments")
	}
	part := make([]int, n)
	for b := 0; b < p; b++ {
		lo := b * n / p
		hi := (b + 1) * n / p
		for i := lo; i < hi; i++ {
			part[i] = b
		}
	}
	return &Partition{P: p, Part: part}
}

// ContiguousRange returns the row range [lo, hi) of block b under the
// Contiguous partition of n rows into p blocks.
func ContiguousRange(n, p, b int) (lo, hi int) {
	return b * n / p, (b + 1) * n / p
}

// BFS partitions the adjacency graph of a square matrix into p parts by
// repeated level-set growth: pick the unassigned vertex of minimum
// degree (a peripheral vertex), grow a BFS region until the target size
// is met, repeat. Disconnected leftovers join the smallest part.
// This is the METIS stand-in: it yields connected, balanced,
// low-cut subdomains on mesh-like graphs.
func BFS(a *sparse.CSR, p int) *Partition {
	if !a.IsSquare() {
		panic("partition: BFS needs a square matrix")
	}
	if p <= 0 {
		panic("partition: nonpositive part count")
	}
	n := a.N
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	assigned := 0
	queue := make([]int, 0, n)
	for b := 0; b < p; b++ {
		// Remaining rows spread over remaining parts.
		target := (n - assigned) / (p - b)
		if target == 0 && assigned < n {
			target = 1
		}
		if target == 0 {
			break
		}
		seed := pickSeed(a, part)
		if seed < 0 {
			break
		}
		count := 0
		queue = queue[:0]
		queue = append(queue, seed)
		part[seed] = b
		for len(queue) > 0 && count < target {
			v := queue[0]
			queue = queue[1:]
			count++
			for k := a.RowPtr[v]; k < a.RowPtr[v+1]; k++ {
				w := a.Col[k]
				if w != v && part[w] == -1 && count+len(queue) < target {
					part[w] = b
					queue = append(queue, w)
				}
			}
			// Region ran out of frontier but is under target: jump to
			// a new seed in another component.
			if len(queue) == 0 && count < target {
				s := pickSeed(a, part)
				if s < 0 {
					break
				}
				part[s] = b
				queue = append(queue, s)
			}
		}
		// Anything still queued was tentatively claimed; it stays in b.
		count += len(queue)
		assigned += count
	}
	// Leftovers (can happen with rounding): assign to the smallest part.
	pt := &Partition{P: p, Part: part}
	sizes := pt.Sizes()
	for i := range part {
		if part[i] == -1 {
			smallest := 0
			for b := 1; b < p; b++ {
				if sizes[b] < sizes[smallest] {
					smallest = b
				}
			}
			part[i] = smallest
			sizes[smallest]++
		}
	}
	return pt
}

// pickSeed returns an unassigned vertex of minimum degree, or -1 when
// all vertices are assigned.
func pickSeed(a *sparse.CSR, part []int) int {
	best, bestDeg := -1, int(^uint(0)>>1)
	for i := range part {
		if part[i] != -1 {
			continue
		}
		d := a.RowNNZ(i)
		if d < bestDeg {
			best, bestDeg = i, d
		}
	}
	return best
}

// Subdomain describes one part's view of the distributed system:
// the rows it owns, the neighbor parts it exchanges ghost values with,
// and exactly which values flow in each direction. This is the
// structure Section VI of the paper derives "by inspecting the nonzero
// values of the matrix rows".
type Subdomain struct {
	Part int
	Rows []int // owned rows, ascending

	// Neighbors[q] exists when this part reads values owned by part q
	// or owns values read by q.
	Recv map[int][]int // neighbor part -> global indices this part needs from it
	Send map[int][]int // neighbor part -> global indices of owned rows it must send
}

// BuildSubdomains derives every part's subdomain from the sparsity
// pattern: part p needs x_j from owner(j) for every nonzero (i, j) with
// owner(i) = p != owner(j).
func BuildSubdomains(a *sparse.CSR, pt *Partition) []*Subdomain {
	if !a.IsSquare() {
		panic("partition: BuildSubdomains needs a square matrix")
	}
	subs := make([]*Subdomain, pt.P)
	for b := 0; b < pt.P; b++ {
		subs[b] = &Subdomain{Part: b, Recv: map[int][]int{}, Send: map[int][]int{}}
	}
	for i, b := range pt.Part {
		subs[b].Rows = append(subs[b].Rows, i)
	}
	// Collect needed ghost indices per (reader, owner) pair, dedup.
	type pair struct{ reader, owner int }
	need := map[pair]map[int]bool{}
	for i := 0; i < a.N; i++ {
		pi := pt.Part[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			pj := pt.Part[j]
			if pi == pj || i == j {
				continue
			}
			key := pair{pi, pj}
			if need[key] == nil {
				need[key] = map[int]bool{}
			}
			need[key][j] = true
		}
	}
	for key, set := range need {
		idx := make([]int, 0, len(set))
		for j := range set {
			idx = append(idx, j)
		}
		sort.Ints(idx)
		subs[key.reader].Recv[key.owner] = idx
		subs[key.owner].Send[key.reader] = idx
	}
	return subs
}

// GhostCount returns the total number of ghost values this subdomain
// receives each exchange.
func (s *Subdomain) GhostCount() int {
	total := 0
	for _, idx := range s.Recv {
		total += len(idx)
	}
	return total
}

// NeighborCount returns the number of distinct parts this subdomain
// communicates with (in either direction).
func (s *Subdomain) NeighborCount() int {
	set := map[int]bool{}
	for q := range s.Recv {
		set[q] = true
	}
	for q := range s.Send {
		set[q] = true
	}
	return len(set)
}
