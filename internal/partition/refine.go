package partition

import (
	"math"

	"repro/internal/sparse"
)

// Refine improves a partition in place by greedy boundary moves — a
// lightweight Kernighan-Lin/Fiduccia-Mattheyses-style pass, the
// refinement stage real partitioners (including METIS) run after their
// initial clustering.
//
// Each pass scans boundary rows and moves a row to the neighboring part
// with the largest positive weighted-cut gain, subject to a balance
// constraint: no part may shrink below floor(ideal/(1+slack)) or grow
// above ceil(ideal*(1+slack)) rows. Passes repeat until no move helps
// or maxPasses is reached. Returns the number of moves applied.
func Refine(a *sparse.CSR, pt *Partition, maxPasses int, slack float64) int {
	if !a.IsSquare() {
		panic("partition: Refine needs a square matrix")
	}
	if maxPasses <= 0 {
		maxPasses = 1
	}
	if slack <= 0 {
		slack = 0.1
	}
	n := a.N
	ideal := float64(n) / float64(pt.P)
	minSize := int(math.Floor(ideal / (1 + slack)))
	if minSize < 1 {
		minSize = 1
	}
	maxSize := int(math.Ceil(ideal * (1 + slack)))
	sizes := pt.Sizes()

	moves := 0
	for pass := 0; pass < maxPasses; pass++ {
		moved := false
		for i := 0; i < n; i++ {
			home := pt.Part[i]
			if sizes[home] <= minSize {
				continue
			}
			// Weighted coupling of row i to each part.
			coupling := map[int]float64{}
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.Col[k]
				if j == i {
					continue
				}
				coupling[pt.Part[j]] += math.Abs(a.Val[k])
			}
			// The gain of moving i from home to q is
			// coupling[q] - coupling[home]: edges to q stop being cut,
			// edges to home start being cut.
			bestQ, bestGain := -1, 0.0
			for q, w := range coupling {
				if q == home || sizes[q] >= maxSize {
					continue
				}
				gain := w - coupling[home]
				if gain > bestGain+1e-15 {
					bestQ, bestGain = q, gain
				}
			}
			if bestQ >= 0 {
				pt.Part[i] = bestQ
				sizes[home]--
				sizes[bestQ]++
				moves++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return moves
}
