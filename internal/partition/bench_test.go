package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/matgen"
)

func BenchmarkBFS(b *testing.B) {
	a := matgen.FD2D(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(a, 32)
	}
}

func BenchmarkBuildSubdomains(b *testing.B) {
	a := matgen.FD2D(64, 64)
	pt := BFS(a, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildSubdomains(a, pt)
	}
}

// Property: Contiguous assigns every row to a valid, monotone part for
// arbitrary sizes.
func TestContiguousProperty(t *testing.T) {
	f := func(rawN, rawP uint8) bool {
		n := int(rawN)
		p := int(rawP)%32 + 1
		pt := Contiguous(n, p)
		if pt.Validate() != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if pt.Part[i] < pt.Part[i-1] {
				return false
			}
		}
		total := 0
		for _, s := range pt.Sizes() {
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
