// Package sparse implements the sparse-matrix substrate for the
// asynchronous Jacobi library: compressed sparse row (CSR) and
// coordinate (COO) storage, sparse matrix-vector products, structural
// and numerical property checks (symmetry, weak diagonal dominance,
// unit diagonal), Jacobi diagonal scaling, principal submatrix
// extraction, and Matrix Market I/O.
//
// The paper's solvers assume A is symmetric and scaled to have unit
// diagonal, so that the Jacobi iteration matrix is G = I - A. Matrices
// produced by internal/matgen are already in that form; Scale provides
// the symmetric diagonal scaling D^{-1/2} A D^{-1/2} for matrices that
// are not.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// Row i occupies the half-open range [RowPtr[i], RowPtr[i+1]) of Col
// and Val. Column indices within each row are strictly increasing,
// which NewCSR enforces; several kernels (diagonal lookup, transpose,
// symmetry checks) rely on this invariant.
type CSR struct {
	N      int // number of rows
	M      int // number of columns
	RowPtr []int
	Col    []int
	Val    []float64
}

// NewCSR validates and wraps raw CSR arrays. It verifies monotone row
// pointers, in-range sorted column indices, and consistent lengths.
func NewCSR(n, m int, rowPtr, col []int, val []float64) (*CSR, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %dx%d", n, m)
	}
	if len(rowPtr) != n+1 {
		return nil, fmt.Errorf("sparse: len(rowPtr)=%d, want %d", len(rowPtr), n+1)
	}
	if rowPtr[0] != 0 {
		return nil, fmt.Errorf("sparse: rowPtr[0]=%d, want 0", rowPtr[0])
	}
	if len(col) != len(val) {
		return nil, fmt.Errorf("sparse: len(col)=%d != len(val)=%d", len(col), len(val))
	}
	if rowPtr[n] != len(col) {
		return nil, fmt.Errorf("sparse: rowPtr[n]=%d != nnz=%d", rowPtr[n], len(col))
	}
	for i := 0; i < n; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			return nil, fmt.Errorf("sparse: rowPtr not monotone at row %d", i)
		}
		prev := -1
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			c := col[k]
			if c < 0 || c >= m {
				return nil, fmt.Errorf("sparse: column %d out of range in row %d", c, i)
			}
			if c <= prev {
				return nil, fmt.Errorf("sparse: columns not strictly increasing in row %d", i)
			}
			prev = c
		}
	}
	return &CSR{N: n, M: m, RowPtr: rowPtr, Col: col, Val: val}, nil
}

// MustCSR is NewCSR that panics on error; used by generators whose
// output is correct by construction.
func MustCSR(n, m int, rowPtr, col []int, val []float64) *CSR {
	a, err := NewCSR(n, m, rowPtr, col, val)
	if err != nil {
		panic(err)
	}
	return a
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// RowNNZ returns the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// Row returns the column indices and values of row i as sub-slices of
// the matrix storage (do not modify their length).
func (a *CSR) Row(i int) ([]int, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.Col[lo:hi], a.Val[lo:hi]
}

// At returns element (i, j), using binary search within the row.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Diag extracts the main diagonal into a new slice. Missing diagonal
// entries are zero.
func (a *CSR) Diag() []float64 {
	d := make([]float64, min(a.N, a.M))
	for i := range d {
		d[i] = a.At(i, i)
	}
	return d
}

// Clone returns a deep copy.
func (a *CSR) Clone() *CSR {
	rp := make([]int, len(a.RowPtr))
	copy(rp, a.RowPtr)
	col := make([]int, len(a.Col))
	copy(col, a.Col)
	val := make([]float64, len(a.Val))
	copy(val, a.Val)
	return &CSR{N: a.N, M: a.M, RowPtr: rp, Col: col, Val: val}
}

// MulVec computes y = A x.
func (a *CSR) MulVec(y, x []float64) {
	if len(x) != a.M || len(y) != a.N {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		y[i] = s
	}
}

// MulVecRange computes y[i] = (A x)[i] for rows i in [lo, hi). Worker
// threads and ranks each multiply only their own subdomain rows.
func (a *CSR) MulVecRange(y, x []float64, lo, hi int) {
	if len(x) != a.M || len(y) != a.N {
		panic("sparse: MulVecRange dimension mismatch")
	}
	if lo < 0 || hi > a.N || lo > hi {
		panic("sparse: MulVecRange row range out of bounds")
	}
	for i := lo; i < hi; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		y[i] = s
	}
}

// RowDot returns the inner product of row i with x: (A x)[i].
func (a *CSR) RowDot(i int, x []float64) float64 {
	if i < 0 || i >= a.N || len(x) != a.M {
		panic("sparse: RowDot index or dimension out of bounds")
	}
	var s float64
	for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
		s += a.Val[k] * x[a.Col[k]]
	}
	return s
}

// Residual computes r = b - A x.
func (a *CSR) Residual(r, b, x []float64) {
	if len(r) != a.N || len(b) != a.N {
		panic("sparse: Residual dimension mismatch")
	}
	for i := 0; i < a.N; i++ {
		r[i] = b[i] - a.RowDot(i, x)
	}
}

// Transpose returns A^T in CSR form.
func (a *CSR) Transpose() *CSR {
	// Count entries per column.
	cnt := make([]int, a.M+1)
	for _, c := range a.Col {
		cnt[c+1]++
	}
	for j := 0; j < a.M; j++ {
		cnt[j+1] += cnt[j]
	}
	rp := make([]int, a.M+1)
	copy(rp, cnt)
	col := make([]int, len(a.Col))
	val := make([]float64, len(a.Val))
	next := make([]int, a.M)
	copy(next, rp[:a.M])
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			p := next[j]
			next[j]++
			col[p] = i
			val[p] = a.Val[k]
		}
	}
	// Rows of the transpose are built in increasing i, hence sorted.
	return &CSR{N: a.M, M: a.N, RowPtr: rp, Col: col, Val: val}
}

// Submatrix extracts the principal submatrix with the given (sorted or
// unsorted, duplicate-free) row/column index set. Used by the model to
// form the active-block matrix G-tilde of Section IV-C.
func (a *CSR) Submatrix(idx []int) *CSR {
	if a.N != a.M {
		panic("sparse: Submatrix requires a square matrix")
	}
	sorted := make([]int, len(idx))
	copy(sorted, idx)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			panic("sparse: duplicate index in Submatrix")
		}
	}
	// old index -> new index, or -1
	remap := make(map[int]int, len(sorted))
	for newI, oldI := range sorted {
		if oldI < 0 || oldI >= a.N {
			panic("sparse: Submatrix index out of range")
		}
		remap[oldI] = newI
	}
	n := len(sorted)
	rp := make([]int, n+1)
	var col []int
	var val []float64
	for newI, oldI := range sorted {
		for k := a.RowPtr[oldI]; k < a.RowPtr[oldI+1]; k++ {
			if newJ, ok := remap[a.Col[k]]; ok {
				col = append(col, newJ)
				val = append(val, a.Val[k])
			}
		}
		rp[newI+1] = len(col)
	}
	return &CSR{N: n, M: n, RowPtr: rp, Col: col, Val: val}
}

// Dense converts to a dense row-major matrix; intended for tests and
// small model problems only.
func (a *CSR) Dense() [][]float64 {
	d := make([][]float64, a.N)
	buf := make([]float64, a.N*a.M)
	for i := range d {
		d[i] = buf[i*a.M : (i+1)*a.M]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d[i][a.Col[k]] = a.Val[k]
		}
	}
	return d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Permute returns P A P^T for the permutation that maps old index i to
// new index perm[i] — the symmetric reordering the paper applies in
// Eq. 15 to sort delayed rows first. perm must be a permutation of
// [0, n).
func (a *CSR) Permute(perm []int) *CSR {
	if !a.IsSquare() {
		panic("sparse: Permute requires a square matrix")
	}
	if len(perm) != a.N {
		panic("sparse: permutation length mismatch")
	}
	seen := make([]bool, a.N)
	for _, p := range perm {
		if p < 0 || p >= a.N || seen[p] {
			panic("sparse: invalid permutation")
		}
		seen[p] = true
	}
	c := NewCOO(a.N, a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c.Add(perm[i], perm[a.Col[k]], a.Val[k])
		}
	}
	return c.ToCSR()
}
