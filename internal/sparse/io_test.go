package sparse

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	a := randomSparse(rng, 15, 12, 0.2)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != a.N || b.M != a.M || b.NNZ() != a.NNZ() {
		t.Fatalf("shape changed: %dx%d nnz %d -> %dx%d nnz %d",
			a.N, a.M, a.NNZ(), b.N, b.M, b.NNZ())
	}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if b.At(i, a.Col[k]) != a.Val[k] {
				t.Fatalf("value (%d,%d) changed", i, a.Col[k])
			}
		}
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% 1-D Laplacian lower triangle
3 3 5
1 1 2.0
2 1 -1.0
2 2 2.0
3 2 -1.0
3 3 2.0
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := laplace1D(3)
	if a.NNZ() != want.NNZ() {
		t.Fatalf("nnz = %d want %d", a.NNZ(), want.NNZ())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != want.At(i, j) {
				t.Fatalf("(%d,%d) = %g want %g", i, j, a.At(i, j), want.At(i, j))
			}
		}
	}
	if !a.IsSymmetric(0) {
		t.Fatal("expanded symmetric read is not symmetric")
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"bad header", "%%MatrixMarket matrix array real general\n2 2\n"},
		{"pattern field", "%%MatrixMarket matrix coordinate pattern general\n1 1 1\n1 1\n"},
		{"bad symmetry", "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 1\n1 1 1\n"},
		{"missing entries", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"},
		{"out of range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"},
		{"bad value", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 xyz\n"},
	}
	for _, tc := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReadMatrixMarketSkipsComments(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
% comment line

% another
2 2 1
% entry comment
1 2 3.5
`
	a, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 3.5 {
		t.Fatal("comment handling corrupted entries")
	}
}
