package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes A in MatrixMarket coordinate general format.
// Indices are 1-based per the format specification.
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.N, a.M, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.Col[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file with real or
// integer values, general or symmetric layout. Pattern and complex
// fields are rejected.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	field, sym := header[3], header[4]
	if field != "real" && field != "integer" {
		return nil, fmt.Errorf("sparse: unsupported field %q", field)
	}
	symmetric := false
	switch sym {
	case "general":
	case "symmetric":
		symmetric = true
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", sym)
	}

	// Skip comments, read size line.
	var n, m, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &n, &m, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	coo := NewCOO(n, m)
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, read)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %w", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col index %q: %w", f[1], err)
		}
		v, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("sparse: bad value %q: %w", f[2], err)
		}
		if i < 1 || i > n || j < 1 || j > m {
			return nil, fmt.Errorf("sparse: index (%d,%d) out of %dx%d", i, j, n, m)
		}
		if symmetric {
			coo.AddSym(i-1, j-1, v)
		} else {
			coo.Add(i-1, j-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return coo.ToCSR(), nil
}
