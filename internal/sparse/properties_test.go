package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestIsSymmetric(t *testing.T) {
	if !laplace1D(10).IsSymmetric(0) {
		t.Fatal("Laplacian should be symmetric")
	}
	c := NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, 1)
	if c.ToCSR().IsSymmetric(1e-12) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	// Structural asymmetry
	c2 := NewCOO(2, 2)
	c2.Add(0, 0, 1)
	c2.Add(0, 1, 1)
	c2.Add(1, 1, 1)
	if c2.ToCSR().IsSymmetric(1e-12) {
		t.Fatal("structurally asymmetric matrix reported symmetric")
	}
	// Non-square never symmetric
	c3 := NewCOO(2, 3)
	c3.Add(0, 0, 1)
	if c3.ToCSR().IsSymmetric(1e-12) {
		t.Fatal("non-square matrix reported symmetric")
	}
}

func TestWDD(t *testing.T) {
	a := laplace1D(10) // |2| >= |-1| + |-1|: weakly dominant everywhere
	if !a.IsWDD() {
		t.Fatal("1-D Laplacian is W.D.D.")
	}
	if a.WDDFraction() != 1 {
		t.Fatalf("WDDFraction = %g", a.WDDFraction())
	}
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 1, 2) // row 0 violates dominance
	c.Add(1, 0, 0.5)
	c.Add(1, 1, 1)
	b := c.ToCSR()
	if b.IsWDD() {
		t.Fatal("non-dominant matrix reported W.D.D.")
	}
	if b.RowWDD(0) || !b.RowWDD(1) {
		t.Fatal("per-row W.D.D. classification wrong")
	}
	if b.WDDFraction() != 0.5 {
		t.Fatalf("WDDFraction = %g, want 0.5", b.WDDFraction())
	}
}

func TestInducedNorms(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 1, -2)
	c.Add(1, 0, 3)
	c.Add(1, 1, 4)
	a := c.ToCSR()
	if a.NormInf() != 7 { // row 1: 3+4
		t.Fatalf("NormInf = %g", a.NormInf())
	}
	if a.Norm1() != 6 { // col 1: 2+4
		t.Fatalf("Norm1 = %g", a.Norm1())
	}
	if math.Abs(a.NormFrob()-math.Sqrt(1+4+9+16)) > 1e-14 {
		t.Fatalf("NormFrob = %g", a.NormFrob())
	}
}

// Property: ||A||_1 == ||A^T||_inf for random sparse matrices.
func TestNormDualityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for trial := 0; trial < 50; trial++ {
		a := randomSparse(rng, 1+rng.IntN(25), 1+rng.IntN(25), 0.2)
		n1 := a.Norm1()
		ninf := a.Transpose().NormInf()
		if math.Abs(n1-ninf) > 1e-12*(1+n1) {
			t.Fatalf("norm duality violated: %g vs %g", n1, ninf)
		}
	}
}

func TestGershgorinRadiusBoundsIterationMatrix(t *testing.T) {
	// For the scaled 1-D Laplacian, G = I - A has spectral radius
	// cos(pi/(n+1)) < 1, and Gershgorin gives radius <= 1.
	a := laplace1D(20)
	scaled, _, err := ScaleUnitDiagonal(a)
	if err != nil {
		t.Fatal(err)
	}
	r := scaled.GershgorinRadius()
	if r > 1+1e-14 {
		t.Fatalf("Gershgorin radius %g > 1 for W.D.D. matrix", r)
	}
}

func TestHasUnitDiagonal(t *testing.T) {
	a := laplace1D(5)
	if a.HasUnitDiagonal(1e-12) {
		t.Fatal("unscaled Laplacian has diagonal 2")
	}
	scaled, _, err := ScaleUnitDiagonal(a)
	if err != nil {
		t.Fatal(err)
	}
	if !scaled.HasUnitDiagonal(1e-12) {
		t.Fatal("scaled matrix lacks unit diagonal")
	}
}
