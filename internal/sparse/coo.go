package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format builder for sparse matrices. Generators
// append entries in arbitrary order (duplicates are summed) and call
// ToCSR once assembly is finished — the standard finite-element
// assembly workflow.
type COO struct {
	N, M int
	I, J []int
	V    []float64
}

// NewCOO creates an empty n-by-m coordinate matrix.
func NewCOO(n, m int) *COO { return &COO{N: n, M: m} }

// Add appends entry (i, j) = v. Entries with the same coordinates are
// summed during ToCSR.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.N || j < 0 || j >= c.M {
		panic(fmt.Sprintf("sparse: COO index (%d,%d) out of %dx%d", i, j, c.N, c.M))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// AddSym appends (i, j) = v and, when i != j, (j, i) = v. Convenience
// for symmetric assembly and for reading symmetric Matrix Market files
// that store only one triangle.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// NNZ returns the number of appended entries (before duplicate
// coalescing).
func (c *COO) NNZ() int { return len(c.V) }

// ToCSR sorts, coalesces duplicates (summing their values), drops
// explicit zeros that result from cancellation, and produces a CSR
// matrix.
func (c *COO) ToCSR() *CSR {
	n := len(c.V)
	perm := make([]int, n)
	for k := range perm {
		perm[k] = k
	}
	sort.Slice(perm, func(a, b int) bool {
		ka, kb := perm[a], perm[b]
		if c.I[ka] != c.I[kb] {
			return c.I[ka] < c.I[kb]
		}
		return c.J[ka] < c.J[kb]
	})

	rowPtr := make([]int, c.N+1)
	col := make([]int, 0, n)
	val := make([]float64, 0, n)
	for p := 0; p < n; {
		k := perm[p]
		i, j := c.I[k], c.J[k]
		s := c.V[k]
		p++
		for p < n {
			k2 := perm[p]
			if c.I[k2] != i || c.J[k2] != j {
				break
			}
			s += c.V[k2]
			p++
		}
		if s != 0 {
			col = append(col, j)
			val = append(val, s)
			rowPtr[i+1]++
		}
	}
	for i := 0; i < c.N; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR{N: c.N, M: c.M, RowPtr: rowPtr, Col: col, Val: val}
}
