package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
)

// laplace1D builds the 1-D three-point Laplacian [-1 2 -1] of size n
// directly in CSR form; it is the simplest nontrivial test matrix.
func laplace1D(n int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

// randomSparse builds a random n-by-m matrix with about density*n*m
// entries, reproducibly.
func randomSparse(rng *rand.Rand, n, m int, density float64) *CSR {
	c := NewCOO(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < density {
				c.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return c.ToCSR()
}

func TestNewCSRValidation(t *testing.T) {
	// valid 2x2 identity
	if _, err := NewCSR(2, 2, []int{0, 1, 2}, []int{0, 1}, []float64{1, 1}); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	cases := []struct {
		name string
		n, m int
		rp   []int
		col  []int
		val  []float64
	}{
		{"bad rowptr len", 2, 2, []int{0, 2}, []int{0, 1}, []float64{1, 1}},
		{"rowptr not zero", 2, 2, []int{1, 1, 2}, []int{0, 1}, []float64{1, 1}},
		{"len mismatch", 2, 2, []int{0, 1, 2}, []int{0, 1}, []float64{1}},
		{"nnz mismatch", 2, 2, []int{0, 1, 3}, []int{0, 1}, []float64{1, 1}},
		{"col out of range", 2, 2, []int{0, 1, 2}, []int{0, 2}, []float64{1, 1}},
		{"cols unsorted", 2, 2, []int{0, 2, 2}, []int{1, 0}, []float64{1, 1}},
		{"duplicate col", 2, 2, []int{0, 2, 2}, []int{1, 1}, []float64{1, 1}},
		{"rowptr decreasing", 2, 2, []int{0, 2, 1}, []int{0, 1}, []float64{1, 1}},
	}
	for _, tc := range cases {
		if _, err := NewCSR(tc.n, tc.m, tc.rp, tc.col, tc.val); err == nil {
			t.Errorf("%s: invalid CSR accepted", tc.name)
		}
	}
}

func TestAtAndDiag(t *testing.T) {
	a := laplace1D(4)
	if a.At(0, 0) != 2 || a.At(0, 1) != -1 || a.At(0, 3) != 0 {
		t.Fatal("At wrong values")
	}
	d := a.Diag()
	for i, v := range d {
		if v != 2 {
			t.Fatalf("Diag[%d] = %g", i, v)
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(20)
		m := 1 + rng.IntN(20)
		a := randomSparse(rng, n, m, 0.3)
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		a.MulVec(y, x)
		dense := a.Dense()
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < m; j++ {
				want += dense[i][j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("MulVec[%d] = %g want %g", i, y[i], want)
			}
		}
	}
}

func TestMulVecRangePartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randomSparse(rng, 30, 30, 0.2)
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	full := make([]float64, 30)
	a.MulVec(full, x)
	parts := make([]float64, 30)
	a.MulVecRange(parts, x, 0, 10)
	a.MulVecRange(parts, x, 10, 25)
	a.MulVecRange(parts, x, 25, 30)
	for i := range full {
		if full[i] != parts[i] {
			t.Fatalf("range partition differs at %d", i)
		}
	}
}

func TestResidual(t *testing.T) {
	a := laplace1D(5)
	x := []float64{1, 2, 3, 4, 5}
	b := make([]float64, 5)
	a.MulVec(b, x)
	r := make([]float64, 5)
	a.Residual(r, b, x)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("residual[%d] = %g at exact solution", i, v)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 9))
	for trial := 0; trial < 30; trial++ {
		a := randomSparse(rng, 1+rng.IntN(15), 1+rng.IntN(15), 0.25)
		att := a.Transpose().Transpose()
		if att.N != a.N || att.M != a.M || att.NNZ() != a.NNZ() {
			t.Fatal("transpose changed shape")
		}
		for i := 0; i < a.N; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if att.At(i, a.Col[k]) != a.Val[k] {
					t.Fatal("double transpose changed values")
				}
			}
		}
	}
}

func TestTransposeIdentity(t *testing.T) {
	// (A^T x) . y == x . (A y)
	rng := rand.New(rand.NewPCG(5, 5))
	a := randomSparse(rng, 12, 8, 0.3)
	at := a.Transpose()
	x := make([]float64, 12)
	y := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	ay := make([]float64, 12)
	a.MulVec(ay, y)
	atx := make([]float64, 8)
	at.MulVec(atx, x)
	var lhs, rhs float64
	for i := range x {
		lhs += x[i] * ay[i]
	}
	for j := range y {
		rhs += atx[j] * y[j]
	}
	if math.Abs(lhs-rhs) > 1e-10*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestSubmatrix(t *testing.T) {
	a := laplace1D(6)
	// principal submatrix on rows/cols {1,2,4}
	s := a.Submatrix([]int{1, 2, 4})
	if s.N != 3 || s.M != 3 {
		t.Fatalf("submatrix shape %dx%d", s.N, s.M)
	}
	// rows 1,2 are coupled (adjacent), row 4 decoupled from both
	if s.At(0, 0) != 2 || s.At(0, 1) != -1 || s.At(1, 0) != -1 || s.At(2, 2) != 2 {
		t.Fatal("submatrix values wrong")
	}
	if s.At(0, 2) != 0 || s.At(2, 0) != 0 {
		t.Fatal("expected decoupled block")
	}
}

func TestSubmatrixUnsortedIndices(t *testing.T) {
	a := laplace1D(6)
	s1 := a.Submatrix([]int{4, 1, 2})
	s2 := a.Submatrix([]int{1, 2, 4})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if s1.At(i, j) != s2.At(i, j) {
				t.Fatal("unsorted index set changed submatrix")
			}
		}
	}
}

func TestCOOCoalesce(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2)
	c.Add(1, 1, 5)
	c.Add(1, 0, 3)
	a := c.ToCSR()
	if a.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 after coalescing", a.NNZ())
	}
	if a.At(0, 0) != 3 {
		t.Fatalf("coalesced value = %g", a.At(0, 0))
	}
}

func TestCOOCancellationDropsZero(t *testing.T) {
	c := NewCOO(1, 1)
	c.Add(0, 0, 1)
	c.Add(0, 0, -1)
	a := c.ToCSR()
	if a.NNZ() != 0 {
		t.Fatalf("cancelled entry kept: nnz = %d", a.NNZ())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := laplace1D(3)
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] == 99 {
		t.Fatal("Clone aliases storage")
	}
}

func BenchmarkSpMVLaplace1D(b *testing.B) {
	a := laplace1D(100000)
	x := make([]float64, a.N)
	y := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

func TestPermute(t *testing.T) {
	a := laplace1D(5)
	// Reverse ordering: the 1-D Laplacian is symmetric under reversal.
	perm := []int{4, 3, 2, 1, 0}
	p := a.Permute(perm)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if p.At(i, j) != a.At(4-i, 4-j) {
				t.Fatalf("Permute wrong at (%d,%d)", i, j)
			}
		}
	}
	// Identity permutation is a no-op.
	id := a.Permute([]int{0, 1, 2, 3, 4})
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if id.At(i, j) != a.At(i, j) {
				t.Fatal("identity permutation changed matrix")
			}
		}
	}
}

func TestPermutePreservesSpectrumProxy(t *testing.T) {
	// P A P^T has the same Frobenius norm, symmetry, and row-sum
	// multiset as A.
	rng := rand.New(rand.NewPCG(9, 9))
	a := randomSparse(rng, 12, 12, 0.3)
	// Symmetrize.
	at := a.Transpose()
	c := NewCOO(12, 12)
	for i := 0; i < 12; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c.Add(i, a.Col[k], a.Val[k]/2)
		}
		for k := at.RowPtr[i]; k < at.RowPtr[i+1]; k++ {
			c.Add(i, at.Col[k], at.Val[k]/2)
		}
	}
	sym := c.ToCSR()
	perm := rng.Perm(12)
	p := sym.Permute(perm)
	if !p.IsSymmetric(1e-12) {
		t.Fatal("permutation broke symmetry")
	}
	if math.Abs(p.NormFrob()-sym.NormFrob()) > 1e-12 {
		t.Fatal("permutation changed Frobenius norm")
	}
}

func TestPermuteRejectsBad(t *testing.T) {
	a := laplace1D(3)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad permutation %v accepted", perm)
				}
			}()
			a.Permute(perm)
		}()
	}
}

// mustPanic asserts fn panics; the bounds checks below are contracts,
// not recoverable errors.
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestMulVecRangeBounds(t *testing.T) {
	a := laplace1D(5)
	x := make([]float64, 5)
	y := make([]float64, 5)
	// Valid edge cases do not panic.
	a.MulVecRange(y, x, 0, 0)
	a.MulVecRange(y, x, 5, 5)
	a.MulVecRange(y, x, 0, 5)
	mustPanic(t, "short x", func() { a.MulVecRange(y, make([]float64, 4), 0, 5) })
	mustPanic(t, "short y", func() { a.MulVecRange(make([]float64, 4), x, 0, 5) })
	mustPanic(t, "lo negative", func() { a.MulVecRange(y, x, -1, 3) })
	mustPanic(t, "hi past n", func() { a.MulVecRange(y, x, 0, 6) })
	mustPanic(t, "lo > hi", func() { a.MulVecRange(y, x, 4, 2) })
}

func TestRowDotBounds(t *testing.T) {
	a := laplace1D(5)
	x := []float64{1, 1, 1, 1, 1}
	if got := a.RowDot(0, x); got != 1 {
		t.Fatalf("RowDot(0) = %g, want 1", got)
	}
	mustPanic(t, "row negative", func() { a.RowDot(-1, x) })
	mustPanic(t, "row past n", func() { a.RowDot(5, x) })
	mustPanic(t, "short x", func() { a.RowDot(0, make([]float64, 4)) })
}

func TestCOOToCSREmpty(t *testing.T) {
	// No entries at all.
	c := NewCOO(3, 3)
	a := c.ToCSR()
	if a.NNZ() != 0 || a.N != 3 || a.M != 3 || len(a.RowPtr) != 4 {
		t.Fatalf("empty COO gave nnz=%d n=%d m=%d", a.NNZ(), a.N, a.M)
	}
	y := make([]float64, 3)
	a.MulVec(y, []float64{1, 2, 3})
	for i, v := range y {
		if v != 0 {
			t.Fatalf("empty matrix MulVec[%d] = %g", i, v)
		}
	}
	// Every entry cancels: the assembled matrix must be structurally
	// empty too, with a consistent (all-zero) row pointer.
	c2 := NewCOO(3, 3)
	c2.Add(1, 2, 4)
	c2.Add(1, 2, -4)
	c2.Add(0, 0, 1)
	c2.Add(0, 0, -1)
	a2 := c2.ToCSR()
	if a2.NNZ() != 0 {
		t.Fatalf("all-cancelling COO kept %d entries", a2.NNZ())
	}
	for i, p := range a2.RowPtr {
		if p != 0 {
			t.Fatalf("RowPtr[%d] = %d after total cancellation", i, p)
		}
	}
}
