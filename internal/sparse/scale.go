package sparse

import (
	"fmt"
	"math"
)

// ScaleUnitDiagonal returns D^{-1/2} A D^{-1/2} where D = diag(A), plus
// the scaling vector d = diag(A)^{1/2}. The result has unit diagonal;
// symmetry and positive definiteness are preserved. The paper assumes
// all systems are in this form so the Jacobi iteration matrix is
// G = I - A.
//
// The right-hand side of the original system A0 x0 = b0 transforms as
// b = D^{-1/2} b0 and the solution back-transforms as x0 = D^{-1/2} x;
// ScaleVector and UnscaleVector apply those maps.
func ScaleUnitDiagonal(a *CSR) (*CSR, []float64, error) {
	if !a.IsSquare() {
		return nil, nil, fmt.Errorf("sparse: cannot diagonal-scale non-square matrix")
	}
	d := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		di := a.At(i, i)
		if di <= 0 {
			return nil, nil, fmt.Errorf("sparse: non-positive diagonal %g at row %d", di, i)
		}
		d[i] = math.Sqrt(di)
	}
	out := a.Clone()
	for i := 0; i < out.N; i++ {
		for k := out.RowPtr[i]; k < out.RowPtr[i+1]; k++ {
			out.Val[k] /= d[i] * d[out.Col[k]]
		}
	}
	return out, d, nil
}

// ScaleVector maps a right-hand side of the original system into the
// scaled system: b_scaled[i] = b[i] / d[i].
func ScaleVector(d, b []float64) []float64 {
	out := make([]float64, len(b))
	for i := range b {
		out[i] = b[i] / d[i]
	}
	return out
}

// UnscaleVector maps a solution of the scaled system back to the
// original variables: x_orig[i] = x[i] / d[i].
func UnscaleVector(d, x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] / d[i]
	}
	return out
}

// JacobiIterationMatrix returns G = I - A explicitly in CSR form for a
// unit-diagonal matrix A. Rows keep sorted column order. Diagonal
// entries of G that become exactly zero (the usual case, 1 - 1) are
// dropped.
func JacobiIterationMatrix(a *CSR) *CSR {
	if !a.IsSquare() {
		panic("sparse: JacobiIterationMatrix requires square matrix")
	}
	c := NewCOO(a.N, a.N)
	for i := 0; i < a.N; i++ {
		sawDiag := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			if j == i {
				sawDiag = true
				if v := 1 - a.Val[k]; v != 0 {
					c.Add(i, j, v)
				}
			} else {
				c.Add(i, j, -a.Val[k])
			}
		}
		if !sawDiag {
			c.Add(i, i, 1)
		}
	}
	return c.ToCSR()
}

// Abs returns the matrix of absolute values |A|, used for the Chazan–
// Miranker condition rho(|G|) < 1.
func (a *CSR) Abs() *CSR {
	out := a.Clone()
	for k := range out.Val {
		out.Val[k] = math.Abs(out.Val[k])
	}
	return out
}
