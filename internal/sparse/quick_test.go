package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: COO assembly is order-independent — shuffling the entry
// insertion order produces the identical CSR.
func TestCOOOrderIndependenceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.IntN(12)
		type entry struct {
			i, j int
			v    float64
		}
		var entries []entry
		cnt := rng.IntN(40)
		for e := 0; e < cnt; e++ {
			entries = append(entries, entry{rng.IntN(n), rng.IntN(n), rng.NormFloat64()})
		}
		build := func(perm []int) *CSR {
			c := NewCOO(n, n)
			for _, k := range perm {
				c.Add(entries[k].i, entries[k].j, entries[k].v)
			}
			return c.ToCSR()
		}
		id := make([]int, len(entries))
		for k := range id {
			id[k] = k
		}
		a := build(id)
		b := build(rng.Perm(len(entries)))
		if a.NNZ() != b.NNZ() {
			t.Fatal("shuffled assembly changed structure")
		}
		for i := 0; i < n; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if math.Abs(b.At(i, a.Col[k])-a.Val[k]) > 1e-12 {
					t.Fatal("shuffled assembly changed values")
				}
			}
		}
	}
}

// Property: SpMV is linear: A(alpha x + y) == alpha Ax + Ay.
func TestSpMVLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 104))
	a := randomSparse(rng, 20, 20, 0.25)
	f := func(alphaRaw int8) bool {
		alpha := float64(alphaRaw) / 16
		x := make([]float64, 20)
		y := make([]float64, 20)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		lhsArg := make([]float64, 20)
		for i := range lhsArg {
			lhsArg[i] = alpha*x[i] + y[i]
		}
		lhs := make([]float64, 20)
		a.MulVec(lhs, lhsArg)
		ax := make([]float64, 20)
		ay := make([]float64, 20)
		a.MulVec(ax, x)
		a.MulVec(ay, y)
		for i := range lhs {
			want := alpha*ax[i] + ay[i]
			if math.Abs(lhs[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Permute by a random permutation then by its inverse
// restores the matrix.
func TestPermuteInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(105, 106))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(15)
		a := randomSparse(rng, n, n, 0.3)
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		back := a.Permute(perm).Permute(inv)
		if back.NNZ() != a.NNZ() {
			t.Fatal("permutation roundtrip changed structure")
		}
		for i := 0; i < n; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if back.At(i, a.Col[k]) != a.Val[k] {
					t.Fatal("permutation roundtrip changed values")
				}
			}
		}
	}
}
