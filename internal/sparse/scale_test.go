package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestScaleUnitDiagonal(t *testing.T) {
	a := laplace1D(8)
	s, d, err := ScaleUnitDiagonal(a)
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasUnitDiagonal(1e-14) {
		t.Fatal("scaled matrix lacks unit diagonal")
	}
	if !s.IsSymmetric(1e-14) {
		t.Fatal("scaling broke symmetry")
	}
	for i, di := range d {
		if math.Abs(di-math.Sqrt2) > 1e-14 {
			t.Fatalf("d[%d] = %g, want sqrt(2)", i, di)
		}
	}
}

func TestScaleRejectsNonPositiveDiagonal(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, -1)
	c.Add(1, 1, 1)
	if _, _, err := ScaleUnitDiagonal(c.ToCSR()); err == nil {
		t.Fatal("negative diagonal accepted")
	}
	c2 := NewCOO(2, 2)
	c2.Add(0, 1, 1)
	c2.Add(1, 0, 1)
	if _, _, err := ScaleUnitDiagonal(c2.ToCSR()); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}

// Scaled-system solutions must back-transform to original solutions.
func TestScaleSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	a := laplace1D(10)
	xTrue := make([]float64, 10)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 10)
	a.MulVec(b, xTrue)

	s, d, err := ScaleUnitDiagonal(a)
	if err != nil {
		t.Fatal(err)
	}
	bs := ScaleVector(d, b)
	// The scaled system's exact solution is D^{1/2} xTrue.
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = xTrue[i] * d[i]
	}
	r := make([]float64, 10)
	s.Residual(r, bs, xs)
	for i, v := range r {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("scaled residual[%d] = %g", i, v)
		}
	}
	back := UnscaleVector(d, xs)
	for i := range back {
		if math.Abs(back[i]-xTrue[i]) > 1e-12 {
			t.Fatalf("back-transform differs at %d", i)
		}
	}
}

func TestJacobiIterationMatrix(t *testing.T) {
	a := laplace1D(6)
	s, _, err := ScaleUnitDiagonal(a)
	if err != nil {
		t.Fatal(err)
	}
	g := JacobiIterationMatrix(s)
	// G = I - A: diagonal should vanish, off-diagonals negate.
	for i := 0; i < g.N; i++ {
		if math.Abs(g.At(i, i)) > 1e-14 {
			t.Fatalf("G diagonal %g at %d", g.At(i, i), i)
		}
		for j := 0; j < g.M; j++ {
			if i == j {
				continue
			}
			if math.Abs(g.At(i, j)+s.At(i, j)) > 1e-15 {
				t.Fatalf("G(%d,%d) = %g, want %g", i, j, g.At(i, j), -s.At(i, j))
			}
		}
	}
	// G x + b reproduces one Jacobi step: x1 = (I-A)x0 + b.
	x0 := []float64{1, -1, 2, 0, 1, 3}
	b := []float64{1, 1, 1, 1, 1, 1}
	gx := make([]float64, 6)
	g.MulVec(gx, x0)
	ax := make([]float64, 6)
	s.MulVec(ax, x0)
	for i := range gx {
		step := x0[i] - ax[i] + b[i]
		if math.Abs((gx[i]+b[i])-step) > 1e-13 {
			t.Fatalf("iteration matrix inconsistent at %d", i)
		}
	}
}

func TestJacobiIterationMatrixMissingDiagonal(t *testing.T) {
	// Matrix with no stored diagonal in row 0: G must gain a 1 there.
	c := NewCOO(2, 2)
	c.Add(0, 1, 0.5)
	c.Add(1, 0, 0.5)
	c.Add(1, 1, 1)
	g := JacobiIterationMatrix(c.ToCSR())
	if g.At(0, 0) != 1 {
		t.Fatalf("G(0,0) = %g, want 1", g.At(0, 0))
	}
	if g.At(1, 1) != 0 {
		t.Fatalf("G(1,1) = %g, want 0", g.At(1, 1))
	}
}

func TestAbs(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, -3)
	c.Add(1, 1, 4)
	a := c.ToCSR().Abs()
	if a.At(0, 0) != 3 || a.At(1, 1) != 4 {
		t.Fatal("Abs wrong")
	}
}
