package sparse

import "math"

// IsSquare reports whether the matrix is square.
func (a *CSR) IsSquare() bool { return a.N == a.M }

// IsSymmetric reports whether A equals its transpose to within tol
// (relative to the larger of the two paired entries).
func (a *CSR) IsSymmetric(tol float64) bool {
	if !a.IsSquare() {
		return false
	}
	at := a.Transpose()
	if len(at.Val) != len(a.Val) {
		return false
	}
	for i := 0; i < a.N; i++ {
		if a.RowPtr[i] != at.RowPtr[i] {
			return false
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.Col[k] != at.Col[k] {
				return false
			}
			d := math.Abs(a.Val[k] - at.Val[k])
			scale := math.Max(math.Abs(a.Val[k]), math.Abs(at.Val[k]))
			if d > tol*math.Max(1, scale) {
				return false
			}
		}
	}
	return true
}

// HasUnitDiagonal reports whether every diagonal entry is 1 within tol.
func (a *CSR) HasUnitDiagonal(tol float64) bool {
	for i := 0; i < min(a.N, a.M); i++ {
		if math.Abs(a.At(i, i)-1) > tol {
			return false
		}
	}
	return true
}

// RowWDD reports whether row i is weakly diagonally dominant:
// |a_ii| >= sum_{j != i} |a_ij|.
func (a *CSR) RowWDD(i int) bool {
	var off, diag float64
	for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
		if a.Col[k] == i {
			diag = math.Abs(a.Val[k])
		} else {
			off += math.Abs(a.Val[k])
		}
	}
	// Tiny relative slack absorbs roundoff from scaling.
	return diag >= off*(1-1e-12)
}

// IsWDD reports whether every row is weakly diagonally dominant. For
// such matrices (scaled to unit diagonal) Theorem 1 of the paper
// applies: every asynchronous propagation matrix has infinity norm 1.
func (a *CSR) IsWDD() bool {
	for i := 0; i < a.N; i++ {
		if !a.RowWDD(i) {
			return false
		}
	}
	return true
}

// WDDFraction returns the fraction of rows that are weakly diagonally
// dominant. The paper's FE matrix has roughly half of its rows W.D.D.
func (a *CSR) WDDFraction() float64 {
	if a.N == 0 {
		return 1
	}
	cnt := 0
	for i := 0; i < a.N; i++ {
		if a.RowWDD(i) {
			cnt++
		}
	}
	return float64(cnt) / float64(a.N)
}

// NormInf returns the induced infinity norm: max row sum of absolute
// values.
func (a *CSR) NormInf() float64 {
	var m float64
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += math.Abs(a.Val[k])
		}
		if s > m {
			m = s
		}
	}
	return m
}

// Norm1 returns the induced 1-norm: max column sum of absolute values.
func (a *CSR) Norm1() float64 {
	colSum := make([]float64, a.M)
	for k, c := range a.Col {
		colSum[c] += math.Abs(a.Val[k])
	}
	var m float64
	for _, s := range colSum {
		if s > m {
			m = s
		}
	}
	return m
}

// NormFrob returns the Frobenius norm.
func (a *CSR) NormFrob() float64 {
	var s float64
	for _, v := range a.Val {
		s += v * v
	}
	return math.Sqrt(s)
}

// GershgorinRadius returns max_i sum_{j != i} |a_ij|, the largest
// Gershgorin disc radius. For a unit-diagonal matrix, every eigenvalue
// of the Jacobi iteration matrix G = I - A lies within this radius of
// the origin... more precisely |lambda(G)| <= GershgorinRadius(A).
func (a *CSR) GershgorinRadius() float64 {
	var m float64
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.Col[k] != i {
				s += math.Abs(a.Val[k])
			}
		}
		if s > m {
			m = s
		}
	}
	return m
}
