package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/resilience"
)

// Segment files wrap each record's JSON line in the shared resilience
// frame with this magic. A newline terminates every frame so segments
// stay line-greppable; the reader tolerates the separator either way.
const (
	recordMagic   = "AJLR"
	RecordVersion = 1
	segmentExt    = ".ajl"
	indexName     = "index.json"
)

// Store is one ledger directory. Opening never blocks other writers:
// each Store appends to its own uniquely named segment file, so two
// processes recording concurrently can never interleave bytes; readers
// see whole frames or a detectable torn tail, never a mix.
type Store struct {
	dir string

	mu      sync.Mutex
	seg     *os.File
	segName string
	wrote   int
}

// Open creates (if necessary) and opens a ledger directory. The
// segment file is created lazily on first Append, so read-only
// consumers (ajreport) leave no trace.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("ledger: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the ledger root directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Append durably adds one record, assigning ID/Start/Schema/Env when
// the caller left them empty, and returns the record's ID. The framed
// bytes are written with a single write syscall to the store's own
// segment and synced, so a crash tears at most this one record — and
// the CRC frame lets reopen detect and drop the torn tail.
func (s *Store) Append(rec *RunRecord) (string, error) {
	if s == nil {
		return "", errors.New("ledger: nil store")
	}
	if rec.Schema == 0 {
		rec.Schema = RecordSchema
	}
	if rec.Start.IsZero() {
		rec.Start = time.Now()
	}
	if rec.ID == "" {
		rec.ID = NewID(rec.Start)
	}
	if rec.Env == (Env{}) {
		rec.Env = CaptureEnv()
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return "", fmt.Errorf("ledger: encode record: %w", err)
	}
	framed := append(resilience.EncodeFrame(recordMagic, RecordVersion, payload), '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		name := fmt.Sprintf("seg-%016x-%05x%s", uint64(time.Now().UnixNano()), os.Getpid()&0xfffff, segmentExt)
		f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return "", fmt.Errorf("ledger: open segment: %w", err)
		}
		s.seg, s.segName = f, name
	}
	if _, err := s.seg.Write(framed); err != nil {
		return "", fmt.Errorf("ledger: append record: %w", err)
	}
	if err := s.seg.Sync(); err != nil {
		return "", fmt.Errorf("ledger: sync segment: %w", err)
	}
	s.wrote++
	return rec.ID, nil
}

// Close closes the write segment (if any) and refreshes the index.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	seg := s.seg
	s.seg = nil
	wrote := s.wrote
	s.mu.Unlock()
	var err error
	if seg != nil {
		err = seg.Close()
	}
	if wrote > 0 {
		if _, ierr := s.RefreshIndex(); err == nil && ierr != nil {
			err = ierr
		}
	}
	return err
}

// ScanStats summarizes one full read of the ledger.
type ScanStats struct {
	Segments int `json:"segments"`
	Records  int `json:"records"`
	// Torn counts truncated or corrupted tails dropped during the
	// scan — nonzero after a writer was killed mid-append.
	Torn int `json:"torn"`
	// Skipped counts records written by a future schema.
	Skipped int `json:"skipped"`
}

// Records reads every record in the ledger, oldest first (by Start,
// then ID). Torn tails are dropped, not fatal: a killed-mid-write
// ledger reopens cleanly with every completed record intact.
func (s *Store) Records() ([]*RunRecord, ScanStats, error) {
	var stats ScanStats
	if s == nil {
		return nil, stats, errors.New("ledger: nil store")
	}
	names, err := s.segments()
	if err != nil {
		return nil, stats, err
	}
	var recs []*RunRecord
	for _, name := range names {
		rs, torn, err := readSegment(filepath.Join(s.dir, name))
		if err != nil {
			return nil, stats, err
		}
		stats.Segments++
		stats.Torn += torn
		for _, r := range rs {
			if r.Schema > RecordSchema {
				stats.Skipped++
				continue
			}
			recs = append(recs, r)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].Start.Equal(recs[j].Start) {
			return recs[i].Start.Before(recs[j].Start)
		}
		return recs[i].ID < recs[j].ID
	})
	stats.Records = len(recs)
	return recs, stats, nil
}

func (s *Store) segments() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segmentExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// readSegment parses one segment file. Any truncation or corruption
// ends the segment at the last good frame: everything before it is
// returned, everything after is counted as torn. (Frames are length-
// prefixed, so there is no reliable resynchronization point past a bad
// header — the tail is dropped wholesale, which matches the only
// writer discipline that produces these files: append-only.)
func readSegment(path string) ([]*RunRecord, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("ledger: %w", err)
	}
	var recs []*RunRecord
	torn := 0
	for len(data) > 0 {
		// Tolerate the newline separators between frames.
		if data[0] == '\n' {
			data = data[1:]
			continue
		}
		payload, rest, err := resilience.DecodeFrame(data, recordMagic, RecordVersion)
		if err != nil {
			torn++
			break
		}
		var r RunRecord
		if jerr := json.Unmarshal(payload, &r); jerr != nil {
			torn++
			break
		}
		recs = append(recs, &r)
		data = rest
	}
	return recs, torn, nil
}

// Index is the cached per-segment summary, refreshed with the same
// temp+rename discipline as checkpoints so concurrent refreshers can
// only replace it wholesale, never corrupt it. It is strictly a
// cache: Records() always trusts the segments themselves.
type Index struct {
	Updated  time.Time               `json:"updated"`
	Segments map[string]SegmentEntry `json:"segments"`
}

// SegmentEntry summarizes one segment at index-refresh time.
type SegmentEntry struct {
	Size    int64 `json:"size"`
	Records int   `json:"records"`
	Torn    int   `json:"torn"`
}

// RefreshIndex rescans every segment and atomically replaces the
// index file.
func (s *Store) RefreshIndex() (*Index, error) {
	names, err := s.segments()
	if err != nil {
		return nil, err
	}
	idx := &Index{Updated: time.Now(), Segments: map[string]SegmentEntry{}}
	for _, name := range names {
		path := filepath.Join(s.dir, name)
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		recs, torn, err := readSegment(path)
		if err != nil {
			continue
		}
		idx.Segments[name] = SegmentEntry{Size: fi.Size(), Records: len(recs), Torn: torn}
	}
	buf, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return nil, err
	}
	tmp := filepath.Join(s.dir, indexName+".tmp")
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("ledger: write index: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, indexName)); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("ledger: publish index: %w", err)
	}
	return idx, nil
}

// ReadIndex loads the cached index; ok is false when the cache is
// missing or stale (a segment grew, appeared, or vanished since the
// refresh), in which case callers should fall back to Records().
func (s *Store) ReadIndex() (idx *Index, ok bool) {
	buf, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil {
		return nil, false
	}
	idx = &Index{}
	if err := json.Unmarshal(buf, idx); err != nil {
		return nil, false
	}
	names, err := s.segments()
	if err != nil || len(names) != len(idx.Segments) {
		return idx, false
	}
	for _, name := range names {
		ent, seen := idx.Segments[name]
		if !seen {
			return idx, false
		}
		fi, err := os.Stat(filepath.Join(s.dir, name))
		if err != nil || fi.Size() != ent.Size {
			return idx, false
		}
	}
	return idx, true
}
