package ledger

import (
	"testing"
	"time"
)

func mkRecs() []*RunRecord {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	return []*RunRecord{
		{ID: "aaa1", Start: base, Tool: "ajsolve", Substrate: "shm", Method: "async",
			Matrix:  MatrixInfo{Gen: "fd:8x8", Fingerprint: "f1"},
			Outcome: Outcome{Converged: true, RelRes: 1e-9}},
		{ID: "aab2", Start: base.Add(time.Minute), Tool: "ajsolve", Substrate: "shm", Method: "sync",
			Matrix:  MatrixInfo{Gen: "fd:8x8", Fingerprint: "f1"},
			Outcome: Outcome{Converged: false, StopReason: "max-iter", RelRes: 0.5}},
		{ID: "bbb3", Start: base.Add(2 * time.Minute), Tool: "ajexp", Substrate: "dist", Method: "async",
			Sweep: "s1", Matrix: MatrixInfo{Gen: "suite:x", Fingerprint: "f2"},
			Outcome: Outcome{Converged: true, RelRes: 1e-8}},
	}
}

func TestFilterSelect(t *testing.T) {
	recs := mkRecs()
	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", Filter{}, 3},
		{"tool", Filter{Tool: "ajsolve"}, 2},
		{"substrate", Filter{Substrate: "dist"}, 1},
		{"method+tool", Filter{Tool: "ajsolve", Method: "sync"}, 1},
		{"sweep", Filter{Sweep: "s1"}, 1},
		{"matrix fingerprint", Filter{Matrix: "f1"}, 2},
		{"matrix gen substring", Filter{Matrix: "fd:8"}, 2},
		{"failed", Filter{FailedOnly: true}, 1},
		{"converged", Filter{ConvergedOnly: true}, 2},
		{"since", Filter{Since: recs[1].Start}, 2},
	}
	for _, c := range cases {
		if got := len(Select(recs, c.f)); got != c.want {
			t.Errorf("%s: got %d, want %d", c.name, got, c.want)
		}
	}
}

func TestFindPrefix(t *testing.T) {
	recs := mkRecs()
	if r, err := Find(recs, "bbb"); err != nil || r.ID != "bbb3" {
		t.Fatalf("unique prefix: %v, %v", r, err)
	}
	if _, err := Find(recs, "aa"); err == nil {
		t.Fatal("ambiguous prefix must error")
	}
	if r, err := Find(recs, "aaa1"); err != nil || r.ID != "aaa1" {
		t.Fatalf("exact ID: %v, %v", r, err)
	}
	if _, err := Find(recs, "zzz"); err == nil {
		t.Fatal("unknown ID must error")
	}
}

func TestDiff(t *testing.T) {
	recs := mkRecs()
	a, b := recs[0], recs[1]
	a.Counters = map[string]uint64{"relax": 100, "yield": 5}
	b.Counters = map[string]uint64{"relax": 120}
	rows := Diff(a, b)
	byField := map[string]DiffRow{}
	for _, r := range rows {
		byField[r.Field] = r
	}
	for field, wantChanged := range map[string]bool{
		"tool":                false,
		"method":              true,
		"matrix.fingerprint":  false,
		"outcome.converged":   true,
		"outcome.stop_reason": true,
		"counters.relax":      true,
		"counters.yield":      true, // only one side has it
	} {
		r, ok := byField[field]
		if !ok {
			t.Errorf("diff missing field %s", field)
			continue
		}
		if r.Changed != wantChanged {
			t.Errorf("%s: changed=%v (%q vs %q), want %v", field, r.Changed, r.A, r.B, wantChanged)
		}
	}
}

func TestRateTable(t *testing.T) {
	var recs []*RunRecord
	// Three reps each at 2 and 4 workers; rho-hat medians are the
	// middle values. One record without a fit must be ignored.
	for i, rho := range []float64{0.80, 0.82, 0.84} {
		recs = append(recs, &RunRecord{
			Params:  map[string]float64{"workers": 2},
			Rate:    RateInfo{RhoHat: rho, Lo: rho - 0.01, Hi: rho + 0.01, Samples: 32},
			Outcome: Outcome{RelRes: float64(i + 1)},
		})
	}
	for _, rho := range []float64{0.70, 0.72, 0.74} {
		recs = append(recs, &RunRecord{
			Config:  SolveConfig{Threads: 4}, // fallback path: no Params
			Rate:    RateInfo{RhoHat: rho, Samples: 16},
			Outcome: Outcome{RelRes: 1},
		})
	}
	recs = append(recs, &RunRecord{Params: map[string]float64{"workers": 8}}) // no fit

	rows := RateTable(recs)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (unfitted group dropped): %+v", len(rows), rows)
	}
	if rows[0].Workers != 2 || rows[0].RhoHat != 0.82 || rows[0].Runs != 3 {
		t.Errorf("workers=2 row: %+v, want median rho 0.82 over 3 runs", rows[0])
	}
	if rows[0].RelRes != 2 {
		t.Errorf("workers=2 mean rel-res = %v, want 2", rows[0].RelRes)
	}
	if rows[1].Workers != 4 || rows[1].RhoHat != 0.72 {
		t.Errorf("workers=4 row: %+v, want median rho 0.72 via Threads fallback", rows[1])
	}
}

func TestSweepList(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	recs := []*RunRecord{
		{Sweep: "old", Start: base},
		{Sweep: "new", Start: base.Add(time.Hour)},
		{Sweep: "new", Start: base.Add(2 * time.Hour)},
		{Start: base.Add(3 * time.Hour)}, // sweepless: excluded
	}
	sw := SweepList(recs)
	if len(sw) != 2 || sw[0].ID != "new" || sw[0].Runs != 2 || sw[1].ID != "old" {
		t.Fatalf("sweep list = %+v, want [new(2) old(1)] newest first", sw)
	}
}
