package ledger

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// DefaultBundleCap bounds a post-mortem bundle's total on-disk size
// (all part files plus the manifest): 1 MiB.
const DefaultBundleCap = 1 << 20

// manifestReserve is held back from the cap for the manifest itself,
// so the bound covers the whole directory.
const manifestReserve = 2 << 10

// BundleInputs is everything the flight recorder can snapshot when a
// run ends badly. All fields except Record are optional; absent
// sources simply produce no part file.
type BundleInputs struct {
	Record *RunRecord
	// Reason is why the recorder fired: "divergence-latched",
	// "non-converged", "fatal", ...
	Reason string
	// Registry renders the /metrics.json snapshot part.
	Registry *obs.Registry
	// Trace contributes the ring tail (newest events across workers).
	Trace *trace.Recorder
}

// bundlePart is one rendered part before it is written.
type bundlePart struct {
	name      string
	data      []byte
	truncated bool
}

// manifest is the bundle's own table of contents.
type manifest struct {
	RecordID string         `json:"record_id"`
	Reason   string         `json:"reason"`
	Written  time.Time      `json:"written"`
	CapBytes int            `json:"cap_bytes"`
	Parts    []manifestPart `json:"parts"`
}

type manifestPart struct {
	Name      string `json:"name"`
	Bytes     int    `json:"bytes"`
	Truncated bool   `json:"truncated,omitempty"`
}

// traceLine is one JSONL line of the trace-tail part.
type traceLine struct {
	Worker  int    `json:"w"`
	TSNs    int64  `json:"ts_ns"`
	Kind    string `json:"kind"`
	Row     int32  `json:"row"`
	Iter    int32  `json:"iter"`
	Peer    int32  `json:"peer"`
	Payload int64  `json:"payload,omitempty"`
}

// WriteBundle emits the post-mortem bundle for in.Record into
// dir/bundles/<recordID>/ and returns the bundle path relative to dir.
// Parts render in priority order — record.json, alerts.json,
// metrics.json, trace-tail.jsonl — into a byte budget of capBytes
// (DefaultBundleCap when <= 0); the trace tail keeps the newest events
// that fit and lower-priority parts are dropped whole when the budget
// runs out, so the directory's total size never exceeds the cap. The
// record must already carry its ID (assign with NewID before calling,
// then Append after setting Record.Bundle to the returned path).
func WriteBundle(dir string, in BundleInputs, capBytes int) (string, error) {
	if in.Record == nil || in.Record.ID == "" {
		return "", fmt.Errorf("ledger: bundle needs a record with an assigned ID")
	}
	if capBytes <= 0 {
		capBytes = DefaultBundleCap
	}
	budget := capBytes - manifestReserve
	if budget < 0 {
		budget = 0
	}

	var parts []bundlePart
	add := func(name string, data []byte, truncated bool) bool {
		if len(data) > budget {
			return false
		}
		parts = append(parts, bundlePart{name: name, data: data, truncated: truncated})
		budget -= len(data)
		return true
	}

	// The bundle path is deterministic given the record ID; stamping it
	// on the record before marshaling makes the bundled record.json
	// self-referential (and matches what the caller appends).
	rel := filepath.Join("bundles", in.Record.ID)
	in.Record.Bundle = rel

	// record.json: the run record itself, always first in line so even
	// a tiny cap keeps the essential context.
	if rec, err := json.MarshalIndent(in.Record, "", "  "); err == nil {
		add("record.json", append(rec, '\n'), false)
	}

	// alerts.json: the alert timeline (already replayed into the
	// record, duplicated here so the bundle is self-contained even if
	// the ledger append later fails).
	if len(in.Record.Alerts) > 0 {
		if buf, err := json.MarshalIndent(in.Record.Alerts, "", "  "); err == nil {
			add("alerts.json", append(buf, '\n'), false)
		}
	}

	// metrics.json: the full registry snapshot, same shape as the
	// /metrics.json endpoint.
	if in.Registry != nil {
		var buf bytes.Buffer
		if err := in.Registry.WriteJSON(&buf); err == nil {
			add("metrics.json", buf.Bytes(), false)
		}
	}

	// trace-tail.jsonl: the newest trace events across all rings,
	// time-ordered, trimmed oldest-first to whatever budget remains.
	if in.Trace != nil && budget > 0 {
		if data, truncated := renderTraceTail(in.Trace, budget); len(data) > 0 {
			add("trace-tail.jsonl", data, truncated)
		}
	}

	abs := filepath.Join(dir, rel)
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return "", fmt.Errorf("ledger: bundle dir: %w", err)
	}
	man := manifest{
		RecordID: in.Record.ID,
		Reason:   in.Reason,
		Written:  time.Now(),
		CapBytes: capBytes,
	}
	for _, p := range parts {
		if err := os.WriteFile(filepath.Join(abs, p.name), p.data, 0o644); err != nil {
			return "", fmt.Errorf("ledger: bundle part %s: %w", p.name, err)
		}
		man.Parts = append(man.Parts, manifestPart{Name: p.name, Bytes: len(p.data), Truncated: p.truncated})
	}
	mbuf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(abs, "manifest.json"), append(mbuf, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("ledger: bundle manifest: %w", err)
	}
	return rel, nil
}

// BundleSize totals the on-disk bytes of a bundle directory.
func BundleSize(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			total += fi.Size()
		}
		return nil
	})
	return total, err
}

// renderTraceTail renders the newest trace events that fit in budget
// bytes as JSONL, dropping oldest lines first. truncated reports
// whether anything was cut.
func renderTraceTail(rec *trace.Recorder, budget int) (data []byte, truncated bool) {
	var evs []traceLine
	for w := 0; w < rec.Workers(); w++ {
		r := rec.Worker(w)
		for _, e := range r.Events() {
			evs = append(evs, traceLine{
				Worker: w, TSNs: e.TS, Kind: e.Kind.String(),
				Row: e.Row, Iter: e.Iter, Peer: e.Peer, Payload: e.Payload,
			})
		}
	}
	if len(evs) == 0 {
		return nil, false
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TSNs < evs[j].TSNs })

	// Render newest-first until the budget fills, then reverse back to
	// chronological order.
	var lines [][]byte
	used := 0
	for i := len(evs) - 1; i >= 0; i-- {
		line, err := json.Marshal(evs[i])
		if err != nil {
			continue
		}
		if used+len(line)+1 > budget {
			truncated = true
			break
		}
		lines = append(lines, line)
		used += len(line) + 1
	}
	if len(lines) == 0 {
		return nil, true
	}
	var buf bytes.Buffer
	buf.Grow(used)
	for i := len(lines) - 1; i >= 0; i-- {
		buf.Write(lines[i])
		buf.WriteByte('\n')
	}
	return buf.Bytes(), truncated || len(lines) < len(evs)
}
