package ledger

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Filter selects records. Zero fields match everything; string fields
// match exactly except Matrix, which matches the fingerprint exactly
// or the generator spec as a substring.
type Filter struct {
	Tool      string
	Substrate string
	Method    string
	Transport string
	Sweep     string
	Matrix    string
	// Rank keeps records that embed a sub-record for this rank
	// ("0", "2", ...); empty matches everything. `ajreport -rank`.
	Rank  string
	Since time.Time
	// FailedOnly keeps non-converged runs; ConvergedOnly the inverse.
	FailedOnly    bool
	ConvergedOnly bool
}

// Match reports whether the record passes the filter.
func (f Filter) Match(r *RunRecord) bool {
	if f.Tool != "" && r.Tool != f.Tool {
		return false
	}
	if f.Substrate != "" && r.Substrate != f.Substrate {
		return false
	}
	if f.Method != "" && r.Method != f.Method {
		return false
	}
	if f.Transport != "" && r.Transport != f.Transport {
		return false
	}
	if f.Sweep != "" && r.Sweep != f.Sweep {
		return false
	}
	if f.Matrix != "" && r.Matrix.Fingerprint != f.Matrix &&
		!strings.Contains(r.Matrix.Gen, f.Matrix) {
		return false
	}
	if f.Rank != "" {
		want, err := strconv.Atoi(f.Rank)
		if err != nil {
			return false
		}
		if FindRank(r, want) == nil {
			return false
		}
	}
	if !f.Since.IsZero() && r.Start.Before(f.Since) {
		return false
	}
	if f.FailedOnly && r.Outcome.Converged {
		return false
	}
	if f.ConvergedOnly && !r.Outcome.Converged {
		return false
	}
	return true
}

// Select returns the records passing the filter, preserving order.
func Select(recs []*RunRecord, f Filter) []*RunRecord {
	var out []*RunRecord
	for _, r := range recs {
		if f.Match(r) {
			out = append(out, r)
		}
	}
	return out
}

// FindRank returns the record's embedded sub-record for a rank, or
// nil when the record has none (single-process run, or the rank's
// report never reached the root).
func FindRank(r *RunRecord, rank int) *RankRecord {
	for i := range r.Ranks {
		if r.Ranks[i].Rank == rank {
			return &r.Ranks[i]
		}
	}
	return nil
}

// Find resolves an ID or unique ID prefix.
func Find(recs []*RunRecord, idPrefix string) (*RunRecord, error) {
	var found *RunRecord
	for _, r := range recs {
		if r.ID == idPrefix {
			return r, nil
		}
		if strings.HasPrefix(r.ID, idPrefix) {
			if found != nil {
				return nil, fmt.Errorf("ledger: id prefix %q is ambiguous", idPrefix)
			}
			found = r
		}
	}
	if found == nil {
		return nil, fmt.Errorf("ledger: no record with id %q", idPrefix)
	}
	return found, nil
}

// DiffRow is one field's comparison between two records.
type DiffRow struct {
	Field   string
	A, B    string
	Changed bool
}

func diffRow(field, a, b string) DiffRow {
	return DiffRow{Field: field, A: a, B: b, Changed: a != b}
}

func fnum(v float64) string {
	if v == 0 {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func fdur(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// Diff compares two records field by field — the "what changed
// between these two solves" view: config, environment, outcome, rate.
// Every row is returned with a Changed flag so callers can show all
// rows or only the deltas.
func Diff(a, b *RunRecord) []DiffRow {
	rows := []DiffRow{
		diffRow("tool", a.Tool, b.Tool),
		diffRow("substrate", a.Substrate, b.Substrate),
		diffRow("method", a.Method, b.Method),
		diffRow("transport", a.Transport, b.Transport),
		diffRow("matrix.gen", a.Matrix.Gen, b.Matrix.Gen),
		diffRow("matrix.n", strconv.Itoa(a.Matrix.N), strconv.Itoa(b.Matrix.N)),
		diffRow("matrix.fingerprint", a.Matrix.Fingerprint, b.Matrix.Fingerprint),
		diffRow("matrix.wdd", fnum(a.Matrix.WDD), fnum(b.Matrix.WDD)),
		diffRow("config.tol", fnum(a.Config.Tol), fnum(b.Config.Tol)),
		diffRow("config.max_sweeps", strconv.Itoa(a.Config.MaxSweeps), strconv.Itoa(b.Config.MaxSweeps)),
		diffRow("config.threads", strconv.Itoa(a.Config.Threads), strconv.Itoa(b.Config.Threads)),
		diffRow("config.seed", strconv.FormatUint(a.Config.Seed, 10), strconv.FormatUint(b.Config.Seed, 10)),
		diffRow("env.go", a.Env.Go, b.Env.Go),
		diffRow("env.host", a.Env.Host, b.Env.Host),
		diffRow("env.gomaxprocs", strconv.Itoa(a.Env.GOMAXPROCS), strconv.Itoa(b.Env.GOMAXPROCS)),
		diffRow("env.vcs_revision", shortRev(a.Env), shortRev(b.Env)),
		diffRow("outcome.converged", strconv.FormatBool(a.Outcome.Converged), strconv.FormatBool(b.Outcome.Converged)),
		diffRow("outcome.stop_reason", a.Outcome.StopReason, b.Outcome.StopReason),
		diffRow("outcome.sweeps", strconv.Itoa(a.Outcome.Sweeps), strconv.Itoa(b.Outcome.Sweeps)),
		diffRow("outcome.rel_res", fnum(a.Outcome.RelRes), fnum(b.Outcome.RelRes)),
		diffRow("outcome.wall", fdur(a.Outcome.WallNs), fdur(b.Outcome.WallNs)),
		diffRow("outcome.resumes", strconv.Itoa(a.Outcome.Resumes), strconv.Itoa(b.Outcome.Resumes)),
		diffRow("rate.rho_hat", fnum(a.Rate.RhoHat), fnum(b.Rate.RhoHat)),
		diffRow("rate.band", rateBand(a.Rate), rateBand(b.Rate)),
		diffRow("rate.predicted", fnum(a.Rate.PredictedRho), fnum(b.Rate.PredictedRho)),
		diffRow("staleness.p50", fnum(a.Staleness.P50), fnum(b.Staleness.P50)),
		diffRow("staleness.p95", fnum(a.Staleness.P95), fnum(b.Staleness.P95)),
		diffRow("alerts", strconv.Itoa(len(a.Alerts)), strconv.Itoa(len(b.Alerts))),
	}
	// Counters: union of keys, so a counter that only one side bumped
	// still shows up.
	keys := map[string]bool{}
	for k := range a.Counters {
		keys[k] = true
	}
	for k := range b.Counters {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		rows = append(rows, diffRow("counters."+k,
			strconv.FormatUint(a.Counters[k], 10), strconv.FormatUint(b.Counters[k], 10)))
	}
	return rows
}

func shortRev(e Env) string {
	r := e.VCSRevision
	if len(r) > 12 {
		r = r[:12]
	}
	if e.VCSModified {
		r += "+dirty"
	}
	return r
}

func rateBand(r RateInfo) string {
	if r.Samples == 0 {
		return "-"
	}
	return fmt.Sprintf("[%.5f, %.5f]", r.Lo, r.Hi)
}

// RateRow is one worker count's aggregate in a rebuilt rate-vs-workers
// table.
type RateRow struct {
	Workers int
	// RhoHat is the median fitted rate across the group's runs; Lo/Hi
	// the band of the median run.
	RhoHat, Lo, Hi float64
	// Samples is the median run's fit-window size.
	Samples int
	// RelRes is the mean final residual; Runs the group size.
	RelRes float64
	Runs   int
}

// RateTable rebuilds the §VII rate-vs-workers table from recorded
// runs: group by the "workers" sweep parameter (falling back to
// config.threads), take the median fitted rho-hat per group. This is
// the paper's headline cross-run comparison served from history
// instead of a fresh sweep.
func RateTable(recs []*RunRecord) []RateRow {
	groups := map[int][]*RunRecord{}
	for _, r := range recs {
		if r.Rate.Samples == 0 {
			continue
		}
		w := int(r.Params["workers"])
		if w == 0 {
			w = r.Config.Threads
		}
		if w == 0 {
			continue
		}
		groups[w] = append(groups[w], r)
	}
	workers := make([]int, 0, len(groups))
	for w := range groups {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	var rows []RateRow
	for _, w := range workers {
		g := groups[w]
		sort.Slice(g, func(i, j int) bool { return g[i].Rate.RhoHat < g[j].Rate.RhoHat })
		med := g[len(g)/2]
		var relRes float64
		for _, r := range g {
			relRes += r.Outcome.RelRes
		}
		rows = append(rows, RateRow{
			Workers: w,
			RhoHat:  med.Rate.RhoHat, Lo: med.Rate.Lo, Hi: med.Rate.Hi,
			Samples: med.Rate.Samples,
			RelRes:  relRes / float64(len(g)),
			Runs:    len(g),
		})
	}
	return rows
}

// Sweeps lists the distinct sweep IDs present, newest first, with
// their record counts — the menu for `ajreport rates`.
type SweepInfo struct {
	ID    string
	Runs  int
	Start time.Time
}

// SweepList summarizes the sweeps present in recs.
func SweepList(recs []*RunRecord) []SweepInfo {
	byID := map[string]*SweepInfo{}
	var order []string
	for _, r := range recs {
		if r.Sweep == "" {
			continue
		}
		si := byID[r.Sweep]
		if si == nil {
			si = &SweepInfo{ID: r.Sweep, Start: r.Start}
			byID[r.Sweep] = si
			order = append(order, r.Sweep)
		}
		si.Runs++
		if r.Start.Before(si.Start) {
			si.Start = r.Start
		}
	}
	out := make([]SweepInfo, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}
