// Package ledger is the persistent, cross-run observability layer:
// every solve — sequential, shared-memory, distributed, cluster-
// simulated, from any cmd/ entry point or ajexp sweep repetition —
// appends one structured RunRecord to an append-only, CRC-framed,
// crash-safe store. Everything the in-process observability stack
// (internal/obs, internal/trace, internal/analytics) knows at exit
// and then discards is durably captured here instead, because every
// empirical claim in the paper is a *cross-run* comparison: §VII's
// rate-improves-with-processes effect and Fig 6's async-converges-
// where-sync-diverges both compare many solves against each other.
//
// The package has three layers:
//
//   - RunRecord (this file): the schema — config + matrix fingerprint,
//     environment snapshot, timings, outcome, fitted rho-hat with its
//     95% band vs the predicted rho(G), staleness quantiles,
//     fault/recovery/trace counters, and the alert timeline.
//   - Store (store.go): JSONL segment files under one directory, each
//     record wrapped in the shared resilience frame (magic "AJLR") so
//     a crash mid-append tears at most the final record, which reopen
//     detects by CRC and drops. Concurrent writers are safe because
//     every writer owns a uniquely named segment; the index is
//     refreshed with the same temp+rename discipline as checkpoints.
//   - Flight recorder (flight.go): when an analytics detector latches
//     or a solve exits non-converged, a bounded post-mortem bundle
//     (trace-ring tail, metrics snapshot, alert timeline, checkpoint
//     pointer) lands next to the record.
//
// The record/query split here is deliberately the schema the ajserve
// job store (ROADMAP item 1) will reuse: a job is a RunRecord whose
// outcome has not happened yet.
package ledger

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/sparse"
)

// RecordSchema is the RunRecord schema version carried by every
// record; readers skip records from a future schema.
const RecordSchema = 1

// MatrixInfo fingerprints the solved system.
type MatrixInfo struct {
	// Gen is the generator spec that produced the matrix ("fd",
	// "suite:thermal2", "file:m.mtx", ...), when known.
	Gen string `json:"gen,omitempty"`
	N   int    `json:"n"`
	NNZ int    `json:"nnz"`
	// WDD is the weakly-diagonally-dominant row fraction — the
	// Theorem 1 hypothesis, so a divergence alert on WDD=1 is a bug.
	WDD float64 `json:"wdd,omitempty"`
	// Fingerprint hashes the full structure and values (FNV-1a 64);
	// two records with equal fingerprints solved the same system.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// SolveConfig is the solver configuration of one run.
type SolveConfig struct {
	Tol       float64 `json:"tol,omitempty"`
	MaxSweeps int     `json:"max_sweeps,omitempty"`
	Threads   int     `json:"threads,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
}

// Env is the environment snapshot taken at record time.
type Env struct {
	Go         string `json:"go"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Host       string `json:"host,omitempty"`
	// VCSRevision/VCSModified come from the build info when the binary
	// was built inside a VCS checkout (go run / go test included).
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// Outcome is what the solve returned.
type Outcome struct {
	Converged  bool    `json:"converged"`
	StopReason string  `json:"stop_reason,omitempty"`
	Sweeps     int     `json:"sweeps,omitempty"`
	RelRes     float64 `json:"rel_res"`
	// WallNs is the end-to-end wall time of this run; SolveNs the
	// solver-reported elapsed time (cumulative across resumes).
	WallNs  int64 `json:"wall_ns,omitempty"`
	SolveNs int64 `json:"solve_ns,omitempty"`
	Resumes int   `json:"resumes,omitempty"`
}

// RateInfo is the fitted convergence rate next to the model's
// prediction — the live counterpart of comparing against rho(G).
type RateInfo struct {
	RhoHat float64 `json:"rho_hat,omitempty"`
	Lo     float64 `json:"rho_lo,omitempty"`
	Hi     float64 `json:"rho_hi,omitempty"`
	// Samples is the fit window's sample count (0 = no fit).
	Samples int `json:"samples,omitempty"`
	// PredictedRho is rho(G) (or the propagation-model bound) when
	// something computed it; 0 = unknown.
	PredictedRho float64 `json:"predicted_rho,omitempty"`
}

// StalenessInfo is the read-staleness quantile summary (P² estimates).
type StalenessInfo struct {
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
}

// AlertInfo is one analytics alert replayed into the record.
type AlertInfo struct {
	TSNs   int64  `json:"ts_ns"`
	Type   string `json:"type"`
	Worker int    `json:"worker"`
	Msg    string `json:"msg,omitempty"`
}

// RankRecord is one rank's contribution to a distributed run's
// record. Non-root ranks build theirs locally at exit and ship it to
// the root over the transport's collection channel; the root embeds
// the full set in its RunRecord, so one ledger record carries the
// whole cluster's outcome — per-rank iteration counts, residual
// shares, staleness quantiles, and the measured wire telemetry (RTT,
// one-way delay, clock offset, drop/evict/reconnect/retransmit
// counters) that PR 10's transport instrumentation produces.
type RankRecord struct {
	Rank       int    `json:"rank"`
	Converged  bool   `json:"converged"`
	StopReason string `json:"stop_reason,omitempty"`
	// Iters is the rank's local asynchronous iteration count;
	// Relaxations the row relaxations it performed.
	Iters       int    `json:"iters,omitempty"`
	Relaxations uint64 `json:"relaxations,omitempty"`
	// ResidualShare is the rank's share of the final squared residual
	// (sum over owned rows / global), in [0,1] when known.
	ResidualShare float64 `json:"residual_share,omitempty"`
	// StalenessP50/P95 are the rank's read-staleness quantiles in
	// iterations (the paper's delay model observable).
	StalenessP50 float64 `json:"staleness_p50,omitempty"`
	StalenessP95 float64 `json:"staleness_p95,omitempty"`
	// RTT and one-way delay quantiles are measured by the transport's
	// heartbeat echo / frame stamping, aggregated across peers, in ns.
	RTTP50Ns   float64 `json:"rtt_p50_ns,omitempty"`
	RTTP95Ns   float64 `json:"rtt_p95_ns,omitempty"`
	DelayP50Ns float64 `json:"delay_p50_ns,omitempty"`
	DelayP95Ns float64 `json:"delay_p95_ns,omitempty"`
	// ClockOffsetNs is the rank's estimated clock offset to root
	// (root minus rank) at exit; 0 for the root itself.
	ClockOffsetNs float64 `json:"clock_offset_ns,omitempty"`
	// Counters carries the rank's nonzero wire counters (drops,
	// evictions, reconnects, retransmits, ...) keyed by short name.
	Counters map[string]uint64 `json:"counters,omitempty"`
	WallNs   int64             `json:"wall_ns,omitempty"`
}

// RunRecord is one solve's durable record.
type RunRecord struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	// Start is the run's start wall-clock time (record sort key).
	Start time.Time `json:"start"`
	// Tool is the producing binary ("ajsolve", "ajexp", ...).
	Tool string `json:"tool"`
	// Substrate is the execution substrate: seq | shm | dist |
	// cluster | replay.
	Substrate string `json:"substrate,omitempty"`
	Method    string `json:"method,omitempty"`
	// Transport is the communication backend a dist solve ran over:
	// mem (in-process channels) | tcp (multi-process frames). Empty for
	// non-dist substrates.
	Transport string `json:"transport,omitempty"`
	// Sweep groups the repetitions of one parameter sweep; Rep is the
	// repetition index and Params the swept values ("workers", "drop",
	// ...), so a sweep table can be rebuilt from history.
	Sweep  string             `json:"sweep,omitempty"`
	Rep    int                `json:"rep,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
	Note   string             `json:"note,omitempty"`

	Matrix    MatrixInfo    `json:"matrix"`
	Config    SolveConfig   `json:"config"`
	Env       Env           `json:"env"`
	Outcome   Outcome       `json:"outcome"`
	Rate      RateInfo      `json:"rate,omitempty"`
	Staleness StalenessInfo `json:"staleness,omitempty"`
	// Counters carries the nonzero observability counters
	// (fault/recovery/trace event totals) keyed by short name.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Ranks embeds every rank's sub-record on multi-process runs; the
	// root's own entry is rank 0. Empty on single-process runs.
	Ranks  []RankRecord `json:"ranks,omitempty"`
	Alerts []AlertInfo  `json:"alerts,omitempty"`
	// Bundle is the post-mortem bundle directory (relative to the
	// ledger root) when the flight recorder fired for this run.
	Bundle string `json:"bundle,omitempty"`
	// Checkpoint points at the last checkpoint file of the run.
	Checkpoint string `json:"checkpoint,omitempty"`
}

var idSeq atomic.Uint64

// NewID returns a process-unique, time-ordered record ID. Uniqueness
// across concurrent processes comes from the pid component; within a
// process from the sequence counter.
func NewID(start time.Time) string {
	return fmt.Sprintf("%016x-%05x-%04x", uint64(start.UnixNano()), os.Getpid()&0xfffff, idSeq.Add(1)&0xffff)
}

// CaptureEnv snapshots the running environment.
func CaptureEnv() Env {
	e := Env{
		Go:         runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if h, err := os.Hostname(); err == nil {
		e.Host = h
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				e.VCSRevision = s.Value
			case "vcs.modified":
				e.VCSModified = s.Value == "true"
			}
		}
	}
	return e
}

// Fingerprint hashes a CSR matrix — dimensions, structure, and values
// — into a short stable identifier, so "same system?" is one string
// compare across runs, machines, and PRs.
func Fingerprint(a *sparse.CSR) string {
	if a == nil {
		return ""
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(a.N))
	put(uint64(a.M))
	for _, p := range a.RowPtr {
		put(uint64(p))
	}
	for _, c := range a.Col {
		put(uint64(c))
	}
	for _, v := range a.Val {
		put(math.Float64bits(v))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// DescribeMatrix fills a MatrixInfo from the system about to be
// solved.
func DescribeMatrix(gen string, a *sparse.CSR) MatrixInfo {
	if a == nil {
		return MatrixInfo{Gen: gen}
	}
	return MatrixInfo{
		Gen:         gen,
		N:           a.N,
		NNZ:         a.NNZ(),
		WDD:         a.WDDFraction(),
		Fingerprint: Fingerprint(a),
	}
}
