package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

func timeFixed() time.Time {
	return time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
}

func testTraceRecorder(events int) *trace.Recorder {
	rec := trace.NewRecorder(2, 1<<10, trace.WithoutCoalescing())
	for w := 0; w < 2; w++ {
		r := rec.Worker(w)
		for i := 1; i <= events; i++ {
			r.RelaxStart(w, i)
			r.ReadVersion(w, i, 1-w, i-1)
			r.RelaxEnd(w, i)
		}
	}
	return rec
}

func TestBundleParts(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	reg.NewCounter("aj_test_total", "test counter").With().Add(7)
	rec := &RunRecord{
		ID:      NewID(timeFixed()),
		Tool:    "ajsolve",
		Outcome: Outcome{Converged: false, StopReason: "max-iter", RelRes: 0.3},
		Alerts:  []AlertInfo{{TSNs: 123, Type: "divergence", Worker: -1, Msg: "residual grew"}},
	}
	rel, err := WriteBundle(dir, BundleInputs{
		Record:   rec,
		Reason:   "non-converged",
		Registry: reg,
		Trace:    testTraceRecorder(10),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	abs := filepath.Join(dir, rel)
	for _, name := range []string{"record.json", "alerts.json", "metrics.json", "trace-tail.jsonl", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(abs, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}

	var man manifest
	buf, err := os.ReadFile(filepath.Join(abs, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		t.Fatal(err)
	}
	if man.RecordID != rec.ID || man.Reason != "non-converged" || len(man.Parts) != 4 {
		t.Fatalf("manifest = %+v", man)
	}

	// The metrics part carries the registry snapshot.
	mbuf, err := os.ReadFile(filepath.Join(abs, "metrics.json"))
	if err != nil || !bytes.Contains(mbuf, []byte("aj_test_total")) {
		t.Errorf("metrics.json missing counter: %v", err)
	}
}

// TestBundleBoundedUnderCap is the acceptance bound: whatever the
// inputs, the bundle directory's total size stays under the cap, with
// the record itself surviving even tiny caps.
func TestBundleBoundedUnderCap(t *testing.T) {
	for _, capBytes := range []int{4 << 10, 16 << 10, DefaultBundleCap} {
		dir := t.TempDir()
		reg := obs.NewRegistry()
		for i := 0; i < 50; i++ {
			reg.NewCounter("aj_counter_"+string(rune('a'+i%26)), "filler", "w").
				With(string(rune('0' + i%10))).Add(i)
		}
		rec := &RunRecord{ID: NewID(timeFixed()), Tool: "ajsolve"}
		rel, err := WriteBundle(dir, BundleInputs{
			Record:   rec,
			Reason:   "divergence-latched",
			Registry: reg,
			Trace:    testTraceRecorder(2000), // far more events than any small cap fits
		}, capBytes)
		if err != nil {
			t.Fatal(err)
		}
		size, err := BundleSize(filepath.Join(dir, rel))
		if err != nil {
			t.Fatal(err)
		}
		if size > int64(capBytes) {
			t.Errorf("cap %d: bundle is %d bytes", capBytes, size)
		}
		if _, err := os.Stat(filepath.Join(dir, rel, "record.json")); err != nil {
			t.Errorf("cap %d: record.json must always fit: %v", capBytes, err)
		}
	}
}

// TestTraceTailKeepsNewest: when the budget cannot hold the whole
// trace, the tail (highest iteration counts) survives, oldest events
// are cut, and the manifest marks the part truncated.
func TestTraceTailKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	rec := &RunRecord{ID: NewID(timeFixed()), Tool: "ajsolve"}
	rel, err := WriteBundle(dir, BundleInputs{
		Record: rec,
		Reason: "stall",
		Trace:  testTraceRecorder(500),
	}, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	abs := filepath.Join(dir, rel)

	f, err := os.Open(filepath.Join(abs, "trace-tail.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var maxIter, lines int
	var prevTS int64 = -1
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var l traceLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if l.TSNs < prevTS {
			t.Fatal("trace tail not chronological")
		}
		prevTS = l.TSNs
		if int(l.Iter) > maxIter {
			maxIter = int(l.Iter)
		}
		lines++
	}
	if maxIter != 500 {
		t.Errorf("newest iteration in tail = %d, want 500 (tail must keep the end)", maxIter)
	}
	if lines >= 500*3*2 {
		t.Errorf("%d lines retained — budget did not trim", lines)
	}

	var man manifest
	buf, _ := os.ReadFile(filepath.Join(abs, "manifest.json"))
	if err := json.Unmarshal(buf, &man); err != nil {
		t.Fatal(err)
	}
	for _, p := range man.Parts {
		if p.Name == "trace-tail.jsonl" && !p.Truncated {
			t.Error("manifest must mark the trimmed trace tail truncated")
		}
	}
}

func TestBundleNeedsID(t *testing.T) {
	if _, err := WriteBundle(t.TempDir(), BundleInputs{Record: &RunRecord{}}, 0); err == nil {
		t.Fatal("bundle without a record ID must fail")
	}
}
