package ledger

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func appendT(t *testing.T, s *Store, rec *RunRecord) string {
	t.Helper()
	id, err := s.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	base := time.Now().Add(-time.Minute)
	for i := 0; i < 3; i++ {
		appendT(t, s, &RunRecord{
			Start: base.Add(time.Duration(i) * time.Second),
			Tool:  "ajsolve", Substrate: "shm", Method: "jacobi",
			Outcome:  Outcome{Converged: true, RelRes: 1e-9, Sweeps: 40 + i},
			Rate:     RateInfo{RhoHat: 0.8, Lo: 0.79, Hi: 0.81, Samples: 32},
			Counters: map[string]uint64{"relax": uint64(100 * (i + 1))},
		})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := openT(t, dir).Records()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 || stats.Torn != 0 || stats.Segments != 1 {
		t.Fatalf("stats = %+v, want 3 records, 0 torn, 1 segment", stats)
	}
	for i, r := range recs {
		if r.Outcome.Sweeps != 40+i {
			t.Errorf("record %d out of order: sweeps=%d", i, r.Outcome.Sweeps)
		}
		if r.Schema != RecordSchema || r.ID == "" || r.Env.Go == "" {
			t.Errorf("record %d missing assigned fields: %+v", i, r)
		}
		if r.Counters["relax"] != uint64(100*(i+1)) {
			t.Errorf("record %d counters lost: %v", i, r.Counters)
		}
	}
}

// TestTornTailDroppedOnReopen is the crash-safety acceptance test: a
// writer killed mid-append leaves a torn final frame, which reopen
// must detect by CRC, drop, and count — with every prior record
// intact.
func TestTornTailDroppedOnReopen(t *testing.T) {
	// Each cut is measured past the frame-terminating newline: 2 tears
	// the payload's last byte, 7 tears deeper into the payload, 21
	// reaches back into the frame header.
	for _, cut := range []int{2, 7, 21} {
		dir := t.TempDir()
		s := openT(t, dir)
		for i := 0; i < 3; i++ {
			appendT(t, s, &RunRecord{Tool: "ajsolve", Outcome: Outcome{Sweeps: i + 1}})
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Injected truncation: chop the tail of the segment file so the
		// final frame is incomplete, as a kill -9 mid-write would.
		segs, err := filepath.Glob(filepath.Join(dir, "*"+segmentExt))
		if err != nil || len(segs) != 1 {
			t.Fatalf("segments: %v, %v", segs, err)
		}
		fi, err := os.Stat(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(segs[0], fi.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}

		recs, stats, err := openT(t, dir).Records()
		if err != nil {
			t.Fatalf("cut %d: reopen failed: %v", cut, err)
		}
		if len(recs) != 2 || stats.Torn != 1 {
			t.Fatalf("cut %d: got %d records, %d torn; want 2 intact + 1 torn",
				cut, len(recs), stats.Torn)
		}
		for i, r := range recs {
			if r.Outcome.Sweeps != i+1 {
				t.Errorf("cut %d: surviving record %d corrupted: %+v", cut, i, r.Outcome)
			}
		}

		// The store stays appendable after the torn reopen.
		s2 := openT(t, dir)
		appendT(t, s2, &RunRecord{Tool: "ajsolve", Outcome: Outcome{Sweeps: 99}})
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		recs, stats, err = openT(t, dir).Records()
		if err != nil || len(recs) != 3 || stats.Torn != 1 {
			t.Fatalf("cut %d: after re-append: %d records, %+v, %v", cut, len(recs), stats, err)
		}
	}
}

// TestCorruptedMidSegment: a flipped byte inside an earlier frame ends
// that segment at the last good record instead of failing the scan.
func TestCorruptedMidSegment(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 3; i++ {
		appendT(t, s, &RunRecord{Tool: "ajexp", Outcome: Outcome{Sweeps: i + 1}})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segmentExt))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second frame (past the first frame's
	// bytes; headers are at deterministic offsets but JSON lengths
	// vary, so aim at the middle of the file).
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := openT(t, dir).Records()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Torn != 1 || len(recs) >= 3 {
		t.Fatalf("got %d records, %d torn; corruption must drop the tail", len(recs), stats.Torn)
	}
}

// TestConcurrentWriters: two stores on one directory own distinct
// segments, so both histories survive unmixed.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s1, s2 := openT(t, dir), openT(t, dir)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			appendT(t, s1, &RunRecord{Tool: "ajsolve", Note: "w1"})
		}
	}()
	for i := 0; i < 10; i++ {
		appendT(t, s2, &RunRecord{Tool: "ajdist", Note: "w2"})
	}
	<-done
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := openT(t, dir).Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 || stats.Segments != 2 || stats.Torn != 0 {
		t.Fatalf("got %d records in %d segments (%d torn), want 20 in 2",
			len(recs), stats.Segments, stats.Torn)
	}
	ids := map[string]bool{}
	for _, r := range recs {
		if ids[r.ID] {
			t.Fatalf("duplicate record ID %s across concurrent writers", r.ID)
		}
		ids[r.ID] = true
	}
}

func TestFutureSchemaSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	appendT(t, s, &RunRecord{Tool: "ajsolve"})
	appendT(t, s, &RunRecord{Schema: RecordSchema + 1, Tool: "from-the-future"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := openT(t, dir).Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || stats.Skipped != 1 {
		t.Fatalf("got %d records, %d skipped; future schema must be skipped, not fatal",
			len(recs), stats.Skipped)
	}
}

func TestIndexRefreshAndStaleness(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	appendT(t, s, &RunRecord{Tool: "ajsolve"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir)
	idx, ok := r.ReadIndex()
	if !ok || len(idx.Segments) != 1 {
		t.Fatalf("fresh index not usable: ok=%v idx=%+v", ok, idx)
	}
	for name, ent := range idx.Segments {
		if !strings.HasSuffix(name, segmentExt) || ent.Records != 1 || ent.Torn != 0 {
			t.Fatalf("index entry %s = %+v", name, ent)
		}
	}

	// A new writer adds a segment: the cached index must read as stale.
	s2 := openT(t, dir)
	appendT(t, s2, &RunRecord{Tool: "ajdist"})
	if err := s2.Close(); err == nil {
		// Close refreshed the index; force staleness by adding another
		// segment without a refresh.
		s3 := openT(t, dir)
		appendT(t, s3, &RunRecord{Tool: "ajexp"})
		s3.mu.Lock()
		s3.seg.Close() // close without RefreshIndex
		s3.seg = nil
		s3.wrote = 0
		s3.mu.Unlock()
	}
	if _, ok := r.ReadIndex(); ok {
		t.Fatal("index still read as fresh after an unindexed segment appeared")
	}
}

// TestReadOnlyOpenLeavesNoTrace: ajreport-style consumers must not
// create segments just by opening.
func TestReadOnlyOpenLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, _, err := s.Records(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("read-only open left %d entries behind", len(ents))
	}
}
