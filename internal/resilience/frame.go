package resilience

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Generic on-disk frame shared by checkpoints (magic "AJCP") and the
// run ledger (magic "AJLR"): a fixed header in front of an opaque
// payload, sized and checksummed so a torn or corrupted tail is
// detected rather than misparsed.
//
//	magic   [4]byte  producer tag
//	version uint32   format version (little-endian)
//	length  uint64   payload byte count
//	crc     uint32   CRC-32 (IEEE) of the payload
//	payload []byte
const FrameHeaderLen = 4 + 4 + 8 + 4

// ErrMagic: the bytes do not start with the expected frame magic.
// Checkpoint readers translate it to ErrNotCheckpoint; the ledger
// treats it as segment corruption.
var ErrMagic = errors.New("resilience: frame magic mismatch")

// EncodeFrame wraps payload in the shared header. magic must be
// exactly four bytes.
func EncodeFrame(magic string, version uint32, payload []byte) []byte {
	if len(magic) != 4 {
		panic(fmt.Sprintf("resilience: frame magic %q must be 4 bytes", magic))
	}
	out := make([]byte, FrameHeaderLen+len(payload))
	copy(out, magic)
	binary.LittleEndian.PutUint32(out[4:], version)
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:], crc32.ChecksumIEEE(payload))
	copy(out[FrameHeaderLen:], payload)
	return out
}

// DecodeFrame parses one frame from the front of data, returning the
// payload and the bytes that follow the frame. Each corruption class
// fails with a distinct wrapped sentinel: ErrTruncated (short header
// or payload), ErrMagic (wrong magic), ErrVersion (written by a
// future format), ErrChecksum (payload does not match its CRC).
func DecodeFrame(data []byte, magic string, maxVersion uint32) (payload, rest []byte, err error) {
	if len(data) < FrameHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header",
			ErrTruncated, len(data), FrameHeaderLen)
	}
	if string(data[:4]) != magic {
		return nil, nil, fmt.Errorf("%w: got %q, want %q", ErrMagic, data[:4], magic)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v > maxVersion {
		return nil, nil, fmt.Errorf("%w: frame version %d, reader supports <= %d",
			ErrVersion, v, maxVersion)
	}
	length := binary.LittleEndian.Uint64(data[8:])
	if uint64(len(data)-FrameHeaderLen) < length {
		return nil, nil, fmt.Errorf("%w: header promises %d payload bytes, %d remain",
			ErrTruncated, length, len(data)-FrameHeaderLen)
	}
	payload = data[FrameHeaderLen : FrameHeaderLen+int(length)]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(data[16:]) {
		return nil, nil, fmt.Errorf("%w: computed %08x, recorded %08x",
			ErrChecksum, crc, binary.LittleEndian.Uint32(data[16:]))
	}
	return payload, data[FrameHeaderLen+int(length):], nil
}
