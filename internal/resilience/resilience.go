// Package resilience is the recovery layer of the solver substrates:
// cooperative stopping (context cancellation and wall-clock deadlines),
// versioned CRC-checksummed checkpoints written atomically, and a
// bounded retry policy for lossy links.
//
// The theory makes all of this safe rather than heuristic. Theorem 1
// (§IV-C of the paper) shows the asynchronous Jacobi residual never
// grows under arbitrary delay masks, so any partially updated iterate —
// the state a cancelled run checkpoints, or the state a restarted
// worker inherits — is a legal starting point: resuming is just one
// more (possibly very long) delay. A dead worker is the infinitely
// delayed process of the Theorem 1 discussion, and reassigning its rows
// to survivors merely refines the active blocks, the direction §IV-D
// proves rate-improving.
//
// Like obs.SolverMetrics and trace.Recorder, the handles here are
// nil-safe: a nil *Stopper never stops, a nil *Writer never writes, so
// the disabled paths cost one pointer test per site.
package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// StopReason states why a solve returned. The zero value means the
// solve is still running (or the reason was never resolved).
type StopReason int

const (
	// StopNone is the zero value: no stop condition has fired.
	StopNone StopReason = iota
	// StopConverged: the tolerance was met.
	StopConverged
	// StopDeadline: the MaxTime wall-clock budget (or a context
	// deadline) expired first.
	StopDeadline
	// StopCanceled: the caller's context was canceled.
	StopCanceled
	// StopMaxIter: the iteration budget ran out above tolerance.
	StopMaxIter
	// StopCrashed: an injected fail-stop crash degraded the run and the
	// survivors could not reach tolerance.
	StopCrashed
)

// String names the reason the way ajsolve/ajdist print it.
func (s StopReason) String() string {
	switch s {
	case StopNone:
		return "none"
	case StopConverged:
		return "converged"
	case StopDeadline:
		return "deadline"
	case StopCanceled:
		return "canceled"
	case StopMaxIter:
		return "max-iter"
	case StopCrashed:
		return "crashed"
	}
	return "unknown"
}

// Stopper turns a context and a wall-clock budget into a cooperative
// stop signal the solver hot loops can poll. It owns no goroutine:
// Check lazily inspects the context and the deadline, and latches the
// first reason it observes so every later caller (and every worker)
// agrees on why the run stopped. Safe for concurrent use; nil-safe.
type Stopper struct {
	ctx      context.Context
	deadline time.Time
	reason   atomic.Int32
}

// NewStopper builds a stopper for the given context (nil means
// background) and wall-clock budget measured from now (maxTime <= 0
// means unbounded). When neither source can fire it returns nil, which
// Check treats as "never stop" at the cost of one pointer test.
func NewStopper(ctx context.Context, maxTime time.Duration) *Stopper {
	if ctx == nil && maxTime <= 0 {
		return nil
	}
	s := &Stopper{ctx: ctx}
	if maxTime > 0 {
		s.deadline = time.Now().Add(maxTime)
	}
	return s
}

// Check reports the latched stop reason, first resolving the context
// and the deadline. StopNone means keep going. Nil-safe.
func (s *Stopper) Check() StopReason {
	if s == nil {
		return StopNone
	}
	if r := StopReason(s.reason.Load()); r != StopNone {
		return r
	}
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			r := StopCanceled
			if errors.Is(err, context.DeadlineExceeded) {
				r = StopDeadline
			}
			s.reason.CompareAndSwap(int32(StopNone), int32(r))
			return StopReason(s.reason.Load())
		}
	}
	if !s.deadline.IsZero() && !time.Now().Before(s.deadline) {
		s.reason.CompareAndSwap(int32(StopNone), int32(StopDeadline))
		return StopReason(s.reason.Load())
	}
	return StopNone
}

// Stopped reports whether a stop reason has fired. Nil-safe.
func (s *Stopper) Stopped() bool { return s.Check() != StopNone }

// Resolve picks the reason a finished solve reports, in precedence
// order: convergence beats everything (a run that met tolerance on the
// deadline still converged), then the stopper's latched reason, then a
// fail-stop crash, then the iteration budget.
func Resolve(converged bool, s *Stopper, crashed bool) StopReason {
	switch {
	case converged:
		return StopConverged
	case s.Check() != StopNone:
		return s.Check()
	case crashed:
		return StopCrashed
	}
	return StopMaxIter
}
