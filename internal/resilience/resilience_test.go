package resilience

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestStopReasonStrings(t *testing.T) {
	want := map[StopReason]string{
		StopNone: "none", StopConverged: "converged", StopDeadline: "deadline",
		StopCanceled: "canceled", StopMaxIter: "max-iter", StopCrashed: "crashed",
		StopReason(42): "unknown",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("StopReason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestStopperNilNeverStops(t *testing.T) {
	if s := NewStopper(nil, 0); s != nil {
		t.Fatalf("no-source stopper should be nil, got %v", s)
	}
	var s *Stopper
	if s.Check() != StopNone || s.Stopped() {
		t.Fatal("nil stopper stopped")
	}
}

func TestStopperCancelAndDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewStopper(ctx, 0)
	if s.Check() != StopNone {
		t.Fatal("stopped before cancel")
	}
	cancel()
	if got := s.Check(); got != StopCanceled {
		t.Fatalf("after cancel: %v, want canceled", got)
	}

	// Wall-clock budget: latches StopDeadline once elapsed.
	s = NewStopper(nil, time.Millisecond)
	if s.Check() != StopNone {
		t.Fatal("deadline stopper fired immediately")
	}
	time.Sleep(3 * time.Millisecond)
	if got := s.Check(); got != StopDeadline {
		t.Fatalf("after budget: %v, want deadline", got)
	}

	// Context deadline maps to StopDeadline too.
	ctx, cancel = context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	s = NewStopper(ctx, 0)
	time.Sleep(3 * time.Millisecond)
	if got := s.Check(); got != StopDeadline {
		t.Fatalf("context deadline: %v, want deadline", got)
	}
}

// The first reason to fire wins, even if another source fires later —
// all workers must agree on why the run stopped.
func TestStopperLatchesFirstReason(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewStopper(ctx, time.Millisecond)
	time.Sleep(3 * time.Millisecond)
	if got := s.Check(); got != StopDeadline {
		t.Fatalf("got %v, want deadline", got)
	}
	cancel()
	if got := s.Check(); got != StopDeadline {
		t.Fatalf("cancel overwrote latched deadline: %v", got)
	}
}

func TestResolvePrecedence(t *testing.T) {
	s := NewStopper(nil, time.Nanosecond)
	time.Sleep(time.Millisecond)
	s.Check()
	if got := Resolve(true, s, true); got != StopConverged {
		t.Fatalf("converged run reported %v", got)
	}
	if got := Resolve(false, s, true); got != StopDeadline {
		t.Fatalf("deadline-stopped run reported %v", got)
	}
	if got := Resolve(false, nil, true); got != StopCrashed {
		t.Fatalf("crashed run reported %v", got)
	}
	if got := Resolve(false, nil, false); got != StopMaxIter {
		t.Fatalf("budget-exhausted run reported %v", got)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, Base: time.Millisecond, Max: 5 * time.Millisecond}
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		5 * time.Millisecond, 5 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
	if p.Exhausted(3) {
		t.Fatal("attempt 3 of 4 reported exhausted")
	}
	if !p.Exhausted(4) {
		t.Fatal("attempt 4 of 4 not exhausted")
	}
	// Zero-value policy fills defaults rather than spinning instantly.
	var zero RetryPolicy
	if zero.Backoff(0) <= 0 || !zero.Exhausted(10_000) {
		t.Fatalf("zero policy: backoff=%v", zero.Backoff(0))
	}
}

func TestWriterIntervalGateAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	path := filepath.Join(t.TempDir(), "ck.ajcp")
	w := NewWriter(&Spec{Path: path, Interval: time.Hour}, m)
	if w.Interval() != time.Hour || w.Path() != path {
		t.Fatalf("spec not retained: %v %v", w.Interval(), w.Path())
	}
	snaps := 0
	snap := func() *Checkpoint { snaps++; return sampleCheckpoint() }
	if wrote, err := w.MaybeWrite(snap); err != nil || !wrote {
		t.Fatalf("first MaybeWrite: wrote=%v err=%v", wrote, err)
	}
	if wrote, _ := w.MaybeWrite(snap); wrote {
		t.Fatal("second MaybeWrite inside the interval wrote")
	}
	if snaps != 1 {
		t.Fatalf("snapshot closure ran %d times, want 1 (gated)", snaps)
	}
	// The final at-exit write bypasses the gate.
	if err := w.Write(sampleCheckpoint()); err != nil {
		t.Fatalf("forced Write: %v", err)
	}
	if w.Writes() != 2 {
		t.Fatalf("writes = %d, want 2", w.Writes())
	}
	if got := m.RecoveryCheckpointWriteCount(); got != 2 {
		t.Fatalf("checkpoint_write counter = %d, want 2", got)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("written checkpoint unreadable: %v", err)
	}

	// A nil writer (checkpointing disabled) is inert.
	var nilw *Writer
	if wrote, err := nilw.MaybeWrite(snap); wrote || err != nil {
		t.Fatal("nil writer wrote")
	}
	nilw.RefreshAge()
}
