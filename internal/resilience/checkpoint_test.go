package resilience

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Substrate:   "shm",
		N:           4,
		X:           []float64{1.5, -2.25, 0, 3},
		Sweeps:      17,
		RelaxCounts: []int64{17, 17, 16, 17},
		Iters:       []int64{17, 16},
		Flags:       []bool{true, false},
		FaultStates: [][]byte{{1, 0xde, 0xad}, nil},
		Elapsed:     137 * time.Millisecond,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ajcp")
	want := sampleCheckpoint()
	nbytes, err := want.Save(path)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || int(fi.Size()) != nbytes {
		t.Fatalf("Save reported %d bytes, file has %v (err=%v)", nbytes, fi, err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Substrate != want.Substrate || got.N != want.N || got.Sweeps != want.Sweeps ||
		got.Elapsed != want.Elapsed {
		t.Fatalf("scalar fields mismatch: %+v vs %+v", got, want)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("X[%d] = %g, want %g", i, got.X[i], want.X[i])
		}
	}
	for i := range want.RelaxCounts {
		if got.RelaxCounts[i] != want.RelaxCounts[i] {
			t.Fatalf("RelaxCounts[%d] = %d, want %d", i, got.RelaxCounts[i], want.RelaxCounts[i])
		}
	}
	if len(got.FaultStates) != 2 || string(got.FaultStates[0]) != string(want.FaultStates[0]) {
		t.Fatalf("fault states mismatch: %v", got.FaultStates)
	}
	if err := got.ValidateFor(4); err != nil {
		t.Fatalf("ValidateFor(4): %v", err)
	}
	if err := got.ValidateFor(5); err == nil {
		t.Fatal("ValidateFor(5) accepted a 4-row checkpoint")
	}
}

// The three corruption classes must each surface as their own wrapped
// sentinel, so a resume path can distinguish "wrong file" from "partial
// write" from "newer producer".
func TestCheckpointTruncatedRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ajcp")
	if _, err := sampleCheckpoint().Save(path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)

	for _, cut := range []int{0, 3, FrameHeaderLen - 1, FrameHeaderLen + 1, len(data) - 1} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(path)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d bytes: got %v, want ErrTruncated", cut, err)
		}
	}
}

func TestCheckpointChecksumRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ajcp")
	if _, err := sampleCheckpoint().Save(path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[FrameHeaderLen+5] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestCheckpointFutureVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ajcp")
	if _, err := sampleCheckpoint().Save(path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(data[4:], CheckpointVersion+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
	// A version bump must win over a checksum complaint: the CRC of a
	// future format is meaningless to this reader.
	if errors.Is(err, ErrChecksum) || errors.Is(err, ErrTruncated) {
		t.Fatalf("future-version error leaked another sentinel: %v", err)
	}
}

func TestCheckpointBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ajcp")
	if err := os.WriteFile(path, []byte("this is not a checkpoint at all....."), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("got %v, want ErrNotCheckpoint", err)
	}
}

// A crash mid-write leaves garbage in the sibling .tmp file, never
// under the real name: the previous good checkpoint must survive and a
// subsequent Save must atomically replace it.
func TestCheckpointTempCrashNeverClobbers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.ajcp")
	good := sampleCheckpoint()
	if _, err := good.Save(path); err != nil {
		t.Fatal(err)
	}

	// Simulate a writer killed mid-write: a half-written temp file.
	if err := os.WriteFile(path+".tmp", []byte("AJCP\x01half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("good checkpoint clobbered by temp-file crash: %v", err)
	}
	if got.Sweeps != good.Sweeps {
		t.Fatalf("loaded sweeps %d, want %d", got.Sweeps, good.Sweeps)
	}

	// The next Save replaces the stray temp file and publishes cleanly.
	good.Sweeps = 99
	if _, err := good.Save(path); err != nil {
		t.Fatalf("Save over stray temp: %v", err)
	}
	got, err = Load(path)
	if err != nil || got.Sweeps != 99 {
		t.Fatalf("replacement checkpoint not visible: sweeps=%v err=%v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after successful publish: %v", err)
	}
}
