package resilience

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"time"
)

// Checkpoint is everything a solve needs to continue from where it
// stopped: the iterate, the per-row relaxation counts (which keep a
// resumed trace's version numbering contiguous with the first run's, so
// the combined history still bridges to the propagation model), the
// fault injector's RNG streams and crash latches (so a resumed run
// replays the *remainder* of the planned adversity rather than
// restarting it), and the termination-protocol flag state.
//
// Theorem 1 is what makes a racy snapshot legal: the X captured here is
// some partially updated iterate, i.e. the result of applying a prefix
// of relaxations under *some* delay mask — exactly the states the
// theorem proves non-expansive.
type Checkpoint struct {
	// Substrate tags the producer: "shm", "dist", or "seq".
	Substrate string
	// N is the system dimension; Load-time validation against the
	// matrix catches resuming the wrong problem.
	N int
	// X is the iterate at the snapshot.
	X []float64
	// Sweeps is the completed sweep count (sequential methods) or the
	// maximum local iteration count (parallel substrates).
	Sweeps int
	// RelaxCounts[i] is the number of completed relaxations of row i at
	// the snapshot (nil when the producer was not tracking versions).
	RelaxCounts []int64
	// Iters[t] is worker/rank t's local iteration count.
	Iters []int64
	// Flags[t] is worker t's termination flag (shm flag array).
	Flags []bool
	// FaultStates[t] is worker/rank t's injector state as produced by
	// fault.Injector.State: the PCG stream plus the crash latch. Nil
	// when the run had no fault plan.
	FaultStates [][]byte
	// Elapsed is the wall-clock time consumed up to the snapshot,
	// accumulated across resumes so time-to-solution stays honest.
	Elapsed time.Duration
}

// Checkpoint files use the shared frame of frame.go (magic "AJCP")
// around a gob payload.
const (
	ckptMagic = "AJCP"
	// CheckpointVersion is the current on-disk format version. Readers
	// reject files written by a future version outright — a truncated
	// read of a newer format must not be misparsed as corruption of the
	// current one.
	CheckpointVersion = 1
)

// Distinct checkpoint-rejection causes, each wrapped into Load's error
// so callers can errors.Is their way to the root cause.
var (
	// ErrNotCheckpoint: the file does not carry the checkpoint magic.
	ErrNotCheckpoint = errors.New("resilience: not a checkpoint file")
	// ErrTruncated: the file ends before the header or payload does.
	ErrTruncated = errors.New("resilience: checkpoint truncated")
	// ErrChecksum: the payload does not match its recorded CRC.
	ErrChecksum = errors.New("resilience: checkpoint checksum mismatch")
	// ErrVersion: the file was written by a newer format version.
	ErrVersion = errors.New("resilience: checkpoint version unsupported")
)

// Encode frames the checkpoint into its on-disk byte form.
func (c *Checkpoint) Encode() ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(c); err != nil {
		return nil, fmt.Errorf("resilience: encode checkpoint: %w", err)
	}
	return EncodeFrame(ckptMagic, CheckpointVersion, payload.Bytes()), nil
}

// Decode parses a framed checkpoint, failing with a distinct wrapped
// error for each corruption class: ErrNotCheckpoint (wrong magic),
// ErrTruncated (short header or payload), ErrVersion (written by a
// future format), ErrChecksum (payload does not match its CRC).
func Decode(data []byte) (*Checkpoint, error) {
	payload, _, err := DecodeFrame(data, ckptMagic, CheckpointVersion)
	if err != nil {
		if errors.Is(err, ErrMagic) {
			return nil, fmt.Errorf("%w: bad magic %q", ErrNotCheckpoint, data[:4])
		}
		return nil, err
	}
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&c); err != nil {
		return nil, fmt.Errorf("resilience: decode checkpoint payload: %w", err)
	}
	return &c, nil
}

// Save writes the checkpoint atomically: the framed bytes land in a
// sibling temp file which is then renamed over path, so a crash
// mid-write leaves either the previous good checkpoint or a stray
// .tmp — never a half-written file under the real name. Returns the
// byte count written.
func (c *Checkpoint) Save(path string) (int, error) {
	data, err := c.Encode()
	if err != nil {
		return 0, err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return 0, fmt.Errorf("resilience: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("resilience: publish checkpoint: %w", err)
	}
	return len(data), nil
}

// Load reads and validates the checkpoint at path.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("resilience: read checkpoint: %w", err)
	}
	return Decode(data)
}

// ValidateFor checks the checkpoint against the system it is about to
// restart.
func (c *Checkpoint) ValidateFor(n int) error {
	if c == nil {
		return errors.New("resilience: nil checkpoint")
	}
	if c.N != n || len(c.X) != n {
		return fmt.Errorf("resilience: checkpoint is for n=%d (len(X)=%d), system has n=%d",
			c.N, len(c.X), n)
	}
	if c.RelaxCounts != nil && len(c.RelaxCounts) != n {
		return fmt.Errorf("resilience: checkpoint has %d relaxation counts for n=%d",
			len(c.RelaxCounts), n)
	}
	return nil
}
