package resilience

import (
	"errors"
	"testing"
)

// TestFrameRoundTrip pins the shared frame: payload survives, rest
// points at the following frame, and each corruption class maps to its
// sentinel.
func TestFrameRoundTrip(t *testing.T) {
	a := EncodeFrame("AJLR", 1, []byte(`{"a":1}`))
	b := EncodeFrame("AJLR", 1, []byte(`{"b":2}`))
	data := append(append([]byte(nil), a...), b...)

	p1, rest, err := DecodeFrame(data, "AJLR", 1)
	if err != nil || string(p1) != `{"a":1}` {
		t.Fatalf("first frame: %q, %v", p1, err)
	}
	p2, rest, err := DecodeFrame(rest, "AJLR", 1)
	if err != nil || string(p2) != `{"b":2}` {
		t.Fatalf("second frame: %q, %v", p2, err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes after last frame: %d", len(rest))
	}
}

func TestFrameCorruptionClasses(t *testing.T) {
	good := EncodeFrame("AJLR", 1, []byte("payload"))

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short header", good[:FrameHeaderLen-1], ErrTruncated},
		{"short payload", good[:len(good)-1], ErrTruncated},
		{"wrong magic", append([]byte("XXXX"), good[4:]...), ErrMagic},
		{"future version", EncodeFrame("AJLR", 99, []byte("payload")), ErrVersion},
	}
	for _, c := range cases {
		if _, _, err := DecodeFrame(c.data, "AJLR", 1); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}

	flipped := append([]byte(nil), good...)
	flipped[FrameHeaderLen] ^= 0xff
	if _, _, err := DecodeFrame(flipped, "AJLR", 1); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped payload byte: got %v, want ErrChecksum", err)
	}
}

// TestCheckpointStillDecodesThroughSharedFrame guards the refactor:
// checkpoint encode/decode goes through frame.go but keeps its own
// sentinel for foreign files.
func TestCheckpointStillDecodesThroughSharedFrame(t *testing.T) {
	c := &Checkpoint{Substrate: "shm", N: 3, X: []float64{1, 2, 3}, Sweeps: 7}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil || got.N != 3 || got.Sweeps != 7 {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	if _, err := Decode(EncodeFrame("AJLR", 1, []byte("x"))); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("ledger frame as checkpoint: got %v, want ErrNotCheckpoint", err)
	}
}
