package resilience

import "time"

// RetryPolicy is a bounded exponential-backoff schedule. PR 3's eager
// solver retransmitted boundary values on a fixed spin-count heuristic
// (every 1000 idle polls); this formalizes the failure handling into
// the standard shape — attempt k waits Base<<k capped at Max, and after
// MaxAttempts the sender gives up on the link (the receiving rank is
// then handled by exclusion, not by retry).
type RetryPolicy struct {
	// MaxAttempts bounds retransmissions per idle episode; <= 0 selects
	// the default.
	MaxAttempts int
	// Base is the first backoff step; doubling from here.
	Base time.Duration
	// Max caps a single backoff step.
	Max time.Duration
}

// DefaultRetryPolicy matches the old heuristic's aggregate behavior
// (eventual delivery under heavy loss) while bounding total retry work:
// 20 attempts from 200µs doubling to a 50ms ceiling spans ~1s of
// retransmission before the link is abandoned.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 20, Base: 200 * time.Microsecond, Max: 50 * time.Millisecond}
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.Base <= 0 {
		p.Base = def.Base
	}
	if p.Max <= 0 {
		p.Max = def.Max
	}
	return p
}

// Backoff returns the wait before retry attempt `attempt` (0-based),
// growing exponentially from Base and capped at Max.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= p.Max {
			return p.Max
		}
	}
	if d > p.Max {
		return p.Max
	}
	return d
}

// Exhausted reports whether attempt `attempt` (0-based) exceeds the
// policy's budget.
func (p RetryPolicy) Exhausted(attempt int) bool {
	return attempt >= p.withDefaults().MaxAttempts
}
