package resilience

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultCheckpointInterval is the snapshot cadence used when a Spec
// names a path but no interval.
const DefaultCheckpointInterval = time.Second

// Spec asks a solver to checkpoint: where, and how often. A nil Spec
// (or an empty Path) disables checkpointing.
type Spec struct {
	// Path is the checkpoint file; each write atomically replaces the
	// previous one.
	Path string
	// Interval is the snapshot cadence (DefaultCheckpointInterval when
	// <= 0). The final state at solve exit — convergence, deadline,
	// cancellation, or crash degradation — is always written regardless
	// of the interval, so a resume never loses the tail of the run.
	Interval time.Duration
}

// Writer serializes checkpoint writes for one solve: it owns the
// interval gate, the write mutex (the interval goroutine and the final
// at-exit write may race), and the observability side effects
// (aj_recovery_events_total{event="checkpoint_write"}, checkpoint size
// and age gauges). Nil-safe: a nil Writer never writes.
type Writer struct {
	spec Spec
	m    *obs.SolverMetrics

	mu     sync.Mutex
	last   time.Time
	writes int
}

// NewWriter builds the writer for a spec; returns nil (a no-op writer)
// when the spec is nil or has no path.
func NewWriter(spec *Spec, m *obs.SolverMetrics) *Writer {
	if spec == nil || spec.Path == "" {
		return nil
	}
	w := &Writer{spec: *spec, m: m}
	if w.spec.Interval <= 0 {
		w.spec.Interval = DefaultCheckpointInterval
	}
	return w
}

// Interval reports the snapshot cadence (0 on nil).
func (w *Writer) Interval() time.Duration {
	if w == nil {
		return 0
	}
	return w.spec.Interval
}

// Path reports the checkpoint destination ("" on nil).
func (w *Writer) Path() string {
	if w == nil {
		return ""
	}
	return w.spec.Path
}

// Due reports whether the interval has elapsed since the last write
// (true for the first write). Nil-safe.
func (w *Writer) Due() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last.IsZero() || time.Since(w.last) >= w.spec.Interval
}

// Write snapshots c to the spec path atomically and updates the
// checkpoint metrics. Nil-safe (and a no-op on a nil checkpoint).
func (w *Writer) Write(c *Checkpoint) error {
	if w == nil || c == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	nbytes, err := c.Save(w.spec.Path)
	if err != nil {
		w.m.RecoveryCheckpointError()
		return err
	}
	w.last = time.Now()
	w.writes++
	w.m.RecoveryCheckpointWrite(nbytes)
	return nil
}

// MaybeWrite snapshots via snap and writes it only when the interval is
// due; it reports whether a write happened. The snapshot closure runs
// outside the lock-free hot path but only when actually needed, so an
// interval-gated caller pays nothing between ticks.
func (w *Writer) MaybeWrite(snap func() *Checkpoint) (bool, error) {
	if w == nil || !w.Due() {
		return false, nil
	}
	return true, w.Write(snap())
}

// RefreshAge republishes the checkpoint-age gauge; meant to be called
// from the same ticker that drives interval snapshots. Nil-safe.
func (w *Writer) RefreshAge() {
	if w == nil {
		return
	}
	w.mu.Lock()
	last := w.last
	w.mu.Unlock()
	if !last.IsZero() {
		w.m.SetCheckpointAge(time.Since(last).Seconds())
	}
}

// Writes reports how many checkpoints this writer has published.
func (w *Writer) Writes() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes
}
