// Package plot renders ASCII line charts — the only display device
// this environment has. Charts support log-scale Y axes (the natural
// scale for residual histories), multiple series with distinct markers,
// axis tick labels, and a legend. The experiment driver uses it to draw
// the paper's figures directly in the terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart is an ASCII line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots log10(y); non-positive values are skipped.
	LogY bool
	// Width and Height are the plotting-area dimensions in characters
	// (defaults 72x20).
	Width, Height int

	series []series
}

type series struct {
	label  string
	marker byte
	x, y   []float64
}

var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'}

// New creates a chart.
func New(title string) *Chart {
	return &Chart{Title: title, Width: 72, Height: 20}
}

// Add appends a series; x and y must have equal length.
func (c *Chart) Add(label string, x, y []float64) {
	if len(x) != len(y) {
		panic("plot: series length mismatch")
	}
	m := markers[len(c.series)%len(markers)]
	cx := make([]float64, len(x))
	cy := make([]float64, len(y))
	copy(cx, x)
	copy(cy, y)
	c.series = append(c.series, series{label: label, marker: m, x: cx, y: cy})
}

// usable reports whether a point participates in the plot.
func (c *Chart) usable(y float64) bool {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return false
	}
	if c.LogY && y <= 0 {
		return false
	}
	return true
}

func (c *Chart) ty(y float64) float64 {
	if c.LogY {
		return math.Log10(y)
	}
	return y
}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	// Data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.series {
		for i := range s.x {
			if !c.usable(s.y[i]) || math.IsNaN(s.x[i]) || math.IsInf(s.x[i], 0) {
				continue
			}
			points++
			xmin = math.Min(xmin, s.x[i])
			xmax = math.Max(xmax, s.x[i])
			ty := c.ty(s.y[i])
			ymin = math.Min(ymin, ty)
			ymax = math.Max(ymax, ty)
		}
	}
	if points == 0 {
		_, err := fmt.Fprintf(w, "%s\n  (no plottable points)\n", c.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.series {
		for i := range s.x {
			if !c.usable(s.y[i]) || math.IsNaN(s.x[i]) || math.IsInf(s.x[i], 0) {
				continue
			}
			col := int(math.Round((s.x[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((c.ty(s.y[i]) - ymin) / (ymax - ymin) * float64(height-1)))
			row = height - 1 - row // row 0 is the top
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[row][col] = s.marker
		}
	}

	// Emit: title, rows with y tick labels on a few lines, x axis.
	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	yfmt := func(v float64) string {
		if c.LogY {
			return fmt.Sprintf("%9.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 9)
		// Ticks on top, middle, bottom rows.
		if r == 0 {
			label = yfmt(ymax)
		} else if r == height-1 {
			label = yfmt(ymin)
		} else if r == height/2 {
			label = yfmt(ymin + (ymax-ymin)*float64(height-1-r)/float64(height-1))
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.6g%*.6g\n",
		strings.Repeat(" ", 9), width/2, xmin, width-width/2, xmax); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s  x: %s   y: %s\n",
			strings.Repeat(" ", 9), c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	// Legend.
	for _, s := range c.series {
		if _, err := fmt.Fprintf(w, "%s  %c %s\n", strings.Repeat(" ", 9), s.marker, s.label); err != nil {
			return err
		}
	}
	return nil
}
