package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	c := New("test chart")
	c.XLabel = "iterations"
	c.YLabel = "residual"
	c.Add("down", []float64{0, 1, 2, 3}, []float64{3, 2, 1, 0})
	c.Add("up", []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test chart", "down", "up", "iterations", "residual", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The two series must use distinct markers; a crossing chart has
	// both markers on the canvas.
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatal("chart too short")
	}
}

func TestRenderLogY(t *testing.T) {
	c := New("log chart")
	c.LogY = true
	xs := make([]float64, 10)
	ys := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = math.Pow(10, -float64(i))
	}
	c.Add("decay", xs, ys)
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Log decay is a straight line: every row of the plotting area
	// should contain exactly one marker.
	count := strings.Count(out, "*")
	if count < 8 {
		t.Fatalf("log-scale line has only %d markers:\n%s", count, out)
	}
}

func TestRenderSkipsNonPositiveOnLog(t *testing.T) {
	c := New("guarded")
	c.LogY = true
	c.Add("mixed", []float64{0, 1, 2}, []float64{1, 0, -5})
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("positive point lost")
	}
}

func TestRenderEmpty(t *testing.T) {
	c := New("empty")
	c.Add("nothing", nil, nil)
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no plottable points") {
		t.Fatal("empty chart not flagged")
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("x").Add("bad", []float64{1}, []float64{1, 2})
}

func TestConstantSeries(t *testing.T) {
	c := New("flat")
	c.Add("const", []float64{0, 1, 2}, []float64{5, 5, 5})
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("flat series not drawn")
	}
}
