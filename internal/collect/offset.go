// Package collect is the cluster-observability side of the multi-process
// world: clock alignment between ranks and root-side collection of each
// rank's telemetry (metric snapshots, trace-ring flushes, and final
// ledger sub-records) so a -spawn run yields one merged trace, one
// ledger record, and one live dashboard instead of N disjoint ones.
//
// Clock alignment uses the transport's heartbeat timing probes: each
// ping/echo exchange yields one NTP-style midpoint sample
//
//	offset = ((t2 - t1) + (t2 - t4)) / 2
//	rtt    = t4 - t1
//
// (t1 = ping sent, t2 = ping turned around on the peer, t4 = echo
// received; the echo is stamped once so t3 = t2). The estimator keeps a
// sliding window of samples and reports the median offset over the
// lowest-RTT half — low-RTT exchanges bound the asymmetry error the
// tightest, exactly the filtering NTP's clock discipline applies.
// Offsets are expressed as peer_clock - local_clock in nanoseconds of
// each side's monotonic transport epoch, so rebasing a rank-local
// timestamp onto another rank's timeline is a single addition.
package collect

import (
	"math"
	"sort"
	"sync"
)

// offsetWindow is the sample window the estimator keeps; old samples
// fall off so a drifting clock tracks rather than averages forever.
const offsetWindow = 64

// offsetSample is one ping/echo measurement.
type offsetSample struct {
	offset float64 // peer_clock - local_clock, ns
	rtt    float64 // round trip, ns
}

// OffsetEstimator estimates the clock offset to one peer from
// heartbeat RTT samples. Safe for concurrent use (the transport's
// reader goroutine adds samples while collectors read the estimate).
// The zero value is ready to use.
type OffsetEstimator struct {
	mu      sync.Mutex
	samples []offsetSample // ring of the last offsetWindow samples
	next    int            // ring cursor
	scratch []offsetSample // reused sort buffer
}

// AddPingEcho folds in one completed ping/echo exchange: t1 = local
// monotonic ns when the ping was sent, t2 = the peer's monotonic ns at
// turnaround, t4 = local monotonic ns when the echo arrived. Samples
// with negative RTT (clock retreat, reordered echo) are discarded.
func (e *OffsetEstimator) AddPingEcho(t1, t2, t4 float64) {
	rtt := t4 - t1
	if rtt < 0 || math.IsNaN(rtt) || math.IsInf(rtt, 0) {
		return
	}
	// Midpoint: the peer stamped t2 once, so the exchange is
	// (t1 -> t2 | t2 -> t4) and offset = ((t2-t1)+(t2-t4))/2.
	off := ((t2 - t1) + (t2 - t4)) / 2
	if math.IsNaN(off) || math.IsInf(off, 0) {
		return
	}
	e.mu.Lock()
	if len(e.samples) < offsetWindow {
		e.samples = append(e.samples, offsetSample{off, rtt})
	} else {
		e.samples[e.next] = offsetSample{off, rtt}
		e.next = (e.next + 1) % offsetWindow
	}
	e.mu.Unlock()
}

// Samples reports how many measurements the window currently holds.
func (e *OffsetEstimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.samples)
}

// OffsetNs returns the current estimate of peer_clock - local_clock in
// nanoseconds: the median offset over the lowest-RTT half of the
// window. ok is false until at least one sample has landed.
func (e *OffsetEstimator) OffsetNs() (offset float64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.samples)
	if n == 0 {
		return 0, false
	}
	e.scratch = append(e.scratch[:0], e.samples...)
	// Keep the lowest-RTT half (at least one): those exchanges saw the
	// least queueing, so their midpoint asymmetry error is smallest.
	sort.Slice(e.scratch, func(i, j int) bool { return e.scratch[i].rtt < e.scratch[j].rtt })
	keep := (n + 1) / 2
	best := e.scratch[:keep]
	sort.Slice(best, func(i, j int) bool { return best[i].offset < best[j].offset })
	if keep%2 == 1 {
		return best[keep/2].offset, true
	}
	return (best[keep/2-1].offset + best[keep/2].offset) / 2, true
}
