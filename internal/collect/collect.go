package collect

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Tag is the reserved control-plane message tag of the collection side
// channel. Negative tags ride the transport's control lane: never
// wire-faulted, never evicted by the bounded outbox, and delivered into
// an unbounded mailbox — a rank's final report must survive exactly the
// fault regimes the experiment was injecting. Tags -1..-6 belong to the
// dist collectives and termination protocol (see dist/comm.go).
const Tag = -7

// Comm is the slice of the transport the collector needs. It is a
// local interface (satisfied by *tcptransport.Transport and dist.Rank)
// so the import graph stays acyclic: tcptransport already imports this
// package for the clock-offset estimator.
type Comm interface {
	RankID() int
	WorldSize() int
	Isend(to, tag int, data []float64)
	RecvTimeout(from, tag int, d time.Duration) ([]float64, error)
}

// RankReport is everything a non-root rank ships to the root at the
// end of a solve: its ledger sub-record, its retained trace events,
// and the partial clock-rebase shift the root completes with its own
// recorder-base/transport-epoch skew (see trace.ProcTrace.ShiftNs).
type RankReport struct {
	Rank   int
	Record ledger.RankRecord
	// ShiftNs is the shipping rank's partial rebase term
	// (base_r - epoch_r) + offset_r; the root subtracts its own
	// (base_0 - epoch_0) before handing the events to MergeProcesses.
	ShiftNs int64
	Events  []trace.Event
}

// pack gob-encodes the report and bit-packs the bytes into the
// transport's []float64 payload unit: word 0 is the byte count, the
// rest are little-endian 8-byte chunks reinterpreted through
// math.Float64frombits. The transport moves payload words by copy and
// bit-exact serialization, so arbitrary bit patterns (including
// NaN-space ones) survive the trip.
func pack(rep *RankReport) ([]float64, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(rep); err != nil {
		return nil, fmt.Errorf("collect: encode rank %d report: %w", rep.Rank, err)
	}
	raw := b.Bytes()
	words := make([]float64, 1+(len(raw)+7)/8)
	words[0] = float64(len(raw))
	var chunk [8]byte
	for i := 0; i < len(raw); i += 8 {
		for j := range chunk {
			chunk[j] = 0
		}
		copy(chunk[:], raw[i:])
		words[1+i/8] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[:]))
	}
	return words, nil
}

func unpack(words []float64) (*RankReport, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("collect: empty report payload")
	}
	n := int(words[0])
	if n < 0 || n > (len(words)-1)*8 {
		return nil, fmt.Errorf("collect: report length %d outside payload of %d words", n, len(words))
	}
	raw := make([]byte, (len(words)-1)*8)
	for i, w := range words[1:] {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(w))
	}
	var rep RankReport
	if err := gob.NewDecoder(bytes.NewReader(raw[:n])).Decode(&rep); err != nil {
		return nil, fmt.Errorf("collect: decode report: %w", err)
	}
	return &rep, nil
}

// Ship sends this rank's report to the root over the collection
// channel. Non-blocking (transport Isend semantics); the caller should
// keep the transport open long enough for the control lane to drain —
// Transport.Close's grace period covers that.
func Ship(c Comm, rep *RankReport) error {
	words, err := pack(rep)
	if err != nil {
		return err
	}
	c.Isend(0, Tag, words)
	return nil
}

// Gather collects the non-root ranks' reports at the root, waiting up
// to `each` per rank. A rank that died or never shipped is skipped —
// the merged record simply lacks its sub-record, mirroring how the
// solver itself tolerates dead neighbors. Reports arrive keyed by
// source rank (per-source mailboxes), so no cross-rank ordering is
// assumed. Returns the reports in rank order.
func Gather(c Comm, each time.Duration) []RankReport {
	var out []RankReport
	for q := 1; q < c.WorldSize(); q++ {
		words, err := c.RecvTimeout(q, Tag, each)
		if err != nil {
			continue
		}
		rep, err := unpack(words)
		if err != nil || rep.Rank != q {
			continue
		}
		out = append(out, *rep)
	}
	return out
}

// PublishCluster mirrors the gathered sub-records (plus the root's
// own) onto the root's metrics registry as aj_cluster_* gauges, so one
// scrape of the root's /metrics sees the whole cluster and ajmon can
// render the per-rank dashboard without talking to every process.
func PublishCluster(reg *obs.Registry, ranks []ledger.RankRecord) {
	if reg == nil || len(ranks) == 0 {
		return
	}
	iters := reg.NewGauge("aj_cluster_iters", "Per-rank local asynchronous iteration count.", "rank")
	relax := reg.NewGauge("aj_cluster_relaxations", "Per-rank row relaxation count.", "rank")
	share := reg.NewGauge("aj_cluster_residual_share", "Per-rank share of the final squared residual.", "rank")
	conv := reg.NewGauge("aj_cluster_converged", "Per-rank convergence flag (1 = converged).", "rank")
	stale := reg.NewGauge("aj_cluster_staleness_iters", "Per-rank read-staleness quantiles in iterations.", "rank", "q")
	rtt := reg.NewGauge("aj_cluster_rtt_seconds", "Per-rank measured heartbeat RTT quantiles.", "rank", "q")
	delay := reg.NewGauge("aj_cluster_delay_seconds", "Per-rank measured one-way frame delay quantiles.", "rank", "q")
	offset := reg.NewGauge("aj_cluster_clock_offset_seconds", "Per-rank estimated clock offset to root.", "rank")
	events := reg.NewGauge("aj_cluster_wire_events", "Per-rank wire event totals by kind.", "rank", "event")
	for _, rr := range ranks {
		r := strconv.Itoa(rr.Rank)
		iters.With(r).Set(float64(rr.Iters))
		relax.With(r).Set(float64(rr.Relaxations))
		share.With(r).Set(rr.ResidualShare)
		if rr.Converged {
			conv.With(r).Set(1)
		} else {
			conv.With(r).Set(0)
		}
		stale.With(r, "p50").Set(rr.StalenessP50)
		stale.With(r, "p95").Set(rr.StalenessP95)
		rtt.With(r, "p50").Set(rr.RTTP50Ns / 1e9)
		rtt.With(r, "p95").Set(rr.RTTP95Ns / 1e9)
		delay.With(r, "p50").Set(rr.DelayP50Ns / 1e9)
		delay.With(r, "p95").Set(rr.DelayP95Ns / 1e9)
		offset.With(r).Set(rr.ClockOffsetNs / 1e9)
		for k, v := range rr.Counters {
			events.With(r, k).Set(float64(v))
		}
	}
}
