package collect

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/trace"
)

// simClocks runs n ping/echo exchanges between a local clock and a
// peer clock offset by skew(t) ns, with one-way delays drawn by delay.
func simClocks(est *OffsetEstimator, n int, skew func(t float64) float64, delay func() (d1, d2 float64)) {
	t := 0.0
	for i := 0; i < n; i++ {
		d1, d2 := delay()
		t1 := t
		t2 := t1 + d1 + skew(t1+d1) // peer's clock at arrival
		t4 := t1 + d1 + d2
		est.AddPingEcho(t1, t2, t4)
		t += 5e6 // 5ms heartbeat cadence
	}
}

func TestOffsetEstimatorSymmetricSkew(t *testing.T) {
	for _, skewMs := range []float64{50, -50} {
		est := &OffsetEstimator{}
		want := skewMs * 1e6
		simClocks(est, 32, func(float64) float64 { return want },
			func() (float64, float64) { return 1e6, 1e6 })
		got, ok := est.OffsetNs()
		if !ok {
			t.Fatalf("skew %vms: no estimate", skewMs)
		}
		if math.Abs(got-want) > 1 {
			t.Fatalf("skew %vms: offset = %v ns, want %v", skewMs, got, want)
		}
	}
}

func TestOffsetEstimatorAsymmetricJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	est := &OffsetEstimator{}
	const want = 50e6 // +50ms
	// Base 0.5ms each way plus up to 4ms of independent jitter: the
	// lowest-RTT-half median should land within the base asymmetry
	// (well under 1ms), not the worst-case 2ms.
	simClocks(est, 200, func(float64) float64 { return want },
		func() (float64, float64) {
			return 0.5e6 + 4e6*rng.Float64(), 0.5e6 + 4e6*rng.Float64()
		})
	got, ok := est.OffsetNs()
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(got-want) > 1e6 {
		t.Fatalf("offset = %v ms, want 50 +/- 1", got/1e6)
	}
}

func TestOffsetEstimatorDrift(t *testing.T) {
	est := &OffsetEstimator{}
	// -50ms initial skew drifting at +100ppm: over 200 beats at 5ms the
	// skew moves 0.1ms. The windowed median must track the recent value,
	// not the stale start.
	skew := func(tns float64) float64 { return -50e6 + 100e-6*tns }
	simClocks(est, 200, skew, func() (float64, float64) { return 1e6, 1e6 })
	got, ok := est.OffsetNs()
	if !ok {
		t.Fatal("no estimate")
	}
	finalSkew := skew(200 * 5e6)
	if math.Abs(got-finalSkew) > 0.2e6 {
		t.Fatalf("offset = %v ms, want %v +/- 0.2", got/1e6, finalSkew/1e6)
	}
}

func TestOffsetEstimatorRejectsGarbage(t *testing.T) {
	est := &OffsetEstimator{}
	if _, ok := est.OffsetNs(); ok {
		t.Fatal("estimate before any sample")
	}
	est.AddPingEcho(100, 50, 90)       // t4 < t1: negative rtt
	est.AddPingEcho(math.NaN(), 1, 2)  // NaN
	est.AddPingEcho(0, math.Inf(1), 1) // Inf
	if _, ok := est.OffsetNs(); ok || est.Samples() != 0 {
		t.Fatalf("garbage samples accepted: %d", est.Samples())
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := &RankReport{
		Rank: 2,
		Record: ledger.RankRecord{
			Rank: 2, Converged: true, StopReason: "converged",
			Iters: 137, Relaxations: 137 * 33, ResidualShare: 0.31,
			StalenessP50: 1.5, StalenessP95: 4,
			RTTP50Ns: 2.1e6, RTTP95Ns: 3.7e6,
			DelayP50Ns: 1.0e6, DelayP95Ns: 2.2e6,
			ClockOffsetNs: -48.9e6,
			Counters:      map[string]uint64{"wire_drops": 12, "wire_retransmits": 3},
			WallNs:        812e6,
		},
		ShiftNs: -51e6,
		Events: []trace.Event{
			{TS: 10, Kind: trace.KindSend, Peer: 0, Payload: 1},
			{TS: 20, Kind: trace.KindRecv, Peer: 1, Payload: 7},
		},
	}
	words, err := pack(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unpack(words)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != rep.Rank || got.ShiftNs != rep.ShiftNs ||
		len(got.Events) != len(rep.Events) || got.Events[1] != rep.Events[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Record.Iters != rep.Record.Iters || got.Record.RTTP95Ns != rep.Record.RTTP95Ns ||
		got.Record.Counters["wire_drops"] != 12 {
		t.Fatalf("record mismatch: %+v", got.Record)
	}
	if got.Record.ClockOffsetNs != rep.Record.ClockOffsetNs {
		t.Fatalf("offset mismatch: %v", got.Record.ClockOffsetNs)
	}
}

func TestUnpackRejectsTruncation(t *testing.T) {
	words, err := pack(&RankReport{Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unpack(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := unpack(words[:len(words)/2]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// fakeComm is an in-memory world for Gather: mail[src] holds what src
// shipped to root.
type fakeComm struct {
	rank, size int
	mail       map[int][][]float64
}

func (f *fakeComm) RankID() int    { return f.rank }
func (f *fakeComm) WorldSize() int { return f.size }
func (f *fakeComm) Isend(to, tag int, data []float64) {
	cp := append([]float64(nil), data...)
	f.mail[f.rank] = append(f.mail[f.rank], cp)
}
func (f *fakeComm) RecvTimeout(from, tag int, d time.Duration) ([]float64, error) {
	if q := f.mail[from]; len(q) > 0 {
		m := q[0]
		f.mail[from] = q[1:]
		return m, nil
	}
	return nil, errTimeout{}
}

type errTimeout struct{}

func (errTimeout) Error() string { return "timeout" }

func TestGatherSkipsDeadRank(t *testing.T) {
	mail := map[int][][]float64{}
	for _, q := range []int{1, 3} { // rank 2 never ships
		c := &fakeComm{rank: q, size: 4, mail: mail}
		if err := Ship(c, &RankReport{Rank: q, Record: ledger.RankRecord{Rank: q, Iters: 10 * q}}); err != nil {
			t.Fatal(err)
		}
	}
	root := &fakeComm{rank: 0, size: 4, mail: mail}
	reps := Gather(root, 10*time.Millisecond)
	if len(reps) != 2 || reps[0].Rank != 1 || reps[1].Rank != 3 {
		t.Fatalf("gathered %+v", reps)
	}
	if reps[1].Record.Iters != 30 {
		t.Fatalf("rank 3 record: %+v", reps[1].Record)
	}
}
