package shm

import (
	"context"
	"math/rand/v2"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// A deadline-stopped run must say so, and must never claim convergence
// its residual does not back: Converged == (RelRes <= Tol) always.
func TestShmDeadlineStops(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	for _, async := range []bool{true, false} {
		name := "sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			res := Solve(a, b, x0, Options{
				Threads: 4, MaxIters: 1 << 20, Tol: 1e-300, Async: async,
				DelayThread: -1, MaxTime: 5 * time.Millisecond,
			})
			if res.StopReason != resilience.StopDeadline {
				t.Fatalf("stop reason %v, want deadline", res.StopReason)
			}
			if res.Converged {
				t.Fatalf("deadline-stopped run claims convergence (relres %g)", res.RelRes)
			}
			if res.Converged != (res.RelRes <= 1e-300) {
				t.Fatal("Converged contradicts RelRes")
			}
			if res.Elapsed <= 0 || res.Elapsed != res.WallTime {
				t.Fatalf("fresh run elapsed %v != walltime %v", res.Elapsed, res.WallTime)
			}
		})
	}
}

// The acceptance scenario: an asynchronous solve is degraded mid-run by
// an injected fail-stop crash, leaves a checkpoint at exit, and a new
// solve restarted from that checkpoint converges — with the fault
// latches restored, so the already-spent crash does not replay.
func TestShmKillRestartFromCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 54))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	tol := 1e-10
	path := filepath.Join(t.TempDir(), "kill.ajcp")
	plan := &fault.Plan{
		Seed: 11, StallRank: -1,
		CrashRanks: []int{1}, CrashIter: 10,
	}

	res1 := Solve(a, b, x0, Options{
		Threads: 4, MaxIters: 60, Tol: tol, Async: true, DelayThread: -1,
		Fault:      plan,
		Checkpoint: &resilience.Spec{Path: path, Interval: time.Hour},
	})
	if res1.Converged {
		t.Fatal("crashed run converged to 1e-10 with a frozen block; crash did not bite")
	}
	if res1.StopReason != resilience.StopCrashed {
		t.Fatalf("stop reason %v, want crashed", res1.StopReason)
	}
	if res1.CheckpointErr != nil {
		t.Fatalf("final checkpoint write failed: %v", res1.CheckpointErr)
	}

	ck, err := resilience.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := ck.ValidateFor(a.N); err != nil {
		t.Fatalf("ValidateFor: %v", err)
	}
	res2 := Solve(a, b, ck.X, Options{
		Threads: 4, MaxIters: 5000, Tol: tol, Async: true, DelayThread: -1,
		Fault:  plan,
		Resume: ck,
	})
	if !res2.Converged {
		t.Fatalf("restarted run did not converge: relres %g", res2.RelRes)
	}
	if res2.Converged != (res2.RelRes <= tol) {
		t.Fatal("Converged contradicts RelRes")
	}
	if res2.StopReason != resilience.StopConverged {
		t.Fatalf("stop reason %v, want converged", res2.StopReason)
	}
	if res2.Elapsed <= res2.WallTime {
		t.Fatalf("resumed Elapsed %v does not include checkpointed time (walltime %v)",
			res2.Elapsed, res2.WallTime)
	}
}

// Row reassignment: a worker crashed fail-stop mid-run is declared dead
// by the supervisor, its block is split among the survivors in finer
// blocks, and the run converges to a tolerance the frozen block would
// have made unreachable — completion without restart.
func TestShmSupervisorReassignsCrashedWorker(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 56))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	tol := 1e-8
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	done := make(chan *Result, 1)
	go func() {
		done <- Solve(a, b, x0, Options{
			Threads: 4, MaxIters: 20000, Tol: tol, Async: true, DelayThread: -1,
			Fault: &fault.Plan{
				Seed: 13, StallRank: -1,
				// Pareto delays throttle the survivors so they are still
				// iterating when the stall threshold elapses.
				DelayMean: 100 * time.Microsecond, DelayProb: 1,
				CrashRanks: []int{1}, CrashIter: 5,
			},
			Metrics:        m,
			Supervise:      true,
			StallThreshold: 20 * time.Millisecond,
		})
	}()
	var res *Result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("supervised solve hung")
	}
	if !res.Converged {
		t.Fatalf("supervised run did not converge past the dead worker: relres %g, reason %v",
			res.RelRes, res.StopReason)
	}
	if res.StopReason != resilience.StopConverged {
		t.Fatalf("stop reason %v, want converged", res.StopReason)
	}
	if res.DeadWorkers != 1 {
		t.Fatalf("DeadWorkers = %d, want 1", res.DeadWorkers)
	}
	if got := m.RecoveryWorkerDeadCount(); got != 1 {
		t.Fatalf("worker_dead counter = %d, want 1", got)
	}
	if got := m.RecoveryReassignCount(); got < 1 {
		t.Fatalf("reassign counter = %d, want >= 1", got)
	}
	if res.TotalRelaxations <= 0 {
		t.Fatal("no relaxations counted")
	}
}

// End-to-end recovery against the paper's theory: cancel a traced
// asynchronous solve mid-flight, reload its at-exit checkpoint, resume
// to convergence, and stitch both traces into one relaxation history —
// which must satisfy Theorem 1's norm bounds with zero violations,
// because a kill/resume is just one more delay pattern.
func TestShmCancelCheckpointResumeVerifyNorms(t *testing.T) {
	rng := rand.New(rand.NewPCG(57, 58))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	tol := 1e-8
	path := filepath.Join(t.TempDir(), "cancel.ajcp")
	plan := &fault.Plan{
		Seed: 17, StallRank: -1,
		// Throttle so the cancellation lands mid-solve, not after it.
		DelayMean: 50 * time.Microsecond, DelayProb: 1,
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	rec1 := trace.NewRecorder(4, 1<<17)
	res1 := Solve(a, b, x0, Options{
		Threads: 4, MaxIters: 1 << 20, Tol: 0, Async: true, DelayThread: -1,
		Fault:      plan,
		Tracer:     rec1,
		Ctx:        ctx,
		Checkpoint: &resilience.Spec{Path: path, Interval: time.Hour},
	})
	if res1.StopReason != resilience.StopCanceled {
		t.Fatalf("stop reason %v, want canceled", res1.StopReason)
	}
	if res1.CheckpointErr != nil {
		t.Fatalf("final checkpoint write failed: %v", res1.CheckpointErr)
	}
	if res1.TotalRelaxations == 0 {
		t.Fatal("canceled before any relaxation; nothing to resume")
	}
	for w := 0; w < 4; w++ {
		if d := rec1.Worker(w).Dropped(); d != 0 {
			t.Fatalf("run 1 worker %d dropped %d events; grow the ring", w, d)
		}
	}

	ck, err := resilience.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	rec2 := trace.NewRecorder(4, 1<<17)
	res2 := Solve(a, b, ck.X, Options{
		Threads: 4, MaxIters: 5000, Tol: tol, Async: true, DelayThread: -1,
		Fault:  plan,
		Tracer: rec2,
		Resume: ck,
	})
	if !res2.Converged {
		t.Fatalf("resumed run did not converge: relres %g, reason %v", res2.RelRes, res2.StopReason)
	}
	for w := 0; w < 4; w++ {
		if d := rec2.Worker(w).Dropped(); d != 0 {
			t.Fatalf("run 2 worker %d dropped %d events; grow the ring", w, d)
		}
	}

	tr1, err := trace.ToModelTraceMatrix(rec1, a)
	if err != nil {
		t.Fatalf("ToModelTrace run 1: %v", err)
	}
	tr2, err := trace.ToModelTraceMatrix(rec2, a)
	if err != nil {
		t.Fatalf("ToModelTrace run 2: %v", err)
	}
	merged, err := trace.MergeModelTraces(tr1, tr2)
	if err != nil {
		t.Fatalf("MergeModelTraces: %v", err)
	}
	if len(merged.Events) != len(tr1.Events)+len(tr2.Events) {
		t.Fatalf("merged %d events from %d + %d", len(merged.Events), len(tr1.Events), len(tr2.Events))
	}
	rep, err := trace.VerifyNorms(a, merged, 1e-9, 400)
	if err != nil {
		t.Fatalf("VerifyNorms: %v", err)
	}
	if rep.MasksChecked == 0 {
		t.Fatal("no step masks checked")
	}
	if rep.Violations != 0 {
		t.Fatalf("Theorem 1 violated across the kill/resume boundary: %d of %d masks (G=%g H=%g)",
			rep.Violations, rep.MasksChecked, rep.MaxGNormInf, rep.MaxHNorm1)
	}
}

// splitRanges must cover every row exactly once across the pieces.
func TestSplitRangesPartition(t *testing.T) {
	cases := []struct {
		ranges []rowRange
		k      int
	}{
		{[]rowRange{{0, 16}}, 3},
		{[]rowRange{{4, 7}, {20, 31}}, 4},
		{[]rowRange{{0, 2}}, 5}, // more pieces than rows
		{nil, 2},
	}
	for _, tc := range cases {
		pieces := splitRanges(tc.ranges, tc.k)
		if len(pieces) != tc.k {
			t.Fatalf("got %d pieces, want %d", len(pieces), tc.k)
		}
		seen := map[int]int{}
		for _, piece := range pieces {
			for _, rg := range piece {
				for i := rg.lo; i < rg.hi; i++ {
					seen[i]++
				}
			}
		}
		want := 0
		for _, rg := range tc.ranges {
			for i := rg.lo; i < rg.hi; i++ {
				want++
				if seen[i] != 1 {
					t.Fatalf("row %d covered %d times", i, seen[i])
				}
			}
		}
		if len(seen) != want {
			t.Fatalf("covered %d rows, want %d", len(seen), want)
		}
	}
}
