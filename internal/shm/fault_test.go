package shm

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/matgen"
	"repro/internal/trace"
)

// The acceptance check for fault injection against the paper's theory:
// a traced asynchronous solve with Pareto delays, a stall, and a
// crash/restart is replayed through the propagation model, and
// Theorem 1's norm bounds (||Ĝ||_inf <= 1, ||Ĥ||_1 <= 1 on a W.D.D.
// unit-diagonal matrix) must hold for every recorded step mask —
// injected faults are just delays, and delays never grow the residual.
func TestShmFaultVerifyNorms(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	// Sized to hold the whole run: 60 iterations x 16 rows/worker x
	// ~7 events per relaxation plus fault events stays under 1<<16.
	rec := trace.NewRecorder(4, 1<<16)
	Solve(a, b, x0, Options{
		Threads: 4, MaxIters: 60, Async: true, DelayThread: -1,
		Tracer: rec,
		Fault: &fault.Plan{
			Seed:       7,
			DelayMean:  20 * time.Microsecond,
			DelayProb:  0.2,
			StallRank:  1,
			StallIter:  5,
			StallFor:   200 * time.Microsecond,
			CrashRanks: []int{2}, CrashIter: 10,
			Restart: true, RestartAfter: 100 * time.Microsecond,
		},
	})
	for w := 0; w < 4; w++ {
		if d := rec.Worker(w).Dropped(); d != 0 {
			t.Fatalf("worker %d ring dropped %d events; grow the capacity", w, d)
		}
	}
	tr, err := trace.ToModelTraceMatrix(rec, a)
	if err != nil {
		t.Fatalf("ToModelTrace: %v", err)
	}
	rep, err := trace.VerifyNorms(a, tr, 1e-9, 200)
	if err != nil {
		t.Fatalf("VerifyNorms: %v", err)
	}
	if rep.MasksChecked == 0 {
		t.Fatal("no step masks checked")
	}
	if rep.Violations != 0 {
		t.Fatalf("Theorem 1 violated under faults: %d of %d masks exceeded 1 (G=%g H=%g)",
			rep.Violations, rep.MasksChecked, rep.MaxGNormInf, rep.MaxHNorm1)
	}
}

// A worker crashed without restart must degrade the run, not hang it:
// it raises its own flag on the way out so the shared flag array
// terminates over the survivors, and its rows freeze at the iterate it
// last wrote.
func TestShmCrashNoRestartDegrades(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	done := make(chan *Result, 1)
	go func() {
		done <- Solve(a, b, x0, Options{
			Threads: 4, MaxIters: 300, Tol: 1e-10, Async: true, DelayThread: -1,
			Fault: &fault.Plan{
				Seed: 8, StallRank: -1,
				CrashRanks: []int{1}, CrashIter: 5,
			},
		})
	}()
	var res *Result
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("crash-no-restart solve hung")
	}
	if res.Iterations[1] > 5 {
		t.Fatalf("crashed worker iterated %d times past its crash", res.Iterations[1])
	}
	if res.Converged {
		t.Fatalf("converged to 1e-10 with a frozen block: relres=%g", res.RelRes)
	}
	for w, it := range res.Iterations {
		if w != 1 && it == 0 {
			t.Fatalf("surviving worker %d never iterated", w)
		}
	}
}

// A crash with restart-from-current-x is only an outage: the worker
// rejoins with the shared iterate and the solve still converges.
func TestShmCrashRestartConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	const tol = 1e-6
	res := Solve(a, b, x0, Options{
		Threads: 4, MaxIters: 5000, Tol: tol, Async: true, DelayThread: -1,
		Fault: &fault.Plan{
			Seed: 9, StallRank: -1,
			CrashRanks: []int{1}, CrashIter: 10,
			Restart: true, RestartAfter: time.Millisecond,
		},
	})
	if !res.Converged || res.RelRes > tol {
		t.Fatalf("crash/restart did not converge: relres=%g converged=%v",
			res.RelRes, res.Converged)
	}
	if res.Iterations[1] <= 10 {
		t.Fatalf("restarted worker never resumed: %d iterations", res.Iterations[1])
	}
}
