package shm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/analytics"
	"repro/internal/ledger"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/trace"
)

// BenchmarkAsyncSolve is the trace-disabled baseline: Options.Tracer is
// nil, so the tracing instrumentation must cost only nil checks and the
// result must stay within noise of the pre-tracing seed.
func BenchmarkAsyncSolve(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50, Async: true})
	}
}

// benchTraced runs the traced solve with the given recorder options.
// One recorder is allocated up front and rewound with Reset per solve —
// the always-on deployment shape Reset exists for; reallocating the
// rings' megabytes per solve would measure GC churn, not tracing.
func benchTraced(b *testing.B, opts ...trace.Option) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	rec := trace.NewRecorder(8, trace.DefaultCapacity, opts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Reset()
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50, Async: true, Tracer: rec})
	}
}

// BenchmarkAsyncSolveTraced measures the always-on default: coalesced
// encoding, no sampling. The perf ratchet gates this against
// BenchmarkAsyncSolve (CI fails above 2.5x).
func BenchmarkAsyncSolveTraced(b *testing.B) {
	benchTraced(b)
}

// BenchmarkAsyncSolveTracedFull disables coalescing: one event per
// read, the pre-coalescing recording fidelity.
func BenchmarkAsyncSolveTracedFull(b *testing.B) {
	benchTraced(b, trace.WithoutCoalescing())
}

// BenchmarkAsyncSolveTracedSampled keeps every 8th relaxation.
func BenchmarkAsyncSolveTracedSampled(b *testing.B) {
	benchTraced(b, trace.WithSampling(&trace.SamplePolicy{Mode: trace.SampleEvery, N: 8}))
}

// BenchmarkAsyncSolveStreamed measures the live-telemetry path: metrics
// mirrored onto a stream.Bus at the default sampling interval with one
// idle subscriber attached (the /stream + analytics configuration).
// Sampling gates the per-iteration residual-share computation, so this
// must stay within a few percent of BenchmarkAsyncSolve.
func BenchmarkAsyncSolveStreamed(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	m := obs.NewSolverMetrics(obs.NewRegistry())
	bus := stream.NewBus()
	m.AttachBus(bus, obs.DefaultSampleInterval)
	sub := bus.Subscribe(1 << 10)
	defer sub.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50, Async: true, Metrics: m})
	}
}

// BenchmarkAsyncSolveLedgered measures the full run-ledger path per
// solve: metrics streamed into a live analytics engine (the rate fit a
// record carries), a RunRecord built from the snapshot, and a durable
// CRC-framed append. This is what `ajsolve -ledger DIR` adds on top of
// BenchmarkAsyncSolve; the ledger must stay within benchcmp noise of
// the untraced baseline.
func BenchmarkAsyncSolveLedgered(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	store, err := ledger.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	mat := ledger.DescribeMatrix("fd:32x32", a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := obs.NewSolverMetrics(obs.NewRegistry())
		bus := stream.NewBus()
		m.AttachBus(bus, obs.DefaultSampleInterval)
		sub := bus.Subscribe(1 << 12)
		eng := analytics.New(analytics.Config{N: a.N, Window: 128})
		done := make(chan struct{})
		go func() {
			eng.Pump(sub)
			close(done)
		}()
		res := Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50, Async: true, Metrics: m})
		sub.Close()
		<-done
		snap := eng.Snapshot()
		_, err := store.Append(&ledger.RunRecord{
			Tool: "bench", Substrate: "shm", Method: "jacobi-async", Matrix: mat,
			Config: ledger.SolveConfig{MaxSweeps: 50, Threads: 8},
			Outcome: ledger.Outcome{
				Converged: res.Converged, RelRes: res.RelRes,
				Sweeps: res.TotalRelaxations / a.N, SolveNs: int64(res.Elapsed),
			},
			Rate:      ledger.RateInfo{RhoHat: snap.Fit.Rho, Lo: snap.Fit.Lo, Hi: snap.Fit.Hi, Samples: snap.Fit.N},
			Staleness: ledger.StalenessInfo{P50: snap.StaleP50, P95: snap.StaleP95},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyncSolve(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(2, 2))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50})
	}
}

// Property: AtomicVector stores and loads arbitrary float64 bit
// patterns exactly (including negative zero, subnormals, infinities).
func TestAtomicVectorRoundTripProperty(t *testing.T) {
	v := NewAtomicVector(1)
	f := func(x float64) bool {
		v.Store(0, x)
		got := v.Load(0)
		// NaN != NaN, so compare bit patterns via another store.
		return got == x || (x != x && got != got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
