package shm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/trace"
)

// BenchmarkAsyncSolve is the trace-disabled baseline: Options.Tracer is
// nil, so the tracing instrumentation must cost only nil checks and the
// result must stay within noise of the pre-tracing seed.
func BenchmarkAsyncSolve(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50, Async: true})
	}
}

// BenchmarkAsyncSolveTraced measures the enabled tracer: every
// relaxation records start/end, per-read versions, and the write, into
// per-worker rings sized to hold the whole run.
func BenchmarkAsyncSolveTraced(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Sized to hold the whole run: 50 iterations x 128 rows/worker
		// x ~7 events/relaxation stays under the default capacity.
		rec := trace.NewRecorder(8, trace.DefaultCapacity)
		b.StartTimer()
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50, Async: true, Tracer: rec})
	}
}

// BenchmarkAsyncSolveStreamed measures the live-telemetry path: metrics
// mirrored onto a stream.Bus at the default sampling interval with one
// idle subscriber attached (the /stream + analytics configuration).
// Sampling gates the per-iteration residual-share computation, so this
// must stay within a few percent of BenchmarkAsyncSolve.
func BenchmarkAsyncSolveStreamed(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	m := obs.NewSolverMetrics(obs.NewRegistry())
	bus := stream.NewBus()
	m.AttachBus(bus, obs.DefaultSampleInterval)
	sub := bus.Subscribe(1 << 10)
	defer sub.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50, Async: true, Metrics: m})
	}
}

func BenchmarkSyncSolve(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(2, 2))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50})
	}
}

// Property: AtomicVector stores and loads arbitrary float64 bit
// patterns exactly (including negative zero, subnormals, infinities).
func TestAtomicVectorRoundTripProperty(t *testing.T) {
	v := NewAtomicVector(1)
	f := func(x float64) bool {
		v.Store(0, x)
		got := v.Load(0)
		// NaN != NaN, so compare bit patterns via another store.
		return got == x || (x != x && got != got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
