package shm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/matgen"
)

func BenchmarkAsyncSolve(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(1, 1))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50, Async: true})
	}
}

func BenchmarkSyncSolve(b *testing.B) {
	a := matgen.FD2D(32, 32)
	rng := rand.New(rand.NewPCG(2, 2))
	bb := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, bb, x0, Options{Threads: 8, MaxIters: 50})
	}
}

// Property: AtomicVector stores and loads arbitrary float64 bit
// patterns exactly (including negative zero, subnormals, infinities).
func TestAtomicVectorRoundTripProperty(t *testing.T) {
	v := NewAtomicVector(1)
	f := func(x float64) bool {
		v.Store(0, x)
		got := v.Load(0)
		// NaN != NaN, so compare bit patterns via another store.
		return got == x || (x != x && got != got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
