package shm

import (
	"bufio"
	"bytes"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/matgen"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/trace"
)

// ShardedNorm is the convergence check's data structure: per-worker
// partial |r|_1 sums, summed racily by readers. Publish replaces (not
// accumulates), Zero is the supervisor's reassignment hook.
func TestShardedNorm(t *testing.T) {
	s := NewShardedNorm(4)
	if got := s.Sum(); got != 0 {
		t.Fatalf("fresh sum = %g, want 0", got)
	}
	s.Publish(0, 1.5)
	s.Publish(1, 2.25)
	s.Publish(3, 0.25)
	if got := s.Sum(); got != 4.0 {
		t.Fatalf("sum = %g, want 4", got)
	}
	if got := s.Load(1); got != 2.25 {
		t.Fatalf("load(1) = %g, want 2.25", got)
	}
	// Publish replaces the shard wholesale — one stale iteration never
	// compounds.
	s.Publish(1, 0.5)
	if got := s.Sum(); got != 2.25 {
		t.Fatalf("sum after republish = %g, want 2.25", got)
	}
	// Zero models a death + reassignment: the dead shard must stop
	// contributing or the total can never cross the tolerance.
	s.Zero(0)
	if got := s.Sum(); got != 0.75 {
		t.Fatalf("sum after zero = %g, want 0.75", got)
	}
}

// The 5-point FD2D stencil on an 8x8 grid split over 4 workers gives
// each worker two grid rows, so off-block couplings reach only the
// adjacent blocks. Pins the neighbor sets the staleness sampler and
// the supervisor's adoption bookkeeping both consume.
func TestNeighborSetsFD2DPinned(t *testing.T) {
	a := matgen.FD2D(8, 8)
	got := neighborSets(a, 4)
	want := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	if len(got) != len(want) {
		t.Fatalf("got %d sets, want %d", len(got), len(want))
	}
	for w := range want {
		if len(got[w]) != len(want[w]) {
			t.Fatalf("worker %d: neighbors %v, want %v", w, got[w], want[w])
		}
		for i := range want[w] {
			if got[w][i] != want[w][i] {
				t.Fatalf("worker %d: neighbors %v, want %v", w, got[w], want[w])
			}
		}
	}
}

// neighborSets' O(1) owner lookup must agree with the binary-search
// reference it replaced, for every worker count that divides the rows
// unevenly.
func TestNeighborSetsMatchesReference(t *testing.T) {
	mats := []struct {
		name string
		rows int
		cols int
	}{{"fd:8x8", 8, 8}, {"fd:7x9", 7, 9}, {"fd:16x5", 16, 5}}
	for _, mc := range mats {
		a := matgen.FD2D(mc.rows, mc.cols)
		for nt := 1; nt <= 8; nt++ {
			// Reference: per worker, per nonzero, binary search over the
			// partition boundaries.
			bounds := make([]int, nt+1)
			for q := 0; q < nt; q++ {
				lo, hi := partition.ContiguousRange(a.N, nt, q)
				bounds[q], bounds[q+1] = lo, hi
			}
			want := make([][]int, nt)
			for q := 0; q < nt; q++ {
				set := map[int]bool{}
				for i := bounds[q]; i < bounds[q+1]; i++ {
					for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
						u := sort.SearchInts(bounds[1:], a.Col[p]+1)
						if u != q {
							set[u] = true
						}
					}
				}
				for u := range set {
					want[q] = append(want[q], u)
				}
				sort.Ints(want[q])
			}
			got := neighborSets(a, nt)
			for q := 0; q < nt; q++ {
				if len(got[q]) != len(want[q]) {
					t.Fatalf("%s nt=%d worker %d: %v, want %v", mc.name, nt, q, got[q], want[q])
				}
				for i := range want[q] {
					if got[q][i] != want[q][i] {
						t.Fatalf("%s nt=%d worker %d: %v, want %v", mc.name, nt, q, got[q], want[q])
					}
				}
			}
		}
	}
}

// rowOwner is the closed-form inverse of partition.ContiguousRange:
// every row must land inside the range of the block it names.
func TestRowOwnerMatchesPartition(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 100, 1023} {
		for p := 1; p <= 16 && p <= n; p++ {
			for j := 0; j < n; j++ {
				q := rowOwner(n, p, j)
				if q < 0 || q >= p {
					t.Fatalf("rowOwner(%d,%d,%d) = %d out of range", n, p, j, q)
				}
				lo, hi := partition.ContiguousRange(n, p, q)
				if j < lo || j >= hi {
					t.Fatalf("rowOwner(%d,%d,%d) = %d but block is [%d,%d)", n, p, j, q, lo, hi)
				}
			}
		}
	}
}

// Regression for the triple-rescan bug: the convergence decision, the
// recorded history, and the metrics gauge must all read the same
// residual snapshot. With one worker the run is deterministic, so the
// stop condition must fire exactly at the first history point at or
// below tolerance — if the check and the history read different scans
// of the residual, the last point disagrees with the decision.
func TestResidualSnapshotConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	const tol = 1e-6
	reg := obs.NewRegistry()
	m := obs.NewSolverMetrics(reg)
	res := Solve(a, b, x0, Options{
		Threads: 1, MaxIters: 5000, Tol: tol, Async: true,
		RecordHistory: true, Metrics: m,
	})
	if !res.Converged || res.RelRes > tol {
		t.Fatalf("did not converge: relres=%g converged=%v", res.RelRes, res.Converged)
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	last := res.History[len(res.History)-1]
	if last.RelRes > tol {
		t.Fatalf("stopped while last history point %g > tol %g: check and history disagree",
			last.RelRes, tol)
	}
	for i, h := range res.History[:len(res.History)-1] {
		if h.RelRes <= tol {
			t.Fatalf("history point %d (iter %d) already at %g <= tol but solver kept going: "+
				"check read a different residual than the history", i, h.Iteration, h.RelRes)
		}
	}
	if last.Iteration != res.Iterations[0] {
		t.Fatalf("last history iteration %d != worker iterations %d", last.Iteration, res.Iterations[0])
	}
	// The gauge holds the exact post-run residual, same value the
	// result reports.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	found := false
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "aj_residual ") || strings.HasPrefix(line, "aj_residual{") {
			fs := strings.Fields(line)
			v, err := strconv.ParseFloat(fs[len(fs)-1], 64)
			if err != nil {
				t.Fatalf("parse gauge %q: %v", line, err)
			}
			if v != res.RelRes {
				t.Fatalf("gauge %g != result relres %g", v, res.RelRes)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("aj_residual gauge not exported")
	}
}

// The multicolor branch is instrumented like every other relaxation
// loop: a traced multicolor run must produce a non-empty, verifiable
// history (not a silently empty one that passes vacuously), and the
// replay must satisfy Theorem 1's norm bounds on the W.D.D. stencil.
func TestMulticolorTracedVerifyNorms(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	rec := trace.NewRecorder(4, 1<<16)
	Solve(a, b, x0, Options{
		Threads: 4, MaxIters: 40, Multicolor: true, Tracer: rec,
	})
	for w := 0; w < 4; w++ {
		if d := rec.Worker(w).Dropped(); d != 0 {
			t.Fatalf("worker %d ring dropped %d events", w, d)
		}
	}
	tr, err := trace.ToModelTraceMatrix(rec, a)
	if err != nil {
		t.Fatalf("ToModelTrace: %v", err)
	}
	rep, err := trace.VerifyNorms(a, tr, 1e-9, 200)
	if err != nil {
		t.Fatalf("VerifyNorms: %v", err)
	}
	if rep.MasksChecked == 0 {
		t.Fatal("traced multicolor run produced no step masks — instrumentation fell off the branch")
	}
	if rep.Violations != 0 {
		t.Fatalf("Theorem 1 violated on multicolor trace: %d of %d masks (G=%g H=%g)",
			rep.Violations, rep.MasksChecked, rep.MaxGNormInf, rep.MaxHNorm1)
	}
}

// The fused traced kernel (tracedResidual/tracedPublish + sweep-mode
// version counters) must record a history that still verifies against
// the propagation model with zero violations — the fast path is only
// an encoding change, never a semantics change.
func TestTracedFusedKernelVerifyNorms(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	rec := trace.NewRecorder(4, 1<<17)
	Solve(a, b, x0, Options{
		Threads: 4, MaxIters: 60, Async: true, Tracer: rec,
	})
	for w := 0; w < 4; w++ {
		if d := rec.Worker(w).Dropped(); d != 0 {
			t.Fatalf("worker %d ring dropped %d events", w, d)
		}
	}
	tr, err := trace.ToModelTraceMatrix(rec, a)
	if err != nil {
		t.Fatalf("ToModelTrace: %v", err)
	}
	rep, err := trace.VerifyNorms(a, tr, 1e-9, 200)
	if err != nil {
		t.Fatalf("VerifyNorms: %v", err)
	}
	if rep.MasksChecked == 0 {
		t.Fatal("fused traced run produced no step masks")
	}
	if rep.Violations != 0 {
		t.Fatalf("Theorem 1 violated on fused trace: %d of %d masks (G=%g H=%g)",
			rep.Violations, rep.MasksChecked, rep.MaxGNormInf, rep.MaxHNorm1)
	}
}

// Same check with supervision on: the checkpoint/adoption machinery
// forces the per-row shared version counters (sweep mode is refused),
// so this pins the fused kernel's other attribution mode.
func TestTracedSupervisedVerifyNorms(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	rec := trace.NewRecorder(4, 1<<17)
	Solve(a, b, x0, Options{
		Threads: 4, MaxIters: 60, Async: true, Tracer: rec,
		Supervise: true, StallThreshold: time.Second,
	})
	tr, err := trace.ToModelTraceMatrix(rec, a)
	if err != nil {
		t.Fatalf("ToModelTrace: %v", err)
	}
	rep, err := trace.VerifyNorms(a, tr, 1e-9, 200)
	if err != nil {
		t.Fatalf("VerifyNorms: %v", err)
	}
	if rep.MasksChecked == 0 {
		t.Fatal("supervised traced run produced no step masks")
	}
	if rep.Violations != 0 {
		t.Fatalf("Theorem 1 violated on supervised trace: %d of %d masks (G=%g H=%g)",
			rep.Violations, rep.MasksChecked, rep.MaxGNormInf, rep.MaxHNorm1)
	}
}

// Race-detector workout for the sharded residual, the owned-row
// mirrors, and the adoption path together: a crash without restart
// makes the supervisor zero the dead shard and hand its rows to
// survivors, whose relaxAdopted shares flow into the same ShardedNorm
// the convergence check reads. Run under -race this is the proof the
// mirror's single-writer invariant survives reassignment; functionally
// the solve must still converge because the adopted rows keep moving.
func TestShardedResidualAdoptionUnderRace(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	const tol = 1e-6
	m := obs.NewSolverMetrics(obs.NewRegistry())
	done := make(chan *Result, 1)
	go func() {
		done <- Solve(a, b, x0, Options{
			Threads: 4, MaxIters: 20000, Tol: tol, Async: true, DelayThread: -1,
			Supervise: true, StallThreshold: 20 * time.Millisecond,
			Metrics: m,
			Fault: &fault.Plan{
				Seed: 13, StallRank: -1,
				CrashRanks: []int{2}, CrashIter: 8,
			},
		})
	}()
	var res *Result
	select {
	case res = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("supervised crash solve hung")
	}
	if !res.Converged || res.RelRes > tol {
		t.Fatalf("adoption did not restore convergence: relres=%g converged=%v (reassigns=%d)",
			res.RelRes, res.Converged, m.RecoveryReassignCount())
	}
	if m.RecoveryWorkerDeadCount() == 0 {
		t.Fatal("supervisor never declared the crashed worker dead — shares.Zero path untested")
	}
	if m.RecoveryReassignCount() == 0 {
		t.Fatal("no reassignment happened — relaxAdopted path untested")
	}
}

// Fail-stop crashes are detected by the worker goroutine's exit, not
// by waiting out the heartbeat threshold. With a threshold far larger
// than the whole run, adoption can only happen through exit
// detection — the solve must still converge within the sweep budget.
// (This matters because the threshold is wall-clock while the budget
// is sweeps: the faster the kernel, the more budget a threshold wait
// would burn.)
func TestSupervisorDetectsFailStopByExit(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	a := matgen.FD2D(8, 8)
	b := randomVec(rng, a.N)
	x0 := randomVec(rng, a.N)
	const tol = 1e-6
	m := obs.NewSolverMetrics(obs.NewRegistry())
	res := Solve(a, b, x0, Options{
		Threads: 4, MaxIters: 20000, Tol: tol, Async: true, DelayThread: -1,
		Supervise: true, StallThreshold: time.Hour,
		Metrics: m,
		Fault: &fault.Plan{
			Seed: 17, StallRank: -1,
			CrashRanks: []int{1}, CrashIter: 8,
		},
	})
	if m.RecoveryWorkerDeadCount() == 0 {
		t.Fatal("exited worker never declared dead despite the 1h stall threshold")
	}
	if !res.Converged || res.RelRes > tol {
		t.Fatalf("exit-detected adoption did not restore convergence: relres=%g converged=%v",
			res.RelRes, res.Converged)
	}
}
