package shm

import "sync"

// Barrier is a reusable cyclic barrier for a fixed party count,
// equivalent to an OpenMP barrier. Wait blocks until all parties have
// arrived, then releases the generation together.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
}

// NewBarrier creates a barrier for n parties (n >= 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("shm: barrier needs at least one party")
	}
	b := &Barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties arrive.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
