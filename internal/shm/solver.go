package shm

import (
	"context"
	"math"
	"math/rand/v2"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/proflabel"
	"repro/internal/resilience"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/vec"
)

// shmLabels caches the pprof label contexts the workers run under.
// Building the label sets used to happen per solve per worker and
// dominated the untraced solve's allocation profile (~110 of 142
// allocs/op); the cache amortizes them across every solve in the
// process.
var shmLabels = proflabel.NewCache("shm")

// Options configure a shared-memory solve.
type Options struct {
	// Threads is the number of goroutine workers; rows are split into
	// contiguous blocks as in the paper's OpenMP code.
	Threads int
	// MaxIters bounds each worker's local iteration count: a worker
	// raises its termination flag after MaxIters local iterations even
	// if the tolerance was not met.
	MaxIters int
	// Tol is the relative residual 1-norm tolerance; 0 disables the
	// tolerance test so every worker runs exactly MaxIters iterations.
	Tol float64
	// Async selects the asynchronous solver; false inserts barriers
	// (synchronous Jacobi).
	Async bool
	// DelayThread, when >= 0, identifies a worker that sleeps Delay
	// before each of its iterations — the Fig 3/4 slow-thread
	// experiment. Under the synchronous solver the barrier makes every
	// other worker wait too.
	DelayThread int
	Delay       time.Duration
	// RecordTrace captures the read-version history needed by the
	// propagated-relaxation analysis (Fig 2). Adds overhead.
	RecordTrace bool
	// RecordHistory samples (elapsed wall-clock, relative residual)
	// once per local iteration of worker 0.
	RecordHistory bool
	// NoYield suppresses the runtime.Gosched each asynchronous worker
	// performs after a local iteration. The default (yielding) is what
	// makes execution genuinely interleave on hosts with fewer cores
	// than workers, approximating a parallel machine; disable it only
	// to study free-running scheduling.
	NoYield bool
	// Multicolor switches the synchronous solver to multicolor
	// Gauss-Seidel (Section IV-B): a greedy coloring partitions the
	// rows into independent sets; each iteration relaxes the sets in
	// sequence with a barrier between them, workers handling their own
	// rows of each set in parallel. Multiplicative like Gauss-Seidel,
	// parallel like Jacobi — it converges on SPD systems where
	// synchronous Jacobi diverges, at any worker count. Ignored when
	// Async is set.
	Multicolor bool
	// Omega, when nonzero, under/over-relaxes every correction:
	// x_i <- x_i + Omega * r_i (asynchronous weighted Jacobi). Values
	// in (0, 1) damp the high-frequency error modes that make plain
	// Jacobi diverge when rho(G) > 1; 1 (or 0) is the paper's scheme.
	Omega float64
	// InnerGS makes each worker relax its block with a forward
	// Gauss-Seidel pass instead of a Jacobi pass: rows within the block
	// immediately see earlier in-block updates. This is the
	// asynchronous inexact block Jacobi of Jager and Bradley ("blocks
	// are solved using a single iteration of Gauss-Seidel", Section III
	// of the paper). Only meaningful with more than one row per worker.
	InnerGS bool
	// YieldProb, when positive, additionally yields the processor with
	// this probability after each row relaxation inside an asynchronous
	// iteration. On an oversubscribed host this injects the
	// mid-iteration interleaving a truly parallel machine exhibits —
	// without it, a cooperative scheduler executes every local
	// iteration atomically and traces are trivially 100% propagated.
	YieldProb float64
	// Fault, when non-nil and enabled, injects adversity into the
	// asynchronous solver: heavy-tailed per-worker iteration delays, a
	// one-shot stall, and worker crashes with optional restart from the
	// current shared iterate. Shared memory has no messages, so the
	// plan's drop/dup/reorder probabilities are ignored here (they
	// apply to the dist substrate). A crashing worker raises its
	// termination flag before exiting, so the shared flag array
	// degrades to the surviving workers instead of spinning to the
	// hard-stop bound; its rows simply freeze — exactly the
	// infinitely-delayed process of the paper's Theorem 1 discussion.
	// Ignored by the synchronous solver, whose barriers a crashed
	// worker would deadlock.
	Fault *fault.Plan
	// Metrics, when non-nil, streams live observability data: per-worker
	// relaxation counts and sweep latencies, a live residual gauge
	// (worker 0 samples the shared residual once per local iteration),
	// a staleness histogram of missed neighbor updates, and yield/delay
	// counters. A nil handle disables everything at the cost of a
	// per-iteration nil check.
	Metrics *obs.SolverMetrics
	// Tracer, when non-nil, records timestamped execution events into
	// per-worker ring buffers: relaxation start/end, neighbor reads
	// with versions, solution writes, yields, injected delays, and
	// termination-flag transitions. Unlike RecordTrace (unbounded,
	// versions only) the tracer is bounded and timestamped; the trace
	// package bridges its output back to a model.Trace. A nil handle
	// costs one pointer test per recording site.
	Tracer *trace.Recorder
	// Ctx, when non-nil, lets the caller cancel the solve; workers poll
	// it once per local iteration and stop cooperatively through the
	// shared flag array (raising a flag early is always legal — flags
	// raised at different iterations are what the array tolerates by
	// design), so cancellation never deadlocks the synchronous barriers
	// either.
	Ctx context.Context
	// MaxTime, when positive, bounds the solve's wall-clock time; a run
	// past the budget stops like a cancellation with StopReason
	// deadline.
	MaxTime time.Duration
	// Checkpoint, when non-nil with a Path, snapshots the solve state
	// (iterate, per-row relaxation counts, worker iteration counts and
	// flags, fault RNG streams) to the path on the spec's interval and
	// once more at exit, each write atomic (temp file + rename). The
	// snapshot races the workers by design: any partially updated
	// iterate is a legal restart point under Theorem 1, so no barrier
	// is needed.
	Checkpoint *resilience.Spec
	// Resume, when non-nil, continues a checkpointed solve: the caller
	// passes the checkpoint's X as x0, while Resume seeds the per-row
	// version counters (keeping a resumed trace's numbering contiguous
	// with the first run's), restores the fault injectors' RNG streams
	// and crash latches, and offsets Elapsed. MaxIters is this run's
	// fresh budget.
	Resume *resilience.Checkpoint
	// Supervise enables the shm failure detector (asynchronous solver
	// only): a supervisor goroutine watches the per-worker progress
	// counters as heartbeats, declares a worker dead after
	// StallThreshold without progress, raises the dead worker's
	// termination flag on its behalf, and reassigns its rows to the
	// survivors in finer blocks (§IV-D: smaller active blocks improve
	// the asynchronous rate, so redistribution is the theory-preferred
	// recovery). A false positive — a stalled worker declared dead that
	// later resumes — only means two workers relax the same rows for a
	// while, which Theorem 1 tolerates like any other schedule.
	Supervise bool
	// StallThreshold is how long a worker's progress counter may stand
	// still before the supervisor declares it dead
	// (DefaultStallThreshold when <= 0).
	StallThreshold time.Duration
}

// DefaultStallThreshold is the supervisor's heartbeat-stall cutoff when
// Options leave it unset: long enough that scheduler hiccups and
// injected Pareto delays (capped at 50x mean by default) do not trip
// it, short enough that tests and real runs recover quickly.
const DefaultStallThreshold = 250 * time.Millisecond

// HistoryPoint is one convergence sample of a running solve.
type HistoryPoint struct {
	Elapsed time.Duration
	RelRes  float64
	// Iteration is worker 0's local iteration at the sample.
	Iteration int
}

// Result reports a finished shared-memory solve.
type Result struct {
	X []float64
	// Iterations[t] is worker t's local iteration count.
	Iterations []int
	// TotalRelaxations counts every row relaxation performed.
	TotalRelaxations int
	// RelRes is the true relative residual 1-norm of X, recomputed
	// sequentially after the run.
	RelRes float64
	// Converged reports whether the tolerance was met (always false
	// when Tol is 0).
	Converged bool
	WallTime  time.Duration
	// StopReason states why the solve returned: converged, deadline,
	// canceled, max-iter, or crashed.
	StopReason resilience.StopReason
	// Elapsed is the wall-clock time of this run plus, on a resumed
	// solve, the checkpointed time of the run(s) before it.
	Elapsed time.Duration
	// DeadWorkers counts workers the supervisor declared dead.
	DeadWorkers int
	// CheckpointErr reports a failure of the final at-exit checkpoint
	// write (interval-write failures only bump the
	// aj_recovery_events_total{event="checkpoint_error"} counter).
	CheckpointErr error
	History       []HistoryPoint
	Trace         *model.Trace
}

// Solve runs synchronous or asynchronous Jacobi with goroutine workers
// on a unit-diagonal system. Scheduling makes asynchronous runs
// nondeterministic, as any racy shared-memory solver is; the returned
// RelRes is always computed exactly from the final X.
func Solve(a *sparse.CSR, b []float64, x0 []float64, opt Options) *Result {
	n := a.N
	if len(b) != n || len(x0) != n {
		panic("shm: dimension mismatch")
	}
	if opt.Threads <= 0 {
		panic("shm: Threads must be positive")
	}
	if opt.MaxIters <= 0 {
		panic("shm: MaxIters must be positive")
	}
	if err := opt.Fault.Validate(opt.Threads); err != nil {
		panic("shm: " + err.Error())
	}
	injs := opt.Fault.Injectors(opt.Threads)
	if opt.Resume != nil {
		if err := opt.Resume.ValidateFor(n); err != nil {
			panic("shm: " + err.Error())
		}
		// Restore the fault RNG streams and crash latches so the resumed
		// run faces the remainder of the planned adversity, not a replay
		// of it from the start.
		if err := fault.RestoreStates(injs, opt.Resume.FaultStates); err != nil {
			panic("shm: " + err.Error())
		}
		opt.Metrics.RecoveryCheckpointLoad()
		opt.Metrics.RecoveryResume()
	}
	stopper := resilience.NewStopper(opt.Ctx, opt.MaxTime)
	writer := resilience.NewWriter(opt.Checkpoint, opt.Metrics)
	var elapsed0 time.Duration
	sweeps0 := 0
	if opt.Resume != nil {
		elapsed0 = opt.Resume.Elapsed
		sweeps0 = opt.Resume.Sweeps
	}
	t0 := time.Now()
	omega := opt.Omega
	if omega == 0 {
		omega = 1
	}

	x := NewAtomicVector(n)
	x.SetAll(x0)
	nb := vec.Norm1(b)
	if nb == 0 {
		nb = 1
	}

	nt := opt.Threads
	// shares replaces the shared residual array: each worker publishes
	// its block's |r|_1 once per local iteration, so the convergence
	// check (and worker 0's gauge and history point) reads nt shards
	// instead of rescanning all n residual atomics.
	shares := NewShardedNorm(nt)
	flags := make([]atomic.Bool, nt)
	var barrier *Barrier
	if !opt.Async {
		barrier = NewBarrier(nt)
	}
	sync0 := func() {
		if barrier != nil {
			barrier.Wait()
		}
	}

	// Multicolor preparation: per-worker row lists for each color.
	var colorRows [][]int // colorRows[c] = rows of color c (global)
	if opt.Multicolor && !opt.Async {
		colorRows = model.MulticolorMasks(a)
	}

	// Versions back the trace recording: version[i] counts completed
	// relaxations of row i, incremented after the value write, so a
	// read attributing version v saw the value of relaxation >= v.
	// The timestamped tracer needs them too — its read events carry
	// the same s_ij(k) version samples.
	var version []atomic.Int64
	traces := make([][]model.Event, nt)
	var seq atomic.Int64
	if opt.RecordTrace || opt.Tracer != nil || writer != nil || opt.Resume != nil {
		version = make([]atomic.Int64, n)
		if opt.Resume != nil && opt.Resume.RelaxCounts != nil {
			// Continue the relaxation numbering where the checkpoint left
			// off: a resumed run's trace then merges with the first run's
			// (trace.MergeModelTraces) into one verifiable history.
			for i := range version {
				version[i].Store(opt.Resume.RelaxCounts[i])
			}
		}
	}

	// Observability: each worker publishes its local iteration count;
	// neighbors sample it once per iteration to measure how many of the
	// publisher's updates they skipped (the live Fig 2 statistic). All
	// of this is allocated and touched only when metrics are enabled.
	opt.Metrics.SetWorkers(nt)
	supervising := opt.Supervise && opt.Async && nt > 1
	// Sweep-mode versions (see versionMirror): when nothing needs the
	// per-row counters live — no checkpoint snapshots of RelaxCounts, no
	// supervisor whose adopters advance rows out of lockstep — one
	// per-worker completed-sweep counter replaces n per-row atomic
	// stores per sweep. verOwner is the closed-form partition inverse,
	// tabulated so a remote version lookup costs loads, not a division.
	var verBase []int64
	var verSweeps []sweepSlot
	var verOwner []int32
	if version != nil && !supervising && writer == nil {
		verBase = make([]int64, n)
		if opt.Resume != nil && opt.Resume.RelaxCounts != nil {
			copy(verBase, opt.Resume.RelaxCounts)
		}
		verSweeps = make([]sweepSlot, nt)
		verOwner = make([]int32, n)
		for j := range verOwner {
			verOwner[j] = int32(rowOwner(n, nt, j))
		}
	}
	var progress []atomic.Int64
	var nbrSets [][]int
	if opt.Metrics != nil || supervising || writer != nil {
		// Progress counters double as supervisor heartbeats and as the
		// checkpoint's per-worker iteration counts.
		progress = make([]atomic.Int64, nt)
	}
	if opt.Metrics != nil {
		// Who reads from whom, for the staleness sampler: one O(nnz)
		// pass with the closed-form owner lookup, instead of each
		// worker binary-searching the partition per nonzero.
		nbrSets = neighborSets(a, nt)
	}

	// Supervisor state: per-worker death latches and copy-on-write
	// adoption lists the survivors poll at each iteration top.
	var superDead []atomic.Bool
	var reassign []atomic.Pointer[adoption]
	var exited []atomic.Bool
	if supervising {
		superDead = make([]atomic.Bool, nt)
		reassign = make([]atomic.Pointer[adoption], nt)
		// A fail-stop exit (crash without restart) is visible the
		// moment the goroutine returns; only genuine stalls need the
		// wall-clock heartbeat threshold. Detecting exits directly
		// matters because the threshold is a fixed wall-time cost
		// while the iteration budget is sweep-denominated: the faster
		// the kernel gets, the more of the budget a threshold wait
		// burns before adoption can start.
		exited = make([]atomic.Bool, nt)
	}
	extras := make([]int64, nt) // adopted-row relaxations per worker

	var hist []HistoryPoint
	iters := make([]int, nt)
	var wg sync.WaitGroup
	wg.Add(nt)
	for t := 0; t < nt; t++ {
		go func(t int) {
			defer wg.Done()
			if exited != nil {
				defer exited[t].Store(true)
			}
			// pprof labels: CPU samples on this goroutine carry
			// solver/worker/phase, so a -profile-out capture splits
			// relax vs wait vs publish time per worker. Labels swap at
			// iteration-section granularity, never per relaxation, and
			// the contexts come from a process-wide cache rather than
			// being rebuilt per solve.
			lbl := shmLabels.For(t)
			pprof.SetGoroutineLabels(lbl.Relax)
			defer pprof.SetGoroutineLabels(context.Background())
			lo, hi := partition.ContiguousRange(n, nt, t)
			k := newBlockKernel(a, b, x, x0, lo, hi, omega)
			iter := 0
			extraRel := int64(0)
			defer func() { iters[t] = iter; extras[t] = extraRel }()
			done := false
			var myAdopt *adoption
			var yrng *rand.Rand
			if opt.Async && opt.YieldProb > 0 {
				yrng = rand.New(rand.NewPCG(uint64(t)+1, 0x51e1d))
			}
			wm := opt.Metrics.Worker(t)
			tw := opt.Tracer.Worker(t)
			var inj *fault.Injector
			if injs != nil {
				inj = injs[t]
			}
			faultsOn := opt.Async && inj != nil
			// plain selects the uninstrumented kernels: no versions to
			// bump, no trace events, no per-row yields. Metrics-on runs
			// still qualify — their sampling sits outside the row loops.
			plain := version == nil && tw == nil && yrng == nil
			// vm mirrors version[lo:hi) the way k.mine mirrors x[lo:hi)
			// — see versionMirror.
			var vm *versionMirror
			if verSweeps != nil {
				vm = newSweepMirror(verBase, verSweeps, verOwner, lo, hi, t)
			} else if version != nil {
				vm = newVersionMirror(version, lo, hi)
			}
			// fastTraced selects the fused traced kernels for the hot
			// tracing configuration (unsampled coalescing ring, no
			// unbounded RecordTrace log, no per-row yields): the
			// relaxation loop gathers read versions itself and stages
			// one complete block per row via AppendReads, instead of
			// walking the per-read accumulator API.
			fastTraced := tw.FastBlocks() && vm != nil && !opt.RecordTrace && yrng == nil
			// Neighbor workers whose rows this worker reads, for
			// staleness sampling.
			var neighbors []int
			var lastSeen []int64
			if wm != nil {
				neighbors = nbrSets[t]
				lastSeen = make([]int64, len(neighbors))
			}
			// microYield is only ever invoked behind a yrng != nil guard
			// at the call sites: the closure call is indirect (never
			// inlined), and paying it per row relaxation just to test nil
			// inside was measurable tracing overhead.
			microYield := func() {
				if yrng.Float64() < opt.YieldProb {
					wm.IncYield()
					tw.Yield()
					runtime.Gosched()
				}
			}
			// relaxAdopted runs one immediate-write pass over the rows
			// this worker adopted from supervisor-declared-dead workers
			// and returns the pass's |r|_1, so the adopter's published
			// share covers the adopted rows (the dead owner's shard is
			// zeroed at reassignment — see ShardedNorm.Zero). Counts
			// derive from the shared version array so the trace
			// numbering continues where the dead owner stopped.
			relaxAdopted := func() float64 {
				if myAdopt == nil {
					return 0
				}
				var sum float64
				nrel := 0
				for _, rg := range myAdopt.ranges {
					for i := rg.lo; i < rg.hi; i++ {
						cnt := iter + 1
						if version != nil {
							cnt = int(version[i].Load()) + 1
						}
						var ev *model.Event
						if opt.RecordTrace {
							ev = &model.Event{Row: i, Count: cnt, Seq: int(seq.Add(1))}
						}
						// Trace via the inlinable Try fast paths; the full
						// helpers are the slow-path fallback (and the nil
						// tracer short-circuits inside Try).
						if !tw.TryRelaxStart(i, cnt) {
							tw.RelaxStart(i, cnt)
						}
						s := b[i]
						for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
							j := a.Col[p]
							if version != nil && j != i {
								v := vm.read(j)
								if ev != nil {
									ev.Reads = append(ev.Reads, model.Read{Row: j, Version: v})
								}
								if !tw.TryReadVersion(j, v) {
									tw.ReadVersion(i, cnt, j, v)
								}
							}
							s -= a.Val[p] * k.load(j)
						}
						// Adopted rows live outside this worker's mirror;
						// they go through the shared vector like any
						// remote row.
						x.Store(i, x.Load(i)+omega*s)
						if version != nil {
							version[i].Add(1)
						}
						tw.Write(i, cnt)
						if !tw.TryRelaxEnd() {
							tw.RelaxEnd(i, cnt)
						}
						if ev != nil {
							traces[t] = append(traces[t], *ev)
						}
						sum += math.Abs(s)
						nrel++
						if yrng != nil {
							microYield()
						}
					}
				}
				extraRel += int64(nrel)
				wm.AddRelaxations(nrel)
				return sum
			}
			// step1/step2 are the instrumented two-phase Jacobi bodies
			// over rows [tlo, thi): step1 computes residuals into k.local
			// (recording read versions) and returns the range's |r|_1;
			// step2 publishes the corrections and bumps the versions. The
			// asynchronous solver calls them tile-fused, the synchronous
			// one across the whole block around its barrier. Closure
			// calls are per-tile, not per-row, so the indirect-call cost
			// is amortized away; plain mode never builds them.
			var step1 func(tlo, thi, iter int) float64
			var step2 func(tlo, thi, iter int)
			if !plain {
				step1 = func(tlo, thi, iter int) float64 {
					var share float64
					for i := tlo; i < thi; i++ {
						s := b[i]
						cnt := iter + 1
						if vm != nil {
							cnt = vm.next(i)
						}
						var ev *model.Event
						if opt.RecordTrace {
							ev = &model.Event{Row: i, Count: cnt, Seq: int(seq.Add(1))}
						}
						if !tw.TryRelaxStart(i, cnt) {
							tw.RelaxStart(i, cnt)
						}
						for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
							j := a.Col[p]
							if version != nil && j != i {
								v := vm.read(j)
								if ev != nil {
									ev.Reads = append(ev.Reads, model.Read{Row: j, Version: v})
								}
								if !tw.TryReadVersion(j, v) {
									tw.ReadVersion(i, cnt, j, v)
								}
							}
							s -= a.Val[p] * k.load(j)
						}
						k.local[i-lo] = s
						share += math.Abs(s)
						if !tw.TryRelaxEnd() {
							tw.RelaxEnd(i, cnt)
						}
						if ev != nil {
							traces[t] = append(traces[t], *ev)
						}
						if yrng != nil {
							microYield()
						}
					}
					return share
				}
				step2 = func(tlo, thi, iter int) {
					for i := tlo; i < thi; i++ {
						cnt := iter + 1
						if vm != nil {
							cnt = vm.next(i)
						}
						v := k.mine[i-lo] + omega*k.local[i-lo]
						k.mine[i-lo] = v
						x.Store(i, v)
						if vm != nil {
							vm.bump(i)
						}
						tw.Write(i, cnt)
						if yrng != nil {
							microYield()
						}
					}
				}
			}
			// Multicolor: this worker's slice of each color class.
			var myColor [][]int
			if colorRows != nil {
				myColor = make([][]int, len(colorRows))
				for c, rows := range colorRows {
					for _, i := range rows {
						if i >= lo && i < hi {
							myColor[c] = append(myColor[c], i)
						}
					}
				}
			}
			for {
				pprof.SetGoroutineLabels(lbl.Relax)
				// Adoption check: a new copy-on-write list means the
				// supervisor reassigned a dead worker's rows here.
				if reassign != nil {
					if p := reassign[t].Load(); p != myAdopt {
						myAdopt = p
						if p != nil {
							tw.Reassign(p.from, iter)
						}
					}
				}
				var sweepStart time.Time
				if wm != nil {
					sweepStart = time.Now()
				}
				if faultsOn {
					if inj.CrashNow(iter) {
						opt.Metrics.FaultCrash()
						tw.Crash(iter)
						after, restart := inj.Restart()
						if !restart {
							// Fail-stop: raise the flag so the others'
							// all-up test skips this worker; its rows
							// freeze at the current iterate.
							flags[t].Store(true)
							tw.FlagRaise(iter)
							return
						}
						time.Sleep(after)
						opt.Metrics.FaultRestart()
						tw.Restart(iter)
					}
					if d := inj.StallFor(iter); d > 0 {
						opt.Metrics.FaultStall()
						tw.Stall(iter)
						time.Sleep(d)
					}
					if d := inj.IterDelay(); d > 0 {
						opt.Metrics.FaultDelay()
						tw.Delay(iter + 1)
						time.Sleep(d)
					}
				}
				if opt.DelayThread == t && opt.Delay > 0 {
					wm.IncDelay()
					tw.Delay(iter + 1)
					time.Sleep(opt.Delay)
				}
				var myShare float64
				if myColor != nil {
					// Multicolor Gauss-Seidel iteration: colors in
					// sequence, barrier between them; within a color,
					// rows are independent so parallel relaxation is
					// exact. Instrumented like every other branch, so a
					// traced multicolor run yields a verifiable history
					// instead of a silently empty, vacuously-passing one.
					for _, rows := range myColor {
						for _, i := range rows {
							cnt := iter + 1
							if vm != nil {
								cnt = vm.next(i)
							}
							var ev *model.Event
							if opt.RecordTrace {
								ev = &model.Event{Row: i, Count: cnt, Seq: int(seq.Add(1))}
							}
							if !tw.TryRelaxStart(i, cnt) {
								tw.RelaxStart(i, cnt)
							}
							s := b[i]
							for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
								j := a.Col[p]
								if version != nil && j != i {
									v := vm.read(j)
									if ev != nil {
										ev.Reads = append(ev.Reads, model.Read{Row: j, Version: v})
									}
									if !tw.TryReadVersion(j, v) {
										tw.ReadVersion(i, cnt, j, v)
									}
								}
								s -= a.Val[p] * k.load(j)
							}
							k.store(i, s)
							if vm != nil {
								vm.bump(i)
							}
							tw.Write(i, cnt)
							if !tw.TryRelaxEnd() {
								tw.RelaxEnd(i, cnt)
							}
							if ev != nil {
								traces[t] = append(traces[t], *ev)
							}
							myShare += math.Abs(s)
						}
						sync0() // color barrier
					}
					iter++
					sync0()
				} else if opt.InnerGS && opt.Async {
					// Fused Gauss-Seidel block pass: each row's
					// correction is written before the next row's
					// residual is computed, so in-block couplings see
					// fresh values (multiplicative within the block).
					if plain {
						myShare = k.relaxGS()
					} else {
						for i := lo; i < hi; i++ {
							s := b[i]
							// Counts derive from the version mirror when it
							// exists so a resumed run keeps numbering where
							// the checkpoint left off (identical to iter+1 on
							// a fresh run).
							cnt := iter + 1
							if vm != nil {
								cnt = vm.next(i)
							}
							var ev *model.Event
							if opt.RecordTrace {
								ev = &model.Event{Row: i, Count: cnt, Seq: int(seq.Add(1))}
							}
							if !tw.TryRelaxStart(i, cnt) {
								tw.RelaxStart(i, cnt)
							}
							for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
								j := a.Col[p]
								if version != nil && j != i {
									v := vm.read(j)
									if ev != nil {
										ev.Reads = append(ev.Reads, model.Read{Row: j, Version: v})
									}
									if !tw.TryReadVersion(j, v) {
										tw.ReadVersion(i, cnt, j, v)
									}
								}
								s -= a.Val[p] * k.load(j)
							}
							k.store(i, s)
							if vm != nil {
								vm.bump(i)
							}
							tw.Write(i, cnt)
							if !tw.TryRelaxEnd() {
								tw.RelaxEnd(i, cnt)
							}
							if ev != nil {
								traces[t] = append(traces[t], *ev)
							}
							myShare += math.Abs(s)
							if yrng != nil {
								microYield()
							}
						}
					}
					iter++
					myShare += relaxAdopted()
				} else if plain {
					// Two-phase Jacobi sweep, uninstrumented kernels.
					// Asynchronously there is no barrier between the
					// phases, so the tile-fused kernel (residual +
					// publish per tile, cache-hot) just realizes another
					// legal schedule; the synchronous path keeps the
					// strict phases around the barrier.
					if opt.Async {
						myShare = k.relaxTiled()
						sync0() // no-op: the asynchronous solver has no barrier
					} else {
						// Step 1: local residual, reading shared x.
						myShare = k.residual(lo, hi)
						sync0() // paper: barrier after step 1
						pprof.SetGoroutineLabels(lbl.Publish)
						// Step 2: correct the solution (unit diagonal).
						k.publish(lo, hi)
					}
					iter++
					myShare += relaxAdopted()
				} else {
					// Instrumented two-phase sweep. Asynchronously the two
					// steps run tile-fused exactly like relaxTiled — rows
					// in a later tile may read an earlier tile's fresh
					// values, another admissible schedule, and the version
					// attributed to such a read is the bumped one, so the
					// "saw relaxation >= v" contract holds either way. The
					// synchronous path keeps the paper's barrier between
					// full phases.
					if opt.Async {
						for tlo := lo; tlo < hi; tlo += kernelTile {
							thi := tlo + kernelTile
							if thi > hi {
								thi = hi
							}
							if fastTraced {
								myShare += k.tracedResidual(tlo, thi, vm, tw, tw.TileStamp())
								k.tracedPublish(tlo, thi, vm)
							} else {
								myShare += step1(tlo, thi, iter)
								step2(tlo, thi, iter)
							}
						}
					} else {
						// Step 1: local residual, reading shared x.
						if fastTraced {
							myShare = k.tracedResidual(lo, hi, vm, tw, tw.TileStamp())
						} else {
							myShare = step1(lo, hi, iter)
						}
						sync0() // paper: barrier after step 1
						pprof.SetGoroutineLabels(lbl.Publish)
						// Step 2: correct the solution (unit diagonal) and
						// bump the versions.
						if fastTraced {
							k.tracedPublish(lo, hi, vm)
						} else {
							step2(lo, hi, iter)
						}
					}
					iter++
					myShare += relaxAdopted()
				}
				if vm != nil {
					// Sweep-mode version publish: one store covers every
					// row the sweep just relaxed.
					vm.endSweep(iter)
				}
				shares.Publish(t, myShare)
				if progress != nil {
					// Heartbeat for the supervisor, iteration count for the
					// checkpoint, staleness baseline for the metrics.
					progress[t].Store(int64(iter))
				}
				if wm != nil {
					// One batch of atomic adds per local iteration — the
					// relaxation loops themselves stay untouched.
					wm.ObserveSweep(time.Since(sweepStart))
					wm.AddRelaxations(hi - lo)
					for ni, u := range neighbors {
						cur := progress[u].Load()
						missed := cur - lastSeen[ni] - 1
						if missed < 0 {
							missed = 0
						}
						wm.ObserveStaleness(int(missed))
						lastSeen[ni] = cur
					}
					if wm.StreamSampleDue() {
						// This worker's residual-norm share (adopted rows
						// included) is already in hand — no rescan.
						wm.SetLocalResidual(myShare / nb)
					}
					wm.IncIteration()
				}
				pprof.SetGoroutineLabels(lbl.Wait)
				sync0() // make step 3's reduction consistent
				// Step 3: convergence. One possibly-stale snapshot of the
				// sharded residual norm per iteration feeds the
				// convergence test, worker 0's metrics gauge, and worker
				// 0's history point alike (the old code rescanned the
				// whole shared residual array up to three times here).
				// Under the synchronous barrier the sum is a consistent
				// reduction; asynchronously it is as stale as any other
				// read Theorem 1 already licenses.
				var rel float64
				if opt.Tol > 0 && !done || t == 0 && (wm != nil || opt.RecordHistory) {
					rel = shares.Sum() / nb
				}
				if !done {
					conv := opt.Tol > 0 && rel <= opt.Tol
					// Cancellation and the wall-clock deadline stop through
					// the same flag array as convergence: the stopper latches
					// one reason atomically, so every worker that polls it
					// agrees, and the synchronous barriers stay deadlock-free
					// because flags raised at different iterations are what
					// the array tolerates by design.
					if conv || iter >= opt.MaxIters || stopper.Check() != resilience.StopNone {
						flags[t].Store(true)
						tw.FlagRaise(iter)
						done = true
					}
				}
				if t == 0 && wm != nil {
					wm.SetResidual(rel)
				}
				if opt.RecordHistory && t == 0 {
					hist = append(hist, HistoryPoint{
						Elapsed:   time.Since(t0),
						RelRes:    rel,
						Iteration: iter,
					})
				}
				sync0() // paper: barrier after step 3; flags now stable
				// A worker terminates only when every worker's flag is
				// up (shared flag array, paper Section V). Under the
				// barrier all workers observe the same flag state, so
				// they exit together.
				all := true
				for q := range flags {
					if !flags[q].Load() {
						all = false
						break
					}
				}
				if all {
					tw.Decided(iter)
					return
				}
				// Hard stop: never iterate unboundedly past the budget
				// even if another worker's flag is slow to appear.
				if iter >= 100*opt.MaxIters {
					return
				}
				if opt.Async && !opt.NoYield {
					wm.IncYield()
					tw.Yield()
					runtime.Gosched()
				}
			}
		}(t)
	}

	// Supervisor: poll the heartbeats, declare stalled workers dead,
	// redistribute their rows in finer blocks among the survivors.
	var supStop, supDone chan struct{}
	if supervising {
		supStop = make(chan struct{})
		supDone = make(chan struct{})
		thr := opt.StallThreshold
		if thr <= 0 {
			thr = DefaultStallThreshold
		}
		// The tick is only polling granularity — declaring a stalled
		// worker dead still requires thr of heartbeat silence — but it
		// also bounds how fast a fail-stop exit is noticed, so cap it:
		// a huge threshold must not delay exit detection with it.
		tick := thr / 4
		if tick > 25*time.Millisecond {
			tick = 25 * time.Millisecond
		}
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		go func() {
			defer close(supDone)
			// owned is the supervisor's private view of who currently
			// relaxes which rows; it starts at the contiguous partition
			// and follows every reassignment, so a second death
			// redistributes the first dead worker's rows too.
			owned := make([][]rowRange, nt)
			for q := 0; q < nt; q++ {
				qlo, qhi := partition.ContiguousRange(n, nt, q)
				owned[q] = []rowRange{{qlo, qhi}}
			}
			lastVal := make([]int64, nt)
			lastChange := make([]time.Time, nt)
			start := time.Now()
			for q := range lastChange {
				lastChange[q] = start
			}
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			for {
				select {
				case <-supStop:
					return
				case <-ticker.C:
				}
				allUp := true
				for q := 0; q < nt; q++ {
					if !flags[q].Load() {
						allUp = false
						break
					}
				}
				if allUp {
					// Termination is imminent; a death now changes nothing.
					return
				}
				now := time.Now()
				for d := 0; d < nt; d++ {
					if superDead[d].Load() {
						continue
					}
					if !exited[d].Load() {
						if v := progress[d].Load(); v != lastVal[d] {
							lastVal[d] = v
							lastChange[d] = now
							continue
						}
						if now.Sub(lastChange[d]) < thr {
							continue
						}
					}
					// The worker's goroutine returned mid-run (fail-stop
					// crash; no threshold wait needed — it cannot relax
					// again) or its heartbeat stalled past the threshold:
					// the worker is dead (or so slow it might as well be —
					// Theorem 1 makes a false positive merely redundant
					// work). Raise its flag on its behalf so the flag array
					// degrades to the survivors, then hand its rows out in
					// finer blocks.
					superDead[d].Store(true)
					flags[d].Store(true)
					// The dead worker's rows are about to reappear inside
					// the adopters' shares: drop its frozen shard so their
					// residual is not double-counted forever (a pinned
					// shard could hold the sum above Tol and cost
					// liveness, not just accuracy).
					shares.Zero(d)
					opt.Metrics.RecoveryWorkerDead()
					var survivors []int
					for q := 0; q < nt; q++ {
						if q != d && !superDead[q].Load() {
							survivors = append(survivors, q)
						}
					}
					if len(survivors) == 0 {
						continue
					}
					pieces := splitRanges(owned[d], len(survivors))
					owned[d] = nil
					for si, s := range survivors {
						if len(pieces[si]) == 0 {
							continue
						}
						owned[s] = append(owned[s], pieces[si]...)
						next := &adoption{from: d}
						if cur := reassign[s].Load(); cur != nil {
							next.ranges = append(next.ranges, cur.ranges...)
						}
						next.ranges = append(next.ranges, pieces[si]...)
						reassign[s].Store(next)
						opt.Metrics.RecoveryReassign()
					}
				}
			}
		}()
	}

	// Checkpointer: snapshot the racing solve on the writer's interval.
	// The snapshot needs no barrier — any partially updated iterate is a
	// legal restart point under Theorem 1.
	snapshot := func() *resilience.Checkpoint {
		c := &resilience.Checkpoint{
			Substrate: "shm",
			N:         n,
			X:         make([]float64, n),
			Elapsed:   elapsed0 + time.Since(t0),
		}
		x.Snapshot(c.X)
		if version != nil {
			c.RelaxCounts = make([]int64, n)
			for i := range c.RelaxCounts {
				c.RelaxCounts[i] = version[i].Load()
			}
		}
		if progress != nil {
			c.Iters = make([]int64, nt)
			for q := range c.Iters {
				c.Iters[q] = progress[q].Load()
				if int(c.Iters[q]) > c.Sweeps {
					c.Sweeps = int(c.Iters[q])
				}
			}
		}
		c.Sweeps += sweeps0
		c.Flags = make([]bool, nt)
		for q := range c.Flags {
			c.Flags[q] = flags[q].Load()
		}
		c.FaultStates = fault.States(injs)
		return c
	}
	var ckStop, ckDone chan struct{}
	if writer != nil {
		ckStop = make(chan struct{})
		ckDone = make(chan struct{})
		go func() {
			defer close(ckDone)
			ticker := time.NewTicker(writer.Interval())
			defer ticker.Stop()
			for {
				select {
				case <-ckStop:
					return
				case <-ticker.C:
					// Interval-write failures surface only through the
					// checkpoint_error counter; the at-exit write below
					// reports through Result.CheckpointErr.
					_ = writer.Write(snapshot())
				}
				writer.RefreshAge()
			}
		}()
	}

	wg.Wait()
	if supStop != nil {
		close(supStop)
		<-supDone
	}
	if ckStop != nil {
		close(ckStop)
		<-ckDone
	}

	res := &Result{
		X:          make([]float64, n),
		Iterations: iters,
		WallTime:   time.Since(t0),
		History:    hist,
	}
	x.Snapshot(res.X)
	for t := 0; t < nt; t++ {
		lo, hi := partition.ContiguousRange(n, nt, t)
		res.TotalRelaxations += iters[t]*(hi-lo) + int(extras[t])
	}
	rr := make([]float64, n)
	a.Residual(rr, b, res.X)
	res.RelRes = vec.Norm1(rr) / nb
	res.Converged = opt.Tol > 0 && res.RelRes <= opt.Tol
	opt.Metrics.SetResidual(res.RelRes)
	opt.Metrics.SetConverged(res.Converged)
	if writer != nil {
		// Final at-exit checkpoint: the state a later Resume continues
		// from, so its failure is a first-class result field.
		res.CheckpointErr = writer.Write(snapshot())
		maxIter := 0
		for _, it := range iters {
			if it > maxIter {
				maxIter = it
			}
		}
		// Workers are joined; appending to ring 0 from here is the same
		// single-writer handoff the existing post-run reads rely on.
		opt.Tracer.Worker(0).Checkpoint(maxIter)
	}
	if superDead != nil {
		for q := range superDead {
			if superDead[q].Load() {
				res.DeadWorkers++
			}
		}
	}
	crashed := res.DeadWorkers > 0
	for _, in := range injs {
		if in.Dead() {
			crashed = true
		}
	}
	res.StopReason = resilience.Resolve(res.Converged, stopper, crashed)
	switch res.StopReason {
	case resilience.StopDeadline:
		opt.Metrics.RecoveryDeadline()
	case resilience.StopCanceled:
		opt.Metrics.RecoveryCancel()
	}
	res.Elapsed = elapsed0 + res.WallTime
	if opt.Tracer != nil {
		// The trace substrate is itself observable: per-worker capture,
		// wraparound-drop, coalescing, and sampling totals flow into the
		// metrics registry (aj_trace_*).
		for t := 0; t < nt; t++ {
			st := opt.Tracer.Worker(t).Stats()
			opt.Metrics.TraceCaptured(t, obs.TraceCapture{
				Events: st.Retained, Dropped: st.Dropped,
				Coalesced: st.Coalesced, SampledOut: st.SampledOut,
				Bytes: st.Bytes, EventsPerSec: st.EventsPerSec(),
			})
		}
	}
	if opt.RecordTrace {
		var events []model.Event
		for _, tr := range traces {
			events = append(events, tr...)
		}
		res.Trace = &model.Trace{N: n, Events: events}
	}
	return res
}

// rowRange is a half-open block of rows [lo, hi).
type rowRange struct{ lo, hi int }

// adoption is a survivor's copy-on-write list of row ranges it relaxes
// on behalf of supervisor-declared-dead workers; from names the most
// recently adopted-from worker, for the trace event.
type adoption struct {
	from   int
	ranges []rowRange
}

// splitRanges cuts a dead worker's row ranges into k contiguous pieces
// of near-equal row count — reassignment as finer blocks, the recovery
// Section IV-D's block-size result favors.
func splitRanges(ranges []rowRange, k int) [][]rowRange {
	out := make([][]rowRange, k)
	total := 0
	for _, rg := range ranges {
		total += rg.hi - rg.lo
	}
	if total == 0 {
		return out
	}
	sizes := make([]int, k)
	base, rem := total/k, total%k
	for p := range sizes {
		sizes[p] = base
		if p < rem {
			sizes[p]++
		}
	}
	p := 0
	for _, rg := range ranges {
		lo := rg.lo
		for lo < rg.hi {
			for p < k && sizes[p] == 0 {
				p++
			}
			if p == k {
				return out
			}
			take := rg.hi - lo
			if take > sizes[p] {
				take = sizes[p]
			}
			out[p] = append(out[p], rowRange{lo, lo + take})
			sizes[p] -= take
			lo += take
		}
	}
	return out
}
