package shm

import (
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/vec"
)

// Options configure a shared-memory solve.
type Options struct {
	// Threads is the number of goroutine workers; rows are split into
	// contiguous blocks as in the paper's OpenMP code.
	Threads int
	// MaxIters bounds each worker's local iteration count: a worker
	// raises its termination flag after MaxIters local iterations even
	// if the tolerance was not met.
	MaxIters int
	// Tol is the relative residual 1-norm tolerance; 0 disables the
	// tolerance test so every worker runs exactly MaxIters iterations.
	Tol float64
	// Async selects the asynchronous solver; false inserts barriers
	// (synchronous Jacobi).
	Async bool
	// DelayThread, when >= 0, identifies a worker that sleeps Delay
	// before each of its iterations — the Fig 3/4 slow-thread
	// experiment. Under the synchronous solver the barrier makes every
	// other worker wait too.
	DelayThread int
	Delay       time.Duration
	// RecordTrace captures the read-version history needed by the
	// propagated-relaxation analysis (Fig 2). Adds overhead.
	RecordTrace bool
	// RecordHistory samples (elapsed wall-clock, relative residual)
	// once per local iteration of worker 0.
	RecordHistory bool
	// NoYield suppresses the runtime.Gosched each asynchronous worker
	// performs after a local iteration. The default (yielding) is what
	// makes execution genuinely interleave on hosts with fewer cores
	// than workers, approximating a parallel machine; disable it only
	// to study free-running scheduling.
	NoYield bool
	// Multicolor switches the synchronous solver to multicolor
	// Gauss-Seidel (Section IV-B): a greedy coloring partitions the
	// rows into independent sets; each iteration relaxes the sets in
	// sequence with a barrier between them, workers handling their own
	// rows of each set in parallel. Multiplicative like Gauss-Seidel,
	// parallel like Jacobi — it converges on SPD systems where
	// synchronous Jacobi diverges, at any worker count. Ignored when
	// Async is set.
	Multicolor bool
	// Omega, when nonzero, under/over-relaxes every correction:
	// x_i <- x_i + Omega * r_i (asynchronous weighted Jacobi). Values
	// in (0, 1) damp the high-frequency error modes that make plain
	// Jacobi diverge when rho(G) > 1; 1 (or 0) is the paper's scheme.
	Omega float64
	// InnerGS makes each worker relax its block with a forward
	// Gauss-Seidel pass instead of a Jacobi pass: rows within the block
	// immediately see earlier in-block updates. This is the
	// asynchronous inexact block Jacobi of Jager and Bradley ("blocks
	// are solved using a single iteration of Gauss-Seidel", Section III
	// of the paper). Only meaningful with more than one row per worker.
	InnerGS bool
	// YieldProb, when positive, additionally yields the processor with
	// this probability after each row relaxation inside an asynchronous
	// iteration. On an oversubscribed host this injects the
	// mid-iteration interleaving a truly parallel machine exhibits —
	// without it, a cooperative scheduler executes every local
	// iteration atomically and traces are trivially 100% propagated.
	YieldProb float64
	// Fault, when non-nil and enabled, injects adversity into the
	// asynchronous solver: heavy-tailed per-worker iteration delays, a
	// one-shot stall, and worker crashes with optional restart from the
	// current shared iterate. Shared memory has no messages, so the
	// plan's drop/dup/reorder probabilities are ignored here (they
	// apply to the dist substrate). A crashing worker raises its
	// termination flag before exiting, so the shared flag array
	// degrades to the surviving workers instead of spinning to the
	// hard-stop bound; its rows simply freeze — exactly the
	// infinitely-delayed process of the paper's Theorem 1 discussion.
	// Ignored by the synchronous solver, whose barriers a crashed
	// worker would deadlock.
	Fault *fault.Plan
	// Metrics, when non-nil, streams live observability data: per-worker
	// relaxation counts and sweep latencies, a live residual gauge
	// (worker 0 samples the shared residual once per local iteration),
	// a staleness histogram of missed neighbor updates, and yield/delay
	// counters. A nil handle disables everything at the cost of a
	// per-iteration nil check.
	Metrics *obs.SolverMetrics
	// Tracer, when non-nil, records timestamped execution events into
	// per-worker ring buffers: relaxation start/end, neighbor reads
	// with versions, solution writes, yields, injected delays, and
	// termination-flag transitions. Unlike RecordTrace (unbounded,
	// versions only) the tracer is bounded and timestamped; the trace
	// package bridges its output back to a model.Trace. A nil handle
	// costs one pointer test per recording site.
	Tracer *trace.Recorder
}

// HistoryPoint is one convergence sample of a running solve.
type HistoryPoint struct {
	Elapsed time.Duration
	RelRes  float64
	// Iteration is worker 0's local iteration at the sample.
	Iteration int
}

// Result reports a finished shared-memory solve.
type Result struct {
	X []float64
	// Iterations[t] is worker t's local iteration count.
	Iterations []int
	// TotalRelaxations counts every row relaxation performed.
	TotalRelaxations int
	// RelRes is the true relative residual 1-norm of X, recomputed
	// sequentially after the run.
	RelRes float64
	// Converged reports whether the tolerance was met (always false
	// when Tol is 0).
	Converged bool
	WallTime  time.Duration
	History   []HistoryPoint
	Trace     *model.Trace
}

// Solve runs synchronous or asynchronous Jacobi with goroutine workers
// on a unit-diagonal system. Scheduling makes asynchronous runs
// nondeterministic, as any racy shared-memory solver is; the returned
// RelRes is always computed exactly from the final X.
func Solve(a *sparse.CSR, b []float64, x0 []float64, opt Options) *Result {
	n := a.N
	if len(b) != n || len(x0) != n {
		panic("shm: dimension mismatch")
	}
	if opt.Threads <= 0 {
		panic("shm: Threads must be positive")
	}
	if opt.MaxIters <= 0 {
		panic("shm: MaxIters must be positive")
	}
	if err := opt.Fault.Validate(opt.Threads); err != nil {
		panic("shm: " + err.Error())
	}
	injs := opt.Fault.Injectors(opt.Threads)
	t0 := time.Now()
	omega := opt.Omega
	if omega == 0 {
		omega = 1
	}

	x := NewAtomicVector(n)
	x.SetAll(x0)
	r := NewAtomicVector(n)
	nb := vec.Norm1(b)
	if nb == 0 {
		nb = 1
	}

	nt := opt.Threads
	flags := make([]atomic.Bool, nt)
	var barrier *Barrier
	if !opt.Async {
		barrier = NewBarrier(nt)
	}
	sync0 := func() {
		if barrier != nil {
			barrier.Wait()
		}
	}

	// Multicolor preparation: per-worker row lists for each color.
	var colorRows [][]int // colorRows[c] = rows of color c (global)
	if opt.Multicolor && !opt.Async {
		colorRows = model.MulticolorMasks(a)
	}

	// Versions back the trace recording: version[i] counts completed
	// relaxations of row i, incremented after the value write, so a
	// read attributing version v saw the value of relaxation >= v.
	// The timestamped tracer needs them too — its read events carry
	// the same s_ij(k) version samples.
	var version []atomic.Int64
	traces := make([][]model.Event, nt)
	var seq atomic.Int64
	if opt.RecordTrace || opt.Tracer != nil {
		version = make([]atomic.Int64, n)
	}

	// Observability: each worker publishes its local iteration count;
	// neighbors sample it once per iteration to measure how many of the
	// publisher's updates they skipped (the live Fig 2 statistic). All
	// of this is allocated and touched only when metrics are enabled.
	opt.Metrics.SetWorkers(nt)
	var progress []atomic.Int64
	var rangeEnd []int
	if opt.Metrics != nil {
		progress = make([]atomic.Int64, nt)
		rangeEnd = make([]int, nt)
		for q := 0; q < nt; q++ {
			_, rangeEnd[q] = partition.ContiguousRange(n, nt, q)
		}
	}

	var hist []HistoryPoint
	iters := make([]int, nt)
	var wg sync.WaitGroup
	wg.Add(nt)
	for t := 0; t < nt; t++ {
		go func(t int) {
			defer wg.Done()
			lo, hi := partition.ContiguousRange(n, nt, t)
			local := make([]float64, hi-lo)
			iter := 0
			defer func() { iters[t] = iter }()
			done := false
			var yrng *rand.Rand
			if opt.Async && opt.YieldProb > 0 {
				yrng = rand.New(rand.NewPCG(uint64(t)+1, 0x51e1d))
			}
			wm := opt.Metrics.Worker(t)
			tw := opt.Tracer.Worker(t)
			var inj *fault.Injector
			if injs != nil {
				inj = injs[t]
			}
			faultsOn := opt.Async && inj != nil
			// Neighbor workers whose rows this worker reads, for
			// staleness sampling.
			var neighbors []int
			var lastSeen []int64
			if wm != nil {
				owner := func(j int) int {
					return sort.SearchInts(rangeEnd, j+1)
				}
				seen := map[int]bool{}
				for i := lo; i < hi; i++ {
					for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
						if u := owner(a.Col[k]); u != t && !seen[u] {
							seen[u] = true
							neighbors = append(neighbors, u)
						}
					}
				}
				sort.Ints(neighbors)
				lastSeen = make([]int64, len(neighbors))
			}
			microYield := func() {
				if yrng != nil && yrng.Float64() < opt.YieldProb {
					wm.IncYield()
					tw.Yield()
					runtime.Gosched()
				}
			}
			// Multicolor: this worker's slice of each color class.
			var myColor [][]int
			if colorRows != nil {
				myColor = make([][]int, len(colorRows))
				for c, rows := range colorRows {
					for _, i := range rows {
						if i >= lo && i < hi {
							myColor[c] = append(myColor[c], i)
						}
					}
				}
			}
			for {
				var sweepStart time.Time
				if wm != nil {
					sweepStart = time.Now()
				}
				if faultsOn {
					if inj.CrashNow(iter) {
						opt.Metrics.FaultCrash()
						tw.Crash(iter)
						after, restart := inj.Restart()
						if !restart {
							// Fail-stop: raise the flag so the others'
							// all-up test skips this worker; its rows
							// freeze at the current iterate.
							flags[t].Store(true)
							tw.FlagRaise(iter)
							return
						}
						time.Sleep(after)
						opt.Metrics.FaultRestart()
						tw.Restart(iter)
					}
					if d := inj.StallFor(iter); d > 0 {
						opt.Metrics.FaultStall()
						tw.Stall(iter)
						time.Sleep(d)
					}
					if d := inj.IterDelay(); d > 0 {
						opt.Metrics.FaultDelay()
						tw.Delay(iter + 1)
						time.Sleep(d)
					}
				}
				if opt.DelayThread == t && opt.Delay > 0 {
					wm.IncDelay()
					tw.Delay(iter + 1)
					time.Sleep(opt.Delay)
				}
				if myColor != nil {
					// Multicolor Gauss-Seidel iteration: colors in
					// sequence, barrier between them; within a color,
					// rows are independent so parallel relaxation is
					// exact.
					for _, rows := range myColor {
						for _, i := range rows {
							s := b[i]
							for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
								j := a.Col[k]
								s -= a.Val[k] * x.Load(j)
							}
							r.Store(i, s)
							x.Store(i, x.Load(i)+omega*s)
						}
						sync0() // color barrier
					}
					iter++
					sync0()
				} else if opt.InnerGS && opt.Async {
					// Fused Gauss-Seidel block pass: each row's
					// correction is written before the next row's
					// residual is computed, so in-block couplings see
					// fresh values (multiplicative within the block).
					for i := lo; i < hi; i++ {
						s := b[i]
						var ev *model.Event
						if opt.RecordTrace {
							ev = &model.Event{Row: i, Count: iter + 1, Seq: int(seq.Add(1))}
						}
						tw.RelaxStart(i, iter+1)
						for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
							j := a.Col[k]
							if version != nil && j != i {
								v := int(version[j].Load())
								if ev != nil {
									ev.Reads = append(ev.Reads, model.Read{Row: j, Version: v})
								}
								tw.ReadVersion(i, iter+1, j, v)
							}
							s -= a.Val[k] * x.Load(j)
						}
						r.Store(i, s)
						x.Store(i, x.Load(i)+omega*s)
						if version != nil {
							version[i].Add(1)
						}
						tw.Write(i, iter+1)
						tw.RelaxEnd(i, iter+1)
						if ev != nil {
							traces[t] = append(traces[t], *ev)
						}
						microYield()
					}
					iter++
				} else {
					// Step 1: local residual, reading shared x.
					for i := lo; i < hi; i++ {
						s := b[i]
						var ev *model.Event
						if opt.RecordTrace {
							ev = &model.Event{Row: i, Count: iter + 1, Seq: int(seq.Add(1))}
						}
						tw.RelaxStart(i, iter+1)
						for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
							j := a.Col[k]
							if version != nil && j != i {
								v := int(version[j].Load())
								if ev != nil {
									ev.Reads = append(ev.Reads, model.Read{Row: j, Version: v})
								}
								tw.ReadVersion(i, iter+1, j, v)
							}
							s -= a.Val[k] * x.Load(j)
						}
						local[i-lo] = s
						tw.RelaxEnd(i, iter+1)
						if ev != nil {
							traces[t] = append(traces[t], *ev)
						}
						microYield()
					}
					sync0() // paper: barrier after step 1
					// Step 2: correct the solution (unit diagonal) and
					// publish the residual.
					for i := lo; i < hi; i++ {
						r.Store(i, local[i-lo])
						x.Store(i, x.Load(i)+omega*local[i-lo])
						if version != nil {
							version[i].Add(1)
						}
						tw.Write(i, iter+1)
						microYield()
					}
					iter++
				}
				if wm != nil {
					// One batch of atomic adds per local iteration — the
					// relaxation loops themselves stay untouched.
					wm.ObserveSweep(time.Since(sweepStart))
					wm.IncIteration()
					wm.AddRelaxations(hi - lo)
					progress[t].Store(int64(iter))
					for ni, u := range neighbors {
						cur := progress[u].Load()
						missed := cur - lastSeen[ni] - 1
						if missed < 0 {
							missed = 0
						}
						wm.ObserveStaleness(int(missed))
						lastSeen[ni] = cur
					}
					if t == 0 {
						wm.SetResidual(r.Norm1() / nb)
					}
				}
				sync0() // make step 3's norm a consistent reduction
				// Step 3: convergence. Each worker computes the norm of
				// the whole shared residual array (paper Section V) and
				// raises its flag when converged or out of budget.
				if !done {
					conv := false
					if opt.Tol > 0 {
						conv = r.Norm1()/nb <= opt.Tol
					}
					if conv || iter >= opt.MaxIters {
						flags[t].Store(true)
						tw.FlagRaise(iter)
						done = true
					}
				}
				if opt.RecordHistory && t == 0 {
					hist = append(hist, HistoryPoint{
						Elapsed:   time.Since(t0),
						RelRes:    r.Norm1() / nb,
						Iteration: iter,
					})
				}
				sync0() // paper: barrier after step 3; flags now stable
				// A worker terminates only when every worker's flag is
				// up (shared flag array, paper Section V). Under the
				// barrier all workers observe the same flag state, so
				// they exit together.
				all := true
				for q := range flags {
					if !flags[q].Load() {
						all = false
						break
					}
				}
				if all {
					tw.Decided(iter)
					return
				}
				// Hard stop: never iterate unboundedly past the budget
				// even if another worker's flag is slow to appear.
				if iter >= 100*opt.MaxIters {
					return
				}
				if opt.Async && !opt.NoYield {
					wm.IncYield()
					tw.Yield()
					runtime.Gosched()
				}
			}
		}(t)
	}
	wg.Wait()

	res := &Result{
		X:          make([]float64, n),
		Iterations: iters,
		WallTime:   time.Since(t0),
		History:    hist,
	}
	x.Snapshot(res.X)
	for t := 0; t < nt; t++ {
		lo, hi := partition.ContiguousRange(n, nt, t)
		res.TotalRelaxations += iters[t] * (hi - lo)
	}
	rr := make([]float64, n)
	a.Residual(rr, b, res.X)
	res.RelRes = vec.Norm1(rr) / nb
	res.Converged = opt.Tol > 0 && res.RelRes <= opt.Tol
	opt.Metrics.SetResidual(res.RelRes)
	opt.Metrics.SetConverged(res.Converged)
	if opt.Tracer != nil {
		// Trace loss is itself observable: per-worker capture and
		// wraparound-drop counts flow into the metrics registry.
		for t := 0; t < nt; t++ {
			ring := opt.Tracer.Worker(t)
			opt.Metrics.TraceCaptured(t, ring.Len(), ring.Dropped())
		}
	}
	if opt.RecordTrace {
		var events []model.Event
		for _, tr := range traces {
			events = append(events, tr...)
		}
		res.Trace = &model.Trace{N: n, Events: events}
	}
	return res
}
